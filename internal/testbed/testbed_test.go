package testbed

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/queueing"
)

func TestDemandCurveShape(t *testing.T) {
	c := DemandCurve{D1: 0.01, DInf: 0.006, Tau: 100}
	if got := c.At(1); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("D(1) = %g, want D1", got)
	}
	if got := c.At(1e9); math.Abs(got-0.006) > 1e-9 {
		t.Errorf("D(∞) = %g, want DInf", got)
	}
	// Monotone decreasing.
	prev := c.At(1)
	for n := 2.0; n <= 2000; n *= 1.5 {
		cur := c.At(n)
		if cur > prev {
			t.Fatalf("demand increased at n=%g", n)
		}
		prev = cur
	}
	// Degenerate Tau: constant at DInf.
	flat := DemandCurve{D1: 0.01, DInf: 0.007, Tau: 0}
	if flat.At(5) != 0.007 {
		t.Errorf("flat curve At = %g", flat.At(5))
	}
}

func TestProfilesValidate(t *testing.T) {
	for name, p := range Profiles() {
		for _, n := range []int{1, 50, p.MaxUsers} {
			m := p.Model(n)
			if err := m.Validate(); err != nil {
				t.Errorf("%s model at N=%d invalid: %v", name, n, err)
			}
		}
		if p.StationCount() != 12 {
			t.Errorf("%s: %d stations, want 12 (3 servers × 4 resources)", name, p.StationCount())
		}
		if len(p.StationNames()) != 12 {
			t.Errorf("%s: station names mismatch", name)
		}
		if p.ThinkTime != 1 {
			t.Errorf("%s: think time %g, want 1 s (paper)", name, p.ThinkTime)
		}
	}
}

func TestVINSStructureMatchesPaper(t *testing.T) {
	p := VINS()
	if p.PagesPerWorkflow != 7 {
		t.Errorf("VINS pages = %d, want 7 (Renew Policy)", p.PagesPerWorkflow)
	}
	if p.MaxUsers != 1500 {
		t.Errorf("VINS max users = %d, want 1500", p.MaxUsers)
	}
	// Disk-heavy: the bottleneck is the database disk.
	name, idx := p.Bottleneck()
	if name != "db/disk" {
		t.Errorf("VINS bottleneck %q (index %d), want db/disk", name, idx)
	}
	// DB CPU per-core utilization at the capacity throughput stays well
	// below saturation (~35% in the paper's Table 2).
	xCap := p.MaxThroughput()
	m := p.Model(p.MaxUsers)
	dbCPU := m.StationIndex("db/cpu")
	util := xCap * m.Stations[dbCPU].Demand() / float64(m.Stations[dbCPU].Servers)
	if util < 0.25 || util > 0.5 {
		t.Errorf("VINS db/cpu utilization at capacity = %.2f, want ≈0.35", util)
	}
	// Load-injector disk is the secondary hot spot (> 80% at capacity).
	loadDisk := m.StationIndex("load/disk")
	u2 := xCap * m.Stations[loadDisk].Demand()
	if u2 < 0.8 || u2 > 1.0 {
		t.Errorf("VINS load/disk utilization at capacity = %.2f, want high but < 1", u2)
	}
}

func TestJPetStoreStructureMatchesPaper(t *testing.T) {
	p := JPetStore()
	if p.PagesPerWorkflow != 14 {
		t.Errorf("JPetStore pages = %d, want 14", p.PagesPerWorkflow)
	}
	// CPU-heavy: the database CPU is the bottleneck.
	name, _ := p.Bottleneck()
	if name != "db/cpu" {
		t.Errorf("JPetStore bottleneck %q, want db/cpu", name)
	}
	// Saturation sets in around 140 users: the asymptotic saturation
	// population N* = (ΣD+Z)/Dmax should be in that neighbourhood.
	m := p.Model(140)
	b := queueing.Bounds(m, 140)
	if b.NStar < 120 || b.NStar > 200 {
		t.Errorf("JPetStore N* = %.0f, want ≈140–170", b.NStar)
	}
	// Disk close behind CPU: at capacity the db disk runs ≥ 85%.
	xCap := p.MaxThroughput()
	dbDisk := m.StationIndex("db/disk")
	u := xCap * p.TrueDemands(p.MaxUsers)[dbDisk]
	if u < 0.85 || u > 1.0 {
		t.Errorf("JPetStore db/disk utilization at capacity = %.2f", u)
	}
}

func TestTrueDemandsMatchModel(t *testing.T) {
	p := VINS()
	for _, n := range []int{1, 203, 1500} {
		d := p.TrueDemands(n)
		m := p.Model(n)
		for k, st := range m.Stations {
			if math.Abs(d[k]-st.Demand()) > 1e-15 {
				t.Errorf("N=%d station %s: TrueDemands %g vs model %g", n, st.Name, d[k], st.Demand())
			}
		}
	}
}

func TestTrueDemandModelAdapters(t *testing.T) {
	p := JPetStore()
	dm := p.TrueDemandModel()
	if dm.Stations() != 12 || dm.DependsOnThroughput() {
		t.Fatal("TrueDemandModel metadata wrong")
	}
	d := p.TrueDemands(70)
	for k := 0; k < 12; k++ {
		if got := dm.DemandAt(k, 70, 0); math.Abs(got-d[k]) > 1e-15 {
			t.Errorf("station %d: %g vs %g", k, got, d[k])
		}
	}
}

// TestMVASDOracleOnProfiles sanity-checks the whole analytical path on the
// testbed profiles: MVASD fed the oracle demand curves must produce valid
// trajectories that approach each profile's capacity.
func TestMVASDOracleOnProfiles(t *testing.T) {
	for name, p := range Profiles() {
		res, err := core.MVASD(p.Model(1), p.MaxUsers, p.TrueDemandModel(), core.MVASDOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		xMax, _ := res.MaxThroughput()
		cap := p.MaxThroughput()
		if xMax > cap*(1+1e-6) {
			t.Errorf("%s: X=%.1f exceeds capacity %.1f", name, xMax, cap)
		}
		if xMax < cap*0.9 {
			t.Errorf("%s: X=%.1f too far below capacity %.1f", name, xMax, cap)
		}
	}
}

func TestStationNamesFormat(t *testing.T) {
	for _, n := range VINS().StationNames() {
		if !strings.Contains(n, "/") {
			t.Errorf("station name %q not server/resource", n)
		}
	}
}

func TestTestConcurrenciesMatchPaperLabels(t *testing.T) {
	vins := VINS().TestConcurrencies
	// The paper's VINS "MVA i" labels include i = 203.
	found := false
	for _, n := range vins {
		if n == 203 {
			found = true
		}
	}
	if !found {
		t.Error("VINS test concurrencies must include 203 (the paper's MVA 203)")
	}
	jp := JPetStore().TestConcurrencies
	want := []int{1, 14, 28, 70, 140, 168, 210}
	if len(jp) != len(want) {
		t.Fatalf("JPetStore concurrencies %v, want %v", jp, want)
	}
	for i := range want {
		if jp[i] != want[i] {
			t.Fatalf("JPetStore concurrencies %v, want %v (paper Fig. 12)", jp, want)
		}
	}
}
