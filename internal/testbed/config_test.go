package testbed

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/queueing"
)

func validConfig() *Config {
	return &Config{
		Name:              "custom",
		ThinkTime:         0.5,
		PagesPerWorkflow:  3,
		MaxUsers:          200,
		TestConcurrencies: []int{1, 50, 200},
		Servers: []ServerConfig{
			{Name: "web", Resources: []ResourceConfig{
				{Name: "cpu", Kind: queueing.CPU, Servers: 8, D1: 0.01, DInf: 0.007, Tau: 60},
				{Name: "disk", Kind: queueing.Disk, Servers: 1, D1: 0.004, DInf: 0.003, Tau: 50},
			}},
		},
	}
}

func TestConfigBuildAndRoundTrip(t *testing.T) {
	p, err := validConfig().Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.StationCount() != 2 || p.Name != "custom" {
		t.Fatalf("profile: %+v", p)
	}
	m := p.Model(50)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Save and reload through the file round trip.
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	p2, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Name != p.Name || p2.StationCount() != p.StationCount() || p2.MaxUsers != p.MaxUsers {
		t.Fatalf("round trip mismatch: %+v", p2)
	}
	d1 := p.TrueDemands(77)
	d2 := p2.TrueDemands(77)
	for k := range d1 {
		if d1[k] != d2[k] {
			t.Fatalf("demand %d: %g vs %g", k, d1[k], d2[k])
		}
	}
}

func TestBuiltinProfilesSurviveConfigRoundTrip(t *testing.T) {
	for name, p := range Profiles() {
		cfg := ConfigOf(p)
		rebuilt, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, n := range []int{1, 100, p.MaxUsers} {
			a, b := p.TrueDemands(n), rebuilt.TrueDemands(n)
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("%s N=%d station %d: %g vs %g", name, n, k, a[k], b[k])
				}
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := map[string]func(*Config){
		"no name":        func(c *Config) { c.Name = "" },
		"negative think": func(c *Config) { c.ThinkTime = -1 },
		"zero users":     func(c *Config) { c.MaxUsers = 0 },
		"no servers":     func(c *Config) { c.Servers = nil },
		"bad test point": func(c *Config) { c.TestConcurrencies = []int{0} },
		"point > max":    func(c *Config) { c.TestConcurrencies = []int{999} },
		"unnamed server": func(c *Config) { c.Servers[0].Name = "" },
		"no resources":   func(c *Config) { c.Servers[0].Resources = nil },
		"unnamed res":    func(c *Config) { c.Servers[0].Resources[0].Name = "" },
		"dup resource": func(c *Config) {
			c.Servers[0].Resources[1].Name = c.Servers[0].Resources[0].Name
		},
		"zero servers": func(c *Config) { c.Servers[0].Resources[0].Servers = 0 },
		"zero demand":  func(c *Config) { c.Servers[0].Resources[0].D1 = 0 },
		"zero dinf":    func(c *Config) { c.Servers[0].Resources[0].DInf = 0 },
		"negative tau": func(c *Config) { c.Servers[0].Resources[0].Tau = -1 },
	}
	for name, mutate := range mutations {
		c := validConfig()
		mutate(c)
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: got %v, want ErrBadConfig", name, err)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := validConfig()
	c.TestConcurrencies = nil
	c.PagesPerWorkflow = 0
	p, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.PagesPerWorkflow != 1 {
		t.Errorf("default pages %d", p.PagesPerWorkflow)
	}
	if len(p.TestConcurrencies) < 3 {
		t.Errorf("default test points %v", p.TestConcurrencies)
	}
	last := p.TestConcurrencies[len(p.TestConcurrencies)-1]
	if last != p.MaxUsers {
		t.Errorf("default points should end at MaxUsers: %v", p.TestConcurrencies)
	}
}

func TestReadProfileRejectsJunk(t *testing.T) {
	cases := map[string]string{
		"bad json":      "{",
		"unknown field": `{"name":"x","bogus":1}`,
		"invalid":       `{"name":"x","maxUsers":0,"servers":[]}`,
	}
	for name, body := range cases {
		if _, err := ReadProfile(strings.NewReader(body)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := LoadProfile("/does/not/exist.json"); err == nil {
		t.Error("missing file should error")
	}
}
