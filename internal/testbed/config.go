package testbed

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/queueing"
)

// Config is the JSON representation of a testbed profile, letting users
// define custom multi-tier environments for the load generator and the
// experiment tooling without recompiling.
//
//	{
//	  "name": "myapp",
//	  "thinkTime": 1.0,
//	  "pagesPerWorkflow": 5,
//	  "maxUsers": 500,
//	  "testConcurrencies": [1, 50, 150, 300, 500],
//	  "servers": [
//	    {"name": "web", "resources": [
//	      {"name": "cpu", "kind": "cpu", "servers": 8,
//	       "d1": 0.010, "dInf": 0.007, "tau": 80}
//	    ]}
//	  ]
//	}
type Config struct {
	Name              string         `json:"name"`
	ThinkTime         float64        `json:"thinkTime"`
	PagesPerWorkflow  int            `json:"pagesPerWorkflow"`
	MaxUsers          int            `json:"maxUsers"`
	TestConcurrencies []int          `json:"testConcurrencies"`
	Servers           []ServerConfig `json:"servers"`
}

// ServerConfig is one tier box in a Config.
type ServerConfig struct {
	Name      string           `json:"name"`
	Resources []ResourceConfig `json:"resources"`
}

// ResourceConfig is one queueing resource in a Config.
type ResourceConfig struct {
	Name    string                `json:"name"`
	Kind    queueing.ResourceKind `json:"kind"`
	Servers int                   `json:"servers"`
	D1      float64               `json:"d1"`
	DInf    float64               `json:"dInf"`
	Tau     float64               `json:"tau"`
}

// ErrBadConfig wraps every configuration validation failure.
var ErrBadConfig = errors.New("testbed: invalid profile config")

// Validate checks the configuration for structural soundness.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: missing name", ErrBadConfig)
	}
	if c.ThinkTime < 0 {
		return fmt.Errorf("%w: negative think time", ErrBadConfig)
	}
	if c.MaxUsers < 1 {
		return fmt.Errorf("%w: maxUsers %d", ErrBadConfig, c.MaxUsers)
	}
	if len(c.Servers) == 0 {
		return fmt.Errorf("%w: no servers", ErrBadConfig)
	}
	for _, n := range c.TestConcurrencies {
		if n < 1 || n > c.MaxUsers {
			return fmt.Errorf("%w: test concurrency %d outside [1, %d]", ErrBadConfig, n, c.MaxUsers)
		}
	}
	seen := map[string]bool{}
	for _, s := range c.Servers {
		if s.Name == "" {
			return fmt.Errorf("%w: unnamed server", ErrBadConfig)
		}
		if len(s.Resources) == 0 {
			return fmt.Errorf("%w: server %q has no resources", ErrBadConfig, s.Name)
		}
		for _, r := range s.Resources {
			full := s.Name + "/" + r.Name
			if r.Name == "" {
				return fmt.Errorf("%w: unnamed resource on server %q", ErrBadConfig, s.Name)
			}
			if seen[full] {
				return fmt.Errorf("%w: duplicate resource %q", ErrBadConfig, full)
			}
			seen[full] = true
			if r.Servers < 1 {
				return fmt.Errorf("%w: %s has %d servers", ErrBadConfig, full, r.Servers)
			}
			if r.D1 <= 0 || r.DInf <= 0 {
				return fmt.Errorf("%w: %s has non-positive demand parameters", ErrBadConfig, full)
			}
			if r.Tau < 0 {
				return fmt.Errorf("%w: %s has negative tau", ErrBadConfig, full)
			}
		}
	}
	return nil
}

// Build converts the configuration into a Profile.
func (c *Config) Build() (*Profile, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	p := &Profile{
		Name:              c.Name,
		ThinkTime:         c.ThinkTime,
		PagesPerWorkflow:  c.PagesPerWorkflow,
		MaxUsers:          c.MaxUsers,
		TestConcurrencies: append([]int(nil), c.TestConcurrencies...),
	}
	if p.PagesPerWorkflow < 1 {
		p.PagesPerWorkflow = 1
	}
	if len(p.TestConcurrencies) == 0 {
		// Default sample points: geometric spread to MaxUsers.
		for n := 1; n < p.MaxUsers; n = n*3 + 1 {
			p.TestConcurrencies = append(p.TestConcurrencies, n)
		}
		p.TestConcurrencies = append(p.TestConcurrencies, p.MaxUsers)
	}
	for _, s := range c.Servers {
		srv := Server{Name: s.Name}
		for _, r := range s.Resources {
			kind := r.Kind
			if kind == "" {
				kind = queueing.Other
			}
			srv.Resources = append(srv.Resources, Resource{
				Name:    r.Name,
				Kind:    kind,
				Servers: r.Servers,
				Demand:  DemandCurve{D1: r.D1, DInf: r.DInf, Tau: r.Tau},
			})
		}
		p.Servers = append(p.Servers, srv)
	}
	return p, nil
}

// LoadProfile reads a profile configuration from a JSON file.
func LoadProfile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	defer f.Close()
	return ReadProfile(f)
}

// ReadProfile decodes a profile configuration from a reader.
func ReadProfile(r io.Reader) (*Profile, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("testbed: decoding profile: %w", err)
	}
	return c.Build()
}

// ConfigOf reconstructs the JSON configuration of a profile (the inverse of
// Build), so built-in profiles can be exported, tweaked and reloaded.
func ConfigOf(p *Profile) *Config {
	c := &Config{
		Name:              p.Name,
		ThinkTime:         p.ThinkTime,
		PagesPerWorkflow:  p.PagesPerWorkflow,
		MaxUsers:          p.MaxUsers,
		TestConcurrencies: append([]int(nil), p.TestConcurrencies...),
	}
	for _, s := range p.Servers {
		sc := ServerConfig{Name: s.Name}
		for _, r := range s.Resources {
			sc.Resources = append(sc.Resources, ResourceConfig{
				Name: r.Name, Kind: r.Kind, Servers: r.Servers,
				D1: r.Demand.D1, DInf: r.Demand.DInf, Tau: r.Demand.Tau,
			})
		}
		c.Servers = append(c.Servers, sc)
	}
	return c
}

// SaveProfile writes a profile's configuration to a JSON file.
func SaveProfile(path string, p *Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("testbed: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(ConfigOf(p))
}
