// Package testbed models the paper's two experimental environments — the
// VINS vehicle-insurance application and the JPetStore e-commerce
// application — as parametric multi-tier closed networks whose per-resource
// service demands *vary with concurrency*, the phenomenon the paper is
// about.
//
// Substitution note (see DESIGN.md): the paper deploys real LAMP stacks on
// 16-core servers and measures them with The Grinder + vmstat/iostat/
// netstat. The measurable surface of those testbeds — throughput, response
// time and the CPU/Disk/Net-Tx/Net-Rx utilizations of the load-injection,
// web/application and database servers (its Fig. 2) — is entirely induced
// by per-resource demand curves D_k(N) plus queueing. We therefore model
// each resource with a smooth decaying demand curve
//
//	D(n) = D_∞ + (D₁ − D_∞)·exp(−(n−1)/τ)
//
// (caching/batching/branch-prediction make demands fall as load rises, the
// paper's Fig. 5/10 observation) and execute the network on the
// discrete-event simulator to produce "measured" data.
//
// The profile parameters are calibrated so the qualitative structure of the
// paper's Tables 2–3 holds: VINS is database-disk-bound (disk ≈ 90+% busy
// at N = 1500 while the DB CPU stays near 35%, with the load injector's
// disk the secondary hot spot), and JPetStore is CPU-bound, saturating its
// database CPU (and nearly its disk) around 140 users.
package testbed

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/queueing"
)

// DemandCurve is the parametric concurrency-dependent service demand of one
// resource: an exponential decay from D1 (single-user demand) to DInf (the
// asymptotic demand under heavy sharing), with decay scale Tau.
type DemandCurve struct {
	// D1 is the demand at N = 1 in seconds.
	D1 float64
	// DInf is the asymptotic demand in seconds (DInf <= D1 for the decay
	// the paper observes; DInf > D1 would model contention growth).
	DInf float64
	// Tau is the decay scale in users.
	Tau float64
}

// At evaluates the curve at concurrency n.
func (c DemandCurve) At(n float64) float64 {
	if c.Tau <= 0 {
		return c.DInf
	}
	return c.DInf + (c.D1-c.DInf)*math.Exp(-(n-1)/c.Tau)
}

// Resource is one hardware queueing centre of a tier server.
type Resource struct {
	// Name is the short resource label ("cpu", "disk", "net-tx", "net-rx").
	Name string
	// Kind classifies the resource.
	Kind queueing.ResourceKind
	// Servers is the multi-server width (cores for CPUs).
	Servers int
	// Demand is the concurrency-dependent service demand per transaction.
	Demand DemandCurve
}

// Server is one tier box (load injector, web/application, database).
type Server struct {
	// Name is the tier label ("load", "app", "db").
	Name string
	// Resources are the box's queueing centres, per the paper's Fig. 2.
	Resources []Resource
}

// Profile is a complete simulated environment.
type Profile struct {
	// Name identifies the application ("VINS", "JPetStore").
	Name string
	// Servers are the tier boxes in load → app → db order.
	Servers []Server
	// ThinkTime is the terminal think time Z in seconds.
	ThinkTime float64
	// PagesPerWorkflow documents the workflow length (7 for VINS Renew
	// Policy, 14 for JPetStore); throughput is measured in pages/second
	// and one simulated transaction is one page.
	PagesPerWorkflow int
	// TestConcurrencies are the load-test sample points the paper uses.
	TestConcurrencies []int
	// MaxUsers is the largest population the experiments evaluate.
	MaxUsers int
}

// StationCount returns the number of queueing stations (resources across
// all servers).
func (p *Profile) StationCount() int {
	n := 0
	for _, s := range p.Servers {
		n += len(s.Resources)
	}
	return n
}

// StationNames returns "server/resource" labels in model order.
func (p *Profile) StationNames() []string {
	var out []string
	for _, s := range p.Servers {
		for _, r := range s.Resources {
			out = append(out, s.Name+"/"+r.Name)
		}
	}
	return out
}

// Model builds the queueing model whose (constant) station demands are the
// profile's true demands at concurrency n — what a perfectly accurate
// measurement at that concurrency would feed Algorithm 2.
func (p *Profile) Model(n int) *queueing.Model {
	m := &queueing.Model{Name: fmt.Sprintf("%s@N=%d", p.Name, n), ThinkTime: p.ThinkTime}
	for _, s := range p.Servers {
		for _, r := range s.Resources {
			m.Stations = append(m.Stations, queueing.Station{
				Name:        s.Name + "/" + r.Name,
				Kind:        r.Kind,
				Servers:     r.Servers,
				Visits:      1,
				ServiceTime: r.Demand.At(float64(n)),
			})
		}
	}
	return m
}

// TrueDemands evaluates every station's demand curve at concurrency n.
func (p *Profile) TrueDemands(n int) []float64 {
	out := make([]float64, 0, p.StationCount())
	for _, s := range p.Servers {
		for _, r := range s.Resources {
			out = append(out, r.Demand.At(float64(n)))
		}
	}
	return out
}

// TrueDemandModel adapts the profile's exact curves to a core.DemandModel —
// the "oracle" input for MVASD upper-bounding what spline interpolation of
// measured samples can achieve.
func (p *Profile) TrueDemandModel() core.DemandModel {
	k := p.StationCount()
	curves := make([]DemandCurve, 0, k)
	for _, s := range p.Servers {
		for _, r := range s.Resources {
			curves = append(curves, r.Demand)
		}
	}
	return core.FuncDemands{K: k, F: func(station, n int) float64 {
		return curves[station].At(float64(n))
	}}
}

// Bottleneck returns the station index with the largest asymptotic
// normalised demand DInf/C — the resource that caps throughput.
func (p *Profile) Bottleneck() (name string, index int) {
	best, idx := 0.0, -1
	names := p.StationNames()
	i := 0
	for _, s := range p.Servers {
		for _, r := range s.Resources {
			d := r.Demand.DInf / float64(r.Servers)
			if d > best {
				best, idx = d, i
			}
			i++
		}
	}
	if idx < 0 {
		return "", -1
	}
	return names[idx], idx
}

// MaxThroughput returns the asymptotic throughput cap 1/max_k(DInf_k/C_k)
// in pages/second.
func (p *Profile) MaxThroughput() float64 {
	_, idx := p.Bottleneck()
	if idx < 0 {
		return math.Inf(1)
	}
	i := 0
	for _, s := range p.Servers {
		for _, r := range s.Resources {
			if i == idx {
				return float64(r.Servers) / r.Demand.DInf
			}
			i++
		}
	}
	return math.Inf(1)
}

// cpuCores is the paper's server configuration: 16-core CPU machines.
const cpuCores = 16

// VINS builds the vehicle-insurance profile: the Renew Policy workflow
// (7 pages), 10 GB database, think time 1 s, tested from 1 to 1500 users.
// Disk-heavy: the database disk is the bottleneck (≈ 93% busy in the
// paper's Table 2 at 1500 users, against ≈ 35% DB CPU), with the load
// injector's disk the secondary hot spot — the paper singles out exactly
// those two columns.
func VINS() *Profile {
	return &Profile{
		Name:             "VINS",
		ThinkTime:        1.0,
		PagesPerWorkflow: 7,
		// The concurrency levels the paper's Table 2 / "MVA i" labels use.
		TestConcurrencies: []int{1, 23, 45, 90, 203, 381, 717, 1500},
		MaxUsers:          1500,
		Servers: []Server{
			{Name: "load", Resources: []Resource{
				{Name: "cpu", Kind: queueing.CPU, Servers: cpuCores,
					Demand: DemandCurve{D1: 0.0060, DInf: 0.0038, Tau: 150}},
				{Name: "disk", Kind: queueing.Disk, Servers: 1,
					Demand: DemandCurve{D1: 0.0085, DInf: 0.0058, Tau: 200}},
				{Name: "net-tx", Kind: queueing.NetTx, Servers: 1,
					Demand: DemandCurve{D1: 0.0016, DInf: 0.0011, Tau: 120}},
				{Name: "net-rx", Kind: queueing.NetRx, Servers: 1,
					Demand: DemandCurve{D1: 0.0020, DInf: 0.0013, Tau: 120}},
			}},
			{Name: "app", Resources: []Resource{
				{Name: "cpu", Kind: queueing.CPU, Servers: cpuCores,
					Demand: DemandCurve{D1: 0.0180, DInf: 0.0105, Tau: 180}},
				{Name: "disk", Kind: queueing.Disk, Servers: 1,
					Demand: DemandCurve{D1: 0.0042, DInf: 0.0028, Tau: 150}},
				{Name: "net-tx", Kind: queueing.NetTx, Servers: 1,
					Demand: DemandCurve{D1: 0.0018, DInf: 0.0012, Tau: 120}},
				{Name: "net-rx", Kind: queueing.NetRx, Servers: 1,
					Demand: DemandCurve{D1: 0.0015, DInf: 0.0010, Tau: 120}},
			}},
			{Name: "db", Resources: []Resource{
				// ≈ 35% busy per core at the saturated X ≈ 155 pages/s.
				{Name: "cpu", Kind: queueing.CPU, Servers: cpuCores,
					Demand: DemandCurve{D1: 0.0650, DInf: 0.0370, Tau: 160}},
				// Bottleneck: 1/0.0064 ≈ 156 pages/s asymptotic cap.
				{Name: "disk", Kind: queueing.Disk, Servers: 1,
					Demand: DemandCurve{D1: 0.0098, DInf: 0.0064, Tau: 220}},
				{Name: "net-tx", Kind: queueing.NetTx, Servers: 1,
					Demand: DemandCurve{D1: 0.0021, DInf: 0.0014, Tau: 120}},
				{Name: "net-rx", Kind: queueing.NetRx, Servers: 1,
					Demand: DemandCurve{D1: 0.0017, DInf: 0.0011, Tau: 120}},
			}},
		},
	}
}

// JPetStore builds the e-commerce profile: a 14-page buy workflow over a
// 2,000,000-item catalogue, think time 1 s, tested from 1 to 280 users.
// CPU-heavy: the database CPU saturates around 140 users with the database
// disk close behind (the paper's Table 3 underlines saturation at > 140).
func JPetStore() *Profile {
	return &Profile{
		Name:             "JPetStore",
		ThinkTime:        1.0,
		PagesPerWorkflow: 14,
		// The paper samples at 1, 14, 28, 70, 140, 168, 210 (its Fig. 12
		// "7 samples" set) and evaluates out to 280.
		TestConcurrencies: []int{1, 14, 28, 70, 140, 168, 210},
		MaxUsers:          280,
		Servers: []Server{
			{Name: "load", Resources: []Resource{
				{Name: "cpu", Kind: queueing.CPU, Servers: cpuCores,
					Demand: DemandCurve{D1: 0.0080, DInf: 0.0052, Tau: 60}},
				{Name: "disk", Kind: queueing.Disk, Servers: 1,
					Demand: DemandCurve{D1: 0.0026, DInf: 0.0018, Tau: 60}},
				{Name: "net-tx", Kind: queueing.NetTx, Servers: 1,
					Demand: DemandCurve{D1: 0.0022, DInf: 0.0015, Tau: 50}},
				{Name: "net-rx", Kind: queueing.NetRx, Servers: 1,
					Demand: DemandCurve{D1: 0.0028, DInf: 0.0019, Tau: 50}},
			}},
			{Name: "app", Resources: []Resource{
				{Name: "cpu", Kind: queueing.CPU, Servers: cpuCores,
					Demand: DemandCurve{D1: 0.0550, DInf: 0.0360, Tau: 70}},
				{Name: "disk", Kind: queueing.Disk, Servers: 1,
					Demand: DemandCurve{D1: 0.0030, DInf: 0.0021, Tau: 60}},
				{Name: "net-tx", Kind: queueing.NetTx, Servers: 1,
					Demand: DemandCurve{D1: 0.0024, DInf: 0.0016, Tau: 50}},
				{Name: "net-rx", Kind: queueing.NetRx, Servers: 1,
					Demand: DemandCurve{D1: 0.0020, DInf: 0.0014, Tau: 50}},
			}},
			{Name: "db", Resources: []Resource{
				// Bottleneck: 16/0.114 ≈ 140 pages/s asymptotic cap; the
				// CPU saturates first, around 140 users.
				{Name: "cpu", Kind: queueing.CPU, Servers: cpuCores,
					Demand: DemandCurve{D1: 0.1650, DInf: 0.1140, Tau: 75}},
				{Name: "disk", Kind: queueing.Disk, Servers: 1,
					Demand: DemandCurve{D1: 0.0096, DInf: 0.0068, Tau: 80}},
				{Name: "net-tx", Kind: queueing.NetTx, Servers: 1,
					Demand: DemandCurve{D1: 0.0030, DInf: 0.0020, Tau: 50}},
				{Name: "net-rx", Kind: queueing.NetRx, Servers: 1,
					Demand: DemandCurve{D1: 0.0026, DInf: 0.0017, Tau: 50}},
			}},
		},
	}
}

// Profiles returns the registry of built-in environments keyed by name.
func Profiles() map[string]*Profile {
	return map[string]*Profile{
		"vins":      VINS(),
		"jpetstore": JPetStore(),
	}
}
