// Package interp provides a uniform interface over the interpolation
// back-ends (linear, cubic-spline variants, smoothing spline, PCHIP, Akima,
// barycentric-Chebyshev) so that higher layers — in particular the MVASD
// demand provider — can switch interpolation schemes by configuration, as
// the paper does when comparing spline choices and sample placements.
package interp

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/chebyshev"
	"repro/internal/spline"
)

// Method identifies an interpolation scheme.
type Method string

const (
	// Linear joins samples with straight lines.
	Linear Method = "linear"
	// CubicNatural is the natural cubic spline (S''=0 at the ends).
	CubicNatural Method = "cubic-natural"
	// CubicNotAKnot is the not-a-knot cubic spline (Scilab/MATLAB default,
	// what the paper's interp() call uses).
	CubicNotAKnot Method = "cubic-not-a-knot"
	// PCHIP is the monotonicity-preserving piecewise cubic.
	PCHIP Method = "pchip"
	// Akima is Akima's reduced-overshoot interpolant.
	Akima Method = "akima"
	// Smoothing is the Reinsch smoothing spline; its λ is set via Options.
	Smoothing Method = "smoothing"
	// Polynomial is global barycentric Lagrange interpolation — only
	// sensible for points placed at Chebyshev nodes.
	Polynomial Method = "polynomial"
)

// Methods lists every supported interpolation method.
func Methods() []Method {
	return []Method{Linear, CubicNatural, CubicNotAKnot, PCHIP, Akima, Smoothing, Polynomial}
}

// ErrUnknownMethod is returned by New for unrecognised method names.
var ErrUnknownMethod = errors.New("interp: unknown method")

// Interpolator evaluates a fitted one-dimensional function.
type Interpolator interface {
	// Eval returns the interpolated value at x, applying the scheme's
	// extrapolation rule outside the sampled range.
	Eval(x float64) float64
	// Domain returns the sampled abscissa range [lo, hi].
	Domain() (lo, hi float64)
}

// Options configures interpolator construction.
type Options struct {
	// Lambda is the roughness penalty for Smoothing (default 0: interpolate).
	Lambda float64
	// Extrapolation selects out-of-range behaviour for the spline-backed
	// methods. The default, spline.ExtrapConstant, is the paper's eq. 14
	// pegging and is what MVASD requires.
	Extrapolation spline.Extrapolation
}

// New fits an interpolator of the given method through (xs, ys). The points
// are copied and sorted by x; duplicate abscissae are rejected by the
// underlying constructors.
func New(method Method, xs, ys []float64, opts Options) (Interpolator, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("interp: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	sx, sy := sortedCopy(xs, ys)
	switch method {
	case Polynomial:
		p, err := chebyshev.NewInterpolant(sx, sy)
		if err != nil {
			return nil, err
		}
		return &polyAdapter{p: p, lo: sx[0], hi: sx[len(sx)-1]}, nil
	case Linear, CubicNatural, CubicNotAKnot, PCHIP, Akima, Smoothing:
		var (
			c   *spline.Cubic
			err error
		)
		switch method {
		case Linear:
			c, err = spline.NewLinear(sx, sy)
		case CubicNatural:
			c, err = spline.NewNatural(sx, sy)
		case CubicNotAKnot:
			c, err = spline.NewNotAKnot(sx, sy)
		case PCHIP:
			c, err = spline.NewPCHIP(sx, sy)
		case Akima:
			c, err = spline.NewAkima(sx, sy)
		case Smoothing:
			c, err = spline.NewSmoothing(sx, sy, opts.Lambda)
		}
		if err != nil {
			return nil, err
		}
		c.SetExtrapolation(opts.Extrapolation)
		return c, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
}

// polyAdapter wraps a barycentric interpolant with constant-peg
// extrapolation so global polynomials obey the same out-of-range contract as
// the spline methods (global polynomials explode when extrapolated).
type polyAdapter struct {
	p      *chebyshev.Interpolant
	lo, hi float64
}

func (a *polyAdapter) Eval(x float64) float64 {
	if x < a.lo {
		x = a.lo
	}
	if x > a.hi {
		x = a.hi
	}
	return a.p.Eval(x)
}

func (a *polyAdapter) Domain() (float64, float64) { return a.lo, a.hi }

func sortedCopy(xs, ys []float64) ([]float64, []float64) {
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	sx := make([]float64, len(pts))
	sy := make([]float64, len(pts))
	for i, p := range pts {
		sx[i], sy[i] = p.x, p.y
	}
	return sx, sy
}

// Curve is a sampled one-dimensional function together with a fitted
// interpolator: the container MVASD uses for per-station service-demand
// arrays (samples at a few concurrency levels, continuous in between).
type Curve struct {
	X, Y   []float64
	Method Method
	interp Interpolator
}

// NewCurve fits a Curve through the samples with the given method. A
// single-sample curve is allowed and evaluates as a constant.
func NewCurve(method Method, xs, ys []float64, opts Options) (*Curve, error) {
	if len(xs) == 0 {
		return nil, errors.New("interp: empty curve")
	}
	sx, sy := sortedCopy(xs, ys)
	c := &Curve{X: sx, Y: sy, Method: method}
	if len(sx) == 1 {
		return c, nil // constant curve; no interpolator needed
	}
	ip, err := New(method, sx, sy, opts)
	if err != nil {
		return nil, err
	}
	c.interp = ip
	return c, nil
}

// Eval evaluates the curve at x.
func (c *Curve) Eval(x float64) float64 {
	if c.interp == nil {
		return c.Y[0]
	}
	return c.interp.Eval(x)
}

// Domain returns the sampled range (equal endpoints for a constant curve).
func (c *Curve) Domain() (float64, float64) {
	return c.X[0], c.X[len(c.X)-1]
}

// Len returns the number of samples.
func (c *Curve) Len() int { return len(c.X) }

// Table evaluates the curve on each of the given abscissae, the "array of
// service demands generated for station i with increasing concurrency"
// (SSⁿ in the paper's notation) when xs = 1..N.
func (c *Curve) Table(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = c.Eval(x)
	}
	return out
}
