package interp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/spline"
)

var sampleXs = []float64{1, 14, 28, 70, 140, 210}
var sampleYs = []float64{0.010, 0.0085, 0.0077, 0.0070, 0.0068, 0.0067}

func TestEveryMethodInterpolatesSamples(t *testing.T) {
	for _, m := range Methods() {
		if m == Smoothing {
			continue // smoothing with λ>0 does not interpolate by design
		}
		ip, err := New(m, sampleXs, sampleYs, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for i := range sampleXs {
			if got := ip.Eval(sampleXs[i]); !numeric.AlmostEqual(got, sampleYs[i], 1e-9) {
				t.Errorf("%s: f(%g) = %g, want %g", m, sampleXs[i], got, sampleYs[i])
			}
		}
	}
}

func TestSmoothingLambdaZeroInterpolates(t *testing.T) {
	ip, err := New(Smoothing, sampleXs, sampleYs, Options{Lambda: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sampleXs {
		if got := ip.Eval(sampleXs[i]); !numeric.AlmostEqual(got, sampleYs[i], 1e-9) {
			t.Errorf("f(%g) = %g, want %g", sampleXs[i], got, sampleYs[i])
		}
	}
}

func TestUnsortedInputIsSorted(t *testing.T) {
	xs := []float64{5, 1, 3}
	ys := []float64{25, 1, 9}
	ip, err := New(Linear, xs, ys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ip.Domain()
	if lo != 1 || hi != 5 {
		t.Errorf("Domain = [%g, %g], want [1, 5]", lo, hi)
	}
	if got := ip.Eval(2); !numeric.AlmostEqual(got, 5, 1e-12) {
		t.Errorf("linear f(2) = %g, want 5", got)
	}
}

func TestConstantExtrapolationDefault(t *testing.T) {
	// All spline-backed methods must peg to boundary ordinates by default
	// (paper eq. 14), and Polynomial must clamp too.
	for _, m := range Methods() {
		if m == Smoothing {
			continue
		}
		ip, err := New(m, sampleXs, sampleYs, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got := ip.Eval(0); !numeric.AlmostEqual(got, sampleYs[0], 1e-9) {
			t.Errorf("%s: left extrapolation = %g, want %g", m, got, sampleYs[0])
		}
		if got := ip.Eval(5000); !numeric.AlmostEqual(got, sampleYs[len(sampleYs)-1], 1e-9) {
			t.Errorf("%s: right extrapolation = %g, want %g", m, got, sampleYs[len(sampleYs)-1])
		}
	}
}

func TestExtrapolationOptionPropagates(t *testing.T) {
	ip, err := New(CubicNatural, []float64{0, 1, 2}, []float64{0, 1, 4},
		Options{Extrapolation: spline.ExtrapLinear})
	if err != nil {
		t.Fatal(err)
	}
	// Linear extrapolation must not be constant.
	if v3, v4 := ip.Eval(3), ip.Eval(4); v3 == v4 {
		t.Error("linear extrapolation option was not applied")
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := New("bogus", sampleXs, sampleYs, Options{}); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("got %v, want ErrUnknownMethod", err)
	}
}

func TestLengthMismatch(t *testing.T) {
	if _, err := New(Linear, []float64{1, 2}, []float64{1}, Options{}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestCurveConstant(t *testing.T) {
	c, err := NewCurve(CubicNatural, []float64{10}, []float64{0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-5, 10, 300} {
		if got := c.Eval(x); got != 0.5 {
			t.Errorf("constant curve at %g = %g", x, got)
		}
	}
	lo, hi := c.Domain()
	if lo != 10 || hi != 10 {
		t.Errorf("Domain = [%g, %g]", lo, hi)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCurveEmpty(t *testing.T) {
	if _, err := NewCurve(Linear, nil, nil, Options{}); err == nil {
		t.Error("expected error for empty curve")
	}
}

func TestCurveTable(t *testing.T) {
	c, err := NewCurve(CubicNotAKnot, sampleXs, sampleYs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	grid := numeric.Linspace(1, 300, 300)
	tab := c.Table(grid)
	if len(tab) != 300 {
		t.Fatalf("table length %d", len(tab))
	}
	// Beyond x=210 the table must be pegged at the last sample.
	if tab[299] != sampleYs[len(sampleYs)-1] {
		t.Errorf("table extrapolation %g, want %g", tab[299], sampleYs[len(sampleYs)-1])
	}
	// All demands positive for this monotone-decaying data.
	for i, v := range tab {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("table[%d] = %g", i, v)
		}
	}
}

func TestCurveSortsSamples(t *testing.T) {
	c, err := NewCurve(Linear, []float64{210, 1, 70}, []float64{0.0067, 0.010, 0.0070}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.X[0] != 1 || c.X[2] != 210 {
		t.Errorf("samples not sorted: %v", c.X)
	}
	if c.Y[0] != 0.010 {
		t.Errorf("ordinates not permuted with abscissae: %v", c.Y)
	}
}

func TestMethodsListMatchesConstructor(t *testing.T) {
	for _, m := range Methods() {
		if _, err := New(m, sampleXs, sampleYs, Options{}); err != nil {
			t.Errorf("listed method %s failed: %v", m, err)
		}
	}
}
