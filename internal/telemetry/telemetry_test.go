package telemetry

import (
	"bytes"
	"context"
	"encoding/hex"
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewID(t *testing.T) {
	a, b := NewID(), NewID()
	if a == b {
		t.Fatalf("two IDs collided: %s", a)
	}
	for _, id := range []string{a, b} {
		if len(id) != 32 {
			t.Errorf("ID %q has length %d, want 32", id, len(id))
		}
		if _, err := hex.DecodeString(id); err != nil {
			t.Errorf("ID %q is not hex: %v", id, err)
		}
		if !ValidID(id) {
			t.Errorf("generated ID %q does not pass ValidID", id)
		}
	}
}

func TestValidID(t *testing.T) {
	for _, tc := range []struct {
		id   string
		want bool
	}{
		{"", false},
		{"abc-123_x.Y", true},
		{"deadbeefdeadbeefdeadbeefdeadbeef", true},
		{strings.Repeat("a", 64), true},
		{strings.Repeat("a", 65), false},
		{"has space", false},
		{"quote\"x", false},
		{"new\nline", false},
		{"unicode-é", false},
	} {
		if got := ValidID(tc.id); got != tc.want {
			t.Errorf("ValidID(%q) = %v, want %v", tc.id, got, tc.want)
		}
	}
}

func TestTraceSpansAndServerTiming(t *testing.T) {
	tr := New("abc", nil)
	if tr.ID() != "abc" {
		t.Fatalf("ID = %q", tr.ID())
	}
	sp := tr.StartSpan("cache")
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // idempotent: duration must not change
	open := tr.StartSpan("solve")

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("Spans() = %d entries, want 2", len(spans))
	}
	if !spans[0].Ended || spans[0].Duration <= 0 {
		t.Errorf("cache span: %+v", spans[0])
	}
	if spans[1].Ended {
		t.Errorf("solve span reported ended before End")
	}

	st := tr.ServerTiming()
	if !strings.HasPrefix(st, "cache;dur=") {
		t.Errorf("ServerTiming = %q, want cache;dur= prefix", st)
	}
	if strings.Contains(st, "solve") {
		t.Errorf("ServerTiming %q includes the unfinished span", st)
	}
	open.End()
	st = tr.ServerTiming()
	if !strings.Contains(st, "solve;dur=") {
		t.Errorf("ServerTiming after End = %q, want solve;dur=", st)
	}
}

func TestServerTimingAggregatesByName(t *testing.T) {
	tr := New("x", nil)
	for i := 0; i < 3; i++ {
		tr.StartSpan("solve").End()
	}
	tr.StartSpan("cache").End()
	st := tr.ServerTiming()
	if got := strings.Count(st, "solve;dur="); got != 1 {
		t.Errorf("ServerTiming %q has %d solve entries, want 1 (aggregated)", st, got)
	}
	// First-start order: solve was opened before cache.
	if !strings.HasPrefix(st, "solve;dur=") {
		t.Errorf("ServerTiming %q not in first-start order", st)
	}
}

func TestTraceAttrs(t *testing.T) {
	tr := New("x", nil)
	tr.SetAttr("cache", "miss")
	tr.SetAttr("algorithm", "mvasd")
	tr.SetAttr("cache", "extend") // replaces, keeps position
	attrs := tr.Attrs()
	if len(attrs) != 2 {
		t.Fatalf("Attrs() = %v, want 2 entries", attrs)
	}
	if attrs[0].Key != "cache" || attrs[0].Value.String() != "extend" {
		t.Errorf("attrs[0] = %v, want cache=extend", attrs[0])
	}
	if v, ok := tr.Attr("algorithm"); !ok || v.String() != "mvasd" {
		t.Errorf("Attr(algorithm) = %v, %v", v, ok)
	}
	if _, ok := tr.Attr("nope"); ok {
		t.Error("Attr(nope) reported set")
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.ServerTiming() != "" || tr.Attrs() != nil || tr.Spans() != nil {
		t.Error("nil trace returned non-zero values")
	}
	tr.SetAttr("k", "v")
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatalf("nil trace returned span %v", sp)
	}
	sp.SetAttr("k", "v")
	sp.End() // must not panic
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("background context carries a trace")
	}
	tr := New("x", nil)
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
}

func TestSpanDebugLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tr := New("trace-1", logger)
	sp := tr.StartSpan("solve")
	sp.SetAttr("to_n", 100)
	sp.End()
	out := buf.String()
	for _, want := range []string{"msg=span", "id=trace-1", "span=solve", "to_n=100", "dur_ms="} {
		if !strings.Contains(out, want) {
			t.Errorf("debug record %q missing %q", out, want)
		}
	}

	// At info level the span record is suppressed.
	buf.Reset()
	tr = New("trace-2", slog.New(slog.NewTextHandler(&buf, nil)))
	tr.StartSpan("solve").End()
	if buf.Len() != 0 {
		t.Errorf("span logged at info level: %q", buf.String())
	}
}

// TestTraceConcurrency exercises the mutex paths under -race: sweep handlers
// open spans and set attributes from many goroutines against one trace.
func TestTraceConcurrency(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tr := New("conc", logger)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := tr.StartSpan("solve")
				sp.SetAttr("worker", i)
				tr.SetAttr("cache", "miss")
				sp.End()
				_ = tr.ServerTiming()
				_ = tr.Spans()
				_ = tr.Attrs()
			}
		}(i)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 16*50 {
		t.Errorf("recorded %d spans, want %d", got, 16*50)
	}
}

func TestSpanIDsAndParenting(t *testing.T) {
	tr := New("stitch", nil)
	tr.SetRemoteParent("beefcafe00000001")
	root := tr.StartRoot("solve")
	if root.ID() == "" || len(root.ID()) != 16 {
		t.Fatalf("root span ID %q, want 16 hex chars", root.ID())
	}
	if root.Parent() != "beefcafe00000001" {
		t.Errorf("root parent %q, want the remote parent", root.Parent())
	}
	child := tr.StartSpan("cache")
	if child.Parent() != root.ID() {
		t.Errorf("StartSpan parent %q, want root %q", child.Parent(), root.ID())
	}
	grand := child.StartChild("attempt")
	if grand.Parent() != child.ID() {
		t.Errorf("StartChild parent %q, want %q", grand.Parent(), child.ID())
	}
	ids := map[string]bool{root.ID(): true, child.ID(): true, grand.ID(): true}
	if len(ids) != 3 {
		t.Errorf("span IDs collide: %v", ids)
	}
	if tr.RemoteParent() != "beefcafe00000001" {
		t.Errorf("RemoteParent = %q", tr.RemoteParent())
	}
}

func TestSetRemoteParentAfterRoot(t *testing.T) {
	tr := New("late", nil)
	root := tr.StartRoot("solve")
	if root.Parent() != "" {
		t.Fatalf("fresh root has parent %q", root.Parent())
	}
	tr.SetRemoteParent("aaaa000000000001")
	if root.Parent() != "aaaa000000000001" {
		t.Errorf("root did not adopt late remote parent: %q", root.Parent())
	}
	// A second remote parent must not overwrite the first adoption.
	tr.SetRemoteParent("bbbb000000000002")
	if root.Parent() != "aaaa000000000001" {
		t.Errorf("root parent overwritten: %q", root.Parent())
	}
}

func TestSpanRecords(t *testing.T) {
	tr := New("rec", nil)
	root := tr.StartRoot("handler")
	sp := tr.StartSpan("solve")
	sp.SetAttr("algorithm", "mvasd")
	sp.SetAttr("to_n", 100)
	sp.End()
	root.End()
	open := tr.StartSpan("pending")
	_ = open

	recs := tr.SpanRecords()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Name != "handler" || recs[0].ID != root.ID() || !recs[0].Ended {
		t.Errorf("root record %+v", recs[0])
	}
	if recs[1].Parent != root.ID() || recs[1].Duration <= 0 {
		t.Errorf("solve record %+v", recs[1])
	}
	wantAttrs := []SpanAttr{{Key: "algorithm", Value: "mvasd"}, {Key: "to_n", Value: "100"}}
	if len(recs[1].Attrs) != 2 || recs[1].Attrs[0] != wantAttrs[0] || recs[1].Attrs[1] != wantAttrs[1] {
		t.Errorf("solve attrs %+v, want %+v", recs[1].Attrs, wantAttrs)
	}
	if recs[2].Ended {
		t.Error("unfinished span marked ended")
	}
	if recs[2].Start.IsZero() {
		t.Error("record start time is zero")
	}

	var nilTr *Trace
	if nilTr.SpanRecords() != nil {
		t.Error("nil trace returned records")
	}
	var nilSp *Span
	if nilSp.ID() != "" || nilSp.Parent() != "" || nilSp.StartChild("x") != nil {
		t.Error("nil span returned non-zero values")
	}
}
