// Package telemetry provides the request-tracing primitives used by the
// solverd service (internal/server): context-propagated trace IDs,
// lightweight in-process spans, and rendering of finished spans as a
// Server-Timing response header.
//
// The package is deliberately small and stdlib-only — it is not a
// distributed-tracing client. A Trace is one request's record: its ID (taken
// from the caller's X-Request-Id header or generated), the spans opened while
// serving it, and a set of request-scoped attributes (cache outcome,
// algorithm, …) that the access log emits. All methods are safe for
// concurrent use (sweep handlers fan one request out over goroutines) and are
// no-ops on a nil receiver, so instrumented call sites never need nil checks.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// NewID returns a fresh 128-bit random trace ID in lowercase hex.
func NewID() string {
	var b [16]byte
	// crypto/rand.Read cannot fail on supported platforms (it aborts the
	// program instead of returning a partial read).
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 64-bit random span ID in lowercase hex. Span IDs
// are what cross-node trace stitching links on: a forwarded request carries
// the forwarding span's ID in X-Parent-Span, and the receiving node parents
// its root span to it.
func NewSpanID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// ValidID reports whether s is acceptable as a caller-supplied request ID:
// 1–64 characters drawn from [A-Za-z0-9._-]. Anything else (empty, too long,
// exotic bytes that could corrupt log lines or metric labels) is rejected and
// the server generates its own ID instead.
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Trace is one request's telemetry record.
type Trace struct {
	id     string
	start  time.Time
	logger *slog.Logger

	mu           sync.Mutex
	spans        []*Span
	attrs        []slog.Attr
	root         *Span
	remoteParent string
}

// New builds a Trace with the given ID. logger, when non-nil and enabled at
// debug level, receives one "span" record per finished span.
func New(id string, logger *slog.Logger) *Trace {
	return &Trace{id: id, start: time.Now(), logger: logger}
}

// ID returns the trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace's creation time (zero for a nil trace).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// SetAttr records a request-scoped attribute, replacing any previous value
// for the same key. The access log appends these to its per-request line.
func (t *Trace) SetAttr(key string, value any) {
	if t == nil {
		return
	}
	a := slog.Any(key, value)
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.attrs {
		if t.attrs[i].Key == key {
			t.attrs[i] = a
			return
		}
	}
	t.attrs = append(t.attrs, a)
}

// Attrs returns a copy of the recorded attributes in insertion order.
func (t *Trace) Attrs() []slog.Attr {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]slog.Attr(nil), t.attrs...)
}

// Attr returns the value recorded for key and whether it is set.
func (t *Trace) Attr(key string) (slog.Value, bool) {
	if t == nil {
		return slog.Value{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.attrs {
		if t.attrs[i].Key == key {
			return t.attrs[i].Value, true
		}
	}
	return slog.Value{}, false
}

// SetRemoteParent records the span ID (on another node) that caused this
// trace: the value of a forwarded request's X-Parent-Span header. The trace's
// root span adopts it as its parent, so a cross-node stitch can hang this
// node's fragment under the caller's forwarding span.
func (t *Trace) SetRemoteParent(spanID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.remoteParent = spanID
	if root := t.root; root != nil {
		root.mu.Lock()
		if root.parent == "" {
			root.parent = spanID
		}
		root.mu.Unlock()
	}
	t.mu.Unlock()
}

// RemoteParent returns the span ID set by SetRemoteParent ("" when none).
func (t *Trace) RemoteParent() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.remoteParent
}

// StartRoot opens the trace's root span: the span every later StartSpan
// parents to, itself parented to the remote caller's span when
// SetRemoteParent was called. The server middleware opens one root per
// request, named after the handler, and ends it when the response is written.
func (t *Trace) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, name: name, id: NewSpanID(), start: time.Now()}
	t.mu.Lock()
	sp.parent = t.remoteParent
	t.root = sp
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// StartSpan opens a named span on the trace, parented to the trace's root
// span when one exists. The returned span must be finished with End; an
// unfinished span is excluded from ServerTiming.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, name: name, id: NewSpanID(), start: time.Now()}
	t.mu.Lock()
	if t.root != nil {
		sp.parent = t.root.id
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// SpanSnapshot is one span's immutable state as seen by Spans.
type SpanSnapshot struct {
	Name     string
	Duration time.Duration
	Ended    bool
}

// Spans returns a snapshot of every span opened so far, in start order.
func (t *Trace) Spans() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanSnapshot, len(t.spans))
	for i, sp := range t.spans {
		sp.mu.Lock()
		out[i] = SpanSnapshot{Name: sp.name, Duration: sp.dur, Ended: sp.ended}
		sp.mu.Unlock()
	}
	return out
}

// SpanAttr is one span attribute rendered to a string — the wire form the
// flight recorder retains and ships between nodes.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one span's full immutable state: what the flight recorder
// stores and the cross-node stitcher links on.
type SpanRecord struct {
	ID       string        `json:"id"`
	Parent   string        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Ended    bool          `json:"ended"`
	Attrs    []SpanAttr    `json:"attrs,omitempty"`
}

// SpanRecords returns the full state of every span opened so far, in start
// order, with attribute values rendered to strings.
func (t *Trace) SpanRecords() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	for i, sp := range t.spans {
		sp.mu.Lock()
		rec := SpanRecord{
			ID:       sp.id,
			Parent:   sp.parent,
			Name:     sp.name,
			Start:    sp.start,
			Duration: sp.dur,
			Ended:    sp.ended,
		}
		if len(sp.attrs) > 0 {
			rec.Attrs = make([]SpanAttr, len(sp.attrs))
			for j, a := range sp.attrs {
				rec.Attrs[j] = SpanAttr{Key: a.Key, Value: a.Value.String()}
			}
		}
		sp.mu.Unlock()
		out[i] = rec
	}
	return out
}

// ServerTiming renders the finished spans as a Server-Timing header value,
// aggregating spans that share a name (a sweep runs many "solve" spans) into
// one metric in first-start order: "cache;dur=0.412, solve;dur=17.204".
// Durations are milliseconds. Returns "" when no span has finished.
func (t *Trace) ServerTiming() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var order []string
	durs := make(map[string]time.Duration, len(t.spans))
	for _, sp := range t.spans {
		sp.mu.Lock()
		ended, d := sp.ended, sp.dur
		sp.mu.Unlock()
		if !ended {
			continue
		}
		if _, ok := durs[sp.name]; !ok {
			order = append(order, sp.name)
		}
		durs[sp.name] += d
	}
	var b strings.Builder
	for i, name := range order {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", name, float64(durs[name])/float64(time.Millisecond))
	}
	return b.String()
}

// Span is one timed phase of a traced request.
type Span struct {
	tr     *Trace
	name   string
	id     string
	parent string
	start  time.Time

	mu    sync.Mutex
	attrs []slog.Attr
	dur   time.Duration
	ended bool
}

// ID returns the span's ID ("" for a nil span). Put it in an outbound
// X-Parent-Span header to make a remote node's work a child of this span.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Parent returns the parent span ID ("" for a root with no remote parent or a
// nil span).
func (s *Span) Parent() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parent
}

// StartChild opens a span parented to s rather than to the trace root, for
// call sites that want explicit sub-phase nesting (e.g. per-peer attempts
// under a forward span).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	sp := &Span{tr: s.tr, name: name, id: NewSpanID(), parent: s.id, start: time.Now()}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, sp)
	s.tr.mu.Unlock()
	return sp
}

// SetAttr records a span attribute, emitted with the span's debug record.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, slog.Any(key, value))
	s.mu.Unlock()
}

// End finishes the span, fixing its duration. End is idempotent: only the
// first call takes effect. If the trace's logger is enabled at debug level,
// one "span" record is emitted carrying the trace ID, span name, duration
// and span attributes.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	attrs := append([]slog.Attr(nil), s.attrs...)
	dur := s.dur
	s.mu.Unlock()

	lg := s.tr.logger
	if lg == nil || !lg.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	rec := make([]slog.Attr, 0, len(attrs)+3)
	rec = append(rec, slog.String("id", s.tr.id), slog.String("span", s.name),
		slog.Float64("dur_ms", float64(dur)/float64(time.Millisecond)))
	rec = append(rec, attrs...)
	lg.LogAttrs(context.Background(), slog.LevelDebug, "span", rec...)
}

// ctxKey is the private context key for trace propagation.
type ctxKey struct{}

// WithTrace returns ctx carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. All Trace and Span
// methods tolerate the nil result, so untraced contexts cost one map lookup.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
