package experiments

import (
	"fmt"

	"repro/internal/chebyshev"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/queueing"
	"repro/internal/report"
	"repro/internal/testbed"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Grinder test output over the length of a test (ramp-up transient)",
		PaperClaim: "initial transient from process ramp-up and thread creation; " +
			"long runs give stable means",
		Run: runFig1,
	})
	register(Experiment{
		ID:         "fig3",
		Title:      "Marginal probability of a CPU core being busy vs concurrency (4 cores)",
		PaperClaim: "the marginal probabilities converge (clustering near 1/C = 0.25) as concurrency grows",
		Run:        runFig3,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "End-to-end performance-prediction workflow (3 steps)",
		PaperClaim: "generate Chebyshev test points → load test & extract demands → " +
			"spline + MVASD prediction",
		Run: runFig17,
	})
}

func runFig1(ctx *Context) (*Outcome, error) {
	p := testbed.VINS()
	res, err := loadgen.Run(loadgen.Test{
		Profile: p,
		Props: loadgen.Properties{
			Agents:                   1,
			Processes:                20,
			Threads:                  15, // 300 virtual users
			Duration:                 ctx.measureDuration(),
			InitialSleepTime:         5,
			ProcessIncrement:         2,
			ProcessIncrementInterval: 20,
		},
		Seed: ctx.Seed,
	})
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	tps := res.Stats.TPSSeries
	rt := res.Stats.RTSeries
	chart := &report.Chart{Title: "Fig 1 — TPS over test time (300 users, ramped)", XLabel: "test time (s)", YLabel: "pages/s"}
	tx, ty := seriesXY(tps)
	chart.Add("TPS", tx, ty)
	rchart := &report.Chart{Title: "Fig 1 — response time over test time", XLabel: "test time (s)", YLabel: "seconds"}
	rx, ry := seriesXY(rt)
	rchart.Add("mean RT", rx, ry)
	o.Charts = append(o.Charts, chart, rchart)
	// Transient quantification: early windows vs steady state.
	early, err := metrics.Summarize(tps.Values()[:6])
	if err != nil {
		return nil, err
	}
	steadyFrom := loadgen.SteadyStateStart(tps)
	late, err := metrics.Summarize(tps.After(steadyFrom).Values())
	if err != nil {
		return nil, err
	}
	o.metric("early_tps_mean", early.Mean)
	o.metric("steady_tps_mean", late.Mean)
	o.metric("steady_state_start_s", steadyFrom)
	return o, nil
}

func seriesXY(s *metrics.Series) ([]float64, []float64) {
	xs := make([]float64, len(s.Points))
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.T
		ys[i] = p.V
	}
	return xs, ys
}

func runFig3(ctx *Context) (*Outcome, error) {
	// A 4-core CPU whose operating point is pinned below saturation by a
	// single-server bottleneck behind it: X caps at 1/D_disk = 250/s, so
	// the CPU settles at u = X·D_cpu = 2.5 of 4 cores — the regime where
	// the marginal probabilities converge to non-trivial values clustered
	// near 1/C, as the paper's Fig. 3 shows.
	m := &queueing.Model{
		Name:      "fig3",
		ThinkTime: 0.5,
		Stations: []queueing.Station{
			{Name: "cpu4", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.01},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.004},
		},
	}
	maxN := 300
	_, trace, err := core.ExactMVAMultiServer(m, maxN, core.MultiServerOptions{TraceStation: 0})
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	chart := &report.Chart{
		Title:  "Fig 3 — marginal queue-size probabilities of a 4-core CPU",
		XLabel: "concurrent users", YLabel: "probability",
	}
	ns := make([]float64, maxN)
	for i := range ns {
		ns[i] = float64(i + 1)
	}
	for j := 0; j < trace.Servers; j++ {
		ys := make([]float64, maxN)
		for i := range ys {
			ys[i] = trace.P[i][j]
		}
		chart.Add(fmt.Sprintf("p(%d)", j+1), ns, ys)
	}
	o.Charts = append(o.Charts, chart)
	// Convergence metrics: final values and the spread around 1/C.
	final := trace.P[maxN-1]
	spread := 0.0
	for _, v := range final {
		d := v - 0.25
		if d < 0 {
			d = -d
		}
		if d > spread {
			spread = d
		}
	}
	o.metric("final_spread_around_quarter", spread)
	for j, v := range final {
		o.metric(fmt.Sprintf("final_p%d", j+1), v)
	}
	delta := 0.0
	for j := range final {
		d := trace.P[maxN-1][j] - trace.P[maxN-2][j]
		if d < 0 {
			d = -d
		}
		if d > delta {
			delta = d
		}
	}
	o.metric("final_step_delta", delta)
	return o, nil
}

// PredictionWorkflow is the paper's Fig.-17 pipeline as an API:
//
//	Step 1 — generate load-testing points with Chebyshev nodes,
//	Step 2 — run load tests at those points and extract service demands
//	         via the Service Demand Law,
//	Step 3 — spline-interpolate the demand arrays and predict X / R+Z
//	         with MVASD.
//
// It returns the MVASD result plus the chosen test points.
func PredictionWorkflow(p *testbed.Profile, lo, hi float64, nodes int, duration float64, seed int64) (*core.Result, []int, error) {
	// Step 1: test points.
	points, err := chebyshev.IntegerNodesOn(lo, hi, nodes)
	if err != nil {
		return nil, nil, fmt.Errorf("workflow step 1: %w", err)
	}
	// Step 2: load tests + demand extraction.
	results, err := loadgen.Sweep(p, points, loadgen.SweepConfig{Duration: duration, Seed: seed})
	if err != nil {
		return nil, nil, fmt.Errorf("workflow step 2: %w", err)
	}
	samples, err := monitor.ExtractDemandSamples(results)
	if err != nil {
		return nil, nil, fmt.Errorf("workflow step 2: %w", err)
	}
	// Step 3: spline + MVASD.
	dm, err := core.NewCurveDemands(interp.CubicNotAKnot, samples, interp.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("workflow step 3: %w", err)
	}
	res, err := core.MVASD(p.Model(1), p.MaxUsers, dm, core.MVASDOptions{})
	if err != nil {
		return nil, nil, fmt.Errorf("workflow step 3: %w", err)
	}
	return res, points, nil
}

func runFig17(ctx *Context) (*Outcome, error) {
	p := testbed.JPetStore()
	res, points, err := PredictionWorkflow(p, 1, 300, 5, ctx.measureDuration(), ctx.Seed+17)
	if err != nil {
		return nil, err
	}
	cam, err := ctx.campaign(p)
	if err != nil {
		return nil, err
	}
	px, pc := PredictionsAt(res, cam.EvalConcurrencies)
	xDev, _ := metrics.MeanDeviationPct(px, cam.MeasuredX())
	cDev, _ := metrics.MeanDeviationPct(pc, cam.MeasuredCycle())
	o := &Outcome{}
	o.metric("workflow_throughput_dev_pct", xDev)
	o.metric("workflow_cycle_dev_pct", cDev)
	tab := report.NewTable("Fig 17 — workflow summary", "Step", "Output")
	tab.AddRow("1 Chebyshev points", fmt.Sprint(points))
	tab.AddRow("2 load tests", fmt.Sprintf("%d tests, demands extracted via D=U/X", len(points)))
	tab.AddRow("3 MVASD prediction", fmt.Sprintf("X dev %.2f%%, R+Z dev %.2f%% vs measured", xDev, cDev))
	o.Tables = append(o.Tables, tab)
	return o, nil
}
