package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(dir, name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, name))
}

// sharedOutcomes runs every experiment once (quick mode) and caches the
// outcomes; the campaign cache inside the context means each simulation
// sweep runs a single time for the whole test binary.
var sharedOutcomes map[string]*Outcome

func outcomes(t *testing.T) map[string]*Outcome {
	t.Helper()
	if sharedOutcomes != nil {
		return sharedOutcomes
	}
	if testing.Short() {
		t.Skip("experiment suite needs full simulations")
	}
	ctx := NewContext()
	ctx.Quick = true
	ctx.Out = &bytes.Buffer{} // rendered output exercised but not printed
	sharedOutcomes = map[string]*Outcome{}
	for _, e := range All() {
		o, err := RunAndRender(ctx, e.ID)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		sharedOutcomes[e.ID] = o
	}
	return sharedOutcomes
}

func metric(t *testing.T, os map[string]*Outcome, id, key string) float64 {
	t.Helper()
	o, ok := os[id]
	if !ok {
		t.Fatalf("no outcome for %s", id)
	}
	v, ok := o.Metrics[key]
	if !ok {
		t.Fatalf("%s: no metric %q (have %v)", id, key, o.Metrics)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"table2", "table3", "table4", "table5",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	// Ordering: figures numerically, then tables.
	all := All()
	if all[0].ID != "fig1" || all[len(all)-1].ID != "table5" {
		t.Errorf("ordering wrong: first %s last %s", all[0].ID, all[len(all)-1].ID)
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestRunAndRenderUnknown(t *testing.T) {
	ctx := NewContext()
	ctx.Out = &bytes.Buffer{}
	if _, err := RunAndRender(ctx, "fig999"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFig13IsCheap(t *testing.T) {
	// fig13 is pure math — runnable even in short mode.
	ctx := NewContext()
	var buf bytes.Buffer
	ctx.Out = &buf
	o, err := RunAndRender(ctx, "fig13")
	if err != nil {
		t.Fatal(err)
	}
	if o.Metrics["worst_bound_at_6_nodes"] > 0.002 {
		t.Errorf("bound at 6 nodes %g, paper expects < 0.2%%", o.Metrics["worst_bound_at_6_nodes"])
	}
	if o.Metrics["worst_bound_violation"] > 0 {
		t.Errorf("the eq.-19 bound was violated by %g", o.Metrics["worst_bound_violation"])
	}
	if !strings.Contains(buf.String(), "Fig 13") {
		t.Error("rendered output missing")
	}
}

func TestTable2VINSUtilizationShape(t *testing.T) {
	os := outcomes(t)
	if v := metric(t, os, "table2", "db_disk_util_pct_at_max"); v < 85 {
		t.Errorf("VINS db/disk at N=1500 = %.1f%%, want near saturation (paper 93%%)", v)
	}
	if v := metric(t, os, "table2", "db_cpu_util_pct_at_max"); v < 25 || v > 50 {
		t.Errorf("VINS db/cpu at N=1500 = %.1f%%, paper ≈35%%", v)
	}
	if v := metric(t, os, "table2", "load_disk_util_pct_at_max"); v < 70 {
		t.Errorf("VINS load/disk at N=1500 = %.1f%%, want the secondary hot spot", v)
	}
}

func TestTable3JPetStoreUtilizationShape(t *testing.T) {
	os := outcomes(t)
	if v := metric(t, os, "table3", "db_cpu_util_pct_at_max"); v < 85 {
		t.Errorf("JPetStore db/cpu at N=210 = %.1f%%, want saturated", v)
	}
	if v := metric(t, os, "table3", "db_disk_util_pct_at_max"); v < 70 {
		t.Errorf("JPetStore db/disk at N=210 = %.1f%%, want close behind the CPU", v)
	}
}

func TestFig6MVASDBeatsPaperThresholdsVINS(t *testing.T) {
	os := outcomes(t)
	xDev := metric(t, os, "fig6", "mvasd_throughput_dev_pct")
	cDev := metric(t, os, "fig6", "mvasd_cycle_dev_pct")
	if xDev >= 3 {
		t.Errorf("VINS MVASD throughput deviation %.2f%%, paper < 3%%", xDev)
	}
	if cDev >= 9 {
		t.Errorf("VINS MVASD cycle deviation %.2f%%, paper < 9%%", cDev)
	}
}

func TestFig4MVAiWorseThanMVASD(t *testing.T) {
	os := outcomes(t)
	mvasd := metric(t, os, "fig6", "mvasd_throughput_dev_pct")
	worst := metric(t, os, "fig4", "worst_mvai_throughput_dev_pct")
	if worst <= mvasd {
		t.Errorf("worst MVA i deviation %.2f%% should exceed MVASD %.2f%%", worst, mvasd)
	}
	if worst < 5 {
		t.Errorf("worst MVA i deviation %.2f%%: constant demands should hurt more", worst)
	}
}

func TestFig5DemandsDecay(t *testing.T) {
	os := outcomes(t)
	for _, key := range []string{"decay_ratio_cpu", "decay_ratio_disk"} {
		if v := metric(t, os, "fig5", key); v >= 1 {
			t.Errorf("%s = %.2f, demands must fall with concurrency", key, v)
		}
	}
}

func TestFig7JPetStoreMVASDBeatsEveryMVAi(t *testing.T) {
	os := outcomes(t)
	mvasd := metric(t, os, "fig7", "mvasd_throughput_dev_pct")
	for _, key := range []string{
		"mva28_throughput_dev_pct", "mva70_throughput_dev_pct",
		"mva140_throughput_dev_pct", "mva210_throughput_dev_pct",
	} {
		if v := metric(t, os, "fig7", key); v <= mvasd {
			t.Errorf("%s = %.2f%% should exceed MVASD %.2f%%", key, v, mvasd)
		}
	}
}

func TestFig8SingleServerWorse(t *testing.T) {
	os := outcomes(t)
	multi := metric(t, os, "fig8", "mvasd_throughput_dev_pct")
	single := metric(t, os, "fig8", "single_server_throughput_dev_pct")
	if single <= multi {
		t.Errorf("single-server deviation %.2f%% should exceed multi-server %.2f%%", single, multi)
	}
}

func TestFig9UtilizationPrediction(t *testing.T) {
	os := outcomes(t)
	if v := metric(t, os, "fig9", "util_dev_pct_cpu"); v > 10 {
		t.Errorf("db/cpu utilization prediction deviates %.1f%%", v)
	}
	if v := metric(t, os, "fig9", "util_dev_pct_disk"); v > 10 {
		t.Errorf("db/disk utilization prediction deviates %.1f%%", v)
	}
}

func TestTable5JPetStoreThresholds(t *testing.T) {
	os := outcomes(t)
	x := metric(t, os, "table5", "mvasd_throughput_dev_pct")
	c := metric(t, os, "table5", "mvasd_cycle_dev_pct")
	if x >= 3 {
		t.Errorf("JPetStore MVASD throughput deviation %.2f%%, paper 2.83%%", x)
	}
	if c >= 9 {
		t.Errorf("JPetStore MVASD cycle deviation %.2f%%, paper 1.2%%", c)
	}
	ss := metric(t, os, "table5", "mvasd_single_server_throughput_dev_pct")
	if ss <= x {
		t.Errorf("single-server %.2f%% should be worse than MVASD %.2f%%", ss, x)
	}
}

func TestFig10SplineReproducesKnots(t *testing.T) {
	os := outcomes(t)
	if v := metric(t, os, "fig10", "max_knot_reproduction_relerr"); v > 1e-9 {
		t.Errorf("spline misses its own knots by %.2g", v)
	}
}

func TestFig11ThroughputModeWithinPaperRange(t *testing.T) {
	os := outcomes(t)
	vx := metric(t, os, "fig11", "vs_throughput_x_dev_pct")
	vc := metric(t, os, "fig11", "vs_throughput_cycle_dev_pct")
	if vx > 12 || vc > 12 {
		t.Errorf("throughput-mode deviations X=%.2f%% R+Z=%.2f%%, paper ≈6.7%%/6.9%%", vx, vc)
	}
}

func TestFig12SparseSamplesDivergeMore(t *testing.T) {
	os := outcomes(t)
	three := metric(t, os, "fig12", "3_samples_vs_7_dev_pct")
	five := metric(t, os, "fig12", "5_samples_vs_7_dev_pct")
	if three <= five {
		t.Errorf("3-sample divergence %.2f%% should exceed 5-sample %.2f%%", three, five)
	}
}

func TestFig15ChebyshevSmoother(t *testing.T) {
	os := outcomes(t)
	und := metric(t, os, "fig15", "random_to_chebyshev_undulation_ratio")
	if und <= 1 {
		t.Errorf("random/Chebyshev undulation ratio %.2f, want > 1 (Chebyshev avoids spurious wiggles)", und)
	}
	me := metric(t, os, "fig15", "random_to_chebyshev_meanerr_ratio")
	if me <= 1 {
		t.Errorf("random/Chebyshev mean-error ratio %.2f, want > 1", me)
	}
}

func TestFig16FewChebyshevNodesSuffice(t *testing.T) {
	os := outcomes(t)
	if v := metric(t, os, "fig16", "cheb3_throughput_dev_pct"); v > 10 {
		t.Errorf("Chebyshev-3 MVASD deviation %.2f%%, paper says 'quite accurate'", v)
	}
	if v := metric(t, os, "fig16", "cheb7_throughput_dev_pct"); v > 5 {
		t.Errorf("Chebyshev-7 MVASD deviation %.2f%%", v)
	}
}

func TestFig3ProbabilitiesConverge(t *testing.T) {
	os := outcomes(t)
	if v := metric(t, os, "fig3", "final_step_delta"); v > 1e-4 {
		t.Errorf("marginal probabilities not converged: last step delta %g", v)
	}
	// The probabilities cluster around 1/C (paper: converge to 0.25).
	if v := metric(t, os, "fig3", "final_spread_around_quarter"); v > 0.2 {
		t.Errorf("final probabilities spread %.3f from 0.25", v)
	}
}

func TestFig1TransientVisible(t *testing.T) {
	os := outcomes(t)
	early := metric(t, os, "fig1", "early_tps_mean")
	steady := metric(t, os, "fig1", "steady_tps_mean")
	if early >= steady {
		t.Errorf("ramp-up transient missing: early %.1f vs steady %.1f", early, steady)
	}
}

func TestFig17WorkflowAccuracy(t *testing.T) {
	os := outcomes(t)
	if v := metric(t, os, "fig17", "workflow_throughput_dev_pct"); v > 8 {
		t.Errorf("workflow throughput deviation %.2f%%", v)
	}
	if v := metric(t, os, "fig17", "workflow_cycle_dev_pct"); v > 10 {
		t.Errorf("workflow cycle deviation %.2f%%", v)
	}
}

func TestCSVDump(t *testing.T) {
	ctx := NewContext()
	ctx.Out = &bytes.Buffer{}
	ctx.CSVDir = t.TempDir()
	if _, err := RunAndRender(ctx, "fig13"); err != nil {
		t.Fatal(err)
	}
	// fig13 emits one table and one chart.
	for _, name := range []string{"fig13_table0.csv", "fig13_chart0.csv"} {
		if _, err := readFile(ctx.CSVDir, name); err != nil {
			t.Errorf("missing CSV %s: %v", name, err)
		}
	}
}
