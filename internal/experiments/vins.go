package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/numeric"
	"repro/internal/report"
	"repro/internal/testbed"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Utilization % observed during load testing of the VINS application",
		PaperClaim: "DB disk reaches ≈93% (bottleneck) while DB CPU stays ≈35%; " +
			"the load injector's disk is the secondary hot spot",
		Run: runTable2,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Throughput and response time from multi-server MVA (constant demands), VINS",
		PaperClaim: "MVA i curves deviate significantly from measured values; " +
			"accuracy depends strongly on the concurrency the demands were sampled at",
		Run: runFig4,
	})
	register(Experiment{
		ID:         "fig5",
		Title:      "Measured service demands for the VINS database server",
		PaperClaim: "service demands fall as concurrency rises (caching/batching effects)",
		Run:        runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "MVASD vs multi-server MVA vs measured, VINS",
		PaperClaim: "MVASD with spline-interpolated demand arrays tracks measured " +
			"throughput/response time closely across the whole range",
		Run: runFig6,
	})
	register(Experiment{
		ID:         "table4",
		Title:      "Mean deviation in modeling the VINS application",
		PaperClaim: "MVASD: throughput <3% (2.57%), cycle time 8.61%; MVA i baselines far worse (up to ≈28%)",
		Run:        runTable4,
	})
	register(Experiment{
		ID:         "fig10",
		Title:      "Spline-interpolated service demands for the VINS database server",
		PaperClaim: "cubic splines pass through the measured points and interpolate unsampled concurrencies",
		Run:        runFig10,
	})
}

func runTable2(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.VINS())
	if err != nil {
		return nil, err
	}
	matrix, err := monitor.BuildUtilizationMatrix(cam.SampleResults)
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	headers := append([]string{"Users", "X (pages/s)"}, matrix.Stations...)
	tab := report.NewTable("Table 2 — VINS utilization % (CPU columns are per-core averages)", headers...)
	for i, n := range matrix.Concurrency {
		cells := []string{fmt.Sprint(n), report.F(matrix.Throughput[i], 1)}
		for _, v := range matrix.Pct[i] {
			cells = append(cells, report.Pct(v))
		}
		tab.AddRow(cells...)
	}
	o.Tables = append(o.Tables, tab)
	hot, pct := matrix.HottestStation()
	o.metric("bottleneck_util_pct", pct)
	o.metric("db_disk_util_pct_at_max", matrix.Station("db/disk")[len(matrix.Concurrency)-1])
	o.metric("db_cpu_util_pct_at_max", matrix.Station("db/cpu")[len(matrix.Concurrency)-1])
	o.metric("load_disk_util_pct_at_max", matrix.Station("load/disk")[len(matrix.Concurrency)-1])
	o.Notes = append(o.Notes, fmt.Sprintf("measured bottleneck: %s at %.1f%% "+
		"(paper: db disk ≈93%%; our N=1500 point sits deeper into saturation)", hot, pct))
	return o, nil
}

// vinsMVAiLevels are the constant-demand baselines shown for VINS (the
// paper's Fig. 4/6 use labels like MVA 203).
var vinsMVAiLevels = []int{23, 203, 717}

func runFig4(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.VINS())
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	grid := report.IntsToFloats(cam.EvalConcurrencies)
	xChart := &report.Chart{Title: "Fig 4 — VINS throughput: measured vs MVA i", XLabel: "concurrent users", YLabel: "pages/s"}
	cChart := &report.Chart{Title: "Fig 4 — VINS cycle time: measured vs MVA i", XLabel: "concurrent users", YLabel: "R+Z (s)"}
	xChart.Add("measured", grid, cam.MeasuredX())
	cChart.Add("measured", grid, cam.MeasuredCycle())
	spread := []float64{}
	for _, i := range vinsMVAiLevels {
		res, err := cam.MVAiResult(i)
		if err != nil {
			return nil, err
		}
		px, pc := PredictionsAt(res, cam.EvalConcurrencies)
		xChart.Add(res.Algorithm, grid, px)
		cChart.Add(res.Algorithm, grid, pc)
		dev, err := metrics.MeanDeviationPct(px, cam.MeasuredX())
		if err != nil {
			return nil, err
		}
		o.metric(fmt.Sprintf("mva%d_throughput_dev_pct", i), dev)
		spread = append(spread, dev)
	}
	o.Charts = append(o.Charts, xChart, cChart)
	worst := 0.0
	for _, d := range spread {
		if d > worst {
			worst = d
		}
	}
	o.metric("worst_mvai_throughput_dev_pct", worst)
	return o, nil
}

func runFig5(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.VINS())
	if err != nil {
		return nil, err
	}
	tab, err := monitor.BuildDemandTable(cam.SampleResults)
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	chart := &report.Chart{
		Title:  "Fig 5 — VINS DB server measured service demands vs concurrency",
		XLabel: "concurrent users", YLabel: "demand (s)",
	}
	xs := report.IntsToFloats(tab.Concurrency)
	for k, name := range tab.Stations {
		if name != "db/cpu" && name != "db/disk" && name != "db/net-tx" && name != "db/net-rx" {
			continue
		}
		col := make([]float64, len(tab.Concurrency))
		for i := range col {
			col[i] = tab.Demand[i][k]
		}
		chart.Add(name, xs, col)
		// Demands must decay: D(last) < D(first) for the substantial ones.
		if col[0] > 1e-3 {
			o.metric("decay_ratio_"+name[3:], col[len(col)-1]/col[0])
		}
	}
	o.Charts = append(o.Charts, chart)
	dt := report.NewTable("Measured demands (s), VINS DB server",
		append([]string{"Users"}, "db/cpu", "db/disk", "db/net-tx", "db/net-rx")...)
	for i, n := range tab.Concurrency {
		row := []string{fmt.Sprint(n)}
		for k, name := range tab.Stations {
			switch name {
			case "db/cpu", "db/disk", "db/net-tx", "db/net-rx":
				row = append(row, report.F(tab.Demand[i][k], 5))
				_ = k
			}
		}
		dt.AddRow(row...)
	}
	o.Tables = append(o.Tables, dt)
	return o, nil
}

func runFig6(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.VINS())
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	grid := report.IntsToFloats(cam.EvalConcurrencies)
	xChart := &report.Chart{Title: "Fig 6 — VINS throughput: measured vs MVASD vs MVA i", XLabel: "concurrent users", YLabel: "pages/s"}
	cChart := &report.Chart{Title: "Fig 6 — VINS cycle time: measured vs MVASD vs MVA i", XLabel: "concurrent users", YLabel: "R+Z (s)"}
	xChart.Add("measured", grid, cam.MeasuredX())
	cChart.Add("measured", grid, cam.MeasuredCycle())
	sd, err := cam.MVASDResult()
	if err != nil {
		return nil, err
	}
	px, pc := PredictionsAt(sd, cam.EvalConcurrencies)
	xChart.Add("MVASD", grid, px)
	cChart.Add("MVASD", grid, pc)
	xDev, err := metrics.MeanDeviationPct(px, cam.MeasuredX())
	if err != nil {
		return nil, err
	}
	cDev, err := metrics.MeanDeviationPct(pc, cam.MeasuredCycle())
	if err != nil {
		return nil, err
	}
	o.metric("mvasd_throughput_dev_pct", xDev)
	o.metric("mvasd_cycle_dev_pct", cDev)
	for _, i := range []int{203} {
		res, err := cam.MVAiResult(i)
		if err != nil {
			return nil, err
		}
		mx, mc := PredictionsAt(res, cam.EvalConcurrencies)
		xChart.Add(res.Algorithm, grid, mx)
		cChart.Add(res.Algorithm, grid, mc)
	}
	o.Charts = append(o.Charts, xChart, cChart)
	return o, nil
}

func runTable4(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.VINS())
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	tab := report.NewTable("Table 4 — Mean deviation in modeling VINS (eq. 15, %)",
		"Metric", "Model", "Deviation (%)")
	addRow := func(metricName, model string, dev float64) {
		tab.AddRow(metricName, model, report.F(dev, 2))
	}
	sd, err := cam.MVASDResult()
	if err != nil {
		return nil, err
	}
	px, pc := PredictionsAt(sd, cam.EvalConcurrencies)
	xDev, _ := metrics.MeanDeviationPct(px, cam.MeasuredX())
	cDev, _ := metrics.MeanDeviationPct(pc, cam.MeasuredCycle())
	addRow("Throughput", "MVASD", xDev)
	o.metric("mvasd_throughput_dev_pct", xDev)
	for _, i := range vinsMVAiLevels {
		res, err := cam.MVAiResult(i)
		if err != nil {
			return nil, err
		}
		mx, _ := PredictionsAt(res, cam.EvalConcurrencies)
		dev, _ := metrics.MeanDeviationPct(mx, cam.MeasuredX())
		addRow("Throughput", res.Algorithm, dev)
		o.metric(fmt.Sprintf("mva%d_throughput_dev_pct", i), dev)
	}
	addRow("Cycle Time", "MVASD", cDev)
	o.metric("mvasd_cycle_dev_pct", cDev)
	for _, i := range vinsMVAiLevels {
		res, err := cam.MVAiResult(i)
		if err != nil {
			return nil, err
		}
		_, mc := PredictionsAt(res, cam.EvalConcurrencies)
		dev, _ := metrics.MeanDeviationPct(mc, cam.MeasuredCycle())
		addRow("Cycle Time", res.Algorithm, dev)
	}
	o.Tables = append(o.Tables, tab)
	return o, nil
}

func runFig10(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.VINS())
	if err != nil {
		return nil, err
	}
	samples, err := cam.DemandSamples()
	if err != nil {
		return nil, err
	}
	p := cam.Profile
	dbDisk := p.Model(1).StationIndex("db/disk")
	dbCPU := p.Model(1).StationIndex("db/cpu")
	o := &Outcome{}
	chart := &report.Chart{
		Title:  "Fig 10 — Spline-interpolated service demands, VINS DB server",
		XLabel: "concurrent users", YLabel: "demand (s)",
	}
	dense := numeric.Linspace(1, float64(p.MaxUsers), 120)
	for _, k := range []int{dbCPU, dbDisk} {
		dm, err := newSplineCurve(samples[k])
		if err != nil {
			return nil, err
		}
		ys := make([]float64, len(dense))
		for i, x := range dense {
			ys[i] = dm.Eval(x)
		}
		chart.Add(p.StationNames()[k]+" spline", dense, ys)
		chart.Add(p.StationNames()[k]+" samples", samples[k].At, samples[k].Demands)
	}
	o.Charts = append(o.Charts, chart)
	// Interpolation must reproduce the sample points exactly.
	worst := 0.0
	for _, k := range []int{dbCPU, dbDisk} {
		dm, err := newSplineCurve(samples[k])
		if err != nil {
			return nil, err
		}
		for i := range samples[k].At {
			rel := metrics.RelErr(dm.Eval(samples[k].At[i]), samples[k].Demands[i])
			if rel > worst {
				worst = rel
			}
		}
	}
	o.metric("max_knot_reproduction_relerr", worst)
	return o, nil
}
