package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/chebyshev"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/numeric"
	"repro/internal/report"
	"repro/internal/spline"
	"repro/internal/testbed"
)

// splineOf builds the raw not-a-knot cubic through a demand sample set,
// exposing Roughness() for the Fig. 14/15 undulation measurements.
func splineOf(s core.DemandSamples) (*spline.Cubic, error) {
	return spline.NewNotAKnot(s.At, s.Demands)
}

// sortedFloats sorts a copy of xs ascending.
func sortedFloats(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Chebyshev interpolation error bounds for exponential functions",
		PaperClaim: "for more than 5 nodes the eq.-19 error bound drops below 0.2% " +
			"for all the exponential means considered",
		Run: runFig13,
	})
	register(Experiment{
		ID:         "fig14",
		Title:      "Demand splines from samples at Chebyshev 3 / 5 / 7 nodes, JPetStore",
		PaperClaim: "Chebyshev-node sampling avoids Runge oscillation between points",
		Run:        runFig14,
	})
	register(Experiment{
		ID:         "fig15",
		Title:      "Chebyshev vs random sampling: interpolation undulation",
		PaperClaim: "random sample placement produces extra undulations absent with Chebyshev nodes",
		Run:        runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "MVASD fed Chebyshev-node demand samples, JPetStore",
		PaperClaim: "even 3 Chebyshev nodes yield accurate throughput and cycle-time " +
			"predictions from MVASD",
		Run: runFig16,
	})
}

func runFig13(ctx *Context) (*Outcome, error) {
	o := &Outcome{}
	mus := []float64{1, 1.5, 2, 3}
	tab := report.NewTable("Fig 13 — eq.-19 error bound for f(x)=exp(x/µ) on [-1,1]",
		"Nodes", "µ=1", "µ=1.5", "µ=2", "µ=3")
	chart := &report.Chart{
		Title:  "Fig 13 — Chebyshev error bound vs node count",
		XLabel: "nodes", YLabel: "bound",
	}
	ns := []float64{}
	series := make(map[float64][]float64)
	for n := 1; n <= 10; n++ {
		cells := []string{fmt.Sprint(n)}
		ns = append(ns, float64(n))
		for _, mu := range mus {
			b := chebyshev.ExponentialBound(n, mu)
			cells = append(cells, fmt.Sprintf("%.3g", b))
			series[mu] = append(series[mu], b)
		}
		tab.AddRow(cells...)
	}
	for _, mu := range mus {
		chart.Add(fmt.Sprintf("µ=%g", mu), ns, series[mu])
	}
	o.Tables = append(o.Tables, tab)
	o.Charts = append(o.Charts, chart)
	// Headline claim: bound < 0.2% for > 5 nodes on every µ.
	worstAt6 := 0.0
	for _, mu := range mus {
		if b := chebyshev.ExponentialBound(6, mu); b > worstAt6 {
			worstAt6 = b
		}
	}
	o.metric("worst_bound_at_6_nodes", worstAt6)
	// And the bound must dominate the actually measured interpolation error.
	worstViolation := 0.0
	for _, mu := range mus {
		mu := mu
		f := func(x float64) float64 { return math.Exp(x / mu) }
		for n := 2; n <= 8; n++ {
			actual, err := chebyshev.MaxInterpolationError(f, -1, 1, n, 801)
			if err != nil {
				return nil, err
			}
			bound := chebyshev.ExponentialBound(n, mu)
			if actual > bound && actual-bound > worstViolation {
				worstViolation = actual - bound
			}
		}
	}
	o.metric("worst_bound_violation", worstViolation)
	return o, nil
}

// chebyshevCampaign runs the JPetStore load tests at the integer Chebyshev
// nodes of [1, 300] (the paper's Section-8 settings) and returns the demand
// samples per node count.
func chebyshevCampaign(ctx *Context, counts []int) (map[int][]core.DemandSamples, map[int][]int, error) {
	p := testbed.JPetStore()
	samplesByCount := map[int][]core.DemandSamples{}
	nodesByCount := map[int][]int{}
	for _, k := range counts {
		nodes, err := chebyshev.IntegerNodesOn(1, 300, k)
		if err != nil {
			return nil, nil, err
		}
		results, err := loadgen.Sweep(p, nodes, loadgen.SweepConfig{
			Duration: ctx.measureDuration(), Seed: ctx.Seed + int64(k)*131,
		})
		if err != nil {
			return nil, nil, err
		}
		samples, err := monitor.ExtractDemandSamples(results)
		if err != nil {
			return nil, nil, err
		}
		samplesByCount[k] = samples
		nodesByCount[k] = nodes
	}
	return samplesByCount, nodesByCount, nil
}

func runFig14(ctx *Context) (*Outcome, error) {
	o := &Outcome{}
	samplesByCount, nodesByCount, err := chebyshevCampaign(ctx, []int{3, 5, 7})
	if err != nil {
		return nil, err
	}
	model := testbed.JPetStore().Model(1)
	k := model.StationIndex("db/cpu")
	chart := &report.Chart{
		Title:  "Fig 14 — db/cpu demand splines from Chebyshev 3 / 5 / 7 nodes",
		XLabel: "concurrent users", YLabel: "demand (s)",
	}
	dense := numeric.Linspace(1, 300, 120)
	for _, count := range []int{3, 5, 7} {
		c, err := newSplineCurve(samplesByCount[count][k])
		if err != nil {
			return nil, err
		}
		ys := make([]float64, len(dense))
		for i, x := range dense {
			ys[i] = c.Eval(x)
		}
		chart.Add(fmt.Sprintf("Chebyshev %d %v", count, nodesByCount[count]), dense, ys)
		// Roughness of each interpolation (no Runge oscillation → small).
		spl, err := splineOf(samplesByCount[count][k])
		if err != nil {
			return nil, err
		}
		o.metric(fmt.Sprintf("roughness_cheb%d", count), spl.Roughness())
	}
	o.Charts = append(o.Charts, chart)
	return o, nil
}

func runFig15(ctx *Context) (*Outcome, error) {
	o := &Outcome{}
	p := testbed.JPetStore()
	// Compare spline roughness for 5 Chebyshev nodes vs 5 random points vs
	// 5 equi-spaced points, averaged over several random draws, using the
	// true demand curve sampled noiselessly so placement is the only
	// variable.
	curve := func() func(float64) float64 {
		d := p.Servers[2].Resources[1].Demand // db/disk
		return func(x float64) float64 { return d.At(x) }
	}()
	// Demand samples carry measurement noise (the Service Demand Law
	// divides two measured quantities); model it as 2% multiplicative
	// noise. With noiseless samples of this smooth decay every placement
	// interpolates cleanly — it is the noise interacting with placement
	// that creates the paper's "extra undulations": clustered random
	// points amplify noise into steep spurious slopes.
	const noise = 0.02
	rng := rand.New(rand.NewSource(ctx.Seed + 5))
	sample := func(at []float64) (core.DemandSamples, error) {
		s := core.DemandSamples{At: at, Demands: make([]float64, len(at))}
		for i, a := range at {
			s.Demands[i] = curve(a) * (1 + noise*rng.NormFloat64())
		}
		return s, nil
	}
	// The true demand decays monotonically, so positive interpolant slope
	// is spurious undulation; score each placement by the positive-slope
	// energy ∫ max(0, h'(x))² dx and by mean |error| against the truth,
	// averaged over noise realisations.
	undulation := func(spl *spline.Cubic) float64 {
		return numeric.Simpson(func(x float64) float64 {
			d := spl.EvalDeriv(x, 1)
			if d < 0 {
				return 0
			}
			return d * d
		}, 1, 300, 1e-14)
	}
	meanErr := func(spl *spline.Cubic) float64 {
		sum := 0.0
		grid := numeric.Linspace(1, 300, 400)
		for _, x := range grid {
			sum += math.Abs(spl.Eval(x) - curve(x))
		}
		return sum / float64(len(grid))
	}
	chebNodes, err := chebyshev.NodesOn(1, 300, 5)
	if err != nil {
		return nil, err
	}
	const trials = 60
	measure := func(pick func() []float64) (undMean, errMean float64, last *spline.Cubic, err error) {
		for trial := 0; trial < trials; trial++ {
			s, err := sample(pick())
			if err != nil {
				return 0, 0, nil, err
			}
			spl, err := splineOf(s)
			if err != nil {
				return 0, 0, nil, err
			}
			undMean += undulation(spl)
			errMean += meanErr(spl)
			last = spl
		}
		return undMean / trials, errMean / trials, last, nil
	}
	chebUnd, chebErr, chebSpline, err := measure(func() []float64 {
		return append([]float64(nil), chebNodes...)
	})
	if err != nil {
		return nil, err
	}
	equiUnd, equiErr, equiSpline, err := measure(func() []float64 {
		return numeric.Linspace(1, 300, 5)
	})
	if err != nil {
		return nil, err
	}
	randUnd, randErr, _, err := measure(func() []float64 {
		at := map[float64]bool{}
		for len(at) < 5 {
			at[1+rng.Float64()*299] = true
		}
		var pts []float64
		for v := range at {
			pts = append(pts, v)
		}
		return sortedFloats(pts)
	})
	if err != nil {
		return nil, err
	}
	o.metric("undulation_chebyshev", chebUnd)
	o.metric("undulation_equispaced", equiUnd)
	o.metric("undulation_random_mean", randUnd)
	o.metric("meanerr_chebyshev", chebErr)
	o.metric("meanerr_equispaced", equiErr)
	o.metric("meanerr_random_mean", randErr)
	o.metric("random_to_chebyshev_undulation_ratio", randUnd/math.Max(chebUnd, 1e-18))
	o.metric("random_to_chebyshev_meanerr_ratio", randErr/chebErr)
	chart := &report.Chart{
		Title:  "Fig 15 — db/disk splines: Chebyshev vs equi-spaced 5-point sampling",
		XLabel: "concurrent users", YLabel: "demand (s)",
	}
	dense := numeric.Linspace(1, 300, 120)
	for label, spl := range map[string]interface{ Eval(float64) float64 }{
		"Chebyshev 5":   chebSpline,
		"equi-spaced 5": equiSpline,
	} {
		ys := make([]float64, len(dense))
		for i, x := range dense {
			ys[i] = spl.Eval(x)
		}
		chart.Add(label, dense, ys)
	}
	truth := make([]float64, len(dense))
	for i, x := range dense {
		truth[i] = curve(x)
	}
	chart.Add("true demand", dense, truth)
	o.Charts = append(o.Charts, chart)
	return o, nil
}

func runFig16(ctx *Context) (*Outcome, error) {
	o := &Outcome{}
	p := testbed.JPetStore()
	cam, err := ctx.campaign(p)
	if err != nil {
		return nil, err
	}
	samplesByCount, nodesByCount, err := chebyshevCampaign(ctx, []int{3, 5, 7})
	if err != nil {
		return nil, err
	}
	grid := report.IntsToFloats(cam.EvalConcurrencies)
	xChart := &report.Chart{Title: "Fig 16 — JPetStore throughput: MVASD from Chebyshev nodes", XLabel: "concurrent users", YLabel: "pages/s"}
	cChart := &report.Chart{Title: "Fig 16 — JPetStore cycle time: MVASD from Chebyshev nodes", XLabel: "concurrent users", YLabel: "R+Z (s)"}
	xChart.Add("measured", grid, cam.MeasuredX())
	cChart.Add("measured", grid, cam.MeasuredCycle())
	for _, count := range []int{3, 5, 7} {
		dm, err := core.NewCurveDemands(interp.CubicNotAKnot, samplesByCount[count], interp.Options{})
		if err != nil {
			return nil, err
		}
		res, err := core.MVASD(p.Model(1), p.MaxUsers, dm, core.MVASDOptions{})
		if err != nil {
			return nil, err
		}
		px, pc := PredictionsAt(res, cam.EvalConcurrencies)
		label := fmt.Sprintf("Chebyshev %d", count)
		xChart.Add(label, grid, px)
		cChart.Add(label, grid, pc)
		xDev, _ := metrics.MeanDeviationPct(px, cam.MeasuredX())
		cDev, _ := metrics.MeanDeviationPct(pc, cam.MeasuredCycle())
		o.metric(fmt.Sprintf("cheb%d_throughput_dev_pct", count), xDev)
		o.metric(fmt.Sprintf("cheb%d_cycle_dev_pct", count), cDev)
		o.Notes = append(o.Notes, fmt.Sprintf("Chebyshev %d test points: %v", count, nodesByCount[count]))
	}
	o.Charts = append(o.Charts, xChart, cChart)
	return o, nil
}
