package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/loadgen"
	"repro/internal/monitor"
	"repro/internal/testbed"
)

// Campaign is the cached measurement campaign for one testbed profile: one
// load test per sample concurrency (the paper's Table 2/3 points, whose
// demands feed MVASD) and one per evaluation concurrency (the denser grid
// the "measured" curves of Figs. 4–9 are drawn from). Several experiments
// share one campaign, so each simulation runs once per process.
type Campaign struct {
	Profile *testbed.Profile
	// SampleResults are the load tests at Profile.TestConcurrencies.
	SampleResults []*loadgen.Result
	// EvalConcurrencies / EvalResults form the denser measured grid.
	EvalConcurrencies []int
	EvalResults       []*loadgen.Result
}

// evalGrid returns the dense measured grid for a profile.
func evalGrid(p *testbed.Profile) []int {
	switch p.Name {
	case "VINS":
		return []int{1, 23, 45, 90, 150, 203, 300, 381, 500, 717, 1000, 1250, 1500}
	case "JPetStore":
		return []int{1, 14, 28, 45, 70, 100, 140, 168, 210, 245, 280}
	default:
		// Generic geometric grid up to MaxUsers.
		var out []int
		for n := 1; n < p.MaxUsers; n = n*2 + 1 {
			out = append(out, n)
		}
		return append(out, p.MaxUsers)
	}
}

// campaign returns (running on first use) the cached campaign for a profile.
func (c *Context) campaign(p *testbed.Profile) (*Campaign, error) {
	if c.campaigns == nil {
		c.campaigns = map[string]*Campaign{}
	}
	if cached, ok := c.campaigns[p.Name]; ok {
		return cached, nil
	}
	cfg := loadgen.SweepConfig{Duration: c.measureDuration(), Seed: c.Seed}
	samples, err := loadgen.Sweep(p, p.TestConcurrencies, cfg)
	if err != nil {
		return nil, fmt.Errorf("campaign %s samples: %w", p.Name, err)
	}
	grid := evalGrid(p)
	cfg.Seed = c.Seed + 104729
	evals, err := loadgen.Sweep(p, grid, cfg)
	if err != nil {
		return nil, fmt.Errorf("campaign %s eval grid: %w", p.Name, err)
	}
	cam := &Campaign{
		Profile:           p,
		SampleResults:     samples,
		EvalConcurrencies: grid,
		EvalResults:       evals,
	}
	c.campaigns[p.Name] = cam
	return cam, nil
}

// DemandSamples extracts the per-station demand arrays of the sample sweep.
func (cam *Campaign) DemandSamples() ([]core.DemandSamples, error) {
	return monitor.ExtractDemandSamples(cam.SampleResults)
}

// MeasuredX returns the eval grid's measured throughputs.
func (cam *Campaign) MeasuredX() []float64 {
	_, x, _ := loadgen.MeasuredSeries(cam.EvalResults)
	return x
}

// MeasuredCycle returns the eval grid's measured cycle times (R+Z).
func (cam *Campaign) MeasuredCycle() []float64 {
	_, _, cyc := loadgen.MeasuredSeries(cam.EvalResults)
	return cyc
}

// MVASDResult solves MVASD with spline-interpolated demands from the sample
// sweep, out to the profile's MaxUsers.
func (cam *Campaign) MVASDResult() (*core.Result, error) {
	samples, err := cam.DemandSamples()
	if err != nil {
		return nil, err
	}
	dm, err := core.NewCurveDemands(interp.CubicNotAKnot, samples, interp.Options{})
	if err != nil {
		return nil, err
	}
	return core.MVASD(cam.Profile.Model(1), cam.Profile.MaxUsers, dm, core.MVASDOptions{})
}

// MVAiResult solves Algorithm 2 with the constant demands measured at the
// sample concurrency i (the paper's "MVA i" baselines).
func (cam *Campaign) MVAiResult(i int) (*core.Result, error) {
	var r *loadgen.Result
	for _, sr := range cam.SampleResults {
		if sr.Concurrency == i {
			r = sr
			break
		}
	}
	if r == nil {
		return nil, fmt.Errorf("campaign: no sample at concurrency %d", i)
	}
	m := cam.Profile.Model(i) // shape (servers, kinds); demands overridden
	for k := range m.Stations {
		m.Stations[k].Visits = 1
		m.Stations[k].ServiceTime = r.Demands[k]
	}
	res, _, err := core.ExactMVAMultiServer(m, cam.Profile.MaxUsers,
		core.MultiServerOptions{TraceStation: -1})
	if err != nil {
		return nil, err
	}
	res.Algorithm = fmt.Sprintf("MVA %d", i)
	return res, nil
}

// newSplineCurve fits the paper's default interpolator (not-a-knot cubic
// spline with constant-peg extrapolation, eq. 14) through one station's
// demand samples.
func newSplineCurve(s core.DemandSamples) (*interp.Curve, error) {
	return interp.NewCurve(interp.CubicNotAKnot, s.At, s.Demands, interp.Options{})
}

// PredictionsAt extracts a solver trajectory's (X, R+Z) at the eval grid.
func PredictionsAt(res *core.Result, grid []int) (x, cycle []float64) {
	x = make([]float64, len(grid))
	cycle = make([]float64, len(grid))
	for i, n := range grid {
		x[i] = res.X[n-1]
		cycle[i] = res.Cycle[n-1]
	}
	return x, cycle
}
