// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a named runner that drives the testbed,
// load generator, monitor and analytical solvers, then renders tables/charts
// and reports headline metrics. The registry maps experiment IDs (fig1,
// table2, …) to runners; cmd/experiments exposes them on the command line
// and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/report"
)

// Context carries run-wide configuration into experiment runners.
type Context struct {
	// Out receives rendered tables and charts; defaults to os.Stdout.
	Out io.Writer
	// Quick shortens simulation windows (CI/test mode); headline shapes
	// still hold, confidence intervals are wider.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// CSVDir, when non-empty, receives one CSV per table/chart.
	CSVDir string

	campaigns map[string]*Campaign
}

// NewContext builds a Context with defaults.
func NewContext() *Context {
	return &Context{Out: os.Stdout, Seed: 1}
}

func (c *Context) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

// measureDuration is the per-test measured window in virtual seconds.
func (c *Context) measureDuration() float64 {
	if c.Quick {
		return 300
	}
	return 1200
}

// Outcome is what an experiment produces.
type Outcome struct {
	// ID echoes the experiment.
	ID string
	// Tables and Charts are the rendered artefacts.
	Tables []*report.Table
	Charts []*report.Chart
	// Metrics are the headline numbers (deviation percentages etc.),
	// keyed by stable snake_case names; EXPERIMENTS.md quotes these.
	Metrics map[string]float64
	// Notes are free-form remarks (calibration caveats and the like).
	Notes []string
}

// metric records a headline number.
func (o *Outcome) metric(name string, v float64) {
	if o.Metrics == nil {
		o.Metrics = map[string]float64{}
	}
	o.Metrics[name] = v
}

// Experiment is a registry entry.
type Experiment struct {
	// ID is the paper artefact id: fig1..fig17, table2..table5.
	ID string
	// Title describes the artefact.
	Title string
	// PaperClaim summarises what the paper reports for this artefact.
	PaperClaim string
	// Run executes the experiment.
	Run func(ctx *Context) (*Outcome, error)
}

// registry holds all experiments, populated by the per-area files' init().
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[strings.ToLower(id)]
	return e, ok
}

// All returns every experiment sorted by ID (figures first numerically,
// then tables).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idKey(out[i].ID) < idKey(out[j].ID) })
	return out
}

// idKey orders fig1 < fig3 < … < fig17 < table2 < … .
func idKey(id string) string {
	var kind string
	var num int
	if _, err := fmt.Sscanf(id, "fig%d", &num); err == nil {
		kind = "a"
	} else if _, err := fmt.Sscanf(id, "table%d", &num); err == nil {
		kind = "b"
	} else {
		return "z" + id
	}
	return fmt.Sprintf("%s%03d", kind, num)
}

// RunAndRender executes an experiment and writes its artefacts to ctx.Out
// (and CSVDir if set), returning the outcome.
func RunAndRender(ctx *Context, id string) (*Outcome, error) {
	e, ok := Get(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	fmt.Fprintf(ctx.out(), "=== %s — %s ===\n", e.ID, e.Title)
	if e.PaperClaim != "" {
		fmt.Fprintf(ctx.out(), "paper: %s\n\n", e.PaperClaim)
	}
	o, err := e.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	o.ID = e.ID
	for _, t := range o.Tables {
		if err := t.Render(ctx.out()); err != nil {
			return nil, err
		}
		fmt.Fprintln(ctx.out())
	}
	for _, c := range o.Charts {
		if err := c.Render(ctx.out()); err != nil {
			return nil, err
		}
		fmt.Fprintln(ctx.out())
	}
	if len(o.Metrics) > 0 {
		keys := make([]string, 0, len(o.Metrics))
		for k := range o.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(ctx.out(), "metrics:")
		for _, k := range keys {
			fmt.Fprintf(ctx.out(), "  %-44s %.4g\n", k, o.Metrics[k])
		}
		fmt.Fprintln(ctx.out())
	}
	for _, n := range o.Notes {
		fmt.Fprintf(ctx.out(), "note: %s\n", n)
	}
	if ctx.CSVDir != "" {
		if err := dumpCSV(ctx.CSVDir, e.ID, o); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// dumpCSV writes each artefact of the outcome to CSV files.
func dumpCSV(dir, id string, o *Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range o.Tables {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", id, i)))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for i, c := range o.Charts {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s_chart%d.csv", id, i)))
		if err != nil {
			return err
		}
		if err := c.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
