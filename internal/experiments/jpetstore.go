package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/numeric"
	"repro/internal/report"
	"repro/internal/testbed"
)

func init() {
	register(Experiment{
		ID:         "table3",
		Title:      "Utilization % observed during load testing of the JPetStore application",
		PaperClaim: "DB CPU and disk reach saturation around 140 users (CPU-heavy application)",
		Run:        runTable3,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "MVASD vs multi-server MVA (constant demands) vs measured, JPetStore",
		PaperClaim: "MVASD tracks measured values incl. the knee between 140 and 168 users; " +
			"MVA 28/70/140/210 spread widely",
		Run: runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "MVASD multi-server vs MVASD:Single-Server (normalized demands), JPetStore",
		PaperClaim: "normalising multi-core CPUs into single servers deteriorates prediction, " +
			"especially with a CPU bottleneck",
		Run: runFig8,
	})
	register(Experiment{
		ID:         "fig9",
		Title:      "Measured vs MVASD-predicted DB server utilization, JPetStore",
		PaperClaim: "predicted CPU/disk utilization curves follow measured values to saturation",
		Run:        runFig9,
	})
	register(Experiment{
		ID:         "table5",
		Title:      "Mean deviation in modeling the JPetStore application",
		PaperClaim: "MVASD: X 2.83%, R+Z 1.2%; MVASD:Single-Server ≈19%/4.6%; MVA i up to ≈32%",
		Run:        runTable5,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Service demands interpolated against throughput (Section 7), JPetStore",
		PaperClaim: "demand-vs-throughput models predict with higher deviation " +
			"(≈6.7% X, ≈6.9% R+Z) than demand-vs-concurrency",
		Run: runFig11,
	})
	register(Experiment{
		ID:         "fig12",
		Title:      "Demand splines from 3 / 5 / 7 samples, JPetStore DB server",
		PaperClaim: "3 equi-chosen samples produce visibly worse interpolation than 5 or 7",
		Run:        runFig12,
	})
}

func runTable3(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.JPetStore())
	if err != nil {
		return nil, err
	}
	matrix, err := monitor.BuildUtilizationMatrix(cam.SampleResults)
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	headers := append([]string{"Users", "X (pages/s)"}, matrix.Stations...)
	tab := report.NewTable("Table 3 — JPetStore utilization % (CPU columns are per-core averages)", headers...)
	for i, n := range matrix.Concurrency {
		cells := []string{fmt.Sprint(n), report.F(matrix.Throughput[i], 1)}
		for _, v := range matrix.Pct[i] {
			cells = append(cells, report.Pct(v))
		}
		tab.AddRow(cells...)
	}
	o.Tables = append(o.Tables, tab)
	hot, pct := matrix.HottestStation()
	o.metric("bottleneck_util_pct", pct)
	o.metric("db_cpu_util_pct_at_max", matrix.Station("db/cpu")[len(matrix.Concurrency)-1])
	o.metric("db_disk_util_pct_at_max", matrix.Station("db/disk")[len(matrix.Concurrency)-1])
	o.Notes = append(o.Notes, fmt.Sprintf("measured bottleneck: %s at %.1f%%", hot, pct))
	return o, nil
}

// jpetMVAiLevels are the paper's JPetStore constant-demand baselines.
var jpetMVAiLevels = []int{28, 70, 140, 210}

func runFig7(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.JPetStore())
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	grid := report.IntsToFloats(cam.EvalConcurrencies)
	xChart := &report.Chart{Title: "Fig 7 — JPetStore throughput: measured vs MVASD vs MVA i", XLabel: "concurrent users", YLabel: "pages/s"}
	cChart := &report.Chart{Title: "Fig 7 — JPetStore cycle time: measured vs MVASD vs MVA i", XLabel: "concurrent users", YLabel: "R+Z (s)"}
	xChart.Add("measured", grid, cam.MeasuredX())
	cChart.Add("measured", grid, cam.MeasuredCycle())
	sd, err := cam.MVASDResult()
	if err != nil {
		return nil, err
	}
	px, pc := PredictionsAt(sd, cam.EvalConcurrencies)
	xChart.Add("MVASD", grid, px)
	cChart.Add("MVASD", grid, pc)
	xDev, _ := metrics.MeanDeviationPct(px, cam.MeasuredX())
	o.metric("mvasd_throughput_dev_pct", xDev)
	for _, i := range jpetMVAiLevels {
		res, err := cam.MVAiResult(i)
		if err != nil {
			return nil, err
		}
		mx, mc := PredictionsAt(res, cam.EvalConcurrencies)
		xChart.Add(res.Algorithm, grid, mx)
		cChart.Add(res.Algorithm, grid, mc)
		dev, _ := metrics.MeanDeviationPct(mx, cam.MeasuredX())
		o.metric(fmt.Sprintf("mva%d_throughput_dev_pct", i), dev)
	}
	o.Charts = append(o.Charts, xChart, cChart)
	return o, nil
}

// mvasdSingleServer solves the Fig.-8 baseline on a campaign.
func mvasdSingleServer(cam *Campaign) (*core.Result, error) {
	samples, err := cam.DemandSamples()
	if err != nil {
		return nil, err
	}
	dm, err := core.NewCurveDemands(interp.CubicNotAKnot, samples, interp.Options{})
	if err != nil {
		return nil, err
	}
	return core.MVASDSingleServer(cam.Profile.Model(1), cam.Profile.MaxUsers, dm, core.MVASDOptions{})
}

func runFig8(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.JPetStore())
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	grid := report.IntsToFloats(cam.EvalConcurrencies)
	xChart := &report.Chart{Title: "Fig 8 — JPetStore throughput: multi-server vs single-server MVASD", XLabel: "concurrent users", YLabel: "pages/s"}
	cChart := &report.Chart{Title: "Fig 8 — JPetStore cycle time: multi-server vs single-server MVASD", XLabel: "concurrent users", YLabel: "R+Z (s)"}
	xChart.Add("measured", grid, cam.MeasuredX())
	cChart.Add("measured", grid, cam.MeasuredCycle())
	multi, err := cam.MVASDResult()
	if err != nil {
		return nil, err
	}
	single, err := mvasdSingleServer(cam)
	if err != nil {
		return nil, err
	}
	mx, mc := PredictionsAt(multi, cam.EvalConcurrencies)
	sx, sc := PredictionsAt(single, cam.EvalConcurrencies)
	xChart.Add("MVASD", grid, mx)
	xChart.Add("MVASD single-server", grid, sx)
	cChart.Add("MVASD", grid, mc)
	cChart.Add("MVASD single-server", grid, sc)
	o.Charts = append(o.Charts, xChart, cChart)
	mDev, _ := metrics.MeanDeviationPct(mx, cam.MeasuredX())
	sDev, _ := metrics.MeanDeviationPct(sx, cam.MeasuredX())
	o.metric("mvasd_throughput_dev_pct", mDev)
	o.metric("single_server_throughput_dev_pct", sDev)
	mcDev, _ := metrics.MeanDeviationPct(mc, cam.MeasuredCycle())
	scDev, _ := metrics.MeanDeviationPct(sc, cam.MeasuredCycle())
	o.metric("mvasd_cycle_dev_pct", mcDev)
	o.metric("single_server_cycle_dev_pct", scDev)
	return o, nil
}

func runFig9(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.JPetStore())
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	sd, err := cam.MVASDResult()
	if err != nil {
		return nil, err
	}
	grid := report.IntsToFloats(cam.EvalConcurrencies)
	chart := &report.Chart{
		Title:  "Fig 9 — JPetStore DB server utilization: measured vs MVASD",
		XLabel: "concurrent users", YLabel: "utilization (%)",
	}
	matrix, err := monitor.BuildUtilizationMatrix(cam.EvalResults)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"db/cpu", "db/disk"} {
		k := sd.StationIndex(name)
		pred := make([]float64, len(cam.EvalConcurrencies))
		for i, n := range cam.EvalConcurrencies {
			pred[i] = sd.Util[n-1][k] * 100
		}
		meas := matrix.Station(name)
		chart.Add(name+" measured", grid, meas)
		chart.Add(name+" MVASD", grid, pred)
		dev, _ := metrics.MeanDeviationPct(pred, meas)
		o.metric("util_dev_pct_"+name[3:], dev)
	}
	o.Charts = append(o.Charts, chart)
	return o, nil
}

func runTable5(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.JPetStore())
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	tab := report.NewTable("Table 5 — Mean deviation in modeling JPetStore (eq. 15, %)",
		"Metric", "Model", "Deviation (%)")
	type entry struct {
		name     string
		x, cycle []float64
	}
	var entries []entry
	single, err := mvasdSingleServer(cam)
	if err != nil {
		return nil, err
	}
	sx, sc := PredictionsAt(single, cam.EvalConcurrencies)
	entries = append(entries, entry{"MVASD: Single-Server", sx, sc})
	multi, err := cam.MVASDResult()
	if err != nil {
		return nil, err
	}
	mx, mc := PredictionsAt(multi, cam.EvalConcurrencies)
	entries = append(entries, entry{"MVASD", mx, mc})
	for _, i := range jpetMVAiLevels {
		res, err := cam.MVAiResult(i)
		if err != nil {
			return nil, err
		}
		x, c := PredictionsAt(res, cam.EvalConcurrencies)
		entries = append(entries, entry{res.Algorithm, x, c})
	}
	for _, e := range entries {
		dev, _ := metrics.MeanDeviationPct(e.x, cam.MeasuredX())
		tab.AddRow("Throughput", e.name, report.F(dev, 2))
		o.metric(metricKey(e.name)+"_throughput_dev_pct", dev)
	}
	for _, e := range entries {
		dev, _ := metrics.MeanDeviationPct(e.cycle, cam.MeasuredCycle())
		tab.AddRow("Cycle Time", e.name, report.F(dev, 2))
		o.metric(metricKey(e.name)+"_cycle_dev_pct", dev)
	}
	o.Tables = append(o.Tables, tab)
	return o, nil
}

// metricKey converts a model label to a snake_case metric prefix.
func metricKey(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		default:
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	return string(out)
}

func runFig11(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.JPetStore())
	if err != nil {
		return nil, err
	}
	o := &Outcome{}
	samplesX, err := monitor.ExtractDemandSamplesVsThroughput(cam.SampleResults)
	if err != nil {
		return nil, err
	}
	// Demand-vs-throughput splines for the DB server (the figure).
	chart := &report.Chart{
		Title:  "Fig 11 — JPetStore DB demands interpolated against throughput",
		XLabel: "throughput (pages/s)", YLabel: "demand (s)",
	}
	model := cam.Profile.Model(1)
	for _, name := range []string{"db/cpu", "db/disk"} {
		k := model.StationIndex(name)
		c, err := newSplineCurve(samplesX[k])
		if err != nil {
			return nil, err
		}
		lo, hi := c.Domain()
		dense := numeric.Linspace(lo, hi, 100)
		ys := make([]float64, len(dense))
		for i, x := range dense {
			ys[i] = c.Eval(x)
		}
		chart.Add(name, dense, ys)
	}
	o.Charts = append(o.Charts, chart)
	// MVASD with demands as a function of throughput (fixed point per step).
	dm, err := core.NewThroughputDemands(interp.CubicNotAKnot, samplesX, interp.Options{})
	if err != nil {
		return nil, err
	}
	res, err := core.MVASD(cam.Profile.Model(1), cam.Profile.MaxUsers, dm, core.MVASDOptions{})
	if err != nil {
		return nil, err
	}
	px, pc := PredictionsAt(res, cam.EvalConcurrencies)
	xDev, _ := metrics.MeanDeviationPct(px, cam.MeasuredX())
	cDev, _ := metrics.MeanDeviationPct(pc, cam.MeasuredCycle())
	o.metric("vs_throughput_x_dev_pct", xDev)
	o.metric("vs_throughput_cycle_dev_pct", cDev)
	// Reference: the concurrency-indexed MVASD on the same data.
	sd, err := cam.MVASDResult()
	if err != nil {
		return nil, err
	}
	bx, bc := PredictionsAt(sd, cam.EvalConcurrencies)
	bxDev, _ := metrics.MeanDeviationPct(bx, cam.MeasuredX())
	bcDev, _ := metrics.MeanDeviationPct(bc, cam.MeasuredCycle())
	o.metric("vs_concurrency_x_dev_pct", bxDev)
	o.metric("vs_concurrency_cycle_dev_pct", bcDev)
	return o, nil
}

func runFig12(ctx *Context) (*Outcome, error) {
	cam, err := ctx.campaign(testbed.JPetStore())
	if err != nil {
		return nil, err
	}
	samples, err := cam.DemandSamples()
	if err != nil {
		return nil, err
	}
	model := cam.Profile.Model(1)
	k := model.StationIndex("db/cpu")
	full := samples[k]
	o := &Outcome{}
	chart := &report.Chart{
		Title:  "Fig 12 — JPetStore db/cpu demand splines from 3 / 5 / 7 samples",
		XLabel: "concurrent users", YLabel: "demand (s)",
	}
	subsets := map[string][]float64{
		"3 samples": {1, 14, 28},
		"5 samples": {1, 14, 28, 70, 140},
		"7 samples": {1, 14, 28, 70, 140, 168, 210},
	}
	dense := numeric.Linspace(1, 280, 120)
	curves := map[string][]float64{}
	for label, keep := range subsets {
		sub := subsetSamples(full, keep)
		c, err := newSplineCurve(sub)
		if err != nil {
			return nil, err
		}
		ys := make([]float64, len(dense))
		for i, x := range dense {
			ys[i] = c.Eval(x)
		}
		curves[label] = ys
		chart.Add(label, dense, ys)
	}
	o.Charts = append(o.Charts, chart)
	// Divergence of the sparse interpolations from the 7-sample reference.
	for _, label := range []string{"3 samples", "5 samples"} {
		dev, _ := metrics.MeanDeviationPct(curves[label], curves["7 samples"])
		o.metric(metricKey(label)+"_vs_7_dev_pct", dev)
	}
	return o, nil
}

// subsetSamples keeps the sample points whose abscissa is in keep.
func subsetSamples(s core.DemandSamples, keep []float64) core.DemandSamples {
	want := map[float64]bool{}
	for _, v := range keep {
		want[v] = true
	}
	var out core.DemandSamples
	for i, a := range s.At {
		if want[a] {
			out.At = append(out.At, a)
			out.Demands = append(out.Demands, s.Demands[i])
		}
	}
	return out
}
