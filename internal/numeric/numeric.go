// Package numeric provides the low-level numerical routines that the rest of
// the library is built on: linear-system solvers for the banded systems that
// arise in spline construction, polynomial evaluation, root finding,
// quadrature and grid helpers.
//
// Everything here is dependency-free (stdlib only) and deterministic. The
// routines are deliberately small and specialised rather than general: the
// spline and Chebyshev packages need tridiagonal and five-diagonal solves,
// Horner evaluation, Brent root finding and adaptive Simpson quadrature, and
// nothing more exotic.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// Eps is the default relative tolerance used by iterative routines in this
// package when the caller passes a non-positive tolerance.
const Eps = 1e-12

// ErrSingular is returned when a linear solve encounters a (numerically)
// singular system.
var ErrSingular = errors.New("numeric: singular system")

// ErrBadInput is returned for structurally invalid inputs (mismatched
// lengths, empty systems, unordered abscissae and similar).
var ErrBadInput = errors.New("numeric: bad input")

// SolveTridiagonal solves the tridiagonal system
//
//	b[0]   c[0]                      x[0]     d[0]
//	a[1]   b[1]  c[1]                x[1]     d[1]
//	       a[2]  b[2] c[2]         · x[2]  =  d[2]
//	             ...                  ...      ...
//	                  a[n-1] b[n-1]  x[n-1]   d[n-1]
//
// using the Thomas algorithm. a[0] and c[n-1] are ignored. The inputs are not
// modified; the solution is returned in a fresh slice. The Thomas algorithm
// is numerically stable for the diagonally dominant systems produced by
// cubic-spline construction.
func SolveTridiagonal(a, b, c, d []float64) ([]float64, error) {
	n := len(b)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty system", ErrBadInput)
	}
	if len(a) != n || len(c) != n || len(d) != n {
		return nil, fmt.Errorf("%w: tridiagonal bands must have equal length (got a=%d b=%d c=%d d=%d)",
			ErrBadInput, len(a), len(b), len(c), len(d))
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if b[0] == 0 {
		return nil, fmt.Errorf("%w: zero pivot at row 0", ErrSingular)
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return nil, fmt.Errorf("%w: zero pivot at row %d", ErrSingular, i)
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}

// SolveBandedSPD solves A·x = d for a symmetric positive-definite banded
// matrix A with lower bandwidth bw, given in compact symmetric-band storage:
// band[i][j] holds A[i][i+j] for j = 0..bw (zero-padded past the matrix
// edge). It performs an in-place-free banded Cholesky factorisation
// (A = L·D·Lᵀ) followed by forward/back substitution. The Reinsch smoothing
// spline needs exactly this with bw = 2.
func SolveBandedSPD(band [][]float64, d []float64, bw int) ([]float64, error) {
	n := len(d)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty system", ErrBadInput)
	}
	if len(band) != n {
		return nil, fmt.Errorf("%w: band rows %d != n %d", ErrBadInput, len(band), n)
	}
	for i := range band {
		if len(band[i]) != bw+1 {
			return nil, fmt.Errorf("%w: band row %d has width %d, want %d", ErrBadInput, i, len(band[i]), bw+1)
		}
	}
	// L is unit lower triangular with the same bandwidth; D is diagonal.
	low := make([][]float64, n) // low[i][j] = L[i][i-1-j] for j=0..bw-1
	diag := make([]float64, n)
	for i := range low {
		low[i] = make([]float64, bw)
	}
	for i := 0; i < n; i++ {
		sum := band[i][0]
		for k := max(0, i-bw); k < i; k++ {
			lik := low[i][i-1-k]
			sum -= lik * lik * diag[k]
		}
		if sum <= 0 {
			return nil, fmt.Errorf("%w: non-positive pivot %g at row %d", ErrSingular, sum, i)
		}
		diag[i] = sum
		for j := i + 1; j <= i+bw && j < n; j++ {
			s := 0.0
			if j-i <= bw {
				s = band[i][j-i]
			}
			for k := max(0, j-bw); k < i; k++ {
				s -= low[j][j-1-k] * low[i][i-1-k] * diag[k]
			}
			low[j][j-1-i] = s / diag[i]
		}
	}
	// Forward solve L·y = d.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := d[i]
		for k := max(0, i-bw); k < i; k++ {
			s -= low[i][i-1-k] * y[k]
		}
		y[i] = s
	}
	// Diagonal solve D·z = y, then back solve Lᵀ·x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i] / diag[i]
		for k := i + 1; k <= i+bw && k < n; k++ {
			s -= low[k][k-1-i] * x[k]
		}
		x[i] = s
	}
	return x, nil
}

// Horner evaluates the polynomial with coefficients coef (coef[0] is the
// constant term) at x using Horner's scheme.
func Horner(coef []float64, x float64) float64 {
	v := 0.0
	for i := len(coef) - 1; i >= 0; i-- {
		v = v*x + coef[i]
	}
	return v
}

// HornerDeriv evaluates the polynomial and its first derivative at x in a
// single Horner pass, returning (p(x), p'(x)).
func HornerDeriv(coef []float64, x float64) (float64, float64) {
	if len(coef) == 0 {
		return 0, 0
	}
	p := coef[len(coef)-1]
	dp := 0.0
	for i := len(coef) - 2; i >= 0; i-- {
		dp = dp*x + p
		p = p*x + coef[i]
	}
	return p, dp
}

// Neville performs Neville's algorithm for polynomial interpolation through
// the points (xs[i], ys[i]) and evaluates the unique interpolating polynomial
// at x. It is O(n²) and intended for small n (Chebyshev error studies).
func Neville(xs, ys []float64, x float64) (float64, error) {
	n := len(xs)
	if n == 0 || len(ys) != n {
		return 0, fmt.Errorf("%w: need equal non-empty xs/ys", ErrBadInput)
	}
	p := make([]float64, n)
	copy(p, ys)
	for level := 1; level < n; level++ {
		for i := 0; i < n-level; i++ {
			den := xs[i] - xs[i+level]
			if den == 0 {
				return 0, fmt.Errorf("%w: duplicate abscissa %g", ErrBadInput, xs[i])
			}
			p[i] = ((x-xs[i+level])*p[i] + (xs[i]-x)*p[i+1]) / den
		}
	}
	return p[0], nil
}

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs. tol is the absolute interval tolerance (Eps·|b−a| if
// non-positive).
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(a) and f(b) have the same sign", ErrBadInput)
	}
	if tol <= 0 {
		tol = Eps * math.Abs(b-a)
	}
	for math.Abs(b-a) > tol {
		m := a + (b-a)/2
		if m == a || m == b {
			break // interval below floating-point resolution
		}
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). f(a) and f(b) must bracket a root.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: root not bracketed", ErrBadInput)
	}
	if tol <= 0 {
		tol = Eps
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	var d, e float64 = b - a, b - a
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.Nextafter(math.Abs(b), math.Inf(1)) - 2*math.Abs(b) + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			var p, q float64
			s := fb / fa
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
		if math.Signbit(fb) == math.Signbit(fc) {
			c, fc = a, fa
			e = b - a
			d = e
		}
	}
	return b, nil
}

// Simpson integrates f over [a, b] using adaptive Simpson quadrature with
// absolute tolerance tol (Eps if non-positive) and a recursion-depth cap.
func Simpson(f func(float64) float64, a, b, tol float64) float64 {
	if tol <= 0 {
		tol = Eps
	}
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	s := (b - a) / 6 * (fa + 4*fc + fb)
	return adaptiveSimpson(f, a, b, fa, fb, fc, s, tol, 30)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := (a + b) / 2
	l, r := (a+c)/2, (c+b)/2
	fl, fr := f(l), f(r)
	left := (c - a) / 6 * (fa + 4*fl + fc)
	right := (b - c) / 6 * (fc + 4*fr + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpson(f, a, c, fa, fc, fl, left, tol/2, depth-1) +
		adaptiveSimpson(f, c, b, fc, fb, fr, right, tol/2, depth-1)
}

// Linspace returns n evenly spaced points covering [a, b] inclusive. n must
// be at least 2; Linspace panics otherwise, because a misuse is always a
// programming error in this codebase.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("numeric.Linspace: n must be >= 2, got %d", n))
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b // exact endpoint despite rounding
	return out
}

// IsSortedStrict reports whether xs is strictly increasing.
func IsSortedStrict(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AlmostEqual reports whether a and b agree to within relative tolerance rel
// (with an absolute floor of rel for values near zero).
func AlmostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*math.Max(scale, 1)
}

// Factorial returns n! as a float64 (exact up to n = 170, +Inf beyond).
func Factorial(n int) float64 {
	v := 1.0
	for i := 2; i <= n; i++ {
		v *= float64(i)
	}
	return v
}

// FiniteDiffDeriv estimates the k-th derivative (k = 1 or 2) of f at x with
// central differences of step h.
func FiniteDiffDeriv(f func(float64) float64, x, h float64, k int) float64 {
	switch k {
	case 1:
		return (f(x+h) - f(x-h)) / (2 * h)
	case 2:
		return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
	default:
		panic(fmt.Sprintf("numeric.FiniteDiffDeriv: unsupported order %d", k))
	}
}
