package numeric

import (
	"fmt"
	"math"
	"sort"
)

// NelderMeadOptions tunes the downhill-simplex minimiser.
type NelderMeadOptions struct {
	// MaxIter caps the iterations (default 2000).
	MaxIter int
	// Tol is the simplex function-value spread at which to stop
	// (default 1e-10).
	Tol float64
	// Scale is the initial simplex edge length relative to |x0|
	// (default 0.05, with an absolute floor of 0.0025).
	Scale float64
}

func (o *NelderMeadOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
}

// NelderMead minimises f over ℝⁿ starting from x0 with the classic
// downhill-simplex method (reflection/expansion/contraction/shrink). It is
// derivative-free and robust enough for the low-dimensional curve fits this
// library needs (2–3 parameter saturation models). Returns the best point
// found and its value.
func NelderMead(f func([]float64) float64, x0 []float64, opts NelderMeadOptions) ([]float64, float64, error) {
	n := len(x0)
	if n == 0 {
		return nil, 0, fmt.Errorf("%w: empty start point", ErrBadInput)
	}
	opts.defaults()
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	type vertex struct {
		x []float64
		v float64
	}
	eval := func(x []float64) float64 {
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].v = eval(simplex[0].x)
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		step := opts.Scale * math.Abs(x[i])
		if step < 0.0025 {
			step = 0.0025
		}
		x[i] += step
		simplex[i+1] = vertex{x: x, v: eval(x)}
	}
	centroid := make([]float64, n)
	trial := make([]float64, n)
	for iter := 0; iter < opts.MaxIter; iter++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
		// Converged only when both the value spread AND the simplex
		// diameter are small: vertices symmetric about a minimum have
		// equal values long before the simplex has collapsed.
		if math.Abs(simplex[n].v-simplex[0].v) <= opts.Tol*(math.Abs(simplex[0].v)+opts.Tol) {
			diam := 0.0
			for i := 1; i <= n; i++ {
				for j := range simplex[i].x {
					d := math.Abs(simplex[i].x[j] - simplex[0].x[j])
					scale := math.Max(math.Abs(simplex[0].x[j]), 1)
					if rel := d / scale; rel > diam {
						diam = rel
					}
				}
			}
			if diam <= math.Sqrt(opts.Tol) {
				break
			}
			// Value-flat but wide simplex: shrink toward the best vertex
			// to break symmetric stalls.
			for i := 1; i <= n; i++ {
				for j := range simplex[i].x {
					simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
				}
				simplex[i].v = eval(simplex[i].x)
			}
			continue
		}
		// Centroid of all but the worst.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		worst := simplex[n]
		// Reflection.
		for j := range trial {
			trial[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		vr := eval(trial)
		switch {
		case vr < simplex[0].v:
			// Expansion.
			exp := make([]float64, n)
			for j := range exp {
				exp[j] = centroid[j] + gamma*(trial[j]-centroid[j])
			}
			if ve := eval(exp); ve < vr {
				simplex[n] = vertex{x: exp, v: ve}
			} else {
				simplex[n] = vertex{x: append([]float64(nil), trial...), v: vr}
			}
		case vr < simplex[n-1].v:
			simplex[n] = vertex{x: append([]float64(nil), trial...), v: vr}
		default:
			// Contraction (toward the better of worst/reflected).
			ref := worst.x
			refV := worst.v
			if vr < worst.v {
				ref = trial
				refV = vr
			}
			con := make([]float64, n)
			for j := range con {
				con[j] = centroid[j] + rho*(ref[j]-centroid[j])
			}
			if vc := eval(con); vc < refV {
				simplex[n] = vertex{x: con, v: vc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].v = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
	return simplex[0].x, simplex[0].v, nil
}
