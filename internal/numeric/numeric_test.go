package numeric

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveTridiagonalKnownSystem(t *testing.T) {
	// System:
	//  2x + y       = 5
	//  x + 2y + z   = 10
	//      y + 2z   = 11
	// Solution: x=1.5, y=2, z=4.5.
	a := []float64{0, 1, 1}
	b := []float64{2, 2, 2}
	c := []float64{1, 1, 0}
	d := []float64{5, 10, 11}
	x, err := SolveTridiagonal(a, b, c, d)
	if err != nil {
		t.Fatalf("SolveTridiagonal: %v", err)
	}
	want := []float64{1.5, 2, 4.5}
	for i := range want {
		if !AlmostEqual(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveTridiagonalSingleEquation(t *testing.T) {
	x, err := SolveTridiagonal([]float64{0}, []float64{4}, []float64{0}, []float64{8})
	if err != nil {
		t.Fatalf("SolveTridiagonal: %v", err)
	}
	if x[0] != 2 {
		t.Errorf("x[0] = %g, want 2", x[0])
	}
}

func TestSolveTridiagonalErrors(t *testing.T) {
	if _, err := SolveTridiagonal(nil, nil, nil, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty system: got %v, want ErrBadInput", err)
	}
	if _, err := SolveTridiagonal([]float64{0}, []float64{0}, []float64{0}, []float64{1}); !errors.Is(err, ErrSingular) {
		t.Errorf("zero pivot: got %v, want ErrSingular", err)
	}
	if _, err := SolveTridiagonal([]float64{0, 1}, []float64{1}, []float64{0}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("length mismatch: got %v, want ErrBadInput", err)
	}
}

// TestSolveTridiagonalProperty builds random diagonally dominant systems,
// solves them, and checks the residual.
func TestSolveTridiagonalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float64()*2 - 1
			c[i] = rng.Float64()*2 - 1
			b[i] = 3 + rng.Float64() // dominant
			d[i] = rng.Float64()*10 - 5
		}
		x, err := SolveTridiagonal(a, b, c, d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			r := b[i] * x[i]
			if i > 0 {
				r += a[i] * x[i-1]
			}
			if i < n-1 {
				r += c[i] * x[i+1]
			}
			if !AlmostEqual(r, d[i], 1e-9) {
				t.Fatalf("trial %d: residual row %d: %g vs %g", trial, i, r, d[i])
			}
		}
	}
}

func TestSolveBandedSPDMatchesTridiagonal(t *testing.T) {
	// A symmetric tridiagonal SPD system solved both ways must agree.
	n := 12
	rng := rand.New(rand.NewSource(7))
	sub := make([]float64, n)
	diag := make([]float64, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		sub[i] = rng.Float64()
		diag[i] = 4 + rng.Float64()
		d[i] = rng.Float64() * 5
	}
	band := make([][]float64, n)
	for i := range band {
		band[i] = make([]float64, 3)
		band[i][0] = diag[i]
		if i+1 < n {
			band[i][1] = sub[i+1]
		}
	}
	x1, err := SolveBandedSPD(band, d, 2)
	if err != nil {
		t.Fatalf("SolveBandedSPD: %v", err)
	}
	up := make([]float64, n)
	copy(up, sub[1:])
	x2, err := SolveTridiagonal(sub, diag, up, d)
	if err != nil {
		t.Fatalf("SolveTridiagonal: %v", err)
	}
	for i := range x1 {
		if !AlmostEqual(x1[i], x2[i], 1e-9) {
			t.Errorf("x[%d]: banded %g vs tridiag %g", i, x1[i], x2[i])
		}
	}
}

func TestSolveBandedSPDPentadiagonalResidual(t *testing.T) {
	// Random SPD pentadiagonal built as B·Bᵀ + n·I for banded B.
	n := 20
	rng := rand.New(rand.NewSource(99))
	full := make([][]float64, n)
	for i := range full {
		full[i] = make([]float64, n)
	}
	// Start from a banded symmetric matrix and make it dominant.
	for i := 0; i < n; i++ {
		full[i][i] = 10 + rng.Float64()
		if i+1 < n {
			v := rng.Float64() - 0.5
			full[i][i+1], full[i+1][i] = v, v
		}
		if i+2 < n {
			v := rng.Float64() - 0.5
			full[i][i+2], full[i+2][i] = v, v
		}
	}
	band := make([][]float64, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		band[i] = make([]float64, 3)
		for j := 0; j <= 2; j++ {
			if i+j < n {
				band[i][j] = full[i][i+j]
			}
		}
		d[i] = rng.Float64() * 3
	}
	x, err := SolveBandedSPD(band, d, 2)
	if err != nil {
		t.Fatalf("SolveBandedSPD: %v", err)
	}
	for i := 0; i < n; i++ {
		r := 0.0
		for j := 0; j < n; j++ {
			r += full[i][j] * x[j]
		}
		if !AlmostEqual(r, d[i], 1e-8) {
			t.Errorf("residual row %d: %g vs %g", i, r, d[i])
		}
	}
}

func TestSolveBandedSPDErrors(t *testing.T) {
	if _, err := SolveBandedSPD(nil, nil, 2); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty: got %v", err)
	}
	band := [][]float64{{-1, 0, 0}}
	if _, err := SolveBandedSPD(band, []float64{1}, 2); !errors.Is(err, ErrSingular) {
		t.Errorf("negative pivot: got %v", err)
	}
}

func TestHorner(t *testing.T) {
	// p(x) = 1 + 2x + 3x²  → p(2) = 17
	if got := Horner([]float64{1, 2, 3}, 2); got != 17 {
		t.Errorf("Horner = %g, want 17", got)
	}
	if got := Horner(nil, 5); got != 0 {
		t.Errorf("Horner(nil) = %g, want 0", got)
	}
}

func TestHornerDeriv(t *testing.T) {
	// p(x) = 4 - x + 2x³ → p'(x) = -1 + 6x²; at x=3: p=53, p'=53.
	p, dp := HornerDeriv([]float64{4, -1, 0, 2}, 3)
	if p != 55 {
		t.Errorf("p(3) = %g, want 55", p)
	}
	if dp != 53 {
		t.Errorf("p'(3) = %g, want 53", dp)
	}
}

func TestHornerDerivMatchesFiniteDifference(t *testing.T) {
	coef := []float64{0.5, -1.2, 0.3, 2.0, -0.7}
	f := func(x float64) float64 { return Horner(coef, x) }
	for _, x := range []float64{-2, -0.5, 0, 1.3, 4} {
		_, dp := HornerDeriv(coef, x)
		fd := FiniteDiffDeriv(f, x, 1e-5, 1)
		if !AlmostEqual(dp, fd, 1e-5) {
			t.Errorf("x=%g: analytic %g vs FD %g", x, dp, fd)
		}
	}
}

func TestNevilleReproducesPolynomial(t *testing.T) {
	// Interpolating 4 points of a cubic must reproduce it exactly.
	coef := []float64{2, -3, 0.5, 1}
	xs := []float64{-1, 0, 2, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = Horner(coef, x)
	}
	for _, x := range []float64{-0.5, 1, 3.7} {
		got, err := Neville(xs, ys, x)
		if err != nil {
			t.Fatalf("Neville: %v", err)
		}
		if want := Horner(coef, x); !AlmostEqual(got, want, 1e-10) {
			t.Errorf("Neville(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestNevilleErrors(t *testing.T) {
	if _, err := Neville(nil, nil, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Neville([]float64{1, 1}, []float64{0, 1}, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("duplicate abscissa: %v", err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if !AlmostEqual(root, math.Sqrt2, 1e-10) {
		t.Errorf("root = %g, want √2", root)
	}
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("same-sign bracket: %v", err)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, 0); err != nil || r != 0 {
		t.Errorf("root at a: %g, %v", r, err)
	}
	if r, err := Bisect(f, -1, 0, 0); err != nil || r != 0 {
		t.Errorf("root at b: %g, %v", r, err)
	}
}

func TestBrent(t *testing.T) {
	root, err := Brent(func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 1e-14)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	// The Dottie number.
	if !AlmostEqual(root, 0.7390851332151607, 1e-9) {
		t.Errorf("root = %.16g, want Dottie number", root)
	}
	if _, err := Brent(func(x float64) float64 { return 1 }, 0, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("unbracketed: %v", err)
	}
}

func TestBrentAgreesWithBisect(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) - 3*x*x }
	r1, err := Brent(f, -1, 0, 1e-13)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	r2, err := Bisect(f, -1, 0, 1e-13)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if !AlmostEqual(r1, r2, 1e-9) {
		t.Errorf("Brent %g vs Bisect %g", r1, r2)
	}
}

func TestSimpson(t *testing.T) {
	// ∫₀^π sin = 2
	got := Simpson(math.Sin, 0, math.Pi, 1e-12)
	if !AlmostEqual(got, 2, 1e-9) {
		t.Errorf("∫sin = %.12g, want 2", got)
	}
	// ∫₀¹ x² = 1/3 (exact for Simpson)
	got = Simpson(func(x float64) float64 { return x * x }, 0, 1, 1e-12)
	if !AlmostEqual(got, 1.0/3.0, 1e-12) {
		t.Errorf("∫x² = %.12g, want 1/3", got)
	}
	// Reversed interval gives the negated integral.
	got = Simpson(math.Sin, math.Pi, 0, 1e-12)
	if !AlmostEqual(got, -2, 1e-9) {
		t.Errorf("reversed ∫sin = %.12g, want -2", got)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if xs[i] != want[i] {
			t.Errorf("xs[%d] = %g, want %g", i, xs[i], want[i])
		}
	}
	if xs := Linspace(3, 3, 2); xs[0] != 3 || xs[1] != 3 {
		t.Errorf("degenerate interval: %v", xs)
	}
	defer func() {
		if recover() == nil {
			t.Error("Linspace(0,1,1) should panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestIsSortedStrict(t *testing.T) {
	cases := []struct {
		xs   []float64
		want bool
	}{
		{nil, true},
		{[]float64{1}, true},
		{[]float64{1, 2, 3}, true},
		{[]float64{1, 1, 2}, false},
		{[]float64{3, 2}, false},
	}
	for _, c := range cases {
		if got := IsSortedStrict(c.xs); got != c.want {
			t.Errorf("IsSortedStrict(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(v, lo, hi)
		return c >= lo && c <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFactorial(t *testing.T) {
	cases := map[int]float64{0: 1, 1: 1, 5: 120, 10: 3628800}
	for n, want := range cases {
		if got := Factorial(n); got != want {
			t.Errorf("%d! = %g, want %g", n, got, want)
		}
	}
}

func TestFiniteDiffDerivSecondOrder(t *testing.T) {
	f := math.Exp
	d2 := FiniteDiffDeriv(f, 1, 1e-4, 2)
	if !AlmostEqual(d2, math.E, 1e-6) {
		t.Errorf("f''(1) = %g, want e", d2)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1, 0) {
		t.Error("identical values must compare equal at zero tolerance")
	}
	if AlmostEqual(1, 2, 1e-6) {
		t.Error("1 and 2 are not almost equal")
	}
	if !AlmostEqual(1e-15, 0, 1e-12) {
		t.Error("tiny values near zero should compare equal under the absolute floor")
	}
}

func BenchmarkSolveTridiagonal(b *testing.B) {
	n := 1024
	a := make([]float64, n)
	bb := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	for i := range bb {
		a[i], bb[i], c[i], d[i] = 1, 4, 1, float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveTridiagonal(a, bb, c, d); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1) + 5
	}
	best, v, err := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(best[0], 3, 1e-3) || !AlmostEqual(best[1], -1, 1e-3) {
		t.Fatalf("minimum at %v, want (3, -1)", best)
	}
	if !AlmostEqual(v, 5, 1e-6) {
		t.Fatalf("value %g, want 5", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	best, _, err := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 20000, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(best[0], 1, 1e-2) || !AlmostEqual(best[1], 1, 1e-2) {
		t.Fatalf("Rosenbrock minimum at %v, want (1, 1)", best)
	}
}

func TestNelderMeadHandlesNaNAndErrors(t *testing.T) {
	// NaN regions are treated as +Inf: the simplex avoids them.
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	best, _, err := NelderMead(f, []float64{1}, NelderMeadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(best[0], 2, 1e-3) {
		t.Fatalf("minimum at %v, want 2", best)
	}
	if _, _, err := NelderMead(f, nil, NelderMeadOptions{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty start: %v", err)
	}
}
