package estimate

import (
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentIngestFitSolve hammers every concurrent path the subsystem
// promises is safe: sample ingest, re-fitting, snapshot solves, closed-loop
// checks, health reads and metric scrapes, all at once. Run under -race.
func TestConcurrentIngestFitSolve(t *testing.T) {
	m := estModel()
	e, err := New(m, Config{MinSamples: 2, MinFitPoints: 3, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(e, nil)
	ctl.OnRefit = func(oldV, newV uint64) {
		if newV <= oldV {
			t.Errorf("refit version went backwards: %d -> %d", oldV, newV)
		}
	}

	const (
		writers = 4
		iters   = 400
	)
	var wg sync.WaitGroup

	// Ingest: four writers streaming plausible samples over n in [1, 24].
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			truth := truthDemands(1 + 0.1*float64(w))
			for i := 0; i < iters; i++ {
				n := 1 + (i+w)%24
				x := float64(n) / (0.3*float64(n)*0.1 + 0.2)
				for k := 0; k < 3; k++ {
					if _, err := e.Observe(Sample{
						Station: k, Concurrency: n,
						Utilization: truth.F(k, n) * x, Throughput: x,
					}); err != nil {
						t.Errorf("observe: %v", err)
						return
					}
				}
			}
		}()
	}

	// Fit: periodic refits racing the ingest (ErrNotReady is expected early).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := e.Fit(); err != nil && !errors.Is(err, ErrNotReady) {
				t.Errorf("fit: %v", err)
				return
			}
		}
	}()

	// Solve: readers consuming whatever snapshot is current.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				snap := e.Snapshot()
				if snap == nil {
					continue
				}
				dm, err := snap.DemandModel()
				if err != nil {
					t.Errorf("demand model: %v", err)
					return
				}
				if _, err := core.MVASD(snap.Model, 12, dm, core.MVASDOptions{}); err != nil {
					t.Errorf("solve: %v", err)
					return
				}
			}
		}()
	}

	// Closed loop: deviation checks racing the refits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			n := 1 + i%12
			x, cyc, err := ctl.Predict(n)
			if errors.Is(err, ErrNotReady) {
				continue
			}
			if err != nil {
				t.Errorf("predict: %v", err)
				return
			}
			if _, err := ctl.ObserveSystem(n, x*1.01, cyc*1.01); err != nil {
				t.Errorf("observe system: %v", err)
				return
			}
		}
	}()

	// Observability: health and metrics scrapes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			e.Health()
			if err := e.WriteMetrics(io.Discard); err != nil {
				t.Errorf("estimator metrics: %v", err)
				return
			}
			if err := ctl.WriteMetrics(io.Discard); err != nil {
				t.Errorf("controller metrics: %v", err)
				return
			}
		}
	}()

	wg.Wait()

	// The stream was valid throughout; every sample landed somewhere.
	stations, _ := e.Health()
	for _, st := range stations {
		if st.Accepted+st.Rejected != writers*iters {
			t.Errorf("station %q accounted %d samples, want %d",
				st.Name, st.Accepted+st.Rejected, writers*iters)
		}
	}
}
