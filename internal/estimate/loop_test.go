package estimate

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
)

// TestClosedLoopDriftRecovery is the acceptance test for the closed loop:
// programmed demand drift pushes the MVASD throughput deviation past the
// paper's 3% bound, the breach triggers re-estimation (and the invalidation
// hook), and post-refit predictions return under the bound.
//
// Everything is deterministic: samples are synthesized exactly from the
// Service Demand Law against a linear truth, which the Chebyshev/PCHIP fit
// reproduces float-for-float, so pre-drift deviations are ~0, the drifted
// deviation is a computable ~25%, and post-refit deviations are ~0 again.
func TestClosedLoopDriftRecovery(t *testing.T) {
	m := estModel()
	// Alpha 1 snaps each cell to its latest accepted sample: after drift, one
	// accepted sample per cell re-centres the estimate exactly.
	e, err := New(m, Config{Alpha: 1, MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(e, monitor.NewDeviationTracker(nil))
	var hookOld, hookNew []uint64
	ctl.OnRefit = func(oldV, newV uint64) {
		hookOld = append(hookOld, oldV)
		hookNew = append(hookNew, newV)
	}

	// No snapshot yet: the loop reports not-ready rather than guessing.
	if _, err := ctl.ObserveSystem(10, 5, 0); !errors.Is(err, ErrNotReady) {
		t.Fatalf("ObserveSystem before first fit: %v, want ErrNotReady", err)
	}

	// Phase 1: steady state. Stream the v1 truth and fit.
	truth1 := truthDemands(1)
	feedTruth(t, e, m, truth1, fitConcurrencies, 4)
	if _, _, err := ctl.Refit(); err != nil {
		t.Fatalf("initial fit: %v", err)
	}
	ref1, err := core.MVASD(m, 20, truth1, core.MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{5, 10, 15} {
		x, _, cyc, _ := ref1.At(n)
		res, err := ctl.ObserveSystem(n, x, cyc)
		if err != nil {
			t.Fatalf("steady-state check at n=%d: %v", n, err)
		}
		if res.ThroughputBreach || res.CycleBreach || res.Reestimated {
			t.Fatalf("steady state breached at n=%d: %+v", n, res)
		}
		if res.ThroughputDeviation > 1e-9 || res.CycleDeviation > 1e-9 {
			t.Fatalf("steady-state deviation at n=%d: X %g, cycle %g",
				n, res.ThroughputDeviation, res.CycleDeviation)
		}
	}

	// Phase 2: programmed drift — every demand grows 25%. At n=15 the db
	// tier saturates, so measured throughput falls far more than 3% below
	// the stale prediction.
	truth2 := truthDemands(1.25)
	feedTruth(t, e, m, truth2, fitConcurrencies, 4)
	ref2, err := core.MVASD(m, 20, truth2, core.MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x2, _, cyc2, _ := ref2.At(15)
	res, err := ctl.ObserveSystem(15, x2, cyc2)
	if err != nil {
		t.Fatalf("drifted check: %v", err)
	}
	if !res.ThroughputBreach {
		t.Fatalf("drift did not breach the 3%% throughput bound: %+v", res)
	}
	if res.ThroughputDeviation <= monitor.ThroughputDeviationBound {
		t.Fatalf("drifted deviation %g not past the bound", res.ThroughputDeviation)
	}
	if !res.Reestimated || res.RefitError != "" {
		t.Fatalf("breach did not trigger a successful re-fit: %+v", res)
	}
	if res.OldVersion != 1 || res.Version != 2 {
		t.Fatalf("versions: %d -> %d, want 1 -> 2", res.OldVersion, res.Version)
	}
	// The hook fired for the manual initial fit (0 -> 1) and for the
	// breach-triggered re-fit (1 -> 2).
	if len(hookOld) != 2 || hookOld[1] != 1 || hookNew[1] != 2 {
		t.Fatalf("invalidation hook calls: old=%v new=%v", hookOld, hookNew)
	}
	if len(ctl.Tracker().Violations()) == 0 {
		t.Error("breach not force-recorded as a deviation event")
	}

	// Phase 3: recovered. The refitted snapshot matches the drifted truth,
	// so predictions are back within the bound (and in fact exact).
	for _, n := range []int{5, 10, 15, 18} {
		x, _, cyc, _ := ref2.At(n)
		res, err := ctl.ObserveSystem(n, x, cyc)
		if err != nil {
			t.Fatalf("post-refit check at n=%d: %v", n, err)
		}
		if res.ThroughputBreach || res.CycleBreach || res.Reestimated {
			t.Fatalf("post-refit breach at n=%d: %+v", n, res)
		}
		if res.ThroughputDeviation > 1e-9 || res.CycleDeviation > 1e-9 {
			t.Fatalf("post-refit deviation at n=%d: X %g, cycle %g",
				n, res.ThroughputDeviation, res.CycleDeviation)
		}
	}

	trig := ctl.Triggers()
	if trig["throughput"] != 1 || trig["manual"] != 1 || trig["cycle_time"] != 0 {
		t.Errorf("triggers = %v", trig)
	}
	if e.Fits() != 2 {
		t.Errorf("fits = %d, want 2", e.Fits())
	}
}

// TestControllerPredictMatchesOfflineSolve pins the float-for-float
// contract: the controller's prediction path (resumable solver over the
// snapshot's demand model) is bit-identical to a from-scratch offline
// core.MVASD on the same snapshot.
func TestControllerPredictMatchesOfflineSolve(t *testing.T) {
	m := estModel()
	e, err := New(m, Config{Alpha: 1, MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	feedTruth(t, e, m, truthDemands(1), fitConcurrencies, 4)
	snap, err := e.Fit()
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(e, nil)
	dm, err := snap.DemandModel()
	if err != nil {
		t.Fatal(err)
	}
	offline, err := core.MVASD(snap.Model, 20, dm, core.MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order queries exercise the resumable solver's extend path.
	for _, n := range []int{7, 3, 20, 12} {
		x, cyc, err := ctl.Predict(n)
		if err != nil {
			t.Fatalf("Predict(%d): %v", n, err)
		}
		wx, _, wc, _ := offline.At(n)
		if x != wx || cyc != wc {
			t.Errorf("Predict(%d) = (%v, %v), offline = (%v, %v)", n, x, cyc, wx, wc)
		}
	}
}

// TestRefitErrorSurfacedNotFatal: a breach whose re-fit cannot succeed (not
// enough fresh samples) reports the error on the result but keeps the stale
// snapshot serving.
func TestRefitErrorSurfacedNotFatal(t *testing.T) {
	m := estModel()
	e, err := New(m, Config{Alpha: 1, MinSamples: 2, MinFitPoints: 4, MaxCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	feedTruth(t, e, m, truthDemands(1), fitConcurrencies, 2)
	ctl := NewController(e, nil)
	if _, _, err := ctl.Refit(); err != nil {
		t.Fatal(err)
	}
	// Evict the fit-ready cells (single-sample churn), then present a
	// wildly-off measurement.
	for n := 100; n < 140; n++ {
		for k := 0; k < 3; k++ {
			if _, err := e.Observe(Sample{Station: k, Concurrency: n, Utilization: 0.5, Throughput: 5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	predX, _, err := ctl.Predict(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.ObserveSystem(10, predX*2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ThroughputBreach || res.Reestimated || res.RefitError == "" {
		t.Fatalf("want breach with surfaced refit error: %+v", res)
	}
	if e.Version() != 1 {
		t.Errorf("failed refit moved the version to %d", e.Version())
	}
	if got := ctl.Triggers()["throughput"]; got != 1 {
		t.Errorf("throughput triggers = %d", got)
	}
	if math.IsNaN(res.ThroughputDeviation) {
		t.Error("deviation is NaN")
	}
}
