package estimate

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/promtest"
	"repro/internal/queueing"
)

// estModel is the three-tier network the estimator tests stream against.
// Think time is short and the db demand grows with n, so the drifted system
// saturates at concurrencies the tests actually visit.
func estModel() *queueing.Model {
	return &queueing.Model{
		Name:      "est-test",
		ThinkTime: 0.2,
		Stations: []queueing.Station{
			{Name: "web/cpu", Kind: queueing.CPU, Servers: 2, Visits: 1, ServiceTime: 0.05},
			{Name: "app/cpu", Kind: queueing.CPU, Servers: 2, Visits: 1, ServiceTime: 0.06},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.08},
		},
	}
}

// truthDemands builds a linear-in-n ground truth scaled by a drift factor.
// Linear data matters: PCHIP reproduces a straight line exactly, so the
// fitted snapshot matches the truth float-for-float and the closed-loop
// assertions are deterministic.
func truthDemands(scale float64) core.FuncDemands {
	base := []float64{0.05, 0.06, 0.08}
	slope := []float64{0, 0.001, 0.002}
	return core.FuncDemands{K: 3, F: func(k, n int) float64 {
		return scale * (base[k] + slope[k]*float64(n-1))
	}}
}

// feedTruth streams `per` samples per (station, concurrency) synthesized
// exactly from the Service Demand Law: U_k = D_k(n)·X(n) with X from a
// reference MVASD solve of the truth, so D = U/X recovers the truth demand.
func feedTruth(t *testing.T, e *Estimator, m *queueing.Model, truth core.FuncDemands, ns []int, per int) {
	t.Helper()
	maxN := 0
	for _, n := range ns {
		if n > maxN {
			maxN = n
		}
	}
	ref, err := core.MVASD(m, maxN, truth, core.MVASDOptions{})
	if err != nil {
		t.Fatalf("reference MVASD: %v", err)
	}
	for _, n := range ns {
		x, _, _, err := ref.At(n)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < truth.K; k++ {
			for i := 0; i < per; i++ {
				if _, err := e.Observe(Sample{
					Station: k, Concurrency: n,
					Utilization: truth.F(k, n) * x, Throughput: x,
				}); err != nil {
					t.Fatalf("observe station %d n %d: %v", k, n, err)
				}
			}
		}
	}
}

var fitConcurrencies = []int{1, 2, 4, 7, 11, 15, 18, 20}

func TestObserveValidation(t *testing.T) {
	e, err := New(estModel(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Sample{
		{Station: -1, Concurrency: 1, Utilization: 0.5, Throughput: 1},
		{Station: 3, Concurrency: 1, Utilization: 0.5, Throughput: 1},
		{Station: 0, Concurrency: 0, Utilization: 0.5, Throughput: 1},
		{Station: 0, Concurrency: 1, Utilization: 0.5, Throughput: 0},
		{Station: 0, Concurrency: 1, Utilization: -0.1, Throughput: 1},
		{Station: 0, Concurrency: 1, Utilization: math.NaN(), Throughput: 1},
		{Station: 0, Concurrency: 1, Utilization: 0.5, Throughput: math.Inf(1)},
	}
	for i, s := range bad {
		if _, err := e.Observe(s); !errors.Is(err, ErrEstimate) {
			t.Errorf("sample %d: err = %v, want ErrEstimate", i, err)
		}
	}
	stations, _ := e.Health()
	for _, st := range stations {
		if st.Accepted != 0 || st.Rejected != 0 {
			t.Errorf("invalid samples mutated station %q: %+v", st.Name, st)
		}
	}
	if _, err := New(nil, Config{}); !errors.Is(err, ErrEstimate) {
		t.Errorf("New(nil) err = %v", err)
	}
}

func TestOutlierRejectionAndRegimeReset(t *testing.T) {
	e, err := New(estModel(), Config{RejectStreak: 3})
	if err != nil {
		t.Fatal(err)
	}
	obs := func(u float64) bool {
		t.Helper()
		acc, err := e.Observe(Sample{Station: 0, Concurrency: 5, Utilization: u, Throughput: 1})
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	for i := 0; i < 8; i++ {
		if !obs(0.1) {
			t.Fatalf("baseline sample %d rejected", i)
		}
	}
	// A 10x spike is far past OutlierK·max(1.4826·MAD, 0.05·median).
	if obs(1.0) || obs(1.0) {
		t.Fatal("spike accepted before the reject streak")
	}
	// The third consecutive rejection trips the regime breaker: the cell
	// resets and adopts the new level.
	if !obs(1.0) {
		t.Fatal("regime shift not adopted after RejectStreak rejections")
	}
	stations, _ := e.Health()
	st := stations[0]
	// Two rejections plus the terminal sample, which counts as accepted via
	// the reset — every sample lands in exactly one bucket.
	if st.Rejected != 2 || st.Resets != 1 {
		t.Errorf("rejected=%d resets=%d, want 2 and 1", st.Rejected, st.Resets)
	}
	if st.Accepted+st.Rejected != 11 {
		t.Errorf("accounting: accepted=%d rejected=%d, want 11 total", st.Accepted, st.Rejected)
	}
	// The reset cell restarts from the new regime.
	if !obs(1.02) {
		t.Error("post-reset sample near the new level rejected")
	}
}

func TestBoundedMemoryUnderUnboundedStream(t *testing.T) {
	cfg := Config{MaxCells: 16, Window: 8}
	e, err := New(estModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An unbounded stream visiting 5000 distinct concurrencies per station.
	for i := 0; i < 15000; i++ {
		n := 1 + i%5000
		for k := 0; k < 3; k++ {
			if _, err := e.Observe(Sample{
				Station: k, Concurrency: n,
				Utilization: 0.5, Throughput: 10,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.mu.Lock()
	for _, st := range e.stations {
		if len(st.cells) > cfg.MaxCells {
			t.Errorf("station %q retains %d cells, cap %d", st.name, len(st.cells), cfg.MaxCells)
		}
		for _, c := range st.cells {
			if len(c.window) > cfg.Window {
				t.Errorf("station %q cell %d window %d > %d", st.name, c.n, len(c.window), cfg.Window)
			}
		}
	}
	e.mu.Unlock()
	// Eviction keeps the most recently updated concurrencies.
	stations, _ := e.Health()
	for _, st := range stations {
		if st.Cells != cfg.MaxCells {
			t.Errorf("station %q cells = %d, want %d", st.Name, st.Cells, cfg.MaxCells)
		}
	}
}

func TestFitNotReadyThenExact(t *testing.T) {
	m := estModel()
	truth := truthDemands(1)
	e, err := New(m, Config{Alpha: 1, MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Fit(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Fit on empty estimator: %v, want ErrNotReady", err)
	}
	if _, lastErr := e.Health(); lastErr == "" {
		t.Error("failed fit not surfaced in health")
	}
	if e.Snapshot() != nil || e.Version() != 0 {
		t.Fatal("failed fit published a snapshot")
	}

	feedTruth(t, e, m, truth, fitConcurrencies, 4)
	snap, err := e.Fit()
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if snap.Version != 1 || e.Version() != 1 || e.Fits() != 1 {
		t.Errorf("version=%d fits=%d", snap.Version, e.Fits())
	}
	if _, lastErr := e.Health(); lastErr != "" {
		t.Errorf("health still reports fit error %q", lastErr)
	}
	if len(snap.Stations) != 3 {
		t.Fatalf("snapshot has %d stations", len(snap.Stations))
	}
	// Linear truth demands survive the PCHIP resample exactly: every
	// published node demand equals the truth at that node.
	for k, st := range snap.Stations {
		if st.Name != m.Stations[k].Name {
			t.Errorf("station %d name %q", k, st.Name)
		}
		if len(st.Nodes) < 2 || len(st.Nodes) != len(st.Demands) {
			t.Fatalf("station %q nodes/demands: %d/%d", st.Name, len(st.Nodes), len(st.Demands))
		}
		for i, node := range st.Nodes {
			want := truth.F(k, int(node))
			if math.Abs(st.Demands[i]-want) > 1e-12*math.Max(1, math.Abs(want)) {
				t.Errorf("station %q D(%g) = %g, want %g", st.Name, node, st.Demands[i], want)
			}
		}
		if st.Residual > 1e-9 {
			t.Errorf("station %q residual %g for exact linear data", st.Name, st.Residual)
		}
		if st.Points != len(fitConcurrencies) {
			t.Errorf("station %q fitted from %d points, want %d", st.Name, st.Points, len(fitConcurrencies))
		}
	}
	// The snapshot's demand model reproduces the truth MVASD trajectory.
	dm, err := snap.DemandModel()
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.MVASD(snap.Model, 20, dm, core.MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MVASD(m, 20, truth, core.MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 20; n++ {
		gx, _, gc, _ := got.At(n)
		wx, _, wc, _ := want.At(n)
		if math.Abs(gx-wx) > 1e-9*wx || math.Abs(gc-wc) > 1e-9*wc {
			t.Errorf("n=%d: fitted (X=%g, C=%g) vs truth (X=%g, C=%g)", n, gx, gc, wx, wc)
		}
	}
}

func TestFailedFitKeepsPreviousSnapshot(t *testing.T) {
	m := estModel()
	// A small cell cap: eviction churn can push a station back below
	// MinFitPoints fit-ready cells, so a later Fit fails.
	e, err := New(m, Config{Alpha: 1, MinSamples: 2, MinFitPoints: 4, MaxCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	feedTruth(t, e, m, truthDemands(1), fitConcurrencies, 2)
	snap, err := e.Fit()
	if err != nil {
		t.Fatal(err)
	}
	// Churn through fresh concurrencies with a single sample each: the old
	// fit-ready cells evict and the new ones never reach MinSamples.
	for n := 100; n < 140; n++ {
		for k := 0; k < 3; k++ {
			if _, err := e.Observe(Sample{Station: k, Concurrency: n, Utilization: 0.5, Throughput: 5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := e.Fit(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Fit after eviction churn: %v, want ErrNotReady", err)
	}
	if got := e.Snapshot(); got != snap {
		t.Error("failed fit replaced the published snapshot")
	}
	if e.Version() != snap.Version {
		t.Errorf("version moved to %d on failed fit", e.Version())
	}
	if _, lastErr := e.Health(); lastErr == "" {
		t.Error("failed fit not surfaced in health")
	}
}

// TestMetricsExposition lints the estimator + controller families through the
// shared promtest rules and checks the label sets are stable from the first
// scrape.
func TestMetricsExposition(t *testing.T) {
	m := estModel()
	e, err := New(m, Config{Alpha: 1, MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(e, nil)
	render := func() map[string]*promtest.Family {
		var b strings.Builder
		if err := e.WriteMetrics(&b); err != nil {
			t.Fatal(err)
		}
		if err := ctl.WriteMetrics(&b); err != nil {
			t.Fatal(err)
		}
		return promtest.ParseExposition(t, b.String())
	}
	want := []string{
		"solverd_estimate_samples_total",
		"solverd_estimate_samples_rejected_total",
		"solverd_estimate_cell_resets_total",
		"solverd_estimate_cells",
		"solverd_estimate_fit_ready_cells",
		"solverd_estimate_fit_residual",
		"solverd_estimate_snapshot_version",
		"solverd_estimate_fits_total",
		"solverd_estimate_reestimate_triggers_total",
	}

	// Before any traffic: families all present, per-station label sets
	// complete, every trigger reason exposed.
	families := render()
	promtest.RequireFamilies(t, families, want...)
	promtest.LintFamilies(t, families)
	if n := len(families["solverd_estimate_samples_total"].Samples); n != 3 {
		t.Errorf("samples_total has %d series before traffic, want 3", n)
	}
	if n := len(families["solverd_estimate_reestimate_triggers_total"].Samples); n != len(TriggerReasons) {
		t.Errorf("triggers has %d series, want %d", n, len(TriggerReasons))
	}

	feedTruth(t, e, m, truthDemands(1), fitConcurrencies, 4)
	if _, err := e.Fit(); err != nil {
		t.Fatal(err)
	}
	families = render()
	promtest.LintFamilies(t, families)
	if v := promtest.SingleValue(t, families, "solverd_estimate_snapshot_version"); v != 1 {
		t.Errorf("snapshot version = %g", v)
	}
	if v := promtest.SingleValue(t, families, "solverd_estimate_fits_total"); v != 1 {
		t.Errorf("fits = %g", v)
	}
	if n := len(families["solverd_estimate_fit_residual"].Samples); n != 3 {
		t.Errorf("fit_residual has %d series after a fit, want 3", n)
	}
	for _, s := range families["solverd_estimate_samples_total"].Samples {
		if s.Value != float64(4*len(fitConcurrencies)) {
			t.Errorf("%s = %g, want %d", s.Line, s.Value, 4*len(fitConcurrencies))
		}
	}
}
