package estimate

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/monitor"
)

// TriggerReasons enumerates every re-estimation trigger the controller
// counts; the metrics exposition always emits all of them.
var TriggerReasons = []string{"throughput", "cycle_time", "manual"}

// Controller closes the loop between the deviation tracker and the
// estimator: every measured (throughput, cycle time) pair is scored against
// the current snapshot's MVASD prediction through monitor.DeviationTracker,
// and a breach of the paper's 3%/9% bounds — which previously only
// force-recorded a trace — now additionally triggers a re-fit of the demand
// curves and, through OnRefit, invalidation of whatever the stale snapshot
// left behind (the server hooks its solve cache here).
type Controller struct {
	// OnRefit, when set, runs after every successful re-fit with the stale
	// and fresh snapshot versions. It is called with the controller's lock
	// held — keep it fast and do not call back into the controller.
	OnRefit func(oldVersion, newVersion uint64)

	// Journal, when set, receives a TypeRefit event for every re-estimation
	// attempt and a TypeSnapshot event for every published version change
	// (nil-safe; Append takes only a leaf lock, so appending under mu is
	// fine). Set before serving traffic.
	Journal *journal.Journal

	est     *Estimator
	tracker *monitor.DeviationTracker

	mu sync.Mutex
	// solver is the prediction solver for solverVersion's snapshot, grown
	// lazily to the largest concurrency checked so far.
	solver        *core.Solver
	solverVersion uint64
	triggers      map[string]uint64
}

// NewController wires an estimator to a deviation tracker. A nil tracker
// gets a fresh standalone one (no flight recorder).
func NewController(est *Estimator, tracker *monitor.DeviationTracker) *Controller {
	if tracker == nil {
		tracker = monitor.NewDeviationTracker(nil)
	}
	return &Controller{
		est:      est,
		tracker:  tracker,
		triggers: make(map[string]uint64),
	}
}

// Tracker returns the wired deviation tracker.
func (c *Controller) Tracker() *monitor.DeviationTracker { return c.tracker }

// CheckResult reports one closed-loop evaluation.
type CheckResult struct {
	Concurrency    int
	PredictedX     float64
	PredictedCycle float64
	// ThroughputDeviation/CycleDeviation are |predicted−measured|/measured.
	ThroughputDeviation float64
	CycleDeviation      float64
	ThroughputBreach    bool
	CycleBreach         bool
	// Reestimated reports that a breach triggered a successful re-fit;
	// OldVersion/Version are the before/after snapshot versions.
	Reestimated bool
	OldVersion  uint64
	Version     uint64
	// RefitError carries a failed re-fit ("" otherwise): the breach stands,
	// the stale snapshot remains published, and the caller keeps feeding
	// samples until a fit can succeed.
	RefitError string
}

// ObserveSystem scores one measured system-level pair against the current
// snapshot's MVASD prediction at the given concurrency. measuredCycle (R+Z,
// seconds) may be 0 to skip the cycle-time check. Breaches feed the tracker
// (force-recording a deviation trace as before) and trigger re-estimation.
func (c *Controller) ObserveSystem(n int, measuredX, measuredCycle float64) (CheckResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := CheckResult{Concurrency: n, Version: c.est.Version()}
	predX, predCycle, err := c.predictLocked(n)
	if err != nil {
		return res, err
	}
	res.PredictedX, res.PredictedCycle = predX, predCycle
	reason := ""
	if measuredX > 0 {
		res.ThroughputDeviation, res.ThroughputBreach = c.tracker.ObserveThroughput(n, measuredX, predX)
		if res.ThroughputBreach {
			reason = "throughput"
		}
	}
	if measuredCycle > 0 {
		res.CycleDeviation, res.CycleBreach = c.tracker.ObserveCycleTime(n, measuredCycle, predCycle)
		if res.CycleBreach && reason == "" {
			reason = "cycle_time"
		}
	}
	if reason == "" {
		return res, nil
	}
	old, fresh, err := c.refitLocked(reason)
	res.OldVersion = old
	if err != nil {
		res.RefitError = err.Error()
		return res, nil
	}
	res.Reestimated = true
	res.Version = fresh
	return res, nil
}

// Refit forces a re-estimation outside any breach (an operator poke or a
// scheduled refresh), counted under the "manual" trigger reason.
func (c *Controller) Refit() (oldVersion, newVersion uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refitLocked("manual")
}

// refitLocked re-fits the estimator, invalidates the prediction solver and
// runs the OnRefit hook (mu held). The trigger is counted even when the fit
// fails: the breach happened, re-estimation was attempted.
func (c *Controller) refitLocked(reason string) (oldVersion, newVersion uint64, err error) {
	c.triggers[reason]++
	oldVersion = c.est.Version()
	snap, err := c.est.Fit()
	if err != nil {
		c.Journal.Append(journal.TypeRefit, "re-estimation failed", journal.Event{
			Attrs: []journal.Attr{
				{Key: "reason", Value: reason},
				{Key: "version", Value: fmt.Sprintf("%d", oldVersion)},
				{Key: "error", Value: err.Error()},
			},
		})
		return oldVersion, oldVersion, err
	}
	c.dropSolverLocked()
	c.Journal.Append(journal.TypeRefit,
		fmt.Sprintf("demand curves re-fit (%s trigger)", reason), journal.Event{
			Attrs: []journal.Attr{
				{Key: "reason", Value: reason},
				{Key: "old_version", Value: fmt.Sprintf("%d", oldVersion)},
				{Key: "new_version", Value: fmt.Sprintf("%d", snap.Version)},
			},
		})
	c.Journal.Append(journal.TypeSnapshot,
		fmt.Sprintf("demand snapshot v%d published", snap.Version), journal.Event{
			Attrs: []journal.Attr{
				{Key: "version", Value: fmt.Sprintf("%d", snap.Version)},
			},
		})
	if c.OnRefit != nil {
		c.OnRefit(oldVersion, snap.Version)
	}
	return oldVersion, snap.Version, nil
}

// Predict returns the current snapshot's MVASD prediction at concurrency n.
func (c *Controller) Predict(n int) (x, cycle float64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.predictLocked(n)
}

// predictLocked solves (or extends) the prediction solver to n (mu held).
// The solver is reused across calls while the snapshot version is stable, so
// a stream of checks at growing concurrencies costs one recursion total.
func (c *Controller) predictLocked(n int) (x, cycle float64, err error) {
	snap := c.est.Snapshot()
	if snap == nil {
		return 0, 0, fmt.Errorf("%w: no snapshot fitted yet", ErrNotReady)
	}
	if c.solver == nil || c.solverVersion != snap.Version {
		dm, err := snap.DemandModel()
		if err != nil {
			return 0, 0, err
		}
		sol, err := core.NewMVASDSolver(snap.Model, dm, core.MVASDOptions{})
		if err != nil {
			return 0, 0, err
		}
		c.dropSolverLocked()
		c.solver, c.solverVersion = sol, snap.Version
	}
	if err := c.solver.Run(n); err != nil {
		return 0, 0, err
	}
	x, _, cycle, err = c.solver.Result().At(n)
	return x, cycle, err
}

// dropSolverLocked releases the cached prediction solver (mu held).
func (c *Controller) dropSolverLocked() {
	if c.solver != nil {
		c.solver.Release()
		c.solver = nil
	}
}

// Triggers returns a copy of the re-estimation trigger counts; every reason
// in TriggerReasons is present.
func (c *Controller) Triggers() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(TriggerReasons))
	for _, r := range TriggerReasons {
		out[r] = c.triggers[r]
	}
	return out
}
