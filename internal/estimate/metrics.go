package estimate

import (
	"fmt"
	"io"
)

// WriteMetrics renders the estimator's ingest and fit health in Prometheus
// text format. Every per-station family emits one sample per model station
// from the first scrape, so dashboards and the exposition lint see stable
// label sets; fit residuals appear once a snapshot exists. A nil receiver is
// valid and renders the same families with no per-station series — the
// server scrapes it before any estimator has been registered.
func (e *Estimator) WriteMetrics(w io.Writer) error {
	var stations []StationHealth
	if e != nil {
		stations, _ = e.Health()
	}
	fmt.Fprintln(w, "# HELP solverd_estimate_samples_total Samples accepted by the demand estimator per station.")
	fmt.Fprintln(w, "# TYPE solverd_estimate_samples_total counter")
	for _, st := range stations {
		fmt.Fprintf(w, "solverd_estimate_samples_total{station=%q} %d\n", st.Name, st.Accepted)
	}
	fmt.Fprintln(w, "# HELP solverd_estimate_samples_rejected_total Samples rejected by the outlier filter per station.")
	fmt.Fprintln(w, "# TYPE solverd_estimate_samples_rejected_total counter")
	for _, st := range stations {
		fmt.Fprintf(w, "solverd_estimate_samples_rejected_total{station=%q} %d\n", st.Name, st.Rejected)
	}
	fmt.Fprintln(w, "# HELP solverd_estimate_cell_resets_total Regime-shift cell resets per station.")
	fmt.Fprintln(w, "# TYPE solverd_estimate_cell_resets_total counter")
	for _, st := range stations {
		fmt.Fprintf(w, "solverd_estimate_cell_resets_total{station=%q} %d\n", st.Name, st.Resets)
	}
	fmt.Fprintln(w, "# HELP solverd_estimate_cells Distinct concurrency cells currently retained per station.")
	fmt.Fprintln(w, "# TYPE solverd_estimate_cells gauge")
	for _, st := range stations {
		fmt.Fprintf(w, "solverd_estimate_cells{station=%q} %d\n", st.Name, st.Cells)
	}
	fmt.Fprintln(w, "# HELP solverd_estimate_fit_ready_cells Cells with enough accepted samples to enter a fit, per station.")
	fmt.Fprintln(w, "# TYPE solverd_estimate_fit_ready_cells gauge")
	for _, st := range stations {
		fmt.Fprintf(w, "solverd_estimate_fit_ready_cells{station=%q} %d\n", st.Name, st.FitReady)
	}
	fmt.Fprintln(w, "# HELP solverd_estimate_fit_residual RMS relative error of the published demand curve against the smoothed cell means, per station.")
	fmt.Fprintln(w, "# TYPE solverd_estimate_fit_residual gauge")
	var version, fits uint64
	if e != nil {
		if snap := e.Snapshot(); snap != nil {
			for _, st := range snap.Stations {
				fmt.Fprintf(w, "solverd_estimate_fit_residual{station=%q} %g\n", st.Name, st.Residual)
			}
		}
		version, fits = e.Version(), e.Fits()
	}
	fmt.Fprintln(w, "# HELP solverd_estimate_snapshot_version Version of the published demand-curve snapshot (0 before the first fit).")
	fmt.Fprintln(w, "# TYPE solverd_estimate_snapshot_version gauge")
	fmt.Fprintf(w, "solverd_estimate_snapshot_version %d\n", version)
	fmt.Fprintln(w, "# HELP solverd_estimate_fits_total Successful demand-curve fits.")
	fmt.Fprintln(w, "# TYPE solverd_estimate_fits_total counter")
	fmt.Fprintf(w, "solverd_estimate_fits_total %d\n", fits)
	_, err := fmt.Fprintln(w)
	return err
}

// WriteMetrics renders the controller's re-estimation trigger counter; every
// reason in TriggerReasons is always exposed. A nil receiver renders zeros.
func (c *Controller) WriteMetrics(w io.Writer) error {
	var triggers map[string]uint64
	if c != nil {
		triggers = c.Triggers()
	}
	fmt.Fprintln(w, "# HELP solverd_estimate_reestimate_triggers_total Re-estimations triggered, by reason.")
	fmt.Fprintln(w, "# TYPE solverd_estimate_reestimate_triggers_total counter")
	for _, r := range TriggerReasons {
		fmt.Fprintf(w, "solverd_estimate_reestimate_triggers_total{reason=%q} %d\n", r, triggers[r])
	}
	_, err := fmt.Fprintln(w)
	return err
}
