// Package estimate turns live telemetry into the demand curves MVASD solves.
//
// The paper measures concurrency-dependent service demands D_k(n) offline,
// from a dedicated load-test campaign at Chebyshev-placed concurrencies. A
// production service cannot stop for a campaign: it streams (utilization,
// throughput, concurrency) samples continuously. This package closes that
// gap with an online estimator:
//
//   - Observe ingests timestamped samples per station and applies the
//     Service Demand Law D = U/X (eq. 3) to each one;
//   - per (station, concurrency) cell, demands are smoothed with an EWMA and
//     guarded by a windowed median/MAD outlier filter (a regime-shift breaker
//     resets a cell that rejects too many samples in a row, so genuine demand
//     drift is adopted rather than filtered away);
//   - Fit resamples the smoothed cell means onto integer Chebyshev nodes
//     (internal/chebyshev, the paper's Section-8 placement) and fits the
//     final per-station demand curve over those nodes;
//   - every successful fit publishes an immutable, versioned Snapshot that
//     concurrent readers (the /v1/whatif planner, the deviation controller)
//     consume without locking the ingest path.
//
// Memory is bounded regardless of how many distinct concurrencies a stream
// visits: each station keeps at most MaxCells cells and evicts the least
// recently updated one past the cap.
package estimate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/interp"
	"repro/internal/queueing"
)

// ErrEstimate wraps invalid estimator input and not-yet-fittable states.
var ErrEstimate = errors.New("estimate: invalid input")

// ErrNotReady is returned by Fit while too little of the concurrency range
// has accumulated enough accepted samples.
var ErrNotReady = errors.New("estimate: not enough fit-ready samples")

// Config tunes the estimator. The zero value is usable: every field
// defaults.
type Config struct {
	// Window is the per-cell sample retention used by the median/MAD
	// outlier filter (default 32).
	Window int
	// MinSamples is the accepted-sample count a cell needs before it
	// contributes a point to the fit (default 8).
	MinSamples int
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.2).
	Alpha float64
	// OutlierK rejects a sample whose demand is more than K scaled MADs
	// from the cell median (default 6; negative disables the filter).
	OutlierK float64
	// RejectStreak resets a cell that rejects this many samples in a row:
	// a persistent "outlier" is a regime shift, not noise (default 12).
	RejectStreak int
	// MaxCells caps the distinct concurrency cells retained per station
	// (default 512); past it the least recently updated cell is evicted.
	MaxCells int
	// FitNodes is the Chebyshev node count the demand curves are resampled
	// onto (default 7, the paper's Section-8 choice).
	FitNodes int
	// MinFitPoints is the number of fit-ready cells (distinct
	// concurrencies) a station needs before Fit succeeds (default 4).
	MinFitPoints int
	// Interp is the interpolation method of the published curves (default
	// PCHIP: monotone between nodes, robust to residual noise).
	Interp interp.Method
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.OutlierK == 0 {
		c.OutlierK = 6
	}
	if c.RejectStreak <= 0 {
		c.RejectStreak = 12
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 512
	}
	if c.FitNodes <= 0 {
		c.FitNodes = 7
	}
	if c.MinFitPoints < 2 {
		c.MinFitPoints = 4
	}
	if c.Interp == "" {
		c.Interp = interp.PCHIP
	}
}

// Sample is one station observation: the busy fraction U (0–C_k scale for
// multi-server stations, exactly what vmstat-style accounting produces), the
// system throughput X it was measured against, and the offered concurrency.
// TimeUnixMS is informational (health reporting); ordering is not required.
type Sample struct {
	// Station indexes the estimator's model stations.
	Station int
	// Concurrency is the offered load (virtual users) during the sample.
	Concurrency int
	// Utilization is the station's total busy fraction over the sample
	// window (sum over servers: 0–C_k).
	Utilization float64
	// Throughput is the measured system throughput (transactions/second).
	Throughput float64
	// TimeUnixMS optionally stamps the sample (milliseconds since epoch).
	TimeUnixMS int64
}

// cell accumulates one (station, concurrency) stream of demand estimates.
type cell struct {
	n       int
	window  []float64 // accepted demands, ring-buffered to cfg.Window
	next    int       // ring write position
	count   uint64    // accepted samples over the cell's lifetime
	ewma    float64
	rejects int    // consecutive rejections (regime-shift breaker)
	seq     uint64 // last-update sequence for LRU eviction
}

// stationState is one station's ingest-side state.
type stationState struct {
	name     string
	cells    map[int]*cell
	accepted uint64
	rejected uint64
	resets   uint64 // regime-shift cell resets
}

// Estimator is the streaming service-demand estimator. Observe/Fit/Snapshot
// are safe for concurrent use; the ingest path never blocks on readers of
// published snapshots.
type Estimator struct {
	cfg   Config
	model *queueing.Model // private copy

	mu       sync.Mutex
	stations []*stationState
	seq      uint64 // global update sequence (cell LRU clock)
	lastErr  string // most recent Fit failure, for health reporting

	fits    atomic.Uint64
	version atomic.Uint64
	snap    atomic.Pointer[Snapshot]
}

// New builds an estimator for the given model's stations. The model is
// copied; its per-station service times are irrelevant (demands come from
// the stream), but its shape — station names, server counts, think time —
// is what snapshots carry into MVASD solves.
func New(model *queueing.Model, cfg Config) (*Estimator, error) {
	if model == nil {
		return nil, fmt.Errorf("%w: nil model", ErrEstimate)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	m := *model
	m.Stations = append([]queueing.Station(nil), model.Stations...)
	e := &Estimator{cfg: cfg, model: &m}
	for _, st := range m.Stations {
		e.stations = append(e.stations, &stationState{
			name:  st.Name,
			cells: make(map[int]*cell),
		})
	}
	return e, nil
}

// Model returns a copy of the estimator's model.
func (e *Estimator) Model() *queueing.Model {
	m := *e.model
	m.Stations = append([]queueing.Station(nil), e.model.Stations...)
	return &m
}

// Config returns the estimator's resolved configuration.
func (e *Estimator) Config() Config { return e.cfg }

// StationIndex resolves a station name, -1 when unknown.
func (e *Estimator) StationIndex(name string) int {
	return e.model.StationIndex(name)
}

// Observe ingests one sample. It returns whether the sample was accepted
// (false: rejected by the outlier filter) and an error for structurally
// invalid samples, which update nothing.
func (e *Estimator) Observe(s Sample) (accepted bool, err error) {
	if s.Station < 0 || s.Station >= len(e.stations) {
		return false, fmt.Errorf("%w: station %d of %d", ErrEstimate, s.Station, len(e.stations))
	}
	if s.Concurrency < 1 {
		return false, fmt.Errorf("%w: concurrency %d", ErrEstimate, s.Concurrency)
	}
	if s.Throughput <= 0 || s.Utilization < 0 ||
		math.IsNaN(s.Throughput) || math.IsNaN(s.Utilization) ||
		math.IsInf(s.Throughput, 0) || math.IsInf(s.Utilization, 0) {
		return false, fmt.Errorf("%w: utilization %g over throughput %g", ErrEstimate, s.Utilization, s.Throughput)
	}
	d := queueing.DemandFromUtilization(s.Utilization, s.Throughput)

	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stations[s.Station]
	e.seq++
	c, ok := st.cells[s.Concurrency]
	if !ok {
		c = &cell{n: s.Concurrency, window: make([]float64, 0, e.cfg.Window)}
		st.cells[s.Concurrency] = c
	}
	// Stamp recency before any eviction: a just-added cell must never be its
	// own victim.
	c.seq = e.seq
	if !ok {
		e.evictCells(st)
	}

	if e.rejectOutlier(c, d) {
		c.rejects++
		if c.rejects >= e.cfg.RejectStreak {
			// Regime shift: the "outliers" are the new normal. Restart the
			// cell on the sample instead of filtering the shift forever. The
			// terminal sample counts as accepted, not rejected — every sample
			// lands in exactly one bucket.
			c.window = c.window[:0]
			c.next = 0
			c.count = 0
			c.rejects = 0
			st.resets++
		} else {
			st.rejected++
			return false, nil
		}
	}
	c.rejects = 0
	if len(c.window) < e.cfg.Window {
		c.window = append(c.window, d)
	} else {
		c.window[c.next] = d
	}
	c.next = (c.next + 1) % e.cfg.Window
	if c.count == 0 {
		c.ewma = d
	} else {
		c.ewma += e.cfg.Alpha * (d - c.ewma)
	}
	c.count++
	st.accepted++
	return true, nil
}

// rejectOutlier applies the windowed median/MAD gate (mu held). Cells still
// filling their first few samples accept everything: a median of two points
// is no baseline to reject against.
func (e *Estimator) rejectOutlier(c *cell, d float64) bool {
	if e.cfg.OutlierK < 0 || len(c.window) < 5 {
		return false
	}
	med, mad := medianMAD(c.window)
	// 1.4826·MAD estimates σ for Gaussian noise; the relative floor keeps a
	// zero-variance window (identical samples) from rejecting everything.
	scale := math.Max(1.4826*mad, 0.05*math.Abs(med))
	if scale == 0 {
		return false
	}
	return math.Abs(d-med) > e.cfg.OutlierK*scale
}

// evictCells drops least-recently-updated cells past the per-station cap
// (mu held). Called once per new cell, so it removes at most one.
func (e *Estimator) evictCells(st *stationState) {
	for len(st.cells) > e.cfg.MaxCells {
		var victim *cell
		for _, c := range st.cells {
			if victim == nil || c.seq < victim.seq {
				victim = c
			}
		}
		delete(st.cells, victim.n)
	}
}

// medianMAD returns the median and the median absolute deviation of xs.
func medianMAD(xs []float64) (med, mad float64) {
	buf := make([]float64, len(xs))
	copy(buf, xs)
	sort.Float64s(buf)
	med = quantileSorted(buf)
	for i, v := range buf {
		buf[i] = math.Abs(v - med)
	}
	sort.Float64s(buf)
	return med, quantileSorted(buf)
}

func quantileSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// StationHealth is one station's ingest-side health, for /v1/demands and
// the metrics exposition.
type StationHealth struct {
	Name     string
	Accepted uint64
	Rejected uint64
	Resets   uint64
	Cells    int
	// FitReady counts cells with at least MinSamples accepted samples.
	FitReady int
}

// Health snapshots per-station ingest health plus the most recent fit error
// ("" when the last fit succeeded or none ran).
func (e *Estimator) Health() (stations []StationHealth, lastErr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	stations = make([]StationHealth, len(e.stations))
	for i, st := range e.stations {
		h := StationHealth{
			Name:     st.name,
			Accepted: st.accepted,
			Rejected: st.rejected,
			Resets:   st.resets,
			Cells:    len(st.cells),
		}
		for _, c := range st.cells {
			if c.count >= uint64(e.cfg.MinSamples) {
				h.FitReady++
			}
		}
		stations[i] = h
	}
	return stations, e.lastErr
}

// Version returns the published snapshot version (0 before the first fit).
func (e *Estimator) Version() uint64 { return e.version.Load() }

// Fits returns the number of successful fits.
func (e *Estimator) Fits() uint64 { return e.fits.Load() }

// Snapshot returns the latest published snapshot, nil before the first fit.
// Snapshots are immutable; readers never contend with the ingest path.
func (e *Estimator) Snapshot() *Snapshot { return e.snap.Load() }
