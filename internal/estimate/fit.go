package estimate

import (
	"fmt"
	"math"
	"time"

	"repro/internal/chebyshev"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/queueing"
	"repro/internal/spline"
)

// StationFit is one station's fitted demand curve: the integer Chebyshev
// nodes the smoothed cell means were resampled onto and the demands at those
// nodes. (Nodes, Demands) is a core.DemandSamples array — exactly the
// {S_k^{i_1} … S_k^{i_M}} input of the paper's Algorithm 3.
type StationFit struct {
	Name    string
	Nodes   []float64
	Demands []float64
	// Points is the fit-ready cell count the resampling drew from.
	Points int
	// Residual is the RMS relative error of the published curve against the
	// smoothed cell means it was fitted to — the estimator's own goodness
	// gauge (distinct from the deviation tracker, which scores end-to-end
	// predictions).
	Residual float64
}

// Snapshot is one published demand-curve generation. Snapshots are immutable
// once published: MVASD consumers and later fits never race.
type Snapshot struct {
	// Version increments with every successful fit, starting at 1.
	Version uint64
	// FittedAtUnixMS stamps the publish time.
	FittedAtUnixMS int64
	// Interp is the interpolation method consumers must use to reproduce
	// the solver's curves exactly.
	Interp interp.Method
	// Model is the estimator's network shape (think time, server counts).
	Model *queueing.Model
	// Stations carries one fit per model station, in model order.
	Stations []StationFit
}

// DemandSamples converts the snapshot into per-station demand sample arrays.
func (s *Snapshot) DemandSamples() []core.DemandSamples {
	out := make([]core.DemandSamples, len(s.Stations))
	for i, st := range s.Stations {
		out[i] = core.DemandSamples{
			At:      append([]float64(nil), st.Nodes...),
			Demands: append([]float64(nil), st.Demands...),
		}
	}
	return out
}

// DemandModel builds the interpolated concurrency-indexed demand model MVASD
// solves — identical, float for float, to what any other consumer of the
// same snapshot constructs.
func (s *Snapshot) DemandModel() (core.DemandModel, error) {
	return core.NewCurveDemands(s.Interp, s.DemandSamples(), interp.Options{})
}

// fitPoint is one smoothed cell mean entering the resampling.
type fitPoint struct {
	n    float64
	ewma float64
}

// Fit resamples every station's smoothed cell means onto integer Chebyshev
// nodes and publishes a new snapshot. It fails with ErrNotReady (wrapped
// with the blocking station) until every station has MinFitPoints fit-ready
// cells spanning a non-degenerate concurrency range; a failed fit leaves the
// previous snapshot in place.
func (e *Estimator) Fit() (*Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	fits := make([]StationFit, len(e.stations))
	for k, st := range e.stations {
		pts := make([]fitPoint, 0, len(st.cells))
		for _, c := range st.cells {
			if c.count >= uint64(e.cfg.MinSamples) {
				pts = append(pts, fitPoint{n: float64(c.n), ewma: c.ewma})
			}
		}
		fit, err := e.fitStation(st.name, pts)
		if err != nil {
			e.lastErr = err.Error()
			return nil, err
		}
		fits[k] = fit
	}
	snap := &Snapshot{
		Version:        e.version.Load() + 1,
		FittedAtUnixMS: time.Now().UnixMilli(),
		Interp:         e.cfg.Interp,
		Model:          e.Model(),
		Stations:       fits,
	}
	e.lastErr = ""
	e.version.Store(snap.Version)
	e.snap.Store(snap)
	e.fits.Add(1)
	return snap, nil
}

// fitStation resamples one station's cell means onto Chebyshev nodes.
func (e *Estimator) fitStation(name string, pts []fitPoint) (StationFit, error) {
	if len(pts) < e.cfg.MinFitPoints {
		return StationFit{}, fmt.Errorf("%w: station %q has %d fit-ready cells, need %d",
			ErrNotReady, name, len(pts), e.cfg.MinFitPoints)
	}
	// Sort by concurrency; cells are unique by construction.
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j-1].n > pts[j].n; j-- {
			pts[j-1], pts[j] = pts[j], pts[j-1]
		}
	}
	lo, hi := pts[0].n, pts[len(pts)-1].n
	if hi-lo < 1 {
		return StationFit{}, fmt.Errorf("%w: station %q cells span [%g, %g]", ErrNotReady, name, lo, hi)
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.n, p.ewma
	}
	// Pre-fit through the (irregular) observed concurrencies: PCHIP is
	// shape-preserving, so noisy cell means cannot manufacture oscillation
	// that the node resampling would then bake into the published curve.
	pre, err := spline.NewPCHIP(xs, ys)
	if err != nil {
		return StationFit{}, fmt.Errorf("estimate: station %q pre-fit: %w", name, err)
	}
	// Resample onto the paper's grid: integer Chebyshev nodes over the
	// observed range (eq. 17 + the ceiling rule of Section 8). The ceiling
	// rule can pull the extreme nodes inside [lo, hi]; pin both endpoints so
	// the published curve interpolates — never pegs — across the whole
	// observed range.
	nodes, err := chebyshev.IntegerNodesOn(lo, hi, e.cfg.FitNodes)
	if err != nil {
		return StationFit{}, fmt.Errorf("estimate: station %q nodes: %w", name, err)
	}
	if len(nodes) == 0 || float64(nodes[0]) > lo {
		nodes = append([]int{int(lo)}, nodes...)
	}
	if float64(nodes[len(nodes)-1]) < hi {
		nodes = append(nodes, int(hi))
	}
	if len(nodes) < 2 {
		return StationFit{}, fmt.Errorf("%w: station %q range [%g, %g] yields %d nodes",
			ErrNotReady, name, lo, hi, len(nodes))
	}
	at := make([]float64, len(nodes))
	dem := make([]float64, len(nodes))
	for i, n := range nodes {
		at[i] = float64(n)
		dem[i] = math.Max(pre.Eval(float64(n)), 0)
	}
	fit := StationFit{Name: name, Nodes: at, Demands: dem, Points: len(pts)}
	// Residual: how well the published curve reproduces the cell means.
	curve, err := interp.NewCurve(e.cfg.Interp, at, dem, interp.Options{})
	if err != nil {
		return StationFit{}, fmt.Errorf("estimate: station %q curve: %w", name, err)
	}
	var sum float64
	for i := range xs {
		denom := math.Max(math.Abs(ys[i]), 1e-12)
		rel := (curve.Eval(xs[i]) - ys[i]) / denom
		sum += rel * rel
	}
	fit.Residual = math.Sqrt(sum / float64(len(xs)))
	return fit, nil
}
