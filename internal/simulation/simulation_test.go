package simulation

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/queueing"
)

func productFormModel() *queueing.Model {
	return &queueing.Model{
		Name:      "pf",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "app/cpu", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.004},
			{Name: "db/cpu", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.003},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.010},
		},
	}
}

// TestSimulatorMatchesExactMVA is the grounding test: with exponential
// service/think and constant demands the network is product-form, so the DES
// must agree with exact MVA within tight statistical tolerance.
func TestSimulatorMatchesExactMVA(t *testing.T) {
	m := productFormModel()
	mva, err := core.ExactMVA(m, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 10, 50, 120, 200} {
		st, err := Run(Config{
			Model: m, Population: n, Seed: int64(n),
			WarmupTime: 200, MeasureTime: 3000,
		})
		if err != nil {
			t.Fatal(err)
		}
		wantX := mva.X[n-1]
		if rel := metrics.RelErr(st.Throughput, wantX); rel > 0.02 {
			t.Errorf("n=%d: sim X=%.3f vs MVA %.3f (%.1f%%)", n, st.Throughput, wantX, rel*100)
		}
		wantR := mva.R[n-1]
		if rel := metrics.RelErr(st.ResponseTime, wantR); rel > 0.05 {
			t.Errorf("n=%d: sim R=%.5f vs MVA %.5f (%.1f%%)", n, st.ResponseTime, wantR, rel*100)
		}
	}
}

// TestSimulatorMatchesLoadDependentMVA grounds the multi-server path against
// the exact load-dependent solver.
func TestSimulatorMatchesLoadDependentMVA(t *testing.T) {
	m := &queueing.Model{
		Name:      "ms",
		ThinkTime: 0.5,
		Stations: []queueing.Station{
			{Name: "cpu16", Kind: queueing.CPU, Servers: 16, Visits: 1, ServiceTime: 0.05},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.002},
		},
	}
	ld, err := core.LoadDependentMVA(m, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{5, 60, 150, 300} {
		st, err := Run(Config{
			Model: m, Population: n, Seed: 7 * int64(n),
			WarmupTime: 100, MeasureTime: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		wantX := ld.X[n-1]
		if rel := metrics.RelErr(st.Throughput, wantX); rel > 0.02 {
			t.Errorf("n=%d: sim X=%.3f vs LD-MVA %.3f (%.1f%%)", n, st.Throughput, wantX, rel*100)
		}
	}
}

func TestSimulatorDeterministicBySeed(t *testing.T) {
	m := productFormModel()
	cfg := Config{Model: m, Population: 40, Seed: 99, WarmupTime: 50, MeasureTime: 500}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.ResponseTime != b.ResponseTime || a.Completed != b.Completed {
		t.Fatal("same seed must reproduce identical results")
	}
	cfg.Seed = 100
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput == c.Throughput && a.Completed == c.Completed {
		t.Fatal("different seeds should differ")
	}
}

func TestSimulatorUtilizationLaw(t *testing.T) {
	// Measured utilization must equal X·D within noise (Utilization Law),
	// and Demands() must recover the configured demands.
	m := productFormModel()
	st, err := Run(Config{Model: m, Population: 60, Seed: 3, WarmupTime: 100, MeasureTime: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for k, stn := range m.Stations {
		wantU := st.Throughput * stn.Demand()
		if rel := metrics.RelErr(st.TotalBusy[k], wantU); rel > 0.05 {
			t.Errorf("station %s: U=%.4f, want %.4f", stn.Name, st.TotalBusy[k], wantU)
		}
	}
	d := st.Demands()
	for k, stn := range m.Stations {
		if rel := metrics.RelErr(d[k], stn.Demand()); rel > 0.05 {
			t.Errorf("station %s: extracted D=%.5f, want %.5f", stn.Name, d[k], stn.Demand())
		}
	}
}

func TestSimulatorLittleLaw(t *testing.T) {
	// N = X·(R + Z) must hold for the measured means.
	m := productFormModel()
	for _, n := range []int{5, 80} {
		st, err := Run(Config{Model: m, Population: n, Seed: 11, WarmupTime: 100, MeasureTime: 2000})
		if err != nil {
			t.Fatal(err)
		}
		implied := st.Throughput * st.CycleTime
		if rel := metrics.RelErr(implied, float64(n)); rel > 0.03 {
			t.Errorf("n=%d: X(R+Z) = %.2f", n, implied)
		}
	}
}

func TestSimulatorFractionalVisits(t *testing.T) {
	// V = 2.5 must yield station throughput 2.5·X on average.
	m := &queueing.Model{
		Name:      "frac",
		ThinkTime: 0.5,
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 2.5, ServiceTime: 0.002},
		},
	}
	st, err := Run(Config{Model: m, Population: 20, Seed: 5, WarmupTime: 50, MeasureTime: 2000})
	if err != nil {
		t.Fatal(err)
	}
	ratio := st.StationThroughput[0] / st.Throughput
	if math.Abs(ratio-2.5) > 0.05 {
		t.Errorf("forced-flow ratio %.3f, want 2.5", ratio)
	}
}

func TestSimulatorDelayStation(t *testing.T) {
	// A delay station must never queue: its residence contribution is its
	// demand. Model: one delay of 0.1 s, no queueing stations → R ≈ 0.1
	// regardless of N.
	m := &queueing.Model{
		Name:      "delay",
		ThinkTime: 0.2,
		Stations: []queueing.Station{
			{Name: "lan", Kind: queueing.Delay, Servers: 1, Visits: 1, ServiceTime: 0.1},
		},
	}
	for _, n := range []int{1, 50} {
		st, err := Run(Config{Model: m, Population: n, Seed: 2, WarmupTime: 50, MeasureTime: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if rel := metrics.RelErr(st.ResponseTime, 0.1); rel > 0.05 {
			t.Errorf("n=%d: delay R=%.4f, want 0.1", n, st.ResponseTime)
		}
	}
}

func TestSimulatorRampUpSeries(t *testing.T) {
	// Staggered starts: the TPS series should climb during the ramp and the
	// steady-state tail should exceed the early windows (Fig. 1 shape).
	m := productFormModel()
	n := 100
	starts := make([]float64, n)
	for i := range starts {
		starts[i] = float64(i) * 2 // one user every 2 s → 200 s ramp
	}
	st, err := Run(Config{
		Model: m, Population: n, Seed: 4,
		WarmupTime: 300, MeasureTime: 1000,
		StartTimes: starts, WindowSize: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TPSSeries == nil || len(st.TPSSeries.Points) < 50 {
		t.Fatal("missing TPS series")
	}
	early, err := metrics.Summarize(st.TPSSeries.Values()[:10])
	if err != nil {
		t.Fatal(err)
	}
	lateVals := st.TPSSeries.After(400).Values()
	late, err := metrics.Summarize(lateVals)
	if err != nil {
		t.Fatal(err)
	}
	if late.Mean <= early.Mean*1.5 {
		t.Errorf("ramp not visible: early TPS %.2f vs late %.2f", early.Mean, late.Mean)
	}
}

func TestSimulatorDistributions(t *testing.T) {
	// The mean must be distribution-invariant for the think station;
	// deterministic service in an M/D/1-like setting still satisfies
	// Little's law on means.
	m := productFormModel()
	for _, dist := range []Distribution{Exponential, Deterministic, Erlang2, Uniform} {
		st, err := Run(Config{
			Model: m, Population: 30, Seed: 21,
			WarmupTime: 100, MeasureTime: 1500,
			ServiceDist: dist, ThinkDist: Deterministic,
		})
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		implied := st.Throughput * st.CycleTime
		if rel := metrics.RelErr(implied, 30); rel > 0.03 {
			t.Errorf("%v: Little's law X(R+Z)=%.2f, want 30", dist, implied)
		}
	}
}

func TestSimulatorConfigErrors(t *testing.T) {
	m := productFormModel()
	cases := []Config{
		{Model: nil, Population: 1, MeasureTime: 1},
		{Model: m, Population: 0, MeasureTime: 1},
		{Model: m, Population: 1, MeasureTime: 0},
		{Model: m, Population: 2, MeasureTime: 1, StartTimes: []float64{0}},
		{Model: &queueing.Model{}, Population: 1, MeasureTime: 1},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestDistributionString(t *testing.T) {
	names := map[Distribution]string{
		Exponential: "exponential", Deterministic: "deterministic",
		Erlang2: "erlang-2", Uniform: "uniform",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
	if Distribution(9).String() == "" {
		t.Error("unknown distribution should still print")
	}
}

func TestDistributionMeans(t *testing.T) {
	// Every distribution must have the configured mean (law of large numbers).
	rngModel := productFormModel()
	_ = rngModel
	for _, d := range []Distribution{Exponential, Deterministic, Erlang2, Uniform} {
		// Use the think station of a tiny simulation to exercise draw via
		// the public API: a delay-only model's R equals the service mean.
		m := &queueing.Model{
			Name:      "mean-check",
			ThinkTime: 0.1,
			Stations: []queueing.Station{
				{Name: "d", Kind: queueing.Delay, Servers: 1, Visits: 1, ServiceTime: 0.25},
			},
		}
		st, err := Run(Config{
			Model: m, Population: 10, Seed: 31,
			WarmupTime: 20, MeasureTime: 2000, ServiceDist: d,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rel := metrics.RelErr(st.ResponseTime, 0.25); rel > 0.03 {
			t.Errorf("%v: mean %.4f, want 0.25", d, st.ResponseTime)
		}
	}
}

func BenchmarkSimulation100Users(b *testing.B) {
	m := productFormModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Model: m, Population: 100, Seed: int64(i),
			WarmupTime: 10, MeasureTime: 100,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestResponsePercentiles(t *testing.T) {
	m := productFormModel()
	st, err := Run(Config{
		Model: m, Population: 40, Seed: 8,
		WarmupTime: 100, MeasureTime: 1500, ResponseSampleCap: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.ResponseSamples) == 0 {
		t.Fatal("no response samples collected")
	}
	if len(st.ResponseSamples) > 5000 {
		t.Fatalf("reservoir overflowed: %d", len(st.ResponseSamples))
	}
	p50, err := st.ResponsePercentile(50)
	if err != nil {
		t.Fatal(err)
	}
	p99, err := st.ResponsePercentile(99)
	if err != nil {
		t.Fatal(err)
	}
	if !(p50 > 0 && p99 > p50) {
		t.Fatalf("percentile ordering: P50=%g P99=%g", p50, p99)
	}
	// The sample mean must agree with the exact mean accumulator.
	sum := 0.0
	for _, v := range st.ResponseSamples {
		sum += v
	}
	mean := sum / float64(len(st.ResponseSamples))
	if metrics.RelErr(mean, st.ResponseTime) > 0.10 {
		t.Fatalf("sampled mean %g vs true mean %g", mean, st.ResponseTime)
	}
	// Disabled sampling yields an error from the percentile accessor.
	st2, err := Run(Config{Model: m, Population: 5, Seed: 8, WarmupTime: 10, MeasureTime: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.ResponsePercentile(50); err == nil {
		t.Error("percentile without sampling should error")
	}
}
