// Package simulation implements a deterministic discrete-event simulator for
// closed queueing networks: the stand-in for the paper's physical multi-tier
// testbed. A population of virtual users cycles between a think state and
// visits to multi-server FCFS stations (CPU/Disk/Net queues of the tier
// servers, Fig. 2 of the paper); the simulator measures throughput, response
// time, per-station utilization and queue lengths over a steady-state
// window, exactly the observables a Grinder load test plus vmstat/iostat/
// netstat monitoring would produce.
//
// With exponential service and think times and constant demands the network
// is product-form, so the simulator must agree with exact MVA — an
// integration test enforces this, grounding the simulator before it is used
// as the "measured" reference for the experiments.
package simulation

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/queueing"
)

// Distribution selects a service/think time distribution.
type Distribution int

const (
	// Exponential draws exponentially distributed times (product-form).
	Exponential Distribution = iota
	// Deterministic uses the mean exactly.
	Deterministic
	// Erlang2 draws the sum of two exponentials with half the mean each
	// (coefficient of variation 1/√2, a middle ground).
	Erlang2
	// Uniform draws uniformly on [0, 2·mean].
	Uniform
)

func (d Distribution) String() string {
	switch d {
	case Exponential:
		return "exponential"
	case Deterministic:
		return "deterministic"
	case Erlang2:
		return "erlang-2"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// draw samples the distribution with the given mean.
func (d Distribution) draw(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	switch d {
	case Exponential:
		return rng.ExpFloat64() * mean
	case Deterministic:
		return mean
	case Erlang2:
		return (rng.ExpFloat64() + rng.ExpFloat64()) * mean / 2
	case Uniform:
		return rng.Float64() * 2 * mean
	default:
		return mean
	}
}

// Config controls a simulation run.
type Config struct {
	// Model is the closed network to simulate. Station service times are
	// the per-visit means S_k; Visits are realised per cycle as
	// floor(V_k) visits plus one more with probability frac(V_k).
	Model *queueing.Model
	// Population is the number of virtual users N.
	Population int
	// Seed makes the run reproducible.
	Seed int64
	// WarmupTime is discarded virtual time (seconds) before measuring.
	WarmupTime float64
	// MeasureTime is the measured virtual-time window (seconds).
	MeasureTime float64
	// ServiceDist is the service-time distribution (default Exponential).
	ServiceDist Distribution
	// ThinkDist is the think-time distribution (default Exponential).
	ThinkDist Distribution
	// StartTimes optionally staggers user activation (ramp-up): user i
	// issues its first think at StartTimes[i]. Nil starts everyone at 0.
	StartTimes []float64
	// WindowSize is the TPS/RT time-series sampling window in seconds for
	// the Grinder-style output (default 10 s; 0 disables the series).
	WindowSize float64
	// ResponseSampleCap, when positive, collects up to that many
	// per-transaction response times by reservoir sampling, enabling
	// percentile reporting (Stats.ResponsePercentile).
	ResponseSampleCap int
	// MaxRunsPerUser, when positive, retires each virtual user after that
	// many completed transactions — grinder.runs semantics. The run still
	// ends at WarmupTime+MeasureTime even if users retire earlier.
	MaxRunsPerUser int
}

// Stats is the measured output of a run.
type Stats struct {
	// Population echoes N.
	Population int
	// Throughput is completed transactions per second in the window.
	Throughput float64
	// ResponseTime is the mean seconds from think-end to transaction
	// completion.
	ResponseTime float64
	// CycleTime is ResponseTime plus the realised mean think time.
	CycleTime float64
	// Completed is the number of transactions measured.
	Completed int
	// Utilization[k] is station k's mean fraction of busy servers (0..1).
	Utilization []float64
	// TotalBusy[k] is the raw busy utilization on the 0..C_k scale — the
	// quantity the Service Demand Law divides by X (paper eq. 3).
	TotalBusy []float64
	// QueueLen[k] is the time-average number of customers at station k
	// (queued + in service).
	QueueLen []float64
	// StationThroughput[k] is completions/second at station k.
	StationThroughput []float64
	// TPSSeries / RTSeries are windowed time series over the whole run
	// (including warm-up) — the Grinder Analyzer view of Fig. 1.
	TPSSeries *metrics.Series
	RTSeries  *metrics.Series
	// ResponseSamples holds reservoir-sampled per-transaction response
	// times when Config.ResponseSampleCap was set (else nil).
	ResponseSamples []float64
}

// ResponsePercentile returns the p-th percentile (0..100) of the sampled
// response times; an error when sampling was not enabled.
func (s *Stats) ResponsePercentile(p float64) (float64, error) {
	return metrics.Percentile(s.ResponseSamples, p)
}

// Demands extracts per-station service demands from the run via the Service
// Demand Law D_k = U_k / X with U_k on the total-busy scale (paper eq. 3).
func (s *Stats) Demands() []float64 {
	out := make([]float64, len(s.TotalBusy))
	for k, u := range s.TotalBusy {
		out[k] = queueing.DemandFromUtilization(u, s.Throughput)
	}
	return out
}

// event kinds
const (
	evThinkDone = iota
	evServiceDone
)

type event struct {
	t    float64
	seq  int64 // tie-breaker for determinism
	kind int
	user *user
	stn  int // station index for evServiceDone
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }
func (h eventHeap) Empty() bool   { return len(h) == 0 }

// user is one virtual customer.
type user struct {
	id      int
	plan    []int // remaining station visits this transaction
	planPos int
	txStart float64 // time the current transaction left the think state
	runs    int     // completed transactions (for grinder.runs retirement)
}

// stationState is the runtime state of one queueing station.
type stationState struct {
	servers int
	busy    int
	queue   []*user
	delay   bool
	// accounting
	busyIntegral  float64 // ∫ busy dt
	queueIntegral float64 // ∫ (busy+queued) dt
	lastT         float64
	completions   int
}

func (st *stationState) advance(t float64) {
	dt := t - st.lastT
	if dt > 0 {
		st.busyIntegral += float64(st.busy) * dt
		st.queueIntegral += float64(st.busy+len(st.queue)) * dt
		st.lastT = t
	} else {
		st.lastT = t
	}
}

// Run executes the simulation and returns measured statistics.
func Run(cfg Config) (*Stats, error) {
	if cfg.Model == nil {
		return nil, errors.New("simulation: nil model")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Population < 1 {
		return nil, fmt.Errorf("simulation: population %d", cfg.Population)
	}
	if cfg.MeasureTime <= 0 {
		return nil, fmt.Errorf("simulation: measure time %g", cfg.MeasureTime)
	}
	if cfg.StartTimes != nil && len(cfg.StartTimes) != cfg.Population {
		return nil, fmt.Errorf("simulation: %d start times for %d users", len(cfg.StartTimes), cfg.Population)
	}
	m := cfg.Model
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := len(m.Stations)
	stations := make([]*stationState, k)
	for i, st := range m.Stations {
		stations[i] = &stationState{
			servers: st.Servers,
			delay:   st.Kind == queueing.Delay,
		}
	}
	var (
		h       eventHeap
		seq     int64
		now     float64
		measure = false
	)
	push := func(t float64, kind int, u *user, stn int) {
		seq++
		heap.Push(&h, &event{t: t, seq: seq, kind: kind, user: u, stn: stn})
	}
	// Windowed series over the whole run.
	var tpsSeries, rtSeries *metrics.Series
	var winCompl int
	var winRTSum float64
	var winEnd float64
	if cfg.WindowSize > 0 {
		tpsSeries = &metrics.Series{Name: "tps"}
		rtSeries = &metrics.Series{Name: "response-time"}
		winEnd = cfg.WindowSize
	}
	flushWindow := func(t float64) {
		for cfg.WindowSize > 0 && t >= winEnd {
			tpsSeries.Append(winEnd, float64(winCompl)/cfg.WindowSize)
			if winCompl > 0 {
				rtSeries.Append(winEnd, winRTSum/float64(winCompl))
			} else {
				rtSeries.Append(winEnd, 0)
			}
			winCompl, winRTSum = 0, 0
			winEnd += cfg.WindowSize
		}
	}

	// Measurement accumulators.
	var (
		completed   int
		respSum     float64
		thinkSumAll float64
		thinkCntAll int
		reservoir   []float64
	)

	// buildPlan realises the visit counts for one transaction.
	buildPlan := func(u *user) {
		u.plan = u.plan[:0]
		for sIdx, st := range m.Stations {
			v := int(st.Visits)
			frac := st.Visits - float64(v)
			if frac > 0 && rng.Float64() < frac {
				v++
			}
			for i := 0; i < v; i++ {
				u.plan = append(u.plan, sIdx)
			}
		}
		u.planPos = 0
	}

	var startVisit func(u *user, t float64, sIdx int)

	// nextStep advances a user to its next plan entry or completes the
	// transaction.
	nextStep := func(u *user, t float64) {
		if u.planPos >= len(u.plan) {
			// Transaction complete.
			rt := t - u.txStart
			if measure {
				completed++
				respSum += rt
				if cfg.ResponseSampleCap > 0 {
					// Vitter's reservoir sampling keeps a uniform sample
					// of all measured response times in bounded memory.
					if len(reservoir) < cfg.ResponseSampleCap {
						reservoir = append(reservoir, rt)
					} else if j := rng.Intn(completed); j < cfg.ResponseSampleCap {
						reservoir[j] = rt
					}
				}
			}
			if cfg.WindowSize > 0 {
				winCompl++
				winRTSum += rt
			}
			u.runs++
			if cfg.MaxRunsPerUser > 0 && u.runs >= cfg.MaxRunsPerUser {
				return // grinder.runs reached: the user retires
			}
			z := cfg.ThinkDist.draw(rng, m.ThinkTime)
			if measure {
				thinkSumAll += z
				thinkCntAll++
			}
			push(t+z, evThinkDone, u, -1)
			return
		}
		sIdx := u.plan[u.planPos]
		u.planPos++
		startVisit(u, t, sIdx)
	}

	serve := func(u *user, t float64, sIdx int) {
		s := cfg.ServiceDist.draw(rng, m.Stations[sIdx].ServiceTime)
		push(t+s, evServiceDone, u, sIdx)
	}

	startVisit = func(u *user, t float64, sIdx int) {
		st := stations[sIdx]
		st.advance(t)
		if st.delay {
			st.busy++ // busy counts in-service customers at delay stations
			serve(u, t, sIdx)
			return
		}
		if st.busy < st.servers {
			st.busy++
			serve(u, t, sIdx)
		} else {
			st.queue = append(st.queue, u)
		}
	}

	// Prime users.
	users := make([]*user, cfg.Population)
	for i := range users {
		users[i] = &user{id: i}
		start := 0.0
		if cfg.StartTimes != nil {
			start = cfg.StartTimes[i]
		}
		// The first think completes at start + Z-draw.
		push(start+cfg.ThinkDist.draw(rng, m.ThinkTime), evThinkDone, users[i], -1)
	}

	endWarmup := cfg.WarmupTime
	endRun := cfg.WarmupTime + cfg.MeasureTime

	resetAccounting := func(t float64) {
		for _, st := range stations {
			st.advance(t)
			st.busyIntegral = 0
			st.queueIntegral = 0
			st.completions = 0
		}
		completed, respSum = 0, 0
		thinkSumAll, thinkCntAll = 0, 0
		reservoir = reservoir[:0]
	}

	for !h.Empty() {
		e := heap.Pop(&h).(*event)
		if e.t > endRun {
			now = endRun
			break
		}
		now = e.t
		flushWindow(now)
		if !measure && now >= endWarmup {
			measure = true
			resetAccounting(endWarmup)
		}
		switch e.kind {
		case evThinkDone:
			u := e.user
			u.txStart = now
			buildPlan(u)
			nextStep(u, now)
		case evServiceDone:
			u := e.user
			st := stations[e.stn]
			st.advance(now)
			st.busy--
			if measure {
				st.completions++
			}
			if !st.delay && len(st.queue) > 0 {
				nxt := st.queue[0]
				st.queue = st.queue[1:]
				st.busy++
				serve(nxt, now, e.stn)
			}
			nextStep(u, now)
		}
	}
	// Close accounting at end of run.
	for _, st := range stations {
		st.advance(endRun)
	}
	flushWindow(endRun)

	window := cfg.MeasureTime
	stats := &Stats{
		Population:        cfg.Population,
		Completed:         completed,
		Utilization:       make([]float64, k),
		TotalBusy:         make([]float64, k),
		QueueLen:          make([]float64, k),
		StationThroughput: make([]float64, k),
		TPSSeries:         tpsSeries,
		RTSeries:          rtSeries,
		ResponseSamples:   reservoir,
	}
	stats.Throughput = float64(completed) / window
	if completed > 0 {
		stats.ResponseTime = respSum / float64(completed)
	}
	meanThink := m.ThinkTime
	if thinkCntAll > 0 {
		meanThink = thinkSumAll / float64(thinkCntAll)
	}
	stats.CycleTime = stats.ResponseTime + meanThink
	for i, st := range stations {
		stats.TotalBusy[i] = st.busyIntegral / window
		stats.Utilization[i] = stats.TotalBusy[i] / float64(st.servers)
		if st.delay {
			// Per-server utilization is not meaningful for delay centres.
			stats.Utilization[i] = 0
		}
		stats.QueueLen[i] = st.queueIntegral / window
		stats.StationThroughput[i] = float64(st.completions) / window
	}
	if math.IsNaN(stats.Throughput) {
		return nil, errors.New("simulation: produced NaN throughput")
	}
	return stats, nil
}
