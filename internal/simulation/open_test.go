package simulation

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/queueing"
)

func TestOpenSimulatorMatchesMM1(t *testing.T) {
	m := &queueing.Model{
		Name: "mm1",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.1},
		},
	}
	st, err := RunOpen(OpenConfig{
		Model: m, Lambda: 5, Seed: 1, WarmupTime: 200, MeasureTime: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: W = 0.2, L = 1, ρ = 0.5.
	if rel := metrics.RelErr(st.ResponseTime, 0.2); rel > 0.05 {
		t.Errorf("W = %.4f, want 0.2 (%.1f%%)", st.ResponseTime, rel*100)
	}
	if rel := metrics.RelErr(st.Population, 1); rel > 0.05 {
		t.Errorf("L = %.3f, want 1", st.Population)
	}
	if rel := metrics.RelErr(st.Utilization[0], 0.5); rel > 0.03 {
		t.Errorf("ρ = %.3f, want 0.5", st.Utilization[0])
	}
	if rel := metrics.RelErr(st.ThroughputOut, 5); rel > 0.03 {
		t.Errorf("departure rate %.3f, want 5", st.ThroughputOut)
	}
}

func TestOpenSimulatorMatchesJacksonNetwork(t *testing.T) {
	m := &queueing.Model{
		Name: "jackson",
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 3, Visits: 1, ServiceTime: 0.06},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 2, ServiceTime: 0.01},
			{Name: "lan", Kind: queueing.Delay, Servers: 1, Visits: 1, ServiceTime: 0.02},
		},
	}
	lambda := 25.0
	analytic, err := core.OpenNetwork(m, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if !analytic.Stable {
		t.Fatal("test network should be stable")
	}
	st, err := RunOpen(OpenConfig{
		Model: m, Lambda: lambda, Seed: 7, WarmupTime: 200, MeasureTime: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := metrics.RelErr(st.ResponseTime, analytic.ResponseTime); rel > 0.05 {
		t.Errorf("W sim %.4f vs analytic %.4f (%.1f%%)",
			st.ResponseTime, analytic.ResponseTime, rel*100)
	}
	if rel := metrics.RelErr(st.Population, analytic.Population); rel > 0.05 {
		t.Errorf("N sim %.3f vs analytic %.3f", st.Population, analytic.Population)
	}
	for k := range m.Stations {
		if m.Stations[k].Kind == queueing.Delay {
			continue
		}
		if rel := metrics.RelErr(st.Utilization[k], analytic.Util[k]); rel > 0.05 {
			t.Errorf("station %s: ρ sim %.3f vs %.3f",
				m.Stations[k].Name, st.Utilization[k], analytic.Util[k])
		}
	}
}

func TestOpenSimulatorLittleLaw(t *testing.T) {
	m := &queueing.Model{
		Name: "little",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 2, Visits: 1, ServiceTime: 0.05},
		},
	}
	st, err := RunOpen(OpenConfig{
		Model: m, Lambda: 20, Seed: 3, WarmupTime: 100, MeasureTime: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	implied := st.ThroughputOut * st.ResponseTime
	if rel := metrics.RelErr(implied, st.Population); rel > 0.05 {
		t.Errorf("Little: X·W = %.3f vs L = %.3f", implied, st.Population)
	}
}

func TestOpenSimulatorErrors(t *testing.T) {
	m := &queueing.Model{
		Name: "err",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.1},
		},
	}
	cases := []OpenConfig{
		{Model: nil, Lambda: 1, MeasureTime: 1},
		{Model: m, Lambda: 0, MeasureTime: 1},
		{Model: m, Lambda: 1, MeasureTime: 0},
		{Model: &queueing.Model{}, Lambda: 1, MeasureTime: 1},
	}
	for i, cfg := range cases {
		if _, err := RunOpen(cfg); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}
