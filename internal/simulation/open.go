package simulation

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/queueing"
)

// OpenConfig controls an open-network simulation: Poisson arrivals at rate
// Lambda walk their station visits once and depart. The think-time field of
// the model is ignored (open customers do not cycle).
type OpenConfig struct {
	// Model is the network (stations only; ThinkTime ignored).
	Model *queueing.Model
	// Lambda is the arrival rate in customers/second.
	Lambda float64
	// Seed makes the run reproducible.
	Seed int64
	// WarmupTime is discarded virtual time before measuring (seconds).
	WarmupTime float64
	// MeasureTime is the measured window (seconds).
	MeasureTime float64
	// ServiceDist is the service-time distribution (default Exponential,
	// matching the M/M/C analysis).
	ServiceDist Distribution
}

// OpenStats is the measured output of an open run.
type OpenStats struct {
	// Lambda echoes the configured rate; ThroughputOut is the measured
	// departure rate (equal at steady state).
	Lambda        float64
	ThroughputOut float64
	// ResponseTime is the mean sojourn from arrival to departure (seconds).
	ResponseTime float64
	// Population is the time-average number of customers in the system.
	Population float64
	// Utilization[k] is station k's mean per-server utilization.
	Utilization []float64
	// QueueLen[k] is the time-average number at station k.
	QueueLen []float64
	// Completed counts departures inside the window.
	Completed int
}

// RunOpen simulates the open network and returns measured statistics.
func RunOpen(cfg OpenConfig) (*OpenStats, error) {
	if cfg.Model == nil {
		return nil, errors.New("simulation: nil model")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Lambda <= 0 {
		return nil, fmt.Errorf("simulation: arrival rate %g", cfg.Lambda)
	}
	if cfg.MeasureTime <= 0 {
		return nil, fmt.Errorf("simulation: measure time %g", cfg.MeasureTime)
	}
	m := cfg.Model
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := len(m.Stations)
	stations := make([]*stationState, k)
	for i, st := range m.Stations {
		stations[i] = &stationState{servers: st.Servers, delay: st.Kind == queueing.Delay}
	}
	var (
		h   eventHeap
		seq int64
	)
	push := func(t float64, kind int, u *user, stn int) {
		seq++
		heap.Push(&h, &event{t: t, seq: seq, kind: kind, user: u, stn: stn})
	}
	endWarmup := cfg.WarmupTime
	endRun := cfg.WarmupTime + cfg.MeasureTime
	var (
		measure     bool
		completed   int
		respSum     float64
		inSystem    int
		popIntegral float64
		lastT       float64
	)
	advancePop := func(t float64) {
		if t > lastT {
			popIntegral += float64(inSystem) * (t - lastT)
			lastT = t
		}
	}
	serve := func(u *user, t float64, sIdx int) {
		s := cfg.ServiceDist.draw(rng, m.Stations[sIdx].ServiceTime)
		push(t+s, evServiceDone, u, sIdx)
	}
	var nextStep func(u *user, t float64)
	startVisit := func(u *user, t float64, sIdx int) {
		st := stations[sIdx]
		st.advance(t)
		if st.delay || st.busy < st.servers {
			st.busy++
			serve(u, t, sIdx)
		} else {
			st.queue = append(st.queue, u)
		}
	}
	nextStep = func(u *user, t float64) {
		if u.planPos >= len(u.plan) {
			// Departure.
			advancePop(t)
			inSystem--
			if measure {
				completed++
				respSum += t - u.txStart
			}
			return
		}
		sIdx := u.plan[u.planPos]
		u.planPos++
		startVisit(u, t, sIdx)
	}
	buildPlan := func(u *user) {
		u.plan = u.plan[:0]
		for sIdx, st := range m.Stations {
			v := int(st.Visits)
			if frac := st.Visits - float64(v); frac > 0 && rng.Float64() < frac {
				v++
			}
			for i := 0; i < v; i++ {
				u.plan = append(u.plan, sIdx)
			}
		}
		u.planPos = 0
	}
	// The arrival process: evThinkDone doubles as "arrival" here (the user
	// enters the network when it fires) and each arrival schedules the next.
	nextID := 0
	scheduleArrival := func(t float64) {
		gap := rng.ExpFloat64() / cfg.Lambda
		u := &user{id: nextID}
		nextID++
		push(t+gap, evThinkDone, u, -1)
	}
	scheduleArrival(0)
	for !h.Empty() {
		e := heap.Pop(&h).(*event)
		if e.t > endRun {
			break
		}
		now := e.t
		if !measure && now >= endWarmup {
			measure = true
			for _, st := range stations {
				st.advance(endWarmup)
				st.busyIntegral = 0
				st.queueIntegral = 0
				st.completions = 0
			}
			advancePop(endWarmup)
			popIntegral = 0
		}
		switch e.kind {
		case evThinkDone: // arrival
			advancePop(now)
			inSystem++
			u := e.user
			u.txStart = now
			buildPlan(u)
			scheduleArrival(now)
			nextStep(u, now)
		case evServiceDone:
			u := e.user
			st := stations[e.stn]
			st.advance(now)
			st.busy--
			if measure {
				st.completions++
			}
			if !st.delay && len(st.queue) > 0 {
				nxt := st.queue[0]
				st.queue = st.queue[1:]
				st.busy++
				serve(nxt, now, e.stn)
			}
			nextStep(u, now)
		}
	}
	for _, st := range stations {
		st.advance(endRun)
	}
	advancePop(endRun)
	window := cfg.MeasureTime
	out := &OpenStats{
		Lambda:      cfg.Lambda,
		Completed:   completed,
		Utilization: make([]float64, k),
		QueueLen:    make([]float64, k),
	}
	out.ThroughputOut = float64(completed) / window
	if completed > 0 {
		out.ResponseTime = respSum / float64(completed)
	}
	out.Population = popIntegral / window
	for i, st := range stations {
		out.Utilization[i] = st.busyIntegral / window / float64(st.servers)
		if st.delay {
			out.Utilization[i] = 0
		}
		out.QueueLen[i] = st.queueIntegral / window
	}
	return out, nil
}
