package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/queueing"
)

// singleStation builds a one-queue closed model.
func singleStation(d, z float64, servers int) *queueing.Model {
	return &queueing.Model{
		Name:      "single",
		ThinkTime: z,
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: servers, Visits: 1, ServiceTime: d},
		},
	}
}

// balanced builds K identical single-server stations of demand d each.
func balanced(k int, d, z float64) *queueing.Model {
	m := &queueing.Model{Name: "balanced", ThinkTime: z}
	for i := 0; i < k; i++ {
		m.Stations = append(m.Stations, queueing.Station{
			Name: "q" + string(rune('a'+i)), Kind: queueing.CPU,
			Servers: 1, Visits: 1, ServiceTime: d,
		})
	}
	return m
}

func TestExactMVASingleQueueClosedForm(t *testing.T) {
	// One queue, Z=0: R(n) = n·D, X(n) = 1/D for all n.
	d := 0.02
	res, err := ExactMVA(singleStation(d, 0, 1), 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.N {
		if wantR := float64(n) * d; math.Abs(res.R[i]-wantR) > 1e-12 {
			t.Fatalf("R(%d) = %g, want %g", n, res.R[i], wantR)
		}
		if math.Abs(res.X[i]-1/d) > 1e-9 {
			t.Fatalf("X(%d) = %g, want %g", n, res.X[i], 1/d)
		}
	}
}

func TestExactMVABalancedClosedForm(t *testing.T) {
	// K balanced stations, Z=0: X(n) = n / (D·(K+n−1)).
	k, d := 3, 0.01
	res, err := ExactMVA(balanced(k, d, 0), 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.N {
		want := float64(n) / (d * float64(k+n-1))
		if math.Abs(res.X[i]-want) > 1e-9*want {
			t.Fatalf("X(%d) = %g, want %g", n, res.X[i], want)
		}
	}
}

func TestExactMVAInvariantsAndMonotone(t *testing.T) {
	m := &queueing.Model{
		Name:      "3tier",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "web", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.002},
			{Name: "app", Kind: queueing.CPU, Servers: 1, Visits: 2, ServiceTime: 0.003},
			{Name: "db", Kind: queueing.Disk, Servers: 1, Visits: 1.5, ServiceTime: 0.006},
		},
	}
	res, err := ExactMVA(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := res.CheckMonotone(); err != nil {
		t.Fatal(err)
	}
	// Bottleneck bound: X ≤ 1/Dmax with equality approached at high N.
	dmax, _ := m.MaxDemand()
	xmax, _ := res.MaxThroughput()
	if xmax > 1/dmax+1e-9 {
		t.Fatalf("X=%g exceeds bottleneck bound %g", xmax, 1/dmax)
	}
	if res.X[len(res.X)-1] < 0.98/dmax {
		t.Fatalf("X(500)=%g far from bound %g", res.X[len(res.X)-1], 1/dmax)
	}
}

func TestExactMVABottleneckBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m := &queueing.Model{Name: "rand", ThinkTime: rng.Float64() * 2}
		k := 1 + rng.Intn(6)
		for i := 0; i < k; i++ {
			m.Stations = append(m.Stations, queueing.Station{
				Name: "s" + string(rune('a'+i)), Kind: queueing.CPU, Servers: 1,
				Visits: 0.5 + 2*rng.Float64(), ServiceTime: 0.001 + 0.02*rng.Float64(),
			})
		}
		res, err := ExactMVA(m, 200)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dmax, _ := m.MaxDemand()
		for i := range res.X {
			if res.X[i] > 1/dmax*(1+1e-9) {
				t.Fatalf("trial %d: X(%d)=%g exceeds 1/Dmax=%g", trial, res.N[i], res.X[i], 1/dmax)
			}
		}
	}
}

func TestExactMVADelayStation(t *testing.T) {
	// A pure delay station adds a constant to R without queueing: with one
	// queueing station (demand D) plus a delay of demand W, R(1) = D + W.
	m := &queueing.Model{
		Name:      "delayed",
		ThinkTime: 0,
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
			{Name: "lan", Kind: queueing.Delay, Servers: 1, Visits: 1, ServiceTime: 0.05},
		},
	}
	res, err := ExactMVA(m, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.R[0], 0.06; math.Abs(got-want) > 1e-12 {
		t.Fatalf("R(1) = %g, want %g", got, want)
	}
	// The delay contributes exactly 0.05 at every population.
	for i := range res.N {
		if math.Abs(res.Residence[i][1]-0.05) > 1e-12 {
			t.Fatalf("delay residence at n=%d: %g", res.N[i], res.Residence[i][1])
		}
	}
}

func TestExactMVAErrors(t *testing.T) {
	if _, err := ExactMVA(singleStation(0.01, 0, 1), 0); !errors.Is(err, ErrBadRun) {
		t.Errorf("N=0: %v", err)
	}
	bad := &queueing.Model{}
	if _, err := ExactMVA(bad, 5); !errors.Is(err, queueing.ErrInvalidModel) {
		t.Errorf("invalid model: %v", err)
	}
}

func TestNormalizeServers(t *testing.T) {
	m := singleStation(0.016, 1, 16)
	nm := NormalizeServers(m)
	if nm.Stations[0].Servers != 1 {
		t.Errorf("servers = %d", nm.Stations[0].Servers)
	}
	if got := nm.Stations[0].ServiceTime; math.Abs(got-0.001) > 1e-15 {
		t.Errorf("service time = %g, want 0.001", got)
	}
	// Original untouched.
	if m.Stations[0].Servers != 16 {
		t.Error("NormalizeServers mutated its input")
	}
}

func TestSchweitzerCloseToExact(t *testing.T) {
	m := &queueing.Model{
		Name:      "mix",
		ThinkTime: 0.5,
		Stations: []queueing.Station{
			{Name: "a", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.004},
			{Name: "b", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.009},
			{Name: "c", Kind: queueing.NetTx, Servers: 1, Visits: 1, ServiceTime: 0.002},
		},
	}
	exact, err := ExactMVA(m, 300)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Schweitzer(m, 300, SchweitzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := approx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := range exact.X {
		relErr := math.Abs(approx.X[i]-exact.X[i]) / exact.X[i]
		if relErr > 0.05 {
			t.Fatalf("n=%d: Schweitzer X=%g vs exact %g (%.1f%% off)",
				exact.N[i], approx.X[i], exact.X[i], relErr*100)
		}
	}
}

func TestSchweitzerN1MatchesExact(t *testing.T) {
	// With one customer there is no queueing: both must agree exactly.
	m := balanced(4, 0.01, 1)
	exact, err := ExactMVA(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Schweitzer(m, 1, SchweitzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.X[0]-approx.X[0]) > 1e-8*exact.X[0] {
		t.Fatalf("n=1: exact %g vs schweitzer %g", exact.X[0], approx.X[0])
	}
}

func TestResultAccessors(t *testing.T) {
	res, err := ExactMVA(singleStation(0.01, 1, 1), 10)
	if err != nil {
		t.Fatal(err)
	}
	x, r, cyc, err := res.At(5)
	if err != nil {
		t.Fatal(err)
	}
	if x != res.X[4] || r != res.R[4] || cyc != res.Cycle[4] {
		t.Error("At(5) mismatch")
	}
	if _, _, _, err := res.At(0); err == nil {
		t.Error("At(0) should error")
	}
	if _, _, _, err := res.At(11); err == nil {
		t.Error("At(11) should error")
	}
	if idx := res.StationIndex("q"); idx != 0 {
		t.Errorf("StationIndex = %d", idx)
	}
	if idx := res.StationIndex("none"); idx != -1 {
		t.Errorf("missing StationIndex = %d", idx)
	}
	series := res.UtilSeries(0)
	if len(series) != 10 {
		t.Errorf("UtilSeries length %d", len(series))
	}
	fu := res.FinalUtilization()
	if len(fu) != 1 || fu[0] != series[9] {
		t.Errorf("FinalUtilization %v", fu)
	}
}
