package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/queueing"
)

func TestMulticlassSingleClassMatchesExactMVA(t *testing.T) {
	m := &queueing.Model{
		Name:      "mc-vs-exact",
		ThinkTime: 0, // think time lives in the class spec here
		Stations: []queueing.Station{
			{Name: "a", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.004},
			{Name: "b", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.009},
		},
	}
	const n = 60
	exactModel := *m
	exactModel.ThinkTime = 1
	exact, err := ExactMVA(&exactModel, n)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MulticlassMVA(m, []ClassSpec{{
		Name: "only", Population: n, ThinkTime: 1,
		Demands: []float64{0.004, 0.009},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.X[0]-exact.X[n-1]) > 1e-9*exact.X[n-1] {
		t.Fatalf("X: multiclass %g vs exact %g", mc.X[0], exact.X[n-1])
	}
	if math.Abs(mc.R[0]-exact.R[n-1]) > 1e-9*math.Max(exact.R[n-1], 1e-12) {
		t.Fatalf("R: multiclass %g vs exact %g", mc.R[0], exact.R[n-1])
	}
}

func TestMulticlassSymmetricClassesSplitThroughput(t *testing.T) {
	// Two identical classes of population n each must behave like one
	// class of 2n, splitting throughput evenly.
	m := &queueing.Model{
		Name: "sym",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
		},
	}
	spec := ClassSpec{Population: 15, ThinkTime: 0.5, Demands: []float64{0.01}}
	a, b := spec, spec
	a.Name, b.Name = "a", "b"
	mc, err := MulticlassMVA(m, []ClassSpec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.X[0]-mc.X[1]) > 1e-9*mc.X[0] {
		t.Fatalf("asymmetric split: %g vs %g", mc.X[0], mc.X[1])
	}
	merged := ClassSpec{Name: "all", Population: 30, ThinkTime: 0.5, Demands: []float64{0.01}}
	one, err := MulticlassMVA(m, []ClassSpec{merged})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((mc.X[0]+mc.X[1])-one.X[0]) > 1e-9*one.X[0] {
		t.Fatalf("aggregate X %g vs single-class %g", mc.X[0]+mc.X[1], one.X[0])
	}
}

func TestMulticlassAsymmetricClasses(t *testing.T) {
	// A light class (small demand) must achieve higher throughput per
	// customer than a heavy class sharing the same station.
	m := &queueing.Model{
		Name: "asym",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 1},
		},
	}
	classes := []ClassSpec{
		{Name: "light", Population: 5, ThinkTime: 1, Demands: []float64{0.005}},
		{Name: "heavy", Population: 5, ThinkTime: 1, Demands: []float64{0.05}},
	}
	mc, err := MulticlassMVA(m, classes)
	if err != nil {
		t.Fatal(err)
	}
	if mc.X[0] <= mc.X[1] {
		t.Fatalf("light class X %g should exceed heavy %g", mc.X[0], mc.X[1])
	}
	// Little's law per class: N_c = X_c (R_c + Z_c).
	for c, cl := range classes {
		lhs := mc.X[c] * (mc.R[c] + cl.ThinkTime)
		if math.Abs(lhs-float64(cl.Population)) > 1e-6*float64(cl.Population) {
			t.Fatalf("class %s: Little's law N=%g, want %d", cl.Name, lhs, cl.Population)
		}
	}
	// Utilization = Σ X_c D_c ≤ 1.
	if mc.Util[0] > 1+1e-9 {
		t.Fatalf("utilization %g > 1", mc.Util[0])
	}
}

func TestMulticlassDelayStations(t *testing.T) {
	m := &queueing.Model{
		Name: "with-delay",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
			{Name: "lan", Kind: queueing.Delay, Servers: 1, Visits: 1, ServiceTime: 0.1},
		},
	}
	mc, err := MulticlassMVA(m, []ClassSpec{
		{Name: "c", Population: 1, ThinkTime: 0, Demands: []float64{0.01, 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.R[0]-0.11) > 1e-12 {
		t.Fatalf("R = %g, want 0.11", mc.R[0])
	}
}

func TestMulticlassErrors(t *testing.T) {
	m := &queueing.Model{
		Name: "err",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 2, Visits: 1, ServiceTime: 0.01},
		},
	}
	if _, err := MulticlassMVA(m, []ClassSpec{{Name: "c", Population: 1, Demands: []float64{0.01}}}); !errors.Is(err, ErrBadRun) {
		t.Errorf("multi-server station should be rejected: %v", err)
	}
	m.Stations[0].Servers = 1
	if _, err := MulticlassMVA(m, nil); !errors.Is(err, ErrBadRun) {
		t.Errorf("no classes: %v", err)
	}
	if _, err := MulticlassMVA(m, []ClassSpec{{Name: "c", Population: -1, Demands: []float64{0.01}}}); !errors.Is(err, ErrBadRun) {
		t.Errorf("negative population: %v", err)
	}
	if _, err := MulticlassMVA(m, []ClassSpec{{Name: "c", Population: 1, Demands: []float64{0.01, 0.02}}}); !errors.Is(err, ErrBadRun) {
		t.Errorf("demand count mismatch: %v", err)
	}
	if _, err := MulticlassMVA(m, []ClassSpec{{Name: "c", Population: 1, ThinkTime: -1, Demands: []float64{0.01}}}); !errors.Is(err, ErrBadRun) {
		t.Errorf("negative think: %v", err)
	}
}

func TestMulticlassZeroPopulation(t *testing.T) {
	m := &queueing.Model{
		Name: "zero",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
		},
	}
	mc, err := MulticlassMVA(m, []ClassSpec{{Name: "c", Population: 0, Demands: []float64{0.01}}})
	if err != nil {
		t.Fatal(err)
	}
	if mc.X[0] != 0 || mc.R[0] != 0 {
		t.Fatalf("zero population: X=%g R=%g", mc.X[0], mc.R[0])
	}
}
