package core

import (
	"context"
	"fmt"
)

// stepper is the per-population step of one MVA variant. step solves
// population n into result row i (earlier rows are already committed,
// res.Residence[i] and friends are ready to be filled) and mutates the
// stepper's own recursion state only on success, so a failed or cancelled
// step can be retried. The row index is passed separately from n because a
// decimated or chunked trajectory does not store row n-1 at index n-1.
// stop is the per-step cancellation probe (nil when non-cancellable); only
// steppers with inner fixed-point loops consult it. hooks is the solver's
// observer (nil when uninstrumented); steppers with inner fixed points
// report their iteration counts through it.
type stepper interface {
	step(res *Result, n, i int, stop func(int) error, hooks *SolveHooks) error
	// release returns pooled scratch. The stepper must not be used after.
	release()
	// checkpoint deep-copies the stepper's recursion state into cp (steppers
	// whose steps are self-contained leave cp's state fields nil).
	checkpoint(cp *Checkpoint)
	// restore overwrites the stepper's recursion state from cp, validating
	// shapes; Solver.Restore guarantees it runs only on a fresh stepper.
	restore(cp *Checkpoint) error
}

// SolveHooks observes a Solver's progress. Every field is optional; a nil
// hooks pointer (the default) costs the hot loop a single nil check per
// population step, preserving the exact-MVA zero-allocation guarantee.
// Callbacks run synchronously on the solving goroutine and must be fast;
// they must not call back into the Solver.
type SolveHooks struct {
	// OnStep fires after population step n commits, with the step's
	// throughput — per-population progress for long solves.
	OnStep func(n int, x float64)
	// OnFixedPoint fires once per inner fixed-point resolution (Schweitzer's
	// queue-length iteration, MVASD's demand/throughput iteration) at
	// population n: iters iterations were executed and resid is the final
	// relative residual. converged=false reports a convergence failure (the
	// step returns an error immediately after).
	OnFixedPoint func(n, iters int, resid float64, converged bool)
}

// fixedPoint invokes OnFixedPoint when set; safe on a nil receiver.
func (h *SolveHooks) fixedPoint(n, iters int, resid float64, converged bool) {
	if h != nil && h.OnFixedPoint != nil {
		h.OnFixedPoint(n, iters, resid, converged)
	}
}

// Solver is a resumable MVA engine: it owns the recursion state of one
// algorithm over one model and grows its Result trajectory incrementally.
//
//	s, _ := NewExactMVASolver(m)
//	s.Run(100)     // solves n = 1..100
//	s.Extend(1500) // continues from the checkpoint: solves only 101..1500
//
// Extending never re-solves or copies the prefix, and the trajectory is
// bit-identical to a cold solve at the final population: the population
// recursion depends only on the previous step's state, never on the target.
//
// A Solver is not safe for concurrent use. Release returns its scratch
// buffers to the package pool; the Result remains valid afterwards.
type Solver struct {
	res      *Result
	alg      stepper
	hooks    *SolveHooks
	released bool
}

func newSolver(algorithm string, res *Result, alg stepper) *Solver {
	res.Algorithm = algorithm
	return &Solver{res: res, alg: alg}
}

// N returns the largest population solved so far (0 for a fresh solver,
// the seed checkpoint's population right after ResumeFrom). A decimated
// solver advances through every population, so N reports the recursion
// frontier, not the stored-row count.
func (s *Solver) N() int { return s.res.SolvedN() }

// SetHooks installs (or, with nil, clears) the solver's progress observer.
// Like the solver itself, SetHooks is not safe for concurrent use with a
// running Run/Extend; install hooks before starting and clear them after so
// a pooled solver does not retain callbacks from a finished request.
func (s *Solver) SetHooks(h *SolveHooks) { s.hooks = h }

// Result returns the trajectory solved so far. The same Result is grown in
// place by later Run/Extend calls; use Result().Prefix(n) for a stable
// snapshot.
func (s *Solver) Result() *Result { return s.res }

// Reserve pre-allocates trajectory capacity for a run up to population n so
// subsequent steps inside that capacity allocate nothing. Decimated solvers
// reserve only the rows they will store.
func (s *Solver) Reserve(n int) {
	if n > 0 {
		s.res.reserve(s.res.rowsForPop(n))
	}
}

// Decimate configures the solver to store only every stride-th population
// (plus each run's final population) while still advancing the recursion
// through every population — bounding a deep solve's memory at
// N/stride rows. Every stored row carries the recursion checkpoint at that
// population, so any skipped row is recoverable bit-identically by
// re-extending from the nearest stored checkpoint (see Result.Recover).
// Decimate must be called before the first Run; stride 1 is a no-op.
// Marginal-tracing multi-server solvers cannot be decimated (the trace is
// per-population and would misalign with the stored rows).
func (s *Solver) Decimate(stride int) error {
	if s.released {
		return fmt.Errorf("%w: decimate a released solver", ErrBadRun)
	}
	if stride < 1 {
		return fmt.Errorf("%w: decimation stride %d", ErrBadRun, stride)
	}
	if s.res.Len() != 0 {
		return fmt.Errorf("%w: decimate a solver already at population %d", ErrBadRun, s.res.SolvedN())
	}
	if stride == 1 {
		return nil
	}
	if ms, ok := s.alg.(*multiServerStepper); ok && ms.trace != nil {
		return fmt.Errorf("%w: decimate a marginal-tracing solver", ErrBadRun)
	}
	s.res.stride = stride
	return nil
}

// ResumeFrom seeds a fresh solver with only the recursion state of cp — no
// trajectory rows — so a subsequent Run continues the population recursion
// at cp.N+1 with stored rows starting there (Result().BasePop() == cp.N).
// This is the distributed deep-solve primitive: a cluster member receives a
// checkpoint, solves its [cp.N+1, toN] chunk without ever holding the
// prefix, and ships its own final checkpoint on. Extending a resumed solver
// is bit-identical to the source solver solving the same populations.
func (s *Solver) ResumeFrom(cp *Checkpoint) error {
	if s.released {
		return fmt.Errorf("%w: resume a released solver", ErrBadRun)
	}
	if s.res.Len() != 0 || s.res.basePop != 0 {
		return fmt.Errorf("%w: resume a solver already at population %d (want fresh)", ErrBadRun, s.res.SolvedN())
	}
	if cp == nil {
		return fmt.Errorf("%w: resume needs a checkpoint", ErrBadRun)
	}
	if cp.Algorithm != s.res.Algorithm {
		return fmt.Errorf("%w: resume algorithm mismatch: checkpoint %q, solver %q",
			ErrBadRun, cp.Algorithm, s.res.Algorithm)
	}
	if cp.N < 0 {
		return fmt.Errorf("%w: resume from population %d", ErrBadRun, cp.N)
	}
	if err := s.alg.restore(cp); err != nil {
		return err
	}
	s.res.basePop = cp.N
	s.res.solvedN = cp.N
	return nil
}

// Run solves the recursion up to population maxN. Populations already solved
// are kept as-is; Run(maxN ≤ N()) is a no-op. Run is resumable: after an
// error (including cancellation in RunContext) the completed prefix remains
// valid and a later call continues from it.
func (s *Solver) Run(maxN int) error { return s.RunContext(context.Background(), maxN) }

// Extend is Run, named for the resuming call site.
func (s *Solver) Extend(maxN int) error { return s.RunContext(context.Background(), maxN) }

// RunContext is Run with per-population-step cancellation (and, for MVASD's
// throughput mode, per-fixed-point-iteration cancellation).
func (s *Solver) RunContext(ctx context.Context, maxN int) error {
	if s.released {
		return fmt.Errorf("%w: solver already released", ErrBadRun)
	}
	if maxN < 1 {
		return fmt.Errorf("%w: population %d", ErrBadRun, maxN)
	}
	res := s.res
	if maxN <= res.SolvedN() {
		return nil
	}
	stop := stepCancel(ctx)
	res.reserve(res.rowsForPop(maxN))
	stride := res.stride
	if stride < 1 {
		stride = 1
	}
	for n := res.solvedN + 1; n <= maxN; n++ {
		if stop != nil {
			if err := stop(n); err != nil {
				return err
			}
		}
		i := res.stageRow(n)
		if err := s.alg.step(res, n, i, stop, s.hooks); err != nil {
			res.dropStaged()
			return err
		}
		res.solvedN = n
		if stride == 1 || n%stride == 0 || n == maxN {
			res.commitStaged()
			if stride > 1 {
				cp := &Checkpoint{Algorithm: res.Algorithm, N: n}
				s.alg.checkpoint(cp)
				res.Checkpoints = append(res.Checkpoints, cp)
			}
		}
		if s.hooks != nil && s.hooks.OnStep != nil {
			s.hooks.OnStep(n, res.xBuf[i])
		}
	}
	return nil
}

// Release returns the solver's scratch state to the package pool. The
// trajectory in Result stays valid; the solver itself must not be run again.
// Release is idempotent.
func (s *Solver) Release() {
	if s == nil || s.released {
		return
	}
	s.released = true
	s.alg.release()
}

// Trace returns the marginal-probability trace of a multi-server solver
// built with MultiServerOptions.TraceStation ≥ 0, or nil for every other
// configuration. The trace grows together with the trajectory.
func (s *Solver) Trace() *MarginalTrace {
	if ms, ok := s.alg.(*multiServerStepper); ok {
		return ms.trace
	}
	return nil
}

// runToCompletion is the shared body of the one-shot solver entry points:
// reserve, run under ctx, release scratch, and surface the Result only on
// success.
func runToCompletion(ctx context.Context, s *Solver, maxN int) (*Result, error) {
	defer s.Release()
	s.Reserve(maxN)
	if err := s.RunContext(ctx, maxN); err != nil {
		return nil, err
	}
	return s.Result(), nil
}
