package core

import (
	"fmt"

	"repro/internal/queueing"
)

// SeidmannTransform returns a copy of the model with every C-server station
// replaced by Seidmann's approximation: a single-server station with demand
// D/C in series with a pure delay of D·(C−1)/C. This classic device lets
// single-server-only solvers (exact MVA, multi-class MVA) handle multi-core
// resources with far better accuracy than the naive D/C folding, because
// the delay restores the full service time seen by an unqueued customer.
// Delay and single-server stations pass through unchanged.
func SeidmannTransform(m *queueing.Model) *queueing.Model {
	out := &queueing.Model{Name: m.Name + " (seidmann)", ThinkTime: m.ThinkTime}
	for _, st := range m.Stations {
		if st.Kind == queueing.Delay || st.Servers == 1 {
			out.Stations = append(out.Stations, st)
			continue
		}
		c := float64(st.Servers)
		queueStage := st
		queueStage.Servers = 1
		queueStage.ServiceTime = st.ServiceTime / c
		out.Stations = append(out.Stations, queueStage)
		delayStage := st
		delayStage.Name = st.Name + "/transit"
		delayStage.Kind = queueing.Delay
		delayStage.Servers = 1
		delayStage.ServiceTime = st.ServiceTime * (c - 1) / c
		out.Stations = append(out.Stations, delayStage)
	}
	return out
}

// SeidmannMVA solves the model with exact single-server MVA after the
// Seidmann multi-server transform — a third way (besides Algorithm 2 and
// exact load-dependent MVA) to handle multi-core CPUs, included for the
// ablation study. The result's stations are those of the transformed model.
func SeidmannMVA(m *queueing.Model, maxN int) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	res, err := ExactMVA(SeidmannTransform(m), maxN)
	if err != nil {
		return nil, err
	}
	res.Algorithm = "seidmann-mva"
	return res, nil
}

// SchweitzerMultiServer solves the network with the approximate
// (Bard–Schweitzer) MVA combined with the same multi-server correction
// factor Algorithm 2 uses — the combination the paper attributes to its
// refs [19]/[20] and criticises ("as this is based on the approximate
// version of MVA, errors in prediction compounded with variation in service
// demands can lead to inaccurate outputs"). Included as the baseline that
// motivates the paper's choice of the *exact* recursion.
func SchweitzerMultiServer(m *queueing.Model, maxN int, opts SchweitzerOptions) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	opts.defaults()
	res := newResult("schweitzer-multiserver", m, maxN)
	k := len(m.Stations)
	demands := m.Demands()
	for n := 1; n <= maxN; n++ {
		// Fixed point at population n with the arrival-theorem
		// approximation Q(n−1) ≈ (n−1)/n·Q(n) and the closed-form
		// multi-server marginal probabilities of multiServerStep.
		st := newMultiServerState(m)
		q := make([]float64, k)
		for i := range q {
			q[i] = float64(n) / float64(k)
		}
		var x, rTotal float64
		converged := false
		for iter := 0; iter < opts.MaxIter; iter++ {
			// Seed the state with the scaled queue estimate, then run one
			// multi-server step to get residence times and probabilities.
			for i := range q {
				st.queue[i] = float64(n-1) / float64(n) * q[i]
			}
			xn, rT := multiServerStep(m, st, demands, n, false, res.Residence[n-1])
			worst := 0.0
			for i := range q {
				nq := st.queue[i] // = xn · resid, set by the step
				rel := absf(nq-q[i]) / maxf(q[i], 1e-12)
				if rel > worst {
					worst = rel
				}
				q[i] = nq
			}
			x, rTotal = xn, rT
			if worst < opts.Tol {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("%w: schweitzer-multiserver did not converge at n=%d", ErrBadRun, n)
		}
		for i, stn := range m.Stations {
			res.QueueLen[n-1][i] = q[i]
			if stn.Kind == queueing.Delay {
				res.Util[n-1][i] = 0
			} else {
				res.Util[n-1][i] = minf(x*demands[i]/float64(stn.Servers), 1)
			}
			res.Demands[n-1][i] = demands[i]
		}
		res.X[n-1] = x
		res.R[n-1] = rTotal
		res.Cycle[n-1] = rTotal + m.ThinkTime
	}
	return res, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
