package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/numeric"
	"repro/internal/queueing"
)

func TestErlangBKnownValues(t *testing.T) {
	// Classic table values: B(1, 1) = 0.5; B(2, 1) = 1/5; B(5, 3) ≈ 0.1101.
	cases := []struct {
		c    int
		a    float64
		want float64
		tol  float64
	}{
		{1, 1, 0.5, 1e-12},
		{2, 1, 0.2, 1e-12},
		{5, 3, 0.11005, 1e-4},
		{0, 2, 1, 1e-12}, // zero servers block everything
	}
	for _, cse := range cases {
		if got := ErlangB(cse.c, cse.a); math.Abs(got-cse.want) > cse.tol {
			t.Errorf("ErlangB(%d, %g) = %.6f, want %.6f", cse.c, cse.a, got, cse.want)
		}
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: C(1, ρ) = ρ.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); math.Abs(got-rho) > 1e-12 {
			t.Errorf("ErlangC(1, %g) = %g, want %g", rho, got, rho)
		}
	}
	// Erlang's example: C(2, 1) = 1/3.
	if got := ErlangC(2, 1); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("ErlangC(2, 1) = %g, want 1/3", got)
	}
	// Saturated: probability 1.
	if got := ErlangC(2, 2.5); got != 1 {
		t.Errorf("saturated ErlangC = %g", got)
	}
}

func TestErlangPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"B negative": func() { ErlangB(-1, 1) },
		"C zero":     func() { ErlangC(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestOpenNetworkMM1(t *testing.T) {
	// Single M/M/1: W = S/(1−ρ), L = ρ/(1−ρ).
	m := &queueing.Model{
		Name: "mm1",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.1},
		},
	}
	res, err := OpenNetwork(m, 5) // ρ = 0.5
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatal("ρ=0.5 must be stable")
	}
	if !numeric.AlmostEqual(res.ResponseTime, 0.2, 1e-12) {
		t.Errorf("W = %g, want 0.2", res.ResponseTime)
	}
	if !numeric.AlmostEqual(res.QueueLen[0], 1, 1e-12) {
		t.Errorf("L = %g, want 1", res.QueueLen[0])
	}
	if !numeric.AlmostEqual(res.Population, 1, 1e-12) {
		t.Errorf("N = %g, want 1 (Little)", res.Population)
	}
}

func TestOpenNetworkMMCAgainstFormula(t *testing.T) {
	// M/M/3 with S = 0.3, λ = 8 → a = 2.4, ρ = 0.8.
	m := &queueing.Model{
		Name: "mm3",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 3, Visits: 1, ServiceTime: 0.3},
		},
	}
	res, err := OpenNetwork(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	pw := ErlangC(3, 2.4)
	wantW := 0.3 + pw*0.3/(3*0.2)
	if !numeric.AlmostEqual(res.ResponseTime, wantW, 1e-12) {
		t.Errorf("W = %g, want %g", res.ResponseTime, wantW)
	}
	if !numeric.AlmostEqual(res.Util[0], 0.8, 1e-12) {
		t.Errorf("ρ = %g, want 0.8", res.Util[0])
	}
}

func TestOpenNetworkTandemAndDelay(t *testing.T) {
	// Jackson tandem: response times add; delays contribute demand only.
	m := &queueing.Model{
		Name: "tandem",
		Stations: []queueing.Station{
			{Name: "a", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.05},
			{Name: "b", Kind: queueing.Disk, Servers: 1, Visits: 2, ServiceTime: 0.02},
			{Name: "lan", Kind: queueing.Delay, Servers: 1, Visits: 1, ServiceTime: 0.01},
		},
	}
	lambda := 10.0
	res, err := OpenNetwork(m, lambda)
	if err != nil {
		t.Fatal(err)
	}
	// Station a: ρ=0.5 → W=0.1. Station b: λ_b=20, ρ=0.4 → per-visit
	// 0.02/0.6=0.0333, ×2 visits = 0.0667. Delay: 0.01.
	want := 0.1 + 2*0.02/0.6 + 0.01
	if !numeric.AlmostEqual(res.ResponseTime, want, 1e-9) {
		t.Errorf("R = %g, want %g", res.ResponseTime, want)
	}
	// Little at system level.
	if !numeric.AlmostEqual(res.Population, lambda*want, 1e-9) {
		t.Errorf("N = %g, want %g", res.Population, lambda*want)
	}
}

func TestOpenNetworkInstability(t *testing.T) {
	m := &queueing.Model{
		Name: "sat",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.1},
		},
	}
	res, err := OpenNetwork(m, 11) // ρ = 1.1
	if err != nil {
		t.Fatal(err)
	}
	if res.Stable {
		t.Fatal("ρ=1.1 must be unstable")
	}
	if !math.IsInf(res.ResponseTime, 1) || !math.IsInf(res.Population, 1) {
		t.Errorf("unstable metrics should be +Inf: R=%g N=%g", res.ResponseTime, res.Population)
	}
	if got := SaturationRate(m); got != 10 {
		t.Errorf("saturation rate %g, want 10", got)
	}
}

func TestSaturationRateDelayOnly(t *testing.T) {
	m := &queueing.Model{
		Name: "delay-only",
		Stations: []queueing.Station{
			{Name: "lan", Kind: queueing.Delay, Servers: 1, Visits: 1, ServiceTime: 0.5},
		},
	}
	if !math.IsInf(SaturationRate(m), 1) {
		t.Error("delay-only network has infinite capacity")
	}
}

func TestOpenNetworkVarying(t *testing.T) {
	// Demands that fall with throughput: at high λ the varying network is
	// stable where the λ-0 demands would not be.
	m := &queueing.Model{
		Name: "open-vary",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.02},
		},
	}
	dm, err := NewThroughputDemands(interp.Linear,
		[]DemandSamples{{At: []float64{0, 100}, Demands: []float64{0.02, 0.008}}},
		interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At λ=60 the demand is 0.0128 → ρ=0.768, stable; with the λ=0 demand
	// 0.02 it would be ρ=1.2, unstable.
	fixed, err := OpenNetwork(m, 60)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Stable {
		t.Fatal("fixed-demand network at λ=60 should be unstable")
	}
	varying, err := OpenNetworkVarying(m, 60, dm)
	if err != nil {
		t.Fatal(err)
	}
	if !varying.Stable {
		t.Fatal("varying-demand network at λ=60 should be stable")
	}
	if !numeric.AlmostEqual(varying.Util[0], 60*0.0128, 1e-9) {
		t.Errorf("ρ = %g, want %g", varying.Util[0], 60*0.0128)
	}
}

func TestOpenNetworkErrors(t *testing.T) {
	m := &queueing.Model{
		Name: "err",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.1},
		},
	}
	if _, err := OpenNetwork(m, -1); !errors.Is(err, ErrBadRun) {
		t.Errorf("negative lambda: %v", err)
	}
	if _, err := OpenNetwork(&queueing.Model{}, 1); err == nil {
		t.Error("invalid model should error")
	}
	if _, err := OpenNetworkVarying(m, 1, nil); !errors.Is(err, ErrBadRun) {
		t.Errorf("nil demand model: %v", err)
	}
	if _, err := OpenNetworkVarying(m, 1, ConstantDemands{1, 2}); !errors.Is(err, ErrBadRun) {
		t.Errorf("mismatched demand model: %v", err)
	}
}
