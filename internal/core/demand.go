package core

import (
	"errors"
	"fmt"

	"repro/internal/interp"
)

// DemandModel supplies per-station service demands to MVASD at each
// population step. Implementations may depend on the concurrency n (the
// paper's primary mode, Section 6), on the current throughput estimate x
// (the Section-7 variant), or on neither (constant demands).
type DemandModel interface {
	// DemandAt returns D_k for station k at population n with current
	// throughput estimate x (transactions/second).
	DemandAt(station, n int, x float64) float64
	// DependsOnThroughput reports whether demands vary with x, in which
	// case the solver must run a per-step fixed-point iteration.
	DependsOnThroughput() bool
	// Stations returns the number of stations covered.
	Stations() int
}

// ErrDemandModel is wrapped by demand-model constructors for invalid input.
var ErrDemandModel = errors.New("core: invalid demand model")

// ConstantDemands is the trivial DemandModel with fixed per-station demands
// (what Algorithm 2 uses implicitly).
type ConstantDemands []float64

// DemandAt returns the fixed demand for the station.
func (c ConstantDemands) DemandAt(station, _ int, _ float64) float64 { return c[station] }

// DependsOnThroughput is always false for constants.
func (ConstantDemands) DependsOnThroughput() bool { return false }

// Stations returns the station count.
func (c ConstantDemands) Stations() int { return len(c) }

// DemandSamples is one station's measured service demands: Demands[i] was
// measured at concurrency (or throughput) At[i]. This is the paper's
// {S_k^{i_1}, …, S_k^{i_M}} input array.
type DemandSamples struct {
	// At are the abscissae the demands were measured at (concurrency
	// levels for the Section-6 mode, throughputs for the Section-7 mode).
	At []float64
	// Demands are the corresponding measured service demands in seconds.
	Demands []float64
}

// CurveDemands interpolates per-station demand samples against concurrency:
// the paper's SS_k^n = h(a_k, b_k, n) with h a spline interpolator pegged at
// the boundaries (eq. 14).
type CurveDemands struct {
	curves []*interp.Curve
}

// NewCurveDemands fits one interpolation curve per station. Method selects
// the interpolation scheme (the paper uses cubic splines; CubicNotAKnot
// matches Scilab's interp()).
func NewCurveDemands(method interp.Method, samples []DemandSamples, opts interp.Options) (*CurveDemands, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: no stations", ErrDemandModel)
	}
	cd := &CurveDemands{curves: make([]*interp.Curve, len(samples))}
	for k, s := range samples {
		if len(s.At) != len(s.Demands) || len(s.At) == 0 {
			return nil, fmt.Errorf("%w: station %d has %d abscissae and %d demands",
				ErrDemandModel, k, len(s.At), len(s.Demands))
		}
		c, err := interp.NewCurve(method, s.At, s.Demands, opts)
		if err != nil {
			return nil, fmt.Errorf("core: station %d: %w", k, err)
		}
		cd.curves[k] = c
	}
	return cd, nil
}

// DemandAt evaluates station k's curve at concurrency n.
func (c *CurveDemands) DemandAt(station, n int, _ float64) float64 {
	return c.curves[station].Eval(float64(n))
}

// DependsOnThroughput is false: this is the concurrency-indexed mode.
func (*CurveDemands) DependsOnThroughput() bool { return false }

// Stations returns the station count.
func (c *CurveDemands) Stations() int { return len(c.curves) }

// Curve exposes station k's fitted curve (for plotting, e.g. Fig. 10).
func (c *CurveDemands) Curve(station int) *interp.Curve { return c.curves[station] }

// ThroughputDemands interpolates per-station demand samples against system
// throughput — the Section-7 variant ("service demand vs. throughput rather
// than against concurrency"). Because MVA computes X from the demands, each
// population step becomes a fixed point that MVASD solves iteratively.
type ThroughputDemands struct {
	curves []*interp.Curve
}

// NewThroughputDemands fits one demand-vs-throughput curve per station.
func NewThroughputDemands(method interp.Method, samples []DemandSamples, opts interp.Options) (*ThroughputDemands, error) {
	cd, err := NewCurveDemands(method, samples, opts)
	if err != nil {
		return nil, err
	}
	return &ThroughputDemands{curves: cd.curves}, nil
}

// DemandAt evaluates station k's curve at throughput x.
func (c *ThroughputDemands) DemandAt(station, _ int, x float64) float64 {
	return c.curves[station].Eval(x)
}

// DependsOnThroughput is true: the solver must iterate each step.
func (*ThroughputDemands) DependsOnThroughput() bool { return true }

// Stations returns the station count.
func (c *ThroughputDemands) Stations() int { return len(c.curves) }

// Curve exposes station k's fitted curve (for plotting, e.g. Fig. 11).
func (c *ThroughputDemands) Curve(station int) *interp.Curve { return c.curves[station] }

// FuncDemands adapts an arbitrary function of (station, n) to a DemandModel;
// handy in tests and for analytically specified demand laws.
type FuncDemands struct {
	K int
	F func(station, n int) float64
}

// DemandAt evaluates the wrapped function.
func (f FuncDemands) DemandAt(station, n int, _ float64) float64 { return f.F(station, n) }

// DependsOnThroughput is false for concurrency-indexed functions.
func (FuncDemands) DependsOnThroughput() bool { return false }

// Stations returns the declared station count.
func (f FuncDemands) Stations() int { return f.K }
