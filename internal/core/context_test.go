package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/queueing"
)

func ctxTestModel() *queueing.Model {
	return &queueing.Model{
		Name:      "ctx-test",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "app/cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.02},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 1, Visits: 3, ServiceTime: 0.005},
		},
	}
}

func TestWithContextMatchesPlainSolve(t *testing.T) {
	m := ctxTestModel()
	want, _, err := ExactMVAMultiServer(m, 100, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ExactMVAMultiServerWithContext(context.Background(), m, 100, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.X {
		if want.X[i] != got.X[i] || want.R[i] != got.R[i] {
			t.Fatalf("n=%d: context variant diverged: X %g vs %g, R %g vs %g",
				i+1, want.X[i], got.X[i], want.R[i], got.R[i])
		}
	}
}

func TestAlreadyCancelledContext(t *testing.T) {
	m := ctxTestModel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dm := ConstantDemands(m.Demands())
	cases := map[string]func() error{
		"exact": func() error { _, err := ExactMVAWithContext(ctx, m, 50); return err },
		"schweitzer": func() error {
			_, err := SchweitzerWithContext(ctx, m, 50, SchweitzerOptions{})
			return err
		},
		"multiserver": func() error {
			_, _, err := ExactMVAMultiServerWithContext(ctx, m, 50, MultiServerOptions{TraceStation: -1})
			return err
		},
		"mvasd": func() error { _, err := MVASDWithContext(ctx, m, 50, dm, MVASDOptions{}); return err },
		"mvasd-1s": func() error {
			_, err := MVASDSingleServerWithContext(ctx, m, 50, dm, MVASDOptions{})
			return err
		},
	}
	for name, solve := range cases {
		if err := solve(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", name, err)
		}
	}
}

// TestCancelMidRecursion cancels from inside the demand model at a known
// population, proving the per-step check fires mid-recursion rather than only
// at entry.
func TestCancelMidRecursion(t *testing.T) {
	m := ctxTestModel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := m.Demands()
	dm := FuncDemands{K: len(base), F: func(station, n int) float64 {
		if n == 100 {
			cancel()
		}
		return base[station]
	}}
	_, err := MVASDWithContext(ctx, m, 10_000, dm, MVASDOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCancelMidFixedPoint cancels during the demand/throughput fixed point of
// a single population step (Section-7 mode): the per-iteration check must
// abort without waiting for convergence or the next population.
func TestCancelMidFixedPoint(t *testing.T) {
	m := ctxTestModel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := m.Demands()
	iter := 0
	// Alternate the demands every fixed-point iteration so it can never
	// converge; only the per-iteration cancellation check can end the solve
	// (maxN is 1, so the per-step check runs exactly once, before cancel).
	dm := throughputFunc{k: len(base), f: func(station, n int, x float64) float64 {
		if station == 0 {
			iter++
		}
		if iter > 25 {
			cancel()
		}
		return base[station] * (1 + 0.5*float64(iter%2))
	}}
	_, err := MVASDWithContext(ctx, m, 1, dm, MVASDOptions{FixedPointMaxIter: 1_000_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// throughputFunc is a throughput-dependent FuncDemands analogue for tests.
type throughputFunc struct {
	k int
	f func(station, n int, x float64) float64
}

func (t throughputFunc) DemandAt(station, n int, x float64) float64 { return t.f(station, n, x) }
func (throughputFunc) DependsOnThroughput() bool                    { return true }
func (t throughputFunc) Stations() int                              { return t.k }
