package core

import (
	"context"
	"fmt"

	"repro/internal/queueing"
)

// The *WithContext solver variants accept a context whose cancellation or
// deadline aborts the recursion between population steps (and, for MVASD's
// throughput mode, between fixed-point iterations). The plain entry points
// remain non-cancellable and allocate nothing extra; a solver service (see
// internal/server) threads per-request deadlines through these variants so a
// maxN in the tens of thousands cannot pin a worker forever.

// stepCancel returns a cheap per-step cancellation probe for ctx, or nil when
// the context can never be cancelled (context.Background() and friends), so
// the hot loops pay a single nil check in the common case.
func stepCancel(ctx context.Context) func(n int) error {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return func(n int) error {
		select {
		case <-done:
			return fmt.Errorf("core: solve cancelled at population %d: %w", n, context.Cause(ctx))
		default:
			return nil
		}
	}
}

// ExactMVAWithContext is ExactMVA with per-population-step cancellation.
func ExactMVAWithContext(ctx context.Context, m *queueing.Model, maxN int) (*Result, error) {
	return exactMVA(ctx, m, maxN)
}

// SchweitzerWithContext is Schweitzer with per-population-step cancellation
// (each population's fixed point is checked once per population, which bounds
// the overrun to one population's MaxIter iterations).
func SchweitzerWithContext(ctx context.Context, m *queueing.Model, maxN int, opts SchweitzerOptions) (*Result, error) {
	return schweitzer(ctx, m, maxN, opts)
}

// ExactMVAMultiServerWithContext is ExactMVAMultiServer with
// per-population-step cancellation.
func ExactMVAMultiServerWithContext(ctx context.Context, m *queueing.Model, maxN int, opts MultiServerOptions) (*Result, *MarginalTrace, error) {
	return exactMVAMultiServer(ctx, m, maxN, opts)
}

// MVASDWithContext is MVASD with cancellation checked at every population
// step and, in the demand-vs-throughput mode, at every fixed-point iteration,
// so even a slowly converging step aborts promptly.
func MVASDWithContext(ctx context.Context, m *queueing.Model, maxN int, dm DemandModel, opts MVASDOptions) (*Result, error) {
	return mvasd(ctx, m, maxN, dm, opts)
}

// MVASDSingleServerWithContext is MVASDSingleServer with per-population-step
// cancellation.
func MVASDSingleServerWithContext(ctx context.Context, m *queueing.Model, maxN int, dm DemandModel, opts MVASDOptions) (*Result, error) {
	return mvasdSingleServer(ctx, m, maxN, dm, opts)
}
