package core

import (
	"math"
	"testing"

	"repro/internal/queueing"
)

func TestSeidmannTransformStructure(t *testing.T) {
	m := &queueing.Model{
		Name:      "seid",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.04},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.01},
			{Name: "lan", Kind: queueing.Delay, Servers: 1, Visits: 1, ServiceTime: 0.005},
		},
	}
	tr := SeidmannTransform(m)
	if len(tr.Stations) != 4 {
		t.Fatalf("%d stations, want 4 (cpu split in two)", len(tr.Stations))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The CPU splits into a 0.01 s single server and a 0.03 s delay.
	if tr.Stations[0].Servers != 1 || math.Abs(tr.Stations[0].ServiceTime-0.01) > 1e-15 {
		t.Errorf("queue stage: %+v", tr.Stations[0])
	}
	if tr.Stations[1].Kind != queueing.Delay || math.Abs(tr.Stations[1].ServiceTime-0.03) > 1e-15 {
		t.Errorf("transit stage: %+v", tr.Stations[1])
	}
	// Total demand preserved.
	if math.Abs(tr.TotalDemand()-m.TotalDemand()) > 1e-15 {
		t.Errorf("demand changed: %g vs %g", tr.TotalDemand(), m.TotalDemand())
	}
	// Originals untouched.
	if m.Stations[0].Servers != 4 {
		t.Error("transform mutated input")
	}
}

func TestSeidmannMVAAccuracy(t *testing.T) {
	// Seidmann's approximation must be exact at n=1 (R = D) and track the
	// exact load-dependent solution within a few percent overall — much
	// better than naive folding.
	m := &queueing.Model{
		Name:      "seid-acc",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 8, Visits: 1, ServiceTime: 0.08},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.004},
		},
	}
	maxN := 300
	seid, err := SeidmannMVA(m, maxN)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seid.R[0]-m.TotalDemand()) > 1e-12 {
		t.Fatalf("R(1) = %g, want total demand %g", seid.R[0], m.TotalDemand())
	}
	exact, err := LoadDependentMVA(m, maxN, nil)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := ExactMVA(NormalizeServers(m), maxN)
	if err != nil {
		t.Fatal(err)
	}
	var seidWorst, foldedWorst float64
	for i := range exact.X {
		seidWorst = math.Max(seidWorst, math.Abs(seid.X[i]-exact.X[i])/exact.X[i])
		foldedWorst = math.Max(foldedWorst, math.Abs(folded.X[i]-exact.X[i])/exact.X[i])
	}
	if seidWorst > 0.10 {
		t.Errorf("Seidmann worst deviation %.1f%%", seidWorst*100)
	}
	if seidWorst >= foldedWorst {
		t.Errorf("Seidmann (%.2f%%) should beat naive folding (%.2f%%)",
			seidWorst*100, foldedWorst*100)
	}
	if err := seid.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSchweitzerMultiServerAccuracy(t *testing.T) {
	m := &queueing.Model{
		Name:      "amva-ms",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 8, Visits: 1, ServiceTime: 0.06},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.005},
		},
	}
	maxN := 300
	amva, err := SchweitzerMultiServer(m, maxN, SchweitzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := amva.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	exactMS, _, err := ExactMVAMultiServer(m, maxN, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The approximate fixed point should stay close to the exact recursion
	// it approximates.
	worst := 0.0
	for i := range amva.X {
		worst = math.Max(worst, math.Abs(amva.X[i]-exactMS.X[i])/exactMS.X[i])
	}
	if worst > 0.08 {
		t.Errorf("AMVA-multiserver deviates %.1f%% from Algorithm 2", worst*100)
	}
	// And respect the capacity bound.
	dmax, _ := m.MaxDemand()
	for i := range amva.X {
		if amva.X[i] > (1/dmax)*(1+1e-6) {
			t.Fatalf("n=%d: X=%g above bound", amva.N[i], amva.X[i])
		}
	}
}

func TestSchweitzerMultiServerSingleServerReduction(t *testing.T) {
	// With all C=1 it reduces to plain Schweitzer.
	m := &queueing.Model{
		Name:      "amva-1s",
		ThinkTime: 0.5,
		Stations: []queueing.Station{
			{Name: "a", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
			{Name: "b", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.007},
		},
	}
	ms, err := SchweitzerMultiServer(m, 100, SchweitzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Schweitzer(m, 100, SchweitzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms.X {
		if math.Abs(ms.X[i]-plain.X[i]) > 1e-6*plain.X[i] {
			t.Fatalf("n=%d: %g vs %g", ms.N[i], ms.X[i], plain.X[i])
		}
	}
}
