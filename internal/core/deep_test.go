package core

import (
	"errors"
	"runtime"
	"testing"
)

// rowEqualsRecovered fails unless stored row i of dense equals rec bit for
// bit.
func rowEqualsRecovered(t *testing.T, dense *Result, rec RecoveredRow) {
	t.Helper()
	i := dense.IndexOf(rec.N)
	if i < 0 {
		t.Fatalf("population %d not in dense trajectory", rec.N)
	}
	if dense.X[i] != rec.X || dense.R[i] != rec.R || dense.Cycle[i] != rec.Cycle {
		t.Fatalf("n=%d scalars differ: X %v/%v R %v/%v Cycle %v/%v",
			rec.N, dense.X[i], rec.X, dense.R[i], rec.R, dense.Cycle[i], rec.Cycle)
	}
	for k := range dense.StationNames {
		if dense.QueueLen[i][k] != rec.QueueLen[k] || dense.Util[i][k] != rec.Util[k] ||
			dense.Residence[i][k] != rec.Residence[k] || dense.Demands[i][k] != rec.Demands[k] {
			t.Fatalf("n=%d station %d metrics differ", rec.N, k)
		}
	}
}

// TestDecimatedBitIdenticalToDense is the decimation property test: a
// decimated solve's stored rows (and their checkpoints) must be
// float-for-float identical to the dense solve, for every algorithm.
func TestDecimatedBitIdenticalToDense(t *testing.T) {
	m := solverTestModel()
	const maxN, stride = 137, 10
	for name, alg := range solverAlgorithms(t, m) {
		t.Run(name, func(t *testing.T) {
			dense := alg.cold(maxN)
			s := alg.fresh()
			defer s.Release()
			if err := s.Decimate(stride); err != nil {
				t.Fatal(err)
			}
			if err := s.Run(maxN); err != nil {
				t.Fatal(err)
			}
			dec := s.Result()
			if dec.SolvedN() != maxN || s.N() != maxN {
				t.Fatalf("SolvedN=%d N()=%d, want %d", dec.SolvedN(), s.N(), maxN)
			}
			wantRows := maxN/stride + 1 // 10,20,...,130 plus the final 137
			if dec.Len() != wantRows {
				t.Fatalf("stored %d rows, want %d", dec.Len(), wantRows)
			}
			if len(dec.Checkpoints) != dec.Len() {
				t.Fatalf("%d checkpoints for %d rows", len(dec.Checkpoints), dec.Len())
			}
			for i, n := range dec.N {
				if n%stride != 0 && n != maxN {
					t.Fatalf("stored population %d is neither stride-aligned nor final", n)
				}
				if dec.Checkpoints[i].N != n {
					t.Fatalf("checkpoint %d at population %d, row holds %d", i, dec.Checkpoints[i].N, n)
				}
				j := dense.IndexOf(n)
				if j != n-1 {
					t.Fatalf("dense IndexOf(%d) = %d", n, j)
				}
				if dec.X[i] != dense.X[j] || dec.R[i] != dense.R[j] || dec.Cycle[i] != dense.Cycle[j] {
					t.Fatalf("n=%d: decimated row differs from dense", n)
				}
				for k := range m.Stations {
					if dec.QueueLen[i][k] != dense.QueueLen[j][k] || dec.Util[i][k] != dense.Util[j][k] ||
						dec.Residence[i][k] != dense.Residence[j][k] || dec.Demands[i][k] != dense.Demands[j][k] {
						t.Fatalf("n=%d station %d: decimated metrics differ from dense", n, k)
					}
				}
			}
			// The final checkpoint must extend bit-identically to the dense
			// solve continuing past maxN.
			cp, err := s.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if cp.N != maxN {
				t.Fatalf("final checkpoint at %d, want %d", cp.N, maxN)
			}
			cont := alg.fresh()
			defer cont.Release()
			if err := cont.ResumeFrom(cp); err != nil {
				t.Fatal(err)
			}
			if err := cont.Run(maxN + 20); err != nil {
				t.Fatal(err)
			}
			denseLong := alg.cold(maxN + 20)
			chunk := cont.Result()
			if chunk.BasePop() != maxN || chunk.Len() != 20 {
				t.Fatalf("resumed chunk basePop=%d len=%d", chunk.BasePop(), chunk.Len())
			}
			for i, n := range chunk.N {
				if n != maxN+i+1 {
					t.Fatalf("chunk row %d holds population %d", i, n)
				}
				if chunk.X[i] != denseLong.X[n-1] {
					t.Fatalf("n=%d: resumed chunk X=%v, dense %v", n, chunk.X[i], denseLong.X[n-1])
				}
			}
		})
	}
}

// TestDecimatedRecoverSkippedRows re-derives every skipped population from
// the stored checkpoints and requires exact equality with the dense solve.
func TestDecimatedRecoverSkippedRows(t *testing.T) {
	m := solverTestModel()
	const maxN, stride = 97, 12
	for name, alg := range solverAlgorithms(t, m) {
		t.Run(name, func(t *testing.T) {
			dense := alg.cold(maxN)
			s := alg.fresh()
			defer s.Release()
			if err := s.Decimate(stride); err != nil {
				t.Fatal(err)
			}
			if err := s.Run(maxN); err != nil {
				t.Fatal(err)
			}
			ns := make([]int, maxN)
			for i := range ns {
				ns[i] = i + 1
			}
			freshErr := func() (*Solver, error) { return alg.fresh(), nil }
			rows, err := s.Result().Recover(ns, freshErr)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != maxN {
				t.Fatalf("recovered %d rows, want %d", len(rows), maxN)
			}
			for _, rec := range rows {
				rowEqualsRecovered(t, dense, rec)
			}
			// Out-of-range and unordered requests are rejected.
			if _, err := s.Result().Recover([]int{maxN + 1}, freshErr); !errors.Is(err, ErrBadRun) {
				t.Fatalf("recover beyond SolvedN: err=%v", err)
			}
			if _, err := s.Result().Recover([]int{5, 3}, freshErr); !errors.Is(err, ErrBadRun) {
				t.Fatalf("unordered recover: err=%v", err)
			}
		})
	}
}

// TestDecimatedExtend grows a decimated trajectory across several Run calls
// and checks stored rows stay sorted, stride-aligned-or-final, and
// bit-identical to dense.
func TestDecimatedExtend(t *testing.T) {
	m := solverTestModel()
	algs := solverAlgorithms(t, m)
	alg := algs["exact"]
	dense := alg.cold(200)
	s := alg.fresh()
	defer s.Release()
	if err := s.Decimate(25); err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{40, 110, 110, 200} {
		if err := s.Run(target); err != nil {
			t.Fatal(err)
		}
		if s.N() != target && target >= s.N() {
			t.Fatalf("after Run(%d): N()=%d", target, s.N())
		}
	}
	res := s.Result()
	want := []int{25, 40, 50, 75, 100, 110, 125, 150, 175, 200}
	if len(res.N) != len(want) {
		t.Fatalf("stored populations %v, want %v", res.N, want)
	}
	for i, n := range want {
		if res.N[i] != n {
			t.Fatalf("stored populations %v, want %v", res.N, want)
		}
		if res.X[i] != dense.X[n-1] {
			t.Fatalf("n=%d: X %v vs dense %v", n, res.X[i], dense.X[n-1])
		}
		if res.Checkpoints[i].N != n {
			t.Fatalf("checkpoint %d at %d, want %d", i, res.Checkpoints[i].N, n)
		}
	}
	// Population-aware lookups.
	if i := res.IndexOf(110); i < 0 || res.N[i] != 110 {
		t.Fatalf("IndexOf(110) = %d", i)
	}
	if i := res.IndexOf(111); i != -1 {
		t.Fatalf("IndexOf(111) = %d, want -1", i)
	}
	if _, _, _, err := res.At(150); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := res.At(151); err == nil {
		t.Fatal("At(151) on a decimated trajectory should fail")
	}
	// PrefixPop returns the stored rows ≤ n and reports SolvedN = n.
	view, err := res.PrefixPop(130)
	if err != nil {
		t.Fatal(err)
	}
	if view.SolvedN() != 130 || view.Len() != 7 || view.N[view.Len()-1] != 125 {
		t.Fatalf("PrefixPop(130): SolvedN=%d len=%d last=%d", view.SolvedN(), view.Len(), view.N[view.Len()-1])
	}
	if len(view.Checkpoints) != view.Len() {
		t.Fatalf("view carries %d checkpoints for %d rows", len(view.Checkpoints), view.Len())
	}
	if _, err := res.PrefixPop(201); err == nil {
		t.Fatal("PrefixPop beyond SolvedN should fail")
	}
	if _, err := res.Prefix(100); err == nil {
		t.Fatal("dense Prefix of a decimated trajectory should fail")
	}
}

// TestDeepSolveBoundedMemory is the deep-solve memory smoke: a decimated
// solve to population 10⁵ must retain memory proportional to the rows it
// stores (maxN/stride ≈ 1000), not the populations it advances through. The
// 4 MiB bound is ~50× the stored-row footprint and ~100× under what a dense
// 10⁵-row trajectory would retain, so it fails loudly if decimation ever
// starts accumulating per-population state.
func TestDeepSolveBoundedMemory(t *testing.T) {
	const maxN, stride = 100_000, 100
	m := solverTestModel()
	s, err := NewExactMVASolver(m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if err := s.Decimate(stride); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := s.Run(maxN); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	res := s.Result()
	if res.SolvedN() != maxN || res.Len() != maxN/stride {
		t.Fatalf("SolvedN=%d Len=%d, want %d/%d", res.SolvedN(), res.Len(), maxN, maxN/stride)
	}
	if retained := int64(after.HeapAlloc) - int64(before.HeapAlloc); retained > 4<<20 {
		t.Fatalf("deep solve retained %d bytes, bound is %d", retained, 4<<20)
	}
}

// TestDecimateGuards pins the misuse errors.
func TestDecimateGuards(t *testing.T) {
	m := solverTestModel()
	s, err := NewExactMVASolver(m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if err := s.Decimate(0); !errors.Is(err, ErrBadRun) {
		t.Fatalf("Decimate(0): %v", err)
	}
	if err := s.Decimate(1); err != nil {
		t.Fatalf("Decimate(1) should be a no-op: %v", err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := s.Decimate(4); !errors.Is(err, ErrBadRun) {
		t.Fatalf("Decimate after Run: %v", err)
	}
	tr, err := NewMultiServerSolver(m, MultiServerOptions{TraceStation: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	if err := tr.Decimate(4); !errors.Is(err, ErrBadRun) {
		t.Fatalf("Decimate of tracing solver: %v", err)
	}
	// ResumeFrom guards: algorithm mismatch and non-fresh solver.
	src, err := NewExactMVASolver(m)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Release()
	if err := src.Run(30); err != nil {
		t.Fatal(err)
	}
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := NewSchweitzerSolver(m, SchweitzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Release()
	if err := wrong.ResumeFrom(cp); !errors.Is(err, ErrBadRun) {
		t.Fatalf("ResumeFrom with wrong algorithm: %v", err)
	}
	if err := s.ResumeFrom(cp); !errors.Is(err, ErrBadRun) {
		t.Fatalf("ResumeFrom into a run solver: %v", err)
	}
}
