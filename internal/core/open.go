package core

import (
	"fmt"
	"math"

	"repro/internal/queueing"
)

// OpenResult is the steady-state solution of an open product-form network.
type OpenResult struct {
	// Lambda is the system arrival rate (transactions/second).
	Lambda float64
	// Stable reports whether every station satisfies ρ < 1; when false,
	// the per-station metrics of saturated stations are +Inf.
	Stable bool
	// StationNames labels the per-station slices.
	StationNames []string
	// Util[k] is station k's per-server utilization ρ_k.
	Util []float64
	// Residence[k] is V_k·W_k, the total time per transaction at station k
	// including queueing (seconds).
	Residence []float64
	// QueueLen[k] is the mean number of customers at station k.
	QueueLen []float64
	// ResponseTime is Σ_k V_k·W_k.
	ResponseTime float64
	// Population is the mean number in system, λ·R (Little's law).
	Population float64
}

// OpenNetwork solves the open (Jackson) network with Poisson arrivals of
// rate lambda: each station is treated as an independent M/M/C_k queue with
// arrival rate λ·V_k (Delay stations as M/G/∞). This is the analysis the
// paper's Section 7 gestures at for "open systems where throughput can be
// modified much easier rather than increasing the concurrency" — here λ is
// the control knob and the demand-vs-throughput curves plug in naturally
// via OpenNetworkVarying.
func OpenNetwork(m *queueing.Model, lambda float64) (*OpenResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("%w: arrival rate %g", ErrBadRun, lambda)
	}
	return openSolve(m, lambda, m.Demands()), nil
}

// openSolve evaluates the M/M/C formulas with the supplied demands.
func openSolve(m *queueing.Model, lambda float64, demands []float64) *OpenResult {
	k := len(m.Stations)
	res := &OpenResult{
		Lambda:       lambda,
		Stable:       true,
		StationNames: make([]string, k),
		Util:         make([]float64, k),
		Residence:    make([]float64, k),
		QueueLen:     make([]float64, k),
	}
	for i, st := range m.Stations {
		res.StationNames[i] = st.Name
		d := demands[i] // V·S: per-transaction demand
		if d == 0 {
			continue
		}
		if st.Kind == queueing.Delay {
			res.Residence[i] = d
			res.QueueLen[i] = lambda * d
			res.ResponseTime += d
			continue
		}
		c := float64(st.Servers)
		a := lambda * d // offered load in Erlangs (λ_k/µ_k with visits folded)
		rho := a / c
		res.Util[i] = rho
		if rho >= 1 {
			res.Stable = false
			res.Residence[i] = math.Inf(1)
			res.QueueLen[i] = math.Inf(1)
			res.ResponseTime = math.Inf(1)
			continue
		}
		// Per-visit service time and arrival rate at the station.
		s := st.ServiceTime
		lam := lambda * st.Visits
		pw := ErlangC(st.Servers, a)
		wq := 0.0
		if lam > 0 {
			wq = pw * s / (c * (1 - rho))
		}
		w := s + wq // per-visit sojourn
		res.Residence[i] = st.Visits * w
		res.QueueLen[i] = lam * w
		if !math.IsInf(res.ResponseTime, 1) {
			res.ResponseTime += res.Residence[i]
		}
	}
	if res.Stable {
		res.Population = lambda * res.ResponseTime
	} else {
		res.Population = math.Inf(1)
	}
	return res
}

// OpenNetworkVarying solves the open network with demands that depend on
// throughput (the Section-7 demand-vs-throughput curves): in an open system
// the steady-state throughput equals the arrival rate, so the demands are
// simply evaluated at λ — no fixed point needed, which is exactly why the
// paper calls this mode "more tractable … for open systems".
func OpenNetworkVarying(m *queueing.Model, lambda float64, dm DemandModel) (*OpenResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if dm == nil {
		return nil, fmt.Errorf("%w: nil demand model", ErrBadRun)
	}
	if dm.Stations() != len(m.Stations) {
		return nil, fmt.Errorf("%w: demand model covers %d stations, model has %d",
			ErrBadRun, dm.Stations(), len(m.Stations))
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("%w: arrival rate %g", ErrBadRun, lambda)
	}
	demands := make([]float64, len(m.Stations))
	for i := range demands {
		demands[i] = dm.DemandAt(i, 0, lambda)
	}
	// openSolve derives per-visit service times from the model's stations;
	// with varying demands, fold them as S = D/V.
	trial := *m
	trial.Stations = append([]queueing.Station(nil), m.Stations...)
	for i := range trial.Stations {
		v := trial.Stations[i].Visits
		if v > 0 {
			trial.Stations[i].ServiceTime = demands[i] / v
		}
	}
	return openSolve(&trial, lambda, demands), nil
}

// SaturationRate returns the largest stable arrival rate of the open
// network, min_k C_k/D_k over queueing stations (+Inf for pure delays).
func SaturationRate(m *queueing.Model) float64 {
	rate := math.Inf(1)
	for _, st := range m.Stations {
		if st.Kind == queueing.Delay || st.Demand() == 0 {
			continue
		}
		rate = math.Min(rate, float64(st.Servers)/st.Demand())
	}
	return rate
}

// ErlangB evaluates the Erlang-B blocking probability for c servers and
// offered load a Erlangs, via the numerically stable recurrence
// B(0)=1, B(k) = a·B(k−1)/(k + a·B(k−1)).
func ErlangB(c int, a float64) float64 {
	if c < 0 || a < 0 {
		panic(fmt.Sprintf("core.ErlangB: c=%d a=%g", c, a))
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// ErlangC evaluates the Erlang-C waiting probability (probability an
// arrival must queue) for c servers and offered load a Erlangs, derived
// from Erlang B: C = B / (1 − ρ(1 − B)) with ρ = a/c. Requires ρ < 1.
func ErlangC(c int, a float64) float64 {
	if c <= 0 {
		panic(fmt.Sprintf("core.ErlangC: c=%d", c))
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 1
	}
	b := ErlangB(c, a)
	return b / (1 - rho*(1-b))
}
