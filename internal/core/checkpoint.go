package core

import (
	"fmt"
)

// Checkpoint is the portable recursion state of a Solver at its current
// population: everything the next population step needs beyond the model and
// the trajectory itself. It is the unit of cluster-wide cache fill — a node
// that receives a trajectory plus its checkpoint can Restore a fresh solver
// and Extend it with results bit-identical to never having moved the
// computation at all.
//
// Which fields are populated depends on the algorithm:
//
//   - exact-mva, mvasd-single-server: Queue (the previous step's mean
//     queue-length vector);
//   - schweitzer-amva: Queue — the previous population's converged
//     queue-length vector, which warm-starts the next population's fixed
//     point (a checkpoint at N 0 restores to a cold balanced start);
//   - exact-mva-multiserver, mvasd, mvasd-vs-throughput: Queue plus the
//     per-station marginal queue-size probabilities in Marginal (row k has
//     one entry per server of station k; exact-mva-ld rows grow with the
//     population instead), and for the throughput-mode fixed point the
//     previous step's throughput in X (its warm start).
type Checkpoint struct {
	// Algorithm names the solver that produced the state (must match the
	// restoring solver).
	Algorithm string
	// N is the population the state belongs to: the next step solves N+1.
	N int
	// Queue is the per-station mean queue-length vector Q_k at N.
	Queue []float64
	// Marginal holds per-station marginal queue-size probabilities for the
	// multi-server algorithms; nil for single-server recursions.
	Marginal [][]float64
	// X is the throughput at N, carried for recursions that warm-start an
	// inner fixed point from it (mvasd-vs-throughput).
	X float64
}

// cloneVecs deep-copies a [][]float64 (nil stays nil).
func cloneVecs(src [][]float64) [][]float64 {
	if src == nil {
		return nil
	}
	out := make([][]float64, len(src))
	for i, row := range src {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// copyInto copies src into dst rows, requiring identical shapes.
func copyInto(dst, src [][]float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: checkpoint has %d marginal rows, solver expects %d",
			ErrBadRun, len(src), len(dst))
	}
	for i := range dst {
		if len(dst[i]) != len(src[i]) {
			return fmt.Errorf("%w: checkpoint marginal row %d has %d entries, solver expects %d",
				ErrBadRun, i, len(src[i]), len(dst[i]))
		}
		copy(dst[i], src[i])
	}
	return nil
}

// copyQueue copies a checkpoint queue vector into the stepper's, checking
// the station count.
func copyQueue(dst, src []float64) error {
	if len(src) != len(dst) {
		return fmt.Errorf("%w: checkpoint has %d queue entries, solver expects %d",
			ErrBadRun, len(src), len(dst))
	}
	copy(dst, src)
	return nil
}

// Checkpoint captures the solver's recursion state at its current population.
// The result is a deep copy: later Run/Extend calls do not mutate it. A
// checkpoint of a fresh solver (N() == 0) is valid and restores to a fresh
// solver.
func (s *Solver) Checkpoint() (*Checkpoint, error) {
	if s.released {
		return nil, fmt.Errorf("%w: checkpoint of a released solver", ErrBadRun)
	}
	cp := &Checkpoint{Algorithm: s.res.Algorithm, N: s.res.SolvedN()}
	s.alg.checkpoint(cp)
	return cp, nil
}

// Restore seeds a fresh solver (N() == 0) with a previously solved trajectory
// and its matching checkpoint, so a subsequent Extend continues the recursion
// exactly where the checkpointed solver left off. traj must be the full
// prefix at the checkpoint's population (Result().Prefix(N) of the source
// solver, possibly round-tripped through modelio's wire form); the restored
// trajectory and any later extension are bit-identical to the source solving
// on. On error the solver is left fresh and usable for a cold run.
func (s *Solver) Restore(traj *Result, cp *Checkpoint) error {
	if s.released {
		return fmt.Errorf("%w: restore into a released solver", ErrBadRun)
	}
	if s.res.Len() != 0 || s.res.basePop != 0 {
		return fmt.Errorf("%w: restore into a solver at population %d (want fresh)", ErrBadRun, s.res.SolvedN())
	}
	if s.res.stride > 1 {
		// A restore replays dense rows; a decimated solver seeds from a bare
		// checkpoint instead (ResumeFrom).
		return fmt.Errorf("%w: restore into a decimated solver", ErrBadRun)
	}
	if traj == nil || cp == nil {
		return fmt.Errorf("%w: restore needs a trajectory and a checkpoint", ErrBadRun)
	}
	if traj.Algorithm != s.res.Algorithm || cp.Algorithm != s.res.Algorithm {
		return fmt.Errorf("%w: restore algorithm mismatch: trajectory %q, checkpoint %q, solver %q",
			ErrBadRun, traj.Algorithm, cp.Algorithm, s.res.Algorithm)
	}
	if cp.N != traj.Len() {
		return fmt.Errorf("%w: checkpoint at population %d, trajectory has %d", ErrBadRun, cp.N, traj.Len())
	}
	if len(traj.StationNames) != s.res.k {
		return fmt.Errorf("%w: trajectory has %d stations, solver model has %d",
			ErrBadRun, len(traj.StationNames), s.res.k)
	}
	s.res.reserve(cp.N)
	for i := 0; i < cp.N; i++ {
		if traj.N[i] != i+1 {
			s.res.truncate(0)
			return fmt.Errorf("%w: trajectory row %d has population %d", ErrBadRun, i, traj.N[i])
		}
		s.res.appendRow()
		s.res.X[i] = traj.X[i]
		s.res.R[i] = traj.R[i]
		s.res.Cycle[i] = traj.Cycle[i]
		copy(s.res.QueueLen[i], traj.QueueLen[i])
		copy(s.res.Util[i], traj.Util[i])
		copy(s.res.Residence[i], traj.Residence[i])
		copy(s.res.Demands[i], traj.Demands[i])
	}
	if err := s.alg.restore(cp); err != nil {
		s.res.truncate(0)
		return err
	}
	return nil
}

// RestoreResult rebuilds a Result from externally transported rows (the
// inverse of reading a Result's public slices, used by modelio's wire form).
// All row slices must have length n; every [][]float64 row must have one
// entry per station. The returned Result owns fresh backing and can seed
// Solver.Restore.
func RestoreResult(algorithm, modelName string, thinkTime float64, stationNames []string,
	x, r, cycle []float64, queueLen, util, residence, demands [][]float64) (*Result, error) {
	n := len(x)
	if n < 1 {
		return nil, fmt.Errorf("%w: restored trajectory is empty", ErrBadRun)
	}
	k := len(stationNames)
	if k < 1 {
		return nil, fmt.Errorf("%w: restored trajectory names no stations", ErrBadRun)
	}
	if len(r) != n || len(cycle) != n ||
		len(queueLen) != n || len(util) != n || len(residence) != n || len(demands) != n {
		return nil, fmt.Errorf("%w: restored trajectory rows disagree on length", ErrBadRun)
	}
	res := &Result{
		Algorithm:    algorithm,
		ModelName:    modelName,
		ThinkTime:    thinkTime,
		StationNames: append([]string(nil), stationNames...),
		k:            k,
	}
	res.reserve(n)
	for i := 0; i < n; i++ {
		if len(queueLen[i]) != k || len(util[i]) != k || len(residence[i]) != k || len(demands[i]) != k {
			return nil, fmt.Errorf("%w: restored trajectory row %d is not %d stations wide", ErrBadRun, i, k)
		}
		res.appendRow()
		res.X[i] = x[i]
		res.R[i] = r[i]
		res.Cycle[i] = cycle[i]
		copy(res.QueueLen[i], queueLen[i])
		copy(res.Util[i], util[i])
		copy(res.Residence[i], residence[i])
		copy(res.Demands[i], demands[i])
	}
	return res, nil
}
