package core

import "sync"

// vecPool recycles the float64 scratch vectors that back solver recursion
// state (queue lengths, demand rows, marginal-probability rows). Solvers are
// created per request in the service; pooling keeps a steady-state workload
// from allocating fresh state on every solve. Vectors are boxed as *[]float64
// so Put does not allocate an interface header per call.
var vecPool sync.Pool

// getVec returns a zeroed scratch vector of length n, reusing pooled
// capacity when possible.
func getVec(n int) []float64 {
	if p, ok := vecPool.Get().(*[]float64); ok && cap(*p) >= n {
		v := (*p)[:n]
		clear(v)
		return v
	}
	return make([]float64, n)
}

// putVec returns a vector obtained from getVec to the pool. The caller must
// not use v afterwards.
func putVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	v = v[:0]
	vecPool.Put(&v)
}
