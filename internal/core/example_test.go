package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/queueing"
)

// ExampleMVASD shows the paper's headline algorithm on a two-station model
// with demands measured at three concurrencies.
func ExampleMVASD() {
	model := &queueing.Model{
		Name:      "shop",
		ThinkTime: 1.0,
		Stations: []queueing.Station{
			{Name: "app/cpu", Kind: queueing.CPU, Servers: 8, Visits: 1, ServiceTime: 0.032},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.012},
		},
	}
	samples := []core.DemandSamples{
		{At: []float64{1, 100, 300}, Demands: []float64{0.032, 0.026, 0.024}},
		{At: []float64{1, 100, 300}, Demands: []float64{0.012, 0.0095, 0.0090}},
	}
	demands, err := core.NewCurveDemands(interp.PCHIP, samples, interp.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := core.MVASD(model, 300, demands, core.MVASDOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	x, r, _, _ := res.At(200)
	fmt.Printf("at 200 users: X=%.1f tx/s, R=%.0f ms\n", x, r*1000)
	// Output:
	// at 200 users: X=109.6 tx/s, R=826 ms
}

// ExampleExactMVA solves the classic closed network of Algorithm 1.
func ExampleExactMVA() {
	model := &queueing.Model{
		Name:      "balanced",
		ThinkTime: 0,
		Stations: []queueing.Station{
			{Name: "a", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
			{Name: "b", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.01},
		},
	}
	res, err := core.ExactMVA(model, 10)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Two balanced stations: X(n) = n / (D·(n+1)).
	fmt.Printf("X(10) = %.2f tx/s\n", res.X[9])
	// Output:
	// X(10) = 90.91 tx/s
}

// ExampleOpenNetwork evaluates an M/M/2 queue via the open solver.
func ExampleOpenNetwork() {
	model := &queueing.Model{
		Name: "mm2",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 2, Visits: 1, ServiceTime: 0.1},
		},
	}
	res, err := core.OpenNetwork(model, 10) // offered load 1 Erlang, ρ = 0.5
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("stable=%v W=%.4fs L=%.3f\n", res.Stable, res.ResponseTime, res.Population)
	// Output:
	// stable=true W=0.1333s L=1.333
}

// ExampleMulticlassMVA solves two customer classes sharing one station.
func ExampleMulticlassMVA() {
	model := &queueing.Model{
		Name: "shared",
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 1},
		},
	}
	res, err := core.MulticlassMVA(model, []core.ClassSpec{
		{Name: "light", Population: 3, ThinkTime: 1, Demands: []float64{0.01}},
		{Name: "heavy", Population: 3, ThinkTime: 1, Demands: []float64{0.10}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("light X=%.2f, heavy X=%.2f\n", res.X[0], res.X[1])
	// Output:
	// light X=2.96, heavy X=2.67
}
