package core

import (
	"fmt"

	"repro/internal/queueing"
)

// MulticlassMVASD extends the exact multi-class MVA with *varying service
// demands*, the combination the paper leaves as future work ("As the service
// demand evolves with concurrency finding a general representation of this
// with a few samples is a challenge and will be explored in future work").
//
// Demands are re-evaluated at every population vector from per-class demand
// models indexed by the *total* population |n| = Σ n_c — the natural
// multi-class analogue of MVASD's SS_k^n, since the caching/batching effects
// that bend the demand curves respond to the overall load on the servers,
// not to any single class:
//
//	R_{c,k}(n) = D_{c,k}(|n|) · (1 + Q_k(n − e_c))
//
// demandModels[c] supplies class c's per-station demands (DemandAt with the
// total population; throughput-dependent models are rejected — the fixed
// point is not well-defined inside the vector recursion). Stations must be
// single-server or Delay, as in MulticlassMVA; fold multi-core stations with
// SeidmannTransform or NormalizeServers first.
func MulticlassMVASD(m *queueing.Model, classes []ClassSpec, demandModels []DemandModel) (*MulticlassResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("%w: no classes", ErrBadRun)
	}
	if len(demandModels) != len(classes) {
		return nil, fmt.Errorf("%w: %d demand models for %d classes", ErrBadRun, len(demandModels), len(classes))
	}
	k := len(m.Stations)
	for _, st := range m.Stations {
		if st.Servers != 1 && st.Kind != queueing.Delay {
			return nil, fmt.Errorf("%w: multiclass MVASD requires single-server stations (station %q has %d)",
				ErrBadRun, st.Name, st.Servers)
		}
	}
	for c, spec := range classes {
		if spec.Population < 0 {
			return nil, fmt.Errorf("%w: class %q population %d", ErrBadRun, spec.Name, spec.Population)
		}
		if spec.ThinkTime < 0 {
			return nil, fmt.Errorf("%w: class %q negative think time", ErrBadRun, spec.Name)
		}
		dm := demandModels[c]
		if dm == nil {
			return nil, fmt.Errorf("%w: class %q has nil demand model", ErrBadRun, spec.Name)
		}
		if dm.DependsOnThroughput() {
			return nil, fmt.Errorf("%w: class %q demand model depends on throughput", ErrBadRun, spec.Name)
		}
		if dm.Stations() != k {
			return nil, fmt.Errorf("%w: class %q demand model covers %d stations, model has %d",
				ErrBadRun, spec.Name, dm.Stations(), k)
		}
	}
	nc := len(classes)
	dims := make([]int, nc)
	strides := make([]int, nc)
	total := 1
	for c := range classes {
		dims[c] = classes[c].Population + 1
		strides[c] = total
		total *= dims[c]
		if total > 50_000_000 {
			return nil, fmt.Errorf("%w: population-vector space too large (%d states)", ErrBadRun, total)
		}
	}
	queue := make([]float64, total*k)
	vec := make([]int, nc)
	rck := make([][]float64, nc)
	for c := range rck {
		rck[c] = make([]float64, k)
	}
	xc := make([]float64, nc)
	// Demand cache: demands depend only on (class, |n|), so evaluate each
	// total-population level once.
	maxTotal := 0
	for _, spec := range classes {
		maxTotal += spec.Population
	}
	demandAt := make([][][]float64, nc) // [class][|n|][station]
	for c := range demandAt {
		demandAt[c] = make([][]float64, maxTotal+1)
		for tot := 1; tot <= maxTotal; tot++ {
			row := make([]float64, k)
			for j := 0; j < k; j++ {
				row[j] = demandModels[c].DemandAt(j, tot, 0)
			}
			demandAt[c][tot] = row
		}
	}
	var last MulticlassResult
	makeResult := func(base int, pop int) {
		last = MulticlassResult{
			ClassNames: make([]string, nc),
			X:          make([]float64, nc),
			R:          make([]float64, nc),
			QueueLen:   make([]float64, k),
			Util:       make([]float64, k),
		}
		for c := range classes {
			last.ClassNames[c] = classes[c].Name
			last.X[c] = xc[c]
			if vec[c] > 0 {
				sum := 0.0
				for j := range m.Stations {
					sum += rck[c][j]
				}
				last.R[c] = sum
			}
		}
		for j := range m.Stations {
			last.QueueLen[j] = queue[base+j]
			u := 0.0
			for c := range classes {
				if vec[c] > 0 {
					u += xc[c] * demandAt[c][pop][j]
				}
			}
			if u > 1 {
				u = 1
			}
			last.Util[j] = u
		}
	}
	for idx := 1; idx < total; idx++ {
		rem := idx
		pop := 0
		for c := nc - 1; c >= 0; c-- {
			vec[c] = rem / strides[c]
			rem %= strides[c]
			pop += vec[c]
		}
		for c := range classes {
			xc[c] = 0
			if vec[c] == 0 {
				continue
			}
			prev := (idx - strides[c]) * k
			d := demandAt[c][pop]
			sum := 0.0
			for j, st := range m.Stations {
				if st.Kind == queueing.Delay {
					rck[c][j] = d[j]
				} else {
					rck[c][j] = d[j] * (1 + queue[prev+j])
				}
				sum += rck[c][j]
			}
			xc[c] = float64(vec[c]) / (classes[c].ThinkTime + sum)
		}
		base := idx * k
		for j := range m.Stations {
			q := 0.0
			for c := range classes {
				if vec[c] > 0 {
					q += xc[c] * rck[c][j]
				}
			}
			queue[base+j] = q
		}
		if idx == total-1 {
			makeResult(base, pop)
		}
	}
	if total == 1 {
		last = MulticlassResult{
			ClassNames: make([]string, nc),
			X:          make([]float64, nc),
			R:          make([]float64, nc),
			QueueLen:   make([]float64, k),
			Util:       make([]float64, k),
		}
		for c := range classes {
			last.ClassNames[c] = classes[c].Name
		}
	}
	return &last, nil
}
