package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/queueing"
)

// decayModel builds a 2-station model whose true demands decay with
// concurrency: D_k(n) = dInf + (d1−dInf)·exp(−(n−1)/tau).
func decayDemand(d1, dInf, tau float64) func(n int) float64 {
	return func(n int) float64 {
		return dInf + (d1-dInf)*math.Exp(-float64(n-1)/tau)
	}
}

func TestMVASDConstantDemandsMatchAlgorithm2(t *testing.T) {
	m := &queueing.Model{
		Name:      "const",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 16, Visits: 1, ServiceTime: 0.02},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.005},
		},
	}
	alg2, _, err := ExactMVAMultiServer(m, 500, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := MVASD(m, 500, ConstantDemands(m.Demands()), MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range alg2.X {
		if math.Abs(alg2.X[i]-sd.X[i]) > 1e-12*alg2.X[i] {
			t.Fatalf("n=%d: alg2 %g vs mvasd %g", alg2.N[i], alg2.X[i], sd.X[i])
		}
	}
}

func TestMVASDWithDecayingDemandsBeatsConstant(t *testing.T) {
	// True demands fall with n. MVASD fed the true curve predicts higher
	// max throughput than Algorithm 2 fed the n=1 demands, and the MVASD
	// curve respects the *final* (smaller) demand's bottleneck bound.
	m := &queueing.Model{
		Name:      "decay",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.02},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.008},
		},
	}
	cpu := decayDemand(0.02, 0.012, 60)
	disk := decayDemand(0.008, 0.005, 80)
	dm := FuncDemands{K: 2, F: func(k, n int) float64 {
		if k == 0 {
			return cpu(n)
		}
		return disk(n)
	}}
	sd, err := MVASD(m, 800, dm, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	const2, _, err := ExactMVAMultiServer(m, 800, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	xSD, _ := sd.MaxThroughput()
	xC, _ := const2.MaxThroughput()
	if xSD <= xC {
		t.Fatalf("MVASD max X %g should exceed constant-demand %g", xSD, xC)
	}
	// Bound from the asymptotic demands: disk is the bottleneck
	// (0.005 > 0.012/4), X ≤ 1/0.005 = 200.
	if xSD > 200*(1+1e-6) {
		t.Fatalf("MVASD X %g violates asymptotic bottleneck bound 200", xSD)
	}
	if xSD < 185 {
		t.Fatalf("MVASD X %g should approach 200", xSD)
	}
}

func TestMVASDUsesInterpolatedSamples(t *testing.T) {
	// Feed MVASD sparse samples of a known decay; its predictions must be
	// close to MVASD fed the exact function (spline error only).
	m := &queueing.Model{
		Name:      "sampled",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.01},
		},
	}
	truth := decayDemand(0.01, 0.006, 50)
	exactDM := FuncDemands{K: 1, F: func(_, n int) float64 { return truth(n) }}
	at := []float64{1, 20, 50, 100, 200, 400}
	d := make([]float64, len(at))
	for i, a := range at {
		d[i] = truth(int(a))
	}
	sampled, err := NewCurveDemands(interp.CubicNotAKnot,
		[]DemandSamples{{At: at, Demands: d}}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rExact, err := MVASD(m, 400, exactDM, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rSampled, err := MVASD(m, 400, sampled, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A classic cubic spline overshoots by up to ~4% on the sparse
	// exponential tail (the undulation the paper's Figs. 12/15 discuss), and
	// near the bottleneck X error tracks demand error one-for-one.
	for i := range rExact.X {
		rel := math.Abs(rExact.X[i]-rSampled.X[i]) / rExact.X[i]
		if rel > 0.05 {
			t.Fatalf("n=%d: spline-sampled MVASD off by %.2f%%", rExact.N[i], rel*100)
		}
	}
	// The monotone PCHIP interpolant cannot overshoot and must track the
	// truth much more tightly on monotone demand data.
	pchip, err := NewCurveDemands(interp.PCHIP,
		[]DemandSamples{{At: at, Demands: d}}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rPCHIP, err := MVASD(m, 400, pchip, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rExact.X {
		rel := math.Abs(rExact.X[i]-rPCHIP.X[i]) / rExact.X[i]
		if rel > 0.01 {
			t.Fatalf("n=%d: PCHIP-sampled MVASD off by %.2f%%", rExact.N[i], rel*100)
		}
	}
}

func TestMVASDConstantExtrapolationBeyondSamples(t *testing.T) {
	// Beyond the last sample the demand must peg (eq. 14), so the solution
	// beyond that point matches a constant-demand run started from the same
	// state. We verify the demands recorded in the result are pegged.
	m := &queueing.Model{
		Name:      "peg",
		ThinkTime: 0.5,
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
		},
	}
	cd, err := NewCurveDemands(interp.CubicNotAKnot,
		[]DemandSamples{{At: []float64{1, 50, 100}, Demands: []float64{0.01, 0.008, 0.007}}},
		interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MVASD(m, 300, cd, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 101; n <= 300; n++ {
		if got := res.Demands[n-1][0]; got != 0.007 {
			t.Fatalf("demand at n=%d is %g, want pegged 0.007", n, got)
		}
	}
}

func TestMVASDSingleServerUnderestimatesMultiCore(t *testing.T) {
	// CPU-bound model: the single-server normalisation must predict
	// different (the paper shows worse) values than the multi-server model;
	// at low N the single-server variant underestimates response time
	// (D/C instead of D when no queueing) hence overestimates X.
	m := &queueing.Model{
		Name:      "cpuheavy",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 16, Visits: 1, ServiceTime: 0.08},
		},
	}
	dm := ConstantDemands{0.08}
	multi, err := MVASD(m, 300, dm, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := MVASDSingleServer(m, 300, dm, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// n=1: multi gives R=0.08, single gives R=0.005.
	if math.Abs(multi.R[0]-0.08) > 1e-12 {
		t.Fatalf("multi R(1) = %g, want 0.08", multi.R[0])
	}
	if math.Abs(single.R[0]-0.005) > 1e-12 {
		t.Fatalf("single R(1) = %g, want 0.005", single.R[0])
	}
	if single.X[0] <= multi.X[0] {
		t.Fatal("single-server normalisation should overestimate X at n=1")
	}
	// Both saturate at the same bound C/D = 200.
	if math.Abs(multi.X[299]-single.X[299]) > 5 {
		t.Fatalf("saturation mismatch: multi %g vs single %g", multi.X[299], single.X[299])
	}
}

func TestMVASDThroughputModeFlatCurveMatchesConstant(t *testing.T) {
	// A demand-vs-throughput model with a flat curve is equivalent to
	// constant demands; the fixed point must converge to the same result.
	m := &queueing.Model{
		Name:      "flat-x",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "q", Kind: queueing.CPU, Servers: 2, Visits: 1, ServiceTime: 0.01},
		},
	}
	td, err := NewThroughputDemands(interp.Linear,
		[]DemandSamples{{At: []float64{0, 1000}, Demands: []float64{0.01, 0.01}}},
		interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaX, err := MVASD(m, 200, td, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaC, err := MVASD(m, 200, ConstantDemands{0.01}, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaX.X {
		if math.Abs(viaX.X[i]-viaC.X[i]) > 1e-6*viaC.X[i] {
			t.Fatalf("n=%d: via-X %g vs constant %g", viaX.N[i], viaX.X[i], viaC.X[i])
		}
	}
	if viaX.Algorithm != "mvasd-vs-throughput" {
		t.Errorf("algorithm label %q", viaX.Algorithm)
	}
}

func TestMVASDThroughputModeDecayingCurve(t *testing.T) {
	// Demands that fall with throughput (caching kicks in at high rates):
	// the fixed point must converge and respect Little's law everywhere.
	m := &queueing.Model{
		Name:      "x-decay",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.02},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.006},
		},
	}
	td, err := NewThroughputDemands(interp.CubicNotAKnot,
		[]DemandSamples{
			{At: []float64{1, 50, 100, 150}, Demands: []float64{0.020, 0.016, 0.013, 0.012}},
			{At: []float64{1, 50, 100, 150}, Demands: []float64{0.006, 0.0055, 0.0052, 0.0050}},
		}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MVASD(m, 400, td, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Saturation bound with the smallest demands: disk 0.005 → X ≤ 200.
	if last := res.X[len(res.X)-1]; last > 200*(1+1e-6) || last < 150 {
		t.Fatalf("throughput-mode saturation X = %g", last)
	}
}

func TestMVASDErrors(t *testing.T) {
	m := singleStation(0.01, 1, 1)
	if _, err := MVASD(m, 10, nil, MVASDOptions{}); !errors.Is(err, ErrBadRun) {
		t.Errorf("nil demand model: %v", err)
	}
	if _, err := MVASD(m, 10, ConstantDemands{0.01, 0.02}, MVASDOptions{}); !errors.Is(err, ErrBadRun) {
		t.Errorf("station mismatch: %v", err)
	}
	if _, err := MVASDSingleServer(m, 10, nil, MVASDOptions{}); !errors.Is(err, ErrBadRun) {
		t.Errorf("single-server nil demand model: %v", err)
	}
	if _, err := MVASDSingleServer(m, 10, ConstantDemands{1, 2}, MVASDOptions{}); !errors.Is(err, ErrBadRun) {
		t.Errorf("single-server mismatch: %v", err)
	}
	if _, err := MVASD(m, 0, ConstantDemands{0.01}, MVASDOptions{}); !errors.Is(err, ErrBadRun) {
		t.Errorf("N=0: %v", err)
	}
}

func TestDemandModelConstructors(t *testing.T) {
	if _, err := NewCurveDemands(interp.Linear, nil, interp.Options{}); !errors.Is(err, ErrDemandModel) {
		t.Errorf("empty samples: %v", err)
	}
	bad := []DemandSamples{{At: []float64{1, 2}, Demands: []float64{1}}}
	if _, err := NewCurveDemands(interp.Linear, bad, interp.Options{}); !errors.Is(err, ErrDemandModel) {
		t.Errorf("ragged samples: %v", err)
	}
	if _, err := NewThroughputDemands(interp.Linear, bad, interp.Options{}); !errors.Is(err, ErrDemandModel) {
		t.Errorf("throughput ragged: %v", err)
	}
	good := []DemandSamples{{At: []float64{1, 100}, Demands: []float64{0.01, 0.008}}}
	cd, err := NewCurveDemands(interp.Linear, good, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cd.Stations() != 1 || cd.DependsOnThroughput() {
		t.Error("CurveDemands metadata wrong")
	}
	if cd.Curve(0) == nil {
		t.Error("Curve accessor nil")
	}
	td, err := NewThroughputDemands(interp.Linear, good, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !td.DependsOnThroughput() || td.Stations() != 1 || td.Curve(0) == nil {
		t.Error("ThroughputDemands metadata wrong")
	}
	// Single-sample constant curve.
	one := []DemandSamples{{At: []float64{10}, Demands: []float64{0.02}}}
	c1, err := NewCurveDemands(interp.CubicNotAKnot, one, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c1.DemandAt(0, 999, 0); got != 0.02 {
		t.Errorf("constant curve demand = %g", got)
	}
}
