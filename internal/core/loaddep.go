package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/queueing"
)

// RateFunc is a load-dependent service-rate multiplier: alpha(j) is the
// speedup of a station when j customers are present (alpha(1) = 1 for a
// plain server; alpha(j) = min(j, C) for a C-server station). It must be
// positive for j >= 1.
type RateFunc func(j int) float64

// MultiServerRate returns the rate function of a C-server station.
func MultiServerRate(c int) RateFunc {
	return func(j int) float64 {
		if j < c {
			return float64(j)
		}
		return float64(c)
	}
}

// SingleServerRate is the constant-rate function of a plain queue.
func SingleServerRate() RateFunc { return func(int) float64 { return 1 } }

// loadDepStepper carries the full marginal queue-length distribution through
// the population recursion; the rows grow with n.
type loadDepStepper struct {
	m       *queueing.Model
	rates   []RateFunc
	demands []float64
	// p[k][j] = p_k(j | n−1); row k has length n after step n completes
	// (p[k][0] = 1 for the empty network).
	p [][]float64
}

func (s *loadDepStepper) step(res *Result, n, row int, _ func(int) error, _ *SolveHooks) error {
	m, demands, p := s.m, s.demands, s.p
	// Make room for index n in every marginal row. The newly exposed slot
	// may hold stale pool data, which is fine: the W sum reads only indices
	// < n, and the tail-down update writes p[i][n] before anything reads it.
	for k := range p {
		if cap(p[k]) <= n {
			grown := make([]float64, n+1, 2*(n+1))
			copy(grown, p[k])
			p[k] = grown
		} else {
			p[k] = p[k][:n+1]
		}
	}
	// Physical throughput cap at this population: no station can complete
	// faster than its current peak rate α(n)/D. Computing it per step (not
	// from the run's target population) keeps the recursion independent of
	// maxN, so an extended solve is bit-identical to a cold one; it is also
	// the tighter bound, since at most n customers can be present. The
	// numerically guarded recursion (see below) can otherwise drift slightly
	// above the bound near saturation.
	xCap := math.Inf(1)
	for i, st := range m.Stations {
		if st.Kind == queueing.Delay || demands[i] <= 0 {
			continue
		}
		xCap = minf(xCap, s.rates[i](n)/demands[i])
	}
	rTotal := 0.0
	resid := res.Residence[row]
	for i, st := range m.Stations {
		if st.Kind == queueing.Delay {
			resid[i] = demands[i]
			rTotal += resid[i]
			continue
		}
		w := 0.0
		for j := 1; j <= n; j++ {
			a := s.rates[i](j)
			if a <= 0 {
				return fmt.Errorf("%w: station %q rate alpha(%d)=%g", ErrBadRun, st.Name, j, a)
			}
			w += float64(j) / a * p[i][j-1]
		}
		resid[i] = demands[i] * w
		rTotal += resid[i]
	}
	x := float64(n) / (rTotal + m.ThinkTime)
	if x > xCap {
		// Clamp to the capacity bound and restore Little's law by
		// growing the response time, scaling residence times to match.
		x = xCap
		newR := float64(n)/x - m.ThinkTime
		if rTotal > 0 {
			scale := newR / rTotal
			for i := range resid {
				resid[i] *= scale
			}
		}
		rTotal = newR
	}
	for i, st := range m.Stations {
		if st.Kind == queueing.Delay {
			res.QueueLen[row][i] = x * demands[i]
			res.Util[row][i] = 0
			res.Demands[row][i] = demands[i]
			continue
		}
		// Update the marginal distribution from the tail down so the
		// j−1 terms still refer to population n−1.
		sum := 0.0
		for j := n; j >= 1; j-- {
			p[i][j] = x * demands[i] / s.rates[i](j) * p[i][j-1]
			sum += p[i][j]
		}
		// The textbook recursion computes p(0|n) = 1 − Σ_{j≥1} p(j|n),
		// which suffers catastrophic cancellation as the station
		// saturates (the well-known numerical instability of exact
		// MVA-LD). Guard it by renormalising the distribution whenever
		// the accumulated mass exceeds 1: this keeps p a valid
		// distribution and degrades gracefully instead of collapsing.
		if sum >= 1 {
			inv := 1 / sum
			for j := 1; j <= n; j++ {
				p[i][j] *= inv
			}
			p[i][0] = 0
		} else {
			p[i][0] = 1 - sum
		}
		res.QueueLen[row][i] = x * resid[i]
		res.Util[row][i] = minf(x*demands[i]/float64(st.Servers), 1)
		res.Demands[row][i] = demands[i]
	}
	res.X[row] = x
	res.R[row] = rTotal
	res.Cycle[row] = rTotal + m.ThinkTime
	return nil
}

func (s *loadDepStepper) release() {
	putVec(s.demands)
	s.demands = nil
	for k := range s.p {
		putVec(s.p[k])
		s.p[k] = nil
	}
}

func (s *loadDepStepper) checkpoint(cp *Checkpoint) {
	cp.Marginal = cloneVecs(s.p)
}

// restore overwrites the marginal rows wholesale: unlike the fixed-width
// multi-server state, the load-dependent rows grow with the population, so
// the checkpoint's row lengths are authoritative.
func (s *loadDepStepper) restore(cp *Checkpoint) error {
	if len(cp.Marginal) != len(s.p) {
		return fmt.Errorf("%w: checkpoint has %d marginal rows, solver expects %d",
			ErrBadRun, len(cp.Marginal), len(s.p))
	}
	for k, row := range cp.Marginal {
		putVec(s.p[k])
		s.p[k] = append(getVec(len(row))[:0], row...)
	}
	return nil
}

// NewLoadDependentSolver returns a resumable exact load-dependent MVA
// solver. rates may be nil or contain nil entries, which default to each
// station's MultiServerRate.
func NewLoadDependentSolver(m *queueing.Model, rates []RateFunc) (*Solver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	k := len(m.Stations)
	if rates == nil {
		rates = make([]RateFunc, k)
	}
	if len(rates) != k {
		return nil, fmt.Errorf("%w: %d rate functions for %d stations", ErrBadRun, len(rates), k)
	}
	resolved := make([]RateFunc, k)
	for i, st := range m.Stations {
		resolved[i] = rates[i]
		if resolved[i] == nil {
			resolved[i] = MultiServerRate(st.Servers)
		}
	}
	demands := getVec(k)
	copy(demands, m.Demands())
	alg := &loadDepStepper{m: m, rates: resolved, demands: demands, p: make([][]float64, k)}
	for i := range alg.p {
		alg.p[i] = getVec(1)
		alg.p[i][0] = 1
	}
	return newSolver("load-dependent-mva", newEmptyResult("load-dependent-mva", m, 0), alg), nil
}

// LoadDependentMVA solves the closed network with the textbook *exact*
// load-dependent MVA (Reiser & Lavenberg): the full marginal queue-length
// distribution p_k(j|n) is carried through the population recursion,
//
//	W_k(n)   = D_k · Σ_{j=1..n} (j/α_k(j)) · p_k(j−1 | n−1)
//	X(n)     = n / (Z + Σ_k W_k(n))
//	p_k(j|n) = (X(n)·D_k/α_k(j)) · p_k(j−1|n−1),  j = 1..n
//	p_k(0|n) = 1 − Σ_{j=1..n} p_k(j|n)
//
// With α_k = MultiServerRate(C_k) this is the exact solution of the
// multi-server network that the paper's Algorithm 2 approximates with a
// fixed-size probability vector; the experiments use it as the accuracy
// reference for that approximation. O(N²·K) time and O(N·K) space. rates
// may be nil, in which case each station's rate function is derived from
// its server count. Delay stations are treated as infinite servers.
func LoadDependentMVA(m *queueing.Model, maxN int, rates []RateFunc) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	s, err := NewLoadDependentSolver(m, rates)
	if err != nil {
		return nil, err
	}
	return runToCompletion(context.Background(), s, maxN)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
