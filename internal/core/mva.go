package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/queueing"
)

// ErrBadRun is returned for invalid solver invocations (N < 1, invalid
// model, missing demand model, non-convergence).
var ErrBadRun = errors.New("core: invalid solver run")

// stationConsts are the per-population invariants of a constant-demand
// model, hoisted out of the per-step hot loops: the demand vector, the
// delay-centre flags and the float server counts. Computing st.Demand()
// (a Visits·ServiceTime multiply behind a struct copy) inside the step made
// the model slice the hottest object in deep-solve profiles; these arrays
// are resolved once at solver construction.
type stationConsts struct {
	demands  []float64 // D_k = V_k·S_k
	delay    []bool    // Kind == Delay
	serversF []float64 // float64(C_k)
}

func newStationConsts(m *queueing.Model) stationConsts {
	k := len(m.Stations)
	c := stationConsts{demands: getVec(k), delay: make([]bool, k), serversF: getVec(k)}
	for i, st := range m.Stations {
		c.demands[i] = st.Demand()
		c.delay[i] = st.Kind == queueing.Delay
		c.serversF[i] = float64(st.Servers)
	}
	return c
}

func (c *stationConsts) release() {
	putVec(c.demands)
	putVec(c.serversF)
	c.demands, c.serversF, c.delay = nil, nil, nil
}

// validateRun performs the checks shared by every solver entry point.
func validateRun(m *queueing.Model, n int) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if n < 1 {
		return fmt.Errorf("%w: population %d", ErrBadRun, n)
	}
	return nil
}

// exactStepper is the per-population body of Algorithm 1. Its only recursion
// state is the previous step's queue-length vector; everything else is
// hoisted model invariants.
type exactStepper struct {
	c stationConsts
	z float64
	q []float64 // Q_k at the previous population
}

func (e *exactStepper) step(res *Result, n, row int, _ func(int) error, _ *SolveHooks) error {
	demands, delay, serversF, q := e.c.demands, e.c.delay, e.c.serversF, e.q
	resid := res.Residence[row]
	k := len(demands)
	if len(q) < k || len(delay) < k || len(serversF) < k || len(resid) < k {
		return fmt.Errorf("%w: exact stepper state shape mismatch", ErrBadRun)
	}
	rTotal := 0.0
	for i := 0; i < k; i++ {
		rv := demands[i]
		if !delay[i] {
			rv *= 1 + q[i]
		}
		resid[i] = rv
		rTotal += rv
	}
	x := float64(n) / (rTotal + e.z)
	qRow, uRow, dRow := res.QueueLen[row], res.Util[row], res.Demands[row]
	if len(qRow) < k || len(uRow) < k || len(dRow) < k {
		return fmt.Errorf("%w: result row shape mismatch", ErrBadRun)
	}
	for i := 0; i < k; i++ {
		qi := x * resid[i]
		q[i] = qi
		qRow[i] = qi
		u := 0.0
		if !delay[i] {
			u = x * demands[i] / serversF[i]
			if u > 1 {
				u = 1
			}
		}
		uRow[i] = u
		dRow[i] = demands[i]
	}
	res.X[row] = x
	res.R[row] = rTotal
	res.Cycle[row] = rTotal + e.z
	return nil
}

func (e *exactStepper) release() {
	e.c.release()
	putVec(e.q)
	e.q = nil
}

func (e *exactStepper) checkpoint(cp *Checkpoint) {
	cp.Queue = append([]float64(nil), e.q...)
}

func (e *exactStepper) restore(cp *Checkpoint) error {
	return copyQueue(e.q, cp.Queue)
}

// NewExactMVASolver returns a resumable Algorithm-1 solver for m.
func NewExactMVASolver(m *queueing.Model) (*Solver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return newSolver("exact-mva", newEmptyResult("exact-mva", m, 0),
		&exactStepper{c: newStationConsts(m), z: m.ThinkTime, q: getVec(len(m.Stations))}), nil
}

// ExactMVA solves the closed network with the exact single-server MVA
// (paper Algorithm 1): for each population step
//
//	R_k = S_k · (1 + Q_k)                         (eq. 8)
//	R   = Σ_k V_k · R_k
//	X   = n / (R + Z)                             (Little's law)
//	Q_k = X · V_k · R_k
//
// Multi-server stations are accepted but treated as single servers with the
// station's raw per-visit service time — exactly the mis-modelling the paper
// demonstrates. Use ExactMVAMultiServer (or demand normalisation, see
// NormalizeServers) for multi-core resources. Delay stations contribute
// their demand without queueing.
func ExactMVA(m *queueing.Model, maxN int) (*Result, error) {
	return exactMVA(context.Background(), m, maxN)
}

func exactMVA(ctx context.Context, m *queueing.Model, maxN int) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	s, err := NewExactMVASolver(m)
	if err != nil {
		return nil, err
	}
	return runToCompletion(ctx, s, maxN)
}

// NormalizeServers returns a copy of the model in which every multi-server
// station is replaced by a single-server station with service time S_k/C_k.
// This is the heuristic normalisation the paper calls out as error-prone
// ("dividing the service demand by the number of CPU cores"), retained as
// the MVASD:Single-Server baseline of Fig. 8.
func NormalizeServers(m *queueing.Model) *queueing.Model {
	out := &queueing.Model{Name: m.Name + " (normalized)", ThinkTime: m.ThinkTime}
	out.Stations = make([]queueing.Station, len(m.Stations))
	for i, st := range m.Stations {
		st.ServiceTime /= float64(st.Servers)
		st.Servers = 1
		out.Stations[i] = st
	}
	return out
}

// SchweitzerOptions tunes the approximate MVA iteration.
type SchweitzerOptions struct {
	// Tol is the relative queue-length convergence tolerance (default 1e-10).
	Tol float64
	// MaxIter caps the fixed-point iterations per population (default 10_000).
	MaxIter int
}

func (o *SchweitzerOptions) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10000
	}
}

// schweitzerStepper solves each population's fixed point warm-started from
// the previous population's converged queue lengths. The cold balanced
// guess Q_k = n/K is used only at the first population; after that the
// fixed point at n starts a small perturbation away from its solution,
// which collapses the iteration count from hundreds (the balanced guess is
// terrible near saturation, where the map contracts slowly) to a handful.
// The converged q vector is therefore real recursion state and is carried
// in checkpoints.
type schweitzerStepper struct {
	c      stationConsts
	z      float64
	opts   SchweitzerOptions
	q      []float64
	primed bool // q holds the previous population's fixed point
}

func (s *schweitzerStepper) step(res *Result, n, row int, _ func(int) error, hooks *SolveHooks) error {
	demands, delay, serversF, q := s.c.demands, s.c.delay, s.c.serversF, s.q
	k := len(demands)
	resid := res.Residence[row]
	if len(q) < k || len(delay) < k || len(serversF) < k || len(resid) < k {
		return fmt.Errorf("%w: schweitzer stepper state shape mismatch", ErrBadRun)
	}
	if !s.primed {
		// Cold start: the balanced initial guess Q_k = n/K.
		bal := float64(n) / float64(k)
		for i := range q {
			q[i] = bal
		}
		s.primed = true
	}
	ratio := float64(n-1) / float64(n)
	var x, rTotal, worst float64
	converged, iters := false, 0
	for iter := 0; iter < s.opts.MaxIter; iter++ {
		iters = iter + 1
		rTotal = 0
		for i := 0; i < k; i++ {
			rv := demands[i]
			if !delay[i] {
				rv *= 1 + ratio*q[i]
			}
			resid[i] = rv
			rTotal += rv
		}
		x = float64(n) / (rTotal + s.z)
		worst = 0.0
		for i := 0; i < k; i++ {
			nq := x * resid[i]
			d := math.Abs(nq - q[i])
			if ref := q[i]; ref > 1e-12 {
				d /= ref
			} else {
				d /= 1e-12
			}
			if d > worst {
				worst = d
			}
			q[i] = nq
		}
		if worst < s.opts.Tol {
			converged = true
			break
		}
	}
	hooks.fixedPoint(n, iters, worst, converged)
	if !converged {
		return fmt.Errorf("%w: schweitzer did not converge at n=%d", ErrBadRun, n)
	}
	qRow, uRow, dRow := res.QueueLen[row], res.Util[row], res.Demands[row]
	if len(qRow) < k || len(uRow) < k || len(dRow) < k {
		return fmt.Errorf("%w: result row shape mismatch", ErrBadRun)
	}
	for i := 0; i < k; i++ {
		qRow[i] = q[i]
		u := 0.0
		if !delay[i] {
			u = x * demands[i] / serversF[i]
			if u > 1 {
				u = 1
			}
		}
		uRow[i] = u
		dRow[i] = demands[i]
	}
	res.X[row] = x
	res.R[row] = rTotal
	res.Cycle[row] = rTotal + s.z
	return nil
}

func (s *schweitzerStepper) release() {
	s.c.release()
	putVec(s.q)
	s.q = nil
}

// The warm-started fixed point makes the previous population's converged
// queue lengths recursion state proper.
func (s *schweitzerStepper) checkpoint(cp *Checkpoint) {
	cp.Queue = append([]float64(nil), s.q...)
}

func (s *schweitzerStepper) restore(cp *Checkpoint) error {
	if cp.N == 0 {
		// A fresh solver's checkpoint restores to a cold balanced start.
		s.primed = false
		return nil
	}
	if err := copyQueue(s.q, cp.Queue); err != nil {
		return err
	}
	s.primed = true
	return nil
}

// NewSchweitzerSolver returns a resumable Bard–Schweitzer solver for m.
func NewSchweitzerSolver(m *queueing.Model, opts SchweitzerOptions) (*Solver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	return newSolver("schweitzer-amva", newEmptyResult("schweitzer-amva", m, 0),
		&schweitzerStepper{c: newStationConsts(m), z: m.ThinkTime, opts: opts, q: getVec(len(m.Stations))}), nil
}

// Schweitzer solves the network with the Bard–Schweitzer approximate MVA:
// the exact arrival theorem term Q_k(n−1) is approximated by
//
//	Q_k(n−1) ≈ (n−1)/n · Q_k(n)                  (paper eq. 9)
//
// yielding a fixed point solved at every population of the trajectory —
// cheaper than the exact recursion would suggest, at some accuracy cost.
// Each population's fixed point is warm-started from the previous
// population's converged queue lengths (population 1 starts from the
// balanced guess), so the per-population iteration count stays O(1) even
// near saturation, where a cold balanced start needs hundreds of
// iterations.
func Schweitzer(m *queueing.Model, maxN int, opts SchweitzerOptions) (*Result, error) {
	return schweitzer(context.Background(), m, maxN, opts)
}

func schweitzer(ctx context.Context, m *queueing.Model, maxN int, opts SchweitzerOptions) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	s, err := NewSchweitzerSolver(m, opts)
	if err != nil {
		return nil, err
	}
	return runToCompletion(ctx, s, maxN)
}
