package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/queueing"
)

// ErrBadRun is returned for invalid solver invocations (N < 1, invalid
// model, missing demand model, non-convergence).
var ErrBadRun = errors.New("core: invalid solver run")

// stationUtil is the per-server utilization reported in Results:
// min(X·D/C, 1) for queueing stations, and 0 for Delay centres, where
// per-server utilization is not meaningful (matching the monitor's
// convention).
func stationUtil(st queueing.Station, x float64) float64 {
	if st.Kind == queueing.Delay {
		return 0
	}
	u := x * st.Demand() / float64(st.Servers)
	if u > 1 {
		return 1
	}
	return u
}

// validateRun performs the checks shared by every solver entry point.
func validateRun(m *queueing.Model, n int) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if n < 1 {
		return fmt.Errorf("%w: population %d", ErrBadRun, n)
	}
	return nil
}

// exactStepper is the per-population body of Algorithm 1. Its only recursion
// state is the previous step's queue-length vector.
type exactStepper struct {
	m *queueing.Model
	q []float64 // Q_k at the previous population
}

func (e *exactStepper) step(res *Result, n int, _ func(int) error, _ *SolveHooks) error {
	m, q := e.m, e.q
	rTotal := 0.0
	resid := res.Residence[n-1]
	for i, st := range m.Stations {
		if st.Kind == queueing.Delay {
			resid[i] = st.Demand()
		} else {
			resid[i] = st.Demand() * (1 + q[i])
		}
		rTotal += resid[i]
	}
	x := float64(n) / (rTotal + m.ThinkTime)
	for i, st := range m.Stations {
		q[i] = x * resid[i]
		res.QueueLen[n-1][i] = q[i]
		res.Util[n-1][i] = stationUtil(st, x)
		res.Demands[n-1][i] = st.Demand()
	}
	res.X[n-1] = x
	res.R[n-1] = rTotal
	res.Cycle[n-1] = rTotal + m.ThinkTime
	return nil
}

func (e *exactStepper) release() {
	putVec(e.q)
	e.q = nil
}

func (e *exactStepper) checkpoint(cp *Checkpoint) {
	cp.Queue = append([]float64(nil), e.q...)
}

func (e *exactStepper) restore(cp *Checkpoint) error {
	return copyQueue(e.q, cp.Queue)
}

// NewExactMVASolver returns a resumable Algorithm-1 solver for m.
func NewExactMVASolver(m *queueing.Model) (*Solver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return newSolver("exact-mva", newEmptyResult("exact-mva", m, 0),
		&exactStepper{m: m, q: getVec(len(m.Stations))}), nil
}

// ExactMVA solves the closed network with the exact single-server MVA
// (paper Algorithm 1): for each population step
//
//	R_k = S_k · (1 + Q_k)                         (eq. 8)
//	R   = Σ_k V_k · R_k
//	X   = n / (R + Z)                             (Little's law)
//	Q_k = X · V_k · R_k
//
// Multi-server stations are accepted but treated as single servers with the
// station's raw per-visit service time — exactly the mis-modelling the paper
// demonstrates. Use ExactMVAMultiServer (or demand normalisation, see
// NormalizeServers) for multi-core resources. Delay stations contribute
// their demand without queueing.
func ExactMVA(m *queueing.Model, maxN int) (*Result, error) {
	return exactMVA(context.Background(), m, maxN)
}

func exactMVA(ctx context.Context, m *queueing.Model, maxN int) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	s, err := NewExactMVASolver(m)
	if err != nil {
		return nil, err
	}
	return runToCompletion(ctx, s, maxN)
}

// NormalizeServers returns a copy of the model in which every multi-server
// station is replaced by a single-server station with service time S_k/C_k.
// This is the heuristic normalisation the paper calls out as error-prone
// ("dividing the service demand by the number of CPU cores"), retained as
// the MVASD:Single-Server baseline of Fig. 8.
func NormalizeServers(m *queueing.Model) *queueing.Model {
	out := &queueing.Model{Name: m.Name + " (normalized)", ThinkTime: m.ThinkTime}
	out.Stations = make([]queueing.Station, len(m.Stations))
	for i, st := range m.Stations {
		st.ServiceTime /= float64(st.Servers)
		st.Servers = 1
		out.Stations[i] = st
	}
	return out
}

// SchweitzerOptions tunes the approximate MVA iteration.
type SchweitzerOptions struct {
	// Tol is the relative queue-length convergence tolerance (default 1e-10).
	Tol float64
	// MaxIter caps the fixed-point iterations per population (default 10_000).
	MaxIter int
}

func (o *SchweitzerOptions) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10000
	}
}

// schweitzerStepper solves each population's fixed point independently (the
// balanced initial guess makes every step self-contained, so the "recursion
// state" is just reusable scratch).
type schweitzerStepper struct {
	m    *queueing.Model
	opts SchweitzerOptions
	q    []float64
}

func (s *schweitzerStepper) step(res *Result, n int, _ func(int) error, hooks *SolveHooks) error {
	m, q := s.m, s.q
	k := len(m.Stations)
	// Start from the balanced initial guess Q_k = n/K.
	for i := range q {
		q[i] = float64(n) / float64(k)
	}
	var x, rTotal, worst float64
	converged, iters := false, 0
	for iter := 0; iter < s.opts.MaxIter; iter++ {
		iters = iter + 1
		rTotal = 0
		resid := res.Residence[n-1]
		for i, st := range m.Stations {
			if st.Kind == queueing.Delay {
				resid[i] = st.Demand()
			} else {
				arr := float64(n-1) / float64(n) * q[i]
				resid[i] = st.Demand() * (1 + arr)
			}
			rTotal += resid[i]
		}
		x = float64(n) / (rTotal + m.ThinkTime)
		worst = 0.0
		for i := range m.Stations {
			nq := x * resid[i]
			worst = math.Max(worst, math.Abs(nq-q[i])/math.Max(q[i], 1e-12))
			q[i] = nq
		}
		if worst < s.opts.Tol {
			converged = true
			break
		}
	}
	hooks.fixedPoint(n, iters, worst, converged)
	if !converged {
		return fmt.Errorf("%w: schweitzer did not converge at n=%d", ErrBadRun, n)
	}
	for i, st := range m.Stations {
		res.QueueLen[n-1][i] = q[i]
		res.Util[n-1][i] = stationUtil(st, x)
		res.Demands[n-1][i] = st.Demand()
	}
	res.X[n-1] = x
	res.R[n-1] = rTotal
	res.Cycle[n-1] = rTotal + m.ThinkTime
	return nil
}

func (s *schweitzerStepper) release() {
	putVec(s.q)
	s.q = nil
}

// Schweitzer steps are self-contained (the fixed point restarts from the
// balanced guess every population), so there is no state to carry.
func (s *schweitzerStepper) checkpoint(*Checkpoint) {}

func (s *schweitzerStepper) restore(*Checkpoint) error { return nil }

// NewSchweitzerSolver returns a resumable Bard–Schweitzer solver for m.
func NewSchweitzerSolver(m *queueing.Model, opts SchweitzerOptions) (*Solver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	return newSolver("schweitzer-amva", newEmptyResult("schweitzer-amva", m, 0),
		&schweitzerStepper{m: m, opts: opts, q: getVec(len(m.Stations))}), nil
}

// Schweitzer solves the network with the Bard–Schweitzer approximate MVA:
// the exact arrival theorem term Q_k(n−1) is approximated by
//
//	Q_k(n−1) ≈ (n−1)/n · Q_k(n)                  (paper eq. 9)
//
// yielding a fixed point solved directly at the target population — much
// cheaper than the exact recursion at high N, at some accuracy cost. Only
// the target population is solved exactly; intermediate rows of the Result
// are each solved independently so the trajectory remains meaningful.
func Schweitzer(m *queueing.Model, maxN int, opts SchweitzerOptions) (*Result, error) {
	return schweitzer(context.Background(), m, maxN, opts)
}

func schweitzer(ctx context.Context, m *queueing.Model, maxN int, opts SchweitzerOptions) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	s, err := NewSchweitzerSolver(m, opts)
	if err != nil {
		return nil, err
	}
	return runToCompletion(ctx, s, maxN)
}
