package core

import (
	"fmt"
)

// RecoveredRow is one re-derived population row of a decimated trajectory:
// the full per-population metrics a dense solve would have stored.
type RecoveredRow struct {
	N           int
	X, R, Cycle float64
	QueueLen    []float64
	Util        []float64
	Residence   []float64
	Demands     []float64
}

// rowCopy copies stored row i into a RecoveredRow with fresh backing.
func (r *Result) rowCopy(i int) RecoveredRow {
	return RecoveredRow{
		N:         r.N[i],
		X:         r.X[i],
		R:         r.R[i],
		Cycle:     r.Cycle[i],
		QueueLen:  append([]float64(nil), r.QueueLen[i]...),
		Util:      append([]float64(nil), r.Util[i]...),
		Residence: append([]float64(nil), r.Residence[i]...),
		Demands:   append([]float64(nil), r.Demands[i]...),
	}
}

// checkpointAtOrBelow returns the stored checkpoint with the largest
// population ≤ n, or nil when none exists (n precedes the first stored row).
func (r *Result) checkpointAtOrBelow(n int) *Checkpoint {
	cps := r.Checkpoints
	lo, hi := 0, len(cps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cps[mid].N <= n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return cps[lo-1]
}

// Recover re-derives the requested populations from a (possibly decimated)
// trajectory. ns must be ascending and within 1..SolvedN. Populations held
// in stored rows are copied directly; skipped populations are recomputed by
// seeding a fresh solver — built by the supplied factory, which must
// reproduce the solver configuration that produced r — with the nearest
// stored checkpoint at or below the population and extending densely from
// there. Because each stepper's recursion is deterministic and checkpoints
// capture its full state, recovered rows are float-for-float identical to
// what a dense solve stores; each gap costs at most stride-1 dense steps,
// so memory and time stay bounded by the decimation stride per row.
func (r *Result) Recover(ns []int, fresh func() (*Solver, error)) ([]RecoveredRow, error) {
	out := make([]RecoveredRow, 0, len(ns))
	var sub *Solver
	defer func() {
		if sub != nil {
			sub.Release()
		}
	}()
	prev := 0
	for _, n := range ns {
		if n < prev {
			return nil, fmt.Errorf("%w: recover populations must be ascending (%d after %d)", ErrBadRun, n, prev)
		}
		prev = n
		if n < 1 || n > r.SolvedN() {
			return nil, fmt.Errorf("%w: recover population %d outside solved range 1..%d", ErrBadRun, n, r.SolvedN())
		}
		if i := r.IndexOf(n); i >= 0 {
			out = append(out, r.rowCopy(i))
			continue
		}
		cp := r.checkpointAtOrBelow(n)
		base := 0
		if cp != nil {
			base = cp.N
		}
		// Reuse the in-flight recovery solver while it is the closest seed;
		// once a nearer checkpoint exists, restart from it so no recovery
		// ever extends densely across more than one decimation gap.
		if sub == nil || sub.N() > n || sub.N() < base {
			if sub != nil {
				sub.Release()
				sub = nil
			}
			s2, err := fresh()
			if err != nil {
				return nil, err
			}
			if s2.Result().Algorithm != r.Algorithm {
				s2.Release()
				return nil, fmt.Errorf("%w: recover factory built %q, trajectory is %q",
					ErrBadRun, s2.Result().Algorithm, r.Algorithm)
			}
			if cp != nil {
				if err := s2.ResumeFrom(cp); err != nil {
					s2.Release()
					return nil, err
				}
			}
			sub = s2
		}
		if err := sub.Run(n); err != nil {
			return nil, err
		}
		i := sub.Result().IndexOf(n)
		if i < 0 {
			return nil, fmt.Errorf("%w: recovery solver did not store population %d", ErrBadRun, n)
		}
		out = append(out, sub.Result().rowCopy(i))
	}
	return out, nil
}
