package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/queueing"
)

// multiServerState is the mutable recursion state shared by Algorithm 2 and
// Algorithm 3 (MVASD): both perform the same population step, differing only
// in where the demands come from. It holds the mean queue lengths and the
// marginal queue-size probabilities p_k(j), j = 1..C_k, where p_k(j)
// approximates the probability that j−1 customers are present at station k
// (so p_k(1) starts at 1 for the empty network).
type multiServerState struct {
	queue []float64   // Q_k
	p     [][]float64 // p[k][j-1] = p_k(j), length C_k

	// Per-step invariants hoisted out of the hot loop (see stationConsts):
	// the MVASD fixed point re-runs multiServerStep many times per
	// population, so struct copies out of m.Stations were measurable.
	servers  []int
	serversF []float64
	delay    []bool
}

// newMultiServerState builds the empty-network state from pooled vectors;
// release returns them.
func newMultiServerState(m *queueing.Model) *multiServerState {
	k := len(m.Stations)
	s := &multiServerState{
		queue:    getVec(k),
		p:        make([][]float64, k),
		servers:  make([]int, k),
		serversF: getVec(k),
		delay:    make([]bool, k),
	}
	for i, st := range m.Stations {
		s.p[i] = getVec(st.Servers)
		s.p[i][0] = 1 // empty network: P(0 customers) = 1
		s.servers[i] = st.Servers
		s.serversF[i] = float64(st.Servers)
		s.delay[i] = st.Kind == queueing.Delay
	}
	return s
}

func (s *multiServerState) release() {
	putVec(s.queue)
	putVec(s.serversF)
	s.queue, s.serversF, s.servers, s.delay = nil, nil, nil, nil
	for k := range s.p {
		putVec(s.p[k])
		s.p[k] = nil
	}
}

// copyFrom overwrites s with src's values. Both must come from the same
// model (needed by the fixed-point demand-vs-throughput mode, which re-runs
// a step from the same pre-step state without allocating a clone).
func (s *multiServerState) copyFrom(src *multiServerState) {
	copy(s.queue, src.queue)
	for k := range s.p {
		copy(s.p[k], src.p[k])
	}
}

// MultiServerOptions tunes Algorithm 2 / Algorithm 3 behaviour.
type MultiServerOptions struct {
	// Verbatim selects a strict transcription of the paper's printed
	// Algorithm 2, whose marginal-probability update reads
	//
	//	p_k(1) ← 1 − (1/C_k)(X·S_k + Σ_{j=2..C_k} p_k(j))
	//	p_k(j) ← (X·S_k/j)·p_k(j−1)
	//
	// i.e. without the (C_k−j) weights of Suri–Sahu–Vernon — the method
	// the paper cites as its source ([8]) — and without clamping. The
	// printed form mis-normalises the probability vector for larger C_k
	// (the p's can sum far above 1 mid-range, inflating the correction
	// factor F_k and depressing predicted throughput at the knee), so the
	// default uses the weighted update
	//
	//	P_k(0) ← 1 − (1/C_k)[X·D_k + Σ_{j=1..C_k−1}(C_k−j)·P_k(j)]
	//	P_k(j) ← (X·D_k/j)·P_k(j−1),  j = 1..C_k−1
	//
	// with P_k(0) clamped at 0 near saturation (p_k(j) in the paper's
	// notation is P_k(j−1) here). The ablation bench compares both against
	// exact load-dependent MVA.
	Verbatim bool
	// TraceStation, if non-negative, records the marginal probabilities of
	// that station at every population into Result trace storage (used by
	// the Fig. 3 experiment).
	TraceStation int
}

// multiServerStep performs one population step of the multi-server exact MVA
// (the body of Algorithm 2) using the supplied per-station demands. It
// mutates st and returns the step's throughput, response time and
// per-station residence times. demands[k] is D_k = V_k·S_k for this step.
// st.p[k][m] holds P_k(m | n−1), the marginal probability of m customers at
// station k.
func multiServerStep(m *queueing.Model, st *multiServerState, demands []float64, n int, verbatim bool, resid []float64) (x, rTotal float64) {
	queue, delay, servers, serversF := st.queue, st.delay, st.servers, st.serversF
	kk := len(queue)
	if len(delay) < kk || len(servers) < kk || len(serversF) < kk || len(resid) < kk || len(demands) < kk {
		return 0, 0 // construction guarantees matching shapes; keep BCE honest
	}
	for k := 0; k < kk; k++ {
		if delay[k] {
			resid[k] = demands[k]
			rTotal += resid[k]
			continue
		}
		c := serversF[k]
		// Correction factor F_k = Σ_{j=1..C}(C−j)·p_k(j) in paper indexing,
		// = Σ_{m=0..C−1}(C−1−m)·P_k(m) here.
		f := 0.0
		p := st.p[k]
		for mIdx := 0; mIdx < servers[k] && mIdx < len(p); mIdx++ {
			f += (c - 1 - float64(mIdx)) * p[mIdx]
		}
		// R_k = (D_k/C_k)(1 + Q_k + F_k)   (paper eq. 10 in demand form)
		resid[k] = demands[k] / c * (1 + queue[k] + f)
		rTotal += resid[k]
	}
	x = float64(n) / (rTotal + m.ThinkTime)
	for k := 0; k < kk; k++ {
		queue[k] = x * resid[k]
		if delay[k] || servers[k] == 1 {
			// P_k(0) stays 1 for single servers: F_k ≡ 0 and eq. 10
			// reduces to the single-server eq. 8, as the paper notes.
			continue
		}
		c := serversF[k]
		u := x * demands[k] // total utilization X·D_k (0..C_k scale)
		p := st.p[k]
		if verbatim {
			// As printed: unweighted P(0) update first, then cascade the
			// tail from the freshly updated predecessors.
			sum := 0.0
			for mIdx := 1; mIdx < servers[k]; mIdx++ {
				sum += p[mIdx]
			}
			p[0] = 1 - (u+sum)/c
			for j := 2; j <= servers[k]; j++ {
				p[j-1] = u / float64(j) * p[j-2]
			}
			continue
		}
		// Suri–Sahu–Vernon, solved in closed form: the self-consistent
		// solution of P(j) = (u/j)·P(j−1), j = 1..C−1, together with
		// P(0) = 1 − (1/C)[u + Σ_{j=1..C−1}(C−j)·P(j)] is
		//
		//	P(j) = P(0)·u^j/j!,
		//	P(0) = (1 − u/C) / (1 + (1/C)·Σ_{j=1..C−1}(C−j)·u^j/j!)
		//
		// clamped at 0 once the station saturates (u ≥ C), where the
		// correction factor vanishes and the station behaves as a single
		// server of demand D/C.
		if u >= c {
			for mIdx := range p {
				p[mIdx] = 0
			}
			continue
		}
		// Fused: one pass stores the factorial terms u^j/j! in place while
		// accumulating the weighted sum, then a scale-by-P(0) sweep — the
		// division-heavy recurrence is evaluated once instead of twice.
		wsum := 0.0
		term := 1.0 // u^j/j!
		for j := 1; j < servers[k]; j++ {
			term *= u / float64(j)
			p[j] = term
			wsum += (c - float64(j)) * term
		}
		p0 := (1 - u/c) / (1 + wsum/c)
		p[0] = p0
		for j := 1; j < servers[k]; j++ {
			p[j] *= p0
		}
	}
	return x, rTotal
}

// MarginalTrace records the per-population marginal probabilities of one
// station, the data behind the paper's Fig. 3.
type MarginalTrace struct {
	Station string
	Servers int
	// P[i][j] is p_k(j+1) at population i+1.
	P [][]float64
}

// multiServerStepper is the resumable form of Algorithm 2: constant demands,
// multiServerState carried across populations.
type multiServerStepper struct {
	m        *queueing.Model
	st       *multiServerState
	demands  []float64
	verbatim bool
	traceAt  int
	trace    *MarginalTrace
}

func (s *multiServerStepper) step(res *Result, n, row int, _ func(int) error, _ *SolveHooks) error {
	x, rTotal := multiServerStep(s.m, s.st, s.demands, n, s.verbatim, res.Residence[row])
	commitRow(res, s.m, row, x, rTotal, s.demands, s.st)
	if s.trace != nil {
		s.trace.P = append(s.trace.P, append([]float64(nil), s.st.p[s.traceAt]...))
	}
	return nil
}

func (s *multiServerStepper) release() {
	s.st.release()
	putVec(s.demands)
	s.demands = nil
}

func (s *multiServerStepper) checkpoint(cp *Checkpoint) {
	cp.Queue = append([]float64(nil), s.st.queue...)
	cp.Marginal = cloneVecs(s.st.p)
}

func (s *multiServerStepper) restore(cp *Checkpoint) error {
	if s.trace != nil {
		return fmt.Errorf("%w: cannot restore a marginal-tracing solver", ErrBadRun)
	}
	if err := copyQueue(s.st.queue, cp.Queue); err != nil {
		return err
	}
	return copyInto(s.st.p, cp.Marginal)
}

// NewMultiServerSolver returns a resumable Algorithm-2 solver for m. When
// opts.TraceStation is a valid station index, Solver.Trace exposes the
// marginal-probability trace.
func NewMultiServerSolver(m *queueing.Model, opts MultiServerOptions) (*Solver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	demands := getVec(len(m.Stations))
	for i, st := range m.Stations {
		demands[i] = st.Demand()
	}
	alg := &multiServerStepper{
		m:        m,
		st:       newMultiServerState(m),
		demands:  demands,
		verbatim: opts.Verbatim,
		traceAt:  opts.TraceStation,
	}
	if opts.TraceStation >= 0 && opts.TraceStation < len(m.Stations) {
		alg.trace = &MarginalTrace{
			Station: m.Stations[opts.TraceStation].Name,
			Servers: m.Stations[opts.TraceStation].Servers,
		}
	}
	return newSolver("exact-mva-multiserver", newEmptyResult("exact-mva-multiserver", m, 0), alg), nil
}

// ExactMVAMultiServer solves the network with the paper's Algorithm 2:
// exact MVA extended with multi-server queues through the marginal
// queue-size probabilities p_k(j) and the correction factor
//
//	R_k = (S_k/C_k)·(1 + Q_k + Σ_{j=1..C_k}(C_k−j)·p_k(j))   (eq. 10)
//
// Demands are constant across populations (this is the "MVA i" baseline:
// whatever demands the model carries, typically measured at one concurrency
// level i). The returned trace is non-nil when opts.TraceStation >= 0.
func ExactMVAMultiServer(m *queueing.Model, maxN int, opts MultiServerOptions) (*Result, *MarginalTrace, error) {
	return exactMVAMultiServer(context.Background(), m, maxN, opts)
}

func exactMVAMultiServer(ctx context.Context, m *queueing.Model, maxN int, opts MultiServerOptions) (*Result, *MarginalTrace, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, nil, err
	}
	s, err := NewMultiServerSolver(m, opts)
	if err != nil {
		return nil, nil, err
	}
	trace := s.Trace()
	res, err := runToCompletion(ctx, s, maxN)
	if err != nil {
		return nil, nil, err
	}
	return res, trace, nil
}

// commitRow records one population step into result row i.
func commitRow(res *Result, m *queueing.Model, i int, x, rTotal float64, demands []float64, st *multiServerState) {
	res.X[i] = x
	res.R[i] = rTotal
	res.Cycle[i] = rTotal + m.ThinkTime
	for k, stn := range m.Stations {
		res.QueueLen[i][k] = st.queue[k]
		if stn.Kind == queueing.Delay {
			res.Util[i][k] = 0
		} else {
			res.Util[i][k] = math.Min(x*demands[k]/float64(stn.Servers), 1)
		}
		res.Demands[i][k] = demands[k]
	}
}
