package core

import (
	"fmt"
	"math"

	"repro/internal/queueing"
)

// ClassSpec describes one customer class of a multi-class closed network.
type ClassSpec struct {
	// Name labels the class (e.g. "browse", "checkout").
	Name string
	// Population is the number of customers of this class.
	Population int
	// ThinkTime is the class's terminal think time Z_c in seconds.
	ThinkTime float64
	// Demands[k] is the class's service demand at station k in seconds.
	Demands []float64
}

// MulticlassResult holds the exact multi-class MVA solution at the full
// population mix.
type MulticlassResult struct {
	// ClassNames mirrors the input classes.
	ClassNames []string
	// X[c] is class c's throughput.
	X []float64
	// R[c] is class c's response time.
	R []float64
	// QueueLen[k] is the aggregate mean queue length at station k.
	QueueLen []float64
	// Util[k] is the aggregate utilization of station k (0..1 per server).
	Util []float64
}

// MulticlassMVA solves a multi-class closed network with the exact
// multi-class MVA recursion over population vectors:
//
//	R_{c,k}(n) = D_{c,k} · (1 + Q_k(n − e_c))
//	X_c(n)     = n_c / (Z_c + Σ_k R_{c,k}(n))
//	Q_k(n)     = Σ_c X_c(n) · R_{c,k}(n)
//
// The paper confines itself to single-class models ("we make use of single
// class models wherein the customers are assumed to be indistinguishable");
// this solver is the natural extension for mixed workloads such as VINS's
// four workflows run concurrently. Stations must be single-server or Delay
// (exact multi-class multi-server MVA has no product-form recursion of this
// simple shape). Time and memory are O(K·Π(N_c+1)).
func MulticlassMVA(m *queueing.Model, classes []ClassSpec) (*MulticlassResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("%w: no classes", ErrBadRun)
	}
	k := len(m.Stations)
	for _, st := range m.Stations {
		if st.Servers != 1 && st.Kind != queueing.Delay {
			return nil, fmt.Errorf("%w: multiclass MVA requires single-server stations (station %q has %d)",
				ErrBadRun, st.Name, st.Servers)
		}
	}
	for _, c := range classes {
		if c.Population < 0 {
			return nil, fmt.Errorf("%w: class %q population %d", ErrBadRun, c.Name, c.Population)
		}
		if len(c.Demands) != k {
			return nil, fmt.Errorf("%w: class %q has %d demands for %d stations",
				ErrBadRun, c.Name, len(c.Demands), k)
		}
		if c.ThinkTime < 0 {
			return nil, fmt.Errorf("%w: class %q negative think time", ErrBadRun, c.Name)
		}
	}
	nc := len(classes)
	// Flattened population-vector index: mixed-radix with digit c in
	// [0, N_c], stride product of lower digits.
	dims := make([]int, nc)
	strides := make([]int, nc)
	total := 1
	for c := range classes {
		dims[c] = classes[c].Population + 1
		strides[c] = total
		total *= dims[c]
		if total > 50_000_000 {
			return nil, fmt.Errorf("%w: population-vector space too large (%d states)", ErrBadRun, total)
		}
	}
	// queue[idx*k + j] = Q_j at population vector idx.
	queue := make([]float64, total*k)
	// Iterate vectors in an order where n − e_c always precedes n: plain
	// lexicographic order over the flattened index has that property, since
	// removing a customer strictly decreases the index.
	vec := make([]int, nc)
	rck := make([][]float64, nc)
	for c := range rck {
		rck[c] = make([]float64, k)
	}
	xc := make([]float64, nc)
	var last MulticlassResult
	for idx := 1; idx < total; idx++ {
		// Decode idx into the population vector.
		rem := idx
		for c := nc - 1; c >= 0; c-- {
			vec[c] = rem / strides[c]
			rem %= strides[c]
		}
		for c := range classes {
			xc[c] = 0
			if vec[c] == 0 {
				continue
			}
			prev := (idx - strides[c]) * k
			sum := 0.0
			for j, st := range m.Stations {
				d := classes[c].Demands[j]
				if st.Kind == queueing.Delay {
					rck[c][j] = d
				} else {
					rck[c][j] = d * (1 + queue[prev+j])
				}
				sum += rck[c][j]
			}
			xc[c] = float64(vec[c]) / (classes[c].ThinkTime + sum)
		}
		base := idx * k
		for j := range m.Stations {
			q := 0.0
			for c := range classes {
				if vec[c] > 0 {
					q += xc[c] * rck[c][j]
				}
			}
			queue[base+j] = q
		}
		if idx == total-1 {
			last = MulticlassResult{
				ClassNames: make([]string, nc),
				X:          make([]float64, nc),
				R:          make([]float64, nc),
				QueueLen:   make([]float64, k),
				Util:       make([]float64, k),
			}
			for c := range classes {
				last.ClassNames[c] = classes[c].Name
				last.X[c] = xc[c]
				if vec[c] > 0 {
					sum := 0.0
					for j := range m.Stations {
						sum += rck[c][j]
					}
					last.R[c] = sum
				}
			}
			for j := range m.Stations {
				last.QueueLen[j] = queue[base+j]
				u := 0.0
				for c := range classes {
					u += xc[c] * classes[c].Demands[j]
				}
				last.Util[j] = math.Min(u, 1)
			}
		}
	}
	if total == 1 {
		// All-zero populations: an empty but valid result.
		last = MulticlassResult{
			ClassNames: make([]string, nc),
			X:          make([]float64, nc),
			R:          make([]float64, nc),
			QueueLen:   make([]float64, k),
			Util:       make([]float64, k),
		}
		for c := range classes {
			last.ClassNames[c] = classes[c].Name
		}
	}
	return &last, nil
}
