package core

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/queueing"
)

func checkpointModel() *queueing.Model {
	return &queueing.Model{
		Name:      "checkpoint-test",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "app/cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.02},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 2, Visits: 2, ServiceTime: 0.008},
			{Name: "net", Kind: queueing.Delay, Servers: 1, Visits: 1, ServiceTime: 0.005},
		},
	}
}

func checkpointDemandModel(t *testing.T, m *queueing.Model, throughputAxis bool) DemandModel {
	t.Helper()
	samples := make([]DemandSamples, len(m.Stations))
	for i, st := range m.Stations {
		d := st.Demand()
		samples[i] = DemandSamples{
			At:      []float64{1, 50, 200, 600},
			Demands: []float64{d, d * 0.95, d * 0.9, d * 0.88},
		}
	}
	var (
		dm  DemandModel
		err error
	)
	if throughputAxis {
		dm, err = NewThroughputDemands(interp.CubicNotAKnot, samples, interp.Options{})
	} else {
		dm, err = NewCurveDemands(interp.CubicNotAKnot, samples, interp.Options{})
	}
	if err != nil {
		t.Fatal(err)
	}
	return dm
}

// TestCheckpointRestoreBitIdentical proves the cluster peer-fill contract for
// every resumable algorithm: run a source solver to n1, move (trajectory,
// checkpoint) to a fresh solver, extend both to n2 — the restored solver's
// trajectory must be bit-identical to the source's (and hence to a cold
// solve, which the solver tests already guarantee for extends).
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	m := checkpointModel()
	const n1, n2 = 120, 400
	builders := map[string]func() (*Solver, error){
		"exact":          func() (*Solver, error) { return NewExactMVASolver(m) },
		"schweitzer":     func() (*Solver, error) { return NewSchweitzerSolver(m, SchweitzerOptions{}) },
		"multiserver":    func() (*Solver, error) { return NewMultiServerSolver(m, MultiServerOptions{TraceStation: -1}) },
		"load-dependent": func() (*Solver, error) { return NewLoadDependentSolver(m, nil) },
		"mvasd": func() (*Solver, error) {
			return NewMVASDSolver(m, checkpointDemandModel(t, m, false), MVASDOptions{})
		},
		"mvasd-throughput": func() (*Solver, error) {
			return NewMVASDSolver(m, checkpointDemandModel(t, m, true), MVASDOptions{})
		},
		"mvasd-1s": func() (*Solver, error) {
			return NewMVASDSingleServerSolver(m, checkpointDemandModel(t, m, false), MVASDOptions{})
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			src, err := build()
			if err != nil {
				t.Fatal(err)
			}
			defer src.Release()
			if err := src.Run(n1); err != nil {
				t.Fatal(err)
			}
			cp, err := src.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			traj, err := src.Result().Prefix(n1)
			if err != nil {
				t.Fatal(err)
			}

			dst, err := build()
			if err != nil {
				t.Fatal(err)
			}
			defer dst.Release()
			if err := dst.Restore(traj, cp); err != nil {
				t.Fatal(err)
			}
			if dst.N() != n1 {
				t.Fatalf("restored solver at N=%d, want %d", dst.N(), n1)
			}

			if err := src.Extend(n2); err != nil {
				t.Fatal(err)
			}
			if err := dst.Extend(n2); err != nil {
				t.Fatal(err)
			}
			compareTrajectories(t, src.Result(), dst.Result())
		})
	}
}

// compareTrajectories requires exact (bitwise) float equality on every metric.
func compareTrajectories(t *testing.T, want, got *Result) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("lengths differ: want %d, got %d", want.Len(), got.Len())
	}
	for i := range want.N {
		if want.X[i] != got.X[i] || want.R[i] != got.R[i] || want.Cycle[i] != got.Cycle[i] {
			t.Fatalf("n=%d: X/R/Cycle differ: want (%v %v %v), got (%v %v %v)",
				i+1, want.X[i], want.R[i], want.Cycle[i], got.X[i], got.R[i], got.Cycle[i])
		}
		for k := range want.QueueLen[i] {
			if want.QueueLen[i][k] != got.QueueLen[i][k] ||
				want.Util[i][k] != got.Util[i][k] ||
				want.Residence[i][k] != got.Residence[i][k] ||
				want.Demands[i][k] != got.Demands[i][k] {
				t.Fatalf("n=%d station %d: per-station metrics differ", i+1, k)
			}
		}
	}
}

// TestRestoreRejectsMismatches exercises the validation paths: wrong
// algorithm, wrong population, and a non-fresh target.
func TestRestoreRejectsMismatches(t *testing.T) {
	m := checkpointModel()
	src, err := NewMultiServerSolver(m, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Release()
	if err := src.Run(10); err != nil {
		t.Fatal(err)
	}
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	traj, err := src.Result().Prefix(10)
	if err != nil {
		t.Fatal(err)
	}

	other, err := NewExactMVASolver(m)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Release()
	if err := other.Restore(traj, cp); err == nil {
		t.Fatal("restore accepted a mismatched algorithm")
	}
	if other.N() != 0 {
		t.Fatalf("failed restore left solver at N=%d", other.N())
	}

	dst, err := NewMultiServerSolver(m, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Release()
	badCP := *cp
	badCP.N = 9
	if err := dst.Restore(traj, &badCP); err == nil {
		t.Fatal("restore accepted checkpoint/trajectory population mismatch")
	}
	if err := dst.Restore(traj, cp); err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(traj, cp); err == nil {
		t.Fatal("restore accepted a non-fresh solver")
	}
}

// TestRestoreResultRoundTrip rebuilds a Result from its public rows and
// checks it can seed a restore.
func TestRestoreResultRoundTrip(t *testing.T) {
	m := checkpointModel()
	src, err := NewMultiServerSolver(m, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Release()
	if err := src.Run(50); err != nil {
		t.Fatal(err)
	}
	res := src.Result()
	rebuilt, err := RestoreResult(res.Algorithm, res.ModelName, res.ThinkTime, res.StationNames,
		res.X, res.R, res.Cycle, res.QueueLen, res.Util, res.Residence, res.Demands)
	if err != nil {
		t.Fatal(err)
	}
	compareTrajectories(t, res, rebuilt)
	if rebuilt.ModelName != res.ModelName || rebuilt.ThinkTime != res.ThinkTime {
		t.Fatal("metadata not preserved")
	}
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewMultiServerSolver(m, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Release()
	if err := dst.Restore(rebuilt, cp); err != nil {
		t.Fatal(err)
	}
	if err := dst.Extend(80); err != nil {
		t.Fatal(err)
	}
	if err := src.Extend(80); err != nil {
		t.Fatal(err)
	}
	compareTrajectories(t, src.Result(), dst.Result())
}
