package core

import (
	"sync"
	"testing"

	"repro/internal/interp"
)

// TestConcurrentSolves runs every solver from many goroutines over shared
// queueing.Model and DemandModel values. Run under -race (as CI does), it
// proves the solvers keep all mutable recursion state private and are safe to
// share behind a server: the solverd service solves the same *queueing.Model
// from concurrent requests.
func TestConcurrentSolves(t *testing.T) {
	m := ctxTestModel() // shared by every goroutine, never copied
	samples := make([]DemandSamples, len(m.Stations))
	for k, st := range m.Stations {
		d := st.Demand()
		samples[k] = DemandSamples{
			At:      []float64{1, 50, 100, 200},
			Demands: []float64{d, 0.9 * d, 0.85 * d, 0.8 * d},
		}
	}
	curve, err := NewCurveDemands(interp.CubicNotAKnot, samples, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	constant := ConstantDemands(m.Demands())

	const goroutines = 16
	const maxN = 200
	type outcome struct {
		x float64
		r float64
	}
	solvers := map[string]func() (*Result, error){
		"exact":      func() (*Result, error) { return ExactMVA(m, maxN) },
		"schweitzer": func() (*Result, error) { return Schweitzer(m, maxN, SchweitzerOptions{}) },
		"multiserver": func() (*Result, error) {
			res, _, err := ExactMVAMultiServer(m, maxN, MultiServerOptions{TraceStation: -1})
			return res, err
		},
		"mvasd":          func() (*Result, error) { return MVASD(m, maxN, curve, MVASDOptions{}) },
		"mvasd-constant": func() (*Result, error) { return MVASD(m, maxN, constant, MVASDOptions{}) },
		"mvasd-1s":       func() (*Result, error) { return MVASDSingleServer(m, maxN, curve, MVASDOptions{}) },
	}
	for name, solve := range solvers {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			results := make([]outcome, goroutines)
			errs := make([]error, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					res, err := solve()
					if err != nil {
						errs[g] = err
						return
					}
					results[g] = outcome{x: res.X[maxN-1], r: res.R[maxN-1]}
				}(g)
			}
			wg.Wait()
			for g := 0; g < goroutines; g++ {
				if errs[g] != nil {
					t.Fatalf("goroutine %d: %v", g, errs[g])
				}
				if results[g] != results[0] {
					t.Fatalf("goroutine %d diverged: %+v vs %+v", g, results[g], results[0])
				}
			}
		})
	}
	// The model must come through untouched.
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
