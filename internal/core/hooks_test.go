package core

import (
	"errors"
	"testing"

	"repro/internal/queueing"
)

// xDemands is a throughput-dependent demand model for hook tests.
type xDemands struct {
	k int
	f func(station int, x float64) float64
}

func (d xDemands) DemandAt(station, _ int, x float64) float64 { return d.f(station, x) }
func (xDemands) DependsOnThroughput() bool                    { return true }
func (d xDemands) Stations() int                              { return d.k }

func hooksTestModel() *queueing.Model {
	return &queueing.Model{
		Name:      "hooks-test",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 2, Visits: 1, ServiceTime: 0.05},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.03},
		},
	}
}

func TestOnStepFiresPerPopulation(t *testing.T) {
	s, err := NewExactMVASolver(hooksTestModel())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	var ns []int
	var xs []float64
	s.SetHooks(&SolveHooks{OnStep: func(n int, x float64) {
		ns = append(ns, n)
		xs = append(xs, x)
	}})
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(ns) != 10 {
		t.Fatalf("OnStep fired %d times, want 10", len(ns))
	}
	for i, n := range ns {
		if n != i+1 {
			t.Fatalf("OnStep order: got n=%d at call %d", n, i)
		}
		if xs[i] != s.Result().X[i] {
			t.Errorf("OnStep x at n=%d: %g, want %g", n, xs[i], s.Result().X[i])
		}
	}

	// Extending fires only for the new populations.
	ns = ns[:0]
	if err := s.Extend(15); err != nil {
		t.Fatal(err)
	}
	if len(ns) != 5 || ns[0] != 11 || ns[4] != 15 {
		t.Fatalf("OnStep after Extend(15): %v", ns)
	}

	// Clearing hooks silences the observer.
	s.SetHooks(nil)
	ns = ns[:0]
	if err := s.Extend(20); err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 {
		t.Fatalf("OnStep fired %d times after SetHooks(nil)", len(ns))
	}
}

func TestSchweitzerFixedPointHook(t *testing.T) {
	s, err := NewSchweitzerSolver(hooksTestModel(), SchweitzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	calls := 0
	s.SetHooks(&SolveHooks{OnFixedPoint: func(n, iters int, resid float64, converged bool) {
		calls++
		if !converged {
			t.Errorf("n=%d reported non-convergence", n)
		}
		if iters < 1 {
			t.Errorf("n=%d: iters = %d", n, iters)
		}
		if resid < 0 {
			t.Errorf("n=%d: resid = %g", n, resid)
		}
	}})
	if err := s.Run(8); err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Fatalf("OnFixedPoint fired %d times, want 8 (one per population)", calls)
	}
}

func TestMVASDFixedPointHookConverged(t *testing.T) {
	m := hooksTestModel()
	dm := xDemands{k: 2, f: func(station int, x float64) float64 {
		// Mildly throughput-dependent demands: converges in a few iterations.
		base := []float64{0.05, 0.03}[station]
		return base / (1 + 0.01*x)
	}}
	s, err := NewMVASDSolver(m, dm, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	total, calls := 0, 0
	s.SetHooks(&SolveHooks{OnFixedPoint: func(n, iters int, resid float64, converged bool) {
		calls++
		total += iters
		if !converged {
			t.Errorf("n=%d did not converge (iters=%d resid=%g)", n, iters, resid)
		}
	}})
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if calls != 20 {
		t.Fatalf("OnFixedPoint fired %d times, want 20", calls)
	}
	if total < calls {
		t.Fatalf("total iterations %d < %d resolutions", total, calls)
	}
}

func TestMVASDFixedPointHookFailure(t *testing.T) {
	m := hooksTestModel()
	dm := xDemands{k: 2, f: func(station int, x float64) float64 {
		base := []float64{0.05, 0.03}[station]
		return base * (1 + 5/(1+x))
	}}
	// One iteration with a tight tolerance cannot converge.
	s, err := NewMVASDSolver(m, dm, MVASDOptions{FixedPointMaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	var failed bool
	s.SetHooks(&SolveHooks{OnFixedPoint: func(n, iters int, resid float64, converged bool) {
		if !converged {
			failed = true
			if iters != 1 {
				t.Errorf("failure reported %d iters, want the cap 1", iters)
			}
			if resid <= 0 {
				t.Errorf("failure residual = %g, want > 0", resid)
			}
		}
	}})
	if err := s.Run(5); !errors.Is(err, ErrBadRun) {
		t.Fatalf("Run err = %v, want ErrBadRun", err)
	}
	if !failed {
		t.Fatal("OnFixedPoint never reported the convergence failure")
	}
}

// TestExactMVAStepAllocsWithHooks mirrors the hot-path guard with hooks
// installed: the server instruments every solve, so the observed step must
// stay allocation-free too.
func TestExactMVAStepAllocsWithHooks(t *testing.T) {
	s, err := NewExactMVASolver(solverTestModel())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	var steps int
	s.SetHooks(&SolveHooks{OnStep: func(int, float64) { steps++ }})
	const runs = 200
	s.Reserve(runs + 2)
	n := 0
	allocs := testing.AllocsPerRun(runs, func() {
		n++
		if err := s.Extend(n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hooked exact-MVA step allocates %.2f objects/op, want 0", allocs)
	}
	if steps == 0 {
		t.Fatal("OnStep never fired")
	}
}
