package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/queueing"
)

func TestMultiServerReducesToSingleServer(t *testing.T) {
	// With every C_k = 1, Algorithm 2 must equal Algorithm 1 exactly (the
	// paper notes eq. 10 reduces to eq. 8).
	m := &queueing.Model{
		Name:      "all-single",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "a", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.005},
			{Name: "b", Kind: queueing.Disk, Servers: 1, Visits: 2, ServiceTime: 0.004},
		},
	}
	exact, err := ExactMVA(m, 200)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := ExactMVAMultiServer(m, 200, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.X {
		if math.Abs(exact.X[i]-ms.X[i]) > 1e-12*exact.X[i] {
			t.Fatalf("n=%d: single %g vs multi %g", exact.N[i], exact.X[i], ms.X[i])
		}
		if math.Abs(exact.R[i]-ms.R[i]) > 1e-12*math.Max(exact.R[i], 1e-12) {
			t.Fatalf("n=%d: R single %g vs multi %g", exact.N[i], exact.R[i], ms.R[i])
		}
	}
}

func TestMultiServerN1NoQueueing(t *testing.T) {
	// With one customer, a C-server station behaves like a delay of D:
	// R(1) = D regardless of C.
	for _, c := range []int{1, 2, 4, 16} {
		m := singleStation(0.01, 0.5, c)
		res, _, err := ExactMVAMultiServer(m, 1, MultiServerOptions{TraceStation: -1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.R[0]-0.01) > 1e-12 {
			t.Fatalf("C=%d: R(1) = %g, want 0.01", c, res.R[0])
		}
	}
}

func TestMultiServerBeatsSingleServerModel(t *testing.T) {
	// A 4-core CPU must deliver higher modelled throughput than the same
	// station treated as one server with the raw service time, and lower
	// response times than queueing all jobs behind one core.
	m := singleStation(0.02, 1, 4)
	multi, _, err := ExactMVAMultiServer(m, 300, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	single, err := ExactMVA(m, 300) // ignores servers: pessimistic
	if err != nil {
		t.Fatal(err)
	}
	if multi.X[299] <= single.X[299] {
		t.Fatalf("multi-server X=%g should beat single-server %g", multi.X[299], single.X[299])
	}
	// Saturation: X → C/D = 200.
	if multi.X[299] < 190 || multi.X[299] > 200.0001 {
		t.Fatalf("multi-server saturation X=%g, want ≈200", multi.X[299])
	}
}

func TestMultiServerRespectsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		m := &queueing.Model{Name: "rand-ms", ThinkTime: rng.Float64()}
		k := 1 + rng.Intn(5)
		for i := 0; i < k; i++ {
			m.Stations = append(m.Stations, queueing.Station{
				Name: "s" + string(rune('a'+i)), Kind: queueing.CPU,
				Servers: 1 + rng.Intn(16),
				Visits:  0.5 + rng.Float64(), ServiceTime: 0.002 + 0.02*rng.Float64(),
			})
		}
		res, _, err := ExactMVAMultiServer(m, 400, MultiServerOptions{TraceStation: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dmax, _ := m.MaxDemand() // already normalised by servers
		for i := range res.X {
			if res.X[i] > (1/dmax)*(1+1e-6) {
				t.Fatalf("trial %d n=%d: X=%g exceeds C/D bound %g", trial, res.N[i], res.X[i], 1/dmax)
			}
		}
	}
}

func TestMultiServerVsLoadDependentExact(t *testing.T) {
	// Algorithm 2 approximates the exact load-dependent MVA; for a
	// moderately loaded multi-server network the two should agree within a
	// few percent (and exactly at n=1).
	m := &queueing.Model{
		Name:      "ms-vs-ld",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 8, Visits: 1, ServiceTime: 0.02},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.004},
		},
	}
	alg2, _, err := ExactMVAMultiServer(m, 1000, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	ld, err := LoadDependentMVA(m, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alg2.X[0]-ld.X[0]) > 1e-9*ld.X[0] {
		t.Fatalf("n=1 mismatch: alg2 %g vs exact %g", alg2.X[0], ld.X[0])
	}
	worst, sum := 0.0, 0.0
	for i := range alg2.X {
		rel := math.Abs(alg2.X[i]-ld.X[i]) / ld.X[i]
		worst = math.Max(worst, rel)
		sum += rel
	}
	// The Suri correction is approximate at the knee; the literature
	// reports single-digit-percent worst cases there. Mean error must stay
	// small and the saturated tail must agree closely.
	if worst > 0.08 {
		t.Fatalf("Algorithm 2 worst deviation %.2f%% from exact load-dependent MVA", worst*100)
	}
	if mean := sum / float64(len(alg2.X)); mean > 0.02 {
		t.Fatalf("Algorithm 2 mean deviation %.2f%% from exact load-dependent MVA", mean*100)
	}
	tail := len(alg2.X) - 1
	if rel := math.Abs(alg2.X[tail]-ld.X[tail]) / ld.X[tail]; rel > 0.01 {
		t.Fatalf("saturated tail deviates %.2f%%", rel*100)
	}
}

func TestMarginalProbabilitiesTrace(t *testing.T) {
	// Fig. 3 setup: a 4-core CPU station; the marginal probabilities must
	// be valid probabilities and converge as concurrency grows.
	m := singleStation(0.02, 1, 4)
	_, trace, err := ExactMVAMultiServer(m, 300, MultiServerOptions{TraceStation: 0})
	if err != nil {
		t.Fatal(err)
	}
	if trace == nil || trace.Servers != 4 || len(trace.P) != 300 {
		t.Fatalf("bad trace: %+v", trace)
	}
	for n, row := range trace.P {
		if len(row) != 4 {
			t.Fatalf("n=%d: %d probabilities", n+1, len(row))
		}
		for j, p := range row {
			if p < -1e-9 || p > 1+1e-9 {
				t.Fatalf("n=%d: p(%d) = %g outside [0,1]", n+1, j+1, p)
			}
		}
	}
	// Convergence: the last two rows nearly identical.
	for j := range trace.P[299] {
		if math.Abs(trace.P[299][j]-trace.P[298][j]) > 1e-6 {
			t.Fatalf("probabilities not converged at n=300: %v vs %v", trace.P[299], trace.P[298])
		}
	}
}

func TestMultiServerVerbatimMode(t *testing.T) {
	// Verbatim mode reproduces the unclamped recursion; it must agree with
	// the default mode while the station is underloaded.
	m := &queueing.Model{
		Name:      "light",
		ThinkTime: 5,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.01},
		},
	}
	def, _, err := ExactMVAMultiServer(m, 50, MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	verb, _, err := ExactMVAMultiServer(m, 50, MultiServerOptions{Verbatim: true, TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range def.X {
		// The two variants use different update orderings, so only
		// near-agreement is expected even far from saturation.
		if math.Abs(def.X[i]-verb.X[i]) > 1e-3*def.X[i] {
			t.Fatalf("n=%d: default %g vs verbatim %g under light load", def.N[i], def.X[i], verb.X[i])
		}
	}
}

func TestLoadDependentReducesToExactMVA(t *testing.T) {
	m := &queueing.Model{
		Name:      "ld-single",
		ThinkTime: 0.3,
		Stations: []queueing.Station{
			{Name: "a", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.006},
			{Name: "b", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.011},
		},
	}
	exact, err := ExactMVA(m, 150)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := LoadDependentMVA(m, 150, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.X {
		if math.Abs(exact.X[i]-ld.X[i]) > 1e-9*exact.X[i] {
			t.Fatalf("n=%d: exact %g vs LD %g", exact.N[i], exact.X[i], ld.X[i])
		}
	}
}

func TestLoadDependentRespectsMultiServerBound(t *testing.T) {
	m := singleStation(0.02, 0.1, 4) // bound C/D = 200
	ld, err := LoadDependentMVA(m, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ld.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	last := ld.X[len(ld.X)-1]
	if last > 200*(1+1e-9) {
		t.Fatalf("X=%g exceeds 200", last)
	}
	if last < 195 {
		t.Fatalf("X=%g should approach 200", last)
	}
}

func TestLoadDependentCustomRate(t *testing.T) {
	// A rate that doubles service speed for j >= 2 (batching effect):
	// faster than single-server, slower than a true 2-server... actually
	// equals the 2-server rate for j >= 2 and rate 1 at j = 1 — exactly
	// MultiServerRate(2). Cross-check the two spellings.
	m := singleStation(0.01, 0.2, 2)
	viaServers, err := LoadDependentMVA(m, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	custom := []RateFunc{func(j int) float64 {
		if j >= 2 {
			return 2
		}
		return 1
	}}
	viaCustom, err := LoadDependentMVA(m, 100, custom)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaServers.X {
		if math.Abs(viaServers.X[i]-viaCustom.X[i]) > 1e-12*viaServers.X[i] {
			t.Fatalf("n=%d: %g vs %g", viaServers.N[i], viaServers.X[i], viaCustom.X[i])
		}
	}
}

func TestLoadDependentErrors(t *testing.T) {
	m := singleStation(0.01, 0, 1)
	if _, err := LoadDependentMVA(m, 10, []RateFunc{nil, nil}); err == nil {
		t.Error("mismatched rate count should error")
	}
	bad := []RateFunc{func(int) float64 { return 0 }}
	if _, err := LoadDependentMVA(m, 10, bad); err == nil {
		t.Error("zero rate should error")
	}
}

func TestSingleServerRate(t *testing.T) {
	r := SingleServerRate()
	for j := 1; j < 5; j++ {
		if r(j) != 1 {
			t.Errorf("rate(%d) = %g", j, r(j))
		}
	}
}
