// Package core implements the paper's analytical contribution: the family of
// Mean Value Analysis solvers for single-class closed queueing networks —
//
//   - ExactMVA: the classic exact single-server MVA (paper Algorithm 1),
//   - Schweitzer: the approximate MVA of Schweitzer/Bard (paper eq. 9),
//   - ExactMVAMultiServer: exact MVA with multi-server queues via the
//     marginal-probability correction factor (paper Algorithm 2, eq. 10),
//   - MVASD: multi-server MVA with a *varying* (interpolated) array of
//     service demands (paper Algorithm 3, eq. 11) — the headline algorithm,
//   - MVASDSingleServer: the paper's Fig.-8 baseline that folds C-server
//     stations into single servers with demand D/C,
//   - LoadDependentMVA: textbook exact MVA for load-dependent rate
//     functions (used as an ablation reference for Algorithm 2),
//   - MulticlassMVA: exact multi-class MVA (an extension).
//
// All solvers return a Result holding the full X(n), R(n) trajectories plus
// per-station queue lengths and utilizations, which the experiment layer
// compares against "measured" load tests from the simulator.
//
// Every algorithm is also available in resumable form through the Solver
// type: Run(n) solves to population n, a later Extend(n') continues the
// recursion from the checkpointed state without re-solving the prefix.
package core

import (
	"fmt"
	"math"

	"repro/internal/queueing"
)

// Result is the trajectory of a closed-network solution for populations
// n = 1..N. Slices indexed by n use position n-1.
//
// The two-dimensional metrics are strided views into flat backing buffers so
// a Solver can grow the trajectory geometrically: extending to a larger
// population appends rows without copying or re-solving the prefix. The
// public slice headers below are resliced on growth; rows already handed out
// via Prefix keep pointing at their original backing and stay immutable.
type Result struct {
	// Algorithm names the solver that produced the result.
	Algorithm string
	// ModelName echoes the solved model's name.
	ModelName string
	// ThinkTime is the Z used.
	ThinkTime float64
	// StationNames are the station labels, defining the station axis of the
	// two-dimensional metrics.
	StationNames []string
	// N[i] is the population of step i (always i+1 for these solvers).
	N []int
	// X[i] is system throughput at population N[i] (transactions/second).
	X []float64
	// R[i] is the mean response time at population N[i] (seconds).
	R []float64
	// Cycle[i] is the mean cycle time R+Z (seconds), the quantity the
	// paper reports as "response time" in its deviation tables.
	Cycle []float64
	// QueueLen[i][k] is the mean number of jobs at station k.
	QueueLen [][]float64
	// Util[i][k] is the per-server utilization of station k in [0, 1]
	// (X·D_k/C_k), the quantity plotted in the paper's Fig. 9.
	Util [][]float64
	// Residence[i][k] is the residence time V_k·R_k of station k (seconds).
	Residence [][]float64
	// Demands[i][k] is the service demand used at step i for station k —
	// constant for classic MVA, varying for MVASD.
	Demands [][]float64

	// Checkpoints[i] is the solver's recursion state at stored row i. Only
	// decimated trajectories (stride > 1) carry checkpoints: they are what
	// makes skipped rows recoverable (re-extend densely from the nearest
	// stored checkpoint ≤ n). Dense trajectories leave this nil.
	Checkpoints []*Checkpoint

	// Growable backing. Each [][]float64 metric is a prefix of its row-header
	// array (qRows etc.), whose rows are non-overlapping k-wide windows into
	// one flat buffer. appendRow only reslices the public headers, so a step
	// inside reserved capacity allocates nothing.
	k       int // stations per row
	capRows int // allocated row capacity

	// Deep-solve geometry. A dense trajectory starting at population 1 has
	// stride ≤ 1, basePop 0 and solvedN == len(N); row i holds population
	// i+1. A decimated trajectory (stride > 1) stores only populations
	// divisible by stride plus each run's final population; a chunk
	// trajectory (basePop > 0) stores populations basePop+1..solvedN. In
	// both cases N[i] is authoritative and rows stay sorted by population.
	stride  int // store every stride-th population (≤ 1 means dense)
	basePop int // recursion was seeded at this population (rows start after it)
	solvedN int // largest population the recursion has advanced through
	staged  bool

	nBuf   []int
	xBuf   []float64
	rBuf   []float64
	cycBuf []float64

	qFlat, uFlat, resFlat, dFlat []float64
	qRows, uRows, resRows, dRows [][]float64
}

// newEmptyResult allocates a zero-length Result for m with room for capHint
// population steps (0 means lazily allocate on the first appendRow).
func newEmptyResult(algorithm string, m *queueing.Model, capHint int) *Result {
	k := len(m.Stations)
	r := &Result{
		Algorithm:    algorithm,
		ModelName:    m.Name,
		ThinkTime:    m.ThinkTime,
		StationNames: make([]string, k),
		k:            k,
	}
	for i, st := range m.Stations {
		r.StationNames[i] = st.Name
	}
	if capHint > 0 {
		r.reserve(capHint)
	}
	return r
}

// newResult allocates a Result for K stations with N materialized population
// steps (rows zeroed, ready for direct writes by the legacy solver bodies).
func newResult(algorithm string, m *queueing.Model, n int) *Result {
	r := newEmptyResult(algorithm, m, n)
	for i := 0; i < n; i++ {
		r.appendRow()
	}
	return r
}

// reserve grows the backing buffers to hold at least n population steps.
// Growth is geometric and allocates fresh buffers: rows previously exposed
// through Prefix keep their old backing, so concurrent readers of a published
// prefix never observe writes from a later extension.
func (r *Result) reserve(n int) {
	if n <= r.capRows {
		return
	}
	newCap := 2 * r.capRows
	if newCap < n {
		newCap = n
	}
	if newCap < 8 {
		newCap = 8
	}
	rows, k := len(r.N), r.k

	nBuf := make([]int, newCap)
	copy(nBuf, r.nBuf[:rows])
	xBuf := make([]float64, newCap)
	copy(xBuf, r.xBuf[:rows])
	rBuf := make([]float64, newCap)
	copy(rBuf, r.rBuf[:rows])
	cycBuf := make([]float64, newCap)
	copy(cycBuf, r.cycBuf[:rows])
	r.nBuf, r.xBuf, r.rBuf, r.cycBuf = nBuf, xBuf, rBuf, cycBuf

	grow := func(flat []float64) ([]float64, [][]float64) {
		nf := make([]float64, newCap*k)
		copy(nf, flat[:rows*k])
		hdr := make([][]float64, newCap)
		for i := range hdr {
			hdr[i] = nf[i*k : (i+1)*k : (i+1)*k]
		}
		return nf, hdr
	}
	r.qFlat, r.qRows = grow(r.qFlat)
	r.uFlat, r.uRows = grow(r.uFlat)
	r.resFlat, r.resRows = grow(r.resFlat)
	r.dFlat, r.dRows = grow(r.dFlat)

	r.capRows = newCap
	r.reslice(rows)
}

// rowsForPop returns the number of stored rows a run through population
// maxN will occupy, given the trajectory's stride and current frontier.
func (r *Result) rowsForPop(maxN int) int {
	if maxN <= r.solvedN {
		return len(r.N)
	}
	if r.stride <= 1 {
		return len(r.N) + maxN - r.solvedN
	}
	// Kept rows in (solvedN, maxN]: the stride multiples, plus the final
	// population when unaligned.
	return len(r.N) + maxN/r.stride - r.solvedN/r.stride + 1
}

// reslice points the public views at the first n rows of the backing.
func (r *Result) reslice(n int) {
	r.N = r.nBuf[:n]
	r.X = r.xBuf[:n]
	r.R = r.rBuf[:n]
	r.Cycle = r.cycBuf[:n]
	r.QueueLen = r.qRows[:n]
	r.Util = r.uRows[:n]
	r.Residence = r.resRows[:n]
	r.Demands = r.dRows[:n]
}

// appendRow exposes the next dense population row for the solver step to
// fill. Within reserved capacity this is a pure reslice and allocates
// nothing.
func (r *Result) appendRow() {
	rows := len(r.N)
	if rows == r.capRows {
		r.reserve(rows + 1)
	}
	n := r.basePop + rows + 1
	r.nBuf[rows] = n
	r.solvedN = n
	r.reslice(rows + 1)
}

// stageRow exposes a row for population n and returns its index. A staged
// row is provisional: a later stageRow for a higher population reuses it
// (that is how a decimated run skips populations without growing the
// trajectory), commitStaged keeps it, dropStaged discards it. Staged rows
// are always beyond every published prefix, so overwriting them never
// mutates a snapshot.
func (r *Result) stageRow(n int) int {
	if r.staged {
		i := len(r.N) - 1
		r.nBuf[i] = n
		return i
	}
	rows := len(r.N)
	if rows == r.capRows {
		r.reserve(rows + 1)
	}
	r.nBuf[rows] = n
	r.reslice(rows + 1)
	r.staged = true
	return rows
}

// commitStaged makes the currently staged row permanent.
func (r *Result) commitStaged() { r.staged = false }

// dropStaged discards the staged row, if any (used when a step fails so the
// committed prefix stays consistent and resumable).
func (r *Result) dropStaged() {
	if r.staged {
		r.reslice(len(r.N) - 1)
		r.staged = false
	}
}

// truncate drops all but the first rows stored rows (used to discard a
// failed restore so the solver stays fresh).
func (r *Result) truncate(rows int) {
	if rows >= 0 && rows < len(r.N) {
		r.reslice(rows)
		r.staged = false
		if rows == 0 {
			r.solvedN = r.basePop
		} else {
			r.solvedN = r.nBuf[rows-1]
		}
		if len(r.Checkpoints) > rows {
			r.Checkpoints = r.Checkpoints[:rows]
		}
	}
}

// Len returns the number of stored population rows. For dense trajectories
// this equals the largest solved population; decimated or chunked
// trajectories store fewer rows than SolvedN.
func (r *Result) Len() int { return len(r.N) }

// SolvedN returns the largest population the recursion has advanced
// through. For dense full trajectories it equals Len(); a decimated solve
// advances through every population while storing only every stride-th row.
func (r *Result) SolvedN() int {
	if r.solvedN == 0 && len(r.N) > 0 {
		// Externally assembled results (RestoreResult round-trips, hand-built
		// views) may predate the solvedN bookkeeping; the last row is
		// authoritative for them.
		return r.N[len(r.N)-1]
	}
	return r.solvedN
}

// Stride returns the decimation stride (1 for dense trajectories).
func (r *Result) Stride() int {
	if r.stride < 1 {
		return 1
	}
	return r.stride
}

// BasePop returns the population the recursion was seeded at: 0 for a cold
// solve, the checkpoint's population for a chunk solved via ResumeFrom.
// Stored rows cover populations BasePop+1..SolvedN.
func (r *Result) BasePop() int { return r.basePop }

// IndexOf returns the stored row index holding population n, or -1 when n
// was skipped by decimation or is outside the stored range. Dense lookups
// are O(1); decimated lookups binary-search the population column.
func (r *Result) IndexOf(n int) int {
	rows := len(r.N)
	if rows == 0 {
		return -1
	}
	if r.stride <= 1 {
		i := n - r.basePop - 1
		if i < 0 || i >= rows {
			return -1
		}
		return i
	}
	lo, hi := 0, rows
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.N[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < rows && r.N[lo] == n {
		return lo
	}
	return -1
}

// Prefix returns a read-only view of the first n population steps. The view
// shares row storage with r but is safe against later extensions: appends
// within capacity only touch rows ≥ n, and growth reallocates, leaving the
// view's backing untouched. Mutating a view corrupts the parent; treat it as
// immutable.
func (r *Result) Prefix(n int) (*Result, error) {
	if r.Stride() != 1 || r.basePop != 0 {
		return nil, fmt.Errorf("core: prefix of a decimated or chunked trajectory (stride %d, base %d); use PrefixPop",
			r.Stride(), r.basePop)
	}
	if n < 1 || n > len(r.N) {
		return nil, fmt.Errorf("core: prefix %d outside solved range 1..%d", n, len(r.N))
	}
	return r.view(n, n), nil
}

// PrefixPop returns a read-only view of every stored row with population
// ≤ n, for any trajectory geometry. n must not exceed SolvedN; the view's
// SolvedN is n (the recursion demonstrably advanced through it), so a
// decimated view may report SolvedN beyond its last stored row — or hold no
// rows at all when n is below the first stored population. The same
// immutability guarantees as Prefix apply.
func (r *Result) PrefixPop(n int) (*Result, error) {
	if n < 1 || n <= r.basePop || n > r.SolvedN() {
		return nil, fmt.Errorf("core: prefix population %d outside solved range %d..%d",
			n, r.basePop+1, r.SolvedN())
	}
	rows := len(r.N)
	if r.stride <= 1 {
		if d := n - r.basePop; d < rows {
			rows = d
		}
	} else {
		lo, hi := 0, rows
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if r.N[mid] <= n {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		rows = lo
	}
	return r.view(rows, n), nil
}

// view builds the read-only snapshot shared by Prefix and PrefixPop: the
// first rows stored rows, with the recursion known to have advanced through
// population solvedN.
func (r *Result) view(rows, solvedN int) *Result {
	v := &Result{
		Algorithm:    r.Algorithm,
		ModelName:    r.ModelName,
		ThinkTime:    r.ThinkTime,
		StationNames: r.StationNames,
		N:            r.N[:rows:rows],
		X:            r.X[:rows:rows],
		R:            r.R[:rows:rows],
		Cycle:        r.Cycle[:rows:rows],
		QueueLen:     r.QueueLen[:rows:rows],
		Util:         r.Util[:rows:rows],
		Residence:    r.Residence[:rows:rows],
		Demands:      r.Demands[:rows:rows],
		k:            r.k,
		stride:       r.stride,
		basePop:      r.basePop,
		solvedN:      solvedN,
	}
	if len(r.Checkpoints) >= rows && r.stride > 1 {
		v.Checkpoints = r.Checkpoints[:rows:rows]
	}
	return v
}

// At returns the (X, R, Cycle) triple at population n, or an error if n is
// outside the stored rows (including populations skipped by decimation; see
// Recover for those).
func (r *Result) At(n int) (x, resp, cycle float64, err error) {
	i := r.IndexOf(n)
	if i < 0 {
		return 0, 0, 0, fmt.Errorf("core: population %d outside solved range 1..%d", n, len(r.N))
	}
	return r.X[i], r.R[i], r.Cycle[i], nil
}

// MaxThroughput returns the largest throughput in the trajectory and the
// population at which it is attained.
func (r *Result) MaxThroughput() (x float64, n int) {
	for i, v := range r.X {
		if v > x {
			x, n = v, r.N[i]
		}
	}
	return x, n
}

// FinalUtilization returns the per-station utilization row at the largest
// solved population.
func (r *Result) FinalUtilization() []float64 {
	if len(r.Util) == 0 {
		return nil
	}
	out := make([]float64, len(r.Util[len(r.Util)-1]))
	copy(out, r.Util[len(r.Util)-1])
	return out
}

// StationIndex returns the index of the named station, or -1.
func (r *Result) StationIndex(name string) int {
	for i, s := range r.StationNames {
		if s == name {
			return i
		}
	}
	return -1
}

// UtilSeries returns the utilization trajectory of a single station.
func (r *Result) UtilSeries(station int) []float64 {
	out := make([]float64, len(r.Util))
	for i := range r.Util {
		out[i] = r.Util[i][station]
	}
	return out
}

// CheckInvariants verifies the operational-law invariants that every valid
// MVA trajectory must satisfy: Little's law N = X(R+Z) at every step and
// non-negative metrics. It returns the first violation found, or nil. Used
// by property tests and the CLI's self-check. (Monotonicity of R holds only
// for constant demands and is checked separately by CheckMonotone.)
func (r *Result) CheckInvariants() error {
	for i := range r.N {
		n := float64(r.N[i])
		if r.X[i] < 0 || r.R[i] < 0 {
			return fmt.Errorf("core: negative metric at n=%d (X=%g R=%g)", r.N[i], r.X[i], r.R[i])
		}
		lhs := r.X[i] * (r.R[i] + r.ThinkTime)
		if math.Abs(lhs-n) > 1e-6*n {
			return fmt.Errorf("core: Little's law violated at n=%d: X(R+Z)=%g", r.N[i], lhs)
		}
		qsum := 0.0
		for _, q := range r.QueueLen[i] {
			if q < -1e-9 {
				return fmt.Errorf("core: negative queue length at n=%d", r.N[i])
			}
			qsum += q
		}
		if qsum > n*(1+1e-6)+1e-6 {
			return fmt.Errorf("core: queued population %g exceeds N=%d", qsum, r.N[i])
		}
	}
	return nil
}

// CheckMonotone verifies that X is non-decreasing and R is non-decreasing in
// n, which holds for exact MVA with constant demands (but not necessarily
// for MVASD, whose demands fall with concurrency).
func (r *Result) CheckMonotone() error {
	prevR, prevX := 0.0, 0.0
	for i := range r.N {
		if r.R[i] < prevR-1e-9*math.Max(prevR, 1) {
			return fmt.Errorf("core: response time decreased at n=%d: %g < %g", r.N[i], r.R[i], prevR)
		}
		if r.X[i] < prevX-1e-9*math.Max(prevX, 1) {
			return fmt.Errorf("core: throughput decreased at n=%d: %g < %g", r.N[i], r.X[i], prevX)
		}
		prevR, prevX = r.R[i], r.X[i]
	}
	return nil
}
