package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/queueing"
)

// MVASDOptions tunes Algorithm 3.
type MVASDOptions struct {
	// MultiServerOptions embeds the Algorithm-2 step options (verbatim
	// probabilities, marginal tracing).
	MultiServerOptions
	// FixedPointTol is the relative throughput tolerance of the per-step
	// fixed point used when the demand model depends on X (default 1e-10).
	FixedPointTol float64
	// FixedPointMaxIter caps the per-step iterations (default 200).
	FixedPointMaxIter int
	// Damping in (0, 1] scales the throughput update of the fixed point
	// (default 0.5); lower values are more robust for steep demand curves.
	Damping float64
}

func (o *MVASDOptions) defaults() {
	if o.FixedPointTol <= 0 {
		o.FixedPointTol = 1e-10
	}
	if o.FixedPointMaxIter <= 0 {
		o.FixedPointMaxIter = 200
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 0.5
	}
}

// MVASD solves the network with the paper's Algorithm 3: exact multi-server
// MVA in which the service demand of every station is re-evaluated at each
// population step from an interpolated array of measured demands,
//
//	SS_k^n = h(a_k, b_k, n)
//	R_k    = (SS_k^n / C_k)·(1 + Q_k + F_k)       (eq. 11)
//
// The model's station demands are ignored; demands come from the
// DemandModel (visit counts are considered folded into the demands, per the
// Service Demand Law). When the demand model depends on throughput
// (Section-7 mode), each step solves the demand/throughput fixed point by
// damped iteration before committing the recursion state.
func MVASD(m *queueing.Model, maxN int, dm DemandModel, opts MVASDOptions) (*Result, error) {
	return mvasd(context.Background(), m, maxN, dm, opts)
}

func mvasd(ctx context.Context, m *queueing.Model, maxN int, dm DemandModel, opts MVASDOptions) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	if dm == nil {
		return nil, fmt.Errorf("%w: nil demand model", ErrBadRun)
	}
	if dm.Stations() != len(m.Stations) {
		return nil, fmt.Errorf("%w: demand model covers %d stations, model has %d",
			ErrBadRun, dm.Stations(), len(m.Stations))
	}
	opts.defaults()
	stop := stepCancel(ctx)
	res := newResult("mvasd", m, maxN)
	st := newMultiServerState(m)
	demands := make([]float64, len(m.Stations))
	x := 0.0
	for n := 1; n <= maxN; n++ {
		if stop != nil {
			if err := stop(n); err != nil {
				return nil, err
			}
		}
		if !dm.DependsOnThroughput() {
			for k := range demands {
				demands[k] = dm.DemandAt(k, n, 0)
			}
			xn, rTotal := multiServerStep(m, st, demands, n, opts.Verbatim, res.Residence[n-1])
			commitRow(res, m, n, xn, rTotal, demands, st)
			x = xn
			continue
		}
		// Fixed point: demands depend on the throughput this step produces.
		guess := x
		if guess <= 0 {
			// Cold start: optimistic zero-queue estimate at n=1 demands.
			for k := range demands {
				demands[k] = dm.DemandAt(k, n, 0)
			}
			sum := 0.0
			for _, d := range demands {
				sum += d
			}
			guess = float64(n) / (sum + m.ThinkTime)
		}
		var committed bool
		for iter := 0; iter < opts.FixedPointMaxIter; iter++ {
			if stop != nil {
				if err := stop(n); err != nil {
					return nil, err
				}
			}
			for k := range demands {
				demands[k] = dm.DemandAt(k, n, guess)
			}
			trial := st.clone()
			xn, rTotal := multiServerStep(m, trial, demands, n, opts.Verbatim, res.Residence[n-1])
			if math.Abs(xn-guess) <= opts.FixedPointTol*math.Max(guess, 1e-12) {
				*st = *trial
				commitRow(res, m, n, xn, rTotal, demands, st)
				x = xn
				committed = true
				break
			}
			guess += opts.Damping * (xn - guess)
		}
		if !committed {
			return nil, fmt.Errorf("%w: demand/throughput fixed point did not converge at n=%d", ErrBadRun, n)
		}
	}
	res.Algorithm = "mvasd"
	if dm.DependsOnThroughput() {
		res.Algorithm = "mvasd-vs-throughput"
	}
	return res, nil
}

// MVASDSingleServer is the paper's Fig.-8 baseline: the same varying-demand
// recursion but with every multi-server station folded into a single server
// of demand D/C (eq. 8 with normalised demands) instead of the
// marginal-probability correction. The paper shows this under-performs the
// multi-server model, especially when the bottleneck is a multi-core CPU.
func MVASDSingleServer(m *queueing.Model, maxN int, dm DemandModel, opts MVASDOptions) (*Result, error) {
	return mvasdSingleServer(context.Background(), m, maxN, dm, opts)
}

func mvasdSingleServer(ctx context.Context, m *queueing.Model, maxN int, dm DemandModel, opts MVASDOptions) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	if dm == nil {
		return nil, fmt.Errorf("%w: nil demand model", ErrBadRun)
	}
	if dm.Stations() != len(m.Stations) {
		return nil, fmt.Errorf("%w: demand model covers %d stations, model has %d",
			ErrBadRun, dm.Stations(), len(m.Stations))
	}
	opts.defaults()
	stop := stepCancel(ctx)
	res := newResult("mvasd-single-server", m, maxN)
	k := len(m.Stations)
	q := make([]float64, k)
	demands := make([]float64, k)
	for n := 1; n <= maxN; n++ {
		if stop != nil {
			if err := stop(n); err != nil {
				return nil, err
			}
		}
		rTotal := 0.0
		resid := res.Residence[n-1]
		for i, stn := range m.Stations {
			demands[i] = dm.DemandAt(i, n, 0)
			norm := demands[i] / float64(stn.Servers)
			if stn.Kind == queueing.Delay {
				resid[i] = demands[i]
			} else {
				resid[i] = norm * (1 + q[i])
			}
			rTotal += resid[i]
		}
		x := float64(n) / (rTotal + m.ThinkTime)
		for i, stn := range m.Stations {
			q[i] = x * resid[i]
			res.QueueLen[n-1][i] = q[i]
			if stn.Kind == queueing.Delay {
				res.Util[n-1][i] = 0
			} else {
				res.Util[n-1][i] = math.Min(x*demands[i]/float64(stn.Servers), 1)
			}
			res.Demands[n-1][i] = demands[i]
		}
		res.X[n-1] = x
		res.R[n-1] = rTotal
		res.Cycle[n-1] = rTotal + m.ThinkTime
	}
	return res, nil
}
