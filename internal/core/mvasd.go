package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/queueing"
)

// MVASDOptions tunes Algorithm 3.
type MVASDOptions struct {
	// MultiServerOptions embeds the Algorithm-2 step options (verbatim
	// probabilities, marginal tracing).
	MultiServerOptions
	// FixedPointTol is the relative throughput tolerance of the per-step
	// fixed point used when the demand model depends on X (default 1e-10).
	FixedPointTol float64
	// FixedPointMaxIter caps the per-step iterations (default 200).
	FixedPointMaxIter int
	// Damping in (0, 1] scales the throughput update of the fixed point
	// (default 0.5); lower values are more robust for steep demand curves.
	Damping float64
}

func (o *MVASDOptions) defaults() {
	if o.FixedPointTol <= 0 {
		o.FixedPointTol = 1e-10
	}
	if o.FixedPointMaxIter <= 0 {
		o.FixedPointMaxIter = 200
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 0.5
	}
}

// validateDemandModel performs the MVASD-specific entry checks.
func validateDemandModel(m *queueing.Model, dm DemandModel) error {
	if dm == nil {
		return fmt.Errorf("%w: nil demand model", ErrBadRun)
	}
	if dm.Stations() != len(m.Stations) {
		return fmt.Errorf("%w: demand model covers %d stations, model has %d",
			ErrBadRun, dm.Stations(), len(m.Stations))
	}
	return nil
}

// mvasdStepper is the resumable form of Algorithm 3. In throughput mode each
// step runs its fixed point on the trial state double-buffer, so the
// committed state is only advanced by a converged step — a failed or
// cancelled step leaves the prefix resumable.
type mvasdStepper struct {
	m     *queueing.Model
	dm    DemandModel
	opts  MVASDOptions
	st    *multiServerState
	trial *multiServerState // fixed-point scratch, reused every iteration
	dems  []float64
	x     float64 // previous step's throughput: warm start for the fixed point
}

func (s *mvasdStepper) step(res *Result, n, row int, stop func(int) error, hooks *SolveHooks) error {
	m, dm, demands := s.m, s.dm, s.dems
	if !dm.DependsOnThroughput() {
		for k := range demands {
			demands[k] = dm.DemandAt(k, n, 0)
		}
		xn, rTotal := multiServerStep(m, s.st, demands, n, s.opts.Verbatim, res.Residence[row])
		commitRow(res, m, row, xn, rTotal, demands, s.st)
		s.x = xn
		return nil
	}
	// Fixed point: demands depend on the throughput this step produces.
	guess := s.x
	if guess <= 0 {
		// Cold start: optimistic zero-queue estimate at n=1 demands.
		for k := range demands {
			demands[k] = dm.DemandAt(k, n, 0)
		}
		sum := 0.0
		for _, d := range demands {
			sum += d
		}
		guess = float64(n) / (sum + m.ThinkTime)
	}
	resid := 0.0
	for iter := 0; iter < s.opts.FixedPointMaxIter; iter++ {
		if stop != nil {
			if err := stop(n); err != nil {
				return err
			}
		}
		for k := range demands {
			demands[k] = dm.DemandAt(k, n, guess)
		}
		s.trial.copyFrom(s.st)
		xn, rTotal := multiServerStep(m, s.trial, demands, n, s.opts.Verbatim, res.Residence[row])
		resid = math.Abs(xn-guess) / math.Max(guess, 1e-12)
		if math.Abs(xn-guess) <= s.opts.FixedPointTol*math.Max(guess, 1e-12) {
			s.st, s.trial = s.trial, s.st
			commitRow(res, m, row, xn, rTotal, demands, s.st)
			s.x = xn
			hooks.fixedPoint(n, iter+1, resid, true)
			return nil
		}
		guess += s.opts.Damping * (xn - guess)
	}
	hooks.fixedPoint(n, s.opts.FixedPointMaxIter, resid, false)
	return fmt.Errorf("%w: demand/throughput fixed point did not converge at n=%d", ErrBadRun, n)
}

func (s *mvasdStepper) release() {
	s.st.release()
	if s.trial != nil {
		s.trial.release()
	}
	putVec(s.dems)
	s.dems = nil
}

func (s *mvasdStepper) checkpoint(cp *Checkpoint) {
	cp.Queue = append([]float64(nil), s.st.queue...)
	cp.Marginal = cloneVecs(s.st.p)
	cp.X = s.x
}

func (s *mvasdStepper) restore(cp *Checkpoint) error {
	if err := copyQueue(s.st.queue, cp.Queue); err != nil {
		return err
	}
	if err := copyInto(s.st.p, cp.Marginal); err != nil {
		return err
	}
	s.x = cp.X
	return nil
}

// NewMVASDSolver returns a resumable Algorithm-3 solver: demands come from
// dm at every population step (the model's station demands are ignored).
func NewMVASDSolver(m *queueing.Model, dm DemandModel, opts MVASDOptions) (*Solver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := validateDemandModel(m, dm); err != nil {
		return nil, err
	}
	opts.defaults()
	alg := &mvasdStepper{
		m:    m,
		dm:   dm,
		opts: opts,
		st:   newMultiServerState(m),
		dems: getVec(len(m.Stations)),
	}
	name := "mvasd"
	if dm.DependsOnThroughput() {
		name = "mvasd-vs-throughput"
		alg.trial = newMultiServerState(m)
	}
	return newSolver(name, newEmptyResult(name, m, 0), alg), nil
}

// MVASD solves the network with the paper's Algorithm 3: exact multi-server
// MVA in which the service demand of every station is re-evaluated at each
// population step from an interpolated array of measured demands,
//
//	SS_k^n = h(a_k, b_k, n)
//	R_k    = (SS_k^n / C_k)·(1 + Q_k + F_k)       (eq. 11)
//
// The model's station demands are ignored; demands come from the
// DemandModel (visit counts are considered folded into the demands, per the
// Service Demand Law). When the demand model depends on throughput
// (Section-7 mode), each step solves the demand/throughput fixed point by
// damped iteration before committing the recursion state.
func MVASD(m *queueing.Model, maxN int, dm DemandModel, opts MVASDOptions) (*Result, error) {
	return mvasd(context.Background(), m, maxN, dm, opts)
}

func mvasd(ctx context.Context, m *queueing.Model, maxN int, dm DemandModel, opts MVASDOptions) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	s, err := NewMVASDSolver(m, dm, opts)
	if err != nil {
		return nil, err
	}
	return runToCompletion(ctx, s, maxN)
}

// mvasdSingleStepper is the Fig.-8 baseline step: eq. 8 with demands
// normalised by the server count.
type mvasdSingleStepper struct {
	m    *queueing.Model
	dm   DemandModel
	q    []float64
	dems []float64
}

func (s *mvasdSingleStepper) step(res *Result, n, row int, _ func(int) error, _ *SolveHooks) error {
	m, dm, q, demands := s.m, s.dm, s.q, s.dems
	rTotal := 0.0
	resid := res.Residence[row]
	for i, stn := range m.Stations {
		demands[i] = dm.DemandAt(i, n, 0)
		norm := demands[i] / float64(stn.Servers)
		if stn.Kind == queueing.Delay {
			resid[i] = demands[i]
		} else {
			resid[i] = norm * (1 + q[i])
		}
		rTotal += resid[i]
	}
	x := float64(n) / (rTotal + m.ThinkTime)
	for i, stn := range m.Stations {
		q[i] = x * resid[i]
		res.QueueLen[row][i] = q[i]
		if stn.Kind == queueing.Delay {
			res.Util[row][i] = 0
		} else {
			res.Util[row][i] = math.Min(x*demands[i]/float64(stn.Servers), 1)
		}
		res.Demands[row][i] = demands[i]
	}
	res.X[row] = x
	res.R[row] = rTotal
	res.Cycle[row] = rTotal + m.ThinkTime
	return nil
}

func (s *mvasdSingleStepper) release() {
	putVec(s.q)
	putVec(s.dems)
	s.q, s.dems = nil, nil
}

func (s *mvasdSingleStepper) checkpoint(cp *Checkpoint) {
	cp.Queue = append([]float64(nil), s.q...)
}

func (s *mvasdSingleStepper) restore(cp *Checkpoint) error {
	return copyQueue(s.q, cp.Queue)
}

// NewMVASDSingleServerSolver returns a resumable solver for the paper's
// single-server MVASD baseline.
func NewMVASDSingleServerSolver(m *queueing.Model, dm DemandModel, opts MVASDOptions) (*Solver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := validateDemandModel(m, dm); err != nil {
		return nil, err
	}
	opts.defaults()
	k := len(m.Stations)
	return newSolver("mvasd-single-server", newEmptyResult("mvasd-single-server", m, 0),
		&mvasdSingleStepper{m: m, dm: dm, q: getVec(k), dems: getVec(k)}), nil
}

// MVASDSingleServer is the paper's Fig.-8 baseline: the same varying-demand
// recursion but with every multi-server station folded into a single server
// of demand D/C (eq. 8 with normalised demands) instead of the
// marginal-probability correction. The paper shows this under-performs the
// multi-server model, especially when the bottleneck is a multi-core CPU.
func MVASDSingleServer(m *queueing.Model, maxN int, dm DemandModel, opts MVASDOptions) (*Result, error) {
	return mvasdSingleServer(context.Background(), m, maxN, dm, opts)
}

func mvasdSingleServer(ctx context.Context, m *queueing.Model, maxN int, dm DemandModel, opts MVASDOptions) (*Result, error) {
	if err := validateRun(m, maxN); err != nil {
		return nil, err
	}
	s, err := NewMVASDSingleServerSolver(m, dm, opts)
	if err != nil {
		return nil, err
	}
	return runToCompletion(ctx, s, maxN)
}
