package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/queueing"
)

func solverTestModel() *queueing.Model {
	return &queueing.Model{
		Name:      "solver-test",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "app/cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.02},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 1, Visits: 3, ServiceTime: 0.005},
			{Name: "lan", Kind: queueing.Delay, Servers: 1, Visits: 1, ServiceTime: 0.004},
		},
	}
}

// solverAlgorithms enumerates every algorithm behind the Solver engine, each
// with a cold one-shot reference solve and a fresh resumable solver.
func solverAlgorithms(t *testing.T, m *queueing.Model) map[string]struct {
	cold  func(maxN int) *Result
	fresh func() *Solver
} {
	t.Helper()
	dm := ConstantDemands(m.Demands())
	base := m.Demands()
	tdm := throughputFunc{k: len(base), f: func(station, n int, x float64) float64 {
		return base[station] / (1 + 0.02*x)
	}}
	must := func(res *Result, err error) *Result {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mustS := func(s *Solver, err error) *Solver {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return map[string]struct {
		cold  func(maxN int) *Result
		fresh func() *Solver
	}{
		"exact": {
			cold:  func(n int) *Result { return must(ExactMVA(m, n)) },
			fresh: func() *Solver { return mustS(NewExactMVASolver(m)) },
		},
		"schweitzer": {
			cold:  func(n int) *Result { return must(Schweitzer(m, n, SchweitzerOptions{})) },
			fresh: func() *Solver { return mustS(NewSchweitzerSolver(m, SchweitzerOptions{})) },
		},
		"multiserver": {
			cold: func(n int) *Result {
				res, _, err := ExactMVAMultiServer(m, n, MultiServerOptions{TraceStation: -1})
				return must(res, err)
			},
			fresh: func() *Solver { return mustS(NewMultiServerSolver(m, MultiServerOptions{TraceStation: -1})) },
		},
		"multiserver-verbatim": {
			cold: func(n int) *Result {
				res, _, err := ExactMVAMultiServer(m, n, MultiServerOptions{Verbatim: true, TraceStation: -1})
				return must(res, err)
			},
			fresh: func() *Solver {
				return mustS(NewMultiServerSolver(m, MultiServerOptions{Verbatim: true, TraceStation: -1}))
			},
		},
		"mvasd": {
			cold:  func(n int) *Result { return must(MVASD(m, n, dm, MVASDOptions{})) },
			fresh: func() *Solver { return mustS(NewMVASDSolver(m, dm, MVASDOptions{})) },
		},
		"mvasd-vs-throughput": {
			cold:  func(n int) *Result { return must(MVASD(m, n, tdm, MVASDOptions{})) },
			fresh: func() *Solver { return mustS(NewMVASDSolver(m, tdm, MVASDOptions{})) },
		},
		"mvasd-1s": {
			cold:  func(n int) *Result { return must(MVASDSingleServer(m, n, dm, MVASDOptions{})) },
			fresh: func() *Solver { return mustS(NewMVASDSingleServerSolver(m, dm, MVASDOptions{})) },
		},
		"load-dependent": {
			cold:  func(n int) *Result { return must(LoadDependentMVA(m, n, nil)) },
			fresh: func() *Solver { return mustS(NewLoadDependentSolver(m, nil)) },
		},
	}
}

// requireBitIdentical fails unless a and b hold exactly the same trajectory
// (float comparison is ==, not approximate: prefix reuse must not perturb a
// single bit).
func requireBitIdentical(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Algorithm != b.Algorithm {
		t.Fatalf("algorithm %q vs %q", a.Algorithm, b.Algorithm)
	}
	if len(a.N) != len(b.N) {
		t.Fatalf("length %d vs %d", len(a.N), len(b.N))
	}
	for i := range a.N {
		if a.N[i] != b.N[i] || a.X[i] != b.X[i] || a.R[i] != b.R[i] || a.Cycle[i] != b.Cycle[i] {
			t.Fatalf("scalar row %d differs: N %d/%d X %v/%v R %v/%v Cycle %v/%v",
				i, a.N[i], b.N[i], a.X[i], b.X[i], a.R[i], b.R[i], a.Cycle[i], b.Cycle[i])
		}
		for k := range a.QueueLen[i] {
			if a.QueueLen[i][k] != b.QueueLen[i][k] || a.Util[i][k] != b.Util[i][k] ||
				a.Residence[i][k] != b.Residence[i][k] || a.Demands[i][k] != b.Demands[i][k] {
				t.Fatalf("station row %d/%d differs", i, k)
			}
		}
	}
}

// TestSolverExtendBitIdentical is the engine's core contract: running to an
// intermediate population and extending (twice, crossing a capacity growth)
// yields exactly the trajectory of a cold solve at the final population.
func TestSolverExtendBitIdentical(t *testing.T) {
	m := solverTestModel()
	for name, alg := range solverAlgorithms(t, m) {
		t.Run(name, func(t *testing.T) {
			const final = 60
			want := alg.cold(final)
			s := alg.fresh()
			defer s.Release()
			if err := s.Run(17); err != nil {
				t.Fatal(err)
			}
			if got := s.N(); got != 17 {
				t.Fatalf("N() = %d after Run(17)", got)
			}
			if err := s.Extend(41); err != nil {
				t.Fatal(err)
			}
			if err := s.Extend(final); err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, want, s.Result())
		})
	}
}

// TestSolverPrefixView: a prefix snapshot matches a cold solve at that
// population and is immune to later extensions of the parent solver.
func TestSolverPrefixView(t *testing.T) {
	m := solverTestModel()
	for name, alg := range solverAlgorithms(t, m) {
		t.Run(name, func(t *testing.T) {
			s := alg.fresh()
			defer s.Release()
			if err := s.Run(20); err != nil {
				t.Fatal(err)
			}
			pre, err := s.Result().Prefix(20)
			if err != nil {
				t.Fatal(err)
			}
			// Extend far enough to force at least one geometric growth.
			if err := s.Extend(300); err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, alg.cold(20), pre)
			if _, err := s.Result().Prefix(0); err == nil {
				t.Error("Prefix(0) succeeded")
			}
			if _, err := s.Result().Prefix(301); err == nil {
				t.Error("Prefix beyond solved range succeeded")
			}
		})
	}
}

// TestPrefixImmuneToConcurrentExtend drives the service's publication
// pattern under the race detector: readers iterate a published prefix while
// the owner extends the same solver through multiple growths.
func TestPrefixImmuneToConcurrentExtend(t *testing.T) {
	m := solverTestModel()
	s, err := NewExactMVASolver(m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if err := s.Run(50); err != nil {
		t.Fatal(err)
	}
	pre, err := s.Result().Prefix(50)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			sum := 0.0
			for i := range pre.N {
				sum += pre.X[i] + pre.QueueLen[i][0]
			}
			_ = sum
		}
	}()
	for n := 100; n <= 3000; n += 100 {
		if err := s.Extend(n); err != nil {
			t.Fatal(err)
		}
	}
	close(stopRead)
	wg.Wait()
	if got := pre.X[49]; got != s.Result().X[49] {
		t.Fatalf("prefix row diverged: %v vs %v", got, s.Result().X[49])
	}
}

func TestSolverRunBounds(t *testing.T) {
	m := solverTestModel()
	s, err := NewExactMVASolver(m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	if err := s.Run(0); !errors.Is(err, ErrBadRun) {
		t.Fatalf("Run(0) err = %v", err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	// Running to a smaller or equal population is a no-op, not a re-solve.
	if err := s.Run(5); err != nil || s.N() != 10 {
		t.Fatalf("Run(5) after Run(10): err=%v N=%d", err, s.N())
	}
	s.Release()
	if err := s.Run(20); !errors.Is(err, ErrBadRun) {
		t.Fatalf("Run after Release err = %v", err)
	}
}

// TestExactMVAStepAllocs is the hot-path regression guard: inside reserved
// capacity, an exact-MVA population step must not allocate.
func TestExactMVAStepAllocs(t *testing.T) {
	m := solverTestModel()
	s, err := NewExactMVASolver(m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	const runs = 200
	// AllocsPerRun invokes the body runs+1 times (one warm-up call).
	s.Reserve(runs + 2)
	n := 0
	allocs := testing.AllocsPerRun(runs, func() {
		n++
		if err := s.Extend(n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("exact-MVA step allocates %.2f objects/op, want 0", allocs)
	}
}
