package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/queueing"
)

// randModel builds an arbitrary valid model from a seed.
func randModel(seed int64) *queueing.Model {
	rng := rand.New(rand.NewSource(seed))
	m := &queueing.Model{Name: "prop", ThinkTime: rng.Float64() * 3}
	k := 1 + rng.Intn(6)
	for i := 0; i < k; i++ {
		kind := queueing.CPU
		servers := 1
		switch rng.Intn(3) {
		case 0:
			kind, servers = queueing.CPU, 1+rng.Intn(16)
		case 1:
			kind = queueing.Disk
		case 2:
			kind = queueing.Delay
		}
		m.Stations = append(m.Stations, queueing.Station{
			Name: "s" + string(rune('a'+i)), Kind: kind, Servers: servers,
			Visits: 0.25 + rng.Float64()*2, ServiceTime: 0.001 + rng.Float64()*0.02,
		})
	}
	return m
}

// TestQuickSolversSatisfyLittlesLaw: every solver's trajectory satisfies
// X(R+Z) = n at every population for arbitrary models.
func TestQuickSolversSatisfyLittlesLaw(t *testing.T) {
	f := func(seed int64) bool {
		m := randModel(seed)
		maxN := 60
		runs := []func() (*Result, error){
			func() (*Result, error) { return ExactMVA(m, maxN) },
			func() (*Result, error) { return Schweitzer(m, maxN, SchweitzerOptions{}) },
			func() (*Result, error) {
				r, _, err := ExactMVAMultiServer(m, maxN, MultiServerOptions{TraceStation: -1})
				return r, err
			},
			func() (*Result, error) { return LoadDependentMVA(m, maxN, nil) },
			func() (*Result, error) { return SeidmannMVA(m, maxN) },
			func() (*Result, error) {
				return MVASD(m, maxN, ConstantDemands(m.Demands()), MVASDOptions{})
			},
		}
		for i, run := range runs {
			res, err := run()
			if err != nil {
				t.Logf("seed %d solver %d: %v", seed, i, err)
				return false
			}
			if err := res.CheckInvariants(); err != nil {
				t.Logf("seed %d solver %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickBottleneckBound: every solver respects X ≤ 1/Dmax (with Dmax
// normalised by server counts) for arbitrary models.
func TestQuickBottleneckBound(t *testing.T) {
	f := func(seed int64) bool {
		m := randModel(seed)
		dmax, idx := m.MaxDemand()
		if idx < 0 {
			return true // delay-only network: unbounded
		}
		bound := (1 / dmax) * (1 + 1e-6)
		maxN := 80
		msRes, _, err := ExactMVAMultiServer(m, maxN, MultiServerOptions{TraceStation: -1})
		if err != nil {
			return false
		}
		ldRes, err := LoadDependentMVA(m, maxN, nil)
		if err != nil {
			return false
		}
		for i := range msRes.X {
			if msRes.X[i] > bound || ldRes.X[i] > bound {
				t.Logf("seed %d n=%d: X ms=%g ld=%g bound=%g", seed, i+1, msRes.X[i], ldRes.X[i], 1/dmax)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMoreServersNeverHurt: adding a core to any station never lowers
// the exact load-dependent throughput at any population.
func TestQuickMoreServersNeverHurt(t *testing.T) {
	f := func(seed int64) bool {
		m := randModel(seed)
		// Pick a non-delay station to upgrade.
		target := -1
		for i, st := range m.Stations {
			if st.Kind != queueing.Delay {
				target = i
				break
			}
		}
		if target < 0 {
			return true
		}
		upgraded := *m
		upgraded.Stations = append([]queueing.Station(nil), m.Stations...)
		upgraded.Stations[target].Servers++
		maxN := 50
		base, err := LoadDependentMVA(m, maxN, nil)
		if err != nil {
			return false
		}
		more, err := LoadDependentMVA(&upgraded, maxN, nil)
		if err != nil {
			return false
		}
		for i := range base.X {
			if more.X[i] < base.X[i]*(1-1e-9) {
				t.Logf("seed %d n=%d: upgrade lowered X %g → %g", seed, i+1, base.X[i], more.X[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickOpenNetworkLittle: the open solver satisfies N = λ·R and per-
// station L_k = λ_k·W_k for arbitrary stable networks.
func TestQuickOpenNetworkLittle(t *testing.T) {
	f := func(seed int64, lamRaw float64) bool {
		m := randModel(seed)
		sat := SaturationRate(m)
		if math.IsInf(sat, 1) {
			sat = 100
		}
		lambda := math.Mod(math.Abs(lamRaw), 0.9) * sat // keep stable
		res, err := OpenNetwork(m, lambda)
		if err != nil {
			return false
		}
		if !res.Stable {
			return false
		}
		if !almost(res.Population, lambda*res.ResponseTime, 1e-9) {
			return false
		}
		for k := range m.Stations {
			if !almost(res.QueueLen[k], lambda*res.Residence[k], 1e-9) {
				t.Logf("seed %d station %d: L=%g λW=%g", seed, k, res.QueueLen[k], lambda*res.Residence[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickOpenMatchesClosedLimit: for a closed network with huge think
// time, throughput approaches N/Z and station metrics approach the open
// network's at λ = N/Z (the standard open/closed correspondence).
func TestQuickOpenMatchesClosedLimit(t *testing.T) {
	f := func(seed int64) bool {
		m := randModel(seed)
		m.ThinkTime = 1000 // light-load regime
		n := 20
		closed, err := LoadDependentMVA(m, n, nil)
		if err != nil {
			return false
		}
		lambda := closed.X[n-1]
		open, err := OpenNetwork(m, lambda)
		if err != nil || !open.Stable {
			return false
		}
		// Closed R at the light-load limit approaches the open W.
		return almost(closed.R[n-1], open.ResponseTime, 0.05)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func almost(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-12)
}
