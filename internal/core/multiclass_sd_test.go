package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/queueing"
)

func mcsdModel() *queueing.Model {
	return &queueing.Model{
		Name: "mcsd",
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.02},
		},
	}
}

func TestMulticlassMVASDConstantReducesToMulticlassMVA(t *testing.T) {
	m := mcsdModel()
	classes := []ClassSpec{
		{Name: "a", Population: 6, ThinkTime: 1, Demands: []float64{0.01, 0.02}},
		{Name: "b", Population: 4, ThinkTime: 0.5, Demands: []float64{0.03, 0.005}},
	}
	dms := []DemandModel{
		ConstantDemands{0.01, 0.02},
		ConstantDemands{0.03, 0.005},
	}
	sd, err := MulticlassMVASD(m, classes, dms)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MulticlassMVA(m, classes)
	if err != nil {
		t.Fatal(err)
	}
	for c := range classes {
		if math.Abs(sd.X[c]-plain.X[c]) > 1e-12*plain.X[c] {
			t.Fatalf("class %d: X %g vs %g", c, sd.X[c], plain.X[c])
		}
		if math.Abs(sd.R[c]-plain.R[c]) > 1e-12*math.Max(plain.R[c], 1e-12) {
			t.Fatalf("class %d: R %g vs %g", c, sd.R[c], plain.R[c])
		}
	}
}

func TestMulticlassMVASDSingleClassMatchesMVASDSingleServer(t *testing.T) {
	// One class on single-server stations with demands varying by total
	// population: the vector recursion degenerates to the single-class
	// varying-demand recursion (MVASDSingleServer with C=1 stations).
	m := mcsdModel()
	m.ThinkTime = 0 // think time carried by the class spec below
	const n = 40
	samples := []DemandSamples{
		{At: []float64{1, 20, 40}, Demands: []float64{0.010, 0.008, 0.007}},
		{At: []float64{1, 20, 40}, Demands: []float64{0.020, 0.017, 0.016}},
	}
	dm, err := NewCurveDemands(interp.PCHIP, samples, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MulticlassMVASD(m, []ClassSpec{
		{Name: "only", Population: n, ThinkTime: 1},
	}, []DemandModel{dm})
	if err != nil {
		t.Fatal(err)
	}
	ref := *m
	ref.ThinkTime = 1
	single, err := MVASDSingleServer(&ref, n, dm, MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.X[0]-single.X[n-1]) > 1e-9*single.X[n-1] {
		t.Fatalf("X multiclass %g vs single-class %g", mc.X[0], single.X[n-1])
	}
	if math.Abs(mc.R[0]-single.R[n-1]) > 1e-9*math.Max(single.R[n-1], 1e-12) {
		t.Fatalf("R multiclass %g vs single-class %g", mc.R[0], single.R[n-1])
	}
}

func TestMulticlassMVASDDecayBeatsConstant(t *testing.T) {
	// Two classes whose demands fall with total load: the varying-demand
	// solution yields higher aggregate throughput than freezing demands at
	// the single-user values.
	m := mcsdModel()
	classes := []ClassSpec{
		{Name: "a", Population: 15, ThinkTime: 1, Demands: []float64{0.010, 0.020}},
		{Name: "b", Population: 15, ThinkTime: 1, Demands: []float64{0.010, 0.020}},
	}
	decay := FuncDemands{K: 2, F: func(k, n int) float64 {
		base := []float64{0.010, 0.020}[k]
		return base * (0.6 + 0.4*math.Exp(-float64(n-1)/10))
	}}
	sd, err := MulticlassMVASD(m, classes, []DemandModel{decay, decay})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MulticlassMVA(m, classes)
	if err != nil {
		t.Fatal(err)
	}
	if sd.X[0]+sd.X[1] <= plain.X[0]+plain.X[1] {
		t.Fatalf("varying demands aggregate X %g should exceed constant %g",
			sd.X[0]+sd.X[1], plain.X[0]+plain.X[1])
	}
	// Little's law per class still holds.
	for c, spec := range classes {
		implied := sd.X[c] * (sd.R[c] + spec.ThinkTime)
		if math.Abs(implied-float64(spec.Population)) > 1e-6*float64(spec.Population) {
			t.Fatalf("class %d: Little gives %g, want %d", c, implied, spec.Population)
		}
	}
}

func TestMulticlassMVASDErrors(t *testing.T) {
	m := mcsdModel()
	classes := []ClassSpec{{Name: "a", Population: 2, Demands: []float64{1, 1}}}
	good := []DemandModel{ConstantDemands{0.01, 0.02}}
	if _, err := MulticlassMVASD(m, nil, nil); !errors.Is(err, ErrBadRun) {
		t.Errorf("no classes: %v", err)
	}
	if _, err := MulticlassMVASD(m, classes, nil); !errors.Is(err, ErrBadRun) {
		t.Errorf("model count mismatch: %v", err)
	}
	if _, err := MulticlassMVASD(m, classes, []DemandModel{nil}); !errors.Is(err, ErrBadRun) {
		t.Errorf("nil model: %v", err)
	}
	if _, err := MulticlassMVASD(m, classes, []DemandModel{ConstantDemands{1}}); !errors.Is(err, ErrBadRun) {
		t.Errorf("station mismatch: %v", err)
	}
	td, err := NewThroughputDemands(interp.Linear,
		[]DemandSamples{
			{At: []float64{0, 1}, Demands: []float64{1, 1}},
			{At: []float64{0, 1}, Demands: []float64{1, 1}},
		}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MulticlassMVASD(m, classes, []DemandModel{td}); !errors.Is(err, ErrBadRun) {
		t.Errorf("throughput-dependent model: %v", err)
	}
	ms := mcsdModel()
	ms.Stations[0].Servers = 4
	if _, err := MulticlassMVASD(ms, classes, good); !errors.Is(err, ErrBadRun) {
		t.Errorf("multi-server station: %v", err)
	}
	bad := []ClassSpec{{Name: "a", Population: -1}}
	if _, err := MulticlassMVASD(m, bad, good); !errors.Is(err, ErrBadRun) {
		t.Errorf("negative population: %v", err)
	}
}

func TestMulticlassMVASDZeroPopulation(t *testing.T) {
	m := mcsdModel()
	res, err := MulticlassMVASD(m,
		[]ClassSpec{{Name: "a", Population: 0}},
		[]DemandModel{ConstantDemands{0.01, 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 0 {
		t.Fatalf("X = %g", res.X[0])
	}
}
