package loadgen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

// referenceThroughput solves the profile's model at fixed concurrency n
// (demands frozen at D(n)) with the exact load-dependent MVA — the
// analytical mean the simulator should reproduce at that operating point.
func referenceThroughput(p *testbed.Profile, n int) (float64, error) {
	res, err := core.LoadDependentMVA(p.Model(n), n, nil)
	if err != nil {
		return 0, err
	}
	return res.X[n-1], nil
}

func TestVirtualUsersFormula(t *testing.T) {
	p := Properties{Agents: 2, Processes: 3, Threads: 5}
	if p.VirtualUsers() != 30 {
		t.Errorf("VirtualUsers = %d, want 30", p.VirtualUsers())
	}
}

func TestPropertiesForHitsTargetExactly(t *testing.T) {
	for _, users := range []int{1, 7, 23, 25, 26, 90, 203, 717, 1500} {
		p := PropertiesFor(users, 600)
		if got := p.VirtualUsers(); got != users {
			t.Errorf("users=%d: VirtualUsers = %d (%d proc × %d thr)",
				users, got, p.Processes, p.Threads)
		}
		if users > 25 && p.Threads > 25 {
			t.Errorf("users=%d: %d threads per process exceeds the sizing cap", users, p.Threads)
		}
	}
}

func TestStartTimesRampUp(t *testing.T) {
	p := Properties{
		Agents: 1, Processes: 10, Threads: 5, Duration: 100,
		InitialSleepTime: 2, ProcessIncrement: 2, ProcessIncrementInterval: 10,
	}
	rng := rand.New(rand.NewSource(1))
	starts := p.StartTimes(rng)
	if len(starts) != 50 {
		t.Fatalf("%d start times", len(starts))
	}
	// First process's threads start within the initial sleep window.
	for _, s := range starts[:5] {
		if s < 0 || s > 2 {
			t.Errorf("first-process start %g outside [0,2]", s)
		}
	}
	// Last process (index 9) starts at floor(9/2)·10 = 40 s plus jitter.
	for _, s := range starts[45:] {
		if s < 40 || s > 42 {
			t.Errorf("last-process start %g outside [40,42]", s)
		}
	}
	if span := p.rampSpan(); span != 42 {
		t.Errorf("rampSpan = %g, want 42", span)
	}
}

func TestPropertiesValidation(t *testing.T) {
	bad := []Properties{
		{Agents: 0, Processes: 1, Threads: 1, Duration: 10},
		{Agents: 1, Processes: 1, Threads: 1, Duration: 0},
		{Agents: 1, Processes: 1, Threads: 1, Duration: 10, InitialSleepTime: -1},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if _, err := Run(Test{Profile: nil}); err == nil {
		t.Error("nil profile should error")
	}
	if _, err := Run(Test{Profile: testbed.VINS()}); err == nil {
		t.Error("zero-value properties should error")
	}
	if _, err := Sweep(testbed.VINS(), nil, SweepConfig{}); err == nil {
		t.Error("empty sweep should error")
	}
}

func TestRunProducesConsistentMeasurement(t *testing.T) {
	p := testbed.JPetStore()
	res, err := Run(Test{
		Profile: p,
		Props:   PropertiesFor(70, 800),
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Concurrency != 70 {
		t.Fatalf("concurrency %d", res.Concurrency)
	}
	// Little's law on the measured means.
	implied := res.Stats.Throughput * res.Stats.CycleTime
	if metrics.RelErr(implied, 70) > 0.03 {
		t.Errorf("X(R+Z) = %.1f, want 70", implied)
	}
	// Demands extracted via the Service Demand Law track the true curves.
	truth := p.TrueDemands(70)
	for k := range truth {
		if truth[k] < 1e-4 {
			continue // tiny demands are noise-dominated
		}
		if rel := metrics.RelErr(res.Demands[k], truth[k]); rel > 0.10 {
			t.Errorf("station %s: demand %.5f vs truth %.5f (%.0f%%)",
				res.StationNames[k], res.Demands[k], truth[k], rel*100)
		}
	}
}

func TestSweepOrderingAndShape(t *testing.T) {
	p := testbed.JPetStore()
	levels := []int{1, 28, 140}
	results, err := Sweep(p, levels, SweepConfig{Duration: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	ns, xs, cycles := MeasuredSeries(results)
	for i, n := range levels {
		if ns[i] != n {
			t.Errorf("row %d concurrency %d, want %d", i, ns[i], n)
		}
	}
	// Throughput grows with offered load below saturation.
	if !(xs[0] < xs[1] && xs[1] < xs[2]) {
		t.Errorf("throughput not increasing: %v", xs)
	}
	// Cycle time at N=1 is ≈ ΣD(1) + Z.
	m := p.Model(1)
	want := m.TotalDemand() + p.ThinkTime
	if metrics.RelErr(cycles[0], want) > 0.10 {
		t.Errorf("cycle(1) = %.3f, want ≈%.3f", cycles[0], want)
	}
}

func TestSteadyStateStart(t *testing.T) {
	var s metrics.Series
	// 20 climbing windows then 80 flat ones.
	for i := 0; i < 20; i++ {
		s.Append(float64(i*10), float64(i))
	}
	for i := 20; i < 100; i++ {
		s.Append(float64(i*10), 20)
	}
	t0 := SteadyStateStart(&s)
	if t0 < 100 || t0 > 300 {
		t.Errorf("steady state detected at %g s, want near 200", t0)
	}
	if SteadyStateStart(nil) != 0 {
		t.Error("nil series must return 0")
	}
	if SteadyStateStart(&metrics.Series{}) != 0 {
		t.Error("empty series must return 0")
	}
}

func TestRampUpVisibleInSeries(t *testing.T) {
	// Fig. 1: with a slow ramp the early TPS windows sit well below steady
	// state.
	p := testbed.JPetStore()
	res, err := Run(Test{
		Profile: p,
		Props: Properties{
			Agents: 1, Processes: 10, Threads: 7, Duration: 600,
			InitialSleepTime: 5, ProcessIncrement: 1, ProcessIncrementInterval: 20,
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	series := res.Stats.TPSSeries
	if series == nil || len(series.Points) < 30 {
		t.Fatal("missing TPS series")
	}
	early, err := metrics.Summarize(series.Values()[:5])
	if err != nil {
		t.Fatal(err)
	}
	tail := series.After(300)
	late, err := metrics.Summarize(tail.Values())
	if err != nil {
		t.Fatal(err)
	}
	if early.Mean > late.Mean*0.7 {
		t.Errorf("ramp-up transient not visible: early %.1f vs late %.1f", early.Mean, late.Mean)
	}
}

func TestVINSLoadTestAgainstOracle(t *testing.T) {
	// One mid-range VINS point: measured X must be near MVASD-oracle's
	// prediction at the same N (both sides of the experiment pipeline).
	if testing.Short() {
		t.Skip("long VINS run")
	}
	p := testbed.VINS()
	res, err := Run(Test{Profile: p, Props: PropertiesFor(203, 800), Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	// The model at fixed N=203 demands (constant) solved exactly gives the
	// reference mean.
	ref, err := referenceThroughput(p, 203)
	if err != nil {
		t.Fatal(err)
	}
	if rel := metrics.RelErr(res.Stats.Throughput, ref); rel > 0.05 {
		t.Errorf("VINS N=203: measured %.2f vs reference %.2f (%.1f%%)",
			res.Stats.Throughput, ref, rel*100)
	}
	if math.IsNaN(res.Stats.ResponseTime) || res.Stats.ResponseTime <= 0 {
		t.Errorf("bad response time %g", res.Stats.ResponseTime)
	}
}

func TestRunsBoundedTest(t *testing.T) {
	// grinder.runs semantics: each virtual user retires after R
	// transactions, so a long window measures exactly N·R completions
	// (minus those finishing during warm-up).
	p := testbed.JPetStore()
	props := Properties{
		Agents: 1, Processes: 2, Threads: 5, Runs: 20,
		Duration: 2000,
	}
	res, err := Run(Test{Profile: p, Props: props, Seed: 13, ExtraWarmup: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	total := props.VirtualUsers() * props.Runs
	if res.Stats.Completed > total {
		t.Fatalf("completed %d > N·R = %d", res.Stats.Completed, total)
	}
	// With a tiny warm-up nearly all transactions land in the window.
	if res.Stats.Completed < total*9/10 {
		t.Fatalf("completed %d, want ≈%d", res.Stats.Completed, total)
	}
}

func TestPercentileCollection(t *testing.T) {
	p := testbed.JPetStore()
	res, err := Run(Test{
		Profile:           p,
		Props:             PropertiesFor(28, 400),
		Seed:              21,
		PercentileSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p50, err := res.Stats.ResponsePercentile(50)
	if err != nil {
		t.Fatal(err)
	}
	p99, err := res.Stats.ResponsePercentile(99)
	if err != nil {
		t.Fatal(err)
	}
	if !(p50 > 0 && p99 > p50) {
		t.Fatalf("P50=%g P99=%g", p50, p99)
	}
}
