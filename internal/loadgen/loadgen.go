// Package loadgen is the Grinder-style load-test controller over the
// discrete-event testbed: it reproduces the workload semantics of the
// paper's Section 4.1 — agents × worker processes × worker threads of
// virtual users, gradual ramp-up via process increments and initial sleep
// times, duration- or run-bound tests, think times — and extracts
// steady-state throughput/response-time measurements the way a performance
// engineer trims The Grinder's transient (the paper's Fig. 1).
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/simulation"
	"repro/internal/testbed"
)

// Properties mirrors the grinder.properties parameters the paper lists.
type Properties struct {
	// Agents is the number of load-injector machines.
	Agents int
	// Processes is grinder.processes, worker processes per agent.
	Processes int
	// Threads is grinder.threads, worker threads (virtual users) per process.
	Threads int
	// Runs is grinder.runs: transactions each virtual user performs before
	// retiring (0 = unbounded, duration-terminated).
	Runs int
	// Duration is grinder.duration: virtual seconds each worker runs
	// (measured after ramp-up and warm-up trimming).
	Duration float64
	// InitialSleepTime is grinder.initialSleepTime: the maximum time each
	// thread waits before starting (threads draw uniformly from
	// [0, InitialSleepTime]), in seconds.
	InitialSleepTime float64
	// ProcessIncrement is grinder.processIncrement: how many worker
	// processes each agent starts per increment interval. 0 starts all
	// processes immediately.
	ProcessIncrement int
	// ProcessIncrementInterval is grinder.processIncrementInterval in
	// seconds.
	ProcessIncrementInterval float64
}

// VirtualUsers is the paper's formula: threads × processes × agents.
func (p Properties) VirtualUsers() int {
	return p.Agents * p.Processes * p.Threads
}

// validate checks the properties are runnable.
func (p Properties) validate() error {
	if p.Agents < 1 || p.Processes < 1 || p.Threads < 1 {
		return fmt.Errorf("loadgen: need at least one agent/process/thread, got %d/%d/%d",
			p.Agents, p.Processes, p.Threads)
	}
	if p.Duration <= 0 {
		return errors.New("loadgen: duration must be positive")
	}
	if p.InitialSleepTime < 0 || p.ProcessIncrementInterval < 0 || p.ProcessIncrement < 0 {
		return errors.New("loadgen: negative ramp-up parameter")
	}
	if p.Runs < 0 {
		return errors.New("loadgen: negative run count")
	}
	return nil
}

// StartTimes realises the ramp-up schedule: process k of an agent starts at
// (k / ProcessIncrement) · ProcessIncrementInterval, and each of its threads
// adds an independent uniform initial sleep.
func (p Properties) StartTimes(rng *rand.Rand) []float64 {
	starts := make([]float64, 0, p.VirtualUsers())
	for a := 0; a < p.Agents; a++ {
		for proc := 0; proc < p.Processes; proc++ {
			base := 0.0
			if p.ProcessIncrement > 0 && p.ProcessIncrementInterval > 0 {
				base = float64(proc/p.ProcessIncrement) * p.ProcessIncrementInterval
			}
			for th := 0; th < p.Threads; th++ {
				jitter := 0.0
				if p.InitialSleepTime > 0 {
					jitter = rng.Float64() * p.InitialSleepTime
				}
				starts = append(starts, base+jitter)
			}
		}
	}
	return starts
}

// rampSpan returns the virtual time until the last process has started.
func (p Properties) rampSpan() float64 {
	span := p.InitialSleepTime
	if p.ProcessIncrement > 0 && p.ProcessIncrementInterval > 0 {
		span += float64((p.Processes-1)/p.ProcessIncrement) * p.ProcessIncrementInterval
	}
	return span
}

// Test is one load test against a testbed profile.
type Test struct {
	// Profile is the environment under test.
	Profile *testbed.Profile
	// Props are the Grinder workload parameters.
	Props Properties
	// Seed drives all randomness.
	Seed int64
	// ExtraWarmup adds settle time (seconds) after the ramp before
	// measurement begins; default 100 s.
	ExtraWarmup float64
	// ServiceDist / ThinkDist override the simulator distributions
	// (default exponential, the product-form reference).
	ServiceDist simulation.Distribution
	ThinkDist   simulation.Distribution
	// WindowSize is the TPS-series window (default 10 s).
	WindowSize float64
	// PercentileSamples enables response-time percentile collection with
	// the given reservoir size (0 disables).
	PercentileSamples int
}

// Result is the measured outcome of one load test.
type Result struct {
	// Concurrency is the number of virtual users.
	Concurrency int
	// Stats is the raw steady-state measurement.
	Stats *simulation.Stats
	// Demands are the per-station service demands extracted through the
	// Service Demand Law (paper eq. 3) from the measured utilizations.
	Demands []float64
	// StationNames label the demand/utilization axes.
	StationNames []string
}

// Run executes the load test: it realises the ramp-up schedule, runs the
// testbed simulation at the configured concurrency (the profile's demand
// curves are evaluated at that concurrency), trims the transient, and
// returns steady-state measurements.
func Run(t Test) (*Result, error) {
	if t.Profile == nil {
		return nil, errors.New("loadgen: nil profile")
	}
	if err := t.Props.validate(); err != nil {
		return nil, err
	}
	n := t.Props.VirtualUsers()
	rng := rand.New(rand.NewSource(t.Seed))
	warm := t.ExtraWarmup
	if warm <= 0 {
		warm = 100
	}
	window := t.WindowSize
	if window <= 0 {
		window = 10
	}
	model := t.Profile.Model(n)
	stats, err := simulation.Run(simulation.Config{
		Model:             model,
		Population:        n,
		Seed:              t.Seed,
		WarmupTime:        t.Props.rampSpan() + warm,
		MeasureTime:       t.Props.Duration,
		ServiceDist:       t.ServiceDist,
		ThinkDist:         t.ThinkDist,
		StartTimes:        t.Props.StartTimes(rng),
		WindowSize:        window,
		ResponseSampleCap: t.PercentileSamples,
		MaxRunsPerUser:    t.Props.Runs,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	return &Result{
		Concurrency:  n,
		Stats:        stats,
		Demands:      stats.Demands(),
		StationNames: t.Profile.StationNames(),
	}, nil
}

// PropertiesFor picks a processes×threads split realising the target number
// of virtual users on a single agent (threads capped at 25 per process, the
// customary Grinder sizing), with a gentle process ramp.
func PropertiesFor(users int, duration float64) Properties {
	if users < 1 {
		users = 1
	}
	// Smallest process count >= users/25 that divides users exactly, so
	// processes × threads lands on the target (Grinder threads are uniform
	// per process); worst case one thread per process.
	processes := (users + 24) / 25
	for users%processes != 0 {
		processes++
	}
	threads := users / processes
	return Properties{
		Agents:                   1,
		Processes:                processes,
		Threads:                  threads,
		Duration:                 duration,
		InitialSleepTime:         2,
		ProcessIncrement:         maxInt(1, processes/10),
		ProcessIncrementInterval: 5,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SweepConfig configures a load-test campaign over several concurrencies.
type SweepConfig struct {
	// Duration is the measured window per test (seconds); default 1500.
	Duration float64
	// Seed is the base seed; test i uses Seed + i.
	Seed int64
	// ServiceDist / ThinkDist propagate to each test.
	ServiceDist simulation.Distribution
	ThinkDist   simulation.Distribution
}

// Sweep runs one load test per concurrency level — the paper's load-test
// campaign producing Tables 2–3 — and returns results in input order.
func Sweep(p *testbed.Profile, concurrencies []int, cfg SweepConfig) ([]*Result, error) {
	if len(concurrencies) == 0 {
		return nil, errors.New("loadgen: empty sweep")
	}
	dur := cfg.Duration
	if dur <= 0 {
		dur = 1500
	}
	out := make([]*Result, len(concurrencies))
	for i, n := range concurrencies {
		props := PropertiesFor(n, dur)
		res, err := Run(Test{
			Profile:     p,
			Props:       props,
			Seed:        cfg.Seed + int64(i)*7919,
			ServiceDist: cfg.ServiceDist,
			ThinkDist:   cfg.ThinkDist,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: sweep point N=%d: %w", n, err)
		}
		out[i] = res
	}
	return out, nil
}

// MeasuredSeries extracts the (X, R+Z) pairs of a sweep, the "measured"
// curves the paper plots against MVA predictions.
func MeasuredSeries(results []*Result) (concurrency []int, x, cycle []float64) {
	concurrency = make([]int, len(results))
	x = make([]float64, len(results))
	cycle = make([]float64, len(results))
	for i, r := range results {
		concurrency[i] = r.Concurrency
		x[i] = r.Stats.Throughput
		cycle[i] = r.Stats.CycleTime
	}
	return concurrency, x, cycle
}

// SteadyStateStart estimates where a test's TPS series stabilises using
// MSER-5 — the automated version of "the tests are run for sufficiently long
// time in order to remove such transient behavior" (paper Section 4.1).
func SteadyStateStart(s *metrics.Series) float64 {
	if s == nil || len(s.Points) == 0 {
		return 0
	}
	cut := metrics.MSER5(s.Values())
	if cut >= len(s.Points) {
		cut = len(s.Points) - 1
	}
	return s.Points[cut].T
}
