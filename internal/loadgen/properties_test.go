package loadgen

import (
	"strings"
	"testing"
)

func TestParsePropertiesFull(t *testing.T) {
	src := `
# The Grinder configuration, as in the paper's Section 4.1
grinder.script = renewpolicy.py
grinder.processes = 10
grinder.threads = 20
grinder.runs = 0
grinder.duration = 1800000
grinder.initialSleepTime = 2000
grinder.sleepTimeVariation = 0.2
grinder.processIncrement = 2
grinder.processIncrementInterval = 10000
! trailing comment style
other.namespace = ignored
`
	p, err := ParseProperties(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Processes != 10 || p.Threads != 20 || p.Agents != 1 {
		t.Fatalf("workers: %+v", p)
	}
	if p.VirtualUsers() != 200 {
		t.Fatalf("VirtualUsers = %d", p.VirtualUsers())
	}
	if p.Duration != 1800 {
		t.Fatalf("Duration = %g s, want 1800", p.Duration)
	}
	if p.InitialSleepTime != 2 {
		t.Fatalf("InitialSleepTime = %g s", p.InitialSleepTime)
	}
	if p.ProcessIncrement != 2 || p.ProcessIncrementInterval != 10 {
		t.Fatalf("ramp: %+v", p)
	}
}

func TestParsePropertiesColonSeparator(t *testing.T) {
	p, err := ParseProperties(strings.NewReader("grinder.processes: 3\ngrinder.threads: 4\ngrinder.duration: 60000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Processes != 3 || p.Threads != 4 {
		t.Fatalf("%+v", p)
	}
}

func TestParsePropertiesErrors(t *testing.T) {
	cases := map[string]string{
		"no separator":      "grinder.threads 5\n",
		"non-numeric":       "grinder.threads = many\n",
		"invalid resulting": "grinder.threads = 0\ngrinder.duration = 1000\n",
	}
	for name, src := range cases {
		if _, err := ParseProperties(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	orig := Properties{
		Agents: 2, Processes: 5, Threads: 8, Duration: 600,
		InitialSleepTime: 1.5, ProcessIncrement: 1, ProcessIncrementInterval: 7,
	}
	parsed, err := ParseProperties(strings.NewReader(FormatProperties(orig)))
	if err != nil {
		t.Fatal(err)
	}
	if parsed != orig {
		t.Fatalf("round trip: %+v vs %+v", parsed, orig)
	}
}
