package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseProperties reads a grinder.properties-style file (Java properties
// syntax: `key = value`, `#`/`!` comments) and maps the keys the paper's
// Section 4.1 lists onto Properties:
//
//	grinder.processes                   worker processes per agent
//	grinder.threads                     worker threads per process
//	grinder.agents                      agent machines (extension; default 1)
//	grinder.duration                    run length, milliseconds
//	grinder.initialSleepTime            max pre-start thread sleep, ms
//	grinder.processIncrement            processes started per increment
//	grinder.processIncrementInterval    increment interval, ms
//	grinder.runs                        transactions per user (0 = unbounded)
//
// Unknown grinder.* keys (script, sleepTimeVariation, …) are accepted
// and ignored, as The Grinder itself tolerates unknown settings; malformed
// numeric values are errors. Times are milliseconds in the file, seconds in
// Properties, matching The Grinder's conventions.
func ParseProperties(r io.Reader) (Properties, error) {
	p := Properties{Agents: 1, Processes: 1, Threads: 1}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "!") {
			continue
		}
		eq := strings.IndexAny(line, "=:")
		if eq < 0 {
			return p, fmt.Errorf("loadgen: properties line %d: no separator in %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if !strings.HasPrefix(key, "grinder.") {
			continue // foreign namespaces are ignored
		}
		num := func() (float64, error) {
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return 0, fmt.Errorf("loadgen: properties line %d: %s = %q is not numeric", lineNo, key, val)
			}
			return v, nil
		}
		switch key {
		case "grinder.processes":
			v, err := num()
			if err != nil {
				return p, err
			}
			p.Processes = int(v)
		case "grinder.threads":
			v, err := num()
			if err != nil {
				return p, err
			}
			p.Threads = int(v)
		case "grinder.agents":
			v, err := num()
			if err != nil {
				return p, err
			}
			p.Agents = int(v)
		case "grinder.duration":
			v, err := num()
			if err != nil {
				return p, err
			}
			p.Duration = v / 1000
		case "grinder.initialSleepTime":
			v, err := num()
			if err != nil {
				return p, err
			}
			p.InitialSleepTime = v / 1000
		case "grinder.processIncrement":
			v, err := num()
			if err != nil {
				return p, err
			}
			p.ProcessIncrement = int(v)
		case "grinder.processIncrementInterval":
			v, err := num()
			if err != nil {
				return p, err
			}
			p.ProcessIncrementInterval = v / 1000
		case "grinder.runs":
			v, err := num()
			if err != nil {
				return p, err
			}
			p.Runs = int(v)
		default:
			// grinder.script, grinder.sleepTimeVariation, …
		}
	}
	if err := sc.Err(); err != nil {
		return p, fmt.Errorf("loadgen: reading properties: %w", err)
	}
	return p, p.validate()
}

// FormatProperties renders Properties back to grinder.properties syntax.
func FormatProperties(p Properties) string {
	var b strings.Builder
	fmt.Fprintf(&b, "grinder.agents = %d\n", p.Agents)
	fmt.Fprintf(&b, "grinder.processes = %d\n", p.Processes)
	fmt.Fprintf(&b, "grinder.threads = %d\n", p.Threads)
	fmt.Fprintf(&b, "grinder.runs = %d\n", p.Runs)
	fmt.Fprintf(&b, "grinder.duration = %.0f\n", p.Duration*1000)
	fmt.Fprintf(&b, "grinder.initialSleepTime = %.0f\n", p.InitialSleepTime*1000)
	fmt.Fprintf(&b, "grinder.processIncrement = %d\n", p.ProcessIncrement)
	fmt.Fprintf(&b, "grinder.processIncrementInterval = %.0f\n", p.ProcessIncrementInterval*1000)
	return b.String()
}
