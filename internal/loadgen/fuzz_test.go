package loadgen

import (
	"strings"
	"testing"
)

// FuzzParseProperties: arbitrary properties text must never panic, and any
// accepted result must be a runnable workload.
func FuzzParseProperties(f *testing.F) {
	f.Add("grinder.processes = 10\ngrinder.threads = 20\ngrinder.duration = 60000\n")
	f.Add("# comment only\n")
	f.Add("grinder.threads 5")
	f.Add("grinder.duration = NaN\n")
	f.Add("other = 1\ngrinder.processes: 2\ngrinder.duration: 1000\n")
	f.Add(strings.Repeat("grinder.processes = 1\n", 50))
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseProperties(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := p.validate(); err != nil {
			t.Fatalf("ParseProperties accepted an invalid workload: %v (%+v)", err, p)
		}
		if p.VirtualUsers() < 1 {
			t.Fatalf("accepted %d virtual users", p.VirtualUsers())
		}
	})
}
