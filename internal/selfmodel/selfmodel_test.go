package selfmodel

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/promtest"
	"repro/internal/queueing"
)

// truth is the ground-truth node used by the deterministic validation: a
// 4-worker pool with a 10ms solve burst and 30ms of off-worker overhead.
const (
	truthWorkers = 4
	truthDW      = 0.010 // worker service demand (s)
	truthDD      = 0.030 // delay (overhead) demand (s)
	truthMaxN    = 64
)

// solveTruth runs MVASD over the ground-truth constant demands — the same
// model shape the monitor estimates, with the answer known exactly.
func solveTruth(t *testing.T) *core.Result {
	t.Helper()
	dm := core.FuncDemands{K: 2, F: func(k, _ int) float64 {
		if k == 0 {
			return truthDW
		}
		return truthDD
	}}
	sol, err := core.NewMVASDSolver(SelfModel(truthWorkers), dm, core.MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Release()
	if err := sol.Run(truthMaxN); err != nil {
		t.Fatal(err)
	}
	return sol.Result()
}

// truthWindow derives the window a node operating exactly on the ground
// truth would aggregate at population n: Little's Law supplies every
// integral, and the latency reservoir holds the true cycle time.
func truthWindow(res *core.Result, n int) Window {
	x := res.X[n-1]
	cycle := res.Cycle[n-1]
	lat := make([]time.Duration, 32)
	for i := range lat {
		lat[i] = time.Duration(cycle * float64(time.Second))
	}
	return Window{
		Elapsed:         time.Second,
		Completions:     x,
		BusySeconds:     x * truthDW,               // U_workers = X·D_w
		StationSeconds:  x * res.Residence[n-1][0], // queued+busy at workers
		InFlightSeconds: float64(n),                // closed system, Z=0
		Latencies:       lat,
	}
}

// TestDeterministicValidation drives the monitor with synthetic load derived
// from a known ground truth (the in-process analogue of a cmd/loadtest
// campaign) and checks the self-model's acceptance bounds: the predicted
// saturation knee and p50 must stay inside the paper's 3%/9% deviation
// bounds of the measured values, with every scored window unbreached.
func TestDeterministicValidation(t *testing.T) {
	res := solveTruth(t)

	m := New(Config{Workers: truthWorkers, MaxN: truthMaxN})
	populations := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	var rep *Report
	for _, n := range populations {
		w := truthWindow(res, n)
		for i := 0; i < m.Config().Estimate.MinSamples; i++ {
			rep = m.ObserveWindow(w)
		}
	}
	if rep == nil || !rep.Ready {
		t.Fatalf("self-model not ready after %d windows: %+v", len(populations)*4, rep)
	}

	// Truth knee: first population at the saturation-utilization threshold.
	kneeTruth := 0
	for i := 0; i < truthMaxN; i++ {
		if res.Util[i][0] >= m.Config().SaturationUtil {
			kneeTruth = i + 1
			break
		}
	}
	if kneeTruth == 0 {
		t.Fatal("ground truth never saturates inside the solved range")
	}
	if !rep.Saturated || rep.KneeN == 0 {
		t.Fatalf("predicted curve not saturated: %+v", rep)
	}
	if dev := math.Abs(float64(rep.KneeN-kneeTruth)) / float64(kneeTruth); dev > monitor.ThroughputDeviationBound {
		t.Errorf("predicted knee %d vs truth %d: deviation %.3f > %.2f",
			rep.KneeN, kneeTruth, dev, monitor.ThroughputDeviationBound)
	}

	// Predicted vs measured at the last operating point (n=32).
	if rep.ObservedP50 <= 0 || rep.PredictedP50 <= 0 {
		t.Fatalf("missing p50s: %+v", rep)
	}
	if dev := math.Abs(rep.PredictedP50-rep.ObservedP50) / rep.ObservedP50; dev > monitor.CycleTimeDeviationBound {
		t.Errorf("p50 predicted %.4fs vs measured %.4fs: deviation %.3f > %.2f",
			rep.PredictedP50, rep.ObservedP50, dev, monitor.CycleTimeDeviationBound)
	}
	if dev := math.Abs(rep.PredictedX-rep.ObservedX) / rep.ObservedX; dev > monitor.ThroughputDeviationBound {
		t.Errorf("throughput predicted %.2f vs measured %.2f: deviation %.3f > %.2f",
			rep.PredictedX, rep.ObservedX, dev, monitor.ThroughputDeviationBound)
	}

	// Every scored metric stayed inside its bound over the whole run.
	if len(rep.Deviations) == 0 {
		t.Fatal("no deviations scored")
	}
	for _, d := range rep.Deviations {
		if d.Breached || d.Breaches != 0 {
			t.Errorf("metric %q breached its bound: %+v", d.Metric, d)
		}
		if d.Ratio > d.Bound {
			t.Errorf("metric %q ratio %.3f > bound %.2f", d.Metric, d.Ratio, d.Bound)
		}
	}

	// Headroom: nothing is in flight, so it equals the safe concurrency,
	// which the knee caps (no p99 bound configured).
	if rep.MaxSafeN != rep.KneeN {
		t.Errorf("MaxSafeN = %d, want knee %d", rep.MaxSafeN, rep.KneeN)
	}
	if rep.Headroom != rep.MaxSafeN {
		t.Errorf("Headroom = %d with nothing in flight, want %d", rep.Headroom, rep.MaxSafeN)
	}
	if rep.ShedAdvised {
		t.Error("shed advised with an idle node")
	}
	if len(rep.Curve) == 0 || len(rep.Curve) > 64 {
		t.Errorf("curve has %d points, want 1..64", len(rep.Curve))
	}
}

// TestP99BoundTightensHeadroom configures a p99 bound below the knee's
// latency and checks the safe concurrency comes from the bound, not the knee.
func TestP99BoundTightensHeadroom(t *testing.T) {
	res := solveTruth(t)
	// The truth cycle grows with n; pick a bound between cycle(1) and
	// cycle(maxN) so some populations honor it and some do not.
	// Cycle at n=8, nudged one tick up so the float->Duration truncation
	// cannot land the bound a hair below the curve's own value.
	bound := time.Duration(res.Cycle[7]*float64(time.Second)) + time.Nanosecond
	m := New(Config{Workers: truthWorkers, MaxN: truthMaxN, P99Bound: bound})
	var rep *Report
	for _, n := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		w := truthWindow(res, n)
		for i := 0; i < m.Config().Estimate.MinSamples; i++ {
			rep = m.ObserveWindow(w)
		}
	}
	if rep == nil || !rep.Ready {
		t.Fatal("not ready")
	}
	if rep.P99LimitN == 0 {
		t.Fatalf("no p99 limit computed: %+v", rep)
	}
	// All latencies equal the cycle (shape = 1), so the limit is the largest
	// n with cycle(n) <= cycle(8): n=8 exactly.
	if rep.P99LimitN != 8 {
		t.Errorf("P99LimitN = %d, want 8", rep.P99LimitN)
	}
	if rep.MaxSafeN != 8 || rep.Headroom != 8 {
		t.Errorf("MaxSafeN/Headroom = %d/%d, want 8/8", rep.MaxSafeN, rep.Headroom)
	}
}

// TestIntegrators drives the event hooks on a manual clock and checks the
// window aggregation: one request that waits, runs, and completes must
// produce the exact Little's-Law integrals.
func TestIntegrators(t *testing.T) {
	now := time.Unix(1000, 0)
	m := New(Config{Workers: 2, Now: func() time.Time { return now }})

	m.RequestBegin()
	m.WaitBegin()
	now = now.Add(100 * time.Millisecond) // queued 100ms
	m.WorkerBegin()
	now = now.Add(300 * time.Millisecond) // busy 300ms
	m.WorkerEnd()
	now = now.Add(100 * time.Millisecond) // post-worker overhead 100ms
	m.RequestEnd(500 * time.Millisecond)
	now = now.Add(500 * time.Millisecond)

	rep := m.Advance(now)
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Windows != 1 || rep.Completions != 1 {
		t.Fatalf("windows/completions = %d/%d", rep.Windows, rep.Completions)
	}
	if got, want := rep.ObservedX, 1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("ObservedX = %g, want %g", got, want)
	}
	// In-flight integral: 500ms over a 1s window.
	if got, want := rep.ObservedConcurrency, 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("ObservedConcurrency = %g, want %g", got, want)
	}
	if got, want := rep.ObservedP50, 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("ObservedP50 = %g, want %g", got, want)
	}
	if rep.InFlight != 0 {
		t.Errorf("InFlight = %d after completion", rep.InFlight)
	}
	// A second, empty window carries the observations forward.
	now = now.Add(time.Second)
	rep = m.Advance(now)
	if rep.Windows != 2 || rep.EmptyWindows != 1 {
		t.Fatalf("windows/empty = %d/%d", rep.Windows, rep.EmptyWindows)
	}
	if rep.ObservedX != 1.0 {
		t.Errorf("empty window dropped the last observation: %+v", rep)
	}
}

// TestWaitAbort undoes a cancelled wait so the station integral cannot leak.
func TestWaitAbort(t *testing.T) {
	now := time.Unix(2000, 0)
	m := New(Config{Workers: 1, Now: func() time.Time { return now }})
	m.RequestBegin()
	m.WaitBegin()
	now = now.Add(200 * time.Millisecond)
	m.WaitAbort()
	m.RequestEnd(200 * time.Millisecond)
	now = now.Add(800 * time.Millisecond)
	rep := m.Advance(now)
	if rep.Completions != 1 {
		t.Fatalf("completions = %d", rep.Completions)
	}
	if m.InFlight() != 0 {
		t.Errorf("in-flight = %d after abort+end", m.InFlight())
	}
}

// TestNilMonitor checks every hook, the advance path and the metrics writer
// are no-ops on a nil monitor — the pool and middleware never guard them.
func TestNilMonitor(t *testing.T) {
	var m *Monitor
	m.RequestBegin()
	m.RequestEnd(time.Second)
	m.WaitBegin()
	m.WaitAbort()
	m.WorkerBegin()
	m.WorkerEnd()
	if m.InFlight() != 0 || m.Report() != nil || m.Advance(time.Now()) != nil {
		t.Error("nil monitor returned state")
	}
	if m.ObserveWindow(Window{}) != nil {
		t.Error("nil ObserveWindow returned a report")
	}
	var sb strings.Builder
	if err := m.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "solverd_self_windows_total 0") {
		t.Errorf("nil scrape missing zero families:\n%s", sb.String())
	}
}

// TestMetricsSchema lints the scrape of a warmed-up monitor and checks the
// family set matches the nil scrape exactly (stable schema from first scrape).
func TestMetricsSchema(t *testing.T) {
	res := solveTruth(t)
	m := New(Config{Workers: truthWorkers, MaxN: truthMaxN})
	for _, n := range []int{1, 2, 4, 8} {
		w := truthWindow(res, n)
		for i := 0; i < m.Config().Estimate.MinSamples; i++ {
			m.ObserveWindow(w)
		}
	}
	var warm strings.Builder
	if err := m.WriteMetrics(&warm); err != nil {
		t.Fatal(err)
	}
	warmFam := promtest.ParseExposition(t, warm.String())
	promtest.LintFamilies(t, warmFam)

	var nilOut strings.Builder
	if err := (*Monitor)(nil).WriteMetrics(&nilOut); err != nil {
		t.Fatal(err)
	}
	nilFam := promtest.ParseExposition(t, nilOut.String())
	promtest.LintFamilies(t, nilFam)
	if len(warmFam) != len(nilFam) {
		t.Errorf("family count differs: warm %d vs nil %d", len(warmFam), len(nilFam))
	}
	for name := range warmFam {
		if _, ok := nilFam[name]; !ok {
			t.Errorf("family %q absent from the nil scrape", name)
		}
	}
	if v := promtest.SingleValue(t, warmFam, "solverd_self_windows_total"); v < 16 {
		t.Errorf("windows_total = %g, want >= 16", v)
	}
	if v := promtest.SingleValue(t, warmFam, "solverd_self_snapshot_version"); v < 1 {
		t.Errorf("snapshot version = %g, want >= 1", v)
	}
}

// TestSelfModelValidates pins the model shape: two stations, workers first,
// that queueing.Validate accepts (solveCurve re-validates it every fit).
func TestSelfModelValidates(t *testing.T) {
	m := SelfModel(3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Stations) != 2 || m.Stations[0].Name != WorkersStation || m.Stations[1].Kind != queueing.Delay {
		t.Fatalf("unexpected self model: %+v", m.Stations)
	}
	if m.Stations[0].Servers != 3 {
		t.Errorf("workers station has %d servers, want 3", m.Stations[0].Servers)
	}
}

// TestHooksAllocationFree pins the sampling hot path at zero allocations per
// sampled request: the exact-MVA step guard (internal/core) stays meaningful
// only if self-sampling adds no allocation around it.
func TestHooksAllocationFree(t *testing.T) {
	m := New(Config{Workers: 2})
	allocs := testing.AllocsPerRun(200, func() {
		m.RequestBegin()
		m.WaitBegin()
		m.WorkerBegin()
		m.WorkerEnd()
		m.RequestEnd(25 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("sampling hooks allocate %.2f objects/request, want 0", allocs)
	}
}

// TestExactStepZeroAllocWithSampling re-runs the repo's exact-MVA step alloc
// guard with the self-model hooks bracketing every step, as the server's
// worker pool does in production: the combination must still be 0 allocs/op.
func TestExactStepZeroAllocWithSampling(t *testing.T) {
	model := &queueing.Model{
		Name:      "alloc-guard",
		ThinkTime: 0.1,
		Stations: []queueing.Station{
			{Name: "web/cpu", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.002},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 1, Visits: 2, ServiceTime: 0.0004},
		},
	}
	sol, err := core.NewExactMVASolver(model)
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Release()
	m := New(Config{Workers: 2})
	const runs = 200
	sol.Reserve(runs + 2)
	n := 0
	allocs := testing.AllocsPerRun(runs, func() {
		m.RequestBegin()
		m.WaitBegin()
		m.WorkerBegin()
		n++
		if err := sol.Extend(n); err != nil {
			t.Fatal(err)
		}
		m.WorkerEnd()
		m.RequestEnd(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("exact-MVA step with self-sampling allocates %.2f objects/op, want 0", allocs)
	}
}

// TestBreachTriggersRefit feeds windows consistent with one regime, then
// flips the ground truth: the deviation breach must bump the refit counter
// and eventually re-converge the prediction to the new regime.
func TestBreachTriggersRefit(t *testing.T) {
	res := solveTruth(t)
	m := New(Config{Workers: truthWorkers, MaxN: truthMaxN})
	for _, n := range []int{1, 2, 3, 4, 8} {
		w := truthWindow(res, n)
		for i := 0; i < m.Config().Estimate.MinSamples; i++ {
			m.ObserveWindow(w)
		}
	}
	rep := m.Report()
	if rep == nil || !rep.Ready || rep.Refits != 0 {
		t.Fatalf("unexpected warm-up state: %+v", rep)
	}
	// New regime: demands doubled. Throughput halves at saturation — far
	// outside the 3% bound, so the first scored window must breach.
	slow := Window{
		Elapsed:         time.Second,
		Completions:     res.X[7] / 2,
		BusySeconds:     res.X[7] / 2 * 2 * truthDW,
		StationSeconds:  res.X[7] / 2 * 2 * res.Residence[7][0],
		InFlightSeconds: 8,
		Latencies:       []time.Duration{time.Duration(2 * res.Cycle[7] * float64(time.Second))},
	}
	rep = m.ObserveWindow(slow)
	if rep.Refits == 0 {
		t.Fatalf("breach did not trigger a refit: %+v", rep.Deviations)
	}
	breached := false
	for _, d := range rep.Deviations {
		if d.Breached {
			breached = true
		}
	}
	if !breached {
		t.Errorf("no deviation marked breached: %+v", rep.Deviations)
	}
}
