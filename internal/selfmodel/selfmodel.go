// Package selfmodel turns a solverd node's own operation into the paper's
// measure → estimate → solve → validate loop. The node is itself a closed
// queueing system: requests arrive, wait for a bounded worker pool, hold a
// worker for a service burst and spend the rest of their wall time in
// decode/encode/network overhead. The monitor samples exactly that — a
// time-weighted in-flight integral, a queued-or-busy integral at the worker
// station and a busy-worker integral — closes a window every Interval, and
// feeds the Service Demand Law ratios through internal/estimate into a
// two-station model of the node (a multi-server CPU station for the worker
// pool plus a delay station for the off-worker overhead). MVASD solved over
// the fitted curves yields the node's own predicted throughput/latency-vs-
// concurrency trajectory, its saturation knee, and a live headroom figure:
// the predicted max concurrency the node can hold (knee, optionally tightened
// by a p99 bound) minus what is in flight right now.
//
// Every window with completions is also scored against the prediction through
// internal/monitor under the paper's validation bounds (3% throughput, 9%
// latency); a breach force-records a deviation trace and triggers a re-fit,
// so the self-model heals the same way the request-facing estimator does.
// The monitor itself never decides: the shed signal it exposes (a gauge and
// a report field) is consumed by internal/admission, whose gate turns it into
// an admission decision only in enforce mode.
package selfmodel

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/journal"
	"repro/internal/monitor"
	"repro/internal/queueing"
	"repro/internal/report"
)

// Station names of the node's self-model, in model order.
const (
	WorkersStation  = "workers"
	OverheadStation = "overhead"
)

// refitWindows is the steady-state re-fit cadence: every this many non-empty
// windows the demand curves are re-fitted even without a deviation breach,
// so slow drift inside the bounds is adopted rather than frozen out.
const refitWindows = 16

// Deviation metric names the monitor scores through the deviation tracker.
// Distinct from the estimate controller's "throughput"/"cycle_time" so the
// self-model's ratios never overwrite the request-facing gauges.
var DeviationMetrics = []string{"self_throughput", "self_p50", "self_p99"}

// Config tunes the monitor. Workers is required; everything else defaults.
type Config struct {
	// Workers is the node's worker-pool capacity — the server count of the
	// self-model's CPU station.
	Workers int
	// Interval is the sampling-window length Run advances on (default 2s).
	Interval time.Duration
	// MaxN is the concurrency ceiling the predicted curve is solved to
	// (default max(256, 64·Workers)).
	MaxN int
	// SaturationUtil is the per-server worker utilization treated as the
	// saturation knee (default 0.95).
	SaturationUtil float64
	// P99Bound, when positive, additionally caps the safe concurrency at the
	// largest n whose predicted p99 stays under it.
	P99Bound time.Duration
	// LatencyWindow caps the per-window latency reservoir the p50/p99 come
	// from (default 2048).
	LatencyWindow int
	// Estimate tunes the underlying demand estimator. Self-sampling yields
	// one sample per station per window, so the zero value lowers the
	// estimator's defaults to MinSamples 4 and MinFitPoints 3.
	Estimate estimate.Config
	// Tracker scores predicted-vs-observed windows (nil: a standalone one).
	Tracker *monitor.DeviationTracker
	// Journal, when non-nil, receives a TypeSelfReady event on warmup→ready
	// and a TypeKneeShift event when the predicted saturation knee moves by
	// KneeShiftThreshold or more between published reports.
	Journal *journal.Journal
	// Now is the monitor's clock (default time.Now; tests inject one).
	Now func() time.Time
}

// KneeShiftThreshold is the relative KneeN change between two published
// reports that is journaled as a knee shift (10%).
const KneeShiftThreshold = 0.10

func (c *Config) defaults() {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MaxN <= 0 {
		c.MaxN = 64 * c.Workers
		if c.MaxN < 256 {
			c.MaxN = 256
		}
	}
	if c.SaturationUtil <= 0 || c.SaturationUtil > 1 {
		c.SaturationUtil = 0.95
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 2048
	}
	if c.Estimate.MinSamples <= 0 {
		c.Estimate.MinSamples = 4
	}
	if c.Estimate.MinFitPoints < 2 {
		c.Estimate.MinFitPoints = 3
	}
	if c.Tracker == nil {
		c.Tracker = monitor.NewDeviationTracker(nil)
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// SelfModel returns the two-station closed model of one node: the worker
// pool as a C-server CPU station and the off-worker request overhead as a
// delay station. Think time is zero — the node does not model its clients.
func SelfModel(workers int) *queueing.Model {
	return &queueing.Model{
		Name: "self",
		Stations: []queueing.Station{
			{Name: WorkersStation, Kind: queueing.CPU, Servers: workers, Visits: 1},
			{Name: OverheadStation, Kind: queueing.Delay, Servers: 1, Visits: 1},
		},
	}
}

// Window is one closed sampling window's aggregates — what Advance derives
// from the event integrals, and what deterministic tests feed directly.
type Window struct {
	// Elapsed is the window length.
	Elapsed time.Duration
	// Completions counts requests finished in the window (fractional rates
	// are fine: it only ever divides by Elapsed).
	Completions float64
	// BusySeconds is the worker-busy integral: Σ busyWorkers·dt.
	BusySeconds float64
	// StationSeconds is the queued-or-busy integral at the worker station.
	StationSeconds float64
	// InFlightSeconds is the wall in-flight integral: Σ inFlight·dt.
	InFlightSeconds float64
	// Latencies are the sampled request wall times of the window.
	Latencies []time.Duration
}

// CurvePoint is one population of the predicted self-trajectory.
type CurvePoint struct {
	N     int
	X     float64 // predicted throughput (req/s)
	Cycle float64 // predicted request wall time (s)
	Util  float64 // predicted per-server worker utilization
}

// Deviation is one scored predicted-vs-observed metric.
type Deviation struct {
	Metric   string
	Ratio    float64
	Bound    float64
	Breached bool
	Breaches uint64
}

// Report is the published self-model view: immutable once published.
type Report struct {
	// Ready is true once a demand snapshot exists and the curve is solved.
	Ready           bool
	SnapshotVersion uint64
	Workers         int
	MaxN            int

	// Windows/EmptyWindows/Completions are lifetime totals.
	Windows      uint64
	EmptyWindows uint64
	Completions  uint64

	// InFlight is the in-flight count when the report was published.
	InFlight int

	// Latest non-empty window's observations (latencies in seconds).
	ObservedConcurrency float64
	ObservedX           float64
	ObservedMean        float64
	ObservedP50         float64
	ObservedP99         float64

	// Predictions at the observed concurrency (zero until Ready).
	PredictedX   float64
	PredictedP50 float64
	PredictedP99 float64

	// Deviations carries the latest scored ratios per DeviationMetrics entry.
	Deviations []Deviation

	// Curve is the predicted trajectory, downsampled to ~64 stride-sampled
	// points plus the knee and the final population.
	Curve []CurvePoint

	// Saturated reports the knee was reached inside MaxN; KneeN is the first
	// population at SaturationUtil. P99LimitN is the largest population whose
	// predicted p99 honors P99Bound (0 when no bound). MaxSafeN combines
	// both; Headroom is MaxSafeN minus InFlight (negative past saturation).
	Saturated bool
	KneeN     int
	P99LimitN int
	MaxSafeN  int
	Headroom  int
	// ShedAdvised is the advisory signal: the node predicts it is at or past
	// its safe concurrency. Observe-only — nothing acts on it here.
	ShedAdvised bool

	// P99Shape is the smoothed p99/p50 ratio the p99 prediction scales by.
	P99Shape float64
	// Refits counts breach-triggered re-fits; LastFitError the most recent
	// fit failure ("" once a fit succeeds).
	Refits       uint64
	LastFitError string
}

// curve is one solved prediction trajectory, cached per snapshot version.
type curve struct {
	version   uint64
	x         []float64 // x[n-1] = X(n)
	cycle     []float64 // cycle[n-1] = R(n)
	util      []float64 // util[n-1] = per-server worker utilization at n
	saturated bool
	kneeN     int
}

// Monitor samples one node's own operation and models it. All methods are
// safe for concurrent use and valid on a nil receiver (no-ops), so callers
// can leave sampling hooks unconditional.
type Monitor struct {
	cfg     Config
	est     *estimate.Estimator
	tracker *monitor.DeviationTracker

	mu sync.Mutex
	// Event-side state: population counters and their time integrals.
	inFlight, station, busy    int
	inFlightInt, stationInt    time.Duration
	busyInt                    time.Duration
	last                       time.Time // integrator clock position
	windowStart                time.Time
	completions                uint64
	sumLatency                 time.Duration
	lat                        []time.Duration // window reservoir (ring)
	latN                       int             // writes this window
	latHist                    *report.FixedHistogram
	totalWindows, emptyWindows uint64
	totalCompletions           uint64
	sinceFit                   int // non-empty windows since the last fit attempt
	refits                     uint64
	lastFitErr                 string
	shape                      float64 // EWMA of p99/p50
	shapeSet                   bool
	curve                      *curve
	breaches                   map[string]uint64
	deviations                 []Deviation

	rep atomic.Pointer[Report]
}

// New builds a monitor. The estimator model is fixed: SelfModel(cfg.Workers).
func New(cfg Config) *Monitor {
	cfg.defaults()
	est, err := estimate.New(SelfModel(cfg.Workers), cfg.Estimate)
	if err != nil {
		// SelfModel always validates; an error here is a programming bug.
		panic(err)
	}
	hist, _ := report.NewFixedHistogram(report.DefaultLatencyBounds()...)
	now := cfg.Now()
	return &Monitor{
		cfg:         cfg,
		est:         est,
		tracker:     cfg.Tracker,
		last:        now,
		windowStart: now,
		lat:         make([]time.Duration, cfg.LatencyWindow),
		latHist:     hist,
		breaches:    make(map[string]uint64),
	}
}

// Config returns the monitor's resolved configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Estimator exposes the underlying demand estimator (for health reporting).
func (m *Monitor) Estimator() *estimate.Estimator {
	if m == nil {
		return nil
	}
	return m.est
}

// advanceLocked accrues the population integrals up to now (mu held). A
// clock that appears to run backwards (mixed manual/ticker advances in
// tests) accrues nothing rather than going negative.
func (m *Monitor) advanceLocked(now time.Time) {
	if dt := now.Sub(m.last); dt > 0 {
		m.inFlightInt += time.Duration(m.inFlight) * dt
		m.stationInt += time.Duration(m.station) * dt
		m.busyInt += time.Duration(m.busy) * dt
		m.last = now
	}
}

// RequestBegin marks one sampled request entering the node.
func (m *Monitor) RequestBegin() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.advanceLocked(m.cfg.Now())
	m.inFlight++
	m.mu.Unlock()
}

// RequestEnd marks one sampled request leaving, with its wall time. The
// reservoir write and histogram update are allocation-free: the step-path
// guarantee of the solver must survive sampling being enabled.
func (m *Monitor) RequestEnd(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.advanceLocked(m.cfg.Now())
	if m.inFlight > 0 {
		m.inFlight--
	}
	m.completions++
	m.totalCompletions++
	m.sumLatency += d
	m.lat[m.latN%len(m.lat)] = d
	m.latN++
	m.latHist.Observe(d.Seconds())
	m.mu.Unlock()
}

// RequestDrop undoes RequestBegin for a request refused by the admission
// gate (shed or redirected): the in-flight integral stops accruing it, but no
// completion or latency is recorded — a refusal answered in microseconds
// would otherwise dilute the sampled service-demand windows toward zero.
func (m *Monitor) RequestDrop() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.advanceLocked(m.cfg.Now())
	if m.inFlight > 0 {
		m.inFlight--
	}
	m.mu.Unlock()
}

// WaitBegin marks a request starting to wait for a worker slot.
func (m *Monitor) WaitBegin() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.advanceLocked(m.cfg.Now())
	m.station++
	m.mu.Unlock()
}

// WaitAbort undoes WaitBegin for a request whose wait was cancelled.
func (m *Monitor) WaitAbort() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.advanceLocked(m.cfg.Now())
	if m.station > 0 {
		m.station--
	}
	m.mu.Unlock()
}

// WorkerBegin marks a waiting request being granted a worker.
func (m *Monitor) WorkerBegin() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.advanceLocked(m.cfg.Now())
	m.busy++
	m.mu.Unlock()
}

// WorkerEnd marks a worker being released (ends the busy and station stays).
func (m *Monitor) WorkerEnd() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.advanceLocked(m.cfg.Now())
	if m.busy > 0 {
		m.busy--
	}
	if m.station > 0 {
		m.station--
	}
	m.mu.Unlock()
}

// InFlight returns the current sampled in-flight count.
func (m *Monitor) InFlight() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inFlight
}

// Report returns the latest published report (nil before the first window).
func (m *Monitor) Report() *Report {
	if m == nil {
		return nil
	}
	return m.rep.Load()
}

// Run advances the monitor every Interval until ctx ends.
func (m *Monitor) Run(ctx context.Context) {
	if m == nil {
		return
	}
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			m.Advance(now)
		}
	}
}

// Advance closes the current sampling window at now and runs the model loop
// on it: ingest → (re)fit → predict → score → publish. It returns the
// published report.
func (m *Monitor) Advance(now time.Time) *Report {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	m.advanceLocked(now)
	elapsed := now.Sub(m.windowStart)
	if elapsed <= 0 {
		rep := m.rep.Load()
		m.mu.Unlock()
		return rep
	}
	w := Window{
		Elapsed:         elapsed,
		Completions:     float64(m.completions),
		BusySeconds:     m.busyInt.Seconds(),
		StationSeconds:  m.stationInt.Seconds(),
		InFlightSeconds: m.inFlightInt.Seconds(),
	}
	nLat := m.latN
	if nLat > len(m.lat) {
		nLat = len(m.lat)
	}
	w.Latencies = append([]time.Duration(nil), m.lat[:nLat]...)
	m.completions = 0
	m.sumLatency = 0
	m.latN = 0
	m.inFlightInt, m.stationInt, m.busyInt = 0, 0, 0
	m.windowStart = now
	rep := m.observeWindowLocked(w)
	m.mu.Unlock()
	return rep
}

// ObserveWindow ingests one externally-aggregated window — the deterministic
// seam: validation tests feed windows derived from a known ground truth and
// get the exact pipeline a live node runs.
func (m *Monitor) ObserveWindow(w Window) *Report {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.totalCompletions += uint64(w.Completions + 0.5)
	for _, d := range w.Latencies {
		m.latHist.Observe(d.Seconds())
	}
	return m.observeWindowLocked(w)
}

// observeWindowLocked is the model loop over one closed window (mu held).
func (m *Monitor) observeWindowLocked(w Window) *Report {
	m.totalWindows++
	sec := w.Elapsed.Seconds()
	if w.Completions <= 0 || sec <= 0 {
		m.emptyWindows++
		return m.publishLocked(nil, 0, 0, 0, 0, 0)
	}

	x := w.Completions / sec
	busyU := w.BusySeconds / sec
	stationAvg := w.StationSeconds / sec
	inflightAvg := w.InFlightSeconds / sec
	n := int(math.Round(inflightAvg))
	if n < 1 {
		n = 1
	}
	delayU := inflightAvg - stationAvg
	if delayU < 0 {
		delayU = 0
	}
	m.est.Observe(estimate.Sample{
		Station: 0, Concurrency: n, Utilization: busyU, Throughput: x,
	})
	m.est.Observe(estimate.Sample{
		Station: 1, Concurrency: n, Utilization: delayU, Throughput: x,
	})

	mean, p50, p99 := latencyStats(w.Latencies)
	if mean == 0 && w.Completions > 0 {
		// No sampled latencies (reservoir empty): fall back to Little's Law.
		mean = inflightAvg / x
		p50, p99 = mean, mean
	}

	// Fit eagerly until the first snapshot exists, then refresh on a slow
	// cadence so gradual demand drift inside the deviation bounds is still
	// adopted (breaches additionally force a fit in scoreLocked).
	m.sinceFit++
	if m.est.Version() == 0 || m.sinceFit >= refitWindows {
		m.sinceFit = 0
		if _, err := m.est.Fit(); err != nil {
			m.lastFitErr = err.Error()
		} else {
			m.lastFitErr = ""
		}
	}
	m.refreshCurveLocked()
	m.scoreLocked(n, x, p50, p99)
	return m.publishLocked(&w, inflightAvg, x, mean, p50, p99)
}

// refreshCurveLocked (re)solves the prediction trajectory when the snapshot
// version moved (mu held).
func (m *Monitor) refreshCurveLocked() {
	snap := m.est.Snapshot()
	if snap == nil {
		return
	}
	if m.curve != nil && m.curve.version == snap.Version {
		return
	}
	c, err := solveCurve(snap, m.cfg.MaxN, m.cfg.SaturationUtil)
	if err != nil {
		m.lastFitErr = err.Error()
		return
	}
	m.curve = c
}

// solveCurve runs MVASD over a snapshot's fitted curves up to maxN and
// extracts the node trajectory with its saturation knee.
func solveCurve(snap *estimate.Snapshot, maxN int, satUtil float64) (*curve, error) {
	dm, err := snap.DemandModel()
	if err != nil {
		return nil, err
	}
	sol, err := core.NewMVASDSolver(snap.Model, dm, core.MVASDOptions{})
	if err != nil {
		return nil, err
	}
	defer sol.Release()
	sol.Reserve(maxN)
	if err := sol.Run(maxN); err != nil {
		return nil, err
	}
	res := sol.Result()
	c := &curve{
		version: snap.Version,
		x:       append([]float64(nil), res.X[:maxN]...),
		cycle:   append([]float64(nil), res.Cycle[:maxN]...),
		util:    make([]float64, maxN),
	}
	for i := 0; i < maxN; i++ {
		c.util[i] = res.Util[i][0]
		if !c.saturated && c.util[i] >= satUtil {
			c.saturated, c.kneeN = true, i+1
		}
	}
	return c, nil
}

// scoreLocked scores one window's observations against the current curve
// through the deviation tracker; breaches trigger a re-fit (mu held).
func (m *Monitor) scoreLocked(n int, x, p50, p99 float64) {
	c := m.curve
	if c == nil {
		return
	}
	idx := n - 1
	if idx >= len(c.x) {
		idx = len(c.x) - 1
	}
	predX, predCycle := c.x[idx], c.cycle[idx]
	devs := make([]Deviation, 0, len(DeviationMetrics))
	breached := false
	record := func(metric string, measured, predicted, bound float64) {
		ratio, over := m.tracker.Observe(metric, n, measured, predicted, bound)
		if over {
			m.breaches[metric]++
			breached = true
		}
		devs = append(devs, Deviation{
			Metric: metric, Ratio: ratio, Bound: bound,
			Breached: over, Breaches: m.breaches[metric],
		})
	}
	record("self_throughput", x, predX, monitor.ThroughputDeviationBound)
	if p50 > 0 {
		record("self_p50", p50, predCycle, monitor.CycleTimeDeviationBound)
	}
	if m.shapeSet && p99 > 0 {
		record("self_p99", p99, m.shape*predCycle, monitor.CycleTimeDeviationBound)
	}
	// Update the p99/p50 shape after scoring, so the prediction never learns
	// from the very window it is judged against.
	if p50 > 0 && p99 > 0 {
		r := p99 / p50
		if !m.shapeSet {
			m.shape, m.shapeSet = r, true
		} else {
			m.shape += 0.2 * (r - m.shape)
		}
	}
	m.deviations = devs
	if breached {
		m.refits++
		if _, err := m.est.Fit(); err != nil {
			m.lastFitErr = err.Error()
		} else {
			m.lastFitErr = ""
			m.refreshCurveLocked()
		}
	}
}

// publishLocked assembles and publishes the report (mu held). w is nil for
// an empty window: the previous observations are carried forward.
func (m *Monitor) publishLocked(w *Window, inflightAvg, x, mean, p50, p99 float64) *Report {
	prev := m.rep.Load()
	rep := &Report{
		Workers:      m.cfg.Workers,
		MaxN:         m.cfg.MaxN,
		Windows:      m.totalWindows,
		EmptyWindows: m.emptyWindows,
		Completions:  m.totalCompletions,
		InFlight:     m.inFlight,
		P99Shape:     m.shape,
		Refits:       m.refits,
		LastFitError: m.lastFitErr,
	}
	if w != nil {
		rep.ObservedConcurrency = inflightAvg
		rep.ObservedX = x
		rep.ObservedMean = mean
		rep.ObservedP50 = p50
		rep.ObservedP99 = p99
	} else if prev != nil {
		rep.ObservedConcurrency = prev.ObservedConcurrency
		rep.ObservedX = prev.ObservedX
		rep.ObservedMean = prev.ObservedMean
		rep.ObservedP50 = prev.ObservedP50
		rep.ObservedP99 = prev.ObservedP99
	}
	rep.Deviations = append([]Deviation(nil), m.deviations...)
	if c := m.curve; c != nil {
		rep.Ready = true
		rep.SnapshotVersion = c.version
		rep.Saturated, rep.KneeN = c.saturated, c.kneeN
		rep.MaxSafeN = m.cfg.MaxN
		if c.saturated {
			rep.MaxSafeN = c.kneeN
		}
		if m.cfg.P99Bound > 0 && m.shapeSet {
			bound := m.cfg.P99Bound.Seconds()
			limit := 0
			for i, cyc := range c.cycle {
				if m.shape*cyc <= bound {
					limit = i + 1
				}
			}
			rep.P99LimitN = limit
			if limit < rep.MaxSafeN {
				rep.MaxSafeN = limit
			}
		}
		rep.Headroom = rep.MaxSafeN - m.inFlight
		rep.ShedAdvised = rep.Headroom <= 0
		n := int(math.Round(rep.ObservedConcurrency))
		if n < 1 {
			n = 1
		}
		if n > len(c.x) {
			n = len(c.x)
		}
		rep.PredictedX = c.x[n-1]
		rep.PredictedP50 = c.cycle[n-1]
		if m.shapeSet {
			rep.PredictedP99 = m.shape * c.cycle[n-1]
		}
		rep.Curve = downsample(c)
	}
	m.journalTransitionsLocked(prev, rep)
	m.rep.Store(rep)
	return rep
}

// journalTransitionsLocked appends the report-to-report state transitions
// the journal tracks: warmup→ready, and a saturation knee moving by
// KneeShiftThreshold or more (mu held; journal appends take a leaf lock).
func (m *Monitor) journalTransitionsLocked(prev, rep *Report) {
	jn := m.cfg.Journal
	if !jn.Enabled() {
		return
	}
	if rep.Ready && (prev == nil || !prev.Ready) {
		jn.Append(journal.TypeSelfReady,
			fmt.Sprintf("self-model ready: max safe concurrency %d", rep.MaxSafeN),
			journal.Event{Attrs: []journal.Attr{
				{Key: "snapshot_version", Value: fmt.Sprintf("%d", rep.SnapshotVersion)},
				{Key: "max_safe_n", Value: fmt.Sprintf("%d", rep.MaxSafeN)},
				{Key: "knee_n", Value: fmt.Sprintf("%d", rep.KneeN)},
			}})
		return
	}
	if prev == nil || !prev.Ready || !rep.Ready || !prev.Saturated || !rep.Saturated {
		return
	}
	if prev.KneeN <= 0 || rep.KneeN == prev.KneeN {
		return
	}
	shift := math.Abs(float64(rep.KneeN-prev.KneeN)) / float64(prev.KneeN)
	if shift < KneeShiftThreshold {
		return
	}
	jn.Append(journal.TypeKneeShift,
		fmt.Sprintf("saturation knee moved %d -> %d (%.0f%%)", prev.KneeN, rep.KneeN, 100*shift),
		journal.Event{Attrs: []journal.Attr{
			{Key: "old_knee_n", Value: fmt.Sprintf("%d", prev.KneeN)},
			{Key: "new_knee_n", Value: fmt.Sprintf("%d", rep.KneeN)},
			{Key: "snapshot_version", Value: fmt.Sprintf("%d", rep.SnapshotVersion)},
		}})
}

// downsample thins a full trajectory to ~64 stride-sampled points, always keeping
// population 1, the knee and MaxN.
func downsample(c *curve) []CurvePoint {
	maxN := len(c.x)
	stride := (maxN + 63) / 64
	if stride < 1 {
		stride = 1
	}
	var out []CurvePoint
	add := func(n int) {
		if len(out) > 0 && out[len(out)-1].N >= n {
			return
		}
		out = append(out, CurvePoint{
			N: n, X: c.x[n-1], Cycle: c.cycle[n-1], Util: c.util[n-1],
		})
	}
	for n := 1; n <= maxN; n += stride {
		if c.saturated && c.kneeN > 0 && n > c.kneeN && (len(out) == 0 || out[len(out)-1].N < c.kneeN) {
			add(c.kneeN)
		}
		add(n)
	}
	if c.saturated && c.kneeN > 0 {
		add(c.kneeN)
	}
	add(maxN)
	return out
}

// latencyStats returns the mean, p50 and p99 of ds in seconds (zeros when
// empty). ds is not modified.
func latencyStats(ds []time.Duration) (mean, p50, p99 float64) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	buf := append([]time.Duration(nil), ds...)
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	var sum time.Duration
	for _, d := range buf {
		sum += d
	}
	mean = sum.Seconds() / float64(len(buf))
	return mean, quantile(buf, 0.50), quantile(buf, 0.99)
}

// quantile returns the q-quantile of a sorted duration slice in seconds.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Seconds()
}
