package selfmodel

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// zeroHist renders the latency histogram's stable schema before any monitor
// exists (the nil-receiver scrape path).
var zeroHist = func() *report.FixedHistogram {
	h, err := report.NewFixedHistogram(report.DefaultLatencyBounds()...)
	if err != nil {
		panic(err)
	}
	return h
}()

// WriteMetrics renders the self-model in Prometheus text format. Every
// solverd_self_* family is emitted from the first scrape — zero-valued until
// the first window closes, with one series per DeviationMetrics entry — so
// the exposition lint and dashboards see a stable schema. A nil receiver is
// valid and renders the same families at zero.
func (m *Monitor) WriteMetrics(w io.Writer) error {
	var (
		rep      *Report
		hist     = zeroHist
		inFlight int
		sampled  uint64
	)
	if m != nil {
		m.mu.Lock()
		hist = m.latHist
		inFlight = m.inFlight
		sampled = m.totalCompletions
		m.mu.Unlock()
		rep = m.rep.Load()
	}
	if rep == nil {
		rep = &Report{}
	}
	devRatio := make(map[string]float64, len(rep.Deviations))
	devBreaches := make(map[string]uint64, len(rep.Deviations))
	for _, d := range rep.Deviations {
		devRatio[d.Metric] = d.Ratio
		devBreaches[d.Metric] = d.Breaches
	}
	b01 := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}

	fmt.Fprintln(w, "# HELP solverd_self_windows_total Self-model sampling windows closed.")
	fmt.Fprintln(w, "# TYPE solverd_self_windows_total counter")
	fmt.Fprintf(w, "solverd_self_windows_total %d\n", rep.Windows)
	fmt.Fprintln(w, "# HELP solverd_self_empty_windows_total Windows closed with no completed sampled requests.")
	fmt.Fprintln(w, "# TYPE solverd_self_empty_windows_total counter")
	fmt.Fprintf(w, "solverd_self_empty_windows_total %d\n", rep.EmptyWindows)
	fmt.Fprintln(w, "# HELP solverd_self_sampled_requests_total Requests the self-model has sampled to completion.")
	fmt.Fprintln(w, "# TYPE solverd_self_sampled_requests_total counter")
	// Read live, not from the published report: completions land here the
	// moment a sampled request finishes, not at the next window close.
	fmt.Fprintf(w, "solverd_self_sampled_requests_total %d\n", sampled)
	fmt.Fprintln(w, "# HELP solverd_self_refits_total Deviation-breach-triggered self-model re-fits.")
	fmt.Fprintln(w, "# TYPE solverd_self_refits_total counter")
	fmt.Fprintf(w, "solverd_self_refits_total %d\n", rep.Refits)
	fmt.Fprintln(w, "# HELP solverd_self_in_flight Sampled requests currently in flight.")
	fmt.Fprintln(w, "# TYPE solverd_self_in_flight gauge")
	fmt.Fprintf(w, "solverd_self_in_flight %d\n", inFlight)
	fmt.Fprintln(w, "# HELP solverd_self_snapshot_version Version of the self-model demand snapshot the curve is solved from (0 before the first fit).")
	fmt.Fprintln(w, "# TYPE solverd_self_snapshot_version gauge")
	fmt.Fprintf(w, "solverd_self_snapshot_version %d\n", rep.SnapshotVersion)

	fmt.Fprintln(w, "# HELP solverd_self_observed_throughput Latest window's observed throughput (requests/s).")
	fmt.Fprintln(w, "# TYPE solverd_self_observed_throughput gauge")
	fmt.Fprintf(w, "solverd_self_observed_throughput %g\n", rep.ObservedX)
	fmt.Fprintln(w, "# HELP solverd_self_predicted_throughput Self-model predicted throughput at the observed concurrency (requests/s).")
	fmt.Fprintln(w, "# TYPE solverd_self_predicted_throughput gauge")
	fmt.Fprintf(w, "solverd_self_predicted_throughput %g\n", rep.PredictedX)
	fmt.Fprintln(w, "# HELP solverd_self_observed_p50_seconds Latest window's observed median request latency.")
	fmt.Fprintln(w, "# TYPE solverd_self_observed_p50_seconds gauge")
	fmt.Fprintf(w, "solverd_self_observed_p50_seconds %g\n", rep.ObservedP50)
	fmt.Fprintln(w, "# HELP solverd_self_observed_p99_seconds Latest window's observed p99 request latency.")
	fmt.Fprintln(w, "# TYPE solverd_self_observed_p99_seconds gauge")
	fmt.Fprintf(w, "solverd_self_observed_p99_seconds %g\n", rep.ObservedP99)
	fmt.Fprintln(w, "# HELP solverd_self_predicted_p50_seconds Self-model predicted median latency at the observed concurrency.")
	fmt.Fprintln(w, "# TYPE solverd_self_predicted_p50_seconds gauge")
	fmt.Fprintf(w, "solverd_self_predicted_p50_seconds %g\n", rep.PredictedP50)
	fmt.Fprintln(w, "# HELP solverd_self_predicted_p99_seconds Self-model predicted p99 latency at the observed concurrency.")
	fmt.Fprintln(w, "# TYPE solverd_self_predicted_p99_seconds gauge")
	fmt.Fprintf(w, "solverd_self_predicted_p99_seconds %g\n", rep.PredictedP99)

	fmt.Fprintln(w, "# HELP solverd_self_saturated Whether the predicted curve reaches the saturation knee inside the solved range (0/1).")
	fmt.Fprintln(w, "# TYPE solverd_self_saturated gauge")
	fmt.Fprintf(w, "solverd_self_saturated %d\n", b01(rep.Saturated))
	fmt.Fprintln(w, "# HELP solverd_self_knee_concurrency Predicted saturation knee: first concurrency at the worker-utilization threshold (0 until saturated).")
	fmt.Fprintln(w, "# TYPE solverd_self_knee_concurrency gauge")
	fmt.Fprintf(w, "solverd_self_knee_concurrency %d\n", rep.KneeN)
	fmt.Fprintln(w, "# HELP solverd_self_p99_limit_concurrency Largest concurrency whose predicted p99 honors the configured bound (0 without a bound).")
	fmt.Fprintln(w, "# TYPE solverd_self_p99_limit_concurrency gauge")
	fmt.Fprintf(w, "solverd_self_p99_limit_concurrency %d\n", rep.P99LimitN)
	fmt.Fprintln(w, "# HELP solverd_self_max_safe_concurrency Predicted max concurrency before saturation and the p99 bound.")
	fmt.Fprintln(w, "# TYPE solverd_self_max_safe_concurrency gauge")
	fmt.Fprintf(w, "solverd_self_max_safe_concurrency %d\n", rep.MaxSafeN)
	fmt.Fprintln(w, "# HELP solverd_self_headroom Predicted max safe concurrency minus current in-flight (negative past saturation).")
	fmt.Fprintln(w, "# TYPE solverd_self_headroom gauge")
	fmt.Fprintf(w, "solverd_self_headroom %d\n", rep.MaxSafeN-inFlight)
	fmt.Fprintln(w, "# HELP solverd_self_shed_advised Advisory shed signal: the node predicts it is at or past its safe concurrency (0/1; acted on by the admission gate in enforce mode).")
	fmt.Fprintln(w, "# TYPE solverd_self_shed_advised gauge")
	fmt.Fprintf(w, "solverd_self_shed_advised %d\n", b01(rep.Ready && rep.MaxSafeN-inFlight <= 0))

	fmt.Fprintln(w, "# HELP solverd_self_deviation_ratio Latest |observed-predicted|/observed per self-model metric.")
	fmt.Fprintln(w, "# TYPE solverd_self_deviation_ratio gauge")
	for _, metric := range DeviationMetrics {
		fmt.Fprintf(w, "solverd_self_deviation_ratio{metric=%q} %g\n", metric, devRatio[metric])
	}
	fmt.Fprintln(w, "# HELP solverd_self_deviation_breaches_total Windows whose self-model deviation exceeded the paper's bound, per metric.")
	fmt.Fprintln(w, "# TYPE solverd_self_deviation_breaches_total counter")
	for _, metric := range DeviationMetrics {
		fmt.Fprintf(w, "solverd_self_deviation_breaches_total{metric=%q} %d\n", metric, devBreaches[metric])
	}

	fmt.Fprintln(w, "# HELP solverd_self_request_seconds Sampled request wall time observed by the self-model.")
	fmt.Fprintln(w, "# TYPE solverd_self_request_seconds histogram")
	var err error
	if m != nil {
		m.mu.Lock()
		err = hist.WritePrometheus(w, "solverd_self_request_seconds", "")
		m.mu.Unlock()
	} else {
		err = hist.WritePrometheus(w, "solverd_self_request_seconds", "")
	}
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}
