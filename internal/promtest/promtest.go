// Package promtest is a strict little parser and linter for the Prometheus
// text exposition format — enough to lint what solverd emits. It is a test
// helper package: every entry point takes a *testing.T, and only _test files
// import it (the server, cluster and obs expositions all lint against the
// same rules instead of each package growing its own parser).
package promtest

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Sample is one parsed exposition line: name{labels} value, optionally
// followed by an OpenMetrics exemplar (`# {trace_id="…"} value timestamp`)
// on _bucket lines.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
	Line   string
	// Exemplar holds the raw exemplar portion after " # " ("" when absent).
	Exemplar string
}

// Label returns the value of the named label, or "" when absent.
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

type Label struct{ Name, Value string }

// Family groups the HELP/TYPE metadata and samples of one metric family.
type Family struct {
	Name, Help, Type string
	Samples          []Sample
}

// ParseExposition parses a text exposition into its families. Histogram
// _bucket/_sum/_count series are folded into their base family. Any line the
// strict grammar rejects fails the test.
func ParseExposition(t *testing.T, body string) map[string]*Family {
	t.Helper()
	families := make(map[string]*Family)
	get := func(name string) *Family {
		f, ok := families[name]
		if !ok {
			f = &Family{Name: name}
			families[name] = f
		}
		return f
	}
	// A histogram's _bucket/_sum/_count series belong to the base family.
	base := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := families[trimmed]; ok && f.Type == "histogram" {
					return trimmed
				}
			}
		}
		return name
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("HELP line without text: %q", line)
			}
			get(name).Help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("TYPE line without a type: %q", line)
			}
			get(name).Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		f := get(base(sample.Name))
		f.Samples = append(f.Samples, sample)
	}
	return families
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Line: line}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no value separator")
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end := -1
		inQuotes := false
		for j := 1; j < len(rest); j++ {
			switch rest[j] {
			case '\\':
				j++ // skip the escaped byte
			case '"':
				inQuotes = !inQuotes
			case '}':
				if !inQuotes {
					end = j
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		labels := rest[1:end]
		rest = rest[end+1:]
		for len(labels) > 0 {
			eq := strings.Index(labels, "=")
			if eq < 0 {
				return s, fmt.Errorf("label without =")
			}
			name := labels[:eq]
			q, tail, err := cutQuoted(labels[eq+1:])
			if err != nil {
				return s, err
			}
			s.Labels = append(s.Labels, Label{Name: name, Value: q})
			labels = strings.TrimPrefix(tail, ",")
		}
	}
	// An exemplar rides after the value as ` # {labels} value [timestamp]`
	// (OpenMetrics); split it off and validate its shape separately.
	if value, exemplar, found := strings.Cut(rest, " # "); found {
		if err := checkExemplar(exemplar); err != nil {
			return s, err
		}
		s.Exemplar = exemplar
		rest = value
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value: %v", err)
	}
	s.Value = v
	return s, nil
}

// checkExemplar validates the portion after " # ": a {label="value",...} set
// followed by a float value and an optional float timestamp.
func checkExemplar(ex string) error {
	if len(ex) == 0 || ex[0] != '{' {
		return fmt.Errorf("exemplar without label set: %q", ex)
	}
	end := strings.Index(ex, "}")
	if end < 0 {
		return fmt.Errorf("unterminated exemplar label set: %q", ex)
	}
	labels := ex[1:end]
	for len(labels) > 0 {
		eq := strings.Index(labels, "=")
		if eq < 0 {
			return fmt.Errorf("exemplar label without =: %q", ex)
		}
		if !labelNameRe.MatchString(labels[:eq]) {
			return fmt.Errorf("illegal exemplar label name %q", labels[:eq])
		}
		_, tail, err := cutQuoted(labels[eq+1:])
		if err != nil {
			return err
		}
		labels = strings.TrimPrefix(tail, ",")
	}
	fields := strings.Fields(ex[end+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("exemplar needs a value and optional timestamp: %q", ex)
	}
	for _, f := range fields {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			return fmt.Errorf("bad exemplar number %q: %v", f, err)
		}
	}
	return nil
}

// cutQuoted splits a leading Go-quoted string off s.
func cutQuoted(s string) (value, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("label value not quoted: %q", s)
	}
	for j := 1; j < len(s); j++ {
		switch s[j] {
		case '\\':
			j++
		case '"':
			v, err := strconv.Unquote(s[:j+1])
			return v, s[j+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value: %q", s)
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// LintFamilies runs every family through the exposition rules as a subtest:
// HELP and TYPE present, legal metric/label names, non-negative counters,
// and — for histograms — cumulative bucket monotonicity with a terminal
// +Inf bucket matching _count.
func LintFamilies(t *testing.T, families map[string]*Family) {
	t.Helper()
	for name, f := range families {
		f := f
		t.Run(name, func(t *testing.T) {
			LintFamily(t, f)
		})
	}
}

// LintFamily checks one family against the exposition rules.
func LintFamily(t *testing.T, f *Family) {
	t.Helper()
	if !metricNameRe.MatchString(f.Name) {
		t.Errorf("illegal metric name %q", f.Name)
	}
	if f.Help == "" {
		t.Errorf("family %q has no HELP", f.Name)
	}
	switch f.Type {
	case "counter", "gauge", "histogram":
	default:
		t.Errorf("family %q has TYPE %q", f.Name, f.Type)
	}
	for _, s := range f.Samples {
		for _, l := range s.Labels {
			if !labelNameRe.MatchString(l.Name) {
				t.Errorf("illegal label name %q in %q", l.Name, s.Line)
			}
		}
		if f.Type == "counter" && s.Value < 0 {
			t.Errorf("negative counter: %q", s.Line)
		}
	}
	if f.Type == "histogram" {
		LintHistogram(t, f)
	}
}

// RequireFamilies fails for each named family missing from the exposition.
func RequireFamilies(t *testing.T, families map[string]*Family, names ...string) {
	t.Helper()
	for _, want := range names {
		if _, ok := families[want]; !ok {
			t.Errorf("family %q missing from the exposition", want)
		}
	}
}

// SingleValue returns the value of a family's sole sample, failing when the
// family is absent or has more than one series.
func SingleValue(t *testing.T, families map[string]*Family, name string) float64 {
	t.Helper()
	f, ok := families[name]
	if !ok || len(f.Samples) != 1 {
		t.Fatalf("family %q: %+v", name, f)
	}
	return f.Samples[0].Value
}

// HistogramCount returns the _count of the histogram series matching every
// given label (pass none for an unlabelled histogram); -1 when no _count
// sample matches.
func HistogramCount(t *testing.T, families map[string]*Family, name string, labels ...Label) float64 {
	t.Helper()
	f, ok := families[name]
	if !ok {
		t.Fatalf("histogram family %q missing", name)
	}
	for _, s := range f.Samples {
		if !strings.HasSuffix(s.Name, "_count") {
			continue
		}
		match := true
		for _, want := range labels {
			if s.Label(want.Name) != want.Value {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	return -1
}

// LintHistogram checks bucket structure: per label-set cumulative counts are
// non-decreasing, the terminal bucket is le="+Inf", and it equals _count.
func LintHistogram(t *testing.T, f *Family) {
	t.Helper()
	type series struct {
		buckets []Sample
		sum     *Sample
		count   *Sample
	}
	bySet := make(map[string]*series)
	keyOf := func(s Sample) string {
		var parts []string
		for _, l := range s.Labels {
			if l.Name == "le" {
				continue
			}
			parts = append(parts, l.Name+"="+l.Value)
		}
		return strings.Join(parts, ",")
	}
	get := func(k string) *series {
		sr, ok := bySet[k]
		if !ok {
			sr = &series{}
			bySet[k] = sr
		}
		return sr
	}
	for i := range f.Samples {
		s := f.Samples[i]
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			get(keyOf(s)).buckets = append(get(keyOf(s)).buckets, s)
		case strings.HasSuffix(s.Name, "_sum"):
			get(keyOf(s)).sum = &f.Samples[i]
		case strings.HasSuffix(s.Name, "_count"):
			get(keyOf(s)).count = &f.Samples[i]
		default:
			t.Errorf("histogram %q has stray sample %q", f.Name, s.Line)
		}
	}
	for key, sr := range bySet {
		if len(sr.buckets) == 0 || sr.sum == nil || sr.count == nil {
			t.Errorf("histogram %q{%s}: incomplete series (buckets=%d sum=%v count=%v)",
				f.Name, key, len(sr.buckets), sr.sum != nil, sr.count != nil)
			continue
		}
		prevBound, prevCount := -1.0, -1.0
		for _, b := range sr.buckets {
			le := b.Label("le")
			if le == "" {
				t.Errorf("bucket without le: %q", b.Line)
				continue
			}
			bound := 0.0
			if le == "+Inf" {
				bound = math.Inf(1)
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("bad le %q in %q", le, b.Line)
					continue
				}
				bound = v
			}
			if bound <= prevBound {
				t.Errorf("histogram %q{%s}: le=%s out of order", f.Name, key, le)
			}
			if b.Value < prevCount {
				t.Errorf("histogram %q{%s}: bucket counts not cumulative at le=%s (%g < %g)",
					f.Name, key, le, b.Value, prevCount)
			}
			prevBound, prevCount = bound, b.Value
		}
		last := sr.buckets[len(sr.buckets)-1]
		if lastLe := last.Label("le"); lastLe != "+Inf" {
			t.Errorf("histogram %q{%s}: terminal bucket le=%q, want +Inf", f.Name, key, lastLe)
		}
		if last.Value != sr.count.Value {
			t.Errorf("histogram %q{%s}: +Inf bucket %g != count %g",
				f.Name, key, last.Value, sr.count.Value)
		}
	}
}
