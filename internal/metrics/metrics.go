// Package metrics provides the statistical machinery used throughout the
// experiments: summary statistics with confidence intervals, the paper's
// mean-percentage-deviation metric (eq. 15), time-series containers for load
// test output, batch-means analysis and MSER-5 steady-state (warm-up)
// truncation for simulator runs.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned when a computation is asked of an empty sample.
var ErrNoData = errors.New("metrics: no data")

// Summary holds moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n−1 denominator)
	StdDev   float64
	Min, Max float64
}

// Summarize computes summary statistics of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		for _, x := range xs {
			d := x - s.Mean
			s.Variance += d * d
		}
		s.Variance /= float64(s.N - 1)
		s.StdDev = math.Sqrt(s.Variance)
	}
	return s, nil
}

// ConfidenceInterval95 returns the half-width of the 95% confidence interval
// of the mean, using the normal approximation for n > 30 and a small-sample
// t-table below that.
func (s Summary) ConfidenceInterval95() float64 {
	if s.N < 2 {
		return math.Inf(1)
	}
	return tCritical95(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (table for small df, 1.96 asymptote beyond).
func tCritical95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %g outside [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MeanDeviationPct is the paper's eq. 15: the mean absolute percentage
// deviation of predictions from measurements over M observation points,
//
//	%Dev = (1/M) Σ |Predicted(m) − Measured(m)| / Measured(m) × 100.
//
// Points with Measured == 0 are skipped (they would be undefined).
func MeanDeviationPct(predicted, measured []float64) (float64, error) {
	if len(predicted) != len(measured) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(predicted), len(measured))
	}
	sum, m := 0.0, 0
	for i := range measured {
		if measured[i] == 0 {
			continue
		}
		sum += math.Abs(predicted[i]-measured[i]) / math.Abs(measured[i])
		m++
	}
	if m == 0 {
		return 0, ErrNoData
	}
	return sum / float64(m) * 100, nil
}

// MaxDeviationPct returns the worst-case percentage deviation over the
// observation points (companion to MeanDeviationPct).
func MaxDeviationPct(predicted, measured []float64) (float64, error) {
	if len(predicted) != len(measured) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(predicted), len(measured))
	}
	worst, m := 0.0, 0
	for i := range measured {
		if measured[i] == 0 {
			continue
		}
		worst = math.Max(worst, math.Abs(predicted[i]-measured[i])/math.Abs(measured[i]))
		m++
	}
	if m == 0 {
		return 0, ErrNoData
	}
	return worst * 100, nil
}

// TimePoint is one sample of a load-test time series.
type TimePoint struct {
	// T is seconds since test start.
	T float64
	// V is the metric value (TPS, response time, utilization, …).
	V float64
}

// Series is an ordered metric time series.
type Series struct {
	Name   string
	Points []TimePoint
}

// Append adds a sample.
func (s *Series) Append(t, v float64) {
	s.Points = append(s.Points, TimePoint{T: t, V: v})
}

// Values extracts the raw values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// After returns the sub-series with T >= t0 (sharing backing storage).
func (s *Series) After(t0 float64) *Series {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= t0 })
	return &Series{Name: s.Name, Points: s.Points[i:]}
}

// MSER5 applies the MSER-5 steady-state truncation rule to a sequence of
// observations: the observations are grouped into batches of five, and the
// truncation point d* minimises the half-width statistic
//
//	MSER(d) = S_d / (m − d)
//
// where S_d is the standard deviation of the last m−d batch means. It
// returns the index (in raw observations) at which the steady state is
// deemed to begin. This replaces eyeballing the ramp-up transient of the
// paper's Fig. 1. By convention the search is limited to the first half of
// the run so a short run cannot truncate everything.
func MSER5(xs []float64) int {
	const batch = 5
	m := len(xs) / batch
	if m < 4 {
		return 0
	}
	means := make([]float64, m)
	for b := 0; b < m; b++ {
		sum := 0.0
		for i := 0; i < batch; i++ {
			sum += xs[b*batch+i]
		}
		means[b] = sum / batch
	}
	bestD, bestStat := 0, math.Inf(1)
	for d := 0; d <= m/2; d++ {
		tail := means[d:]
		mean := 0.0
		for _, v := range tail {
			mean += v
		}
		mean /= float64(len(tail))
		ss := 0.0
		for _, v := range tail {
			ss += (v - mean) * (v - mean)
		}
		// MSER statistic: variance of the retained means scaled by the
		// square of the retained count.
		stat := ss / float64(len(tail)*len(tail))
		if stat < bestStat {
			bestStat, bestD = stat, d
		}
	}
	return bestD * batch
}

// BatchMeans splits xs into nBatches equal batches (dropping any remainder)
// and returns the batch means — the standard variance-estimation technique
// for autocorrelated simulation output.
func BatchMeans(xs []float64, nBatches int) ([]float64, error) {
	if nBatches < 1 {
		return nil, fmt.Errorf("metrics: nBatches %d", nBatches)
	}
	size := len(xs) / nBatches
	if size == 0 {
		return nil, fmt.Errorf("metrics: %d observations cannot fill %d batches", len(xs), nBatches)
	}
	out := make([]float64, nBatches)
	for b := 0; b < nBatches; b++ {
		sum := 0.0
		for i := 0; i < size; i++ {
			sum += xs[b*size+i]
		}
		out[b] = sum / float64(size)
	}
	return out, nil
}

// RelErr returns |a−b|/|b|, or |a| when b == 0.
func RelErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
