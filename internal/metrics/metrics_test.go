package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary %+v", s)
	}
	// Sample variance with n−1: Σ(x−5)² = 32 → 32/7.
	if !numeric.AlmostEqual(s.Variance, 32.0/7.0, 1e-12) {
		t.Errorf("variance %g, want %g", s.Variance, 32.0/7.0)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Variance != 0 || s.StdDev != 0 {
		t.Error("single sample must have zero variance")
	}
	if !math.IsInf(s.ConfidenceInterval95(), 1) {
		t.Error("CI of single sample must be infinite")
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Empirical coverage of the 95% CI on normal-ish data should be near
	// 95% (binomially, 1000 trials of n=20 give ±2%).
	rng := rand.New(rand.NewSource(42))
	const trials = 1000
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = rng.NormFloat64()*2 + 10
		}
		s, err := Summarize(xs)
		if err != nil {
			t.Fatal(err)
		}
		hw := s.ConfidenceInterval95()
		if math.Abs(s.Mean-10) <= hw {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Errorf("95%% CI empirical coverage %.3f", rate)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Percentile(xs, 120); err == nil {
		t.Error("out-of-range percentile should error")
	}
	if v, err := Percentile([]float64{7}, 99); err != nil || v != 7 {
		t.Errorf("single sample percentile: %g, %v", v, err)
	}
}

func TestMeanDeviationPct(t *testing.T) {
	pred := []float64{110, 90, 100}
	meas := []float64{100, 100, 100}
	got, err := MeanDeviationPct(pred, meas)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(got, (10.0+10.0+0)/3, 1e-12) {
		t.Errorf("deviation %g, want 6.67", got)
	}
}

func TestMeanDeviationPctSkipsZeros(t *testing.T) {
	got, err := MeanDeviationPct([]float64{5, 110}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("deviation %g, want 10 (zero point skipped)", got)
	}
	if _, err := MeanDeviationPct([]float64{1}, []float64{0}); !errors.Is(err, ErrNoData) {
		t.Errorf("all-zero measured: %v", err)
	}
	if _, err := MeanDeviationPct([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestMaxDeviationPct(t *testing.T) {
	got, err := MaxDeviationPct([]float64{110, 80}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("max deviation %g, want 20", got)
	}
	if _, err := MaxDeviationPct([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := MaxDeviationPct([]float64{1}, []float64{0}); !errors.Is(err, ErrNoData) {
		t.Errorf("all-zero: %v", err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "tps"
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if len(s.Points) != 10 {
		t.Fatalf("points %d", len(s.Points))
	}
	vals := s.Values()
	if vals[3] != 9 {
		t.Errorf("Values()[3] = %g", vals[3])
	}
	after := s.After(5)
	if len(after.Points) != 5 || after.Points[0].T != 5 {
		t.Errorf("After(5): %+v", after.Points)
	}
	if after.Name != "tps" {
		t.Error("After should retain the name")
	}
}

func TestMSER5DetectsWarmup(t *testing.T) {
	// 100 transient observations climbing to a plateau of 400 stationary
	// ones: the truncation point must land near the end of the transient.
	rng := rand.New(rand.NewSource(1))
	var xs []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, float64(i)/100*50+rng.Float64())
	}
	for i := 0; i < 400; i++ {
		xs = append(xs, 50+rng.Float64())
	}
	cut := MSER5(xs)
	if cut < 60 || cut > 150 {
		t.Errorf("MSER-5 truncation at %d, want near 100", cut)
	}
	// Stationary data should not be truncated much.
	stat := make([]float64, 300)
	for i := range stat {
		stat[i] = 5 + rng.Float64()
	}
	if cut := MSER5(stat); cut > 100 {
		t.Errorf("stationary truncation %d too aggressive", cut)
	}
}

func TestMSER5ShortSeries(t *testing.T) {
	if cut := MSER5([]float64{1, 2, 3}); cut != 0 {
		t.Errorf("short series truncation %d, want 0", cut)
	}
}

func TestBatchMeans(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	bm, err := BatchMeans(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 3.5, 5.5}
	for i := range want {
		if bm[i] != want[i] {
			t.Errorf("batch %d mean %g, want %g", i, bm[i], want[i])
		}
	}
	if _, err := BatchMeans(xs, 0); err == nil {
		t.Error("zero batches should error")
	}
	if _, err := BatchMeans(xs, 10); err == nil {
		t.Error("more batches than data should error")
	}
	// Remainder dropped: 7 observations into 3 batches of 2.
	bm, err = BatchMeans([]float64{1, 2, 3, 4, 5, 6, 100}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm) != 3 || bm[2] != 5.5 {
		t.Errorf("remainder handling: %v", bm)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Errorf("RelErr = %g", RelErr(11, 10))
	}
	if RelErr(3, 0) != 3 {
		t.Errorf("RelErr zero base = %g", RelErr(3, 0))
	}
}
