package monitor

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/promtest"
)

func TestDeviationTrackerBounds(t *testing.T) {
	rec := obs.New(obs.Config{Node: "devtest", SampleRate: 1})
	d := NewDeviationTracker(rec)

	// Inside the paper's bounds: 2% throughput, 8% cycle time.
	if ratio, over := d.ObserveThroughput(10, 100, 102); over || ratio < 0.019 || ratio > 0.021 {
		t.Fatalf("2%% throughput deviation: ratio=%g over=%v", ratio, over)
	}
	if _, over := d.ObserveCycleTime(10, 0.5, 0.54); over {
		t.Fatal("8% cycle-time deviation flagged over the 9% bound")
	}
	if got := len(d.Violations()); got != 0 {
		t.Fatalf("%d violations recorded inside the bounds", got)
	}
	if got := rec.Stats().Traces; got != 0 {
		t.Fatalf("recorder holds %d traces before any breach", got)
	}

	// Outside: 5% throughput breaches 3%, 12% cycle time breaches 9%.
	if ratio, over := d.ObserveThroughput(20, 100, 95); !over || ratio < 0.049 {
		t.Fatalf("5%% throughput deviation: ratio=%g over=%v", ratio, over)
	}
	if _, over := d.ObserveCycleTime(20, 0.5, 0.56); !over {
		t.Fatal("12% cycle-time deviation not flagged")
	}
	viols := d.Violations()
	if len(viols) != 2 {
		t.Fatalf("violations = %d, want 2", len(viols))
	}
	for _, v := range viols {
		if v.TraceID == "" {
			t.Fatalf("violation %+v has no recorded trace", v)
		}
		frags := rec.Get(v.TraceID)
		if len(frags) != 1 || frags[0].Handler != "prediction-deviation" {
			t.Fatalf("breach trace %s not in the recorder: %+v", v.TraceID, frags)
		}
		attrs := frags[0].Spans[0].Attrs
		found := false
		for _, a := range attrs {
			if a.Key == "metric" && a.Value == v.Metric {
				found = true
			}
		}
		if !found {
			t.Fatalf("breach span missing metric attr: %+v", attrs)
		}
	}

	// Zero measurement is ignored, not a division by zero.
	if ratio, over := d.ObserveThroughput(5, 0, 10); ratio != 0 || over {
		t.Fatal("zero measurement must be a no-op")
	}
}

func TestDeviationTrackerMetrics(t *testing.T) {
	d := NewDeviationTracker(nil) // nil recorder: gauges still work
	d.ObserveThroughput(10, 100, 102)
	d.ObserveThroughput(20, 100, 110)
	d.ObserveCycleTime(10, 1, 1.05)

	var sb strings.Builder
	if err := d.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	families := promtest.ParseExposition(t, sb.String())
	promtest.RequireFamilies(t, families,
		"solverd_prediction_deviation_ratio",
		"solverd_prediction_deviation_ratio_mean",
		"solverd_prediction_deviation_exceeded_total",
		"solverd_monitor_deviation_breaches_total")
	promtest.LintFamilies(t, families)

	get := func(family, metric string) float64 {
		t.Helper()
		for _, s := range families[family].Samples {
			if s.Label("metric") == metric {
				return s.Value
			}
		}
		t.Fatalf("no %s{metric=%q}", family, metric)
		return 0
	}
	if v := get("solverd_prediction_deviation_ratio", "throughput"); v < 0.099 || v > 0.101 {
		t.Errorf("latest throughput deviation = %g, want 0.10", v)
	}
	if v := get("solverd_prediction_deviation_ratio_mean", "throughput"); v < 0.059 || v > 0.061 {
		t.Errorf("mean throughput deviation = %g, want 0.06", v)
	}
	if v := get("solverd_prediction_deviation_exceeded_total", "throughput"); v != 1 {
		t.Errorf("throughput breaches = %g, want 1 (10%% > 3%%)", v)
	}
	if v := get("solverd_prediction_deviation_exceeded_total", "cycle_time"); v != 0 {
		t.Errorf("cycle-time breaches = %g, want 0 (5%% < 9%%)", v)
	}
	// The alertable breach counter mirrors the same counts keyed by bound,
	// with both bound series present even at zero.
	breaches := families["solverd_monitor_deviation_breaches_total"].Samples
	if len(breaches) != 2 {
		t.Fatalf("breach counter has %d series, want both bounds: %+v", len(breaches), breaches)
	}
	byBound := map[string]float64{}
	for _, s := range breaches {
		byBound[s.Label("bound")] = s.Value
	}
	if byBound["throughput"] != 1 || byBound["cycle_time"] != 0 {
		t.Errorf("breaches by bound = %v, want throughput=1 cycle_time=0", byBound)
	}
}
