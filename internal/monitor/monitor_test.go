package monitor

import (
	"errors"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

// sweep runs a small JPetStore campaign shared by the tests.
func sweep(t *testing.T) []*loadgen.Result {
	t.Helper()
	results, err := loadgen.Sweep(testbed.JPetStore(), []int{1, 28, 140}, loadgen.SweepConfig{
		Duration: 400, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestBuildUtilizationMatrix(t *testing.T) {
	results := sweep(t)
	m, err := BuildUtilizationMatrix(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Concurrency) != 3 || len(m.Stations) != 12 || len(m.Pct) != 3 {
		t.Fatalf("matrix shape: %d rows × %d stations", len(m.Pct), len(m.Stations))
	}
	for i, row := range m.Pct {
		for k, v := range row {
			if v < 0 || v > 100.5 {
				t.Errorf("row %d station %s: %.1f%%", i, m.Stations[k], v)
			}
		}
	}
	// Utilizations grow with concurrency for every station below saturation.
	for k := range m.Stations {
		if m.Pct[2][k] < m.Pct[0][k] {
			t.Errorf("station %s utilization fell with load: %v", m.Stations[k],
				[]float64{m.Pct[0][k], m.Pct[2][k]})
		}
	}
	// JPetStore's measured bottleneck is the database CPU.
	name, pct := m.HottestStation()
	if name != "db/cpu" {
		t.Errorf("hottest station %q (%.0f%%), want db/cpu", name, pct)
	}
	if pct < 80 {
		t.Errorf("db/cpu at N=140 is %.0f%%, want near saturation", pct)
	}
}

func TestStationColumn(t *testing.T) {
	m, err := BuildUtilizationMatrix(sweep(t))
	if err != nil {
		t.Fatal(err)
	}
	col := m.Station("db/cpu")
	if len(col) != 3 {
		t.Fatalf("column length %d", len(col))
	}
	if m.Station("bogus") != nil {
		t.Error("unknown station should return nil")
	}
}

func TestExtractDemandSamples(t *testing.T) {
	results := sweep(t)
	samples, err := ExtractDemandSamples(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 12 {
		t.Fatalf("%d stations", len(samples))
	}
	p := testbed.JPetStore()
	names := p.StationNames()
	for k, s := range samples {
		if len(s.At) != 3 || len(s.Demands) != 3 {
			t.Fatalf("station %s: ragged samples", names[k])
		}
		if s.At[0] != 1 || s.At[2] != 140 {
			t.Errorf("station %s: abscissae %v", names[k], s.At)
		}
		// Extracted demands decrease with concurrency (the paper's core
		// observation) for the substantial resources.
		if s.Demands[0] > 1e-3 && s.Demands[2] > s.Demands[0] {
			t.Errorf("station %s: demand rose %v", names[k], s.Demands)
		}
	}
	// Demands at N=140 approximate the true curves.
	truth := p.TrueDemands(140)
	for k := range truth {
		if truth[k] < 1e-4 {
			continue
		}
		if rel := metrics.RelErr(samples[k].Demands[2], truth[k]); rel > 0.10 {
			t.Errorf("station %s: extracted %.5f vs truth %.5f", names[k], samples[k].Demands[2], truth[k])
		}
	}
}

func TestExtractDemandSamplesVsThroughput(t *testing.T) {
	results := sweep(t)
	samples, err := ExtractDemandSamplesVsThroughput(results)
	if err != nil {
		t.Fatal(err)
	}
	// Abscissae are measured throughputs, increasing with load here.
	for _, s := range samples {
		if !(s.At[0] < s.At[1] && s.At[1] < s.At[2]) {
			t.Fatalf("throughput abscissae not increasing: %v", s.At)
		}
		if s.At[2] < 50 {
			t.Errorf("X at N=140 is %.1f, unexpectedly small", s.At[2])
		}
	}
}

func TestBuildDemandTable(t *testing.T) {
	results := sweep(t)
	tab, err := BuildDemandTable(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Demand) != 3 || len(tab.Demand[0]) != 12 {
		t.Fatalf("table shape %dx%d", len(tab.Demand), len(tab.Demand[0]))
	}
	if tab.Concurrency[1] != 28 {
		t.Errorf("row label %d", tab.Concurrency[1])
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := BuildUtilizationMatrix(nil); !errors.Is(err, ErrNoResults) {
		t.Errorf("matrix: %v", err)
	}
	if _, err := ExtractDemandSamples(nil); !errors.Is(err, ErrNoResults) {
		t.Errorf("samples: %v", err)
	}
	if _, err := ExtractDemandSamplesVsThroughput(nil); !errors.Is(err, ErrNoResults) {
		t.Errorf("samples-vs-X: %v", err)
	}
	if _, err := BuildDemandTable(nil); !errors.Is(err, ErrNoResults) {
		t.Errorf("demand table: %v", err)
	}
}
