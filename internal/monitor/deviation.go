package monitor

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// The paper's validation bounds (Section 6): MVASD predictions tracked the
// measured system within ~3% on throughput and ~9% on cycle time. A live
// deployment drifting past them means the fitted demand curves no longer
// describe the system and the sampling campaign should be re-run.
const (
	ThroughputDeviationBound = 0.03
	CycleTimeDeviationBound  = 0.09
)

// DeviationTracker compares MVASD predictions against live measurements and
// exposes the running deviation as solverd_prediction_deviation_ratio gauges.
// When an observation breaches the paper's bounds it force-records a
// "deviation" trace into the flight recorder — bypassing tail-sampling, so
// the evidence of a model gone stale is always retained.
type DeviationTracker struct {
	rec *obs.Recorder

	// jn and prof are the event journal and anomaly profile store fed on
	// every bound breach (Instrument; both nil-safe).
	jn   *journal.Journal
	prof *journal.ProfileStore

	mu sync.Mutex
	// latest deviation ratio per metric (|predicted−measured| / measured),
	// plus running sums for the mean.
	latest     map[string]float64
	sum        map[string]float64
	n          map[string]int
	exceeded   map[string]int
	violations []DeviationEvent
}

// DeviationEvent is one bound breach, as recorded into the flight recorder.
type DeviationEvent struct {
	Metric    string  `json:"metric"`
	Users     int     `json:"users"`
	Measured  float64 `json:"measured"`
	Predicted float64 `json:"predicted"`
	Ratio     float64 `json:"ratio"`
	Bound     float64 `json:"bound"`
	TraceID   string  `json:"traceId,omitempty"`
}

// NewDeviationTracker wires a tracker to a flight recorder; rec may be nil
// (gauges still work, breaches just are not trace-recorded).
func NewDeviationTracker(rec *obs.Recorder) *DeviationTracker {
	return &DeviationTracker{
		rec:      rec,
		latest:   make(map[string]float64),
		sum:      make(map[string]float64),
		n:        make(map[string]int),
		exceeded: make(map[string]int),
	}
}

// Instrument wires the tracker to the event journal and the anomaly profile
// store: every bound breach appends a TypeDeviationBreach event (linking the
// force-recorded deviation trace) and asks for a rate-limited pprof capture.
// Both may be nil. Call before serving traffic.
func (d *DeviationTracker) Instrument(jn *journal.Journal, prof *journal.ProfileStore) {
	d.jn, d.prof = jn, prof
}

// Observe records one prediction-vs-measurement pair for the named metric
// ("throughput" or "cycle_time") at the given user count, against the given
// bound. It returns the deviation ratio and whether it breached the bound.
func (d *DeviationTracker) Observe(metric string, users int, measured, predicted, bound float64) (float64, bool) {
	if measured == 0 {
		return 0, false
	}
	ratio := (predicted - measured) / measured
	if ratio < 0 {
		ratio = -ratio
	}
	d.mu.Lock()
	d.latest[metric] = ratio
	d.sum[metric] += ratio
	d.n[metric]++
	over := ratio > bound
	var ev DeviationEvent
	if over {
		d.exceeded[metric]++
		ev = DeviationEvent{
			Metric: metric, Users: users,
			Measured: measured, Predicted: predicted,
			Ratio: ratio, Bound: bound,
		}
	}
	d.mu.Unlock()
	if over {
		ev.TraceID = d.recordViolation(ev)
		d.mu.Lock()
		d.violations = append(d.violations, ev)
		d.mu.Unlock()
		// The breach is the journal's flagship anomaly: append the event
		// (linking the deviation trace) and grab a rate-limited profile of
		// the node at the moment its model went stale.
		profileID, _ := d.prof.Capture(journal.TypeDeviationBreach, ev.TraceID)
		d.jn.Append(journal.TypeDeviationBreach,
			fmt.Sprintf("%s deviation %.1f%% breached %.0f%% bound at N=%d",
				ev.Metric, 100*ev.Ratio, 100*ev.Bound, ev.Users),
			journal.Event{
				TraceID:   ev.TraceID,
				ProfileID: profileID,
				Attrs: []journal.Attr{
					{Key: "metric", Value: ev.Metric},
					{Key: "users", Value: fmt.Sprintf("%d", ev.Users)},
					{Key: "measured", Value: fmt.Sprintf("%.6g", ev.Measured)},
					{Key: "predicted", Value: fmt.Sprintf("%.6g", ev.Predicted)},
					{Key: "ratio", Value: fmt.Sprintf("%.4f", ev.Ratio)},
					{Key: "bound", Value: fmt.Sprintf("%.2f", ev.Bound)},
				},
			})
	}
	return ratio, over
}

// ObserveThroughput and ObserveCycleTime apply the paper's bounds.
func (d *DeviationTracker) ObserveThroughput(users int, measured, predicted float64) (float64, bool) {
	return d.Observe("throughput", users, measured, predicted, ThroughputDeviationBound)
}

func (d *DeviationTracker) ObserveCycleTime(users int, measured, predicted float64) (float64, bool) {
	return d.Observe("cycle_time", users, measured, predicted, CycleTimeDeviationBound)
}

// recordViolation force-records the breach as a one-span trace so it shows up
// in /debug/traces (and cluster-wide trace queries) like any slow request.
func (d *DeviationTracker) recordViolation(ev DeviationEvent) string {
	if d.rec == nil {
		return ""
	}
	tr := telemetry.New(telemetry.NewID(), nil)
	span := tr.StartRoot("prediction-deviation")
	span.SetAttr("metric", ev.Metric)
	span.SetAttr("users", ev.Users)
	span.SetAttr("measured", fmt.Sprintf("%.6g", ev.Measured))
	span.SetAttr("predicted", fmt.Sprintf("%.6g", ev.Predicted))
	span.SetAttr("deviation_ratio", fmt.Sprintf("%.4f", ev.Ratio))
	span.SetAttr("bound", fmt.Sprintf("%.2f", ev.Bound))
	span.End()
	d.rec.ForceRecord(tr, "prediction-deviation", 0, time.Duration(0))
	return tr.ID()
}

// Violations returns the bound breaches observed so far.
func (d *DeviationTracker) Violations() []DeviationEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]DeviationEvent(nil), d.violations...)
}

// WriteMetrics renders the deviation gauges in Prometheus text format:
// the latest and mean |predicted−measured|/measured per metric, and a
// counter of bound breaches.
func (d *DeviationTracker) WriteMetrics(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	fmt.Fprintln(w, "# HELP solverd_prediction_deviation_ratio Latest |predicted-measured|/measured per validation metric.")
	fmt.Fprintln(w, "# TYPE solverd_prediction_deviation_ratio gauge")
	for _, m := range []string{"throughput", "cycle_time"} {
		fmt.Fprintf(w, "solverd_prediction_deviation_ratio{metric=%q} %g\n", m, d.latest[m])
	}
	fmt.Fprintln(w, "# HELP solverd_prediction_deviation_ratio_mean Mean deviation ratio over all observations per metric.")
	fmt.Fprintln(w, "# TYPE solverd_prediction_deviation_ratio_mean gauge")
	for _, m := range []string{"throughput", "cycle_time"} {
		mean := 0.0
		if d.n[m] > 0 {
			mean = d.sum[m] / float64(d.n[m])
		}
		fmt.Fprintf(w, "solverd_prediction_deviation_ratio_mean{metric=%q} %g\n", m, mean)
	}
	fmt.Fprintln(w, "# HELP solverd_prediction_deviation_exceeded_total Observations that breached the paper's deviation bounds.")
	fmt.Fprintln(w, "# TYPE solverd_prediction_deviation_exceeded_total counter")
	for _, m := range []string{"throughput", "cycle_time"} {
		fmt.Fprintf(w, "solverd_prediction_deviation_exceeded_total{metric=%q} %d\n", m, d.exceeded[m])
	}
	// The alertable breach counter: one series per validation bound, both
	// always exposed so alert rules never see a vanishing series.
	fmt.Fprintln(w, "# HELP solverd_monitor_deviation_breaches_total Deviation-bound breaches by the bound breached (throughput: 3%, cycle_time: 9%).")
	fmt.Fprintln(w, "# TYPE solverd_monitor_deviation_breaches_total counter")
	for _, m := range []string{"throughput", "cycle_time"} {
		fmt.Fprintf(w, "solverd_monitor_deviation_breaches_total{bound=%q} %d\n", m, d.exceeded[m])
	}
	_, err := fmt.Fprintln(w)
	return err
}
