// Package monitor turns load-test measurements into the artefacts the
// paper's monitoring tooling (vmstat/iostat/netstat, Section 4.2) produces:
// utilization matrices in the shape of Tables 2–3, and per-station service
// demand sample arrays extracted with the Service Demand Law — the inputs
// MVASD interpolates.
package monitor

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/loadgen"
)

// UtilizationMatrix is a Table-2/Table-3 style view: one row per tested
// concurrency, one column per station, utilization in percent. CPU columns
// report the per-core average (0–100%), matching how vmstat reports
// multi-core boxes; single-server resources are identical either way.
type UtilizationMatrix struct {
	// Concurrency labels the rows.
	Concurrency []int
	// Stations labels the columns ("server/resource").
	Stations []string
	// Pct[i][k] is the percent utilization of station k at row i.
	Pct [][]float64
	// Throughput[i] is the measured pages/second at row i.
	Throughput []float64
}

// ErrNoResults is returned when asked to tabulate an empty campaign.
var ErrNoResults = errors.New("monitor: no results")

// BuildUtilizationMatrix assembles the matrix from a load-test sweep.
func BuildUtilizationMatrix(results []*loadgen.Result) (*UtilizationMatrix, error) {
	if len(results) == 0 {
		return nil, ErrNoResults
	}
	m := &UtilizationMatrix{
		Stations:    results[0].StationNames,
		Concurrency: make([]int, len(results)),
		Pct:         make([][]float64, len(results)),
		Throughput:  make([]float64, len(results)),
	}
	for i, r := range results {
		if len(r.Stats.Utilization) != len(m.Stations) {
			return nil, fmt.Errorf("monitor: result %d has %d stations, want %d",
				i, len(r.Stats.Utilization), len(m.Stations))
		}
		m.Concurrency[i] = r.Concurrency
		m.Throughput[i] = r.Stats.Throughput
		row := make([]float64, len(m.Stations))
		for k := range row {
			row[k] = r.Stats.Utilization[k] * 100
		}
		m.Pct[i] = row
	}
	return m, nil
}

// HottestStation returns the station with the highest utilization in the
// final (highest-concurrency) row — the measured bottleneck.
func (m *UtilizationMatrix) HottestStation() (name string, pct float64) {
	last := m.Pct[len(m.Pct)-1]
	best := -1
	for k, v := range last {
		if best < 0 || v > last[best] {
			best = k
		}
	}
	return m.Stations[best], last[best]
}

// Station returns the utilization column for the named station, or nil.
func (m *UtilizationMatrix) Station(name string) []float64 {
	for k, s := range m.Stations {
		if s == name {
			col := make([]float64, len(m.Pct))
			for i := range m.Pct {
				col[i] = m.Pct[i][k]
			}
			return col
		}
	}
	return nil
}

// ExtractDemandSamples converts a sweep into per-station demand sample
// arrays indexed by concurrency — the {S_k^{i_1} … S_k^{i_M}} input of
// Algorithm 3 (MVASD).
func ExtractDemandSamples(results []*loadgen.Result) ([]core.DemandSamples, error) {
	if len(results) == 0 {
		return nil, ErrNoResults
	}
	k := len(results[0].Demands)
	samples := make([]core.DemandSamples, k)
	for s := range samples {
		samples[s].At = make([]float64, len(results))
		samples[s].Demands = make([]float64, len(results))
	}
	for i, r := range results {
		if len(r.Demands) != k {
			return nil, fmt.Errorf("monitor: result %d has %d demands, want %d", i, len(r.Demands), k)
		}
		for s := 0; s < k; s++ {
			samples[s].At[i] = float64(r.Concurrency)
			samples[s].Demands[i] = r.Demands[s]
		}
	}
	return samples, nil
}

// ExtractDemandSamplesVsThroughput indexes the same demand samples by the
// measured throughput instead of concurrency — the paper's Section-7
// variant (Fig. 11), natural for open systems where X is the controllable
// input.
func ExtractDemandSamplesVsThroughput(results []*loadgen.Result) ([]core.DemandSamples, error) {
	samples, err := ExtractDemandSamples(results)
	if err != nil {
		return nil, err
	}
	for s := range samples {
		for i, r := range results {
			samples[s].At[i] = r.Stats.Throughput
		}
	}
	return samples, nil
}

// DemandTable is a Fig.-5 style view of measured service demands: one row
// per concurrency, one column per station, demands in seconds.
type DemandTable struct {
	Concurrency []int
	Stations    []string
	Demand      [][]float64
}

// BuildDemandTable assembles the demand table from a sweep.
func BuildDemandTable(results []*loadgen.Result) (*DemandTable, error) {
	if len(results) == 0 {
		return nil, ErrNoResults
	}
	t := &DemandTable{
		Stations:    results[0].StationNames,
		Concurrency: make([]int, len(results)),
		Demand:      make([][]float64, len(results)),
	}
	for i, r := range results {
		t.Concurrency[i] = r.Concurrency
		t.Demand[i] = append([]float64(nil), r.Demands...)
	}
	return t, nil
}
