package report

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// FixedHistogram is a fixed-bucket histogram in the Prometheus style: values
// are counted into buckets by configured upper bounds, with an implicit +Inf
// bucket, a running sum and a total count. Unlike Histogram (which bins a
// finished sample for ASCII display), FixedHistogram is built for streaming
// observation — the solver service feeds it request latencies and renders it
// on /metrics. It is not safe for concurrent use; callers serialise access.
type FixedHistogram struct {
	bounds []float64 // ascending upper bounds, excluding +Inf
	counts []uint64  // per-bucket counts; counts[len(bounds)] is the +Inf bucket
	sum    float64
	count  uint64

	// exemplars[i] is the most recent traced observation that landed in
	// bucket i (zero TraceID: none). Allocated lazily on the first
	// ObserveWithExemplar so the plain Observe path stays allocation-free.
	exemplars []Exemplar
}

// Exemplar is one traced observation attached to a histogram bucket, in the
// OpenMetrics exemplar shape: the trace id, the observed value and its wall
// time — a p99 spike on a dashboard links straight to a stitched trace.
type Exemplar struct {
	TraceID     string
	Value       float64
	UnixSeconds float64
}

// NewFixedHistogram builds a histogram with the given ascending upper bounds
// (the +Inf bucket is implicit and must not be passed).
func NewFixedHistogram(bounds ...float64) (*FixedHistogram, error) {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("report: histogram bounds not ascending: %g after %g",
				bounds[i], bounds[i-1])
		}
	}
	if len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], 1) {
		return nil, fmt.Errorf("report: +Inf bound is implicit")
	}
	return &FixedHistogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}, nil
}

// DefaultLatencyBounds are upper bounds (seconds) suited to solver-request
// latencies: sub-millisecond cache hits through multi-second sweeps.
func DefaultLatencyBounds() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// DefaultIterationBounds are upper bounds suited to inner fixed-point
// iteration counts (MVASD's demand/throughput resolution, capped at 200 by
// default): roughly logarithmic from "converged immediately" to "hit the
// iteration cap".
func DefaultIterationBounds() []float64 {
	return []float64{1, 2, 3, 5, 10, 20, 50, 100, 200}
}

// Observe counts one value.
func (h *FixedHistogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (bucket is "le")
	h.counts[i]++
	h.sum += v
	h.count++
}

// ObserveWithExemplar counts one value and, when traceID is non-empty,
// remembers it as the containing bucket's exemplar (most recent wins).
func (h *FixedHistogram) ObserveWithExemplar(v float64, traceID string, unixSeconds float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	if traceID == "" {
		return
	}
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.counts))
	}
	h.exemplars[i] = Exemplar{TraceID: traceID, Value: v, UnixSeconds: unixSeconds}
}

// Count returns the number of observations.
func (h *FixedHistogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *FixedHistogram) Sum() float64 { return h.sum }

// Cumulative returns the bucket upper bounds (ending with +Inf) and the
// cumulative counts ≤ each bound, the exact shape of Prometheus `_bucket`
// series.
func (h *FixedHistogram) Cumulative() (bounds []float64, counts []uint64) {
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(1))
	counts = make([]uint64, len(h.counts))
	run := uint64(0)
	for i, c := range h.counts {
		run += c
		counts[i] = run
	}
	return bounds, counts
}

// Quantile estimates the q-quantile (0..1) by linear interpolation inside the
// containing bucket, Prometheus histogram_quantile-style. The lowest bucket
// interpolates from 0; an estimate in the +Inf bucket is clamped to the
// largest finite bound. Returns NaN on an empty histogram.
func (h *FixedHistogram) Quantile(q float64) float64 {
	if h.count == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(h.count)
	run := uint64(0)
	for i, c := range h.counts {
		prev := run
		run += c
		if float64(run) < rank {
			continue
		}
		if i == len(h.bounds) { // +Inf bucket
			if len(h.bounds) == 0 {
				return math.NaN()
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if c == 0 {
			return h.bounds[i]
		}
		return lo + (h.bounds[i]-lo)*(rank-float64(prev))/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// WritePrometheus renders the histogram as Prometheus-text `_bucket`, `_sum`
// and `_count` lines for the given metric name, with an optional pre-rendered
// label set like `handler="solve"` spliced alongside the `le` label.
func (h *FixedHistogram) WritePrometheus(w io.Writer, name, labels string) error {
	return h.writePrometheus(w, name, labels, false)
}

// WritePrometheusExemplars is WritePrometheus with each bucket's most
// recent traced observation appended in the OpenMetrics exemplar syntax:
//
//	name_bucket{le="0.5"} 7 # {trace_id="…"} 0.41 1700000000.123
//
// Buckets without an exemplar render exactly as WritePrometheus does.
func (h *FixedHistogram) WritePrometheusExemplars(w io.Writer, name, labels string) error {
	return h.writePrometheus(w, name, labels, true)
}

func (h *FixedHistogram) writePrometheus(w io.Writer, name, labels string, withExemplars bool) error {
	bounds, counts := h.Cumulative()
	for i, b := range bounds {
		le := "+Inf"
		if !math.IsInf(b, 1) {
			le = fmt.Sprintf("%g", b)
		}
		sep := ""
		if labels != "" {
			sep = ","
		}
		ex := ""
		if withExemplars && i < len(h.exemplars) && h.exemplars[i].TraceID != "" {
			e := h.exemplars[i]
			ex = fmt.Sprintf(" # {trace_id=%q} %g %.3f", e.TraceID, e.Value, e.UnixSeconds)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d%s\n", name, labels, sep, le, counts[i], ex); err != nil {
			return err
		}
	}
	lb := ""
	if labels != "" {
		lb = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, lb, h.sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, lb, h.count)
	return err
}
