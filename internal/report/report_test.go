package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tab := NewTable("Demo", "Users", "CPU", "Disk")
	tab.AddRow("1", "2.5", "10.0")
	tab.AddRow("1500", "35.2", "93.1")
	out := tab.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "Users") {
		t.Fatalf("missing title/header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Columns align: "CPU" column starts at the same offset in each line.
	hdrIdx := strings.Index(lines[1], "CPU")
	if hdrIdx < 0 {
		t.Fatal("no CPU header")
	}
	if lines[4][hdrIdx:hdrIdx+4] != "35.2" {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableShortRowPadding(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("only")
	if len(tab.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tab.Rows[0])
	}
}

func TestTableFloatRow(t *testing.T) {
	tab := NewTable("", "name", "x", "y")
	tab.AddFloatRow("r1", "%.2f", 1.234, 5.678)
	if tab.Rows[0][1] != "1.23" || tab.Rows[0][2] != "5.68" {
		t.Errorf("float row %v", tab.Rows[0])
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n"
	if buf.String() != want {
		t.Errorf("CSV %q, want %q", buf.String(), want)
	}
}

func TestChartRender(t *testing.T) {
	var c Chart
	c.Title = "Throughput"
	c.XLabel = "users"
	c.YLabel = "pages/s"
	xs := []float64{1, 50, 100, 200}
	c.Add("measured", xs, []float64{2, 80, 120, 140})
	c.Add("mvasd", xs, []float64{2, 82, 118, 138})
	out := c.String()
	for _, want := range []string{"Throughput", "users", "pages/s", "measured", "mvasd", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// All chart rows bounded by the configured width.
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 90 {
			t.Errorf("line too long (%d chars)", len(line))
		}
	}
}

func TestChartEmpty(t *testing.T) {
	var c Chart
	c.Title = "empty"
	out := c.String()
	if !strings.Contains(out, "no data") {
		t.Errorf("expected no-data notice:\n%s", out)
	}
}

func TestChartSinglePointAndNaN(t *testing.T) {
	var c Chart
	c.Add("pt", []float64{5}, []float64{7})
	c.Add("nan", []float64{1, 2}, []float64{math.NaN(), math.NaN()})
	out := c.String()
	if !strings.Contains(out, "pt") {
		t.Errorf("single point series missing:\n%s", out)
	}
}

func TestChartCSV(t *testing.T) {
	var c Chart
	c.Add("s", []float64{1, 2}, []float64{3, 4})
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\ns,1,3\ns,2,4\n"
	if buf.String() != want {
		t.Errorf("CSV %q", buf.String())
	}
}

func TestFormatters(t *testing.T) {
	if Pct(93.14159) != "93.1" {
		t.Errorf("Pct = %q", Pct(93.14159))
	}
	if F(1.23456, 3) != "1.235" {
		t.Errorf("F = %q", F(1.23456, 3))
	}
	fs := IntsToFloats([]int{1, 2})
	if fs[0] != 1 || fs[1] != 2 {
		t.Errorf("IntsToFloats = %v", fs)
	}
}

func TestHistogramRender(t *testing.T) {
	h := &Histogram{Title: "response times", Unit: "ms", Bins: 4, Width: 20}
	xs := []float64{1, 1, 1, 2, 2, 3, 9}
	out := h.String(xs)
	if !strings.Contains(out, "response times") {
		t.Errorf("title missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + 4 bins
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Bar heights are monotone in bin counts: bin 0 (5 values) longest.
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Errorf("densest bin should have the full-width bar:\n%s", out)
	}
	if !strings.Contains(lines[4], " 1") {
		t.Errorf("last bin should count the outlier:\n%s", out)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := &Histogram{}
	if out := h.String(nil); !strings.Contains(out, "no data") {
		t.Errorf("empty data:\n%s", out)
	}
	// All-equal samples must not divide by zero.
	out := h.String([]float64{5, 5, 5})
	if !strings.Contains(out, "3") {
		t.Errorf("constant data:\n%s", out)
	}
}
