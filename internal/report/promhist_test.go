package report

import (
	"math"
	"strings"
	"testing"
)

func TestFixedHistogramBuckets(t *testing.T) {
	h, err := NewFixedHistogram(0.01, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-2.565) > 1e-12 {
		t.Errorf("sum = %g", h.Sum())
	}
	bounds, counts := h.Cumulative()
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v", bounds)
	}
	// le=0.01 catches 0.005 and the boundary value 0.01.
	want := []uint64{2, 3, 4, 5}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", counts, want)
		}
	}
}

func TestFixedHistogramRejectsBadBounds(t *testing.T) {
	if _, err := NewFixedHistogram(1, 1); err == nil {
		t.Error("duplicate bounds accepted")
	}
	if _, err := NewFixedHistogram(2, 1); err == nil {
		t.Error("descending bounds accepted")
	}
	if _, err := NewFixedHistogram(1, math.Inf(1)); err == nil {
		t.Error("explicit +Inf accepted")
	}
}

func TestFixedHistogramQuantile(t *testing.T) {
	h, _ := NewFixedHistogram(1, 2, 3, 4)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%4) + 0.5) // uniform over the four finite buckets
	}
	if q := h.Quantile(0.5); q < 1.5 || q > 2.5 {
		t.Errorf("p50 = %g", q)
	}
	if q := h.Quantile(1); q != 4 {
		t.Errorf("p100 = %g", q)
	}
	empty, _ := NewFixedHistogram(1)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram produced a quantile")
	}
}

func TestFixedHistogramWritePrometheus(t *testing.T) {
	h, _ := NewFixedHistogram(0.1, 1)
	h.Observe(0.05)
	h.Observe(5)
	var b strings.Builder
	if err := h.WritePrometheus(&b, "x_seconds", `handler="solve"`); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{handler="solve",le="0.1"} 1`,
		`x_seconds_bucket{handler="solve",le="1"} 1`,
		`x_seconds_bucket{handler="solve",le="+Inf"} 2`,
		`x_seconds_sum{handler="solve"} 5.05`,
		`x_seconds_count{handler="solve"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	var nb strings.Builder
	if err := h.WritePrometheus(&nb, "y_seconds", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nb.String(), `y_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("label-free rendering broken:\n%s", nb.String())
	}
}
