// Package report renders experiment output: fixed-width ASCII tables in the
// shape of the paper's Tables 2–5, simple ASCII line charts for the figure
// reproductions, and CSV writers so the series can be re-plotted elsewhere.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a simple column-oriented table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddFloatRow appends a row of a label plus formatted floats.
func (t *Table) AddFloatRow(label string, format string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV emits the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LineSeries is one named series of a chart.
type LineSeries struct {
	Name string
	X, Y []float64
}

// Chart is an ASCII line chart of one or more series over a shared X axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []LineSeries
	// Width and Height are the plot-area dimensions in characters
	// (default 72×20).
	Width, Height int
}

// Add appends a series.
func (c *Chart) Add(name string, xs, ys []float64) {
	c.Series = append(c.Series, LineSeries{Name: name, X: xs, Y: ys})
}

// seriesMarks are the glyphs used for successive series.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	// Bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Always anchor Y at zero for throughput-style plots unless negative.
	if ymin > 0 && ymin < ymax/2 {
		ymin = 0
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, mark byte) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		row := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		row = height - 1 - row
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = mark
		}
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		// Linear interpolation between sample points for line continuity.
		for i := 0; i+1 < len(s.X); i++ {
			steps := width / 2
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(steps)
				plot(s.X[i]+(s.X[i+1]-s.X[i])*f, s.Y[i]+(s.Y[i+1]-s.Y[i])*f, mark)
			}
		}
		if len(s.X) == 1 {
			plot(s.X[0], s.Y[0], mark)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLo := trimFloat(ymin)
	yHi := trimFloat(ymax)
	fmt.Fprintf(&b, "%s (top=%s, bottom=%s)\n", c.YLabel, yHi, yLo)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, " %s: %s .. %s\n", c.XLabel, trimFloat(xmin), trimFloat(xmax))
	for si, s := range c.Series {
		fmt.Fprintf(&b, "   %c %s\n", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (c *Chart) String() string {
	var b strings.Builder
	_ = c.Render(&b)
	return b.String()
}

// WriteCSV emits the chart's series as tidy CSV: series,x,y.
func (c *Chart) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range c.Series {
		for i := range s.X {
			rec := []string{s.Name, trimFloat(s.X[i]), trimFloat(s.Y[i])}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// trimFloat formats a float compactly.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f", v) }

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// IntsToFloats converts an int slice for charting.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}
