package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram is an ASCII histogram of a sample (e.g. per-transaction response
// times from a load test).
type Histogram struct {
	Title string
	// Unit labels the bin edges ("ms", "s").
	Unit string
	// Bins is the bucket count (default 12).
	Bins int
	// Width is the maximum bar width in characters (default 50).
	Width int
}

// Render draws the histogram of xs.
func (h *Histogram) Render(w io.Writer, xs []float64) error {
	if len(xs) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", h.Title)
		return err
	}
	bins := h.Bins
	if bins <= 0 {
		bins = 12
	}
	width := h.Width
	if width <= 0 {
		width = 50
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range xs {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	for i, c := range counts {
		left := lo + float64(i)*(hi-lo)/float64(bins)
		right := lo + float64(i+1)*(hi-lo)/float64(bins)
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*width/maxCount)
		}
		fmt.Fprintf(&b, "%10.3g–%-10.3g %s |%s %d\n", left, right, h.Unit, bar, c)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the histogram of xs to a string.
func (h *Histogram) String(xs []float64) string {
	var b strings.Builder
	_ = h.Render(&b, xs)
	return b.String()
}
