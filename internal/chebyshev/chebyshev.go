// Package chebyshev implements Chebyshev node generation, Chebyshev
// polynomials and polynomial interpolation error bounds, reproducing the
// machinery of Section 8 of the paper: placing the (expensive) load-test
// sample points at Chebyshev nodes so that spline/polynomial interpolation
// of service demands avoids Runge oscillation, and bounding the resulting
// interpolation error (paper eqs. 16–19, Fig. 13).
package chebyshev

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
)

// ErrBadNodes is returned for invalid node requests (n < 1, empty interval).
var ErrBadNodes = errors.New("chebyshev: invalid node request")

// Nodes returns the n Chebyshev nodes of the first kind on (−1, 1):
//
//	x_k = cos((2k−1)/(2n) · π), k = 1..n            (paper eq. 16)
//
// sorted in increasing order.
func Nodes(n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n = %d", ErrBadNodes, n)
	}
	xs := make([]float64, n)
	for k := 1; k <= n; k++ {
		// cos is decreasing on [0, π], so fill from the back to sort ascending.
		xs[n-k] = math.Cos((2*float64(k) - 1) / (2 * float64(n)) * math.Pi)
	}
	return xs, nil
}

// NodesOn returns the n Chebyshev nodes of the first kind mapped onto the
// arbitrary interval [a, b]:
//
//	x_k = (a+b)/2 + (b−a)/2 · cos((2k−1)/(2n) · π)   (paper eq. 17)
//
// sorted in increasing order. a < b is required.
func NodesOn(a, b float64, n int) ([]float64, error) {
	if a >= b {
		return nil, fmt.Errorf("%w: interval [%g, %g]", ErrBadNodes, a, b)
	}
	base, err := Nodes(n)
	if err != nil {
		return nil, err
	}
	mid, half := (a+b)/2, (b-a)/2
	for i := range base {
		base[i] = mid + half*base[i]
	}
	return base, nil
}

// NodesSecondKind returns the n Chebyshev points of the second kind
// ("Chebyshev–Lobatto", the extrema grid including the endpoints) on [a, b],
// sorted ascending. These are the natural grid for barycentric interpolation
// when endpoint samples are available. n ≥ 2 is required.
func NodesSecondKind(a, b float64, n int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: second-kind nodes need n >= 2, got %d", ErrBadNodes, n)
	}
	if a >= b {
		return nil, fmt.Errorf("%w: interval [%g, %g]", ErrBadNodes, a, b)
	}
	mid, half := (a+b)/2, (b-a)/2
	xs := make([]float64, n)
	for k := 0; k < n; k++ {
		xs[n-1-k] = mid + half*math.Cos(math.Pi*float64(k)/float64(n-1))
	}
	xs[0], xs[n-1] = a, b // exact endpoints despite rounding
	return xs, nil
}

// IntegerNodesOn maps Chebyshev nodes onto integer concurrency levels in
// [a, b], de-duplicating and keeping order. Load tests can only be run at
// whole numbers of virtual users. The paper takes the ceiling of each node:
// that choice reproduces its Section-8 sets exactly, e.g. N = {22, 151, 280}
// for Chebyshev-3 on [1, 300] (node 21.03 → 22).
func IntegerNodesOn(a, b float64, n int) ([]int, error) {
	xs, err := NodesOn(a, b, n)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for _, x := range xs {
		v := int(math.Ceil(x))
		if v < int(math.Ceil(a)) {
			v = int(math.Ceil(a))
		}
		if v > int(math.Floor(b)) {
			v = int(math.Floor(b))
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// T evaluates the Chebyshev polynomial of the first kind T_n(x) using the
// numerically stable three-term recurrence (Clenshaw would be overkill for a
// single basis function).
func T(n int, x float64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("chebyshev.T: negative degree %d", n))
	}
	switch n {
	case 0:
		return 1
	case 1:
		return x
	}
	tPrev, tCur := 1.0, x
	for k := 2; k <= n; k++ {
		tPrev, tCur = tCur, 2*x*tCur-tPrev
	}
	return tCur
}

// Clenshaw evaluates the Chebyshev series Σ c_k T_k(x) with Clenshaw's
// recurrence. c[0] is the coefficient of T₀.
func Clenshaw(c []float64, x float64) float64 {
	if len(c) == 0 {
		return 0
	}
	var b1, b2 float64
	for k := len(c) - 1; k >= 1; k-- {
		b1, b2 = 2*x*b1-b2+c[k], b1
	}
	return x*b1 - b2 + c[0]
}

// Fit computes the degree-(n−1) Chebyshev series coefficients interpolating
// f at the n first-kind nodes on [a, b] via the discrete cosine relations.
func Fit(f func(float64) float64, a, b float64, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n = %d", ErrBadNodes, n)
	}
	if a >= b {
		return nil, fmt.Errorf("%w: interval [%g, %g]", ErrBadNodes, a, b)
	}
	mid, half := (a+b)/2, (b-a)/2
	fv := make([]float64, n)
	for k := 0; k < n; k++ {
		theta := math.Pi * (float64(k) + 0.5) / float64(n)
		fv[k] = f(mid + half*math.Cos(theta))
	}
	c := make([]float64, n)
	for j := 0; j < n; j++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += fv[k] * math.Cos(math.Pi*float64(j)*(float64(k)+0.5)/float64(n))
		}
		c[j] = 2 * sum / float64(n)
	}
	c[0] /= 2
	return c, nil
}

// EvalFit evaluates a Chebyshev series fitted on [a, b] at x.
func EvalFit(c []float64, a, b, x float64) float64 {
	u := (2*x - a - b) / (b - a)
	return Clenshaw(c, u)
}

// Interpolant is a barycentric Lagrange interpolant over arbitrary nodes.
// With Chebyshev nodes the barycentric form is numerically stable even for
// large n, unlike the Vandermonde approach.
type Interpolant struct {
	xs, ys, w []float64
}

// NewInterpolant builds the barycentric interpolant through (xs, ys). The
// abscissae must be pairwise distinct (not necessarily sorted).
func NewInterpolant(xs, ys []float64) (*Interpolant, error) {
	n := len(xs)
	if n == 0 || len(ys) != n {
		return nil, fmt.Errorf("%w: need equal, non-empty xs/ys", ErrBadNodes)
	}
	w := make([]float64, n)
	// Scale differences by the interval width to avoid under/overflow of
	// the barycentric weights for larger n.
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	scale := 4 / math.Max(hi-lo, 1e-300)
	for i := 0; i < n; i++ {
		prod := 1.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := (xs[i] - xs[j]) * scale
			if d == 0 {
				return nil, fmt.Errorf("%w: duplicate abscissa %g", ErrBadNodes, xs[i])
			}
			prod *= d
		}
		w[i] = 1 / prod
	}
	return &Interpolant{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		w:  w,
	}, nil
}

// Eval evaluates the interpolating polynomial at x.
func (p *Interpolant) Eval(x float64) float64 {
	var num, den float64
	for i := range p.xs {
		d := x - p.xs[i]
		if d == 0 {
			return p.ys[i]
		}
		t := p.w[i] / d
		num += t * p.ys[i]
		den += t
	}
	return num / den
}

// ErrorBound returns the classical Chebyshev interpolation error bound on
// [−1, 1] for n first-kind nodes (paper eq. 19):
//
//	|f(x) − P(x)| ≤ 1/(2^{n−1} n!) · max |f⁽ⁿ⁾|
//
// given maxDerivN = max_{x∈[−1,1]} |f⁽ⁿ⁾(x)|.
func ErrorBound(n int, maxDerivN float64) float64 {
	if n < 1 {
		panic(fmt.Sprintf("chebyshev.ErrorBound: n = %d", n))
	}
	return maxDerivN / (math.Exp2(float64(n-1)) * numeric.Factorial(n))
}

// ErrorBoundOn generalises ErrorBound to an arbitrary interval [a, b]: the
// node polynomial Π(x−x_i) for first-kind Chebyshev nodes has max modulus
// 2·((b−a)/4)ⁿ, so the bound becomes 2((b−a)/4)ⁿ/n! · max|f⁽ⁿ⁾|.
func ErrorBoundOn(a, b float64, n int, maxDerivN float64) float64 {
	if n < 1 {
		panic(fmt.Sprintf("chebyshev.ErrorBoundOn: n = %d", n))
	}
	return 2 * math.Pow((b-a)/4, float64(n)) / numeric.Factorial(n) * maxDerivN
}

// ExponentialBound evaluates the eq.-19 bound for the exponential family
// f(x) = exp(x/µ) on [−1, 1], whose n-th derivative max is e^{1/µ}/µⁿ. This
// is exactly the family plotted in the paper's Fig. 13.
func ExponentialBound(n int, mu float64) float64 {
	if mu <= 0 {
		panic(fmt.Sprintf("chebyshev.ExponentialBound: µ = %g", mu))
	}
	maxD := math.Exp(1/mu) / math.Pow(mu, float64(n))
	return ErrorBound(n, maxD)
}

// MaxInterpolationError measures the actual max |f − P| on a dense grid for
// the interpolant of f at n first-kind nodes on [a, b]. Used to verify that
// the theoretical bound holds (and by the Fig. 13 experiment).
func MaxInterpolationError(f func(float64) float64, a, b float64, n, gridPts int) (float64, error) {
	xs, err := NodesOn(a, b, n)
	if err != nil {
		return 0, err
	}
	ys := make([]float64, n)
	for i, x := range xs {
		ys[i] = f(x)
	}
	p, err := NewInterpolant(xs, ys)
	if err != nil {
		return 0, err
	}
	if gridPts < 2 {
		gridPts = 256
	}
	worst := 0.0
	for _, x := range numeric.Linspace(a, b, gridPts) {
		worst = math.Max(worst, math.Abs(f(x)-p.Eval(x)))
	}
	return worst, nil
}
