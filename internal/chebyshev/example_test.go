package chebyshev_test

import (
	"fmt"

	"repro/internal/chebyshev"
)

// ExampleIntegerNodesOn reproduces the paper's Section-8 load-test point
// sets for JPetStore on the concurrency range [1, 300].
func ExampleIntegerNodesOn() {
	for _, n := range []int{3, 5, 7} {
		pts, err := chebyshev.IntegerNodesOn(1, 300, n)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("Chebyshev %d: %v\n", n, pts)
	}
	// Output:
	// Chebyshev 3: [22 151 280]
	// Chebyshev 5: [9 63 151 239 293]
	// Chebyshev 7: [5 34 86 151 216 268 297]
}

// ExampleErrorBound evaluates the eq.-19 interpolation error bound (the
// paper's Fig. 13): beyond 5 nodes the bound is far below 0.2%.
func ExampleErrorBound() {
	for _, n := range []int{3, 5, 7} {
		// f(x) = exp(x) on [-1, 1]: max |f⁽ⁿ⁾| = e.
		fmt.Printf("n=%d bound=%.2g\n", n, chebyshev.ErrorBound(n, 2.718281828))
	}
	// Output:
	// n=3 bound=0.11
	// n=5 bound=0.0014
	// n=7 bound=8.4e-06
}
