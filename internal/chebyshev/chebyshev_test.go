package chebyshev

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestNodesCountAndRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 32} {
		xs, err := Nodes(n)
		if err != nil {
			t.Fatalf("Nodes(%d): %v", n, err)
		}
		if len(xs) != n {
			t.Fatalf("Nodes(%d) returned %d points", n, len(xs))
		}
		if !numeric.IsSortedStrict(xs) {
			t.Errorf("Nodes(%d) not sorted: %v", n, xs)
		}
		for _, x := range xs {
			if x <= -1 || x >= 1 {
				t.Errorf("Nodes(%d): %g outside (-1,1)", n, x)
			}
		}
	}
}

func TestNodesAreChebyshevRoots(t *testing.T) {
	// The first-kind nodes are exactly the roots of T_n.
	for _, n := range []int{1, 3, 6, 9} {
		xs, err := Nodes(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs {
			if v := T(n, x); math.Abs(v) > 1e-12 {
				t.Errorf("T_%d(%g) = %g, want 0", n, x, v)
			}
		}
	}
}

func TestNodesSymmetry(t *testing.T) {
	xs, err := Nodes(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if !numeric.AlmostEqual(xs[i], -xs[len(xs)-1-i], 1e-14) {
			t.Errorf("nodes not symmetric: %g vs %g", xs[i], xs[len(xs)-1-i])
		}
	}
}

func TestNodesOnMapping(t *testing.T) {
	a, b := 1.0, 300.0
	xs, err := NodesOn(a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 5 || !numeric.IsSortedStrict(xs) {
		t.Fatalf("bad mapped nodes: %v", xs)
	}
	for _, x := range xs {
		if x <= a || x >= b {
			t.Errorf("mapped node %g outside (%g, %g)", x, a, b)
		}
	}
	// Midpoint symmetry is preserved by the affine map.
	mid := (a + b) / 2
	for i := range xs {
		if !numeric.AlmostEqual(xs[i]-mid, mid-xs[len(xs)-1-i], 1e-9) {
			t.Errorf("mapped nodes lost symmetry about %g", mid)
		}
	}
}

// TestIntegerNodesMatchPaper reproduces the paper's Section 8 settings for
// JPetStore on [1, 300]: Chebyshev 3 → {22, 151, 280},
// Chebyshev 5 → {9, 63, 151, 239, 293}, Chebyshev 7 → {5, 34, 86, 151, 216,
// 268, 297}.
func TestIntegerNodesMatchPaper(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{3, []int{22, 151, 280}},
		{5, []int{9, 63, 151, 239, 293}},
		{7, []int{5, 34, 86, 151, 216, 268, 297}},
	}
	for _, c := range cases {
		got, err := IntegerNodesOn(1, 300, c.n)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("Chebyshev %d: got %v, want %v", c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Chebyshev %d: got %v, want %v", c.n, got, c.want)
				break
			}
		}
	}
}

func TestIntegerNodesDeduplicate(t *testing.T) {
	// A narrow interval forces rounding collisions that must be removed.
	got, err := IntegerNodesOn(1, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate node %d in %v", v, got)
		}
		seen[v] = true
		if v < 1 || v > 3 {
			t.Fatalf("node %d outside [1,3]", v)
		}
	}
}

func TestNodesSecondKindEndpoints(t *testing.T) {
	xs, err := NodesSecondKind(2, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if xs[0] != 2 || xs[len(xs)-1] != 10 {
		t.Errorf("second-kind nodes must include endpoints: %v", xs)
	}
	if !numeric.IsSortedStrict(xs) {
		t.Errorf("not sorted: %v", xs)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Nodes(0); !errors.Is(err, ErrBadNodes) {
		t.Errorf("Nodes(0): %v", err)
	}
	if _, err := NodesOn(2, 2, 3); !errors.Is(err, ErrBadNodes) {
		t.Errorf("empty interval: %v", err)
	}
	if _, err := NodesSecondKind(0, 1, 1); !errors.Is(err, ErrBadNodes) {
		t.Errorf("second kind n=1: %v", err)
	}
	if _, err := NewInterpolant([]float64{1, 1}, []float64{0, 0}); !errors.Is(err, ErrBadNodes) {
		t.Errorf("duplicate abscissae: %v", err)
	}
	if _, err := Fit(math.Sin, 1, 1, 3); !errors.Is(err, ErrBadNodes) {
		t.Errorf("Fit empty interval: %v", err)
	}
}

func TestTPolynomialIdentities(t *testing.T) {
	// T₂(x) = 2x²−1, T₃(x) = 4x³−3x.
	for _, x := range numeric.Linspace(-1, 1, 21) {
		if got, want := T(2, x), 2*x*x-1; !numeric.AlmostEqual(got, want, 1e-12) {
			t.Errorf("T2(%g) = %g, want %g", x, got, want)
		}
		if got, want := T(3, x), 4*x*x*x-3*x; !numeric.AlmostEqual(got, want, 1e-12) {
			t.Errorf("T3(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestTBoundedOnInterval(t *testing.T) {
	f := func(x float64, nRaw uint8) bool {
		n := int(nRaw % 20)
		x = math.Mod(x, 1)
		if math.IsNaN(x) {
			return true
		}
		return math.Abs(T(n, x)) <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTCosineIdentity(t *testing.T) {
	// T_n(cos θ) = cos(nθ).
	for _, n := range []int{0, 1, 4, 11} {
		for _, theta := range numeric.Linspace(0, math.Pi, 13) {
			got := T(n, math.Cos(theta))
			want := math.Cos(float64(n) * theta)
			if !numeric.AlmostEqual(got, want, 1e-9) {
				t.Errorf("T_%d(cos %g) = %g, want %g", n, theta, got, want)
			}
		}
	}
}

func TestClenshawMatchesDirectSum(t *testing.T) {
	c := []float64{0.5, -1, 0.25, 2, -0.125}
	for _, x := range numeric.Linspace(-1, 1, 17) {
		direct := 0.0
		for k, ck := range c {
			direct += ck * T(k, x)
		}
		if got := Clenshaw(c, x); !numeric.AlmostEqual(got, direct, 1e-12) {
			t.Errorf("Clenshaw(%g) = %g, want %g", x, got, direct)
		}
	}
	if Clenshaw(nil, 0.3) != 0 {
		t.Error("empty series must evaluate to 0")
	}
	if Clenshaw([]float64{7}, 0.3) != 7 {
		t.Error("constant series")
	}
}

func TestFitReconstructsSmoothFunction(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x) * math.Sin(3*x) }
	c, err := Fit(f, 0, 2, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range numeric.Linspace(0, 2, 41) {
		if got := EvalFit(c, 0, 2, x); !numeric.AlmostEqual(got, f(x), 1e-8) {
			t.Errorf("fit(%g) = %g, want %g", x, got, f(x))
		}
	}
}

func TestInterpolantReproducesPolynomial(t *testing.T) {
	// n nodes reproduce any polynomial of degree < n exactly.
	coef := []float64{1, -2, 0.5, 3}
	f := func(x float64) float64 { return numeric.Horner(coef, x) }
	xs, err := NodesOn(-2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f(x)
	}
	p, err := NewInterpolant(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range numeric.Linspace(-2, 2, 21) {
		if got := p.Eval(x); !numeric.AlmostEqual(got, f(x), 1e-9) {
			t.Errorf("P(%g) = %g, want %g", x, got, f(x))
		}
	}
	// Evaluation exactly at a node returns the node ordinate.
	if got := p.Eval(xs[2]); got != ys[2] {
		t.Errorf("node evaluation %g != %g", got, ys[2])
	}
}

func TestRungeSuppressionVsEquispaced(t *testing.T) {
	// The Runge function 1/(1+25x²): equi-spaced interpolation diverges with
	// n, Chebyshev interpolation converges. Compare max errors at n = 15.
	f := func(x float64) float64 { return 1 / (1 + 25*x*x) }
	n := 15
	chebErr, err := MaxInterpolationError(f, -1, 1, n, 1001)
	if err != nil {
		t.Fatal(err)
	}
	exs := numeric.Linspace(-1, 1, n)
	eys := make([]float64, n)
	for i, x := range exs {
		eys[i] = f(x)
	}
	p, err := NewInterpolant(exs, eys)
	if err != nil {
		t.Fatal(err)
	}
	equiErr := 0.0
	for _, x := range numeric.Linspace(-1, 1, 1001) {
		equiErr = math.Max(equiErr, math.Abs(f(x)-p.Eval(x)))
	}
	if chebErr >= equiErr {
		t.Errorf("Chebyshev error %g should beat equi-spaced %g on Runge's function", chebErr, equiErr)
	}
	if chebErr > 0.1 {
		t.Errorf("Chebyshev-15 error %g unexpectedly large", chebErr)
	}
	if equiErr < 1 {
		t.Errorf("equi-spaced-15 error %g should exhibit Runge blow-up (>1)", equiErr)
	}
}

func TestErrorBoundHoldsForExponential(t *testing.T) {
	// Actual interpolation error on [-1,1] must respect the eq.-19 bound.
	for _, mu := range []float64{0.5, 1, 2} {
		f := func(x float64) float64 { return math.Exp(x / mu) }
		for _, n := range []int{2, 4, 6, 8} {
			bound := ExponentialBound(n, mu)
			actual, err := MaxInterpolationError(f, -1, 1, n, 2001)
			if err != nil {
				t.Fatal(err)
			}
			if actual > bound*(1+1e-9) {
				t.Errorf("µ=%g n=%d: actual error %g exceeds bound %g", mu, n, actual, bound)
			}
		}
	}
}

// TestErrorBoundPaperShape checks the paper's Fig. 13 claim: for ≥ 5 nodes
// the bound drops below 0.2 % for the exponential family considered.
func TestErrorBoundPaperShape(t *testing.T) {
	for _, mu := range []float64{1, 1.5, 2, 3} {
		b := ExponentialBound(5, mu)
		if b > 0.002 {
			t.Errorf("µ=%g: bound at 5 nodes = %g, paper expects < 0.2%%", mu, b)
		}
	}
	// The bound must decrease monotonically in n.
	prev := math.Inf(1)
	for n := 1; n <= 10; n++ {
		b := ExponentialBound(n, 1)
		if b >= prev {
			t.Errorf("bound not decreasing at n=%d: %g >= %g", n, b, prev)
		}
		prev = b
	}
}

func TestErrorBoundOnWiderInterval(t *testing.T) {
	// On [a,b] the bound generalises with ((b-a)/4)^n; verify it still
	// dominates the actual error for a smooth function.
	f := func(x float64) float64 { return math.Sin(x) }
	a, b := 0.0, 3.0
	for _, n := range []int{3, 5, 7} {
		bound := ErrorBoundOn(a, b, n, 1) // |sin⁽ⁿ⁾| ≤ 1
		actual, err := MaxInterpolationError(f, a, b, n, 1001)
		if err != nil {
			t.Fatal(err)
		}
		if actual > bound {
			t.Errorf("n=%d: actual %g > bound %g", n, actual, bound)
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("T negative", func() { T(-1, 0) })
	mustPanic("ErrorBound n=0", func() { ErrorBound(0, 1) })
	mustPanic("ExponentialBound µ<=0", func() { ExponentialBound(3, 0) })
	mustPanic("ErrorBoundOn n=0", func() { ErrorBoundOn(0, 1, 0, 1) })
}

func BenchmarkInterpolantEval(b *testing.B) {
	xs, _ := NodesOn(-1, 1, 20)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	p, err := NewInterpolant(xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Eval(float64(i%200)/100 - 1)
	}
}
