package extrapolate

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	l, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(l.A, 2, 1e-10) || !numeric.AlmostEqual(l.B, 1, 1e-10) {
		t.Fatalf("fit a=%g b=%g, want 2, 1", l.A, l.B)
	}
	if r2 := RSquared(l, xs, ys); !numeric.AlmostEqual(r2, 1, 1e-12) {
		t.Fatalf("R² = %g", r2)
	}
	if l.Name() != "linear" {
		t.Error("name")
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); !errors.Is(err, ErrBadFit) {
		t.Errorf("single point: %v", err)
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 3}); !errors.Is(err, ErrBadFit) {
		t.Errorf("degenerate xs: %v", err)
	}
}

func TestFitLogisticRecoversParameters(t *testing.T) {
	truth := &Logistic{L: 140, N0: 60, S: 18}
	xs := numeric.Linspace(1, 300, 25)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth.Eval(x)
	}
	fit, err := FitLogistic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Parameter recovery within a few percent and near-perfect curve match.
	if math.Abs(fit.L-truth.L)/truth.L > 0.03 {
		t.Fatalf("L = %g, want 140", fit.L)
	}
	for _, x := range []float64{10, 60, 150, 280} {
		if !numeric.AlmostEqual(fit.Eval(x), truth.Eval(x), 0.02) {
			t.Fatalf("fit(%g) = %g, want %g", x, fit.Eval(x), truth.Eval(x))
		}
	}
	if r2 := RSquared(fit, xs, ys); r2 < 0.999 {
		t.Fatalf("R² = %g", r2)
	}
}

func TestFitExpSaturationRecoversParameters(t *testing.T) {
	truth := &ExpSaturation{L: 155, Theta: 45}
	xs := numeric.Linspace(1, 400, 20)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth.Eval(x)
	}
	fit, err := FitExpSaturation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.L-truth.L)/truth.L > 0.02 || math.Abs(fit.Theta-truth.Theta)/truth.Theta > 0.05 {
		t.Fatalf("fit L=%g θ=%g, want 155, 45", fit.L, fit.Theta)
	}
}

func TestFitBestSelectsRightForm(t *testing.T) {
	// Pure line → linear wins; saturating data → a saturating form wins.
	xs := numeric.Linspace(1, 100, 12)
	line := make([]float64, len(xs))
	for i, x := range xs {
		line[i] = 1.5 * x
	}
	m, err := FitBest(xs, line)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "linear" {
		t.Fatalf("line data fitted as %s", m.Name())
	}
	sat := make([]float64, len(xs))
	truth := &ExpSaturation{L: 100, Theta: 15}
	for i, x := range xs {
		sat[i] = truth.Eval(x)
	}
	m, err = FitBest(xs, sat)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() == "linear" {
		t.Fatal("saturating data fitted as linear")
	}
	// Extrapolation beyond the data stays near the asymptote.
	if v := m.Eval(500); math.Abs(v-100) > 5 {
		t.Fatalf("extrapolated plateau %g, want ≈100", v)
	}
}

func TestFitBestWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	truth := &Logistic{L: 140, N0: 70, S: 25}
	xs := numeric.Linspace(1, 280, 10)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth.Eval(x) * (1 + 0.02*rng.NormFloat64())
	}
	m, err := FitBest(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := RSquared(m, xs, ys); r2 < 0.99 {
		t.Fatalf("noisy fit R² = %g (%s)", r2, m.Name())
	}
}

func TestCycleTimeFromThroughput(t *testing.T) {
	m := &ExpSaturation{L: 100, Theta: 10}
	// At high N, X→100, so R+Z → N/100.
	if v := CycleTimeFromThroughput(m, 500); !numeric.AlmostEqual(v, 5, 1e-6) {
		t.Fatalf("cycle(500) = %g, want 5", v)
	}
	// Zero throughput → infinite cycle time.
	zero := &Linear{A: 0, B: 0}
	if !math.IsInf(CycleTimeFromThroughput(zero, 10), 1) {
		t.Fatal("zero throughput should give +Inf cycle")
	}
}

func TestRSquaredDegenerate(t *testing.T) {
	m := &Linear{A: 0, B: 5}
	if r := RSquared(m, []float64{1, 2}, []float64{5, 5}); r != 1 {
		t.Fatalf("constant data R² = %g", r)
	}
	if r := RSquared(m, nil, nil); r != 0 {
		t.Fatalf("empty data R² = %g", r)
	}
}

func TestFitErrorsOnBadData(t *testing.T) {
	if _, err := FitLogistic([]float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrBadFit) {
		t.Errorf("too few points: %v", err)
	}
	if _, err := FitLogistic([]float64{1, 2, 3}, []float64{0, 0, 0}); !errors.Is(err, ErrBadFit) {
		t.Errorf("zero data: %v", err)
	}
	if _, err := FitExpSaturation([]float64{1, 2}, []float64{-1, -2}); !errors.Is(err, ErrBadFit) {
		t.Errorf("negative data: %v", err)
	}
}
