package extrapolate_test

import (
	"fmt"

	"repro/internal/extrapolate"
)

// ExampleFitBest fits measured throughput samples with the best of the
// candidate forms (Perfext-style) and extrapolates beyond the tested range.
func ExampleFitBest() {
	users := []float64{1, 25, 50, 100, 150, 200}
	pagesPerSec := []float64{1.9, 45.3, 82.1, 120.4, 135.2, 139.8} // saturating
	m, err := extrapolate.FitBest(users, pagesPerSec)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("form: %s\n", m.Name())
	fmt.Printf("X(300) ≈ %.0f pages/s\n", m.Eval(300))
	fmt.Printf("R+Z(300) ≈ %.1f s (Little's law)\n", extrapolate.CycleTimeFromThroughput(m, 300))
	// Output:
	// form: exp-saturation
	// X(300) ≈ 147 pages/s
	// R+Z(300) ≈ 2.0 s (Little's law)
}
