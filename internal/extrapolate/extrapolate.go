// Package extrapolate implements direct curve-fitting extrapolation of load
// test results — the approach of the paper's related work [4] (Perfext):
// instead of modelling the queueing network, fit the measured throughput
// curve itself ("linear regression for linearly increasing throughput and
// sigmoid curves for saturation") and read predictions off the fit. The
// ablation benchmarks compare this black-box baseline against MVASD given
// the same sample budget.
package extrapolate

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
)

// ErrBadFit is returned for invalid fitting input.
var ErrBadFit = errors.New("extrapolate: invalid fit input")

// Model is a fitted throughput curve X(N).
type Model interface {
	// Eval predicts throughput at concurrency n.
	Eval(n float64) float64
	// Name identifies the functional form.
	Name() string
}

// Linear is X(N) = a·N + b.
type Linear struct{ A, B float64 }

// Eval evaluates the line.
func (l *Linear) Eval(n float64) float64 { return l.A*n + l.B }

// Name returns "linear".
func (l *Linear) Name() string { return "linear" }

// FitLinear least-squares fits a line through (xs, ys).
func FitLinear(xs, ys []float64) (*Linear, error) {
	if len(xs) < 2 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: need >=2 paired points", ErrBadFit)
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return nil, fmt.Errorf("%w: degenerate abscissae", ErrBadFit)
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n
	return &Linear{A: a, B: b}, nil
}

// Logistic is the saturation sigmoid X(N) = L / (1 + exp(−(N−N0)/S)).
type Logistic struct{ L, N0, S float64 }

// Eval evaluates the sigmoid.
func (g *Logistic) Eval(n float64) float64 {
	return g.L / (1 + math.Exp(-(n-g.N0)/g.S))
}

// Name returns "logistic".
func (g *Logistic) Name() string { return "logistic" }

// ExpSaturation is X(N) = L·(1 − exp(−N/θ)), the asymptotic-exponential
// rise-to-max form.
type ExpSaturation struct{ L, Theta float64 }

// Eval evaluates the curve.
func (e *ExpSaturation) Eval(n float64) float64 {
	return e.L * (1 - math.Exp(-n/e.Theta))
}

// Name returns "exp-saturation".
func (e *ExpSaturation) Name() string { return "exp-saturation" }

// sse is the sum of squared residuals of a model over the data.
func sse(m Model, xs, ys []float64) float64 {
	s := 0.0
	for i := range xs {
		d := m.Eval(xs[i]) - ys[i]
		s += d * d
	}
	return s
}

// FitLogistic fits the sigmoid by Nelder–Mead from a data-driven start.
func FitLogistic(xs, ys []float64) (*Logistic, error) {
	if len(xs) < 3 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: need >=3 paired points", ErrBadFit)
	}
	ymax, xmax := 0.0, 0.0
	for i := range xs {
		ymax = math.Max(ymax, ys[i])
		xmax = math.Max(xmax, xs[i])
	}
	if ymax <= 0 {
		return nil, fmt.Errorf("%w: non-positive throughput data", ErrBadFit)
	}
	start := []float64{ymax * 1.05, xmax / 4, xmax / 8}
	obj := func(p []float64) float64 {
		if p[0] <= 0 || p[2] <= 0 {
			return math.Inf(1)
		}
		return sse(&Logistic{L: p[0], N0: p[1], S: p[2]}, xs, ys)
	}
	best, _, err := numeric.NelderMead(obj, start, numeric.NelderMeadOptions{MaxIter: 5000})
	if err != nil {
		return nil, err
	}
	return &Logistic{L: best[0], N0: best[1], S: best[2]}, nil
}

// FitExpSaturation fits the rise-to-max form by Nelder–Mead.
func FitExpSaturation(xs, ys []float64) (*ExpSaturation, error) {
	if len(xs) < 2 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: need >=2 paired points", ErrBadFit)
	}
	ymax, xmax := 0.0, 0.0
	for i := range xs {
		ymax = math.Max(ymax, ys[i])
		xmax = math.Max(xmax, xs[i])
	}
	if ymax <= 0 {
		return nil, fmt.Errorf("%w: non-positive throughput data", ErrBadFit)
	}
	obj := func(p []float64) float64 {
		if p[0] <= 0 || p[1] <= 0 {
			return math.Inf(1)
		}
		return sse(&ExpSaturation{L: p[0], Theta: p[1]}, xs, ys)
	}
	best, _, err := numeric.NelderMead(obj, []float64{ymax * 1.1, xmax / 3},
		numeric.NelderMeadOptions{MaxIter: 5000})
	if err != nil {
		return nil, err
	}
	return &ExpSaturation{L: best[0], Theta: best[1]}, nil
}

// FitBest fits every candidate form and returns the one with the smallest
// SSE on the samples — the Perfext-style model-selection step.
func FitBest(xs, ys []float64) (Model, error) {
	var best Model
	bestSSE := math.Inf(1)
	if lin, err := FitLinear(xs, ys); err == nil {
		if s := sse(lin, xs, ys); s < bestSSE {
			best, bestSSE = lin, s
		}
	}
	if sig, err := FitLogistic(xs, ys); err == nil {
		if s := sse(sig, xs, ys); s < bestSSE {
			best, bestSSE = sig, s
		}
	}
	if exp, err := FitExpSaturation(xs, ys); err == nil {
		if s := sse(exp, xs, ys); s < bestSSE {
			best, bestSSE = exp, s
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no candidate form could be fitted", ErrBadFit)
	}
	return best, nil
}

// CycleTimeFromThroughput converts a fitted throughput curve into a cycle
// time prediction via Little's law: R+Z = N / X(N). This is how direct
// extrapolation answers response-time questions without a queueing model.
func CycleTimeFromThroughput(m Model, n float64) float64 {
	x := m.Eval(n)
	if x <= 0 {
		return math.Inf(1)
	}
	return n / x
}

// RSquared reports the coefficient of determination of a model over data.
func RSquared(m Model, xs, ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssTot float64
	for _, y := range ys {
		ssTot += (y - mean) * (y - mean)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - sse(m, xs, ys)/ssTot
}
