package journal

import (
	"bytes"
	"fmt"
	"io"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// ProfileConfig tunes a ProfileStore. The zero value is usable.
type ProfileConfig struct {
	// Node names this node in profile metadata (default "solverd").
	Node string
	// MaxProfiles bounds retained captures; the oldest is evicted first
	// (default 8; negative disables capture entirely).
	MaxProfiles int
	// CPUDuration is how long each CPU capture runs (default 2s).
	CPUDuration time.Duration
	// MinInterval rate-limits captures: anomalies arriving within
	// MinInterval of the previous capture are skipped (default 30s).
	MinInterval time.Duration
	// Heap also grabs a heap snapshot alongside each CPU profile.
	Heap bool
	// Journal, when non-nil, receives a TypeProfileCapture event when each
	// capture finishes (success or failure).
	Journal *Journal
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// Profile is one retained capture. CPU/Heap hold raw pprof protos once
// State is "done".
type Profile struct {
	ID          string `json:"id"`
	Node        string `json:"node"`
	Trigger     string `json:"trigger"`
	TraceID     string `json:"traceId,omitempty"`
	State       string `json:"state"` // capturing | done | failed
	Error       string `json:"error,omitempty"`
	StartUnixMS int64  `json:"startUnixMs"`
	DurationMS  int64  `json:"durationMs"`
	CPU         []byte `json:"-"`
	Heap        []byte `json:"-"`
	CPUBytes    int    `json:"cpuBytes"`
	HeapBytes   int    `json:"heapBytes"`
}

// ProfileStore captures rate-limited pprof profiles at the moment an
// anomaly fires (deviation breach, enforce-mode shed burst, breaker trip)
// and retains a bounded number of them for GET /debug/profiles/{id}.
// All methods are nil-safe; Capture never blocks the anomaly path — the
// profile is grabbed on a background goroutine while the preassigned id is
// returned immediately so the triggering journal event can link it.
type ProfileStore struct {
	cfg ProfileConfig

	mu        sync.Mutex
	profiles  map[string]*Profile
	order     []string // capture order, oldest first
	nextID    uint64
	busy      bool
	lastStart time.Time
	captures  uint64
	failures  uint64
	skipped   map[string]uint64 // reason -> count
	lastDone  int64             // unix ms of last completed capture
}

// ProfileSkipReasons is the closed set of Capture skip reasons, for stable
// metric schemas.
var ProfileSkipReasons = []string{"busy", "disabled", "rate_limited"}

// NewProfileStore builds a ProfileStore from cfg. A negative MaxProfiles
// returns a disabled store (non-nil, Capture refuses).
func NewProfileStore(cfg ProfileConfig) *ProfileStore {
	if cfg.Node == "" {
		cfg.Node = "solverd"
	}
	if cfg.MaxProfiles == 0 {
		cfg.MaxProfiles = 8
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 2 * time.Second
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &ProfileStore{
		cfg:      cfg,
		profiles: make(map[string]*Profile),
		skipped:  make(map[string]uint64),
	}
}

// Enabled reports whether captures can run.
func (p *ProfileStore) Enabled() bool { return p != nil && p.cfg.MaxProfiles > 0 }

// Capture starts one asynchronous profile capture attributed to trigger
// (an event type, e.g. TypeDeviationBreach) and traceID. It returns the
// preassigned profile id so the triggering journal event links the capture
// before it completes; ok is false (and id empty) when the store is
// nil/disabled, a capture is already running, or the rate limit applies.
func (p *ProfileStore) Capture(trigger, traceID string) (id string, ok bool) {
	if p == nil {
		return "", false
	}
	p.mu.Lock()
	now := p.cfg.Now()
	switch {
	case !p.Enabled():
		p.skipped["disabled"]++
		p.mu.Unlock()
		return "", false
	case p.busy:
		p.skipped["busy"]++
		p.mu.Unlock()
		return "", false
	case !p.lastStart.IsZero() && now.Sub(p.lastStart) < p.cfg.MinInterval:
		p.skipped["rate_limited"]++
		p.mu.Unlock()
		return "", false
	}
	p.nextID++
	id = fmt.Sprintf("prof-%06d", p.nextID)
	pr := &Profile{
		ID:          id,
		Node:        p.cfg.Node,
		Trigger:     trigger,
		TraceID:     traceID,
		State:       "capturing",
		StartUnixMS: now.UnixMilli(),
	}
	p.profiles[id] = pr
	p.order = append(p.order, id)
	for len(p.order) > p.cfg.MaxProfiles {
		delete(p.profiles, p.order[0])
		p.order = p.order[1:]
	}
	p.busy = true
	p.lastStart = now
	p.mu.Unlock()
	go p.capture(id, trigger, traceID)
	return id, true
}

// capture runs the actual pprof grab on its own goroutine.
func (p *ProfileStore) capture(id, trigger, traceID string) {
	var cpu bytes.Buffer
	err := pprof.StartCPUProfile(&cpu)
	if err == nil {
		time.Sleep(p.cfg.CPUDuration)
		pprof.StopCPUProfile()
	}
	var heap bytes.Buffer
	if err == nil && p.cfg.Heap {
		if hp := pprof.Lookup("heap"); hp != nil {
			err = hp.WriteTo(&heap, 0)
		}
	}
	p.mu.Lock()
	p.busy = false
	done := p.cfg.Now().UnixMilli()
	pr, kept := p.profiles[id] // may have been evicted mid-capture
	if err != nil {
		p.failures++
		if kept {
			pr.State = "failed"
			pr.Error = err.Error()
			pr.DurationMS = done - pr.StartUnixMS
		}
	} else {
		p.captures++
		p.lastDone = done
		if kept {
			pr.State = "done"
			pr.CPU = cpu.Bytes()
			pr.CPUBytes = cpu.Len()
			pr.Heap = heap.Bytes()
			pr.HeapBytes = heap.Len()
			pr.DurationMS = done - pr.StartUnixMS
		}
	}
	p.mu.Unlock()
	msg := "profile captured"
	ev := Event{ProfileID: id, TraceID: traceID, Attrs: []Attr{{Key: "trigger", Value: trigger}}}
	if err != nil {
		msg = "profile capture failed"
		ev.Attrs = append(ev.Attrs, Attr{Key: "error", Value: err.Error()})
	}
	p.cfg.Journal.Append(TypeProfileCapture, msg, ev)
}

// Get returns a snapshot of one profile by id.
func (p *ProfileStore) Get(id string) (Profile, bool) {
	if p == nil {
		return Profile{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.profiles[id]
	if !ok {
		return Profile{}, false
	}
	return *pr, true
}

// List returns snapshots of every retained profile, oldest first.
func (p *ProfileStore) List() []Profile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Profile, 0, len(p.order))
	for _, id := range p.order {
		if pr, ok := p.profiles[id]; ok {
			out = append(out, *pr)
		}
	}
	return out
}

// ProfileStats is a point-in-time snapshot of the store's health.
type ProfileStats struct {
	Enabled           bool              `json:"enabled"`
	Stored            int               `json:"stored"`
	Captures          uint64            `json:"captures"`
	Failures          uint64            `json:"failures"`
	Skipped           map[string]uint64 `json:"skipped,omitempty"`
	LastCaptureUnixMS int64             `json:"lastCaptureUnixMs"`
}

// Stats snapshots the store. Safe on nil.
func (p *ProfileStore) Stats() ProfileStats {
	if p == nil {
		return ProfileStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProfileStats{
		Enabled:           p.Enabled(),
		Stored:            len(p.order),
		Captures:          p.captures,
		Failures:          p.failures,
		LastCaptureUnixMS: p.lastDone,
	}
	if len(p.skipped) > 0 {
		s.Skipped = make(map[string]uint64, len(p.skipped))
		for k, v := range p.skipped {
			s.Skipped[k] = v
		}
	}
	return s
}

// WriteMetrics appends the profile-capture Prometheus families to w. A nil
// store writes the full zeroed schema.
func (p *ProfileStore) WriteMetrics(w io.Writer) error {
	s := p.Stats()
	fmt.Fprintln(w, "# HELP solverd_profile_capture_total Anomaly-triggered pprof captures completed.")
	fmt.Fprintln(w, "# TYPE solverd_profile_capture_total counter")
	fmt.Fprintf(w, "solverd_profile_capture_total %d\n", s.Captures)
	fmt.Fprintln(w, "# HELP solverd_profile_capture_failures_total Anomaly-triggered pprof captures that failed.")
	fmt.Fprintln(w, "# TYPE solverd_profile_capture_failures_total counter")
	fmt.Fprintf(w, "solverd_profile_capture_failures_total %d\n", s.Failures)
	fmt.Fprintln(w, "# HELP solverd_profile_capture_skipped_total Capture requests skipped, by reason.")
	fmt.Fprintln(w, "# TYPE solverd_profile_capture_skipped_total counter")
	reasons := append([]string(nil), ProfileSkipReasons...)
	for r := range s.Skipped {
		if !containsString(reasons, r) {
			reasons = append(reasons, r)
		}
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "solverd_profile_capture_skipped_total{reason=%q} %d\n", r, s.Skipped[r])
	}
	fmt.Fprintln(w, "# HELP solverd_profile_capture_stored Captured profiles currently retained.")
	fmt.Fprintln(w, "# TYPE solverd_profile_capture_stored gauge")
	fmt.Fprintf(w, "solverd_profile_capture_stored %d\n", s.Stored)
	fmt.Fprintln(w, "# HELP solverd_profile_capture_last_unix_seconds Wall time of the last completed capture (0 before any).")
	fmt.Fprintln(w, "# TYPE solverd_profile_capture_last_unix_seconds gauge")
	fmt.Fprintf(w, "solverd_profile_capture_last_unix_seconds %g\n", float64(s.LastCaptureUnixMS)/1000)
	return nil
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
