package journal

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTypesClosedSetIsExhaustiveAndSorted(t *testing.T) {
	consts := []string{
		TypeBreaker, TypeRingRebuild, TypeMembership, TypeHedge,
		TypeDeepFailover, TypeAdmissionMode, TypeShedBurst, TypeRedirect,
		TypeDeviationBreach, TypeRefit, TypeSnapshot, TypeCacheInvalidate,
		TypeKneeShift, TypeSelfReady, TypeDrain, TypeCacheEvict,
		TypeProfileCapture,
	}
	if len(Types) != len(consts) {
		t.Fatalf("Types has %d entries, %d type constants declared", len(Types), len(consts))
	}
	for _, c := range consts {
		if !KnownType(c) {
			t.Errorf("type constant %q missing from Types", c)
		}
	}
	for i := 1; i < len(Types); i++ {
		if Types[i] <= Types[i-1] {
			t.Errorf("Types not sorted: %q after %q", Types[i], Types[i-1])
		}
	}
	if KnownType("no_such_type") {
		t.Error("KnownType accepted an unknown type")
	}
}

func TestAppendAndEvents(t *testing.T) {
	j := New(Config{Node: "n1"})
	if !j.Enabled() {
		t.Fatal("journal disabled with default config")
	}
	s1 := j.Append(TypeRefit, "first", Event{TraceID: "t-1"})
	s2 := j.Append(TypeSnapshot, "second", Event{})
	s3 := j.Append(TypeRefit, "third", Event{TraceID: "t-3"})
	if s1 != 1 || s2 != 2 || s3 != 3 {
		t.Fatalf("sequence numbers = %d, %d, %d", s1, s2, s3)
	}

	all := j.Events(Filter{})
	if len(all) != 3 {
		t.Fatalf("Events() = %d events, want 3", len(all))
	}
	for i, e := range all {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d (want ascending)", i, e.Seq)
		}
		if e.Node != "n1" {
			t.Errorf("event node = %q", e.Node)
		}
		if e.TimeUnixMS == 0 {
			t.Errorf("event %d has no wall time", i)
		}
	}

	if got := j.Events(Filter{Type: TypeRefit}); len(got) != 2 {
		t.Errorf("type filter kept %d, want 2", len(got))
	}
	if got := j.Events(Filter{SinceSeq: 2}); len(got) != 1 || got[0].Seq != 3 {
		t.Errorf("since filter = %+v", got)
	}
	if got := j.Events(Filter{TraceID: "t-3"}); len(got) != 1 || got[0].Message != "third" {
		t.Errorf("trace filter = %+v", got)
	}
	if got := j.Events(Filter{Limit: 2}); len(got) != 2 || got[0].Seq != 2 {
		t.Errorf("limit filter should tail the timeline: %+v", got)
	}
}

func TestAppendRejectsUnknownType(t *testing.T) {
	j := New(Config{})
	if seq := j.Append("typo_type", "m", Event{}); seq != 0 {
		t.Fatalf("unknown type accepted with seq %d", seq)
	}
	if got := j.Events(Filter{}); len(got) != 0 {
		t.Fatalf("unknown type stored: %+v", got)
	}
	s := j.Stats()
	if s.Appended != 0 || s.LastSeq != 0 {
		t.Fatalf("unknown type counted: %+v", s)
	}
}

func TestNilAndDisabledJournal(t *testing.T) {
	var nilJ *Journal
	if nilJ.Enabled() {
		t.Error("nil journal enabled")
	}
	if seq := nilJ.Append(TypeRefit, "m", Event{}); seq != 0 {
		t.Errorf("nil Append = %d", seq)
	}
	if got := nilJ.Events(Filter{}); got != nil {
		t.Errorf("nil Events = %+v", got)
	}
	if s := nilJ.Stats(); s.Enabled {
		t.Errorf("nil Stats = %+v", s)
	}
	if nilJ.Node() != "" {
		t.Errorf("nil Node = %q", nilJ.Node())
	}
	var sb strings.Builder
	if err := nilJ.WriteMetrics(&sb); err != nil {
		t.Fatalf("nil WriteMetrics: %v", err)
	}
	if !strings.Contains(sb.String(), `solverd_journal_events_stored{type="refit"} 0`) {
		t.Error("nil WriteMetrics missing the zeroed schema")
	}

	off := New(Config{PerTypeCap: -1})
	if off.Enabled() {
		t.Error("negative cap journal enabled")
	}
	if seq := off.Append(TypeRefit, "m", Event{}); seq != 0 {
		t.Errorf("disabled Append = %d", seq)
	}
}

func TestEvictionUnderStorm(t *testing.T) {
	const cap, storm = 8, 1000
	j := New(Config{PerTypeCap: cap})
	for i := 0; i < storm; i++ {
		j.Append(TypeShedBurst, "storm", Event{})
		j.Append(TypeHedge, "storm", Event{})
	}
	s := j.Stats()
	if s.Stored != 2*cap {
		t.Errorf("stored %d events, want %d (bounded)", s.Stored, 2*cap)
	}
	if s.Appended != 2*storm {
		t.Errorf("appended %d, want %d", s.Appended, 2*storm)
	}
	if s.Evicted != 2*(storm-cap) {
		t.Errorf("evicted %d, want %d", s.Evicted, 2*(storm-cap))
	}
	// Oldest-first: the retained shed_burst events are the newest cap ones,
	// still in ascending sequence order.
	got := j.Events(Filter{Type: TypeShedBurst})
	if len(got) != cap {
		t.Fatalf("retained %d shed_burst events, want %d", len(got), cap)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("retained events out of order at %d: %d <= %d", i, got[i].Seq, got[i-1].Seq)
		}
	}
	if newest := got[len(got)-1].Seq; newest != s.LastSeq-1 && newest != s.LastSeq {
		// The interleaved hedge appends make the exact tail seq flexible;
		// what matters is the window ends near the last append.
		t.Errorf("retained window ends at seq %d, last seq %d", newest, s.LastSeq)
	}
}

func TestConcurrentWritersFromAllSubsystems(t *testing.T) {
	j := New(Config{PerTypeCap: 64})
	const perType = 200
	var wg sync.WaitGroup
	for _, typ := range Types {
		wg.Add(1)
		go func(typ string) {
			defer wg.Done()
			for i := 0; i < perType; i++ {
				j.Append(typ, "concurrent", Event{TraceID: "trace-x"})
			}
		}(typ)
	}
	// Concurrent readers while the storm runs.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.Events(Filter{Limit: 10})
				j.Stats()
				var sb strings.Builder
				j.WriteMetrics(&sb)
			}
		}()
	}
	wg.Wait()
	s := j.Stats()
	if want := uint64(len(Types) * perType); s.Appended != want {
		t.Fatalf("appended %d, want %d", s.Appended, want)
	}
	if s.LastSeq != s.Appended {
		t.Fatalf("last seq %d != appended %d (sequence gap)", s.LastSeq, s.Appended)
	}
	// Sequence numbers are unique across types.
	seen := make(map[uint64]bool)
	for _, e := range j.Events(Filter{}) {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestAppendDoesNotAllocate(t *testing.T) {
	j := New(Config{PerTypeCap: 16})
	j.Append(TypeDrain, "warm the ring", Event{})
	allocs := testing.AllocsPerRun(100, func() {
		j.Append(TypeDrain, "steady state", Event{})
	})
	if allocs > 0 {
		t.Errorf("Append allocates %.1f objects/op on the steady path, want 0", allocs)
	}
}

func TestProfileStoreCapture(t *testing.T) {
	jn := New(Config{Node: "n1"})
	ps := NewProfileStore(ProfileConfig{
		Node:        "n1",
		CPUDuration: 50 * time.Millisecond,
		Journal:     jn,
	})
	if !ps.Enabled() {
		t.Fatal("store disabled with default config")
	}
	id, ok := ps.Capture(TypeDeviationBreach, "trace-1")
	if !ok || id == "" {
		t.Fatalf("Capture = %q, %v", id, ok)
	}
	// The id is linkable immediately, while the capture is still running.
	if pr, ok := ps.Get(id); !ok || pr.State != "capturing" {
		t.Fatalf("mid-capture Get = %+v, %v", pr, ok)
	}
	// A second trigger while busy is skipped, not queued.
	if _, ok := ps.Capture(TypeShedBurst, ""); ok {
		t.Error("concurrent capture admitted")
	}
	pr := waitDone(t, ps, id)
	if pr.State != "done" {
		t.Fatalf("capture state %q (error %q)", pr.State, pr.Error)
	}
	if pr.CPUBytes == 0 || len(pr.CPU) == 0 {
		t.Error("capture produced no CPU profile bytes")
	}
	if pr.Trigger != TypeDeviationBreach || pr.TraceID != "trace-1" {
		t.Errorf("capture metadata = %+v", pr)
	}
	// Completion journaled with the profile id.
	evs := jn.Events(Filter{Type: TypeProfileCapture})
	if len(evs) != 1 || evs[0].ProfileID != id || evs[0].TraceID != "trace-1" {
		t.Fatalf("profile_capture events = %+v", evs)
	}
	s := ps.Stats()
	if s.Captures != 1 || s.Failures != 0 || s.Stored != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.LastCaptureUnixMS == 0 {
		t.Error("last capture timestamp not set")
	}
	if s.Skipped["busy"] != 1 {
		t.Errorf("busy skip not counted: %+v", s.Skipped)
	}
}

func TestProfileStoreRateLimitAndEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	ps := NewProfileStore(ProfileConfig{
		MaxProfiles: 2,
		CPUDuration: time.Millisecond,
		MinInterval: time.Minute,
		Now:         func() time.Time { return now },
	})
	id1, ok := ps.Capture(TypeBreaker, "")
	if !ok {
		t.Fatal("first capture refused")
	}
	waitDone(t, ps, id1)
	// Within MinInterval: rate-limited.
	if _, ok := ps.Capture(TypeBreaker, ""); ok {
		t.Fatal("rate-limited capture admitted")
	}
	if ps.Stats().Skipped["rate_limited"] != 1 {
		t.Fatalf("rate_limited skip not counted: %+v", ps.Stats().Skipped)
	}
	// Advance past the interval for two more captures; the store keeps 2.
	now = now.Add(2 * time.Minute)
	id2, ok := ps.Capture(TypeBreaker, "")
	if !ok {
		t.Fatal("post-interval capture refused")
	}
	waitDone(t, ps, id2)
	now = now.Add(2 * time.Minute)
	id3, ok := ps.Capture(TypeBreaker, "")
	if !ok {
		t.Fatal("third capture refused")
	}
	waitDone(t, ps, id3)
	if _, ok := ps.Get(id1); ok {
		t.Error("oldest profile survived past MaxProfiles")
	}
	list := ps.List()
	if len(list) != 2 || list[0].ID != id2 || list[1].ID != id3 {
		t.Errorf("List = %+v", list)
	}
}

func TestProfileStoreDisabledAndNil(t *testing.T) {
	var nilPS *ProfileStore
	if nilPS.Enabled() {
		t.Error("nil store enabled")
	}
	if _, ok := nilPS.Capture(TypeBreaker, ""); ok {
		t.Error("nil store captured")
	}
	if s := nilPS.Stats(); s.Enabled {
		t.Errorf("nil Stats = %+v", s)
	}
	var sb strings.Builder
	if err := nilPS.WriteMetrics(&sb); err != nil {
		t.Fatalf("nil WriteMetrics: %v", err)
	}
	for _, reason := range ProfileSkipReasons {
		if !strings.Contains(sb.String(), `reason="`+reason+`"`) {
			t.Errorf("nil WriteMetrics missing skip reason %q", reason)
		}
	}

	off := NewProfileStore(ProfileConfig{MaxProfiles: -1})
	if off.Enabled() {
		t.Error("negative-capacity store enabled")
	}
	if _, ok := off.Capture(TypeBreaker, ""); ok {
		t.Error("disabled store captured")
	}
	if off.Stats().Skipped["disabled"] != 1 {
		t.Errorf("disabled skip not counted: %+v", off.Stats().Skipped)
	}
}

// waitDone polls until the capture goroutine finishes.
func waitDone(t *testing.T, ps *ProfileStore, id string) Profile {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pr, ok := ps.Get(id); ok && pr.State != "capturing" {
			return pr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("capture %s did not finish", id)
	return Profile{}
}
