// Package journal is the fabric's bounded structured event log: every
// stateful subsystem (cluster breakers and membership, admission, the
// deviation monitor, the online estimator, the self-model, server lifecycle)
// appends typed events describing its state transitions, and operators read
// them back as one causally-ordered timeline via GET /debug/events (local)
// or GET /cluster/v1/events (fleet-wide merge).
//
// Storage follows the flight recorder's discipline (internal/obs): a
// fixed-size ring per event type with oldest-first eviction, hard caps set
// up front, and nil-safe methods throughout so callers never guard their
// hooks. Events carry a node-monotonic sequence number, wall time, node id,
// and an optional trace id joining the event against the flight recorder's
// retained traces, plus an optional profile id linking a pprof capture
// grabbed at the moment of the anomaly (see ProfileStore).
package journal

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The closed set of event types. Metrics expose every type from the first
// scrape so dashboards see stable schemas; Append rejects types outside the
// set (a typo'd type would otherwise mint an unbounded label space).
const (
	TypeBreaker         = "breaker"          // circuit breaker open/half-open/close
	TypeRingRebuild     = "ring_rebuild"     // consistent-hash ring recomputed
	TypeMembership      = "membership"       // peer marked up/down
	TypeHedge           = "hedge"            // hedged forward fired
	TypeDeepFailover    = "deep_failover"    // deep-solve chunk failed over
	TypeAdmissionMode   = "admission_mode"   // admission gate mode transition
	TypeShedBurst       = "shed_burst"       // coalesced run of shed requests
	TypeRedirect        = "redirect"         // overload redirect to a peer
	TypeDeviationBreach = "deviation_breach" // prediction deviation bound exceeded
	TypeRefit           = "refit"            // demand estimator re-fit
	TypeSnapshot        = "snapshot"         // demand snapshot version change
	TypeCacheInvalidate = "cache_invalidate" // solve-cache entries invalidated
	TypeKneeShift       = "knee_shift"       // self-model saturation knee moved
	TypeSelfReady       = "self_ready"       // self-model warmup -> ready
	TypeDrain           = "drain"            // server drain start/finish
	TypeCacheEvict      = "cache_evict"      // solve-cache eviction under pressure
	TypeProfileCapture  = "profile_capture"  // anomaly profile capture completed
)

// Types lists every event type the journal accepts, sorted. Metric writers
// and the events API iterate it so expositions and stats are exhaustive and
// stable regardless of which types have fired.
var Types = []string{
	TypeAdmissionMode, TypeBreaker, TypeCacheEvict, TypeCacheInvalidate,
	TypeDeepFailover, TypeDeviationBreach, TypeDrain, TypeHedge,
	TypeKneeShift, TypeMembership, TypeProfileCapture, TypeRedirect,
	TypeRefit, TypeRingRebuild, TypeSelfReady, TypeShedBurst, TypeSnapshot,
}

// KnownType reports whether typ is in the journal's closed type set.
func KnownType(typ string) bool {
	for _, t := range Types {
		if t == typ {
			return true
		}
	}
	return false
}

// Attr is one key/value annotation on an event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is one journal entry. Seq is monotonic per node (assigned by
// Append); cross-node merges order by wall time while preserving each
// node's sequence order, so per-node causality survives clock skew.
type Event struct {
	Seq        uint64 `json:"seq"`
	TimeUnixMS int64  `json:"timeUnixMs"`
	Node       string `json:"node"`
	Type       string `json:"type"`
	Message    string `json:"message"`
	TraceID    string `json:"traceId,omitempty"`
	ProfileID  string `json:"profileId,omitempty"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// Config tunes a Journal. The zero value is usable: every field defaults.
type Config struct {
	// Node names this node in every event (default "solverd").
	Node string
	// PerTypeCap bounds the events retained per type (default 512; negative
	// disables the journal entirely — Append becomes a no-op).
	PerTypeCap int
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// Journal is the bounded event log. All methods are safe on a nil receiver
// and for concurrent use.
type Journal struct {
	cfg Config
	seq atomic.Uint64

	mu    sync.Mutex
	rings map[string]*ring
}

// ring is one type's fixed-capacity circular buffer.
type ring struct {
	buf      []Event // preallocated to the per-type cap
	start, n int
	appended uint64
	evicted  uint64
}

// New builds a Journal from cfg. A negative PerTypeCap returns a disabled
// journal (non-nil, but Append drops everything) so callers keep one code
// path.
func New(cfg Config) *Journal {
	if cfg.Node == "" {
		cfg.Node = "solverd"
	}
	if cfg.PerTypeCap == 0 {
		cfg.PerTypeCap = 512
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Journal{cfg: cfg, rings: make(map[string]*ring)}
}

// Enabled reports whether events are being retained.
func (j *Journal) Enabled() bool { return j != nil && j.cfg.PerTypeCap > 0 }

// Node returns the node id stamped on events ("" on a nil journal).
func (j *Journal) Node() string {
	if j == nil {
		return ""
	}
	return j.cfg.Node
}

// Append records one event of the given type and returns its sequence
// number (0 when the journal is nil/disabled or the type is unknown).
// The journal fills Seq, TimeUnixMS and Node. Append takes only a leaf
// mutex, so callers may hold their own locks across it.
func (j *Journal) Append(typ, message string, e Event) uint64 {
	if !j.Enabled() || !KnownType(typ) {
		return 0
	}
	e.Type = typ
	e.Message = message
	e.Node = j.cfg.Node
	e.TimeUnixMS = j.cfg.Now().UnixMilli()
	e.Seq = j.seq.Add(1)
	j.mu.Lock()
	r, ok := j.rings[typ]
	if !ok {
		r = &ring{buf: make([]Event, j.cfg.PerTypeCap)}
		j.rings[typ] = r
	}
	if r.n == len(r.buf) {
		// Full: overwrite the oldest slot (oldest-first eviction).
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
		r.evicted++
	} else {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
	}
	r.appended++
	j.mu.Unlock()
	return e.Seq
}

// Filter selects events from Events. The zero value selects everything.
type Filter struct {
	// Type keeps only events of one type ("" keeps all).
	Type string
	// SinceSeq keeps events with Seq > SinceSeq.
	SinceSeq uint64
	// TraceID keeps events carrying this trace id.
	TraceID string
	// Limit keeps only the newest Limit events (0 keeps all). The result
	// stays in ascending sequence order — Limit tails the timeline.
	Limit int
}

// Events returns the retained events matching f in ascending sequence
// order. Nil/disabled journals return nil.
func (j *Journal) Events(f Filter) []Event {
	if !j.Enabled() {
		return nil
	}
	j.mu.Lock()
	var out []Event
	for typ, r := range j.rings {
		if f.Type != "" && typ != f.Type {
			continue
		}
		for i := 0; i < r.n; i++ {
			e := r.buf[(r.start+i)%len(r.buf)]
			if e.Seq <= f.SinceSeq {
				continue
			}
			if f.TraceID != "" && e.TraceID != f.TraceID {
				continue
			}
			out = append(out, e)
		}
	}
	j.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// TypeStats is one type's occupancy in Stats.
type TypeStats struct {
	Type     string `json:"type"`
	Stored   int    `json:"stored"`
	Appended uint64 `json:"appended"`
	Evicted  uint64 `json:"evicted"`
}

// Stats is a point-in-time snapshot of the journal's occupancy.
type Stats struct {
	Enabled    bool        `json:"enabled"`
	Node       string      `json:"node"`
	PerTypeCap int         `json:"perTypeCap"`
	LastSeq    uint64      `json:"lastSeq"`
	Stored     int         `json:"stored"`
	Appended   uint64      `json:"appended"`
	Evicted    uint64      `json:"evicted"`
	Types      []TypeStats `json:"types"`
}

// Stats snapshots occupancy. Every known type gets a row (zeroed when it
// never fired) so consumers see a stable shape. Safe on nil.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	s := Stats{
		Enabled:    j.Enabled(),
		Node:       j.cfg.Node,
		PerTypeCap: j.cfg.PerTypeCap,
		LastSeq:    j.seq.Load(),
	}
	j.mu.Lock()
	for _, typ := range Types {
		ts := TypeStats{Type: typ}
		if r, ok := j.rings[typ]; ok {
			ts.Stored, ts.Appended, ts.Evicted = r.n, r.appended, r.evicted
		}
		s.Stored += ts.Stored
		s.Appended += ts.Appended
		s.Evicted += ts.Evicted
		s.Types = append(s.Types, ts)
	}
	j.mu.Unlock()
	return s
}

// WriteMetrics appends the journal's Prometheus families to w. All known
// types are exposed from the first scrape; a nil/disabled journal still
// writes the full (zeroed) schema so scrapes never see families appear.
func (j *Journal) WriteMetrics(w io.Writer) error {
	s := j.Stats()
	byType := make(map[string]TypeStats, len(s.Types))
	for _, ts := range s.Types {
		byType[ts.Type] = ts
	}
	fmt.Fprintln(w, "# HELP solverd_journal_events_stored Journal events currently retained, by type.")
	fmt.Fprintln(w, "# TYPE solverd_journal_events_stored gauge")
	for _, typ := range Types {
		fmt.Fprintf(w, "solverd_journal_events_stored{type=%q} %d\n", typ, byType[typ].Stored)
	}
	fmt.Fprintln(w, "# HELP solverd_journal_events_total Journal events appended since start, by type.")
	fmt.Fprintln(w, "# TYPE solverd_journal_events_total counter")
	for _, typ := range Types {
		fmt.Fprintf(w, "solverd_journal_events_total{type=%q} %d\n", typ, byType[typ].Appended)
	}
	fmt.Fprintln(w, "# HELP solverd_journal_events_evicted_total Journal events evicted oldest-first to stay within the per-type cap, by type.")
	fmt.Fprintln(w, "# TYPE solverd_journal_events_evicted_total counter")
	for _, typ := range Types {
		fmt.Fprintf(w, "solverd_journal_events_evicted_total{type=%q} %d\n", typ, byType[typ].Evicted)
	}
	return nil
}
