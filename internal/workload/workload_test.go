package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/queueing"
	"repro/internal/testbed"
)

func baseVector() []float64 {
	return testbed.VINS().TrueDemands(203)
}

func skeleton() *queueing.Model {
	return testbed.VINS().Model(203)
}

func TestVINSWorkflowsStructure(t *testing.T) {
	flows := VINSWorkflows(baseVector(), 1)
	if len(flows) != 4 {
		t.Fatalf("%d workflows, want 4 (paper lists four)", len(flows))
	}
	names := map[string]int{
		"Registration": 5, "New Policy": 6, "Renew Policy": 7, "Read Policy Details": 3,
	}
	for _, w := range flows {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		want, ok := names[w.Name]
		if !ok {
			t.Errorf("unexpected workflow %q", w.Name)
			continue
		}
		if w.PageCount() != want {
			t.Errorf("%s has %d pages, want %d", w.Name, w.PageCount(), want)
		}
	}
}

func TestRenewPolicyMeanEqualsBase(t *testing.T) {
	// The Renew Policy page weights average 1.0, so the per-page mean
	// demand equals the base vector — keeping the workflow consistent with
	// the paper's page-granularity measurements.
	base := baseVector()
	flows := VINSWorkflows(base, 1)
	var renew *Workflow
	for _, w := range flows {
		if w.Name == "Renew Policy" {
			renew = w
		}
	}
	mean := renew.MeanPageDemands()
	for k := range base {
		if !numeric.AlmostEqual(mean[k], base[k], 1e-9) {
			t.Fatalf("station %d: mean %g vs base %g", k, mean[k], base[k])
		}
	}
}

func TestJPetStoreWorkflow14Pages(t *testing.T) {
	w := JPetStoreWorkflow(testbed.JPetStore().TrueDemands(70), 1)
	if w.PageCount() != 14 {
		t.Fatalf("%d pages, want 14", w.PageCount())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTotalAndMeanDemands(t *testing.T) {
	w := &Workflow{
		Name:      "toy",
		ThinkTime: 1,
		Pages: []Page{
			{Name: "a", Demands: []float64{0.01, 0.02}},
			{Name: "b", Demands: []float64{0.03, 0.00}},
		},
	}
	tot := w.TotalDemands()
	if tot[0] != 0.04 || tot[1] != 0.02 {
		t.Fatalf("TotalDemands = %v", tot)
	}
	mean := w.MeanPageDemands()
	if mean[0] != 0.02 || mean[1] != 0.01 {
		t.Fatalf("MeanPageDemands = %v", mean)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []*Workflow{
		{Name: "empty"},
		{Name: "neg-think", ThinkTime: -1, Pages: []Page{{Name: "p", Demands: []float64{1}}}},
		{Name: "empty-demands", Pages: []Page{{Name: "p"}}},
		{Name: "ragged", Pages: []Page{
			{Name: "p", Demands: []float64{1, 2}},
			{Name: "q", Demands: []float64{1}},
		}},
		{Name: "negative", Pages: []Page{{Name: "p", Demands: []float64{-1}}}},
	}
	for _, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("%s should fail validation", w.Name)
		}
	}
}

func TestPageModelMatchesPaperUsage(t *testing.T) {
	// The page model of Renew Policy on the VINS skeleton must equal the
	// profile's own model at the same concurrency (demands identical), so
	// the workflow layer is a faithful re-expression of the paper's
	// one-transaction-per-page accounting.
	skel := skeleton()
	flows := VINSWorkflows(baseVector(), 1)
	var renew *Workflow
	for _, w := range flows {
		if w.Name == "Renew Policy" {
			renew = w
		}
	}
	m, err := renew.PageModel(skel)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := range skel.Stations {
		if !numeric.AlmostEqual(m.Stations[k].Demand(), skel.Stations[k].Demand(), 1e-9) {
			t.Fatalf("station %s: %g vs %g", skel.Stations[k].Name,
				m.Stations[k].Demand(), skel.Stations[k].Demand())
		}
	}
	// Same MVA solution as the profile model.
	a, err := core.ExactMVA(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.ExactMVA(skel, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.X[99]-b.X[99]) > 1e-9*b.X[99] {
		t.Fatalf("X mismatch %g vs %g", a.X[99], b.X[99])
	}
}

func TestSessionModelConsistency(t *testing.T) {
	// A session model's zero-load response time is PageCount times the page
	// model's, and its think time folds the per-page thinks.
	skel := skeleton()
	w := VINSWorkflows(baseVector(), 1)[2] // Renew Policy
	page, err := w.PageModel(skel)
	if err != nil {
		t.Fatal(err)
	}
	session, err := w.SessionModel(skel)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(session.TotalDemand(), page.TotalDemand()*7, 1e-9) {
		t.Fatalf("session demand %g, want 7× page demand %g", session.TotalDemand(), page.TotalDemand())
	}
	if session.ThinkTime != 7 {
		t.Fatalf("session think %g, want 7", session.ThinkTime)
	}
	// Throughput in sessions/second ≈ pages/second ÷ 7 at equal population.
	ps, err := core.ExactMVA(page, 200)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := core.ExactMVA(session, 200)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ps.X[199] / ss.X[199]
	if math.Abs(ratio-7) > 0.7 {
		t.Fatalf("pages/sessions ratio %g, want ≈7", ratio)
	}
}

func TestMixSolve(t *testing.T) {
	// A mixed VINS population across the four workflows on the normalized
	// (single-server) skeleton; workflow demands come from the same folded
	// model so class demands and stations stay consistent.
	skel := core.NormalizeServers(skeleton())
	flows := VINSWorkflows(skel.Demands(), 1)
	mix := &Mix{Name: "vins-mix", Entries: []MixEntry{
		{Workflow: flows[0], Population: 5},
		{Workflow: flows[1], Population: 5},
		{Workflow: flows[2], Population: 10},
		{Workflow: flows[3], Population: 10},
	}}
	res, err := mix.Solve(skel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != 4 {
		t.Fatalf("%d classes", len(res.X))
	}
	// Little's law per class.
	for c, e := range mix.Entries {
		z := e.Workflow.ThinkTime * float64(e.Workflow.PageCount())
		implied := res.X[c] * (res.R[c] + z)
		if math.Abs(implied-float64(e.Population)) > 1e-6*float64(e.Population) {
			t.Fatalf("class %s: Little's law gives N=%g, want %d", e.Workflow.Name, implied, e.Population)
		}
	}
	// The short Read Policy flow completes sessions faster per customer
	// than the long Renew Policy flow at equal population.
	if res.X[3] <= res.X[2] {
		t.Errorf("Read Policy X %g should exceed Renew Policy X %g", res.X[3], res.X[2])
	}
	// Utilizations sane.
	for k, u := range res.Util {
		if u < 0 || u > 1+1e-9 {
			t.Errorf("station %d utilization %g", k, u)
		}
	}
}

func TestMixErrors(t *testing.T) {
	skel := core.NormalizeServers(skeleton())
	if _, err := (&Mix{}).Solve(skel); err == nil {
		t.Error("empty mix should error")
	}
	bad := &Mix{Entries: []MixEntry{{Workflow: &Workflow{Name: "x"}, Population: 1}}}
	if _, err := bad.Solve(skel); err == nil {
		t.Error("invalid workflow should error")
	}
}

func TestPageModelStationMismatch(t *testing.T) {
	w := &Workflow{Name: "w", Pages: []Page{{Name: "p", Demands: []float64{0.1}}}}
	if _, err := w.PageModel(skeleton()); err == nil {
		t.Error("station-count mismatch should error")
	}
}
