// Package workload models web-application workloads at page granularity:
// the paper's VINS application exposes four workflows (Registration,
// New Policy, Renew Policy — the 7-page flow its experiments use — and
// Read Policy Details), and JPetStore a 14-page buy flow. A Workflow is a
// sequence of Pages, each with a per-station demand vector; workflows
// aggregate to single-class queueing models (the paper's usage: one page =
// one transaction) or combine as a Mix into the exact multi-class MVA
// (an extension for mixed-traffic what-if analysis).
package workload

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/queueing"
)

// Page is one HTTP page view with its per-station service demands.
type Page struct {
	// Name identifies the page ("login", "renew-quote", …).
	Name string
	// Demands[k] is the service demand at station k in seconds.
	Demands []float64
}

// Workflow is an ordered sequence of pages a user session walks through.
type Workflow struct {
	// Name identifies the workflow ("Renew Policy").
	Name string
	// Pages in visit order.
	Pages []Page
	// ThinkTime is the per-page user think time in seconds.
	ThinkTime float64
}

// Validate checks structural consistency (equal demand-vector lengths).
func (w *Workflow) Validate() error {
	if len(w.Pages) == 0 {
		return fmt.Errorf("workload: workflow %q has no pages", w.Name)
	}
	if w.ThinkTime < 0 {
		return fmt.Errorf("workload: workflow %q negative think time", w.Name)
	}
	k := len(w.Pages[0].Demands)
	if k == 0 {
		return fmt.Errorf("workload: workflow %q has empty demand vectors", w.Name)
	}
	for _, p := range w.Pages {
		if len(p.Demands) != k {
			return fmt.Errorf("workload: page %q has %d demands, want %d", p.Name, len(p.Demands), k)
		}
		for i, d := range p.Demands {
			if d < 0 {
				return fmt.Errorf("workload: page %q station %d negative demand", p.Name, i)
			}
		}
	}
	return nil
}

// PageCount returns the number of pages.
func (w *Workflow) PageCount() int { return len(w.Pages) }

// TotalDemands sums the per-station demands over the whole workflow — the
// demand vector of one complete user session.
func (w *Workflow) TotalDemands() []float64 {
	if len(w.Pages) == 0 {
		return nil
	}
	out := make([]float64, len(w.Pages[0].Demands))
	for _, p := range w.Pages {
		for k, d := range p.Demands {
			out[k] += d
		}
	}
	return out
}

// MeanPageDemands averages the per-station demands per page — the demand
// vector of the "one transaction = one page" model the paper's throughput
// (pages/second) uses.
func (w *Workflow) MeanPageDemands() []float64 {
	tot := w.TotalDemands()
	for k := range tot {
		tot[k] /= float64(len(w.Pages))
	}
	return tot
}

// PageModel builds the single-class closed model in which one customer
// cycle is one page view (think time between pages), on the given station
// skeleton (names/kinds/servers are taken from skel; demands from the
// workflow's per-page means).
func (w *Workflow) PageModel(skel *queueing.Model) (*queueing.Model, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(skel.Stations) != len(w.Pages[0].Demands) {
		return nil, fmt.Errorf("workload: workflow %q has %d stations, skeleton %d",
			w.Name, len(w.Pages[0].Demands), len(skel.Stations))
	}
	m := &queueing.Model{Name: skel.Name + "/" + w.Name, ThinkTime: w.ThinkTime}
	mean := w.MeanPageDemands()
	m.Stations = append([]queueing.Station(nil), skel.Stations...)
	for k := range m.Stations {
		m.Stations[k].Visits = 1
		m.Stations[k].ServiceTime = mean[k]
	}
	return m, nil
}

// SessionModel builds the single-class closed model in which one customer
// cycle is a full session (all pages, with the total inter-page think time
// folded into Z).
func (w *Workflow) SessionModel(skel *queueing.Model) (*queueing.Model, error) {
	m, err := w.PageModel(skel)
	if err != nil {
		return nil, err
	}
	tot := w.TotalDemands()
	for k := range m.Stations {
		m.Stations[k].ServiceTime = tot[k]
	}
	m.ThinkTime = w.ThinkTime * float64(len(w.Pages))
	return m, nil
}

// MixEntry pairs a workflow with its concurrent session population.
type MixEntry struct {
	Workflow   *Workflow
	Population int
}

// Mix is a set of workflows running concurrently — e.g. VINS users split
// across Registration / New Policy / Renew Policy / Read Policy.
type Mix struct {
	Name    string
	Entries []MixEntry
}

// Solve runs the exact multi-class MVA over the mix on the given station
// skeleton (single-server stations only — multi-class MVA's product-form
// recursion requires it; fold multi-server stations with
// core.NormalizeServers first). Each workflow is one customer class whose
// cycle is a full session.
func (mx *Mix) Solve(skel *queueing.Model) (*core.MulticlassResult, error) {
	if len(mx.Entries) == 0 {
		return nil, errors.New("workload: empty mix")
	}
	classes := make([]core.ClassSpec, len(mx.Entries))
	for i, e := range mx.Entries {
		if err := e.Workflow.Validate(); err != nil {
			return nil, err
		}
		classes[i] = core.ClassSpec{
			Name:       e.Workflow.Name,
			Population: e.Population,
			ThinkTime:  e.Workflow.ThinkTime * float64(len(e.Workflow.Pages)),
			Demands:    e.Workflow.TotalDemands(),
		}
	}
	return core.MulticlassMVA(skel, classes)
}

// scalePages builds pages from a base demand vector with per-page
// multipliers, spreading a workflow's weight across its steps.
func scalePages(names []string, base []float64, weights []float64) []Page {
	pages := make([]Page, len(names))
	for i, name := range names {
		d := make([]float64, len(base))
		for k := range base {
			d[k] = base[k] * weights[i]
		}
		pages[i] = Page{Name: name, Demands: d}
	}
	return pages
}

// VINSWorkflows returns the four VINS workflows the paper describes, with
// per-page demand vectors over the supplied station base vector (typically
// a testbed profile's demands at some concurrency). The Renew Policy flow
// has the paper's 7 pages and per-page mean equal to the base vector; the
// other flows are lighter or heavier variants of the same resources.
func VINSWorkflows(base []float64, thinkTime float64) []*Workflow {
	renew := &Workflow{
		Name:      "Renew Policy",
		ThinkTime: thinkTime,
		Pages: scalePages(
			[]string{"login", "lookup-policy", "policy-details", "renewal-quote",
				"premium-calc", "payment", "confirmation"},
			base,
			// Per-page weights averaging 1.0: the quote/premium pages are
			// the database-heavy steps.
			[]float64{0.5, 0.9, 0.8, 1.4, 1.6, 1.0, 0.8},
		),
	}
	registration := &Workflow{
		Name:      "Registration",
		ThinkTime: thinkTime,
		Pages: scalePages(
			[]string{"login", "personal-details", "vehicle-details", "submit", "confirmation"},
			base,
			[]float64{0.5, 1.1, 1.2, 1.5, 0.7},
		),
	}
	newPolicy := &Workflow{
		Name:      "New Policy",
		ThinkTime: thinkTime,
		Pages: scalePages(
			[]string{"login", "select-vehicle", "coverage-options", "quote", "payment", "confirmation"},
			base,
			[]float64{0.5, 0.9, 1.0, 1.5, 1.1, 0.8},
		),
	}
	readPolicy := &Workflow{
		Name:      "Read Policy Details",
		ThinkTime: thinkTime,
		Pages: scalePages(
			[]string{"login", "lookup-policy", "policy-details"},
			base,
			[]float64{0.5, 0.8, 0.9},
		),
	}
	return []*Workflow{registration, newPolicy, renew, readPolicy}
}

// JPetStoreWorkflow returns the 14-page buy flow of the paper's e-commerce
// application over the supplied station base vector.
func JPetStoreWorkflow(base []float64, thinkTime float64) *Workflow {
	return &Workflow{
		Name:      "Buy Pets",
		ThinkTime: thinkTime,
		Pages: scalePages(
			[]string{"home", "login", "category-birds", "category-fish",
				"category-reptiles", "category-cats", "category-dogs",
				"product-list", "product-details", "add-to-cart", "view-cart",
				"checkout", "payment", "order-confirmation"},
			base,
			[]float64{0.4, 0.6, 0.9, 0.9, 0.9, 0.9, 0.9, 1.3, 1.2, 1.1, 1.0, 1.4, 1.5, 1.0},
		),
	}
}
