package queueing

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/numeric"
)

func validModel() *Model {
	return &Model{
		Name:      "test",
		ThinkTime: 1,
		Stations: []Station{
			{Name: "app/cpu", Kind: CPU, Servers: 16, Visits: 1, ServiceTime: 0.004},
			{Name: "db/cpu", Kind: CPU, Servers: 16, Visits: 1, ServiceTime: 0.003},
			{Name: "db/disk", Kind: Disk, Servers: 1, Visits: 1, ServiceTime: 0.010},
			{Name: "net/tx", Kind: NetTx, Servers: 1, Visits: 1, ServiceTime: 0.001},
		},
	}
}

func TestValidateAcceptsGoodModel(t *testing.T) {
	if err := validModel().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"no stations", func(m *Model) { m.Stations = nil }},
		{"negative think", func(m *Model) { m.ThinkTime = -1 }},
		{"unnamed station", func(m *Model) { m.Stations[0].Name = "" }},
		{"duplicate name", func(m *Model) { m.Stations[1].Name = m.Stations[0].Name }},
		{"zero servers", func(m *Model) { m.Stations[0].Servers = 0 }},
		{"negative visits", func(m *Model) { m.Stations[0].Visits = -2 }},
		{"NaN service", func(m *Model) { m.Stations[0].ServiceTime = math.NaN() }},
	}
	for _, c := range cases {
		m := validModel()
		c.mutate(m)
		if err := m.Validate(); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("%s: got %v, want ErrInvalidModel", c.name, err)
		}
	}
}

func TestStationDemand(t *testing.T) {
	st := Station{Visits: 7, ServiceTime: 0.01}
	if got := st.Demand(); !numeric.AlmostEqual(got, 0.07, 1e-12) {
		t.Errorf("Demand = %g, want 0.07", got)
	}
}

func TestStationIndex(t *testing.T) {
	m := validModel()
	if i := m.StationIndex("db/disk"); i != 2 {
		t.Errorf("index = %d, want 2", i)
	}
	if i := m.StationIndex("nope"); i != -1 {
		t.Errorf("missing station index = %d, want -1", i)
	}
}

func TestDemandsAndTotal(t *testing.T) {
	m := validModel()
	d := m.Demands()
	want := []float64{0.004, 0.003, 0.010, 0.001}
	for i := range want {
		if !numeric.AlmostEqual(d[i], want[i], 1e-12) {
			t.Errorf("D[%d] = %g, want %g", i, d[i], want[i])
		}
	}
	if got := m.TotalDemand(); !numeric.AlmostEqual(got, 0.018, 1e-12) {
		t.Errorf("TotalDemand = %g, want 0.018", got)
	}
}

func TestMaxDemandNormalisesByServers(t *testing.T) {
	m := validModel()
	// db/disk: 0.010/1 = 0.010 dominates app/cpu 0.004/16.
	dmax, idx := m.MaxDemand()
	if idx != 2 {
		t.Errorf("bottleneck index = %d, want 2 (db/disk)", idx)
	}
	if !numeric.AlmostEqual(dmax, 0.010, 1e-12) {
		t.Errorf("dmax = %g, want 0.010", dmax)
	}
}

func TestMaxDemandSkipsDelay(t *testing.T) {
	m := &Model{Stations: []Station{
		{Name: "think", Kind: Delay, Servers: 1, Visits: 1, ServiceTime: 100},
		{Name: "cpu", Kind: CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
	}}
	dmax, idx := m.MaxDemand()
	if idx != 1 || dmax != 0.01 {
		t.Errorf("MaxDemand = (%g, %d), want (0.01, 1)", dmax, idx)
	}
}

func TestOperationalLaws(t *testing.T) {
	// Utilization Law: X=50/s, S=0.01s → U=0.5.
	if got := Utilization(50, 0.01); !numeric.AlmostEqual(got, 0.5, 1e-12) {
		t.Errorf("Utilization = %g", got)
	}
	// Forced Flow: V=3, X=10 → X_i=30.
	if got := ForcedFlow(3, 10); got != 30 {
		t.Errorf("ForcedFlow = %g", got)
	}
	// Service Demand Law: U=0.9, X=100 → D=0.009.
	if got := DemandFromUtilization(0.9, 100); !numeric.AlmostEqual(got, 0.009, 1e-12) {
		t.Errorf("DemandFromUtilization = %g", got)
	}
	if got := DemandFromUtilization(0.9, 0); got != 0 {
		t.Errorf("zero-throughput demand = %g, want 0", got)
	}
	// Little: X=100, R=0.5, Z=1 → N=150.
	if got := LittleN(100, 0.5, 1); got != 150 {
		t.Errorf("LittleN = %g", got)
	}
	if got := LittleX(150, 0.5, 1); got != 100 {
		t.Errorf("LittleX = %g", got)
	}
	if got := LittleX(10, 0, 0); got != 0 {
		t.Errorf("LittleX degenerate = %g", got)
	}
}

func TestLittleLawsAreInverse(t *testing.T) {
	for _, n := range []float64{1, 10, 500} {
		for _, r := range []float64{0.01, 0.3, 2} {
			x := LittleX(n, r, 1)
			if got := LittleN(x, r, 1); !numeric.AlmostEqual(got, n, 1e-12) {
				t.Errorf("LittleN(LittleX(%g)) = %g", n, got)
			}
		}
	}
}

func TestThroughputBound(t *testing.T) {
	if got := ThroughputBound(0.01); got != 100 {
		t.Errorf("bound = %g, want 100", got)
	}
	if got := ThroughputBound(0); !math.IsInf(got, 1) {
		t.Errorf("zero demand bound = %g, want +Inf", got)
	}
}

func TestResponseTimeLowerBound(t *testing.T) {
	// Low N: floor at ΣD. High N: asymptote N·Dmax − Z.
	if got := ResponseTimeLowerBound(1, 0.01, 0.05, 1); got != 0.05 {
		t.Errorf("low-N bound = %g, want 0.05", got)
	}
	if got := ResponseTimeLowerBound(1000, 0.01, 0.05, 1); got != 9 {
		t.Errorf("high-N bound = %g, want 9", got)
	}
}

func TestBoundsCrossover(t *testing.T) {
	m := validModel()
	b := Bounds(m, 100)
	// NStar = (ΣD+Z)/Dmax = 1.018/0.010 = 101.8
	if !numeric.AlmostEqual(b.NStar, 101.8, 1e-9) {
		t.Errorf("NStar = %g, want 101.8", b.NStar)
	}
	// Below saturation the light-load asymptote governs.
	if !numeric.AlmostEqual(b.XUpper, 100/1.018, 1e-9) {
		t.Errorf("XUpper = %g, want %g", b.XUpper, 100/1.018)
	}
	b2 := Bounds(m, 1000)
	if !numeric.AlmostEqual(b2.XUpper, 100, 1e-9) {
		t.Errorf("saturated XUpper = %g, want 100 (=1/Dmax)", b2.XUpper)
	}
	if b.XLower <= 0 || b.XLower > b.XUpper {
		t.Errorf("bounds ordering violated: [%g, %g]", b.XLower, b.XUpper)
	}
}

func TestBalancedJobBoundsBracketAsymptotic(t *testing.T) {
	m := validModel()
	for _, n := range []int{1, 10, 50, 200, 1000} {
		bb := BalancedJobBounds(m, n)
		if bb.XLower <= 0 {
			t.Errorf("n=%d: non-positive lower bound %g", n, bb.XLower)
		}
		if bb.XLower > bb.XUpper*(1+1e-9) {
			t.Errorf("n=%d: lower %g > upper %g", n, bb.XLower, bb.XUpper)
		}
		// Never above the bottleneck bound.
		if bb.XUpper > 100+1e-9 {
			t.Errorf("n=%d: upper %g exceeds 1/Dmax", n, bb.XUpper)
		}
	}
}

func TestBalancedJobBoundsDegenerate(t *testing.T) {
	m := &Model{Stations: []Station{{Name: "z", Kind: Delay, Servers: 1, Visits: 1, ServiceTime: 1}}}
	bb := BalancedJobBounds(m, 10)
	if bb.XLower != 0 || !math.IsInf(bb.XUpper, 1) {
		t.Errorf("delay-only model bounds = %+v", bb)
	}
}

func TestNetworkUtilization(t *testing.T) {
	// eq. 7: 1e5 packets of 12000 bits over 10 s on 1 Gbps → 0.12.
	got := NetworkUtilization(1e5, 12000, 10, 1e9)
	if !numeric.AlmostEqual(got, 0.12, 1e-12) {
		t.Errorf("NetworkUtilization = %g, want 0.12", got)
	}
	if NetworkUtilization(1, 1, 0, 1) != 0 {
		t.Error("zero window must yield 0")
	}
}

func TestModelString(t *testing.T) {
	s := validModel().String()
	for _, want := range []string{"db/disk", "Z=1s", "4 stations"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
