// Package queueing defines the closed queueing-network model types shared by
// the analytical solvers (internal/core) and the discrete-event simulator
// (internal/simulation), together with the operational laws of Section 3 of
// the paper: the Utilization Law (eq. 1), Forced Flow Law (eq. 2), Service
// Demand Law (eq. 3), Little's Law (eq. 4) and the Bottleneck Law bounds
// (eqs. 5–6), plus the classical asymptotic and balanced-job bounds that
// frame every MVA result.
package queueing

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ResourceKind classifies a queueing station by the hardware resource it
// models. The multi-tier testbed uses exactly the four kinds of Fig. 2
// (multi-core CPU, Disk, Network Tx, Network Rx) plus Delay for pure
// think-time stations.
type ResourceKind string

const (
	CPU   ResourceKind = "cpu"
	Disk  ResourceKind = "disk"
	NetTx ResourceKind = "net-tx"
	NetRx ResourceKind = "net-rx"
	Delay ResourceKind = "delay"
	Other ResourceKind = "other"
)

// Station is one queueing centre in a closed network.
type Station struct {
	// Name identifies the station, e.g. "db/disk" or "app/cpu".
	Name string `json:"name"`
	// Kind is the resource class; informational except for Delay, which
	// solvers treat as an infinite-server (no-queueing) centre.
	Kind ResourceKind `json:"kind"`
	// Servers is C_k, the number of servers at the station (cores for a
	// CPU). Must be >= 1.
	Servers int `json:"servers"`
	// Visits is V_k, the mean number of visits per system-level
	// transaction (Forced Flow Law ratio X_k/X).
	Visits float64 `json:"visits"`
	// ServiceTime is S_k, the mean service time per visit in seconds.
	ServiceTime float64 `json:"serviceTime"`
}

// Demand returns the service demand D_k = V_k · S_k (eq. 3), the total
// average service time a transaction requires at this station.
func (s Station) Demand() float64 { return s.Visits * s.ServiceTime }

// Model is a single-class closed queueing network with terminal think time.
type Model struct {
	// Name labels the model in reports.
	Name string `json:"name"`
	// Stations are the queueing centres. Order is significant: solvers
	// report per-station metrics in this order.
	Stations []Station `json:"stations"`
	// ThinkTime is Z, the mean terminal think time in seconds.
	ThinkTime float64 `json:"thinkTime"`
}

// ErrInvalidModel is wrapped by Validate for any structural problem.
var ErrInvalidModel = errors.New("queueing: invalid model")

// Validate checks the model for structural soundness: at least one station,
// positive server counts, non-negative visits/service times/think time, and
// unique station names.
func (m *Model) Validate() error {
	if len(m.Stations) == 0 {
		return fmt.Errorf("%w: no stations", ErrInvalidModel)
	}
	if m.ThinkTime < 0 {
		return fmt.Errorf("%w: negative think time %g", ErrInvalidModel, m.ThinkTime)
	}
	seen := make(map[string]bool, len(m.Stations))
	for i, st := range m.Stations {
		if st.Name == "" {
			return fmt.Errorf("%w: station %d has no name", ErrInvalidModel, i)
		}
		if seen[st.Name] {
			return fmt.Errorf("%w: duplicate station name %q", ErrInvalidModel, st.Name)
		}
		seen[st.Name] = true
		if st.Servers < 1 {
			return fmt.Errorf("%w: station %q has %d servers", ErrInvalidModel, st.Name, st.Servers)
		}
		if st.Visits < 0 || math.IsNaN(st.Visits) {
			return fmt.Errorf("%w: station %q has invalid visits %g", ErrInvalidModel, st.Name, st.Visits)
		}
		if st.ServiceTime < 0 || math.IsNaN(st.ServiceTime) {
			return fmt.Errorf("%w: station %q has invalid service time %g", ErrInvalidModel, st.Name, st.ServiceTime)
		}
	}
	return nil
}

// StationIndex returns the index of the named station, or -1.
func (m *Model) StationIndex(name string) int {
	for i, st := range m.Stations {
		if st.Name == name {
			return i
		}
	}
	return -1
}

// Demands returns the per-station demand vector D_k.
func (m *Model) Demands() []float64 {
	out := make([]float64, len(m.Stations))
	for i, st := range m.Stations {
		out[i] = st.Demand()
	}
	return out
}

// TotalDemand returns ΣD_k, the zero-load response time of one transaction.
func (m *Model) TotalDemand() float64 {
	sum := 0.0
	for _, st := range m.Stations {
		sum += st.Demand()
	}
	return sum
}

// MaxDemand returns D_max = max_k D_k/C_k together with the index of the
// bottleneck station. Demands are normalised by the server count because a
// C-server station saturates at throughput C/D, not 1/D; with all C_k = 1
// this is exactly the paper's D_max = max_k D_k.
func (m *Model) MaxDemand() (dmax float64, bottleneck int) {
	bottleneck = -1
	for i, st := range m.Stations {
		if st.Kind == Delay {
			continue // infinite-server stations never bottleneck
		}
		d := st.Demand() / float64(st.Servers)
		if d > dmax {
			dmax, bottleneck = d, i
		}
	}
	return dmax, bottleneck
}

// String renders a compact human-readable summary.
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model %q: Z=%gs, %d stations\n", m.Name, m.ThinkTime, len(m.Stations))
	for _, st := range m.Stations {
		fmt.Fprintf(&b, "  %-20s kind=%-7s C=%-3d V=%-8.4g S=%-10.6g D=%.6g\n",
			st.Name, st.Kind, st.Servers, st.Visits, st.ServiceTime, st.Demand())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Operational laws (paper Section 3)
// ---------------------------------------------------------------------------

// Utilization applies the Utilization Law (eq. 1): U_i = X_i · S_i, where
// X_i is the station throughput and S_i the mean service time per visit.
// For a multi-server station divide by Servers to get per-server utilization.
func Utilization(stationThroughput, serviceTime float64) float64 {
	return stationThroughput * serviceTime
}

// ForcedFlow applies the Forced Flow Law (eq. 2): X_i = V_i · X.
func ForcedFlow(visits, systemThroughput float64) float64 {
	return visits * systemThroughput
}

// DemandFromUtilization applies the Service Demand Law (eq. 3) in its
// measurement form D_i = U_i / X: utilization here is the total busy
// fraction of the resource (for a multi-core CPU, the sum over cores, i.e.
// the 0–C_k scale, not the 0–1 average), and X is the system throughput.
// This is the primary way the paper extracts demands from load tests.
func DemandFromUtilization(utilization, systemThroughput float64) float64 {
	if systemThroughput <= 0 {
		return 0
	}
	return utilization / systemThroughput
}

// LittleN applies Little's Law (eq. 4): N = X · (R + Z).
func LittleN(throughput, responseTime, thinkTime float64) float64 {
	return throughput * (responseTime + thinkTime)
}

// LittleX rearranges Little's Law for throughput: X = N / (R + Z).
func LittleX(n float64, responseTime, thinkTime float64) float64 {
	den := responseTime + thinkTime
	if den <= 0 {
		return 0
	}
	return n / den
}

// ThroughputBound applies the Bottleneck Law (eq. 5): X ≤ 1/D_max, with
// D_max already normalised by server counts (see Model.MaxDemand).
func ThroughputBound(dmax float64) float64 {
	if dmax <= 0 {
		return math.Inf(1)
	}
	return 1 / dmax
}

// ResponseTimeLowerBound applies eq. 6: R ≥ N·D_max − Z (asymptotic), with
// the zero-load floor R ≥ ΣD as the other regime.
func ResponseTimeLowerBound(n float64, dmax, totalDemand, thinkTime float64) float64 {
	return math.Max(totalDemand, n*dmax-thinkTime)
}

// AsymptoticBounds bundles the classical closed-network asymptotic bounds
// for a model at population n.
type AsymptoticBounds struct {
	// XUpper is min(n/(ΣD+Z), 1/D_max).
	XUpper float64
	// XLower is the pessimistic n/(n·ΣD + Z) bound.
	XLower float64
	// RLower is max(ΣD, n·D_max − Z).
	RLower float64
	// NStar is the saturation population (ΣD + Z)/D_max where the two
	// throughput asymptotes cross.
	NStar float64
}

// Bounds computes the asymptotic bounds for the model at population n.
func Bounds(m *Model, n int) AsymptoticBounds {
	total := m.TotalDemand()
	dmax, _ := m.MaxDemand()
	fn := float64(n)
	b := AsymptoticBounds{
		XLower: fn / (fn*total + m.ThinkTime),
		RLower: ResponseTimeLowerBound(fn, dmax, total, m.ThinkTime),
	}
	b.XUpper = math.Min(fn/(total+m.ThinkTime), ThroughputBound(dmax))
	if dmax > 0 {
		b.NStar = (total + m.ThinkTime) / dmax
	} else {
		b.NStar = math.Inf(1)
	}
	return b
}

// BalancedBounds computes the balanced-job bounds (Zahorjan et al.), which
// are tighter than the asymptotic bounds: the network's throughput is
// bracketed by the throughput of "balanced" networks with all demands equal
// to the average and to the maximum, respectively.
type BalancedBounds struct {
	XLower, XUpper float64
}

// BalancedJobBounds returns balanced-job throughput bounds at population n.
// They are exact only for Z = 0 single-server networks; for Z > 0 we use the
// standard generalisation with the think time folded into the population
// term. Stations with multiple servers are approximated by C_k parallel
// single-server stations of demand D_k/C_k (optimistic, consistent with the
// upper-bound role).
func BalancedJobBounds(m *Model, n int) BalancedBounds {
	// Expand multi-server stations.
	var demands []float64
	for _, st := range m.Stations {
		if st.Kind == Delay {
			continue
		}
		per := st.Demand() / float64(st.Servers)
		for c := 0; c < st.Servers; c++ {
			demands = append(demands, per)
		}
	}
	k := float64(len(demands))
	if k == 0 {
		return BalancedBounds{XLower: 0, XUpper: math.Inf(1)}
	}
	total, dmax := 0.0, 0.0
	for _, d := range demands {
		total += d
		dmax = math.Max(dmax, d)
	}
	davg := total / k
	fn := float64(n)
	z := m.ThinkTime
	// Lower bound: balanced network with every demand = D_max.
	lower := fn / (z + total + dmax*(fn-1)/(1+z/(fn*dmax)))
	// Upper bound: balanced network with every demand = D_avg, capped by
	// the bottleneck.
	upper := fn / (z + total + davg*(fn-1)/(1+z/(fn*davg)))
	upper = math.Min(upper, 1/dmax)
	return BalancedBounds{XLower: lower, XUpper: upper}
}

// NetworkUtilization applies the paper's eq. 7: the utilization of a network
// link over a monitoring window given transmitted+received packet counts,
// packet size in bits, window length in seconds, and bandwidth in bits/s.
func NetworkUtilization(packets float64, packetSizeBits, window, bandwidth float64) float64 {
	if window <= 0 || bandwidth <= 0 {
		return 0
	}
	return packets * packetSizeBits / (window * bandwidth)
}
