package planning

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/queueing"
	"repro/internal/testbed"
)

func simpleModel() *queueing.Model {
	return &queueing.Model{
		Name:      "plan",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "app/cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.02},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.008},
		},
	}
}

func TestCheckCompliantAndViolating(t *testing.T) {
	p := &Plan{Model: simpleModel()}
	// Light load: generous SLA holds.
	v, err := p.Check(10, SLA{MaxResponseTime: 0.1, MinThroughput: 5, MaxUtilization: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("unexpected violations at N=10: %v", v)
	}
	// Deep saturation: R grows linearly, disk pegged.
	v, err = p.Check(500, SLA{MaxResponseTime: 0.1, MaxUtilization: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) < 2 {
		t.Fatalf("expected response-time and utilization violations, got %v", v)
	}
	found := map[string]bool{}
	for _, x := range v {
		if strings.HasPrefix(x.Clause, "utilization") {
			found["util"] = true
		}
		if x.Clause == "response time" {
			found["rt"] = true
		}
		if x.String() == "" {
			t.Error("empty violation string")
		}
	}
	if !found["util"] || !found["rt"] {
		t.Fatalf("missing expected clauses: %v", v)
	}
}

func TestStationCapsOverride(t *testing.T) {
	p := &Plan{Model: simpleModel()}
	// Global cap passes but the disk-specific cap is tighter.
	v, err := p.Check(60, SLA{
		MaxUtilization: 0.99,
		StationCaps:    map[string]float64{"db/disk": 0.30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0].Clause, "db/disk") {
		t.Fatalf("expected only the db/disk cap to fire: %v", v)
	}
}

func TestMaxUsersUnderSLA(t *testing.T) {
	p := &Plan{Model: simpleModel()}
	sla := SLA{MaxCycleTime: 1.2}
	nMax, err := p.MaxUsersUnderSLA(500, sla)
	if err != nil {
		t.Fatal(err)
	}
	if nMax < 1 || nMax >= 500 {
		t.Fatalf("nMax = %d, expected an interior knee", nMax)
	}
	// The SLA holds at nMax and fails at nMax+1.
	if v, _ := p.Check(nMax, sla); len(v) != 0 {
		t.Fatalf("SLA violated at reported max %d: %v", nMax, v)
	}
	if v, _ := p.Check(nMax+1, sla); len(v) == 0 {
		t.Fatalf("SLA unexpectedly holds at %d", nMax+1)
	}
	// Impossible SLA fails immediately.
	if n, err := p.MaxUsersUnderSLA(10, SLA{MaxResponseTime: 1e-9}); err != nil || n != 0 {
		t.Fatalf("impossible SLA: n=%d err=%v", n, err)
	}
	if _, err := p.MaxUsersUnderSLA(0, sla); err == nil {
		t.Error("limit 0 should error")
	}
}

func TestPlanWithVaryingDemands(t *testing.T) {
	// With decaying demands MVASD admits more users under the same SLA
	// than the constant-demand plan.
	m := simpleModel()
	samples := []core.DemandSamples{
		{At: []float64{1, 100, 300}, Demands: []float64{0.020, 0.015, 0.012}},
		{At: []float64{1, 100, 300}, Demands: []float64{0.008, 0.0065, 0.0055}},
	}
	dm, err := core.NewCurveDemands(interp.PCHIP, samples, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	constant := &Plan{Model: m}
	varying := &Plan{Model: m, Demands: dm}
	sla := SLA{MaxCycleTime: 1.5}
	nConst, err := constant.MaxUsersUnderSLA(600, sla)
	if err != nil {
		t.Fatal(err)
	}
	nVar, err := varying.MaxUsersUnderSLA(600, sla)
	if err != nil {
		t.Fatal(err)
	}
	if nVar <= nConst {
		t.Fatalf("varying demands admit %d users, constant %d — expected more", nVar, nConst)
	}
}

func TestMinServersForSLA(t *testing.T) {
	m := &queueing.Model{
		Name:      "sizing",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.05},
		},
	}
	// At N=100 a single 50 ms server saturates (X≤20); find the core count
	// that keeps cycle time under 1.3 s (X≈77 → at least 4 cores).
	c, err := MinServersForSLA(m, "cpu", 100, 32, SLA{MaxCycleTime: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	if c < 4 || c > 8 {
		t.Fatalf("needed %d cores, expected 4–8", c)
	}
	// One fewer core must violate.
	m2 := *m
	m2.Stations = append([]queueing.Station(nil), m.Stations...)
	m2.Stations[0].Servers = c - 1
	p := &Plan{Model: &m2}
	if v, _ := p.Check(100, SLA{MaxCycleTime: 1.3}); len(v) == 0 {
		t.Fatalf("%d cores should violate the SLA", c-1)
	}
	// Errors.
	if _, err := MinServersForSLA(m, "nope", 10, 4, SLA{}); err == nil {
		t.Error("unknown station should error")
	}
	if _, err := MinServersForSLA(m, "cpu", 10, 0, SLA{}); err == nil {
		t.Error("maxServers 0 should error")
	}
	if _, err := MinServersForSLA(m, "cpu", 1000, 1, SLA{MaxResponseTime: 1e-9}); err == nil {
		t.Error("unreachable SLA should error")
	}
}

func TestSpeedupScenarioAndCompare(t *testing.T) {
	m := simpleModel()
	// SSD swap: disk twice as fast removes the bottleneck.
	ssd, err := SpeedupScenario(m, "db/disk", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ssd.Stations[1].ServiceTime != 0.004 {
		t.Fatalf("scaled service time %g", ssd.Stations[1].ServiceTime)
	}
	if m.Stations[1].ServiceTime != 0.008 {
		t.Fatal("SpeedupScenario mutated the baseline")
	}
	cmp, err := Compare(m, ssd, 400)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.XGain <= 0.2 {
		t.Fatalf("expected >20%% gain from the SSD swap at saturation, got %.1f%%", cmp.XGain*100)
	}
	// New bottleneck is the CPU (0.02/4 = 0.005 > 0.004).
	if cmp.Bottleneck != "app/cpu" {
		t.Fatalf("new bottleneck %q, want app/cpu", cmp.Bottleneck)
	}
	if _, err := SpeedupScenario(m, "nope", 0.5); err == nil {
		t.Error("unknown station should error")
	}
	if _, err := SpeedupScenario(m, "db/disk", 0); err == nil {
		t.Error("factor 0 should error")
	}
}

func TestPlanOnTestbedProfile(t *testing.T) {
	// End-to-end: the VINS profile with its true demand curves — what
	// concurrency keeps pages under 2 s of cycle time?
	p := testbed.VINS()
	plan := &Plan{Model: p.Model(1), Demands: p.TrueDemandModel()}
	n, err := plan.MaxUsersUnderSLA(p.MaxUsers, SLA{MaxCycleTime: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The knee sits near N* ≈ 170; 2 s of cycle time is reached somewhat
	// beyond it.
	if n < 150 || n > 400 {
		t.Fatalf("VINS 2s-SLA capacity %d, expected a few hundred users", n)
	}
}

func TestNilModel(t *testing.T) {
	p := &Plan{}
	if _, err := p.Check(1, SLA{}); err == nil {
		t.Error("nil model should error")
	}
}
