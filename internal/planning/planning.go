// Package planning layers capacity-planning queries over the MVA solvers —
// the use the paper's introduction motivates: validating Service Level
// Agreements before deployment ("with 100 users the response time should be
// less than 1 second per page; the maximum CPU utilization with 500
// concurrent users should be less than 50%") and predicting "future
// performance indexes under changes in hardware or assumptions on
// concurrency".
//
// Queries solve the model with MVASD when a demand model is supplied
// (honouring concurrency-varying demands) and with the exact multi-server
// MVA otherwise.
package planning

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/queueing"
)

// SLA is a set of service-level requirements evaluated at a population.
type SLA struct {
	// MaxResponseTime caps R (seconds); 0 disables the check.
	MaxResponseTime float64
	// MaxCycleTime caps R+Z (seconds); 0 disables.
	MaxCycleTime float64
	// MinThroughput floors X (transactions/second); 0 disables.
	MinThroughput float64
	// MaxUtilization caps every station's per-server utilization in
	// (0, 1]; 0 disables. Named stations can override via StationCaps.
	MaxUtilization float64
	// StationCaps caps specific stations' utilization by name.
	StationCaps map[string]float64
}

// Violation describes one failed SLA clause.
type Violation struct {
	// Clause identifies the failed requirement.
	Clause string
	// Have and Want are the measured and required values.
	Have, Want float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: have %.4g, want %.4g", v.Clause, v.Have, v.Want)
}

// Plan couples a model with an optional varying-demand model.
type Plan struct {
	// Model is the network under study.
	Model *queueing.Model
	// Demands optionally supplies concurrency-varying demands (MVASD);
	// nil solves with the model's constant demands (Algorithm 2).
	Demands core.DemandModel
	// Options tunes the MVASD run.
	Options core.MVASDOptions
}

// solve runs the appropriate solver to maxN.
func (p *Plan) solve(maxN int) (*core.Result, error) {
	return p.solveContext(context.Background(), maxN)
}

// solveContext runs the appropriate solver to maxN under ctx.
func (p *Plan) solveContext(ctx context.Context, maxN int) (*core.Result, error) {
	if p.Model == nil {
		return nil, errors.New("planning: nil model")
	}
	if p.Demands != nil {
		return core.MVASDWithContext(ctx, p.Model, maxN, p.Demands, p.Options)
	}
	res, _, err := core.ExactMVAMultiServerWithContext(ctx, p.Model, maxN, core.MultiServerOptions{TraceStation: -1})
	return res, err
}

// Check evaluates the SLA at population n and returns all violations
// (empty slice = compliant).
func (p *Plan) Check(n int, sla SLA) ([]Violation, error) {
	return p.CheckContext(context.Background(), n, sla)
}

// CheckContext is Check with a cancellable solve, for callers (like the
// solverd service) that impose per-request deadlines.
func (p *Plan) CheckContext(ctx context.Context, n int, sla SLA) ([]Violation, error) {
	res, err := p.solveContext(ctx, n)
	if err != nil {
		return nil, err
	}
	return checkAt(res, p.Model, n, sla), nil
}

func checkAt(res *core.Result, m *queueing.Model, n int, sla SLA) []Violation {
	var out []Violation
	x, r, cycle, err := res.At(n)
	if err != nil {
		return []Violation{{Clause: "population out of solved range", Have: float64(n)}}
	}
	if sla.MaxResponseTime > 0 && r > sla.MaxResponseTime {
		out = append(out, Violation{Clause: "response time", Have: r, Want: sla.MaxResponseTime})
	}
	if sla.MaxCycleTime > 0 && cycle > sla.MaxCycleTime {
		out = append(out, Violation{Clause: "cycle time", Have: cycle, Want: sla.MaxCycleTime})
	}
	if sla.MinThroughput > 0 && x < sla.MinThroughput {
		out = append(out, Violation{Clause: "throughput", Have: x, Want: sla.MinThroughput})
	}
	for k, name := range res.StationNames {
		cap := sla.MaxUtilization
		if v, ok := sla.StationCaps[name]; ok {
			cap = v
		}
		if cap > 0 && res.Util[n-1][k] > cap {
			out = append(out, Violation{
				Clause: "utilization of " + name,
				Have:   res.Util[n-1][k], Want: cap,
			})
		}
	}
	_ = m
	return out
}

// MaxUsersUnderSLA returns the largest population in [1, limit] at which the
// SLA holds (0 if it fails even at N=1). SLA metrics are monotone in N for
// constant demands; with varying demands the first violating population is
// still what a capacity planner wants, so the scan stops there.
func (p *Plan) MaxUsersUnderSLA(limit int, sla SLA) (int, error) {
	return p.MaxUsersUnderSLAContext(context.Background(), limit, sla)
}

// MaxUsersUnderSLAContext is MaxUsersUnderSLA with a cancellable solve.
func (p *Plan) MaxUsersUnderSLAContext(ctx context.Context, limit int, sla SLA) (int, error) {
	if limit < 1 {
		return 0, fmt.Errorf("planning: limit %d", limit)
	}
	res, err := p.solveContext(ctx, limit)
	if err != nil {
		return 0, err
	}
	for n := 1; n <= limit; n++ {
		if len(checkAt(res, p.Model, n, sla)) > 0 {
			return n - 1, nil
		}
	}
	return limit, nil
}

// MinServersForSLA returns the smallest server count for the named station
// (scanning 1..maxServers) such that the SLA holds at population n. The
// station's demand is held fixed (more servers, same per-visit work).
// Returns an error when even maxServers cannot satisfy the SLA.
//
// Only the constant-demand solver is used: scaling a station invalidates a
// measured demand model, so what-if runs use the model's demands as-is.
func MinServersForSLA(m *queueing.Model, station string, n, maxServers int, sla SLA) (int, error) {
	idx := m.StationIndex(station)
	if idx < 0 {
		return 0, fmt.Errorf("planning: no station %q", station)
	}
	if maxServers < 1 {
		return 0, fmt.Errorf("planning: maxServers %d", maxServers)
	}
	trial := *m
	trial.Stations = append([]queueing.Station(nil), m.Stations...)
	for c := 1; c <= maxServers; c++ {
		trial.Stations[idx].Servers = c
		res, _, err := core.ExactMVAMultiServer(&trial, n, core.MultiServerOptions{TraceStation: -1})
		if err != nil {
			return 0, err
		}
		if len(checkAt(res, &trial, n, sla)) == 0 {
			return c, nil
		}
	}
	return 0, fmt.Errorf("planning: SLA unreachable for %q even with %d servers", station, maxServers)
}

// SpeedupScenario scales a station's service time by factor (0.5 = twice as
// fast — e.g. an SSD swap for the database disk) and returns the new model.
func SpeedupScenario(m *queueing.Model, station string, factor float64) (*queueing.Model, error) {
	idx := m.StationIndex(station)
	if idx < 0 {
		return nil, fmt.Errorf("planning: no station %q", station)
	}
	if factor <= 0 {
		return nil, fmt.Errorf("planning: factor %g", factor)
	}
	out := *m
	out.Name = fmt.Sprintf("%s (%s ×%.2g)", m.Name, station, factor)
	out.Stations = append([]queueing.Station(nil), m.Stations...)
	out.Stations[idx].ServiceTime *= factor
	return &out, nil
}

// Comparison reports a what-if scenario against the baseline at population n.
type Comparison struct {
	BaselineX, ScenarioX         float64
	BaselineCycle, ScenarioCycle float64
	// XGain is ScenarioX/BaselineX − 1.
	XGain float64
	// Bottleneck names the scenario's limiting station.
	Bottleneck string
}

// Compare solves baseline and scenario at population n.
func Compare(baseline, scenario *queueing.Model, n int) (*Comparison, error) {
	b, _, err := core.ExactMVAMultiServer(baseline, n, core.MultiServerOptions{TraceStation: -1})
	if err != nil {
		return nil, err
	}
	s, _, err := core.ExactMVAMultiServer(scenario, n, core.MultiServerOptions{TraceStation: -1})
	if err != nil {
		return nil, err
	}
	_, bIdx := scenario.MaxDemand()
	c := &Comparison{
		BaselineX:     b.X[n-1],
		ScenarioX:     s.X[n-1],
		BaselineCycle: b.Cycle[n-1],
		ScenarioCycle: s.Cycle[n-1],
		Bottleneck:    scenario.Stations[bIdx].Name,
	}
	if c.BaselineX > 0 {
		c.XGain = c.ScenarioX/c.BaselineX - 1
	}
	return c, nil
}
