// Package modelio reads and writes the JSON file formats the command-line
// tools exchange: closed queueing-network models (queueing.Model) and
// per-station service-demand sample arrays (the MVASD input).
package modelio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/queueing"
)

// LoadModel reads and validates a queueing model from a JSON file.
func LoadModel(path string) (*queueing.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	return ReadModel(f)
}

// ReadModel decodes and validates a model from a reader.
func ReadModel(r io.Reader) (*queueing.Model, error) {
	var m queueing.Model
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("modelio: decoding model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// SaveModel writes a model to a JSON file (pretty-printed).
func SaveModel(path string, m *queueing.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	return WriteModel(f, m)
}

// WriteModel encodes a model to a writer.
func WriteModel(w io.Writer, m *queueing.Model) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// SamplesFile is the on-disk shape of a demand-sample set.
type SamplesFile struct {
	// Stations holds one entry per model station, in model order or
	// matched by name against the model when names are present.
	Stations []StationSamples `json:"stations"`
}

// StationSamples is one station's measured demand array.
type StationSamples struct {
	// Name optionally matches a model station.
	Name string `json:"name,omitempty"`
	// At are the concurrency (or throughput) levels sampled.
	At []float64 `json:"at"`
	// Demands are the corresponding service demands in seconds.
	Demands []float64 `json:"demands"`
}

// LoadSamples reads a demand-sample file.
func LoadSamples(path string) (*SamplesFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	return ReadSamples(f)
}

// ReadSamples decodes a demand-sample set from a reader.
func ReadSamples(r io.Reader) (*SamplesFile, error) {
	var s SamplesFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("modelio: decoding samples: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the structural soundness the interpolators rely on: at
// least one station, every station's At and Demands arrays the same non-zero
// length, and At strictly increasing. Errors name the offending station.
func (s *SamplesFile) Validate() error {
	if len(s.Stations) == 0 {
		return fmt.Errorf("modelio: samples file has no stations")
	}
	for i, st := range s.Stations {
		if err := st.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// validate checks one station's arrays; i is its position for error text.
func (st *StationSamples) validate(i int) error {
	label := fmt.Sprintf("station %d", i)
	if st.Name != "" {
		label = fmt.Sprintf("station %d (%q)", i, st.Name)
	}
	if len(st.At) == 0 || len(st.At) != len(st.Demands) {
		return fmt.Errorf("modelio: %s: %d abscissae, %d demands",
			label, len(st.At), len(st.Demands))
	}
	for j := 1; j < len(st.At); j++ {
		if !(st.At[j] > st.At[j-1]) { // also catches NaN
			return fmt.Errorf("modelio: %s: abscissae not strictly increasing at index %d (%g after %g)",
				label, j, st.At[j], st.At[j-1])
		}
	}
	return nil
}

// SaveSamples writes a demand-sample file.
func SaveSamples(path string, s *SamplesFile) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("modelio: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ToDemandSamples aligns the file's stations with the model and returns the
// core input arrays. When every entry carries a name, matching is by name;
// otherwise positional (and the counts must agree).
func (s *SamplesFile) ToDemandSamples(m *queueing.Model) ([]core.DemandSamples, error) {
	byName := true
	for _, st := range s.Stations {
		if st.Name == "" {
			byName = false
			break
		}
	}
	out := make([]core.DemandSamples, len(m.Stations))
	if byName {
		idx := map[string]int{}
		for i, st := range s.Stations {
			idx[st.Name] = i
		}
		for k, st := range m.Stations {
			j, ok := idx[st.Name]
			if !ok {
				return nil, fmt.Errorf("modelio: no samples for station %q", st.Name)
			}
			out[k] = core.DemandSamples{At: s.Stations[j].At, Demands: s.Stations[j].Demands}
		}
		return out, nil
	}
	if len(s.Stations) != len(m.Stations) {
		return nil, fmt.Errorf("modelio: %d sample stations for %d model stations (and not all named)",
			len(s.Stations), len(m.Stations))
	}
	for k := range m.Stations {
		out[k] = core.DemandSamples{At: s.Stations[k].At, Demands: s.Stations[k].Demands}
	}
	return out, nil
}

// FromDemandSamples packages core sample arrays (with station names from the
// model) for saving.
func FromDemandSamples(m *queueing.Model, samples []core.DemandSamples) (*SamplesFile, error) {
	if len(samples) != len(m.Stations) {
		return nil, fmt.Errorf("modelio: %d samples for %d stations", len(samples), len(m.Stations))
	}
	out := &SamplesFile{Stations: make([]StationSamples, len(samples))}
	for k, s := range samples {
		out.Stations[k] = StationSamples{
			Name:    m.Stations[k].Name,
			At:      append([]float64(nil), s.At...),
			Demands: append([]float64(nil), s.Demands...),
		}
	}
	return out, nil
}
