package modelio

// This file holds the wire schemas for the online-estimation API
// (internal/estimate via internal/server):
//
//	POST /v1/observe  stream live (utilization, throughput, concurrency)
//	                  samples and system-level measurements into the estimator
//	GET  /v1/demands  the current fitted demand curves + estimator health
//	GET  /v1/whatif   capacity planning against the live estimate
//
// Like the solve schemas, these reuse the package's model/samples formats:
// DemandsResponse.Samples is a SamplesFile, so the live estimate pastes
// directly into a /v1/solve body (or an offline MVASD run) and reproduces the
// server's own predictions float for float.

import (
	"fmt"
	"math"

	"repro/internal/queueing"
)

// ObserveSample is one station observation: the Service Demand Law inputs
// (eq. 3, D = U/X) measured over one sampling window.
type ObserveSample struct {
	// Station names the model station the utilization belongs to.
	Station string `json:"station"`
	// Concurrency is the offered load (virtual users) during the window.
	Concurrency int `json:"concurrency"`
	// Utilization is the station's total busy fraction (0–C_k scale: a
	// multi-core CPU sums over cores, as vmstat-style accounting reports).
	Utilization float64 `json:"utilization"`
	// Throughput is the measured system throughput (tx/s) for the window.
	Throughput float64 `json:"throughput"`
	// TimeUnixMS optionally stamps the sample (milliseconds since epoch).
	TimeUnixMS int64 `json:"timeUnixMs,omitempty"`
}

// SystemSample is one measured system-level pair for the closed-loop
// deviation check: the estimator's MVASD prediction at the same concurrency
// is compared against it under the paper's 3%/9% bounds, and a breach
// triggers re-estimation.
type SystemSample struct {
	Concurrency int     `json:"concurrency"`
	Throughput  float64 `json:"throughput"`
	// CycleTime is the measured R+Z in seconds; 0 skips the cycle check.
	CycleTime float64 `json:"cycleTime,omitempty"`
}

// ObserveRequest is the POST /v1/observe body.
type ObserveRequest struct {
	// Model registers the estimator's network shape. Required on the first
	// observe; later requests may omit it. Sending a structurally different
	// model resets the estimator (and invalidates estimate-backed caches).
	Model *queueing.Model `json:"model,omitempty"`
	// Samples are station observations to ingest.
	Samples []ObserveSample `json:"samples,omitempty"`
	// System are system-level measurements to score against the current
	// snapshot's predictions (ignored until a first fit exists).
	System []SystemSample `json:"system,omitempty"`
	// Fit forces a fit after ingest (counted as a "manual" trigger) — useful
	// to bootstrap the first snapshot instead of waiting for a breach.
	Fit bool `json:"fit,omitempty"`
}

// Normalize validates the observe request's structure. Per-sample domain
// errors (unknown station, non-positive throughput) surface per sample at
// ingest instead, so one bad sample does not reject a batch.
func (r *ObserveRequest) Normalize() error {
	if r.Model != nil {
		if err := r.Model.Validate(); err != nil {
			return err
		}
	}
	if len(r.Samples) == 0 && len(r.System) == 0 && !r.Fit {
		return fmt.Errorf("modelio: observe request has no samples, system measurements or fit request")
	}
	for i, sys := range r.System {
		if sys.Concurrency < 1 {
			return fmt.Errorf("modelio: system sample %d concurrency %d (want >= 1)", i, sys.Concurrency)
		}
		if sys.Throughput <= 0 || math.IsNaN(sys.Throughput) || math.IsInf(sys.Throughput, 0) {
			return fmt.Errorf("modelio: system sample %d throughput %g", i, sys.Throughput)
		}
		if sys.CycleTime < 0 || math.IsNaN(sys.CycleTime) {
			return fmt.Errorf("modelio: system sample %d cycle time %g", i, sys.CycleTime)
		}
	}
	return nil
}

// SystemCheck is the closed-loop verdict for one SystemSample.
type SystemCheck struct {
	Concurrency    int     `json:"concurrency"`
	PredictedX     float64 `json:"predictedX,omitempty"`
	PredictedCycle float64 `json:"predictedCycle,omitempty"`
	// ThroughputDeviation/CycleDeviation are |predicted−measured|/measured.
	ThroughputDeviation float64 `json:"throughputDeviation,omitempty"`
	CycleDeviation      float64 `json:"cycleDeviation,omitempty"`
	ThroughputBreach    bool    `json:"throughputBreach,omitempty"`
	CycleBreach         bool    `json:"cycleBreach,omitempty"`
	// Reestimated reports that this breach triggered a successful re-fit.
	Reestimated bool `json:"reestimated,omitempty"`
	// Error carries a per-check failure (no snapshot yet, failed re-fit).
	Error string `json:"error,omitempty"`
}

// SampleError is one rejected-at-validation ingest sample.
type SampleError struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// ObserveResponse is the POST /v1/observe reply.
type ObserveResponse struct {
	// Accepted/Rejected count ingested samples: Rejected covers the outlier
	// filter; Errors lists samples that failed validation entirely.
	Accepted int           `json:"accepted"`
	Rejected int           `json:"rejected"`
	Errors   []SampleError `json:"errors,omitempty"`
	// Checks reports the closed-loop verdicts, one per system sample.
	Checks []SystemCheck `json:"checks,omitempty"`
	// SnapshotVersion is the published demand-curve version after this
	// request (0 before the first fit).
	SnapshotVersion uint64 `json:"snapshotVersion"`
	// FitError is set when a requested or triggered fit failed.
	FitError  string  `json:"fitError,omitempty"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// DemandCurveOut is one station's fitted curve on the wire.
type DemandCurveOut struct {
	Name    string    `json:"name"`
	Nodes   []float64 `json:"nodes"`
	Demands []float64 `json:"demands"`
	// Points is how many distinct fit-ready concurrencies entered the fit.
	Points int `json:"points"`
	// Residual is the fit's RMS relative error against the smoothed means.
	Residual float64 `json:"residual"`
}

// StationHealthOut is one station's estimator ingest health on the wire.
type StationHealthOut struct {
	Name     string `json:"name"`
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	Resets   uint64 `json:"resets"`
	Cells    int    `json:"cells"`
	FitReady int    `json:"fitReady"`
}

// DemandsResponse is the GET /v1/demands reply.
type DemandsResponse struct {
	// SnapshotVersion is 0 (with nil Model/Samples/Stations) before the
	// first successful fit; health is populated as soon as samples arrive.
	SnapshotVersion uint64 `json:"snapshotVersion"`
	FittedAtUnixMS  int64  `json:"fittedAtUnixMs,omitempty"`
	// Interp is the interpolation method of the published curves.
	Interp string `json:"interp,omitempty"`
	// Model and Samples are directly pasteable into a /v1/solve body
	// (algorithm mvasd, the same interp) to reproduce the live predictions.
	Model   *queueing.Model `json:"model,omitempty"`
	Samples *SamplesFile    `json:"samples,omitempty"`
	// Stations carries the fitted curves with their residuals.
	Stations []DemandCurveOut `json:"stations,omitempty"`
	// Health is the per-station ingest health; LastFitError the most recent
	// fit failure ("" when healthy).
	Health       []StationHealthOut `json:"health,omitempty"`
	LastFitError string             `json:"lastFitError,omitempty"`
	// Fits counts successful fits; Triggers the re-estimations by reason.
	Fits     uint64            `json:"fits"`
	Triggers map[string]uint64 `json:"triggers,omitempty"`
}

// WhatIfResponse is the GET /v1/whatif reply: the answer to "which N
// saturates this station (at the given per-server utilization target), and
// what does the system look like there", solved by MVASD over the live
// fitted demand curves — optionally with replica-count overrides applied
// ("what if I add two replicas to tier j").
type WhatIfResponse struct {
	// SnapshotVersion identifies the demand-curve generation answering this.
	SnapshotVersion uint64 `json:"snapshotVersion"`
	// Station is the queried tier; UtilizationTarget the per-server
	// saturation threshold.
	Station           string  `json:"station"`
	UtilizationTarget float64 `json:"utilizationTarget"`
	// Servers echoes any replica overrides applied to the model.
	Servers map[string]int `json:"servers,omitempty"`
	// MaxN is the search ceiling the solve ran to.
	MaxN int `json:"maxN"`
	// Saturated reports the target was reached; SaturationN is the smallest
	// population whose per-server utilization meets it (0 when not reached).
	Saturated   bool `json:"saturated"`
	SaturationN int  `json:"saturationN,omitempty"`
	// N is SaturationN when saturated, MaxN otherwise; X/Cycle/Utilization
	// describe the system at that population (Utilization is the queried
	// station's per-server busy fraction).
	N           int     `json:"n"`
	X           float64 `json:"x"`
	Cycle       float64 `json:"cycle"`
	Utilization float64 `json:"utilization"`
	// Bottleneck names the station with the highest utilization at N.
	Bottleneck string `json:"bottleneck,omitempty"`
	// Cached reports whether the solve came from the cache.
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsedMs"`
}
