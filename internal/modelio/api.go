package modelio

// This file holds the HTTP API schemas for the solverd service (cmd/solverd,
// internal/server): request bodies reuse the package's model and samples
// formats, responses carry compact trajectories rather than the full
// per-station matrices of core.Result. Keeping the wire types here — next to
// the file formats the CLIs already exchange — means a saved model.json is a
// valid "model" field verbatim.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/planning"
	"repro/internal/queueing"
)

// Algorithm names accepted by SolveRequest (matching the mvasd CLI).
const (
	AlgoExact             = "exact"       // Algorithm 1, single-server exact MVA
	AlgoSchweitzer        = "schweitzer"  // Bard–Schweitzer approximate MVA
	AlgoMultiServer       = "multiserver" // Algorithm 2, exact multi-server MVA
	AlgoMVASD             = "mvasd"       // Algorithm 3, varying demands (needs samples)
	AlgoMVASDSingleServer = "mvasd-1s"    // Fig.-8 single-server baseline (needs samples)
)

// Algorithms lists every accepted algorithm name.
func Algorithms() []string {
	return []string{AlgoExact, AlgoSchweitzer, AlgoMultiServer, AlgoMVASD, AlgoMVASDSingleServer}
}

// Demand-sample abscissa interpretations for SolveRequest.DemandAxis.
const (
	// AxisConcurrency reads Samples.At as concurrency levels: MVASD
	// evaluates the spline at each population step directly (Algorithm 3).
	AxisConcurrency = "concurrency"
	// AxisThroughput reads Samples.At as throughput levels: every step
	// runs the demand/throughput fixed point (the paper's Fig.-20 mode).
	AxisThroughput = "throughput"
)

// SolveRequest is the POST /v1/solve body.
type SolveRequest struct {
	// Algorithm selects the solver (default multiserver).
	Algorithm string `json:"algorithm,omitempty"`
	// Model is the closed network, in the package's model format.
	Model *queueing.Model `json:"model"`
	// Samples supplies the measured demand arrays for mvasd / mvasd-1s.
	Samples *SamplesFile `json:"samples,omitempty"`
	// MaxN is the largest population to solve.
	MaxN int `json:"maxN"`
	// Interp is the sample interpolation method (default cubic-not-a-knot).
	Interp string `json:"interp,omitempty"`
	// DemandAxis says what Samples.At indexes: "concurrency" (default) or
	// "throughput". The latter is mvasd-only — each population step then
	// resolves a demand/throughput fixed point.
	DemandAxis string `json:"demandAxis,omitempty"`
	// Every decimates the returned trajectory to every k-th population
	// (the final population is always kept); 0 returns every row.
	Every int `json:"every,omitempty"`
	// Decimate bounds the solve's memory for deep populations: the solver
	// stores only every k-th population (plus the final one, each with its
	// recursion checkpoint) while still advancing through every population.
	// Stored rows are bit-identical to a dense solve; skipped rows are
	// recoverable from the stored checkpoints. 0 or 1 solves densely.
	// Unlike Every — which only thins the response — Decimate changes which
	// rows exist server-side, so it is part of the cache key.
	Decimate int `json:"decimate,omitempty"`
	// TimeoutMS caps this request's solve time; 0 uses the server default.
	// It is not part of the cache key: it bounds work, not the answer.
	TimeoutMS int `json:"timeoutMs,omitempty"`
}

// Normalize fills defaults and validates the request.
func (r *SolveRequest) Normalize() error {
	if r.Algorithm == "" {
		r.Algorithm = AlgoMultiServer
	}
	known := false
	for _, a := range Algorithms() {
		if r.Algorithm == a {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("modelio: unknown algorithm %q (want one of %v)", r.Algorithm, Algorithms())
	}
	if r.Model == nil {
		return fmt.Errorf("modelio: solve request has no model")
	}
	if err := r.Model.Validate(); err != nil {
		return err
	}
	if r.MaxN < 1 {
		return fmt.Errorf("modelio: maxN %d (want >= 1)", r.MaxN)
	}
	if r.Interp == "" {
		r.Interp = string(interp.CubicNotAKnot)
	}
	if r.NeedsSamples() {
		if r.Samples == nil {
			return fmt.Errorf("modelio: algorithm %q requires samples", r.Algorithm)
		}
		if err := r.Samples.Validate(); err != nil {
			return err
		}
		// Fail alignment problems at validation time, not solve time.
		if _, err := r.Samples.ToDemandSamples(r.Model); err != nil {
			return err
		}
		switch r.DemandAxis {
		case "":
			r.DemandAxis = AxisConcurrency
		case AxisConcurrency:
		case AxisThroughput:
			// mvasd-1s evaluates demands without a throughput estimate, so
			// throughput-indexed samples would silently read the curve at 0.
			if r.Algorithm != AlgoMVASD {
				return fmt.Errorf("modelio: demandAxis %q requires algorithm %q", AxisThroughput, AlgoMVASD)
			}
		default:
			return fmt.Errorf("modelio: unknown demandAxis %q (want %q or %q)",
				r.DemandAxis, AxisConcurrency, AxisThroughput)
		}
	} else if r.DemandAxis != "" {
		return fmt.Errorf("modelio: demandAxis is only meaningful with sample-driven algorithms")
	}
	if r.Every < 0 || r.TimeoutMS < 0 || r.Decimate < 0 {
		return fmt.Errorf("modelio: negative every/timeoutMs/decimate")
	}
	if r.Decimate == 1 {
		r.Decimate = 0 // canonical dense spelling, so cache keys agree
	}
	return nil
}

// NeedsSamples reports whether the algorithm consumes demand samples.
func (r *SolveRequest) NeedsSamples() bool {
	return r.Algorithm == AlgoMVASD || r.Algorithm == AlgoMVASDSingleServer
}

// DemandModel builds the interpolated demand model for mvasd / mvasd-1s.
func (r *SolveRequest) DemandModel() (core.DemandModel, error) {
	samples, err := r.Samples.ToDemandSamples(r.Model)
	if err != nil {
		return nil, err
	}
	if r.DemandAxis == AxisThroughput {
		return core.NewThroughputDemands(interp.Method(r.Interp), samples, interp.Options{})
	}
	return core.NewCurveDemands(interp.Method(r.Interp), samples, interp.Options{})
}

// cacheableSolve is the canonical key material: everything that changes the
// solver's *recursion* or its stored geometry, and nothing that doesn't.
// MaxN is deliberately excluded — the population recursion at n depends only
// on n' < n, so one cached trajectory answers every request for the same
// model at any maxN (serving smaller maxN from the prefix, extending in
// place for larger). Timeout and the response-side Every bound work and
// shape output, not the answer. Decimate IS keyed (when > 1): a decimated
// entry stores different rows than a dense one, so letting the two share an
// entry would poison dense prefix/extend hits with sparse trajectories.
type cacheableSolve struct {
	Algorithm string
	Model     *queueing.Model
	Samples   *SamplesFile `json:",omitempty"`
	Interp    string
	// DemandAxis is keyed only when it changes the recursion (throughput
	// mode), so pre-existing concurrency-mode keys are unchanged.
	DemandAxis string `json:",omitempty"`
	// Decimate is keyed only when it changes the stored rows (> 1), so
	// pre-existing dense keys are unchanged.
	Decimate int `json:",omitempty"`
}

// CacheKey returns a canonical hash of (algorithm, model, samples, interp) —
// the solve-cache key. Requests that differ only in maxN share a key by
// design (see cacheableSolve). Call Normalize first so defaulted and
// explicitly spelled-out requests hash identically.
func (r *SolveRequest) CacheKey() (string, error) {
	b, err := r.keyBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// keyBytes is the canonical serialization behind CacheKey.
func (r *SolveRequest) keyBytes() ([]byte, error) {
	c := cacheableSolve{
		Algorithm: r.Algorithm,
		Model:     r.Model,
		Interp:    r.Interp,
	}
	if r.Decimate > 1 {
		c.Decimate = r.Decimate
	}
	if r.NeedsSamples() {
		c.Samples = r.Samples
		if r.DemandAxis == AxisThroughput {
			c.DemandAxis = r.DemandAxis
		}
	}
	// encoding/json writes struct fields in declaration order and map-free
	// types deterministically, so the encoding is canonical.
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("modelio: cache key: %w", err)
	}
	return b, nil
}

// Trajectory is the compact solve output: the X(n)/R(n) curves plus the
// final-population station metrics, dropping the per-station matrices of
// core.Result that dominate its size.
type Trajectory struct {
	Algorithm    string    `json:"algorithm"`
	ModelName    string    `json:"modelName"`
	ThinkTime    float64   `json:"thinkTime"`
	StationNames []string  `json:"stationNames"`
	N            []int     `json:"n"`
	X            []float64 `json:"x"`
	R            []float64 `json:"r"`
	Cycle        []float64 `json:"cycle"`
	// FinalUtil and FinalQueueLen are the per-station rows at the largest
	// solved population (not affected by decimation).
	FinalUtil     []float64 `json:"finalUtil"`
	FinalQueueLen []float64 `json:"finalQueueLen"`
	// MaxX is the trajectory's peak throughput, attained at population MaxXAt.
	MaxX   float64 `json:"maxX"`
	MaxXAt int     `json:"maxXAt"`
}

// NewTrajectory extracts a (possibly decimated) trajectory from a Result.
// A Result that stores no rows (a decimated prefix view below the first
// stored population) yields an empty trajectory; the caller appends the
// populations it recovers via AppendRecovered.
func NewTrajectory(res *core.Result, every int) *Trajectory {
	t := &Trajectory{
		Algorithm:    res.Algorithm,
		ModelName:    res.ModelName,
		ThinkTime:    res.ThinkTime,
		StationNames: append([]string(nil), res.StationNames...),
	}
	if res.Len() == 0 {
		return t
	}
	t.FinalUtil = res.FinalUtilization()
	t.FinalQueueLen = append([]float64(nil), res.QueueLen[len(res.QueueLen)-1]...)
	t.MaxX, t.MaxXAt = res.MaxThroughput()
	if every < 1 {
		every = 1
	}
	last := len(res.N) - 1
	for i := 0; i < len(res.N); i += every {
		t.N = append(t.N, res.N[i])
		t.X = append(t.X, res.X[i])
		t.R = append(t.R, res.R[i])
		t.Cycle = append(t.Cycle, res.Cycle[i])
	}
	if (last % every) != 0 { // always keep the final population
		t.N = append(t.N, res.N[last])
		t.X = append(t.X, res.X[last])
		t.R = append(t.R, res.R[last])
		t.Cycle = append(t.Cycle, res.Cycle[last])
	}
	return t
}

// AppendRecovered appends one re-derived population row (Result.Recover of a
// decimated trajectory) and promotes it to the trajectory's final row: the
// solve engine uses it when the requested population was skipped by
// decimation, so Final* and MaxX reflect the population the client asked
// for, not the last stored one.
func (t *Trajectory) AppendRecovered(row core.RecoveredRow) {
	t.N = append(t.N, row.N)
	t.X = append(t.X, row.X)
	t.R = append(t.R, row.R)
	t.Cycle = append(t.Cycle, row.Cycle)
	t.FinalUtil = append([]float64(nil), row.Util...)
	t.FinalQueueLen = append([]float64(nil), row.QueueLen...)
	if row.X > t.MaxX {
		t.MaxX, t.MaxXAt = row.X, row.N
	}
}

// SolveResponse is the POST /v1/solve reply.
type SolveResponse struct {
	// Cached reports whether the result came from the solve cache.
	Cached bool `json:"cached"`
	// ElapsedMS is the server-side handling time in milliseconds.
	ElapsedMS  float64     `json:"elapsedMs"`
	Trajectory *Trajectory `json:"trajectory"`
}

// SweepRequest is the POST /v1/sweep body: one base solve fanned out over a
// parameter grid. MaxN is derived from Populations and may be omitted.
type SweepRequest struct {
	SolveRequest
	// Populations are the user counts reported per grid point (the solve
	// runs to the largest).
	Populations []int `json:"populations"`
	// ThinkTimes optionally overrides the model's think time, one grid
	// axis value each; empty keeps the model's.
	ThinkTimes []float64 `json:"thinkTimes,omitempty"`
	// Servers optionally sweeps named stations' server counts; every
	// combination across stations is a grid point.
	Servers map[string][]int `json:"servers,omitempty"`
}

// GridPoint is one parameter combination of a sweep.
type GridPoint struct {
	ThinkTime float64        `json:"thinkTime"`
	Servers   map[string]int `json:"servers,omitempty"`
}

// Normalize fills defaults and validates the sweep.
func (r *SweepRequest) Normalize() error {
	if len(r.Populations) == 0 {
		return fmt.Errorf("modelio: sweep request has no populations")
	}
	maxN := 0
	for _, n := range r.Populations {
		if n < 1 {
			return fmt.Errorf("modelio: sweep population %d (want >= 1)", n)
		}
		if n > maxN {
			maxN = n
		}
	}
	r.MaxN = maxN
	if r.Model == nil {
		return fmt.Errorf("modelio: sweep request has no model")
	}
	for name, counts := range r.Servers {
		if r.Model.StationIndex(name) < 0 {
			return fmt.Errorf("modelio: sweep servers: no station %q", name)
		}
		if len(counts) == 0 {
			return fmt.Errorf("modelio: sweep servers: empty axis for %q", name)
		}
		for _, c := range counts {
			if c < 1 {
				return fmt.Errorf("modelio: sweep servers: station %q count %d", name, c)
			}
		}
	}
	for _, z := range r.ThinkTimes {
		if z < 0 {
			return fmt.Errorf("modelio: sweep think time %g", z)
		}
	}
	return r.SolveRequest.Normalize()
}

// Expand enumerates the grid (cartesian product of think times and server
// axes) in a deterministic order, refusing grids larger than limit.
func (r *SweepRequest) Expand(limit int) ([]GridPoint, error) {
	thinks := r.ThinkTimes
	if len(thinks) == 0 {
		thinks = []float64{r.Model.ThinkTime}
	}
	// Deterministic station order for the server axes.
	names := make([]string, 0, len(r.Servers))
	for name := range r.Servers {
		names = append(names, name)
	}
	sort.Strings(names)
	points := []GridPoint{{}}
	for _, name := range names {
		var next []GridPoint
		for _, p := range points {
			for _, c := range r.Servers[name] {
				servers := make(map[string]int, len(p.Servers)+1)
				for k, v := range p.Servers {
					servers[k] = v
				}
				servers[name] = c
				next = append(next, GridPoint{Servers: servers})
			}
		}
		points = next
		if limit > 0 && len(points)*len(thinks) > limit {
			return nil, fmt.Errorf("modelio: sweep grid exceeds %d points", limit)
		}
	}
	var out []GridPoint
	for _, z := range thinks {
		for _, p := range points {
			out = append(out, GridPoint{ThinkTime: z, Servers: p.Servers})
		}
	}
	if limit > 0 && len(out) > limit {
		return nil, fmt.Errorf("modelio: sweep grid exceeds %d points", limit)
	}
	return out, nil
}

// PointRequest derives the grid point's solve request: the base request with
// the model's think time and server counts overridden.
func (r *SweepRequest) PointRequest(p GridPoint) *SolveRequest {
	m := *r.Model
	m.Stations = append([]queueing.Station(nil), r.Model.Stations...)
	m.ThinkTime = p.ThinkTime
	for name, c := range p.Servers {
		m.Stations[m.StationIndex(name)].Servers = c
	}
	req := r.SolveRequest
	req.Model = &m
	return &req
}

// SweepGroup is one solve's worth of a planned sweep: the expanded grid
// points (by index) that resolve to the same model. Populations are not a
// grid axis — every member is answered from one trajectory solved to the
// sweep's MaxN — so points that differ only in population (or in a server
// override equal to the model's own count) collapse into one group.
type SweepGroup struct {
	// Point is the representative grid point (the first member in Expand
	// order); PointRequest(Point) is the group's solve.
	Point GridPoint
	// Members are indices into the expanded grid, in Expand order.
	Members []int
}

// PlanSweep groups the expanded grid points of r by resolved model identity:
// think time plus the fully resolved per-station server counts. Groups are
// returned in first-appearance (Expand) order.
func (r *SweepRequest) PlanSweep(points []GridPoint) []SweepGroup {
	index := make(map[string]int, len(points))
	var groups []SweepGroup
	var sig []byte
	for i, p := range points {
		sig = r.appendPointSignature(sig[:0], p)
		g, ok := index[string(sig)]
		if !ok {
			g = len(groups)
			index[string(sig)] = g
			groups = append(groups, SweepGroup{Point: p})
		}
		groups[g].Members = append(groups[g].Members, i)
	}
	return groups
}

// appendPointSignature appends the resolved identity of a grid point: the
// think time's bit pattern and every station's effective server count. Two
// points with equal signatures yield identical PointRequest models.
func (r *SweepRequest) appendPointSignature(sig []byte, p GridPoint) []byte {
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], math.Float64bits(p.ThinkTime))
	sig = append(sig, u[:]...)
	for _, st := range r.Model.Stations {
		c := st.Servers
		if o, ok := p.Servers[st.Name]; ok {
			c = o
		}
		binary.BigEndian.PutUint64(u[:], uint64(c))
		sig = append(sig, u[:]...)
	}
	return sig
}

// SweepKeyBase caches the expensive part of a sweep's cache keys: the hash
// of (algorithm, interp, samples, base model) is computed once per request,
// and each group's key mixes in only its resolved point signature — instead
// of re-serializing the shared model (and sample arrays) for every grid
// point.
type SweepKeyBase struct {
	req  *SweepRequest
	base [sha256.Size]byte
}

// KeyBase canonicalizes the sweep's shared key material. Call after
// Normalize.
func (r *SweepRequest) KeyBase() (*SweepKeyBase, error) {
	b, err := r.SolveRequest.keyBytes()
	if err != nil {
		return nil, err
	}
	return &SweepKeyBase{req: r, base: sha256.Sum256(b)}, nil
}

// GroupKey returns the cache key of one planned group's solve. Keys are
// domain-separated from plain CacheKey hashes: a sweep group and a /v1/solve
// request for the same resolved model cache independently (the delta-hash
// construction trades that overlap for never re-serializing the base model).
func (k *SweepKeyBase) GroupKey(p GridPoint) string {
	h := sha256.New()
	h.Write([]byte("sweep-point\x00"))
	h.Write(k.base[:])
	h.Write(k.req.appendPointSignature(nil, p))
	return hex.EncodeToString(h.Sum(nil))
}

// SweepRow is one reported population of one grid point.
type SweepRow struct {
	N     int     `json:"n"`
	X     float64 `json:"x"`
	R     float64 `json:"r"`
	Cycle float64 `json:"cycle"`
	// BottleneckUtil is the highest per-server station utilization.
	BottleneckUtil float64 `json:"bottleneckUtil"`
}

// SweepPointResult is one grid point's outcome.
type SweepPointResult struct {
	Point GridPoint `json:"point"`
	// Bottleneck names the station with the highest final utilization.
	Bottleneck string     `json:"bottleneck,omitempty"`
	Rows       []SweepRow `json:"rows,omitempty"`
	Cached     bool       `json:"cached"`
	// Error is set when this point's solve failed; other points still solve.
	Error string `json:"error,omitempty"`
}

// SweepResponse is the POST /v1/sweep reply. Points follow Expand's order.
type SweepResponse struct {
	GridSize  int                `json:"gridSize"`
	Points    []SweepPointResult `json:"points"`
	ElapsedMS float64            `json:"elapsedMs"`
}

// SLASpec is the wire form of planning.SLA.
type SLASpec struct {
	MaxResponseTime float64            `json:"maxResponseTime,omitempty"`
	MaxCycleTime    float64            `json:"maxCycleTime,omitempty"`
	MinThroughput   float64            `json:"minThroughput,omitempty"`
	MaxUtilization  float64            `json:"maxUtilization,omitempty"`
	StationCaps     map[string]float64 `json:"stationCaps,omitempty"`
}

// ToSLA converts to the planning package's type.
func (s SLASpec) ToSLA() planning.SLA {
	return planning.SLA{
		MaxResponseTime: s.MaxResponseTime,
		MaxCycleTime:    s.MaxCycleTime,
		MinThroughput:   s.MinThroughput,
		MaxUtilization:  s.MaxUtilization,
		StationCaps:     s.StationCaps,
	}
}

// PlanRequest is the POST /v1/plan body: the planning package's SLA queries.
type PlanRequest struct {
	Model *queueing.Model `json:"model"`
	// Samples optionally supplies varying demands (MVASD); nil plans with
	// the model's constant demands.
	Samples *SamplesFile `json:"samples,omitempty"`
	Interp  string       `json:"interp,omitempty"`
	// Users is the population the SLA is checked at.
	Users int `json:"users"`
	// Limit, when > 0, additionally scans 1..Limit for the largest
	// SLA-compliant population.
	Limit     int     `json:"limit,omitempty"`
	SLA       SLASpec `json:"sla"`
	TimeoutMS int     `json:"timeoutMs,omitempty"`
}

// Normalize fills defaults and validates the plan request.
func (r *PlanRequest) Normalize() error {
	if r.Model == nil {
		return fmt.Errorf("modelio: plan request has no model")
	}
	if err := r.Model.Validate(); err != nil {
		return err
	}
	if r.Users < 1 {
		return fmt.Errorf("modelio: plan users %d (want >= 1)", r.Users)
	}
	if r.Limit < 0 || r.TimeoutMS < 0 {
		return fmt.Errorf("modelio: negative limit/timeoutMs")
	}
	if r.Interp == "" {
		r.Interp = string(interp.CubicNotAKnot)
	}
	if r.Samples != nil {
		if err := r.Samples.Validate(); err != nil {
			return err
		}
		if _, err := r.Samples.ToDemandSamples(r.Model); err != nil {
			return err
		}
	}
	return nil
}

// Plan builds the planning.Plan (with an interpolated demand model when
// samples are present).
func (r *PlanRequest) Plan() (*planning.Plan, error) {
	p := &planning.Plan{Model: r.Model}
	if r.Samples != nil {
		samples, err := r.Samples.ToDemandSamples(r.Model)
		if err != nil {
			return nil, err
		}
		dm, err := core.NewCurveDemands(interp.Method(r.Interp), samples, interp.Options{})
		if err != nil {
			return nil, err
		}
		p.Demands = dm
	}
	return p, nil
}

// ViolationOut is the wire form of planning.Violation.
type ViolationOut struct {
	Clause string  `json:"clause"`
	Have   float64 `json:"have"`
	Want   float64 `json:"want"`
}

// PlanResponse is the POST /v1/plan reply.
type PlanResponse struct {
	Users      int            `json:"users"`
	Compliant  bool           `json:"compliant"`
	Violations []ViolationOut `json:"violations,omitempty"`
	// MaxUsers is the largest compliant population in [1, limit]; present
	// only when the request set a limit.
	MaxUsers  *int    `json:"maxUsers,omitempty"`
	ElapsedMS float64 `json:"elapsedMs"`
}
