package modelio

// This file holds the wire form of a solved trajectory plus its solver
// checkpoint — the unit of the cluster's peer cache fill (internal/cluster).
// A node that owns a key's trajectory exports it as a TrajectoryState; the
// receiving node restores a fresh core.Solver from it and extends, producing
// results bit-identical to solving locally from scratch. Bit-identity
// survives the JSON hop because encoding/json renders float64 in the
// shortest form that parses back to the same bits.

import (
	"fmt"

	"repro/internal/core"
)

// CheckpointState is the wire form of core.Checkpoint (minus Algorithm and
// N, which TrajectoryState carries for the trajectory as a whole).
type CheckpointState struct {
	// Queue is the per-station mean queue-length vector at the checkpoint
	// population (empty for self-contained recursions like Schweitzer).
	Queue []float64 `json:"queue,omitempty"`
	// Marginal holds the per-station marginal queue-size probabilities of
	// the multi-server algorithms.
	Marginal [][]float64 `json:"marginal,omitempty"`
	// X is the checkpoint population's throughput (the warm start of the
	// mvasd-vs-throughput fixed point).
	X float64 `json:"x,omitempty"`
}

// TrajectoryState is the full transportable state of one cached solve: every
// per-population row of the core.Result plus the recursion checkpoint. It is
// deliberately complete (unlike the compact Trajectory of SolveResponse) —
// the receiver needs every matrix to serve sweeps and to extend.
type TrajectoryState struct {
	Algorithm    string    `json:"algorithm"`
	ModelName    string    `json:"modelName,omitempty"`
	ThinkTime    float64   `json:"thinkTime"`
	StationNames []string  `json:"stationNames"`
	X            []float64 `json:"x"`
	R            []float64 `json:"r"`
	Cycle        []float64 `json:"cycle"`
	// Row-major per-population, per-station matrices ([n][k]).
	QueueLen  [][]float64 `json:"queueLen"`
	Util      [][]float64 `json:"util"`
	Residence [][]float64 `json:"residence"`
	Demands   [][]float64 `json:"demands"`

	Checkpoint CheckpointState `json:"checkpoint"`
}

// NewTrajectoryState packages a solved prefix and its checkpoint for the
// wire. res must be the prefix at cp.N (core.Solver.Result().Prefix(cp.N)).
func NewTrajectoryState(res *core.Result, cp *core.Checkpoint) (*TrajectoryState, error) {
	if res == nil || cp == nil {
		return nil, fmt.Errorf("modelio: trajectory state needs a result and a checkpoint")
	}
	if res.Len() != cp.N {
		return nil, fmt.Errorf("modelio: trajectory has %d populations, checkpoint is at %d", res.Len(), cp.N)
	}
	if res.Algorithm != cp.Algorithm {
		return nil, fmt.Errorf("modelio: trajectory algorithm %q, checkpoint %q", res.Algorithm, cp.Algorithm)
	}
	return &TrajectoryState{
		Algorithm:    res.Algorithm,
		ModelName:    res.ModelName,
		ThinkTime:    res.ThinkTime,
		StationNames: res.StationNames,
		X:            res.X,
		R:            res.R,
		Cycle:        res.Cycle,
		QueueLen:     res.QueueLen,
		Util:         res.Util,
		Residence:    res.Residence,
		Demands:      res.Demands,
		Checkpoint: CheckpointState{
			Queue:    cp.Queue,
			Marginal: cp.Marginal,
			X:        cp.X,
		},
	}, nil
}

// Restore validates the state and rebuilds the (trajectory, checkpoint) pair
// ready for core.Solver.Restore. The returned Result owns fresh backing.
func (t *TrajectoryState) Restore() (*core.Result, *core.Checkpoint, error) {
	if t.Algorithm == "" {
		return nil, nil, fmt.Errorf("modelio: trajectory state names no algorithm")
	}
	res, err := core.RestoreResult(t.Algorithm, t.ModelName, t.ThinkTime, t.StationNames,
		t.X, t.R, t.Cycle, t.QueueLen, t.Util, t.Residence, t.Demands)
	if err != nil {
		return nil, nil, err
	}
	cp := &core.Checkpoint{
		Algorithm: t.Algorithm,
		N:         res.Len(),
		Queue:     t.Checkpoint.Queue,
		Marginal:  t.Checkpoint.Marginal,
		X:         t.Checkpoint.X,
	}
	return res, cp, nil
}

// ExportRequest is the POST /cluster/v1/export body: a peer asking for the
// cached trajectory state behind one solve-cache key.
type ExportRequest struct {
	// Key is the cache key (SolveRequest.CacheKey / SweepKeyBase.GroupKey).
	Key string `json:"key"`
}

// Validate checks the export request.
func (r *ExportRequest) Validate() error {
	if r.Key == "" {
		return fmt.Errorf("modelio: export request has no key")
	}
	if len(r.Key) > 128 {
		return fmt.Errorf("modelio: export request key too long")
	}
	return nil
}
