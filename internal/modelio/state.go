package modelio

// This file holds the wire form of a solved trajectory plus its solver
// checkpoint — the unit of the cluster's peer cache fill (internal/cluster).
// A node that owns a key's trajectory exports it as a TrajectoryState; the
// receiving node restores a fresh core.Solver from it and extends, producing
// results bit-identical to solving locally from scratch. Bit-identity
// survives the JSON hop because encoding/json renders float64 in the
// shortest form that parses back to the same bits.

import (
	"fmt"

	"repro/internal/core"
)

// CheckpointState is the wire form of core.Checkpoint (minus Algorithm and
// N, which the enclosing message carries — TrajectoryState implies N from
// the row count, deep-solve chunks carry FromN/ToN explicitly).
type CheckpointState struct {
	// Queue is the per-station mean queue-length vector at the checkpoint
	// population (for Schweitzer, the converged fixed point that warm-starts
	// the next population).
	Queue []float64 `json:"queue,omitempty"`
	// Marginal holds the per-station marginal queue-size probabilities of
	// the multi-server algorithms.
	Marginal [][]float64 `json:"marginal,omitempty"`
	// X is the checkpoint population's throughput (the warm start of the
	// mvasd-vs-throughput fixed point).
	X float64 `json:"x,omitempty"`
}

// NewCheckpointState strips a core checkpoint to its wire form.
func NewCheckpointState(cp *core.Checkpoint) CheckpointState {
	return CheckpointState{Queue: cp.Queue, Marginal: cp.Marginal, X: cp.X}
}

// Checkpoint rebuilds the core checkpoint for the named algorithm at
// population n. Bit-identity survives the JSON round trip (see the package
// comment above), so resuming from a shipped checkpoint continues the
// recursion exactly.
func (c *CheckpointState) Checkpoint(algorithm string, n int) *core.Checkpoint {
	return &core.Checkpoint{
		Algorithm: algorithm,
		N:         n,
		Queue:     c.Queue,
		Marginal:  c.Marginal,
		X:         c.X,
	}
}

// TrajectoryState is the full transportable state of one cached solve: every
// per-population row of the core.Result plus the recursion checkpoint. It is
// deliberately complete (unlike the compact Trajectory of SolveResponse) —
// the receiver needs every matrix to serve sweeps and to extend.
type TrajectoryState struct {
	Algorithm    string    `json:"algorithm"`
	ModelName    string    `json:"modelName,omitempty"`
	ThinkTime    float64   `json:"thinkTime"`
	StationNames []string  `json:"stationNames"`
	X            []float64 `json:"x"`
	R            []float64 `json:"r"`
	Cycle        []float64 `json:"cycle"`
	// Row-major per-population, per-station matrices ([n][k]).
	QueueLen  [][]float64 `json:"queueLen"`
	Util      [][]float64 `json:"util"`
	Residence [][]float64 `json:"residence"`
	Demands   [][]float64 `json:"demands"`

	Checkpoint CheckpointState `json:"checkpoint"`
}

// NewTrajectoryState packages a solved prefix and its checkpoint for the
// wire. res must be the prefix at cp.N (core.Solver.Result().Prefix(cp.N)).
func NewTrajectoryState(res *core.Result, cp *core.Checkpoint) (*TrajectoryState, error) {
	if res == nil || cp == nil {
		return nil, fmt.Errorf("modelio: trajectory state needs a result and a checkpoint")
	}
	if res.Len() != cp.N {
		return nil, fmt.Errorf("modelio: trajectory has %d populations, checkpoint is at %d", res.Len(), cp.N)
	}
	if res.Algorithm != cp.Algorithm {
		return nil, fmt.Errorf("modelio: trajectory algorithm %q, checkpoint %q", res.Algorithm, cp.Algorithm)
	}
	return &TrajectoryState{
		Algorithm:    res.Algorithm,
		ModelName:    res.ModelName,
		ThinkTime:    res.ThinkTime,
		StationNames: res.StationNames,
		X:            res.X,
		R:            res.R,
		Cycle:        res.Cycle,
		QueueLen:     res.QueueLen,
		Util:         res.Util,
		Residence:    res.Residence,
		Demands:      res.Demands,
		Checkpoint:   NewCheckpointState(cp),
	}, nil
}

// Restore validates the state and rebuilds the (trajectory, checkpoint) pair
// ready for core.Solver.Restore. The returned Result owns fresh backing.
func (t *TrajectoryState) Restore() (*core.Result, *core.Checkpoint, error) {
	if t.Algorithm == "" {
		return nil, nil, fmt.Errorf("modelio: trajectory state names no algorithm")
	}
	res, err := core.RestoreResult(t.Algorithm, t.ModelName, t.ThinkTime, t.StationNames,
		t.X, t.R, t.Cycle, t.QueueLen, t.Util, t.Residence, t.Demands)
	if err != nil {
		return nil, nil, err
	}
	return res, t.Checkpoint.Checkpoint(t.Algorithm, res.Len()), nil
}

// DeepChunkRequest is the POST /cluster/v1/deep body: one population range
// of a distributed deep solve. The coordinator splits [1, maxN] into
// stride-aligned chunks and pipelines them across members — each member
// seeds a fresh solver from the previous chunk's shipped checkpoint, solves
// (FromN, ToN] without ever holding the prefix, and ships its own final
// checkpoint on. Because checkpoints capture the full recursion state and
// survive JSON bit-exactly, the assembled rows are bit-identical to a
// single-node solve.
type DeepChunkRequest struct {
	// Req is the normalized solve request (Decimate governs which rows the
	// chunk stores; MaxN is ignored in favor of ToN).
	Req SolveRequest `json:"req"`
	// FromN is the population the checkpoint belongs to; the chunk solves
	// FromN+1..ToN. 0 means a cold start (no checkpoint).
	FromN int `json:"fromN"`
	// ToN is the chunk's last population, inclusive.
	ToN int `json:"toN"`
	// Checkpoint is the recursion state at FromN; nil iff FromN == 0.
	Checkpoint *CheckpointState `json:"checkpoint,omitempty"`
}

// Validate checks the chunk geometry (Req must already be normalized by the
// coordinator; members re-normalize defensively).
func (r *DeepChunkRequest) Validate() error {
	if err := r.Req.Normalize(); err != nil {
		return err
	}
	if r.FromN < 0 || r.ToN <= r.FromN {
		return fmt.Errorf("modelio: deep chunk range (%d, %d]", r.FromN, r.ToN)
	}
	if (r.Checkpoint == nil) != (r.FromN == 0) {
		return fmt.Errorf("modelio: deep chunk at fromN %d needs a checkpoint iff fromN > 0", r.FromN)
	}
	return nil
}

// DeepRow is one stored population of a deep solve: the full per-station
// row, so distributed results can be asserted bit-identical to local ones.
type DeepRow struct {
	N         int       `json:"n"`
	X         float64   `json:"x"`
	R         float64   `json:"r"`
	Cycle     float64   `json:"cycle"`
	QueueLen  []float64 `json:"queueLen"`
	Util      []float64 `json:"util"`
	Residence []float64 `json:"residence"`
	Demands   []float64 `json:"demands"`
}

// NewDeepRows flattens a chunk Result's stored rows for the wire.
func NewDeepRows(res *core.Result) []DeepRow {
	rows := make([]DeepRow, res.Len())
	for i := range rows {
		rows[i] = DeepRow{
			N:         res.N[i],
			X:         res.X[i],
			R:         res.R[i],
			Cycle:     res.Cycle[i],
			QueueLen:  res.QueueLen[i],
			Util:      res.Util[i],
			Residence: res.Residence[i],
			Demands:   res.Demands[i],
		}
	}
	return rows
}

// DeepChunkResponse is the member's answer: the chunk's stored rows plus the
// recursion checkpoint at ToN, which the coordinator ships to the next chunk.
type DeepChunkResponse struct {
	// Peer names the member that solved the chunk.
	Peer string `json:"peer"`
	// Rows are the chunk's stored (decimated) populations, ascending.
	Rows []DeepRow `json:"rows"`
	// Checkpoint is the recursion state at ToN.
	Checkpoint CheckpointState `json:"checkpoint"`
}

// DeepHeader is the first NDJSON line of a /v1/solve?deep=1 response.
type DeepHeader struct {
	Algorithm string `json:"algorithm"`
	ModelName string `json:"modelName"`
	MaxN      int    `json:"maxN"`
	// Stride is the effective decimation stride of the streamed rows.
	Stride   int      `json:"stride"`
	Stations []string `json:"stations"`
	// TraceID is the coordinator's trace ID: the handle that stitches the
	// whole deep pipeline (per-chunk spans plus every member's fragments)
	// through GET /cluster/v1/trace/{id} and solverctl trace.
	TraceID string `json:"traceId,omitempty"`
}

// DeepTrailer is the last NDJSON line of a /v1/solve?deep=1 response; its
// presence marks a complete stream.
type DeepTrailer struct {
	Done      bool    `json:"done"`
	Rows      int     `json:"rows"`
	Chunks    int     `json:"chunks"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// ExportRequest is the POST /cluster/v1/export body: a peer asking for the
// cached trajectory state behind one solve-cache key.
type ExportRequest struct {
	// Key is the cache key (SolveRequest.CacheKey / SweepKeyBase.GroupKey).
	Key string `json:"key"`
}

// Validate checks the export request.
func (r *ExportRequest) Validate() error {
	if r.Key == "" {
		return fmt.Errorf("modelio: export request has no key")
	}
	if len(r.Key) > 128 {
		return fmt.Errorf("modelio: export request key too long")
	}
	return nil
}
