package modelio

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/queueing"
)

func stateTestModel() *queueing.Model {
	return &queueing.Model{
		Name:      "state-test",
		ThinkTime: 0.75,
		Stations: []queueing.Station{
			{Name: "app/cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.02},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 1, Visits: 2, ServiceTime: 0.01},
		},
	}
}

// TestTrajectoryStateJSONRoundTrip proves the peer-fill wire contract: a
// trajectory + checkpoint survives JSON encoding with every float64
// bit-identical, and a solver restored from the decoded state extends to the
// same bits as the source solver.
func TestTrajectoryStateJSONRoundTrip(t *testing.T) {
	m := stateTestModel()
	src, err := core.NewMultiServerSolver(m, core.MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Release()
	if err := src.Run(200); err != nil {
		t.Fatal(err)
	}
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := src.Result().Prefix(200)
	if err != nil {
		t.Fatal(err)
	}
	state, err := NewTrajectoryState(prefix, cp)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	var decoded TrajectoryState
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	traj, cp2, err := decoded.Restore()
	if err != nil {
		t.Fatal(err)
	}
	for i := range prefix.N {
		if traj.X[i] != prefix.X[i] || traj.R[i] != prefix.R[i] {
			t.Fatalf("n=%d: decoded trajectory differs: X %v vs %v, R %v vs %v",
				i+1, traj.X[i], prefix.X[i], traj.R[i], prefix.R[i])
		}
	}

	dst, err := core.NewMultiServerSolver(m, core.MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Release()
	if err := dst.Restore(traj, cp2); err != nil {
		t.Fatal(err)
	}
	if err := src.Extend(500); err != nil {
		t.Fatal(err)
	}
	if err := dst.Extend(500); err != nil {
		t.Fatal(err)
	}
	a, b := src.Result(), dst.Result()
	for i := range a.N {
		if a.X[i] != b.X[i] || a.R[i] != b.R[i] || a.Cycle[i] != b.Cycle[i] {
			t.Fatalf("n=%d: extended trajectories diverge after wire hop", i+1)
		}
		for k := range a.QueueLen[i] {
			if a.QueueLen[i][k] != b.QueueLen[i][k] || a.Util[i][k] != b.Util[i][k] {
				t.Fatalf("n=%d station %d: per-station metrics diverge after wire hop", i+1, k)
			}
		}
	}
}

func TestTrajectoryStateValidation(t *testing.T) {
	if _, _, err := (&TrajectoryState{}).Restore(); err == nil {
		t.Fatal("empty state restored")
	}
	bad := &TrajectoryState{
		Algorithm:    "exact-mva",
		StationNames: []string{"a"},
		X:            []float64{1, 2},
		R:            []float64{1}, // length mismatch
		Cycle:        []float64{1, 2},
		QueueLen:     [][]float64{{1}, {1}},
		Util:         [][]float64{{1}, {1}},
		Residence:    [][]float64{{1}, {1}},
		Demands:      [][]float64{{1}, {1}},
	}
	if _, _, err := bad.Restore(); err == nil {
		t.Fatal("mismatched row lengths restored")
	}
	if err := (&ExportRequest{}).Validate(); err == nil {
		t.Fatal("empty export request validated")
	}
	if err := (&ExportRequest{Key: "abc"}).Validate(); err != nil {
		t.Fatal(err)
	}
}
