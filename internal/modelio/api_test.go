package modelio

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/queueing"
)

func apiTestModel() *queueing.Model {
	return &queueing.Model{
		Name:      "api-test",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "app/cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.02},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 1, Visits: 2, ServiceTime: 0.01},
		},
	}
}

func apiTestSamples() *SamplesFile {
	return &SamplesFile{Stations: []StationSamples{
		{Name: "app/cpu", At: []float64{1, 100, 200}, Demands: []float64{0.02, 0.018, 0.017}},
		{Name: "db/disk", At: []float64{1, 100, 200}, Demands: []float64{0.02, 0.019, 0.018}},
	}}
}

func TestSolveRequestNormalize(t *testing.T) {
	r := &SolveRequest{Model: apiTestModel(), MaxN: 10}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != AlgoMultiServer {
		t.Errorf("default algorithm = %q", r.Algorithm)
	}
	if r.Interp == "" {
		t.Error("interp not defaulted")
	}

	bad := []SolveRequest{
		{Model: apiTestModel(), MaxN: 10, Algorithm: "simplex"},
		{MaxN: 10},
		{Model: apiTestModel(), MaxN: 0},
		{Model: apiTestModel(), MaxN: 10, Algorithm: AlgoMVASD}, // no samples
		{Model: &queueing.Model{}, MaxN: 10},
	}
	for i := range bad {
		if err := bad[i].Normalize(); err == nil {
			t.Errorf("case %d: want error, got nil", i)
		}
	}

	mvasd := &SolveRequest{Model: apiTestModel(), MaxN: 10, Algorithm: AlgoMVASD, Samples: apiTestSamples()}
	if err := mvasd.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := mvasd.DemandModel(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheKeyCanonical(t *testing.T) {
	a := &SolveRequest{Model: apiTestModel(), MaxN: 50}
	b := &SolveRequest{Model: apiTestModel(), MaxN: 50, Algorithm: AlgoMultiServer,
		TimeoutMS: 5000, Every: 10} // spelled-out defaults + non-semantic fields
	for _, r := range []*SolveRequest{a, b} {
		if err := r.Normalize(); err != nil {
			t.Fatal(err)
		}
	}
	ka, err := a.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("timeout/every/defaulting changed the cache key: %s vs %s", ka, kb)
	}

	// maxN is deliberately NOT key material: the cached trajectory serves
	// any population via its prefix or an in-place extension.
	c := &SolveRequest{Model: apiTestModel(), MaxN: 51}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	kc, _ := c.CacheKey()
	if kc != ka {
		t.Error("maxN changed the cache key; prefix reuse requires maxN-independent keys")
	}

	// Samples participate in the key only for sample-consuming algorithms.
	d := &SolveRequest{Model: apiTestModel(), MaxN: 50, Samples: apiTestSamples()}
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	kd, _ := d.CacheKey()
	if kd != ka {
		t.Error("unused samples changed a multiserver cache key")
	}
}

func TestDemandAxis(t *testing.T) {
	// Defaults to concurrency and builds the spline-vs-population model.
	conc := &SolveRequest{Model: apiTestModel(), MaxN: 10, Algorithm: AlgoMVASD, Samples: apiTestSamples()}
	if err := conc.Normalize(); err != nil {
		t.Fatal(err)
	}
	if conc.DemandAxis != AxisConcurrency {
		t.Errorf("DemandAxis defaulted to %q", conc.DemandAxis)
	}
	dm, err := conc.DemandModel()
	if err != nil {
		t.Fatal(err)
	}
	if dm.DependsOnThroughput() {
		t.Error("concurrency axis produced a throughput-dependent model")
	}

	// Throughput mode builds the fixed-point demand model (Fig.-20 mode)
	// and must not share a cache key with the concurrency solve.
	thr := &SolveRequest{Model: apiTestModel(), MaxN: 10, Algorithm: AlgoMVASD,
		Samples: apiTestSamples(), DemandAxis: AxisThroughput}
	if err := thr.Normalize(); err != nil {
		t.Fatal(err)
	}
	dm, err = thr.DemandModel()
	if err != nil {
		t.Fatal(err)
	}
	if !dm.DependsOnThroughput() {
		t.Error("throughput axis produced a concurrency-indexed model")
	}
	kc, _ := conc.CacheKey()
	kt, _ := thr.CacheKey()
	if kc == kt {
		t.Error("demandAxis did not change the cache key; the recursions differ")
	}

	bad := []SolveRequest{
		{Model: apiTestModel(), MaxN: 10, Algorithm: AlgoMVASD,
			Samples: apiTestSamples(), DemandAxis: "users"},
		// mvasd-1s evaluates without a throughput estimate.
		{Model: apiTestModel(), MaxN: 10, Algorithm: AlgoMVASDSingleServer,
			Samples: apiTestSamples(), DemandAxis: AxisThroughput},
		// Meaningless without samples.
		{Model: apiTestModel(), MaxN: 10, Algorithm: AlgoMultiServer,
			DemandAxis: AxisConcurrency},
	}
	for i := range bad {
		if err := bad[i].Normalize(); err == nil {
			t.Errorf("case %d: bad demandAxis accepted", i)
		}
	}
}

func TestTrajectoryDecimation(t *testing.T) {
	m := apiTestModel()
	res, err := core.ExactMVA(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrajectory(res, 3)
	wantN := []int{1, 4, 7, 10}
	if len(tr.N) != len(wantN) {
		t.Fatalf("decimated N = %v, want %v", tr.N, wantN)
	}
	for i, n := range wantN {
		if tr.N[i] != n {
			t.Fatalf("decimated N = %v, want %v", tr.N, wantN)
		}
		if tr.X[i] != res.X[n-1] || tr.R[i] != res.R[n-1] {
			t.Errorf("row %d not aligned with population %d", i, n)
		}
	}
	if len(tr.FinalUtil) != 2 || len(tr.FinalQueueLen) != 2 {
		t.Errorf("final rows missing: %v %v", tr.FinalUtil, tr.FinalQueueLen)
	}

	// every=4 does not divide 9: the last population must still appear.
	tr = NewTrajectory(res, 4)
	if tr.N[len(tr.N)-1] != 10 {
		t.Errorf("final population dropped: %v", tr.N)
	}
	// every=0 keeps everything.
	if tr = NewTrajectory(res, 0); len(tr.N) != 10 {
		t.Errorf("undecimated trajectory has %d rows", len(tr.N))
	}
}

func TestSweepExpand(t *testing.T) {
	r := &SweepRequest{
		SolveRequest: SolveRequest{Model: apiTestModel()},
		Populations:  []int{50, 100},
		ThinkTimes:   []float64{1, 2},
		Servers:      map[string][]int{"app/cpu": {2, 4, 8}},
	}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.MaxN != 100 {
		t.Errorf("MaxN = %d, want 100", r.MaxN)
	}
	points, err := r.Expand(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("grid size %d, want 6", len(points))
	}
	// Deterministic order: think times outermost, server counts as listed.
	if points[0].ThinkTime != 1 || points[0].Servers["app/cpu"] != 2 ||
		points[5].ThinkTime != 2 || points[5].Servers["app/cpu"] != 8 {
		t.Errorf("unexpected grid order: %+v", points)
	}

	if _, err := r.Expand(5); err == nil {
		t.Error("grid limit not enforced")
	}

	// Point request overrides think time and servers without touching the base.
	req := r.PointRequest(points[5])
	if req.Model.ThinkTime != 2 || req.Model.Stations[0].Servers != 8 {
		t.Errorf("point model not overridden: %+v", req.Model)
	}
	if r.Model.ThinkTime != 1 || r.Model.Stations[0].Servers != 4 {
		t.Errorf("base model mutated: %+v", r.Model)
	}

	bad := &SweepRequest{
		SolveRequest: SolveRequest{Model: apiTestModel()},
		Populations:  []int{50},
		Servers:      map[string][]int{"nope": {1}},
	}
	if err := bad.Normalize(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown sweep station accepted: %v", err)
	}
}

func TestPlanSweepGroupsByResolvedModel(t *testing.T) {
	r := &SweepRequest{
		SolveRequest: SolveRequest{Model: apiTestModel()},
		Populations:  []int{50, 100},
		ThinkTimes:   []float64{1, 2},
		// 4 and the explicit base count resolve identically: the axis has
		// only two *distinct* models per think time.
		Servers: map[string][]int{"app/cpu": {2, 4}},
	}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	points, err := r.Expand(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("grid size %d, want 4", len(points))
	}
	groups := r.PlanSweep(points)
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4 (2 thinks × 2 server counts)", len(groups))
	}
	seen := make(map[int]bool)
	for _, g := range groups {
		for _, i := range g.Members {
			if seen[i] {
				t.Fatalf("point %d appears in two groups", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(points) {
		t.Fatalf("planner covered %d of %d points", len(seen), len(points))
	}

	// An override equal to the base model's server count collapses with the
	// no-override point, and duplicated axis values collapse too.
	dup := &SweepRequest{
		SolveRequest: SolveRequest{Model: apiTestModel()},
		Populations:  []int{10},
		Servers:      map[string][]int{"app/cpu": {4, 4, 8}},
	}
	if err := dup.Normalize(); err != nil {
		t.Fatal(err)
	}
	dupPoints, err := dup.Expand(100)
	if err != nil {
		t.Fatal(err)
	}
	dupGroups := dup.PlanSweep(dupPoints)
	if len(dupGroups) != 2 {
		t.Fatalf("duplicate axis values: %d groups, want 2", len(dupGroups))
	}
	if len(dupGroups[0].Members) != 2 {
		t.Errorf("collapsed group members = %v, want the two identical points", dupGroups[0].Members)
	}
}

func TestSweepKeyBase(t *testing.T) {
	r := &SweepRequest{
		SolveRequest: SolveRequest{Model: apiTestModel()},
		Populations:  []int{50},
		ThinkTimes:   []float64{1, 2},
		Servers:      map[string][]int{"app/cpu": {2, 4}},
	}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	kb, err := r.KeyBase()
	if err != nil {
		t.Fatal(err)
	}
	points, err := r.Expand(100)
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]int)
	for i, p := range points {
		keys[kb.GroupKey(p)] = i
	}
	if len(keys) != len(points) {
		t.Fatalf("distinct points share keys: %d keys for %d points", len(keys), len(points))
	}
	// Identical resolved points produce identical keys across calls.
	if kb.GroupKey(points[0]) != kb.GroupKey(points[0]) {
		t.Error("GroupKey is not deterministic")
	}
	// An override equal to the base count keys the same as no override.
	same := GridPoint{ThinkTime: 1, Servers: map[string]int{"app/cpu": 4}}
	bare := GridPoint{ThinkTime: 1}
	if kb.GroupKey(same) != kb.GroupKey(bare) {
		t.Error("base-equal server override changed the key")
	}
	// A different base model (or algorithm) changes every key.
	other := &SweepRequest{
		SolveRequest: SolveRequest{Model: apiTestModel(), Algorithm: AlgoExact},
		Populations:  []int{50},
	}
	if err := other.Normalize(); err != nil {
		t.Fatal(err)
	}
	okb, err := other.KeyBase()
	if err != nil {
		t.Fatal(err)
	}
	if okb.GroupKey(bare) == kb.GroupKey(bare) {
		t.Error("different algorithm produced the same group key")
	}
}

func TestPlanRequestNormalize(t *testing.T) {
	r := &PlanRequest{Model: apiTestModel(), Users: 100,
		SLA: SLASpec{MaxCycleTime: 2, StationCaps: map[string]float64{"db/disk": 0.9}}}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	p, err := r.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Demands != nil {
		t.Error("constant-demand plan grew a demand model")
	}
	sla := r.SLA.ToSLA()
	if sla.MaxCycleTime != 2 || sla.StationCaps["db/disk"] != 0.9 {
		t.Errorf("SLA conversion lost fields: %+v", sla)
	}

	r.Samples = apiTestSamples()
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if p, err = r.Plan(); err != nil {
		t.Fatal(err)
	}
	if p.Demands == nil {
		t.Error("samples did not produce a demand model")
	}

	if err := (&PlanRequest{Model: apiTestModel(), Users: 0}).Normalize(); err == nil {
		t.Error("users=0 accepted")
	}
}
