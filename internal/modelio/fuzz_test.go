package modelio

import (
	"strings"
	"testing"
)

// FuzzReadModel: arbitrary byte soup must never panic the model reader;
// whatever decodes must also validate.
func FuzzReadModel(f *testing.F) {
	f.Add(`{"name":"x","thinkTime":1,"stations":[{"name":"q","kind":"cpu","servers":1,"visits":1,"serviceTime":0.1}]}`)
	f.Add(`{"name":"","stations":[]}`)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`{"name":"x","stations":[{"name":"q","kind":"cpu","servers":-1,"visits":-1,"serviceTime":-1}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadModel(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ReadModel returned an invalid model: %v", err)
		}
	})
}

// FuzzReadSamples: the samples reader must reject ragged or empty data and
// never panic.
func FuzzReadSamples(f *testing.F) {
	f.Add(`{"stations":[{"name":"a","at":[1,2],"demands":[0.1,0.2]}]}`)
	f.Add(`{"stations":[{"at":[1],"demands":[]}]}`)
	f.Add(`{"stations":[]}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ReadSamples(strings.NewReader(src))
		if err != nil {
			return
		}
		for i, st := range s.Stations {
			if len(st.At) == 0 || len(st.At) != len(st.Demands) {
				t.Fatalf("ReadSamples accepted ragged station %d", i)
			}
		}
	})
}
