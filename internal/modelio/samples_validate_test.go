package modelio

import (
	"strings"
	"testing"
)

func TestReadSamplesRejectsNonIncreasingAt(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{
			name: "decreasing",
			src:  `{"stations":[{"name":"db/disk","at":[1,50,40],"demands":[0.1,0.09,0.08]}]}`,
			want: `station 0 ("db/disk")`,
		},
		{
			name: "duplicate abscissa",
			src:  `{"stations":[{"at":[1,1],"demands":[0.1,0.1]}]}`,
			want: "station 0",
		},
		{
			name: "NaN abscissa",
			src:  `{"stations":[{"name":"app/cpu","at":[1,"NaN"],"demands":[0.1,0.1]}]}`,
			want: "", // json decode error is fine too; must just fail
		},
		{
			name: "second station offends",
			src:  `{"stations":[{"name":"a","at":[1,2],"demands":[0.1,0.1]},{"name":"b","at":[2,2],"demands":[0.1,0.1]}]}`,
			want: `station 1 ("b")`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSamples(strings.NewReader(tc.src))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending station (%q)", err, tc.want)
			}
		})
	}
}

func TestReadSamplesAcceptsIncreasingAt(t *testing.T) {
	src := `{"stations":[{"name":"app/cpu","at":[1,50,100],"demands":[0.02,0.018,0.017]}]}`
	s, err := ReadSamples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
