package modelio

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/queueing"
	"repro/internal/testbed"
)

func TestModelRoundTrip(t *testing.T) {
	m := testbed.VINS().Model(203)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.ThinkTime != m.ThinkTime || len(got.Stations) != len(m.Stations) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range m.Stations {
		if got.Stations[i] != m.Stations[i] {
			t.Fatalf("station %d mismatch: %+v vs %+v", i, got.Stations[i], m.Stations[i])
		}
	}
}

func TestReadModelRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"unknown field":  `{"name":"x","bogus":1,"stations":[{"name":"q","kind":"cpu","servers":1,"visits":1,"serviceTime":0.1}]}`,
		"no stations":    `{"name":"x","stations":[]}`,
		"zero servers":   `{"name":"x","stations":[{"name":"q","kind":"cpu","servers":0,"visits":1,"serviceTime":0.1}]}`,
		"negative think": `{"name":"x","thinkTime":-1,"stations":[{"name":"q","kind":"cpu","servers":1,"visits":1,"serviceTime":0.1}]}`,
	}
	for name, body := range cases {
		if _, err := ReadModel(strings.NewReader(body)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSaveModelValidates(t *testing.T) {
	if err := SaveModel(filepath.Join(t.TempDir(), "x.json"), &queueing.Model{}); err == nil {
		t.Error("invalid model should not save")
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel("/nonexistent/path.json"); err == nil {
		t.Error("missing file should error")
	}
}

func TestSamplesRoundTripByName(t *testing.T) {
	m := &queueing.Model{
		Name: "m",
		Stations: []queueing.Station{
			{Name: "a", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
			{Name: "b", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.02},
		},
	}
	// File lists stations in reverse order: name matching must fix it up.
	file := &SamplesFile{Stations: []StationSamples{
		{Name: "b", At: []float64{1, 10}, Demands: []float64{0.02, 0.018}},
		{Name: "a", At: []float64{1, 10}, Demands: []float64{0.01, 0.009}},
	}}
	path := filepath.Join(t.TempDir(), "samples.json")
	if err := SaveSamples(path, file); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSamples(path)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := loaded.ToDemandSamples(m)
	if err != nil {
		t.Fatal(err)
	}
	if ds[0].Demands[0] != 0.01 || ds[1].Demands[0] != 0.02 {
		t.Fatalf("name matching failed: %+v", ds)
	}
}

func TestSamplesPositional(t *testing.T) {
	m := &queueing.Model{
		Name: "m",
		Stations: []queueing.Station{
			{Name: "a", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
		},
	}
	file := &SamplesFile{Stations: []StationSamples{
		{At: []float64{1}, Demands: []float64{0.01}},
	}}
	ds, err := file.ToDemandSamples(m)
	if err != nil {
		t.Fatal(err)
	}
	if ds[0].Demands[0] != 0.01 {
		t.Fatalf("positional matching failed: %+v", ds)
	}
	// Count mismatch without names must fail.
	file.Stations = append(file.Stations, StationSamples{At: []float64{1}, Demands: []float64{1}})
	if _, err := file.ToDemandSamples(m); err == nil {
		t.Error("count mismatch should error")
	}
}

func TestSamplesMissingStation(t *testing.T) {
	m := &queueing.Model{
		Name: "m",
		Stations: []queueing.Station{
			{Name: "a", Kind: queueing.CPU, Servers: 1, Visits: 1, ServiceTime: 0.01},
			{Name: "b", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.02},
		},
	}
	file := &SamplesFile{Stations: []StationSamples{
		{Name: "a", At: []float64{1}, Demands: []float64{0.01}},
		{Name: "zz", At: []float64{1}, Demands: []float64{0.01}},
	}}
	if _, err := file.ToDemandSamples(m); err == nil {
		t.Error("missing station should error")
	}
}

func TestReadSamplesRejectsRagged(t *testing.T) {
	bad := `{"stations":[{"at":[1,2],"demands":[0.1]}]}`
	if _, err := ReadSamples(strings.NewReader(bad)); err == nil {
		t.Error("ragged samples should error")
	}
	if _, err := ReadSamples(strings.NewReader(`{"stations":[]}`)); err == nil {
		t.Error("empty samples should error")
	}
}

func TestFromDemandSamples(t *testing.T) {
	m := testbed.JPetStore().Model(1)
	samples := make([]core.DemandSamples, len(m.Stations))
	for k := range samples {
		samples[k] = core.DemandSamples{At: []float64{1, 140}, Demands: []float64{0.02, 0.015}}
	}
	file, err := FromDemandSamples(m, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Stations) != len(m.Stations) {
		t.Fatalf("station count %d", len(file.Stations))
	}
	if file.Stations[0].Name != m.Stations[0].Name {
		t.Errorf("station name %q", file.Stations[0].Name)
	}
	// Round trip back to core samples.
	ds, err := file.ToDemandSamples(m)
	if err != nil {
		t.Fatal(err)
	}
	if ds[3].Demands[1] != 0.015 {
		t.Errorf("round trip demand %g", ds[3].Demands[1])
	}
	// Mismatched count fails.
	if _, err := FromDemandSamples(m, samples[:2]); err == nil {
		t.Error("short samples should error")
	}
}
