package modelio

// Wire types of the self-model surface: GET /v1/self on a node and
// GET /cluster/v1/self on the gateway. The self-model (internal/selfmodel)
// is each node running the paper's loop on itself — sampling its own
// worker-pool utilization and request flow, estimating its two-station
// demands, and solving MVASD to predict its own saturation.

// SelfCurvePoint is one population of a node's predicted trajectory.
type SelfCurvePoint struct {
	// N is the concurrency (population) of this point.
	N int `json:"n"`
	// X is the predicted throughput in requests/s.
	X float64 `json:"x"`
	// CycleSeconds is the predicted request wall time.
	CycleSeconds float64 `json:"cycleSeconds"`
	// Utilization is the predicted per-worker utilization (0..1).
	Utilization float64 `json:"utilization"`
}

// SelfDeviation is one predicted-vs-observed metric scored against the
// paper's validation bounds (3% throughput, 9% latency).
type SelfDeviation struct {
	Metric   string  `json:"metric"`
	Ratio    float64 `json:"ratio"`
	Bound    float64 `json:"bound"`
	Breached bool    `json:"breached"`
	Breaches uint64  `json:"breaches"`
}

// SelfResponse is GET /v1/self: one node's live self-model.
type SelfResponse struct {
	// Node is the address this node is known by.
	Node string `json:"node,omitempty"`
	// Ready is false until enough windows accumulated for a demand fit;
	// the observation fields are still populated while false.
	Ready bool `json:"ready"`
	// SnapshotVersion is the demand snapshot the curve is solved from.
	SnapshotVersion uint64 `json:"snapshotVersion,omitempty"`
	// Workers is the node's worker-pool capacity (the model's server count).
	Workers int `json:"workers"`
	// MaxN is the concurrency ceiling the curve is solved to.
	MaxN int `json:"maxN"`

	// Windows / Completions are lifetime sampling totals.
	Windows     uint64 `json:"windows"`
	Completions uint64 `json:"completions"`
	// InFlight is the sampled in-flight count at response time.
	InFlight int `json:"inFlight"`

	// Latest non-empty window's observations; latencies in seconds.
	ObservedConcurrency float64 `json:"observedConcurrency,omitempty"`
	ObservedThroughput  float64 `json:"observedThroughput,omitempty"`
	ObservedP50Seconds  float64 `json:"observedP50Seconds,omitempty"`
	ObservedP99Seconds  float64 `json:"observedP99Seconds,omitempty"`

	// Predictions at the observed concurrency (absent until Ready).
	PredictedThroughput float64 `json:"predictedThroughput,omitempty"`
	PredictedP50Seconds float64 `json:"predictedP50Seconds,omitempty"`
	PredictedP99Seconds float64 `json:"predictedP99Seconds,omitempty"`

	// Deviations carries the latest scored ratios (3%/9% bounds).
	Deviations []SelfDeviation `json:"deviations,omitempty"`

	// Curve is the predicted trajectory, downsampled to ~64 stride-sampled
	// points plus the saturation knee and the final population.
	Curve []SelfCurvePoint `json:"curve,omitempty"`

	// Saturated: the knee lies inside the solved range; KneeN is the first
	// concurrency at the saturation-utilization threshold. P99LimitN is the
	// largest concurrency honoring the configured p99 bound (0 without one).
	// MaxSafeN combines both; Headroom = MaxSafeN - InFlight.
	Saturated bool `json:"saturated"`
	KneeN     int  `json:"kneeN,omitempty"`
	P99LimitN int  `json:"p99LimitN,omitempty"`
	MaxSafeN  int  `json:"maxSafeN,omitempty"`
	Headroom  int  `json:"headroom"`
	// ShedAdvised is the advisory observe-only signal that the node predicts
	// it is at or past its safe concurrency.
	ShedAdvised bool `json:"shedAdvised"`

	// LastFitError is the most recent demand-fit failure ("" once fitted).
	LastFitError string `json:"lastFitError,omitempty"`

	// Admission is the node's admission-gate and coalescer snapshot
	// (internal/admission); present whenever the node runs one, including
	// while the self-model is still warming.
	Admission *SelfAdmission `json:"admission,omitempty"`
}

// SelfAdmission is one node's admission-control snapshot: what the gate in
// front of the worker pool decided (admitted/shed/redirected) and what the
// request coalescer merged.
type SelfAdmission struct {
	// Mode is the gate's action mode: off, observe or enforce.
	Mode string `json:"mode"`
	// Admitted counts requests let through; OverCapacity those that arrived
	// past the predicted safe concurrency (counted in observe mode too,
	// where they are still admitted).
	Admitted     uint64 `json:"admitted"`
	OverCapacity uint64 `json:"overCapacity"`
	// Shed counts 429-refused requests; Redirected refusals resolved by
	// forwarding to a ring peer with predicted headroom.
	Shed       uint64 `json:"shed"`
	Redirected uint64 `json:"redirected"`
	// Coalesced counts requests served off another request's merged solve
	// flight; CoalesceWaiters is the currently-waiting gauge.
	Coalesced       uint64 `json:"coalesced"`
	CoalesceWaiters int    `json:"coalesceWaiters"`
}

// ClusterSelfNode is one ring member's self-model (or why it is missing).
type ClusterSelfNode struct {
	Member string        `json:"member"`
	Error  string        `json:"error,omitempty"`
	Self   *SelfResponse `json:"self,omitempty"`
}

// ClusterSelfResponse is GET /cluster/v1/self: the fleet headroom view.
type ClusterSelfResponse struct {
	// Self is the answering gateway's member address.
	Self string `json:"self"`
	// Nodes lists every ring member's self-model, answering node first.
	Nodes []ClusterSelfNode `json:"nodes"`
	// Missing lists members that did not answer.
	Missing []string `json:"missing,omitempty"`

	// Fleet aggregates over the nodes that answered with a ready model:
	// summed headroom, in-flight and max-safe concurrency.
	FleetHeadroom int `json:"fleetHeadroom"`
	FleetInFlight int `json:"fleetInFlight"`
	FleetMaxSafe  int `json:"fleetMaxSafe"`
	// ReadyNodes counts answering members with a solved self-model.
	ReadyNodes int `json:"readyNodes"`
	// ShedAdvised is true when any ready node advises shedding.
	ShedAdvised bool `json:"shedAdvised"`

	// Fleet admission totals, summed over every answering node that reported
	// an admission snapshot (ready or not).
	FleetShed       uint64 `json:"fleetShed"`
	FleetRedirected uint64 `json:"fleetRedirected"`
	FleetCoalesced  uint64 `json:"fleetCoalesced"`

	ElapsedMS float64 `json:"elapsedMs"`
}
