package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
)

// fwdResult is one peer's answer to a forwarded request.
type fwdResult struct {
	peer        string
	status      int
	contentType string
	body        []byte
	err         error
	// hedged marks a result produced by a backup request launched after the
	// hedge delay — a winning hedged result is the "hedge_win" outcome.
	hedged bool
}

// good reports whether the result should be returned to the client: a clean
// round-trip with a non-5xx status. Peer 4xx responses are "good" — they are
// the request's fault, not the peer's, and retrying elsewhere cannot fix
// them — while transport errors and 5xx feed the failover ladder.
func (r fwdResult) good() bool { return r.err == nil && r.status < 500 }

// peerErrorMessage extracts the error text of a peer's non-200 JSON reply.
func peerErrorMessage(r fwdResult) string {
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(r.body, &body); err == nil && body.Error != "" {
		return body.Error
	}
	return fmt.Sprintf("peer %s returned status %d", r.peer, r.status)
}

// forward pushes one request through the key's remote candidates: up to
// MaxAttempts rounds over the candidate list (exponential backoff with
// jitter between rounds), and within a round a hedged race — the primary
// peer gets a head start of its own recent latency percentile, then the next
// candidate is launched alongside it. Per-peer circuit breakers gate every
// attempt. ok=false means every candidate is down, broken or failing and the
// caller should serve locally.
func (g *Gateway) forward(ctx context.Context, key, path string, body []byte, candidates []string) (fwdResult, bool) {
	remotes := make([]string, 0, len(candidates))
	for _, c := range candidates {
		if c != g.cfg.Self {
			remotes = append(remotes, c)
		}
	}
	if len(remotes) == 0 {
		return fwdResult{}, false
	}
	start := time.Now()
	traceID := telemetry.FromContext(ctx).ID()
	fallback := func() (fwdResult, bool) {
		g.metrics.observeForward("fallback", time.Since(start).Seconds(), traceID)
		return fwdResult{}, false
	}
	backoff := g.cfg.RetryBackoff
	for attempt := 0; attempt < g.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Full jitter on top of the doubled base keeps retry rounds from
			// synchronizing across gateways hammering the same dead peer.
			delay := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
			backoff *= 2
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return fallback()
			}
		}
		if res, ok := g.forwardRound(ctx, path, body, remotes); ok {
			outcome := "ok"
			switch {
			case attempt > 0:
				outcome = "retry"
			case res.hedged:
				outcome = "hedge_win"
			}
			g.metrics.observeForward(outcome, time.Since(start).Seconds(), traceID)
			return res, true
		}
		if ctx.Err() != nil {
			return fallback()
		}
	}
	g.cfg.Logger.Warn("cluster: all forward candidates failed",
		"path", path, "key", key, "candidates", remotes)
	return fallback()
}

// forwardRound races one hedged pass over the candidates: launch the first
// allowed peer, arm the hedge timer with its latency percentile, and on
// fire (or on a failure) launch the next. The first good result wins; the
// round fails when every candidate has failed or is breaker-blocked.
func (g *Gateway) forwardRound(parent context.Context, path string, body []byte, candidates []string) (fwdResult, bool) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel() // reels in the loser of the hedge race

	results := make(chan fwdResult, len(candidates))
	launched := 0
	launch := func(peer string, hedge bool) {
		ps := g.peer(peer)
		if !ps.breaker.allow(time.Now()) {
			return
		}
		launched++
		if hedge {
			g.metrics.hedges.Add(1)
			g.jn.Append(journal.TypeHedge,
				fmt.Sprintf("hedged forward to %s fired", peer), journal.Event{
					TraceID: telemetry.FromContext(ctx).ID(),
					Attrs:   []journal.Attr{{Key: "peer", Value: peer}, {Key: "path", Value: path}},
				})
		}
		go func() {
			res := g.forwardOne(ctx, peer, path, body, hedge, nil)
			// The breaker verdict is recorded here, not by the receiving
			// loop: the race returns (cancelling the losers) without
			// draining the channel, and a launched-but-unrecorded request
			// would hold a half-open probe slot forever, wedging the
			// breaker until process restart.
			switch {
			case res.good():
				ps.breaker.success()
			case ctx.Err() != nil:
				// Abandoned, not answered — the race already has a winner
				// or the parent context ended. No verdict; just release
				// any probe slot this request was holding.
				ps.breaker.cancelProbe()
			default:
				g.metrics.forwardFailures.Add(1)
				if opened := ps.breaker.failure(time.Now()); opened {
					g.cfg.Logger.Warn("cluster: circuit breaker opened", "peer", peer)
				}
			}
			results <- res
		}()
	}
	next := 0
	for next < len(candidates) && launched == 0 {
		launch(candidates[next], false)
		next++
	}
	if launched == 0 {
		return fwdResult{}, false // every candidate breaker-blocked
	}
	hedgeTimer := time.NewTimer(g.hedgeDelay(candidates[next-1]))
	defer hedgeTimer.Stop()

	outstanding := launched
	for {
		select {
		case <-hedgeTimer.C:
			for next < len(candidates) {
				before := launched
				launch(candidates[next], true)
				next++
				if launched > before {
					outstanding++
					break
				}
			}
		case res := <-results:
			outstanding--
			if res.good() {
				return res, true
			}
			// Fail fast to the next candidate instead of waiting out the
			// hedge timer.
			for next < len(candidates) {
				before := launched
				launch(candidates[next], false)
				next++
				if launched > before {
					outstanding++
					break
				}
			}
			if outstanding == 0 {
				return fwdResult{}, false
			}
		case <-parent.Done():
			return fwdResult{}, false
		}
	}
}

// hedgeDelay picks how long the primary peer runs alone: its recent latency
// percentile, clamped to [HedgeMin, HedgeMax]; with no history yet, HedgeMin
// (an unknown peer earns no head start).
func (g *Gateway) hedgeDelay(peer string) time.Duration {
	d, ok := g.peer(peer).latency.percentile(g.cfg.HedgePercentile)
	if !ok || d < g.cfg.HedgeMin {
		return g.cfg.HedgeMin
	}
	if d > g.cfg.HedgeMax {
		return g.cfg.HedgeMax
	}
	return d
}

// forwardOne performs one POST to one peer, propagating X-Request-Id (and the
// forward span's ID as X-Parent-Span, so the peer's trace fragment stitches
// under this hop) and marking the hop so the peer serves locally. Each call
// is one telemetry span on the requesting node. extra carries additional
// headers (nil for plain forwards; the admission gate's redirects mark the
// hop with X-Cluster-Redirected here).
func (g *Gateway) forwardOne(ctx context.Context, peer, path string, body []byte, hedge bool, extra http.Header) fwdResult {
	tr := telemetry.FromContext(ctx)
	span := tr.StartSpan("forward")
	span.SetAttr("peer", peer)
	span.SetAttr("path", path)
	if hedge {
		span.SetAttr("hedge", true)
	}
	defer span.End()

	g.metrics.forwards.Add(1)
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+peer+path, bytes.NewReader(body))
	if err != nil {
		return fwdResult{peer: peer, err: err, hedged: hedge}
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set(headerForwarded, g.cfg.Self)
	if g.cfg.Secret != "" {
		req.Header.Set(headerSecret, g.cfg.Secret)
	}
	if id := tr.ID(); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	if sid := span.ID(); sid != "" {
		req.Header.Set("X-Parent-Span", sid)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		span.SetAttr("error", err.Error())
		return fwdResult{peer: peer, err: err, hedged: hedge}
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardResponseBytes+1))
	if err != nil {
		span.SetAttr("error", err.Error())
		return fwdResult{peer: peer, err: err, hedged: hedge}
	}
	if int64(len(respBody)) > maxForwardResponseBytes {
		err := fmt.Errorf("cluster: peer response exceeds %d bytes", int64(maxForwardResponseBytes))
		span.SetAttr("error", err.Error())
		return fwdResult{peer: peer, err: err, hedged: hedge}
	}
	g.peer(peer).latency.observe(time.Since(start))
	span.SetAttr("status", resp.StatusCode)
	return fwdResult{
		peer:        peer,
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        respBody,
		hedged:      hedge,
	}
}

// Peer response read caps. Forwarded solve/sweep responses carry O(maxN)
// vectors and stay in the tens of megabytes even at the default 100k
// population cap, so they get the tight bound — the coordinator can hold
// several at once during a routed sweep. Exported trajectory state carries
// full [n][k] matrices and gets the loose bound; at most one fill body is
// in flight per cold solve.
const (
	maxForwardResponseBytes = 64 << 20
	maxExportResponseBytes  = 256 << 20
)
