package cluster

// Distributed deep solves: POST /v1/solve?deep=1 splits [1, maxN] into
// stride-aligned population chunks and pipelines them across the cluster.
// The MVA recursion is strictly sequential in n, so the fabric cannot
// parallelize a single trajectory — what it can do is bound every node's
// memory: each member solves only its own chunk, seeded from the previous
// chunk's shipped checkpoint, and no node ever materializes the full
// trajectory. Rows stream back to the client as NDJSON while later chunks
// are still being solved, and a chunk whose member dies mid-pipeline is
// retried on the next member (then locally) from the same checkpoint — the
// recursion state is in the coordinator's hands between chunks, so failover
// never recomputes the prefix and never perturbs a single bit of the result.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/journal"
	"repro/internal/modelio"
	"repro/internal/telemetry"
)

// deepAutoRows is the stored-row budget an unspecified decimate targets: a
// deep solve at maxN defaults to stride ceil(maxN/deepAutoRows).
const deepAutoRows = 4096

// deepAutoStride picks the default decimation stride for a deep solve.
func deepAutoStride(maxN int) int {
	return (maxN + deepAutoRows - 1) / deepAutoRows
}

// deepChunks splits [1, maxN] into at most parts contiguous chunks with
// stride-aligned boundaries (the final boundary is maxN itself). Alignment
// matters for bit-identical row sets: a chunk always commits its last
// population, so an unaligned interior boundary would store a row a
// single-node solve skips.
func deepChunks(maxN, stride, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	if stride < 1 {
		stride = 1
	}
	target := (maxN + parts - 1) / parts
	if rem := target % stride; rem != 0 {
		target += stride - rem
	}
	var chunks [][2]int
	for from := 0; from < maxN; {
		to := from + target
		if to > maxN {
			to = maxN
		}
		chunks = append(chunks, [2]int{from, to})
		from = to
	}
	return chunks
}

// handleDeepSolve coordinates one deep solve. The receiving node is the
// coordinator regardless of key ownership (the trajectory is never cached,
// so there is no owner to warm); members are walked in the key's ring order
// so repeated deep solves of the same model spread the same way.
func (g *Gateway) handleDeepSolve(w http.ResponseWriter, r *http.Request, req *modelio.SolveRequest, key string) {
	start := time.Now()
	if req.Decimate <= 1 {
		req.Decimate = deepAutoStride(req.MaxN)
	}
	stride := req.Decimate
	if stride < 1 {
		stride = 1
	}
	members := g.members.Ring().Owners(key, len(g.cfg.Peers))
	chunks := deepChunks(req.MaxN, stride, len(members))
	tr := telemetry.FromContext(r.Context())
	tr.SetAttr("deep_chunks", len(chunks))

	ctx, cancel := g.local.SolveContext(r.Context(), req.TimeoutMS)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(headerPeer, g.cfg.Self)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	// The stream header carries the coordinator's trace ID so NDJSON
	// consumers (which never see the X-Request-Id of intermediate hops) can
	// hand solverctl trace the exact ID that stitches the whole pipeline.
	enc.Encode(modelio.DeepHeader{
		Algorithm: req.Algorithm,
		ModelName: req.Model.Name,
		MaxN:      req.MaxN,
		Stride:    stride,
		Stations:  stationNames(req),
		TraceID:   tr.ID(),
	})
	flush()

	// The stream has already committed a 200; mid-pipeline failures surface
	// as an error line and a missing trailer.
	fail := func(err error) {
		g.cfg.Logger.Warn("cluster: deep solve failed", "key", key, "error", err)
		enc.Encode(struct {
			Error string `json:"error"`
		}{Error: err.Error()})
	}
	var cps *modelio.CheckpointState
	rows := 0
	for i, ch := range chunks {
		// One span per chunk: which member solved it, the population range,
		// whether a checkpoint was handed off, and how the failover ladder
		// went — the coordinator-side skeleton solverctl trace stitches the
		// member fragments (forward spans) onto.
		span := tr.StartSpan("deep-chunk")
		span.SetAttr("chunk", i)
		span.SetAttr("from_n", ch[0])
		span.SetAttr("to_n", ch[1])
		span.SetAttr("checkpoint_in", cps != nil)
		resp, err := g.deepChunk(ctx, req, ch[0], ch[1], cps, members, i, span)
		if err != nil {
			span.SetAttr("error", err.Error())
			span.End()
			fail(err)
			return
		}
		span.SetAttr("member", resp.Peer)
		span.SetAttr("rows", len(resp.Rows))
		span.End()
		for j := range resp.Rows {
			if err := enc.Encode(&resp.Rows[j]); err != nil {
				return // client went away
			}
		}
		rows += len(resp.Rows)
		flush()
		cps = &resp.Checkpoint
	}
	enc.Encode(modelio.DeepTrailer{
		Done:      true,
		Rows:      rows,
		Chunks:    len(chunks),
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// stationNames lists the request model's stations for the stream header.
func stationNames(req *modelio.SolveRequest) []string {
	names := make([]string, len(req.Model.Stations))
	for i, st := range req.Model.Stations {
		names[i] = st.Name
	}
	return names
}

// deepChunk solves one chunk through the fabric: the chunk's assigned member
// first (round-robin over the key's ring walk), then the remaining members
// as failover — each attempt reuses the same checkpoint, so a member killed
// mid-chunk costs only that chunk's work — and the local engine as the last
// resort. Peer 4xx responses abort the pipeline (the request is at fault);
// transport errors and 5xx walk the ladder. Deep chunks use plain ordered
// failover rather than the hedge/retry racer: the checkpoint handoff is
// sequential state, and a duplicate chunk solve would only burn a worker.
func (g *Gateway) deepChunk(ctx context.Context, req *modelio.SolveRequest, fromN, toN int,
	cps *modelio.CheckpointState, members []string, idx int, span *telemetry.Span) (*modelio.DeepChunkResponse, error) {
	creq := modelio.DeepChunkRequest{Req: *req, FromN: fromN, ToN: toN, Checkpoint: cps}
	body, err := json.Marshal(&creq)
	if err != nil {
		return nil, err
	}
	failovers := 0
	for off := 0; off < len(members); off++ {
		peer := members[(idx+off)%len(members)]
		if peer == g.cfg.Self || !g.members.peerUp(peer) {
			continue
		}
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		res := g.forwardOne(ctx, peer, "/cluster/v1/deep", body, false, nil)
		switch {
		case res.err == nil && res.status == http.StatusOK:
			var resp modelio.DeepChunkResponse
			if err := json.Unmarshal(res.body, &resp); err != nil {
				return nil, fmt.Errorf("cluster: decoding deep chunk from %s: %w", peer, err)
			}
			if err := checkChunkRows(&resp, fromN, toN); err != nil {
				return nil, err
			}
			return &resp, nil
		case res.err == nil && res.status < 500:
			return nil, fmt.Errorf("cluster: deep chunk (%d, %d]: %s", fromN, toN, peerErrorMessage(res))
		default:
			g.metrics.forwardFailures.Add(1)
			failovers++
			span.SetAttr("failovers", failovers)
			g.cfg.Logger.Warn("cluster: deep chunk failover",
				"peer", peer, "fromN", fromN, "toN", toN, "error", res.err, "status", res.status)
			g.jn.Append(journal.TypeDeepFailover,
				fmt.Sprintf("deep chunk (%d, %d] failed over past %s", fromN, toN, peer),
				journal.Event{
					TraceID: telemetry.FromContext(ctx).ID(),
					Attrs: []journal.Attr{
						{Key: "peer", Value: peer},
						{Key: "from_n", Value: strconv.Itoa(fromN)},
						{Key: "to_n", Value: strconv.Itoa(toN)},
					},
				})
		}
	}
	// Every remote candidate is down or failing: solve the chunk here.
	g.metrics.localFallbacks.Add(1)
	span.SetAttr("local_fallback", true)
	res, cpOut, err := g.local.SolveChunk(ctx, &creq.Req, fromN, toN, cps)
	if err != nil {
		return nil, err
	}
	return &modelio.DeepChunkResponse{
		Peer:       g.cfg.Self,
		Rows:       modelio.NewDeepRows(res),
		Checkpoint: *cpOut,
	}, nil
}

// checkChunkRows validates a peer's chunk shape before shipping its
// checkpoint onward: rows must be ascending within (fromN, toN] and end at
// toN (the checkpoint's population).
func checkChunkRows(resp *modelio.DeepChunkResponse, fromN, toN int) error {
	prev := fromN
	for i := range resp.Rows {
		n := resp.Rows[i].N
		if n <= prev || n > toN {
			return fmt.Errorf("cluster: deep chunk (%d, %d] returned population %d", fromN, toN, n)
		}
		prev = n
	}
	if prev != toN {
		return fmt.Errorf("cluster: deep chunk (%d, %d] ended at %d", fromN, toN, prev)
	}
	return nil
}

// handleDeepChunk serves POST /cluster/v1/deep: the member side of the
// distributed deep solve.
func (g *Gateway) handleDeepChunk(w http.ResponseWriter, r *http.Request) {
	if !g.trustedHop(r) {
		g.writeError(w, http.StatusForbidden, "cluster secret required")
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		g.writeError(w, bodyStatus(err), err.Error())
		return
	}
	var req modelio.DeepChunkRequest
	if err := decodeStrict(body, &req); err != nil {
		g.writeError(w, bodyStatus(err), err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		g.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := g.local.SolveContext(r.Context(), req.Req.TimeoutMS)
	defer cancel()
	res, cps, err := g.local.SolveChunk(ctx, &req.Req, req.FromN, req.ToN, req.Checkpoint)
	if err != nil {
		g.writeError(w, errStatus(err), err.Error())
		return
	}
	g.writeJSON(w, http.StatusOK, modelio.DeepChunkResponse{
		Peer:       g.cfg.Self,
		Rows:       modelio.NewDeepRows(res),
		Checkpoint: *cps,
	})
}
