package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
)

// clusterMetrics are the gateway's counters, rendered as an extra Prometheus
// section after the local node's own /metrics output.
type clusterMetrics struct {
	// forwards counts requests sent to a peer (per attempt, hedges
	// included); forwardFailures the attempts that errored or returned 5xx.
	forwards        atomic.Uint64
	forwardFailures atomic.Uint64
	// hedges counts the backup requests launched after the hedge delay.
	hedges atomic.Uint64
	// localFallbacks counts requests served locally because every remote
	// candidate was down, broken or failing — the "no client-visible 5xx"
	// path.
	localFallbacks atomic.Uint64
	// fillHits/fillMisses count peer cache fill lookups (a hit restored a
	// peer's trajectory, a miss fell through to a cold local solve).
	fillHits   atomic.Uint64
	fillMisses atomic.Uint64
}

// write renders the cluster section. The gateway passes the current ring and
// per-peer state so gauges reflect the live topology.
func (g *Gateway) writeMetrics(w io.Writer) error {
	ring := g.members.Ring()
	fmt.Fprintln(w, "# HELP solverd_cluster_ring_nodes Members currently in the routing ring.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_ring_nodes gauge")
	fmt.Fprintf(w, "solverd_cluster_ring_nodes %d\n", ring.Len())

	fmt.Fprintln(w, "# HELP solverd_cluster_peer_up Peer liveness from /healthz probes (1 up, 0 down).")
	fmt.Fprintln(w, "# TYPE solverd_cluster_peer_up gauge")
	fmt.Fprintln(w, "# HELP solverd_cluster_breaker_open Peer circuit breaker state (1 open or half-open, 0 closed).")
	fmt.Fprintln(w, "# TYPE solverd_cluster_breaker_open gauge")
	fmt.Fprintln(w, "# HELP solverd_cluster_breaker_opens_total Transitions of a peer's circuit breaker into the open state.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_breaker_opens_total counter")
	for _, p := range g.remotePeers {
		up := 0
		if g.members.peerUp(p) {
			up = 1
		}
		fmt.Fprintf(w, "solverd_cluster_peer_up{peer=%q} %d\n", p, up)
		state, opens := g.peer(p).breaker.snapshot()
		open := 0
		if state != breakerClosed {
			open = 1
		}
		fmt.Fprintf(w, "solverd_cluster_breaker_open{peer=%q} %d\n", p, open)
		fmt.Fprintf(w, "solverd_cluster_breaker_opens_total{peer=%q} %d\n", p, opens)
	}

	m := &g.metrics
	fmt.Fprintln(w, "# HELP solverd_cluster_forwards_total Requests forwarded to a peer (hedges included).")
	fmt.Fprintln(w, "# TYPE solverd_cluster_forwards_total counter")
	fmt.Fprintf(w, "solverd_cluster_forwards_total %d\n", m.forwards.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_forward_failures_total Forward attempts that errored or returned a 5xx.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_forward_failures_total counter")
	fmt.Fprintf(w, "solverd_cluster_forward_failures_total %d\n", m.forwardFailures.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_hedges_total Backup requests launched after the hedge delay.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_hedges_total counter")
	fmt.Fprintf(w, "solverd_cluster_hedges_total %d\n", m.hedges.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_local_fallbacks_total Requests served locally after every remote candidate failed.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_local_fallbacks_total counter")
	fmt.Fprintf(w, "solverd_cluster_local_fallbacks_total %d\n", m.localFallbacks.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_peer_fill_hits_total Cold solves warm-started from a peer's exported trajectory.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_peer_fill_hits_total counter")
	fmt.Fprintf(w, "solverd_cluster_peer_fill_hits_total %d\n", m.fillHits.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_peer_fill_misses_total Peer fill lookups that found no cached trajectory.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_peer_fill_misses_total counter")
	_, err := fmt.Fprintf(w, "solverd_cluster_peer_fill_misses_total %d\n", m.fillMisses.Load())
	return err
}
