package cluster

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/report"
)

// forwardOutcomes are the label values of the forward-duration histogram, in
// exposition order: a clean first-attempt win, a hedge that beat the primary,
// a retry-round win, and the all-candidates-failed local fallback.
var forwardOutcomes = [...]string{"ok", "hedge_win", "retry", "fallback"}

// clusterMetrics are the gateway's counters, rendered as an extra Prometheus
// section after the local node's own /metrics output.
type clusterMetrics struct {
	// forwards counts requests sent to a peer (per attempt, hedges
	// included); forwardFailures the attempts that errored or returned 5xx.
	forwards        atomic.Uint64
	forwardFailures atomic.Uint64
	// hedges counts the backup requests launched after the hedge delay.
	hedges atomic.Uint64
	// localFallbacks counts requests served locally because every remote
	// candidate was down, broken or failing — the "no client-visible 5xx"
	// path.
	localFallbacks atomic.Uint64
	// redirects counts refused requests shipped to a peer with advertised
	// headroom (the admission gate's divert path; the per-node decision
	// counters live in solverd_admission_*).
	redirects atomic.Uint64
	// fillHits/fillMisses count peer cache fill lookups (a hit restored a
	// peer's trajectory, a miss fell through to a cold local solve).
	fillHits   atomic.Uint64
	fillMisses atomic.Uint64

	// fwdDur histograms the end-to-end forward() duration — hedges, retries
	// and backoff included — per outcome label, lazily built on first
	// observation.
	fwdMu  sync.Mutex
	fwdDur map[string]*report.FixedHistogram
}

// observeForward records one completed forward ladder under its outcome.
// traceID (may be empty) becomes the latency bucket's exemplar, so a slow
// bucket on a dashboard links straight to the hedged request's stitched
// trace.
func (m *clusterMetrics) observeForward(outcome string, seconds float64, traceID string) {
	m.fwdMu.Lock()
	defer m.fwdMu.Unlock()
	if m.fwdDur == nil {
		m.fwdDur = make(map[string]*report.FixedHistogram, len(forwardOutcomes))
	}
	h := m.fwdDur[outcome]
	if h == nil {
		h, _ = report.NewFixedHistogram(report.DefaultLatencyBounds()...)
		m.fwdDur[outcome] = h
	}
	h.ObserveWithExemplar(seconds, traceID, float64(time.Now().UnixMilli())/1000)
}

// write renders the cluster section. The gateway passes the current ring and
// per-peer state so gauges reflect the live topology.
func (g *Gateway) writeMetrics(w io.Writer) error {
	ring := g.members.Ring()
	fmt.Fprintln(w, "# HELP solverd_cluster_ring_nodes Members currently in the routing ring.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_ring_nodes gauge")
	fmt.Fprintf(w, "solverd_cluster_ring_nodes %d\n", ring.Len())

	fmt.Fprintln(w, "# HELP solverd_cluster_peer_up Peer liveness from /healthz probes (1 up, 0 down).")
	fmt.Fprintln(w, "# TYPE solverd_cluster_peer_up gauge")
	fmt.Fprintln(w, "# HELP solverd_cluster_breaker_open Peer circuit breaker state (1 open or half-open, 0 closed).")
	fmt.Fprintln(w, "# TYPE solverd_cluster_breaker_open gauge")
	fmt.Fprintln(w, "# HELP solverd_cluster_breaker_opens_total Transitions of a peer's circuit breaker into the open state.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_breaker_opens_total counter")
	for _, p := range g.remotePeers {
		up := 0
		if g.members.peerUp(p) {
			up = 1
		}
		fmt.Fprintf(w, "solverd_cluster_peer_up{peer=%q} %d\n", p, up)
		state, opens := g.peer(p).breaker.snapshot()
		open := 0
		if state != breakerClosed {
			open = 1
		}
		fmt.Fprintf(w, "solverd_cluster_breaker_open{peer=%q} %d\n", p, open)
		fmt.Fprintf(w, "solverd_cluster_breaker_opens_total{peer=%q} %d\n", p, opens)
	}

	m := &g.metrics
	fmt.Fprintln(w, "# HELP solverd_cluster_forwards_total Requests forwarded to a peer (hedges included).")
	fmt.Fprintln(w, "# TYPE solverd_cluster_forwards_total counter")
	fmt.Fprintf(w, "solverd_cluster_forwards_total %d\n", m.forwards.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_forward_failures_total Forward attempts that errored or returned a 5xx.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_forward_failures_total counter")
	fmt.Fprintf(w, "solverd_cluster_forward_failures_total %d\n", m.forwardFailures.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_hedges_total Backup requests launched after the hedge delay.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_hedges_total counter")
	fmt.Fprintf(w, "solverd_cluster_hedges_total %d\n", m.hedges.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_local_fallbacks_total Requests served locally after every remote candidate failed.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_local_fallbacks_total counter")
	fmt.Fprintf(w, "solverd_cluster_local_fallbacks_total %d\n", m.localFallbacks.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_redirects_total Admission-refused requests shipped to a peer with advertised headroom.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_redirects_total counter")
	fmt.Fprintf(w, "solverd_cluster_redirects_total %d\n", m.redirects.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_peer_fill_hits_total Cold solves warm-started from a peer's exported trajectory.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_peer_fill_hits_total counter")
	fmt.Fprintf(w, "solverd_cluster_peer_fill_hits_total %d\n", m.fillHits.Load())
	fmt.Fprintln(w, "# HELP solverd_cluster_peer_fill_misses_total Peer fill lookups that found no cached trajectory.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_peer_fill_misses_total counter")
	fmt.Fprintf(w, "solverd_cluster_peer_fill_misses_total %d\n", m.fillMisses.Load())

	fmt.Fprintln(w, "# HELP solverd_cluster_forward_duration_seconds End-to-end forward ladder duration (hedges, retries and backoff included), by outcome.")
	fmt.Fprintln(w, "# TYPE solverd_cluster_forward_duration_seconds histogram")
	empty, _ := report.NewFixedHistogram(report.DefaultLatencyBounds()...)
	m.fwdMu.Lock()
	defer m.fwdMu.Unlock()
	for _, o := range forwardOutcomes {
		h := m.fwdDur[o]
		if h == nil {
			h = empty // every outcome label is always exposed, zeroed until seen
		}
		if err := h.WritePrometheusExemplars(w, "solverd_cluster_forward_duration_seconds", fmt.Sprintf("outcome=%q", o)); err != nil {
			return err
		}
	}
	return nil
}
