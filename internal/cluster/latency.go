package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyTracker keeps a small sliding window of a peer's recent forward
// latencies and answers percentile queries — the basis of the hedge delay
// ("hedge after the p90 of this peer's recent responses").
type latencyTracker struct {
	mu      sync.Mutex
	samples []time.Duration // ring buffer
	next    int
	full    bool
}

const latencyWindow = 64

func newLatencyTracker() *latencyTracker {
	return &latencyTracker{samples: make([]time.Duration, latencyWindow)}
}

// observe records one completed forward's latency.
func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples[t.next] = d
	t.next++
	if t.next == len(t.samples) {
		t.next = 0
		t.full = true
	}
}

// percentile returns the p-quantile (0 < p ≤ 1) of the window, or ok=false
// when no samples have been recorded yet.
func (t *latencyTracker) percentile(p float64) (time.Duration, bool) {
	t.mu.Lock()
	n := len(t.samples)
	if !t.full {
		n = t.next
	}
	if n == 0 {
		t.mu.Unlock()
		return 0, false
	}
	window := make([]time.Duration, n)
	copy(window, t.samples[:n])
	t.mu.Unlock()

	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	idx := int(p*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return window[idx], true
}
