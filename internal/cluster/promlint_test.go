package cluster

import (
	"net/http"
	"testing"

	"repro/internal/promtest"
)

// TestClusterPrometheusExpositionLint drives forwarded traffic through a
// cluster entry node and lints its full /metrics exposition — the cluster
// and trace-store families ride on the same scrape as the server's own, so
// they go through the same strict rules.
func TestClusterPrometheusExpositionLint(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	entry := nodes[0]

	// One forwarded solve (lands a forward-duration observation) and one
	// locally-owned solve would be ideal, but a forwarded one alone touches
	// every cluster family.
	req, _ := remoteOwnedRequest(t, nodes, entry)
	resp, body := postJSON(t, "http://"+entry.addr+"/v1/solve", req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}

	families := promtest.ParseExposition(t, string(getBody(t, "http://"+entry.addr+"/metrics")))
	promtest.RequireFamilies(t, families,
		"solverd_cluster_ring_nodes", "solverd_cluster_peer_up",
		"solverd_cluster_breaker_open", "solverd_cluster_breaker_opens_total",
		"solverd_cluster_forwards_total", "solverd_cluster_forward_failures_total",
		"solverd_cluster_hedges_total", "solverd_cluster_local_fallbacks_total",
		"solverd_cluster_peer_fill_hits_total", "solverd_cluster_peer_fill_misses_total",
		"solverd_cluster_redirects_total",
		"solverd_cluster_forward_duration_seconds",
		"solverd_admission_mode", "solverd_admission_admitted_total",
		"solverd_admission_over_capacity_total", "solverd_admission_shed_total",
		"solverd_admission_redirected_total", "solverd_admission_coalesced_total",
		"solverd_admission_coalesce_waiters",
		"solverd_trace_store_traces", "solverd_trace_store_spans",
		"solverd_trace_store_bytes", "solverd_trace_store_evictions_total",
		"solverd_trace_store_kept_total", "solverd_trace_store_dropped_total",
		"solverd_self_windows_total", "solverd_self_sampled_requests_total",
		"solverd_self_headroom", "solverd_self_shed_advised",
		"solverd_self_deviation_ratio", "solverd_self_request_seconds",
		"solverd_journal_events_stored", "solverd_journal_events_total",
		"solverd_journal_events_evicted_total",
		"solverd_profile_capture_total", "solverd_profile_capture_failures_total",
		"solverd_profile_capture_skipped_total", "solverd_profile_capture_stored",
		"solverd_profile_capture_last_unix_seconds",
	)
	promtest.LintFamilies(t, families)

	// The forward-duration histogram exposes every outcome label, observed or
	// not, and the forwarded solve landed exactly one "ok" observation.
	for _, outcome := range forwardOutcomes {
		c := promtest.HistogramCount(t, families, "solverd_cluster_forward_duration_seconds",
			promtest.Label{Name: "outcome", Value: outcome})
		if c < 0 {
			t.Errorf("no forward-duration series for outcome %q", outcome)
		}
		if outcome == "ok" && c < 1 {
			t.Errorf(`outcome="ok" count = %g, want >= 1`, c)
		}
	}
	if v := promtest.SingleValue(t, families, "solverd_cluster_forwards_total"); v < 1 {
		t.Errorf("forwards = %g, want >= 1", v)
	}
	if v := promtest.SingleValue(t, families, "solverd_trace_store_kept_total"); v < 1 {
		t.Errorf("trace store kept = %g, want >= 1", v)
	}
}
