package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/modelio"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// remoteOwnedRequest finds a solve request whose key is owned by a node other
// than entry, returning the request and the owner's index in nodes.
func remoteOwnedRequest(t *testing.T, nodes []*testNode, entry *testNode) (*modelio.SolveRequest, int) {
	t.Helper()
	for i := 0; i < 400; i++ {
		req := solveRequest(0.3+float64(i)*0.01, 80)
		owner := entry.gw.Ring().Owner(keyOf(t, req))
		if owner == entry.addr {
			continue
		}
		for j, n := range nodes {
			if n.addr == owner {
				return req, j
			}
		}
	}
	t.Fatal("could not find a remote-owned key")
	return nil, -1
}

// TestClusterTraceStitch is the tentpole's acceptance path: a solve forwarded
// through a 3-node loopback cluster must yield, via GET /cluster/v1/trace/{id},
// one stitched tree with spans from at least two nodes — then, with the
// owner killed, a still-served partial trace that names the dead member.
func TestClusterTraceStitch(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	entry := nodes[0]
	req, ownerIdx := remoteOwnedRequest(t, nodes, entry)
	owner := nodes[ownerIdx]

	const traceID = "stitch-acceptance-1"
	resp, body := postJSON(t, "http://"+entry.addr+"/v1/solve", req,
		map[string]string{"X-Request-Id": traceID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}
	if peer := resp.Header.Get("X-Cluster-Peer"); peer != owner.addr {
		t.Fatalf("served by %s, want owner %s", peer, owner.addr)
	}

	stitched := getStitchedTrace(t, entry.addr, traceID, http.StatusOK)
	if len(stitched.Missing) != 0 {
		t.Fatalf("missing members on a healthy cluster: %v", stitched.Missing)
	}
	if len(stitched.Nodes) < 2 {
		t.Fatalf("fragments from %v, want at least entry and owner", stitched.Nodes)
	}
	roots := obs.Stitch(stitched.Fragments)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1 fully-linked tree:\n%s", len(roots), stitched.Tree)
	}
	if got := obs.Nodes(roots); len(got) < 2 {
		t.Fatalf("stitched tree spans nodes %v, want ≥ 2", got)
	}
	if obs.SpanCount(roots) < 3 {
		t.Fatalf("stitched tree has %d spans, want ≥ 3 (root, forward, peer root):\n%s",
			obs.SpanCount(roots), stitched.Tree)
	}
	for _, want := range []string{"cluster-solve @" + entry.addr, "forward @" + entry.addr,
		"peer=" + owner.addr, "@" + owner.addr} {
		if !strings.Contains(stitched.Tree, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, stitched.Tree)
		}
	}

	// The same lookup through the owner's gateway must collect the entry
	// node's fragment symmetrically.
	fromOwner := getStitchedTrace(t, owner.addr, traceID, http.StatusOK)
	if len(fromOwner.Nodes) < 2 {
		t.Fatalf("owner-side stitch saw nodes %v, want ≥ 2", fromOwner.Nodes)
	}

	// Kill the owner: its fragments are gone with its memory, but the trace
	// must still be served, partial, with the dead member reported missing.
	owner.kill(t)
	partial := getStitchedTrace(t, entry.addr, traceID, http.StatusOK)
	if len(partial.Missing) != 1 || partial.Missing[0] != owner.addr {
		t.Fatalf("missing = %v, want [%s]", partial.Missing, owner.addr)
	}
	if len(partial.Fragments) == 0 || partial.Tree == "" {
		t.Fatal("partial trace is empty")
	}
	for _, n := range partial.Nodes {
		if n == owner.addr {
			t.Fatal("dead owner listed as contributing node")
		}
	}

	// Unknown trace: 404 even when members answer.
	getStitchedTrace(t, entry.addr, "no-such-trace", http.StatusNotFound)
}

// getStitchedTrace fetches /cluster/v1/trace/{id} expecting wantStatus, and
// decodes the body when it is a 200.
func getStitchedTrace(t *testing.T, addr, id string, wantStatus int) *StitchedTrace {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/cluster/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET trace %s: status %d (want %d): %s", id, resp.StatusCode, wantStatus, body)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var st StitchedTrace
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// TestForwardDurationMetric: a forwarded solve lands one observation in the
// outcome="ok" bucket of the forward-duration histogram, and every outcome
// label is exposed even before being seen. The trace-store series must be
// present too.
func TestForwardDurationMetric(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	entry := nodes[0]
	req, _ := remoteOwnedRequest(t, nodes, entry)
	resp, body := postJSON(t, "http://"+entry.addr+"/v1/solve", req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}
	metrics := getBody(t, "http://"+entry.addr+"/metrics")
	if got := metricValue(t, metrics, `solverd_cluster_forward_duration_seconds_count{outcome="ok"}`); got < 1 {
		t.Errorf(`outcome="ok" count = %g, want ≥ 1`, got)
	}
	for _, outcome := range []string{"hedge_win", "retry", "fallback"} {
		series := fmt.Sprintf(`solverd_cluster_forward_duration_seconds_count{outcome=%q}`, outcome)
		if got := metricValue(t, metrics, series); got != 0 {
			t.Errorf("%s = %g, want 0 in this test", series, got)
		}
	}
	if got := metricValue(t, metrics, "solverd_trace_store_spans"); got < 1 {
		t.Errorf("solverd_trace_store_spans = %g, want ≥ 1", got)
	}
	if metricValue(t, metrics, "solverd_trace_store_evictions_total") != 0 {
		t.Error("evictions on an uncapped test recorder")
	}
}

// TestOutboundHeaderPropagation audits every outbound request the fabric
// makes — forwards (hedged or not), peer fills, health probes, and trace
// fragment collection — against a header-recording fake peer: all must carry
// X-Request-Id and, when configured, X-Cluster-Secret; forwards must carry
// X-Parent-Span naming their forward span.
func TestOutboundHeaderPropagation(t *testing.T) {
	const secret = "audit-secret"
	var mu sync.Mutex
	seen := map[string]http.Header{} // path → last request headers
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.URL.Path] = r.Header.Clone()
		mu.Unlock()
		switch {
		case r.URL.Path == "/healthz":
			w.WriteHeader(http.StatusOK)
		case strings.HasPrefix(r.URL.Path, "/debug/traces/"):
			http.Error(w, `{"error":"no"}`, http.StatusNotFound)
		case r.URL.Path == "/cluster/v1/export":
			http.Error(w, `{"error":"no"}`, http.StatusNotFound)
		default:
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{}`))
		}
	}))
	defer fake.Close()
	fakeAddr := strings.TrimPrefix(fake.URL, "http://")

	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := newTestServerForGateway(t, logger)
	gw, err := New(srv, Config{
		Self:   "127.0.0.1:1",
		Peers:  []string{"127.0.0.1:1", fakeAddr},
		Secret: secret,
		Logger: logger,
	})
	if err != nil {
		t.Fatal(err)
	}

	tr := telemetry.New("audit-trace-1", nil)
	root := tr.StartRoot("audit")
	defer root.End()
	ctx := telemetry.WithTrace(context.Background(), tr)

	// 1. Forward (the hedge path is the same function with hedge=true).
	res := gw.forwardOne(ctx, fakeAddr, "/v1/solve", []byte(`{}`), false, nil)
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("forwardOne: %+v", res)
	}
	// 2. Peer fill.
	filler := &peerFiller{g: gw}
	fillSpan := tr.StartSpan("peer-fill")
	filler.fetch(ctx, fakeAddr, []byte(`{}`), fillSpan.ID())
	fillSpan.End()
	// 3. Health probe.
	if !gw.members.probe(ctx, fakeAddr) {
		t.Fatal("probe failed against the fake peer")
	}
	// 4. Trace fragment collection.
	if _, ok := gw.fetchTraceFragments(ctx, fakeAddr, "audit-trace-1"); !ok {
		t.Fatal("fetchTraceFragments treated a clean 404 as failure")
	}

	mu.Lock()
	defer mu.Unlock()
	checks := []struct {
		path       string
		wantParent bool
	}{
		{"/v1/solve", true},
		{"/cluster/v1/export", true},
		{"/healthz", false},
		{"/debug/traces/audit-trace-1", false},
	}
	for _, c := range checks {
		h, ok := seen[c.path]
		if !ok {
			t.Errorf("no outbound request hit %s", c.path)
			continue
		}
		if id := h.Get("X-Request-Id"); !telemetry.ValidID(id) {
			t.Errorf("%s: X-Request-Id %q invalid or missing", c.path, id)
		}
		if got := h.Get("X-Cluster-Secret"); got != secret {
			t.Errorf("%s: X-Cluster-Secret = %q, want the configured secret", c.path, got)
		}
		if c.wantParent {
			if p := h.Get("X-Parent-Span"); !telemetry.ValidID(p) {
				t.Errorf("%s: X-Parent-Span %q invalid or missing", c.path, p)
			}
		}
	}
	if got := seen["/v1/solve"].Get("X-Request-Id"); got != "audit-trace-1" {
		t.Errorf("forward propagated X-Request-Id %q, want the caller's trace ID", got)
	}
	if got := seen["/v1/solve"].Get("X-Cluster-Forwarded"); got == "" {
		t.Error("forward did not mark the hop with X-Cluster-Forwarded")
	}
}

// TestClusterTraceSecret: with a secret configured, the stitch endpoint is
// part of the gated fabric surface.
func TestClusterTraceSecret(t *testing.T) {
	const secret = "trace-secret"
	nodes := startCluster(t, 2, func(c *Config) { c.Secret = secret })
	entry := nodes[0]

	// Retain something to ask for.
	resp, _ := postJSON(t, "http://"+entry.addr+"/v1/solve",
		solveRequest(0.7, 40), map[string]string{"X-Request-Id": "sec-trace-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}

	r, err := http.Get("http://" + entry.addr + "/cluster/v1/trace/sec-trace-1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusForbidden {
		t.Fatalf("trace without secret: status %d, want 403", r.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, "http://"+entry.addr+"/cluster/v1/trace/sec-trace-1", nil)
	req.Header.Set(headerSecret, secret)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(r2.Body)
		t.Fatalf("trace with secret: status %d: %s", r2.StatusCode, b)
	}
}

// newTestServerForGateway builds a minimal local server for direct gateway
// method tests (no listener needed).
func newTestServerForGateway(t *testing.T, logger *slog.Logger) *server.Server {
	t.Helper()
	return server.New(server.Config{Logger: logger,
		Recorder: obs.New(obs.Config{Node: "audit-local", SampleRate: 1})})
}
