package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/telemetry"
)

// membership tracks which members are serving and maintains the routing ring
// over the live ones. Each peer is probed with GET /healthz every
// ProbeInterval: FailAfter consecutive failures mark it down, RecoverAfter
// consecutive successes bring it back, and every transition rebuilds the
// ring (an atomic pointer swap — routing never blocks on probing). The local
// node is always a member; membership starts optimistic (everyone up) so a
// cold cluster routes correctly before the first probe round completes.
type membership struct {
	self         string
	peers        []string // remote members, no self
	virtualNodes int
	interval     time.Duration
	failAfter    int
	recoverAfter int
	client       *http.Client
	logger       *slog.Logger
	// secret is attached to probes as X-Cluster-Secret when set, so a probe
	// is a first-class fabric request like any forward or fill. (/healthz
	// itself is open, but symmetric headers keep traces orphan-free.)
	secret string
	// jn receives membership-change and ring-rebuild events. Nil-safe; the
	// gateway sets it before start.
	jn *journal.Journal

	states map[string]*memberState

	// ringMu serializes transitions (setUp + rebuild) so concurrent probe
	// goroutines cannot publish rings out of order; readers use the atomic
	// pointer and never take it.
	ringMu sync.Mutex
	ring   atomic.Pointer[Ring]

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

type memberState struct {
	up atomic.Bool
	// consecFail/consecOK are touched only by the peer's probe goroutine.
	consecFail, consecOK int
}

func newMembership(self string, peers []string, virtualNodes int,
	interval time.Duration, failAfter, recoverAfter int,
	client *http.Client, logger *slog.Logger, secret string) *membership {
	m := &membership{
		self:         self,
		peers:        peers,
		virtualNodes: virtualNodes,
		interval:     interval,
		failAfter:    failAfter,
		recoverAfter: recoverAfter,
		client:       client,
		logger:       logger,
		secret:       secret,
		states:       make(map[string]*memberState, len(peers)),
		stop:         make(chan struct{}),
	}
	for _, p := range peers {
		st := &memberState{}
		st.up.Store(true)
		m.states[p] = st
	}
	m.rebuild()
	return m
}

// Ring returns the current routing ring (immutable; safe to hold).
func (m *membership) Ring() *Ring { return m.ring.Load() }

// peerUp reports whether the membership currently considers peer live.
func (m *membership) peerUp(peer string) bool {
	if peer == m.self {
		return true
	}
	if st, ok := m.states[peer]; ok {
		return st.up.Load()
	}
	return false
}

// upPeers returns the live remote members, in configuration order.
func (m *membership) upPeers() []string {
	out := make([]string, 0, len(m.peers))
	for _, p := range m.peers {
		if m.states[p].up.Load() {
			out = append(out, p)
		}
	}
	return out
}

// rebuild recomputes the ring from the live member set.
func (m *membership) rebuild() {
	nodes := append([]string{m.self}, m.upPeers()...)
	m.ring.Store(NewRing(nodes, m.virtualNodes))
}

// setUp forces a peer's liveness (probe transitions and tests both land
// here); a change rebuilds the ring.
func (m *membership) setUp(peer string, up bool) {
	st, ok := m.states[peer]
	if !ok {
		return
	}
	m.ringMu.Lock()
	if st.up.Load() == up {
		m.ringMu.Unlock()
		return
	}
	st.up.Store(up)
	m.rebuild()
	m.ringMu.Unlock()
	ring := m.Ring()
	m.logger.Info("cluster: membership change",
		"peer", peer, "up", up, "ring", ring.String())
	dir := "down"
	if up {
		dir = "up"
	}
	m.jn.Append(journal.TypeMembership,
		fmt.Sprintf("peer %s marked %s", peer, dir), journal.Event{
			Attrs: []journal.Attr{
				{Key: "peer", Value: peer},
				{Key: "up", Value: strconv.FormatBool(up)},
			},
		})
	m.jn.Append(journal.TypeRingRebuild,
		fmt.Sprintf("routing ring rebuilt over %d member(s)", ring.Len()),
		journal.Event{
			Attrs: []journal.Attr{
				{Key: "nodes", Value: strings.Join(ring.Nodes(), ",")},
				{Key: "cause_peer", Value: peer},
			},
		})
}

// start launches one probe goroutine per remote peer; stopMembership (or a
// cancelled ctx) ends them.
func (m *membership) start(ctx context.Context) {
	for _, p := range m.peers {
		m.wg.Add(1)
		go m.probeLoop(ctx, p)
	}
}

// stopMembership halts probing and waits for the probe goroutines.
func (m *membership) stopMembership() {
	m.once.Do(func() { close(m.stop) })
	m.wg.Wait()
}

func (m *membership) probeLoop(ctx context.Context, peer string) {
	defer m.wg.Done()
	st := m.states[peer]
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-m.stop:
			return
		case <-ticker.C:
		}
		if m.probe(ctx, peer) {
			st.consecFail, st.consecOK = 0, st.consecOK+1
			if !st.up.Load() && st.consecOK >= m.recoverAfter {
				m.setUp(peer, true)
			}
		} else {
			st.consecOK, st.consecFail = 0, st.consecFail+1
			if st.up.Load() && st.consecFail >= m.failAfter {
				m.setUp(peer, false)
			}
		}
	}
}

// probe performs one GET /healthz round-trip. Probes carry a fresh
// X-Request-Id (and the cluster secret when configured) like every other
// outbound fabric request, so a probe is attributable in the peer's access
// log and never shows up as an anonymous hit.
func (m *membership) probe(ctx context.Context, peer string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/healthz", nil)
	if err != nil {
		return false
	}
	req.Header.Set("X-Request-Id", telemetry.NewID())
	if m.secret != "" {
		req.Header.Set(headerSecret, m.secret)
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
