package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// headerRedirected marks an admission redirect: a hop the sender chose by
// advertised headroom after its own gate refused the request. The receiver
// serves it unconditionally — a second hop could ping-pong between two
// saturated nodes — so redirects are one-hop by construction.
const headerRedirected = "X-Cluster-Redirected"

// headroomView is the gateway's cached slice of the fleet self-model used to
// pick redirect targets: which remote peers currently advertise positive
// predicted headroom. It is refreshed at most once per RedirectTTL (sheds are
// burst-shaped; per-request fan-out would hammer saturated peers hardest) and
// consumed optimistically — each redirect decrements the target's cached
// headroom so a burst spreads instead of dogpiling the roomiest peer.
type headroomView struct {
	mu       sync.Mutex
	ttl      time.Duration
	fetched  time.Time
	headroom map[string]int // remote peer → last advertised headroom
}

// redirectCandidates returns the remote peers to try, roomiest first. A
// stale view is refreshed inline (serialized by the mutex, bounded by the
// probe-sized per-peer timeout) against /v1/self of every up peer.
func (g *Gateway) redirectCandidates(r *http.Request) []string {
	v := &g.headroom
	v.mu.Lock()
	defer v.mu.Unlock()
	if time.Since(v.fetched) >= v.ttl || v.headroom == nil {
		g.refreshHeadroomLocked(r)
	}
	out := make([]string, 0, len(v.headroom))
	for peer, h := range v.headroom {
		if h > 0 && g.members.peerUp(peer) {
			out = append(out, peer)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if v.headroom[out[i]] != v.headroom[out[j]] {
			return v.headroom[out[i]] > v.headroom[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// consumeHeadroom charges one redirected request against the cached view.
func (g *Gateway) consumeHeadroom(peer string) {
	v := &g.headroom
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.headroom[peer]; ok {
		v.headroom[peer] = h - 1
	}
}

// refreshHeadroomLocked re-fans the fleet self view (view mutex held). Peers
// that are down, unready or answer without a ready model advertise no
// headroom.
func (g *Gateway) refreshHeadroomLocked(r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ProbeTimeout)
	defer cancel()
	fresh := make(map[string]int, len(g.remotePeers))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, peer := range g.remotePeers {
		if !g.members.peerUp(peer) {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			self, ok := g.fetchSelf(ctx, peer)
			if !ok || !self.Ready {
				return
			}
			mu.Lock()
			fresh[peer] = self.Headroom
			mu.Unlock()
		}(peer)
	}
	wg.Wait()
	g.headroom.headroom = fresh
	g.headroom.fetched = time.Now()
}

// admitOrDivert is the routing-layer admission gate wrapped around a local
// solve: admitted requests run local() unchanged; a refusal (enforce mode,
// past the predicted knee) is first redirected to a ring peer with positive
// advertised headroom — breaker- and secret-aware, via the same forwarding
// machinery as routing — and shed with 429 + Retry-After only when the whole
// fleet is out of headroom. Either refusal drops the request's self-model
// sample: this node did no solve work.
func (g *Gateway) admitOrDivert(w http.ResponseWriter, r *http.Request, path string, body []byte, local func()) {
	adm := g.local.Admission()
	if r.Header.Get(headerRedirected) != "" && g.trustedHop(r) {
		// One-hop rule: the sender already consulted our advertised headroom.
		local()
		return
	}
	dec := adm.Evaluate()
	if dec.Admit {
		local()
		return
	}
	server.DropSample(r.Context())
	if g.redirectOverloaded(w, r, path, body) {
		adm.RecordRedirected()
		return
	}
	adm.RecordShed()
	telemetry.FromContext(r.Context()).SetAttr("admission", "shed")
	g.local.WriteShed(w, dec)
}

// admitShedOnly gates an entry point that cannot be redirected (deep-solve
// coordination and sweep fan-out are pinned to the receiving node): admit,
// or shed with 429 + Retry-After and report false.
func (g *Gateway) admitShedOnly(w http.ResponseWriter, r *http.Request) bool {
	adm := g.local.Admission()
	dec := adm.Evaluate()
	if dec.Admit {
		return true
	}
	server.DropSample(r.Context())
	adm.RecordShed()
	telemetry.FromContext(r.Context()).SetAttr("admission", "shed")
	g.local.WriteShed(w, dec)
	return false
}

// redirectOverloaded tries each headroom candidate in turn and relays the
// first answer. Transport errors and 5xx feed the peer's breaker and fail
// over to the next candidate; reported=true means the client got a response.
func (g *Gateway) redirectOverloaded(w http.ResponseWriter, r *http.Request, path string, body []byte) bool {
	candidates := g.redirectCandidates(r)
	if len(candidates) == 0 {
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ForwardTimeout)
	defer cancel()
	redirected := http.Header{headerRedirected: []string{g.cfg.Self}}
	for _, peer := range candidates {
		ps := g.peer(peer)
		if ps == nil || !ps.breaker.allow(time.Now()) {
			continue
		}
		res := g.forwardOne(ctx, peer, path, body, false, redirected)
		switch {
		case res.good():
			ps.breaker.success()
		case ctx.Err() != nil:
			ps.breaker.cancelProbe()
			return false
		default:
			g.metrics.forwardFailures.Add(1)
			if opened := ps.breaker.failure(time.Now()); opened {
				g.cfg.Logger.Warn("cluster: circuit breaker opened", "peer", peer)
			}
			continue
		}
		g.consumeHeadroom(peer)
		g.metrics.redirects.Add(1)
		telemetry.FromContext(r.Context()).SetAttr("admission", "redirected")
		g.jn.Append(journal.TypeRedirect,
			fmt.Sprintf("admission-refused request redirected to %s", peer),
			journal.Event{
				TraceID: telemetry.FromContext(r.Context()).ID(),
				Attrs:   []journal.Attr{{Key: "peer", Value: peer}, {Key: "path", Value: path}},
			})
		w.Header().Set(headerPeer, res.peer)
		if ct := res.contentType; ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(res.status)
		w.Write(res.body)
		return true
	}
	return false
}
