package cluster

import (
	"testing"
	"time"
)

// TestBreakerProbeLifecycle walks the half-open probe slot through every exit
// path: taken, refused while held, released by a verdict, and — the case
// that used to wedge the breaker forever — released without a verdict when
// the probe request is abandoned.
func TestBreakerProbeLifecycle(t *testing.T) {
	t0 := time.Now()
	b := newBreaker(1, time.Second)

	if opened := b.failure(t0); !opened {
		t.Fatal("first failure at threshold 1 should open the breaker")
	}
	if b.allow(t0.Add(500 * time.Millisecond)) {
		t.Fatal("allowed during cooldown")
	}
	// A best-effort (fill) check past cooldown must neither be admitted nor
	// consume the probe slot.
	if b.allowNonProbe() {
		t.Fatal("non-probe admitted while open")
	}
	if !b.allow(t0.Add(2 * time.Second)) {
		t.Fatal("probe refused after cooldown (did allowNonProbe consume the slot?)")
	}
	if b.allow(t0.Add(2 * time.Second)) {
		t.Fatal("second concurrent probe admitted")
	}

	// Abandoning the probe (hedge race lost, context canceled) releases the
	// slot without a verdict; the elapsed cooldown admits the next probe
	// immediately.
	b.cancelProbe()
	if st, _ := b.snapshot(); st != breakerOpen {
		t.Fatalf("state after abandoned probe = %v, want open", st)
	}
	if !b.allow(t0.Add(2 * time.Second)) {
		t.Fatal("breaker wedged after an abandoned probe")
	}

	// A real verdict still works: failure re-opens, success closes.
	if opened := b.failure(t0.Add(2 * time.Second)); !opened {
		t.Fatal("failed probe should re-open the breaker")
	}
	if !b.allow(t0.Add(4 * time.Second)) {
		t.Fatal("probe refused after second cooldown")
	}
	b.success()
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if !b.allowNonProbe() {
		t.Fatal("non-probe refused while closed")
	}
	// cancelProbe on a closed breaker (a request launched while closed and
	// then abandoned) is a no-op.
	b.cancelProbe()
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("cancelProbe reopened a closed breaker: %v", st)
	}
}
