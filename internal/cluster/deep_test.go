package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/modelio"
)

// TestDeepChunks checks the chunk planner's geometry: chunks cover (0, maxN]
// contiguously, never exceed the part count, and every interior boundary is
// a stride multiple — the alignment that makes the distributed row set
// identical to a single-node decimated solve.
func TestDeepChunks(t *testing.T) {
	cases := []struct{ maxN, stride, parts int }{
		{2000, 7, 3}, {1, 1, 3}, {100, 100, 4}, {1000, 3, 1},
		{999, 10, 5}, {10, 1, 16}, {1_000_000, 245, 3},
	}
	for _, tc := range cases {
		chunks := deepChunks(tc.maxN, tc.stride, tc.parts)
		if len(chunks) == 0 || len(chunks) > tc.parts {
			t.Fatalf("deepChunks(%d,%d,%d) = %v: want 1..%d chunks",
				tc.maxN, tc.stride, tc.parts, chunks, tc.parts)
		}
		prev := 0
		for i, ch := range chunks {
			if ch[0] != prev || ch[1] <= ch[0] {
				t.Fatalf("deepChunks(%d,%d,%d) chunk %d = %v: not contiguous after %d",
					tc.maxN, tc.stride, tc.parts, i, ch, prev)
			}
			if i < len(chunks)-1 && ch[1]%tc.stride != 0 {
				t.Fatalf("deepChunks(%d,%d,%d) interior boundary %d not stride-aligned",
					tc.maxN, tc.stride, tc.parts, ch[1])
			}
			prev = ch[1]
		}
		if prev != tc.maxN {
			t.Fatalf("deepChunks(%d,%d,%d) ends at %d", tc.maxN, tc.stride, tc.parts, prev)
		}
	}
}

// deepStream is one parsed /v1/solve?deep=1 NDJSON response.
type deepStream struct {
	header  modelio.DeepHeader
	rows    []modelio.DeepRow
	trailer *modelio.DeepTrailer
	errLine string
}

// deepSolve posts a deep solve to addr and parses the NDJSON stream.
func deepSolve(t *testing.T, addr string, req *modelio.SolveRequest) *deepStream {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/solve?deep=1", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deep solve: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("deep solve: content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("deep solve: empty stream")
	}
	out := &deepStream{}
	if err := json.Unmarshal(sc.Bytes(), &out.header); err != nil {
		t.Fatalf("deep solve: decoding header: %v", err)
	}
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			N     int    `json:"n"`
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("deep solve: bad stream line %q: %v", line, err)
		}
		switch {
		case probe.Error != "":
			out.errLine = probe.Error
		case probe.Done:
			var tr modelio.DeepTrailer
			if err := json.Unmarshal(line, &tr); err != nil {
				t.Fatal(err)
			}
			out.trailer = &tr
		default:
			var row modelio.DeepRow
			if err := json.Unmarshal(line, &row); err != nil {
				t.Fatal(err)
			}
			out.rows = append(out.rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// deepReference solves the same request decimated on one in-process solver
// and returns its stored rows.
func deepReference(t *testing.T, req *modelio.SolveRequest) *core.Result {
	t.Helper()
	m := req.Model
	sol, err := core.NewMultiServerSolver(m, core.MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sol.Release)
	if req.Decimate > 1 {
		if err := sol.Decimate(req.Decimate); err != nil {
			t.Fatal(err)
		}
	}
	if err := sol.Run(req.MaxN); err != nil {
		t.Fatal(err)
	}
	return sol.Result()
}

// assertDeepMatches checks a distributed deep stream against the single-node
// decimated reference, bit for bit.
func assertDeepMatches(t *testing.T, got *deepStream, want *core.Result) {
	t.Helper()
	if got.errLine != "" {
		t.Fatalf("deep stream carries error %q", got.errLine)
	}
	if got.trailer == nil || !got.trailer.Done {
		t.Fatal("deep stream has no trailer: incomplete")
	}
	if got.trailer.Rows != len(got.rows) {
		t.Fatalf("trailer counts %d rows, stream carried %d", got.trailer.Rows, len(got.rows))
	}
	if len(got.rows) != want.Len() {
		t.Fatalf("distributed solve stored %d rows, single-node stored %d", len(got.rows), want.Len())
	}
	for i, row := range got.rows {
		if row.N != want.N[i] {
			t.Fatalf("row %d is population %d, want %d", i, row.N, want.N[i])
		}
		if row.X != want.X[i] || row.R != want.R[i] || row.Cycle != want.Cycle[i] {
			t.Fatalf("n=%d: distributed row differs from single-node: X %v vs %v, R %v vs %v",
				row.N, row.X, want.X[i], row.R, want.R[i])
		}
		for k := range want.StationNames {
			if row.QueueLen[k] != want.QueueLen[i][k] || row.Util[k] != want.Util[i][k] ||
				row.Residence[k] != want.Residence[i][k] || row.Demands[k] != want.Demands[i][k] {
				t.Fatalf("n=%d station %d: distributed row differs from single-node", row.N, k)
			}
		}
	}
}

// TestClusterDeepSolve pipelines a decimated deep solve across three nodes
// and checks the streamed rows are bit-identical to a single-node decimated
// solve — the checkpoint handoff between members preserves the recursion
// exactly. A stride that does not divide maxN exercises the final-row commit.
func TestClusterDeepSolve(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	req := solveRequest(0.75, 2000)
	req.Decimate = 7

	got := deepSolve(t, nodes[0].addr, req)
	if got.header.Stride != 7 || got.header.MaxN != 2000 {
		t.Fatalf("header stride/maxN = %d/%d, want 7/2000", got.header.Stride, got.header.MaxN)
	}
	if got.trailer == nil || got.trailer.Chunks != 3 {
		t.Fatalf("trailer = %+v, want 3 chunks across 3 members", got.trailer)
	}
	assertDeepMatches(t, got, deepReference(t, req))

	// A shallow request with no explicit decimate runs dense (auto stride 1).
	shallow := solveRequest(0.75, 50)
	gotShallow := deepSolve(t, nodes[0].addr, shallow)
	if gotShallow.header.Stride != 1 {
		t.Fatalf("auto stride for maxN 50 = %d, want 1", gotShallow.header.Stride)
	}
	assertDeepMatches(t, gotShallow, deepReference(t, shallow))
}

// TestClusterDeepSolveMemberDeath kills the member assigned the middle chunk
// and checks the pipeline completes bit-identically anyway. Probing is
// disabled, so the coordinator discovers the death only when the chunk
// dispatch fails — mid-pipeline, with chunk 0 already solved and its
// checkpoint shipped — and must resume the dead member's chunk from that same
// checkpoint on the next candidate.
func TestClusterDeepSolveMemberDeath(t *testing.T) {
	nodes := startCluster(t, 3, func(c *Config) {
		c.ProbeInterval = time.Hour
	})
	entry := nodes[0]

	// Find a request whose ring walk assigns the middle chunk (index 1) to a
	// remote member, so its death forces a remote dispatch failure.
	var req *modelio.SolveRequest
	var victim *testNode
	for i := 0; i < 400 && victim == nil; i++ {
		cand := solveRequest(0.3+float64(i)*0.01, 2000)
		cand.Decimate = 7
		members := entry.gw.Ring().Owners(keyOf(t, cand), 3)
		if len(members) != 3 || members[1] == entry.addr {
			continue
		}
		for _, n := range nodes {
			if n.addr == members[1] {
				req, victim = cand, n
			}
		}
	}
	if victim == nil {
		t.Fatal("could not find a key whose middle chunk lands on a remote member")
	}
	victim.kill(t)

	got := deepSolve(t, entry.addr, req)
	assertDeepMatches(t, got, deepReference(t, req))

	// The coordinator must have recorded the failed dispatch to the dead
	// member before failing over.
	metrics := getBody(t, "http://"+entry.addr+"/metrics")
	if fails := metricValue(t, metrics, "solverd_cluster_forward_failures_total"); fails < 1 {
		t.Fatalf("no forward failure recorded for the dead member (got %v)", fails)
	}
}
