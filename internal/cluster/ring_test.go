package cluster

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/modelio"
	"repro/internal/queueing"
)

// keyCorpus builds a corpus of real solve-cache keys: distinct normalized
// solve requests hashed exactly as the server hashes them, so the stability
// numbers below describe the keys the ring actually routes.
func keyCorpus(t *testing.T, n int) []string {
	t.Helper()
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		req := &modelio.SolveRequest{
			Algorithm: "multiserver",
			Model: &queueing.Model{
				Name:      fmt.Sprintf("corpus-%d", i),
				ThinkTime: 0.5 + float64(i)*1e-3,
				Stations: []queueing.Station{
					{Name: "cpu", Kind: queueing.CPU, Servers: 2, Visits: 1, ServiceTime: 0.02},
					{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.01},
				},
			},
			MaxN: 100,
		}
		if err := req.Normalize(); err != nil {
			t.Fatal(err)
		}
		key, err := req.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	return keys
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingStability is the consistent-hashing contract: adding or removing
// one node remaps only the keys that node gains or loses — about 1/N of the
// corpus — and a removed node's keys move while everyone else's stay put.
func TestRingStability(t *testing.T) {
	keys := keyCorpus(t, 2000)
	for _, tc := range []struct {
		name  string
		nodes int
	}{
		{"3-nodes", 3},
		{"5-nodes", 5},
		{"10-nodes", 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nodes := nodeNames(tc.nodes)
			base := NewRing(nodes, DefaultVirtualNodes)

			// Add one node: every remapped key must now belong to the new
			// node, and the remapped fraction should be near 1/(N+1).
			addedName := "10.0.1.99:8080"
			added := NewRing(append(append([]string{}, nodes...), addedName), DefaultVirtualNodes)
			moved := 0
			for _, k := range keys {
				before, after := base.Owner(k), added.Owner(k)
				if before != after {
					moved++
					if after != addedName {
						t.Fatalf("key remapped from %s to %s, not to the added node", before, after)
					}
				}
			}
			checkFraction(t, "add", moved, len(keys), 1.0/float64(tc.nodes+1))

			// Remove one node: only its keys remap, each to a surviving node.
			removed := nodes[0]
			shrunk := NewRing(nodes[1:], DefaultVirtualNodes)
			moved = 0
			for _, k := range keys {
				before, after := base.Owner(k), shrunk.Owner(k)
				if before == removed {
					moved++
					if after == removed {
						t.Fatalf("key still owned by removed node %s", removed)
					}
					continue
				}
				if before != after {
					t.Fatalf("key not owned by removed node moved: %s -> %s", before, after)
				}
			}
			checkFraction(t, "remove", moved, len(keys), 1.0/float64(tc.nodes))
		})
	}
}

// checkFraction asserts moved/total is within 3x either side of want — wide
// enough for 64 virtual nodes' variance, tight enough to catch a ring that
// remaps half the space.
func checkFraction(t *testing.T, op string, moved, total int, want float64) {
	t.Helper()
	got := float64(moved) / float64(total)
	if got > 3*want || got < want/3 {
		t.Fatalf("%s: remapped fraction %.3f, want about %.3f", op, got, want)
	}
	if math.IsNaN(got) {
		t.Fatalf("%s: no keys", op)
	}
}

// TestRingOwnersDistinctAndStable checks replica selection: Owners returns
// distinct nodes, is deterministic, and is independent of the member list's
// input order.
func TestRingOwnersDistinctAndStable(t *testing.T) {
	nodes := nodeNames(5)
	r1 := NewRing(nodes, 32)
	reversed := make([]string, len(nodes))
	for i, n := range nodes {
		reversed[len(nodes)-1-i] = n
	}
	r2 := NewRing(reversed, 32)
	keys := keyCorpus(t, 50)
	for _, k := range keys {
		o1 := r1.Owners(k, 3)
		o2 := r2.Owners(k, 3)
		if len(o1) != 3 {
			t.Fatalf("got %d owners, want 3", len(o1))
		}
		seen := map[string]bool{}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("owner order depends on input order: %v vs %v", o1, o2)
			}
			if seen[o1[i]] {
				t.Fatalf("duplicate owner in %v", o1)
			}
			seen[o1[i]] = true
		}
	}
	if got := r1.Owners("some-key", 10); len(got) != 5 {
		t.Fatalf("asking for more replicas than members: got %d, want all 5", len(got))
	}
	if (&Ring{}).Owner("k") != "" {
		t.Fatal("empty ring returned an owner")
	}
}

// TestMembershipChurnRace hammers the ring with concurrent readers while
// peers flap, under -race: Owners must always see a consistent immutable
// ring and the local node must never leave it.
func TestMembershipChurnRace(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	self := "127.0.0.1:1"
	peers := []string{"127.0.0.1:2", "127.0.0.1:3", "127.0.0.1:4"}
	m := newMembership(self, peers, 16, time.Hour, 1, 1, nil, logger, "")

	keys := keyCorpus(t, 20)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ring := m.Ring()
				for _, k := range keys {
					owners := ring.Owners(k, 2)
					if len(owners) == 0 {
						t.Error("ring lost every node")
						return
					}
					found := false
					for _, n := range ring.Nodes() {
						if n == self {
							found = true
						}
					}
					if !found {
						t.Error("self missing from ring")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				p := peers[(seed+j)%len(peers)]
				m.setUp(p, j%2 == 0)
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
