package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// eventsFanoutTimeout bounds the fleet event collection round: journal reads
// are small in-memory slices, so a member that cannot answer in this window
// is listed as missing rather than stalling the timeline.
const eventsFanoutTimeout = 5 * time.Second

// maxEventsResponseBytes caps one member's journal payload. The journal's
// per-type caps bound a full dump to a few MiB of JSON, so 32 MiB is far
// past anything legal.
const maxEventsResponseBytes = 32 << 20

// FleetEvents is the GET /cluster/v1/events body: every reachable member's
// retained journal merged into one causally-ordered fleet timeline.
type FleetEvents struct {
	Self string `json:"self"`
	// Nodes lists the members that contributed events; Missing the members
	// that could not be reached (killed or partitioned — their history is
	// absent, the timeline is still served).
	Nodes   []string `json:"nodes"`
	Missing []string `json:"missing,omitempty"`
	// Events is the merged timeline. Each node's own sequence order is
	// preserved exactly (per-node causality is authoritative and immune to
	// clock skew); across nodes, events interleave by wall time.
	Events []journal.Event `json:"events"`
}

// handleEvents serves GET /cluster/v1/events: fan out to every ring member's
// /debug/events (the local journal answers directly), then merge the
// per-node slices into one fleet timeline. The type, since, trace and limit
// query parameters are forwarded to every member and re-applied to the
// merged result, so filters behave identically fleet-wide.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !g.trustedHop(r) {
		g.writeError(w, http.StatusForbidden, "cluster secret required")
		return
	}
	q := r.URL.Query()
	if typ := q.Get("type"); typ != "" && !journal.KnownType(typ) {
		g.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown event type %q", typ))
		return
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			g.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", v))
			return
		}
		limit = n
	}
	ctx, cancel := context.WithTimeout(r.Context(), eventsFanoutTimeout)
	defer cancel()

	type nodeEvents struct {
		node   string
		events []journal.Event
		ok     bool
	}
	results := make([]nodeEvents, 1+len(g.remotePeers))
	results[0] = nodeEvents{node: g.cfg.Self, events: g.localEvents(q), ok: true}
	var wg sync.WaitGroup
	for i, peer := range g.remotePeers {
		wg.Add(1)
		go func(slot int, peer string) {
			defer wg.Done()
			events, ok := g.fetchEvents(ctx, peer, r.URL.RawQuery)
			results[slot] = nodeEvents{node: peer, events: events, ok: ok}
		}(1+i, peer)
	}
	wg.Wait()

	out := FleetEvents{Self: g.cfg.Self}
	var timelines [][]journal.Event
	for _, res := range results {
		if !res.ok {
			out.Missing = append(out.Missing, res.node)
			continue
		}
		out.Nodes = append(out.Nodes, res.node)
		if len(res.events) > 0 {
			timelines = append(timelines, res.events)
		}
	}
	out.Events = mergeTimelines(timelines)
	if limit > 0 && len(out.Events) > limit {
		out.Events = out.Events[len(out.Events)-limit:]
	}
	g.writeJSON(w, http.StatusOK, out)
}

// localEvents reads the local journal under the same query filters the
// remote members apply ("" journal contributes nothing).
func (g *Gateway) localEvents(q map[string][]string) []journal.Event {
	get := func(k string) string {
		if vs := q[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	f := journal.Filter{Type: get("type"), TraceID: get("trace")}
	if v := get("since"); v != "" {
		if since, err := strconv.ParseUint(v, 10, 64); err == nil {
			f.SinceSeq = since
		}
	}
	if v := get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			f.Limit = n
		}
	}
	return g.jn.Events(f)
}

// mergeTimelines k-way merges per-node event slices (each ascending in that
// node's sequence order) into one timeline. The merge only ever consumes a
// slice's head, so a node's own order survives verbatim no matter what its
// clock says; across nodes the earliest wall time (ties broken by node name)
// goes first.
func mergeTimelines(timelines [][]journal.Event) []journal.Event {
	total := 0
	for _, t := range timelines {
		total += len(t)
	}
	if total == 0 {
		return nil
	}
	out := make([]journal.Event, 0, total)
	for len(timelines) > 0 {
		best := 0
		for i := 1; i < len(timelines); i++ {
			h, b := timelines[i][0], timelines[best][0]
			if h.TimeUnixMS < b.TimeUnixMS ||
				(h.TimeUnixMS == b.TimeUnixMS && h.Node < b.Node) {
				best = i
			}
		}
		out = append(out, timelines[best][0])
		timelines[best] = timelines[best][1:]
		if len(timelines[best]) == 0 {
			timelines = append(timelines[:best], timelines[best+1:]...)
		}
	}
	return out
}

// fetchEvents asks one peer for its journal slice. ok=false means the peer
// could not answer (down or erroring); a clean "journal disabled" 404 is
// ok=true with no events.
func (g *Gateway) fetchEvents(ctx context.Context, peer, rawQuery string) ([]journal.Event, bool) {
	url := "http://" + peer + "/debug/events"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false
	}
	id := telemetry.FromContext(ctx).ID()
	if !telemetry.ValidID(id) {
		id = telemetry.NewID()
	}
	req.Header.Set("X-Request-Id", id)
	if g.cfg.Secret != "" {
		req.Header.Set(headerSecret, g.cfg.Secret)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, true
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxEventsResponseBytes))
	if err != nil {
		return nil, false
	}
	var eres server.EventsResponse
	if err := json.Unmarshal(body, &eres); err != nil {
		g.cfg.Logger.Warn("cluster: bad events payload", "peer", peer, "error", err)
		return nil, false
	}
	return eres.Events, true
}
