package cluster

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-peer circuit breaker. threshold consecutive failures open
// it; while open every allow is refused until cooldown passes, then exactly
// one probe request is let through (half-open). The probe's success closes
// the breaker, its failure re-opens it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state    breakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	// opens counts transitions into the open state (metrics).
	opens uint64

	// onTransition, when set (before traffic), observes every state change as
	// (from, to). It is invoked after the breaker's mutex is released so the
	// hook may take its own locks (the gateway journals transitions here).
	onTransition func(from, to breakerState)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// notify invokes the transition hook outside the mutex when the state moved.
func (b *breaker) notify(from, to breakerState) {
	if from != to && b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// allow reports whether a request to the peer may proceed right now.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	from := b.state
	var ok bool
	switch b.state {
	case breakerClosed:
		ok = true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			ok = true
		}
	default: // half-open: one probe at a time
		if !b.probing {
			b.probing = true
			ok = true
		}
	}
	to := b.state
	b.mu.Unlock()
	b.notify(from, to)
	return ok
}

// allowNonProbe reports whether a best-effort request (a peer cache fill)
// may proceed. It never mutates state: only a closed breaker admits, so the
// single half-open probe slot stays reserved for forwarding traffic, whose
// results actually feed a verdict back into the breaker.
func (b *breaker) allowNonProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed
}

// cancelProbe releases an in-flight probe slot without a verdict — the
// request was abandoned (hedge race won by another peer, context canceled),
// not answered. Half-open reverts to open; openedAt is left untouched, so a
// cooldown that already elapsed lets the very next allow probe again.
func (b *breaker) cancelProbe() {
	b.mu.Lock()
	if !b.probing {
		b.mu.Unlock()
		return
	}
	b.probing = false
	from := b.state
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
	}
	to := b.state
	b.mu.Unlock()
	b.notify(from, to)
}

// success records a completed request to the peer.
func (b *breaker) success() {
	b.mu.Lock()
	from := b.state
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
	b.notify(from, breakerClosed)
}

// failure records a failed request; it returns true when this failure opened
// the breaker (for the breaker-opens metric).
func (b *breaker) failure(now time.Time) (opened bool) {
	b.mu.Lock()
	from := b.state
	b.probing = false
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = now
		b.opens++
	} else {
		b.failures++
		if b.state == breakerClosed && b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens++
		}
	}
	to := b.state
	opened = from != breakerOpen && to == breakerOpen
	b.mu.Unlock()
	b.notify(from, to)
	return opened
}

// snapshot returns the state and open count for status/metrics.
func (b *breaker) snapshot() (breakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
