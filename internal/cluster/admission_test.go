package cluster

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/modelio"
	"repro/internal/selfmodel"
	"repro/internal/server"
)

// clusterTruth mirrors the selfmodel ground truth at the test nodes' worker
// count (startClusterTuned boots every server with Workers: 4).
const (
	clusterTruthWorkers = 4
	clusterTruthDW      = 0.010
	clusterTruthDD      = 0.030
	clusterTruthMaxN    = 64
)

// makeNodeReady feeds one node's self-model synthetic ground-truth windows
// until it is ready and returns its predicted MaxSafeN.
func makeNodeReady(t *testing.T, srv *server.Server) int {
	t.Helper()
	dm := core.FuncDemands{K: 2, F: func(k, _ int) float64 {
		if k == 0 {
			return clusterTruthDW
		}
		return clusterTruthDD
	}}
	sol, err := core.NewMVASDSolver(selfmodel.SelfModel(clusterTruthWorkers), dm, core.MVASDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Release()
	if err := sol.Run(clusterTruthMaxN); err != nil {
		t.Fatal(err)
	}
	res := sol.Result()

	m := srv.SelfMonitor()
	var rep *selfmodel.Report
	for _, n := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32} {
		x := res.X[n-1]
		cycle := res.Cycle[n-1]
		lat := make([]time.Duration, 32)
		for i := range lat {
			lat[i] = time.Duration(cycle * float64(time.Second))
		}
		w := selfmodel.Window{
			Elapsed:         time.Second,
			Completions:     x,
			BusySeconds:     x * clusterTruthDW,
			StationSeconds:  x * res.Residence[n-1][0],
			InFlightSeconds: float64(n),
			Latencies:       lat,
		}
		for i := 0; i < m.Config().Estimate.MinSamples; i++ {
			rep = m.ObserveWindow(w)
		}
	}
	if rep == nil || !rep.Ready || rep.MaxSafeN <= 0 {
		t.Fatalf("self-model not ready: %+v", rep)
	}
	return rep.MaxSafeN
}

// TestClusterOverloadRedirectsThenSheds drives one enforce-mode node past its
// predicted knee and checks the fleet's graceful-degradation ladder: first a
// redirect to a ring peer with advertised headroom, then — with the whole
// fleet saturated — a shed with 429 + Retry-After. The client never sees a
// 5xx at any point.
func TestClusterOverloadRedirectsThenSheds(t *testing.T) {
	const redirectTTL = 50 * time.Millisecond
	nodes := startClusterTuned(t, 3,
		func(c *Config) { c.RedirectTTL = redirectTTL },
		func(_ string, c *server.Config) {
			c.Self = selfmodel.Config{MaxN: clusterTruthMaxN}
			c.Admission = admission.Config{Mode: admission.ModeEnforce}
		})
	safe := 0
	for _, n := range nodes {
		safe = makeNodeReady(t, n.srv)
	}

	// Every client-visible status in this test feeds the zero-5xx assertion.
	var mu sync.Mutex
	var statuses []int
	record := func(code int) {
		mu.Lock()
		statuses = append(statuses, code)
		mu.Unlock()
	}

	req := solveRequest(1, 50)
	key := keyOf(t, req)
	owners := nodes[0].gw.Ring().Owners(key, 1)
	var owner *testNode
	for _, n := range nodes {
		if n.addr == owners[0] {
			owner = n
		}
	}
	if owner == nil {
		t.Fatalf("owner %s not among the nodes", owners[0])
	}

	// Saturate the owner: `safe` phantom in-flight requests make the next
	// arrival the one past the predicted safe concurrency.
	for i := 0; i < safe; i++ {
		owner.srv.SelfMonitor().RequestBegin()
	}

	// Overloaded owner, fleet has headroom: the request is redirected to a
	// peer and succeeds — the client sees a plain 200.
	resp, body := postJSON(t, "http://"+owner.addr+"/v1/solve", req, nil)
	record(resp.StatusCode)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("redirected solve: status %d: %s", resp.StatusCode, body)
	}
	servedBy := resp.Header.Get(headerPeer)
	if servedBy == "" || servedBy == owner.addr {
		t.Fatalf("X-Cluster-Peer %q, want a redirect target other than the owner", servedBy)
	}
	var out modelio.SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trajectory == nil || len(out.Trajectory.X) != 50 {
		t.Fatalf("redirected solve truncated: %+v", out.Trajectory)
	}
	metrics := getBody(t, "http://"+owner.addr+"/metrics")
	if v := metricValue(t, metrics, "solverd_admission_redirected_total"); v != 1 {
		t.Errorf("solverd_admission_redirected_total = %v, want 1", v)
	}
	if v := metricValue(t, metrics, "solverd_cluster_redirects_total"); v != 1 {
		t.Errorf("solverd_cluster_redirects_total = %v, want 1", v)
	}
	if v := metricValue(t, metrics, "solverd_admission_shed_total"); v != 0 {
		t.Errorf("solverd_admission_shed_total = %v, want 0 while the fleet has headroom", v)
	}
	// The refusal dropped its self-model sample on the owner: only the
	// phantoms remain in flight.
	if got := owner.srv.SelfMonitor().InFlight(); got != safe {
		t.Errorf("owner in-flight after redirect: %d, want %d phantoms", got, safe)
	}

	// Saturate the rest of the fleet and let the cached headroom view expire:
	// now there is nowhere to run, and the overload answer is a shed.
	for _, n := range nodes {
		if n != owner {
			for i := 0; i < safe; i++ {
				n.srv.SelfMonitor().RequestBegin()
			}
		}
	}
	time.Sleep(redirectTTL + 20*time.Millisecond)

	shedResp, shedBody := postJSON(t, "http://"+owner.addr+"/v1/solve", req, nil)
	record(shedResp.StatusCode)
	if shedResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fleet-exhausted solve: status %d, want 429: %s", shedResp.StatusCode, shedBody)
	}
	if ra, err := strconv.Atoi(shedResp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want an integer >= 1", shedResp.Header.Get("Retry-After"))
	}

	// A burst against the saturated fleet degrades uniformly: every answer is
	// a 429, never a 5xx, regardless of entry node.
	var wg sync.WaitGroup
	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, "http://"+nodes[i%len(nodes)].addr+"/v1/solve", req, nil)
			record(resp.StatusCode)
		}(i)
	}
	wg.Wait()

	metrics = getBody(t, "http://"+owner.addr+"/metrics")
	if v := metricValue(t, metrics, "solverd_admission_shed_total"); v < 1 {
		t.Errorf("solverd_admission_shed_total = %v, want >= 1 after fleet exhaustion", v)
	}

	// The fleet view aggregates the admission counters.
	var fleet modelio.ClusterSelfResponse
	if err := json.Unmarshal(getBody(t, "http://"+owner.addr+"/cluster/v1/self"), &fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.FleetRedirected < 1 || fleet.FleetShed < 1 {
		t.Errorf("fleet admission totals: redirected=%d shed=%d, want both >= 1",
			fleet.FleetRedirected, fleet.FleetShed)
	}

	// Drain the phantoms: the fleet recovers and admits again.
	for _, n := range nodes {
		for i := 0; i < safe; i++ {
			n.srv.SelfMonitor().RequestEnd(10 * time.Millisecond)
		}
	}
	resp, body = postJSON(t, "http://"+owner.addr+"/v1/solve", req, nil)
	record(resp.StatusCode)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain solve: status %d: %s", resp.StatusCode, body)
	}

	for _, code := range statuses {
		if code >= 500 {
			t.Fatalf("client saw a 5xx (%d) during overload; statuses: %v", code, statuses)
		}
	}
}
