package cluster

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/modelio"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// Defaults for Config's zero values.
const (
	DefaultReplication  = 2
	DefaultVirtualNodes = 64
)

// headerForwarded marks an intra-cluster hop: a request carrying it is served
// locally, never re-routed, so forwarding cannot loop even when two nodes
// briefly disagree about the ring.
const headerForwarded = "X-Cluster-Forwarded"

// headerPeer reports, on gateway responses, which node actually served.
const headerPeer = "X-Cluster-Peer"

// headerSecret carries the shared cluster secret on intra-cluster requests
// when Config.Secret is set.
const headerSecret = "X-Cluster-Secret"

// Config tunes one node's gateway.
type Config struct {
	// Self is this node's advertised host:port — the name its peers know it
	// by; it must appear in Peers.
	Self string
	// Peers lists every cluster member (Self included) as host:port.
	Peers []string
	// Replication is how many nodes hold each key: the owner plus R−1
	// replicas (default 2, capped at the member count).
	Replication int
	// VirtualNodes is the ring positions per member (default 64).
	VirtualNodes int
	// ProbeInterval spaces the /healthz probes per peer (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip (default 1s).
	ProbeTimeout time.Duration
	// FailAfter marks a peer down after this many consecutive probe
	// failures (default 2); RecoverAfter brings it back after this many
	// consecutive successes (default 1).
	FailAfter, RecoverAfter int
	// MaxAttempts caps forwarding rounds over a key's candidate peers
	// before falling back to a local solve (default 2).
	MaxAttempts int
	// RetryBackoff is the base delay between forwarding rounds; each round
	// doubles it and adds up to 50% jitter (default 25ms).
	RetryBackoff time.Duration
	// HedgePercentile picks the hedge trigger from the target peer's recent
	// latency window (default 0.9: hedge when the request outlives the
	// peer's p90), clamped to [HedgeMin, HedgeMax] (defaults 25ms, 2s).
	HedgePercentile    float64
	HedgeMin, HedgeMax time.Duration
	// BreakerThreshold consecutive failures open a peer's circuit breaker
	// (default 3); BreakerCooldown is how long it stays open before one
	// half-open probe is allowed (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ForwardTimeout bounds one forwarded request (default 35s — past the
	// server's default solve deadline).
	ForwardTimeout time.Duration
	// FillTimeout bounds a peer cache fill lookup on the cold-solve path
	// (default 2s); fills are best effort, a slow peer must not stall the
	// solve it is trying to speed up.
	FillTimeout time.Duration
	// RedirectTTL bounds how long the gateway trusts a fetched fleet
	// headroom view when redirecting admission-refused requests (default
	// 1s). Sheds come in bursts; caching the view keeps a saturated node
	// from hammering its peers' /v1/self exactly when they are busiest.
	RedirectTTL time.Duration
	// Secret, when set, authenticates the fabric's own protocol: every
	// /cluster/v1/* request and every X-Cluster-Forwarded hop must carry it
	// in X-Cluster-Secret (wrong or missing secret gets a 403, and a forged
	// forwarded header is ignored — the request is routed like any external
	// one). The gateway attaches it to the forwards and fills it sends, so
	// all members must agree on the value. Unset (the default) the fabric
	// protocol is open: run the cluster on a network where every client is
	// trusted, or front it with a separate listener.
	Secret string
	// Logger defaults to slog.Default().
	Logger *slog.Logger
}

func (c *Config) defaults() error {
	if c.Self == "" {
		return errors.New("cluster: config needs Self")
	}
	found := false
	for _, p := range c.Peers {
		if p == c.Self {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("cluster: Self %q is not in Peers %v", c.Self, c.Peers)
	}
	if c.Replication <= 0 {
		c.Replication = DefaultReplication
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HedgePercentile <= 0 || c.HedgePercentile > 1 {
		c.HedgePercentile = 0.9
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 25 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 35 * time.Second
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = 2 * time.Second
	}
	if c.RedirectTTL <= 0 {
		c.RedirectTTL = time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return nil
}

// peerState is the per-remote-peer forwarding state.
type peerState struct {
	breaker *breaker
	latency *latencyTracker
}

// Gateway fronts one solverd node with cluster routing. It installs itself
// as the node's root handler (server.Mount): /v1/solve and /v1/sweep are
// routed by cache key across the ring, /cluster/v1/* serve the fabric's own
// protocol, and every other path falls through to the local mux unchanged.
type Gateway struct {
	cfg         Config
	local       *server.Server
	mux         *http.ServeMux
	members     *membership
	remotePeers []string // cfg.Peers minus Self, sorted
	peers       map[string]*peerState
	client      *http.Client
	metrics     clusterMetrics

	// jn and prof are the local server's event journal and anomaly profile
	// store (both nil-safe): the gateway journals breaker transitions,
	// membership changes, hedges, redirects and deep-chunk failovers, and
	// captures a profile when a breaker trips.
	jn   *journal.Journal
	prof *journal.ProfileStore

	// headroom caches the fleet headroom view the admission gate redirects
	// by (admission.go).
	headroom headroomView
}

// New wires a gateway onto srv: it mounts itself as the root handler,
// installs the peer cache filler and registers the cluster metrics section.
// Call Start to begin health probing (before serving traffic).
func New(srv *server.Server, cfg Config) (*Gateway, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:      cfg,
		local:    srv,
		mux:      http.NewServeMux(),
		peers:    make(map[string]*peerState),
		headroom: headroomView{ttl: cfg.RedirectTTL},
		client: &http.Client{
			Timeout: cfg.ForwardTimeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	g.jn = srv.Journal()
	g.prof = srv.Profiles()
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			continue
		}
		if _, dup := g.peers[p]; dup {
			continue
		}
		g.remotePeers = append(g.remotePeers, p)
		br := newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		br.onTransition = g.breakerTransition(p)
		g.peers[p] = &peerState{
			breaker: br,
			latency: newLatencyTracker(),
		}
	}
	sort.Strings(g.remotePeers)
	probeClient := &http.Client{Timeout: cfg.ProbeTimeout}
	g.members = newMembership(cfg.Self, g.remotePeers, cfg.VirtualNodes,
		cfg.ProbeInterval, cfg.FailAfter, cfg.RecoverAfter, probeClient, cfg.Logger, cfg.Secret)
	g.members.jn = g.jn

	g.mux.Handle("/v1/solve", srv.Instrument("cluster-solve", http.MethodPost, g.handleSolve))
	g.mux.Handle("/v1/sweep", srv.Instrument("cluster-sweep", http.MethodPost, g.handleSweep))
	g.mux.Handle("/cluster/v1/deep", srv.Instrument("cluster-deep", http.MethodPost, g.handleDeepChunk))
	g.mux.Handle("/cluster/v1/export", srv.Instrument("cluster-export", http.MethodPost, g.handleExport))
	g.mux.Handle("/cluster/v1/status", srv.Instrument("cluster-status", http.MethodGet, g.handleClusterStatus))
	g.mux.Handle("/cluster/v1/self", srv.Instrument("cluster-self", http.MethodGet, g.handleSelf))
	g.mux.Handle("/cluster/v1/trace/", srv.Instrument("cluster-trace", http.MethodGet, g.handleTrace))
	g.mux.Handle("/cluster/v1/events", srv.Instrument("cluster-events", http.MethodGet, g.handleEvents))
	g.mux.Handle("/", srv.Handler())

	srv.Mount(g)
	srv.SetPeerFiller(&peerFiller{g: g})
	srv.RegisterMetrics(g.writeMetrics)
	return g, nil
}

// Start begins health probing; probes stop when ctx ends or Stop is called.
func (g *Gateway) Start(ctx context.Context) { g.members.start(ctx) }

// Stop halts probing and waits for the probe goroutines.
func (g *Gateway) Stop() { g.members.stopMembership() }

// Ring returns the current routing ring (for tests and status).
func (g *Gateway) Ring() *Ring { return g.members.Ring() }

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

func (g *Gateway) peer(name string) *peerState { return g.peers[name] }

// breakerTransition builds peer's circuit-breaker transition hook: every
// state change becomes a journal event, and a trip (any state -> open) also
// grabs an anomaly profile — the moment a peer starts failing is exactly when
// the surviving node's own load profile is worth keeping.
func (g *Gateway) breakerTransition(peer string) func(from, to breakerState) {
	return func(from, to breakerState) {
		var profileID string
		if to == breakerOpen && from != breakerOpen {
			profileID, _ = g.prof.Capture(journal.TypeBreaker, "")
		}
		g.jn.Append(journal.TypeBreaker,
			fmt.Sprintf("peer %s breaker %s -> %s", peer, from, to), journal.Event{
				ProfileID: profileID,
				Attrs: []journal.Attr{
					{Key: "peer", Value: peer},
					{Key: "from", Value: from.String()},
					{Key: "to", Value: to.String()},
				},
			})
	}
}

// trustedHop reports whether a request claiming to come from inside the
// fabric (a forwarded hop or a /cluster/v1/* call) really did. With no
// Secret configured every claim is trusted — the documented open-trust mode.
func (g *Gateway) trustedHop(r *http.Request) bool {
	if g.cfg.Secret == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(r.Header.Get(headerSecret)), []byte(g.cfg.Secret)) == 1
}

// maxBodyBytes mirrors the local server's request body cap.
const maxBodyBytes = 8 << 20

// readBody drains the request body under the cluster's own MaxBytesReader
// (the gateway needs the raw bytes to forward verbatim).
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
}

// bodyStatus maps a readBody/decode error to 413 or 400.
func bodyStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeStrict is the gateway-side twin of the server's strict decoding.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return errors.New("decoding request: trailing data after JSON body")
	}
	return nil
}

func (g *Gateway) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		g.cfg.Logger.Error("cluster: writing response", "error", err)
	}
}

func (g *Gateway) writeError(w http.ResponseWriter, code int, msg string) {
	g.writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: msg})
}

// handleSolve routes POST /v1/solve: a forwarded hop (or a key this node
// owns) solves locally through the server engine; anything else forwards to
// the key's owner with hedging, retries and breaker-aware failover, and
// falls back to a local solve when every remote candidate fails — the
// client never sees a 5xx for a routing-layer failure.
func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		g.writeError(w, bodyStatus(err), err.Error())
		return
	}
	var req modelio.SolveRequest
	if err := decodeStrict(body, &req); err != nil {
		g.writeError(w, bodyStatus(err), err.Error())
		return
	}
	if err := req.Normalize(); err != nil {
		g.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	telemetry.FromContext(r.Context()).SetAttr("algorithm", req.Algorithm)
	key, err := req.CacheKey()
	if err != nil {
		g.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if r.URL.Query().Get("deep") != "" {
		// Deep solves pipeline population chunks across the cluster; the
		// receiving node coordinates, so they are never routed or forwarded —
		// the gate can only shed them, not redirect.
		if !g.admitShedOnly(w, r) {
			return
		}
		g.handleDeepSolve(w, r, &req, key)
		return
	}
	local := func() {
		ctx, cancel := g.local.SolveContext(r.Context(), req.TimeoutMS)
		defer cancel()
		resp, err := g.local.Solve(ctx, &req)
		if err != nil {
			g.writeError(w, errStatus(err), err.Error())
			return
		}
		w.Header().Set(headerPeer, g.cfg.Self)
		g.writeJSON(w, http.StatusOK, resp)
	}
	// Every path that would solve on this node's workers runs through the
	// admission gate, which can divert past-the-knee arrivals to a peer with
	// headroom (admission.go). A forwarded hop is gated too — the owner is
	// exactly the node a hot key saturates first — and its refusal flows back
	// through the sender's forward as a non-5xx response.
	serve := func() { g.admitOrDivert(w, r, "/v1/solve", body, local) }
	if r.Header.Get(headerForwarded) != "" && g.trustedHop(r) {
		serve()
		return
	}
	g.route(w, r, key, "/v1/solve", body, serve)
}

// handleSweep routes POST /v1/sweep. The gateway plans the sweep exactly as
// the local engine would — expand the grid, group points by resolved model —
// then routes each group to its own key's owner as a single-point sub-sweep,
// so a grid's groups land on (and warm the caches of) their owners across
// the fabric. Member rows are reassembled in grid order.
func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		g.writeError(w, bodyStatus(err), err.Error())
		return
	}
	var req modelio.SweepRequest
	if err := decodeStrict(body, &req); err != nil {
		g.writeError(w, bodyStatus(err), err.Error())
		return
	}
	if err := req.Normalize(); err != nil {
		g.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.Header.Get(headerForwarded) != "" && g.trustedHop(r) {
		// Routed sub-sweeps are not re-gated: shedding one group would hole
		// the coordinator's grid, and the coordinator's own entry gate
		// already bounded the fan-out's origin.
		g.serveSweepLocal(w, r, &req)
		return
	}
	// The sweep coordinator fans groups from this node, so like deep solves
	// it can only be shed, not redirected.
	if !g.admitShedOnly(w, r) {
		return
	}
	start := time.Now()
	maxN, maxPoints := g.local.Limits()
	if req.MaxN > maxN {
		g.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("max population %d exceeds the server cap %d", req.MaxN, maxN))
		return
	}
	points, err := req.Expand(maxPoints)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	groups := req.PlanSweep(points)
	ctx, cancel := g.local.SolveContext(r.Context(), req.TimeoutMS)
	defer cancel()

	results := make([]modelio.SweepPointResult, len(points))
	// Bound the routed fan-out like the local engine bounds solves: each
	// in-flight group can hold a full peer response body (doubled while a
	// hedge is outstanding), so a goroutine per group would let one big
	// sweep spike coordinator memory without limit.
	workers := g.local.Workers()
	if workers > len(groups) {
		workers = len(groups)
	}
	groupCh := make(chan modelio.SweepGroup)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for grp := range groupCh {
				g.solveGroupRouted(ctx, &req, grp, points, results)
			}
		}()
	}
	for _, grp := range groups {
		groupCh <- grp
	}
	close(groupCh)
	wg.Wait()
	if ctx.Err() != nil {
		g.writeError(w, http.StatusGatewayTimeout, context.Cause(ctx).Error())
		return
	}
	g.writeJSON(w, http.StatusOK, modelio.SweepResponse{
		GridSize:  len(points),
		Points:    results,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (g *Gateway) serveSweepLocal(w http.ResponseWriter, r *http.Request, req *modelio.SweepRequest) {
	ctx, cancel := g.local.SolveContext(r.Context(), req.TimeoutMS)
	defer cancel()
	resp, err := g.local.Sweep(ctx, req)
	if err != nil {
		g.writeError(w, errStatus(err), err.Error())
		return
	}
	w.Header().Set(headerPeer, g.cfg.Self)
	g.writeJSON(w, http.StatusOK, resp)
}

// subSweep derives one group's single-point sweep: the group's resolved
// model with the parent's populations. The owner plans it to the identical
// group key the gateway routed by, so its cache entry is addressable
// cluster-wide.
func subSweep(req *modelio.SweepRequest, p modelio.GridPoint) *modelio.SweepRequest {
	return &modelio.SweepRequest{
		SolveRequest: *req.PointRequest(p),
		Populations:  req.Populations,
	}
}

// groupRouteKey computes the key the sub-sweep's server will cache its one
// group under — the routing key must match the serving key or peer export
// lookups would miss.
func groupRouteKey(sub *modelio.SweepRequest, maxPoints int) (string, error) {
	pts, err := sub.Expand(maxPoints)
	if err != nil {
		return "", err
	}
	kb, err := sub.KeyBase()
	if err != nil {
		return "", err
	}
	return kb.GroupKey(pts[0]), nil
}

// solveGroupRouted answers one planned group through the fabric and fans the
// rows out to the group's member points.
func (g *Gateway) solveGroupRouted(ctx context.Context, req *modelio.SweepRequest,
	grp modelio.SweepGroup, points []modelio.GridPoint, results []modelio.SweepPointResult) {
	fail := func(err error) {
		for _, i := range grp.Members {
			results[i] = modelio.SweepPointResult{Point: points[i], Error: err.Error()}
		}
	}
	sub := subSweep(req, grp.Point)
	_, maxPoints := g.local.Limits()
	key, err := groupRouteKey(sub, maxPoints)
	if err != nil {
		fail(err)
		return
	}
	resp, err := g.sweepViaOwner(ctx, key, sub)
	if err != nil {
		fail(err)
		return
	}
	if len(resp.Points) != 1 {
		fail(fmt.Errorf("cluster: sub-sweep returned %d points (want 1)", len(resp.Points)))
		return
	}
	for _, i := range grp.Members {
		pr := resp.Points[0]
		pr.Point = points[i]
		results[i] = pr
	}
}

// sweepViaOwner answers one sub-sweep: locally when this node owns the key
// (or the ring is empty of remotes), otherwise forwarded through the key's
// candidates with local fallback.
func (g *Gateway) sweepViaOwner(ctx context.Context, key string, sub *modelio.SweepRequest) (*modelio.SweepResponse, error) {
	serveLocal := func() (*modelio.SweepResponse, error) {
		return g.local.Sweep(ctx, sub)
	}
	candidates := g.members.Ring().Owners(key, g.cfg.Replication)
	if len(candidates) == 0 || candidates[0] == g.cfg.Self {
		return serveLocal()
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	res, ok := g.forward(ctx, key, "/v1/sweep", body, candidates)
	if !ok {
		g.metrics.localFallbacks.Add(1)
		return serveLocal()
	}
	if res.status != http.StatusOK {
		return nil, errors.New(peerErrorMessage(res))
	}
	var resp modelio.SweepResponse
	if err := json.Unmarshal(res.body, &resp); err != nil {
		return nil, fmt.Errorf("cluster: decoding peer sweep response: %w", err)
	}
	return &resp, nil
}

// route answers one solve-path request: locally when this node is the key's
// owner, otherwise forwarded to the owner (then replicas) with the full
// failover ladder, and locally as the last resort.
func (g *Gateway) route(w http.ResponseWriter, r *http.Request, key, path string, body []byte, local func()) {
	candidates := g.members.Ring().Owners(key, g.cfg.Replication)
	if len(candidates) == 0 || candidates[0] == g.cfg.Self {
		local()
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ForwardTimeout)
	defer cancel()
	res, ok := g.forward(ctx, key, path, body, candidates)
	if !ok {
		g.metrics.localFallbacks.Add(1)
		telemetry.FromContext(r.Context()).SetAttr("cluster", "local-fallback")
		local()
		return
	}
	telemetry.FromContext(r.Context()).SetAttr("cluster", "forwarded")
	w.Header().Set(headerPeer, res.peer)
	if ct := res.contentType; ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// handleExport serves POST /cluster/v1/export: the peer-fill protocol. A
// known, settled key returns its full trajectory state; anything else is a
// 404 so the asking node just solves cold.
func (g *Gateway) handleExport(w http.ResponseWriter, r *http.Request) {
	if !g.trustedHop(r) {
		g.writeError(w, http.StatusForbidden, "cluster secret required")
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		g.writeError(w, bodyStatus(err), err.Error())
		return
	}
	var req modelio.ExportRequest
	if err := decodeStrict(body, &req); err != nil {
		g.writeError(w, bodyStatus(err), err.Error())
		return
	}
	if err := req.Validate(); err != nil {
		g.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.FillTimeout)
	defer cancel()
	res, cp, ok := g.local.ExportCached(ctx, req.Key)
	if !ok {
		g.writeError(w, http.StatusNotFound, "no cached trajectory for key")
		return
	}
	state, err := modelio.NewTrajectoryState(res, cp)
	if err != nil {
		g.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	g.writeJSON(w, http.StatusOK, state)
}

// clusterStatus is the GET /cluster/v1/status body.
type clusterStatus struct {
	Self        string           `json:"self"`
	Replication int              `json:"replication"`
	RingNodes   []string         `json:"ringNodes"`
	Peers       []peerStatusView `json:"peers"`
}

type peerStatusView struct {
	Peer    string `json:"peer"`
	Up      bool   `json:"up"`
	Breaker string `json:"breaker"`
}

// handleClusterStatus serves GET /cluster/v1/status.
func (g *Gateway) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if !g.trustedHop(r) {
		g.writeError(w, http.StatusForbidden, "cluster secret required")
		return
	}
	st := clusterStatus{
		Self:        g.cfg.Self,
		Replication: g.cfg.Replication,
		RingNodes:   g.members.Ring().Nodes(),
	}
	for _, p := range g.remotePeers {
		state, _ := g.peer(p).breaker.snapshot()
		st.Peers = append(st.Peers, peerStatusView{
			Peer: p, Up: g.members.peerUp(p), Breaker: state.String(),
		})
	}
	g.writeJSON(w, http.StatusOK, st)
}

// errStatus maps locally served engine errors to HTTP statuses, reusing the
// server's own mapping.
func errStatus(err error) int { return server.StatusOf(err) }
