package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// TestClusterFleetTimeline is the fleet-stitch acceptance scenario: three
// nodes journal events (one of them with a badly skewed clock, one with
// journaling disabled entirely), a member is killed, and GET
// /cluster/v1/events on the survivor still serves one merged timeline —
// per-node sequence order preserved verbatim, globally ordered by wall time,
// with the dead member reported missing instead of stalling the collection.
func TestClusterFleetTimeline(t *testing.T) {
	journals := make(map[string]*journal.Journal)
	idx := 0
	nodes := startClusterTuned(t, 3, nil, func(addr string, c *server.Config) {
		i := idx
		idx++
		if i == 2 {
			return // node 2 runs without a journal (the 404-tolerant member)
		}
		cfg := journal.Config{Node: addr}
		if i == 1 {
			// An hour of clock skew: per-node causal order must survive it.
			cfg.Now = func() time.Time { return time.Now().Add(time.Hour) }
		}
		jn := journal.New(cfg)
		journals[addr] = jn
		c.Journal = jn
	})
	entry := nodes[0]

	for i := 0; i < 3; i++ {
		journals[nodes[0].addr].Append(journal.TypeRefit,
			fmt.Sprintf("n0 refit %d", i), journal.Event{TraceID: "trace-n0"})
		journals[nodes[1].addr].Append(journal.TypeDeviationBreach,
			fmt.Sprintf("n1 breach %d", i), journal.Event{})
	}

	getFleet := func(query string) FleetEvents {
		t.Helper()
		var out FleetEvents
		if err := json.Unmarshal(getBody(t, "http://"+entry.addr+"/cluster/v1/events"+query), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// All three members answer: the journal-less node contributes nothing but
	// is not missing.
	out := getFleet("")
	if out.Self != entry.addr {
		t.Errorf("self = %q", out.Self)
	}
	if len(out.Nodes) != 3 || len(out.Missing) != 0 {
		t.Fatalf("nodes = %v, missing = %v", out.Nodes, out.Missing)
	}

	nodes[2].kill(t)
	out = getFleet("")
	if len(out.Missing) != 1 || out.Missing[0] != nodes[2].addr {
		t.Fatalf("missing = %v, want the killed node %s", out.Missing, nodes[2].addr)
	}
	if len(out.Nodes) != 2 {
		t.Fatalf("surviving nodes = %v", out.Nodes)
	}

	// The merged timeline holds both survivors' events, each node's own
	// sequence order intact and the whole ordered by wall time.
	perNode := make(map[string][]journal.Event)
	for i, e := range out.Events {
		perNode[e.Node] = append(perNode[e.Node], e)
		if i > 0 && e.TimeUnixMS < out.Events[i-1].TimeUnixMS {
			t.Errorf("merged timeline not time-ordered at %d", i)
		}
	}
	for _, addr := range []string{nodes[0].addr, nodes[1].addr} {
		evs := perNode[addr]
		if len(evs) < 3 {
			t.Fatalf("node %s contributed %d events, want >= 3", addr, len(evs))
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Errorf("node %s sequence order broken in the merge: %d after %d",
					addr, evs[i].Seq, evs[i-1].Seq)
			}
		}
	}
	// The skewed node's events sort after the others by wall time, yet its
	// internal order above is untouched — the skew-immunity contract.
	if last := out.Events[len(out.Events)-1]; last.Node != nodes[1].addr {
		t.Errorf("timeline tail from %s, want the hour-skewed node %s", last.Node, nodes[1].addr)
	}

	// Filters apply fleet-wide and the limit tails the merged result.
	if out := getFleet("?type=refit"); len(out.Events) != 3 {
		t.Errorf("fleet type filter kept %d events, want the 3 refits", len(out.Events))
	}
	for _, e := range getFleet("?trace=trace-n0").Events {
		if e.TraceID != "trace-n0" {
			t.Errorf("fleet trace filter leaked %+v", e)
		}
	}
	if out := getFleet("?limit=2"); len(out.Events) != 2 {
		t.Errorf("fleet limit kept %d events", len(out.Events))
	}

	// Bad parameters are rejected at the gateway, before any fan-out.
	for _, bad := range []string{"?type=nope", "?limit=-1"} {
		resp, err := http.Get("http://" + entry.addr + "/cluster/v1/events" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestClusterFleetTimelineSecret: with a shared secret the fleet timeline is
// part of the trust boundary.
func TestClusterFleetTimelineSecret(t *testing.T) {
	const secret = "squeamish-ossifrage"
	nodes := startClusterTuned(t, 2,
		func(c *Config) { c.Secret = secret },
		func(addr string, c *server.Config) {
			c.Journal = journal.New(journal.Config{Node: addr})
		})
	entry := nodes[0]

	resp, err := http.Get("http://" + entry.addr + "/cluster/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("events without secret: %d, want 403", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, "http://"+entry.addr+"/cluster/v1/events", nil)
	req.Header.Set(headerSecret, secret)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events with secret: %d, want 200", resp.StatusCode)
	}
	var out FleetEvents
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// The authenticated fan-out reached the peer too — both members present.
	if len(out.Nodes) != 2 || len(out.Missing) != 0 {
		t.Fatalf("nodes = %v, missing = %v (secret not forwarded to peers?)", out.Nodes, out.Missing)
	}
}

// TestFetchSelfReusesCallerTraceID covers the redirect-observability fix: the
// headroom sub-request a redirecting node sends stays under the original
// request's X-Request-Id, so the redirect decision shows up in the same trace
// as the request it diverted. Untraced callers still get a fresh valid id.
func TestFetchSelfReusesCallerTraceID(t *testing.T) {
	nodes := startCluster(t, 2, nil)

	gotIDs := make(chan string, 2)
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotIDs <- r.Header.Get("X-Request-Id")
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{}"))
	}))
	defer fake.Close()
	fakeAddr := fake.Listener.Addr().String()

	traceID := telemetry.NewID()
	ctx := telemetry.WithTrace(context.Background(), telemetry.New(traceID, nil))
	if _, ok := nodes[0].gw.fetchSelf(ctx, fakeAddr); !ok {
		t.Fatal("traced fetchSelf failed")
	}
	if got := <-gotIDs; got != traceID {
		t.Errorf("traced sub-request carried id %q, want the caller's %q", got, traceID)
	}

	if _, ok := nodes[0].gw.fetchSelf(context.Background(), fakeAddr); !ok {
		t.Fatal("untraced fetchSelf failed")
	}
	if got := <-gotIDs; !telemetry.ValidID(got) {
		t.Errorf("untraced sub-request carried invalid id %q", got)
	}
}
