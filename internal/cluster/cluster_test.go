package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/modelio"
	"repro/internal/obs"
	"repro/internal/queueing"
	"repro/internal/server"
)

// testNode is one in-process solverd + gateway on a real loopback listener.
type testNode struct {
	addr   string
	srv    *server.Server
	gw     *Gateway
	rec    *obs.Recorder
	cancel context.CancelFunc
	done   chan error
}

// kill shuts the node down (listener closed, in-flight drained) and waits.
func (n *testNode) kill(t *testing.T) {
	t.Helper()
	n.cancel()
	select {
	case <-n.done:
		close(n.done) // let the cluster-wide cleanup skip this node instantly
	case <-time.After(5 * time.Second):
		t.Fatalf("node %s did not shut down", n.addr)
	}
}

// startCluster boots n nodes on loopback listeners. Listeners are created
// first so every node knows the full peer list before serving. tune may
// adjust each node's cluster config before wiring.
func startCluster(t *testing.T, n int, tune func(c *Config)) []*testNode {
	t.Helper()
	return startClusterTuned(t, n, tune, nil)
}

// startClusterTuned is startCluster with a second hook adjusting each node's
// server config (the admission tests arm the gate and the self-model; the
// journal tests give each node its own event journal named after its addr).
func startClusterTuned(t *testing.T, n int, tune func(c *Config), tuneSrv func(addr string, c *server.Config)) []*testNode {
	t.Helper()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		// SampleRate 1: every test request is retained, so trace assertions
		// never depend on the sampling hash of a particular ID.
		rec := obs.New(obs.Config{Node: addrs[i], SampleRate: 1})
		srvCfg := server.Config{
			CacheSize:       64,
			MaxN:            10_000,
			Workers:         4,
			RequestTimeout:  20 * time.Second,
			ShutdownTimeout: 2 * time.Second,
			Logger:          logger,
			Recorder:        rec,
		}
		if tuneSrv != nil {
			tuneSrv(addrs[i], &srvCfg)
		}
		srv := server.New(srvCfg)
		cfg := Config{
			Self:          addrs[i],
			Peers:         addrs,
			Replication:   2,
			ProbeInterval: 50 * time.Millisecond,
			ProbeTimeout:  250 * time.Millisecond,
			FailAfter:     2,
			RecoverAfter:  1,
			MaxAttempts:   1,
			RetryBackoff:  5 * time.Millisecond,
			// A long hedge floor keeps hedging out of tests that assert
			// which node served; the failover path does not depend on it
			// (dead peers fail fast with a connection error).
			HedgeMin:         2 * time.Second,
			BreakerThreshold: 2,
			BreakerCooldown:  10 * time.Second,
			FillTimeout:      5 * time.Second,
			Logger:           logger,
		}
		if tune != nil {
			tune(&cfg)
		}
		gw, err := New(srv, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		gw.Start(ctx)
		node := &testNode{addr: addrs[i], srv: srv, gw: gw, rec: rec, cancel: cancel, done: make(chan error, 1)}
		go func(ln net.Listener) { node.done <- srv.Serve(ctx, ln) }(listeners[i])
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.cancel()
			select {
			case <-node.done:
			case <-time.After(5 * time.Second):
			}
		}
	})
	return nodes
}

func testModel(thinkTime float64) *queueing.Model {
	return &queueing.Model{
		Name:      "cluster-test",
		ThinkTime: thinkTime,
		Stations: []queueing.Station{
			{Name: "web/cpu", Kind: queueing.CPU, Servers: 4, Visits: 1, ServiceTime: 0.02},
			{Name: "db/disk", Kind: queueing.Disk, Servers: 1, Visits: 2, ServiceTime: 0.004},
		},
	}
}

func solveRequest(thinkTime float64, maxN int) *modelio.SolveRequest {
	return &modelio.SolveRequest{
		Algorithm: "multiserver",
		Model:     testModel(thinkTime),
		MaxN:      maxN,
	}
}

// keyOf computes the cache key exactly as the servers will.
func keyOf(t *testing.T, req *modelio.SolveRequest) string {
	t.Helper()
	cp := *req
	cp.Model = &*req.Model
	if err := cp.Normalize(); err != nil {
		t.Fatal(err)
	}
	key, err := cp.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func postJSON(t *testing.T, url string, body any, extraHeaders map[string]string) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range extraHeaders {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// metricValue extracts one un-labelled (or exactly-labelled) series value
// from a Prometheus text exposition.
func metricValue(t *testing.T, metricsBody []byte, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(metricsBody), "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, series+" ")), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in metrics", series)
	return 0
}

// cacheKeys lists the cache keys visible on a node's /v1/status.
func cacheKeys(t *testing.T, addr string) map[string]bool {
	t.Helper()
	var status struct {
		Cache []struct {
			Key string `json:"key"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(getBody(t, "http://"+addr+"/v1/status"), &status); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, len(status.Cache))
	for _, e := range status.Cache {
		out[e.Key] = true
	}
	return out
}

// TestClusterKeyAffinity sends distinct models through one gateway and
// checks each lands on (and is cached by) exactly the node the shared ring
// names as its owner, with repeats served from that owner's cache.
func TestClusterKeyAffinity(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	entry := nodes[0]

	for i := 0; i < 6; i++ {
		req := solveRequest(0.5+float64(i)*0.05, 120)
		key := keyOf(t, req)
		owners := entry.gw.Ring().Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("expected 2 owners, got %v", owners)
		}
		resp, body := postJSON(t, "http://"+entry.addr+"/v1/solve", req, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", i, resp.StatusCode, body)
		}
		if peer := resp.Header.Get("X-Cluster-Peer"); peer != owners[0] {
			t.Fatalf("solve %d served by %s, owner is %s", i, peer, owners[0])
		}
		if !cacheKeys(t, owners[0])[key] {
			t.Fatalf("solve %d: owner %s has no cache entry for its key", i, owners[0])
		}

		// The identical request again must be a cache hit on the owner.
		resp2, body2 := postJSON(t, "http://"+entry.addr+"/v1/solve", req, nil)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("repeat solve %d: status %d", i, resp2.StatusCode)
		}
		var sr modelio.SolveResponse
		if err := json.Unmarshal(body2, &sr); err != nil {
			t.Fatal(err)
		}
		if !sr.Cached {
			t.Fatalf("repeat solve %d was not served from the owner's cache", i)
		}
	}
}

// TestClusterSweepFanout routes a planned sweep through the gateway and
// checks the reassembled grid matches a single-node solve of the same sweep.
func TestClusterSweepFanout(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	sweep := &modelio.SweepRequest{
		SolveRequest: modelio.SolveRequest{Algorithm: "multiserver", Model: testModel(1.0)},
		Populations:  []int{40, 90},
		ThinkTimes:   []float64{0.5, 1.0, 1.5},
		Servers:      map[string][]int{"web/cpu": {2, 4}},
	}
	resp, body := postJSON(t, "http://"+nodes[0].addr+"/v1/sweep", sweep, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, body)
	}
	var got modelio.SweepResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.GridSize != 6 || len(got.Points) != 6 {
		t.Fatalf("grid size %d / %d points, want 6", got.GridSize, len(got.Points))
	}

	// Reference: the same sweep served entirely on one node (the forwarded
	// header forces local planning and solving).
	respRef, bodyRef := postJSON(t, "http://"+nodes[1].addr+"/v1/sweep", sweep,
		map[string]string{"X-Cluster-Forwarded": "test"})
	if respRef.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep: status %d", respRef.StatusCode)
	}
	var ref modelio.SweepResponse
	if err := json.Unmarshal(bodyRef, &ref); err != nil {
		t.Fatal(err)
	}
	for i := range got.Points {
		gp, rp := got.Points[i], ref.Points[i]
		if gp.Error != "" || rp.Error != "" {
			t.Fatalf("point %d errored: %q / %q", i, gp.Error, rp.Error)
		}
		if len(gp.Rows) != len(rp.Rows) {
			t.Fatalf("point %d: %d rows vs %d", i, len(gp.Rows), len(rp.Rows))
		}
		for j := range gp.Rows {
			if gp.Rows[j] != rp.Rows[j] {
				t.Fatalf("point %d row %d differs across routing: %+v vs %+v", i, j, gp.Rows[j], rp.Rows[j])
			}
		}
	}
}

// TestClusterFailover kills a key's owner and checks the fabric keeps
// answering with no client-visible 5xx while the dead peer's circuit breaker
// opens. Probing is effectively disabled so the failover comes from the
// forwarding ladder alone (the harder case).
func TestClusterFailover(t *testing.T) {
	nodes := startCluster(t, 3, func(c *Config) {
		c.ProbeInterval = time.Hour
	})
	entry := nodes[0]

	// Find requests owned by a node other than the entry point.
	victimIdx := -1
	var victimReqs []*modelio.SolveRequest
	for i := 0; len(victimReqs) < 6 && i < 400; i++ {
		req := solveRequest(0.3+float64(i)*0.01, 80)
		owner := entry.gw.Ring().Owner(keyOf(t, req))
		if owner == entry.addr {
			continue
		}
		idx := -1
		for j, n := range nodes {
			if n.addr == owner {
				idx = j
			}
		}
		if victimIdx == -1 {
			victimIdx = idx
		}
		if idx == victimIdx {
			victimReqs = append(victimReqs, req)
		}
	}
	if len(victimReqs) < 6 {
		t.Fatalf("could not find enough keys owned by one remote node")
	}
	nodes[victimIdx].kill(t)

	for i, req := range victimReqs {
		resp, body := postJSON(t, "http://"+entry.addr+"/v1/solve", req, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after owner death: status %d: %s", i, resp.StatusCode, body)
		}
		if peer := resp.Header.Get("X-Cluster-Peer"); peer == nodes[victimIdx].addr {
			t.Fatalf("request %d claims to be served by the dead node", i)
		}
	}

	metrics := getBody(t, "http://"+entry.addr+"/metrics")
	opens := metricValue(t, metrics,
		fmt.Sprintf("solverd_cluster_breaker_opens_total{peer=%q}", nodes[victimIdx].addr))
	if opens < 1 {
		t.Fatalf("breaker never opened for the dead peer (opens=%v)", opens)
	}
	if fails := metricValue(t, metrics, "solverd_cluster_forward_failures_total"); fails < 1 {
		t.Fatalf("no forward failures recorded (got %v)", fails)
	}
}

// TestClusterMembershipRebuild checks the probe loop: a killed node leaves
// the ring within a few probe intervals.
func TestClusterMembershipRebuild(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	if n := nodes[0].gw.Ring().Len(); n != 3 {
		t.Fatalf("initial ring has %d nodes, want 3", n)
	}
	nodes[2].kill(t)
	deadline := time.Now().Add(5 * time.Second)
	for nodes[0].gw.Ring().Len() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("ring still has %d nodes after the kill", nodes[0].gw.Ring().Len())
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, n := range nodes[0].gw.Ring().Nodes() {
		if n == nodes[2].addr {
			t.Fatal("dead node still in ring")
		}
	}
}

// TestClusterPeerFillExtend is the acceptance scenario: a trajectory solved
// to population 500 on its owner is transparently reused when another node
// cold-solves the same model to 1500 — the second node fills from the
// owner's cache, extends the remaining 1000 populations, and the result is
// bit-identical to a cold single-node solve of all 1500.
func TestClusterPeerFillExtend(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	req := solveRequest(1.25, 500)
	key := keyOf(t, req)
	owner := nodes[0].gw.Ring().Owner(key)
	var ownerNode, other *testNode
	for _, n := range nodes {
		if n.addr == owner {
			ownerNode = n
		} else if other == nil {
			other = n
		}
	}
	if ownerNode == nil || other == nil {
		t.Fatal("could not split nodes into owner and other")
	}

	// Solve to 500 on the owner (forced local, exactly as a routed request
	// would land there).
	resp, body := postJSON(t, "http://"+ownerNode.addr+"/v1/solve", req,
		map[string]string{"X-Cluster-Forwarded": "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner solve: status %d: %s", resp.StatusCode, body)
	}
	if !cacheKeys(t, ownerNode.addr)[key] {
		t.Fatal("owner did not cache the trajectory")
	}

	// The same model to 1500 on a different node, forced local: its cold
	// solve must fill from the owner and extend.
	req2 := solveRequest(1.25, 1500)
	resp2, body2 := postJSON(t, "http://"+other.addr+"/v1/solve", req2,
		map[string]string{"X-Cluster-Forwarded": "test"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("extend solve: status %d: %s", resp2.StatusCode, body2)
	}
	var sr modelio.SolveResponse
	if err := json.Unmarshal(body2, &sr); err != nil {
		t.Fatal(err)
	}

	metrics := getBody(t, "http://"+other.addr+"/metrics")
	if v := metricValue(t, metrics, "solverd_solve_extends_total"); v != 1 {
		t.Fatalf("solverd_solve_extends_total = %v, want 1 (the peer-filled extend)", v)
	}
	if v := metricValue(t, metrics, "solverd_peer_fill_restores_total"); v != 1 {
		t.Fatalf("solverd_peer_fill_restores_total = %v, want 1", v)
	}
	if v := metricValue(t, metrics, "solverd_cluster_peer_fill_hits_total"); v != 1 {
		t.Fatalf("solverd_cluster_peer_fill_hits_total = %v, want 1", v)
	}

	// Bit-identity against a cold in-process solve of the full range.
	m := testModel(1.25)
	sol, err := core.NewMultiServerSolver(m, core.MultiServerOptions{TraceStation: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Release()
	if err := sol.Run(1500); err != nil {
		t.Fatal(err)
	}
	want := modelio.NewTrajectory(sol.Result(), 0)
	got := sr.Trajectory
	if got == nil || len(got.X) != len(want.X) {
		t.Fatalf("trajectory length mismatch: got %d, want %d", len(got.X), len(want.X))
	}
	for i := range want.X {
		if got.X[i] != want.X[i] || got.R[i] != want.R[i] || got.Cycle[i] != want.Cycle[i] {
			t.Fatalf("n=%d: peer-filled extend differs from cold solve: X %v vs %v",
				want.N[i], got.X[i], want.X[i])
		}
	}
	for k := range want.FinalUtil {
		if got.FinalUtil[k] != want.FinalUtil[k] || got.FinalQueueLen[k] != want.FinalQueueLen[k] {
			t.Fatalf("station %d: final rows differ after peer fill", k)
		}
	}
}

// TestClusterSecret checks the shared-secret trust boundary: without the
// secret the fabric endpoints are refused and a forged X-Cluster-Forwarded
// header is ignored (the request still routes to its owner), while requests
// carrying the secret — and the gateway's own forwards — work as in open
// mode.
func TestClusterSecret(t *testing.T) {
	const secret = "squeamish-ossifrage"
	nodes := startCluster(t, 3, func(c *Config) { c.Secret = secret })
	entry := nodes[0]

	resp, _ := postJSON(t, "http://"+entry.addr+"/cluster/v1/export",
		modelio.ExportRequest{Key: "some-key"}, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("export without secret: status %d, want 403", resp.StatusCode)
	}
	statusResp, err := http.Get("http://" + entry.addr + "/cluster/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, statusResp.Body)
	statusResp.Body.Close()
	if statusResp.StatusCode != http.StatusForbidden {
		t.Fatalf("status without secret: status %d, want 403", statusResp.StatusCode)
	}
	// With the secret the same export lookup is admitted (404: unknown key,
	// not 403: untrusted caller).
	resp, _ = postJSON(t, "http://"+entry.addr+"/cluster/v1/export",
		modelio.ExportRequest{Key: "some-key"}, map[string]string{headerSecret: secret})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("export with secret: status %d, want 404", resp.StatusCode)
	}

	// A forged forwarded header (no secret) must not force a local serve:
	// the request routes to its owner exactly like an external one.
	var req *modelio.SolveRequest
	var owner string
	for i := 0; i < 400; i++ {
		cand := solveRequest(0.3+float64(i)*0.01, 60)
		if o := entry.gw.Ring().Owner(keyOf(t, cand)); o != entry.addr {
			req, owner = cand, o
			break
		}
	}
	if req == nil {
		t.Fatal("could not find a key owned by a remote node")
	}
	resp, body := postJSON(t, "http://"+entry.addr+"/v1/solve", req,
		map[string]string{"X-Cluster-Forwarded": "forged"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve with forged hop header: status %d: %s", resp.StatusCode, body)
	}
	if peer := resp.Header.Get(headerPeer); peer != owner {
		t.Fatalf("forged hop header bypassed routing: served by %s, owner is %s", peer, owner)
	}
}
