package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/modelio"
	"repro/internal/selfmodel"
	"repro/internal/server"
)

// warmSelf feeds a node's self-monitor synthetic sampling windows consistent
// with a 4-worker, 10ms-work + 30ms-overhead truth until its model is ready.
func warmSelf(t *testing.T, srv *server.Server) {
	t.Helper()
	const (
		workers = 4
		dWork   = 0.010
		dDelay  = 0.030
	)
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		x := float64(n) / (dWork + dDelay)
		if cap := float64(workers) / dWork; x > cap {
			x = cap
		}
		cycle := time.Duration(float64(n) / x * float64(time.Second))
		w := selfmodel.Window{
			Elapsed:         time.Second,
			Completions:     x,
			BusySeconds:     x * dWork,
			StationSeconds:  float64(n) - x*dDelay,
			InFlightSeconds: float64(n),
			Latencies:       []time.Duration{cycle, cycle, cycle, cycle},
		}
		for i := 0; i < 8; i++ {
			srv.SelfMonitor().ObserveWindow(w)
		}
	}
}

// TestClusterSelfFleetView is the live 3-node acceptance path: every node's
// own GET /v1/self predicts saturation and headroom, and the gateway's
// GET /cluster/v1/self aggregates the fleet — then keeps answering, with the
// dead member listed as missing, after a node dies.
func TestClusterSelfFleetView(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	for _, n := range nodes {
		warmSelf(t, n.srv)
	}

	var safeSum int
	for _, n := range nodes {
		var sr modelio.SelfResponse
		if err := json.Unmarshal(getBody(t, "http://"+n.addr+"/v1/self"), &sr); err != nil {
			t.Fatal(err)
		}
		if !sr.Ready || !sr.Saturated || sr.KneeN == 0 {
			t.Fatalf("node %s self-model not predicting saturation: %+v", n.addr, sr)
		}
		if sr.MaxSafeN == 0 || sr.Headroom != sr.MaxSafeN {
			t.Fatalf("node %s headroom = %d, want maxSafe %d with nothing in flight",
				n.addr, sr.Headroom, sr.MaxSafeN)
		}
		safeSum += sr.MaxSafeN
	}

	var cs modelio.ClusterSelfResponse
	if err := json.Unmarshal(getBody(t, "http://"+nodes[0].addr+"/cluster/v1/self"), &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Self != nodes[0].addr {
		t.Errorf("fleet view answered by %q, want %q", cs.Self, nodes[0].addr)
	}
	if len(cs.Nodes) != 3 || cs.ReadyNodes != 3 || len(cs.Missing) != 0 {
		t.Fatalf("fleet view = %d nodes, %d ready, missing %v; want 3/3/none",
			len(cs.Nodes), cs.ReadyNodes, cs.Missing)
	}
	if cs.FleetMaxSafe != safeSum {
		t.Errorf("fleet max-safe = %d, want sum of members %d", cs.FleetMaxSafe, safeSum)
	}
	if cs.FleetHeadroom != cs.FleetMaxSafe-cs.FleetInFlight {
		t.Errorf("fleet headroom = %d, want %d-%d", cs.FleetHeadroom, cs.FleetMaxSafe, cs.FleetInFlight)
	}
	if cs.ShedAdvised {
		t.Error("idle fleet advises shedding")
	}

	// A dead member turns into a missing entry, not an error response.
	nodes[2].kill(t)
	if err := json.Unmarshal(getBody(t, "http://"+nodes[0].addr+"/cluster/v1/self"), &cs); err != nil {
		t.Fatal(err)
	}
	if len(cs.Missing) != 1 || cs.Missing[0] != nodes[2].addr {
		t.Fatalf("missing = %v, want [%s]", cs.Missing, nodes[2].addr)
	}
	if cs.ReadyNodes != 2 {
		t.Errorf("ready nodes = %d, want 2 after a death", cs.ReadyNodes)
	}
	for _, n := range cs.Nodes {
		if n.Member == nodes[2].addr && n.Error == "" {
			t.Errorf("dead member row carries no error: %+v", n)
		}
	}
}

// TestDeepSolveTraced drives a deep solve under a known request ID and checks
// the observability of the pipeline: the NDJSON header names the trace, and
// the stitched cluster trace carries one deep-chunk span per chunk with the
// member and population range recorded.
func TestDeepSolveTraced(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	req := solveRequest(0.75, 2000)
	req.Decimate = 7
	const traceID = "deep-trace-test-1"

	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, "http://"+nodes[0].addr+"/v1/solve?deep=1", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("X-Request-Id", traceID)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deep solve: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("deep solve: empty stream")
	}
	var hdr modelio.DeepHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.TraceID != traceID {
		t.Fatalf("deep header traceId = %q, want %q", hdr.TraceID, traceID)
	}
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	var st StitchedTrace
	if err := json.Unmarshal(getBody(t, "http://"+nodes[0].addr+"/cluster/v1/trace/"+traceID), &st); err != nil {
		t.Fatal(err)
	}
	chunkSpans := strings.Count(st.Tree, "deep-chunk")
	if chunkSpans != 3 {
		t.Fatalf("stitched trace has %d deep-chunk spans, want 3 (one per chunk):\n%s", chunkSpans, st.Tree)
	}
	for _, want := range []string{"member=", "from_n=", "to_n="} {
		if !strings.Contains(st.Tree, want) {
			t.Errorf("stitched trace missing chunk attribute %q:\n%s", want, st.Tree)
		}
	}
}
