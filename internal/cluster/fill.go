package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/modelio"
	"repro/internal/telemetry"
)

// peerFiller implements server.PeerFiller: before a cold local solve, ask
// the key's other owners for their cached trajectory + checkpoint
// (POST /cluster/v1/export) and restore it, so a trajectory solved anywhere
// in the fabric serves prefix/extend hits cluster-wide. Strictly best
// effort: bounded by FillTimeout, gated by the per-peer breakers, and any
// failure just means solving cold — exactly what would have happened without
// the fill.
type peerFiller struct {
	g *Gateway
}

func (f *peerFiller) Fill(ctx context.Context, key string, _ *modelio.SolveRequest) (*core.Result, *core.Checkpoint, bool) {
	g := f.g
	candidates := g.members.Ring().Owners(key, g.cfg.Replication)
	// Ask the key's other owners first, in ownership order; a lone owner
	// has nobody to ask.
	remotes := make([]string, 0, len(candidates))
	for _, c := range candidates {
		if c != g.cfg.Self && g.members.peerUp(c) {
			remotes = append(remotes, c)
		}
	}
	if len(remotes) == 0 {
		return nil, nil, false
	}
	span := telemetry.FromContext(ctx).StartSpan("peer-fill")
	defer span.End()
	fillCtx, cancel := context.WithTimeout(ctx, g.cfg.FillTimeout)
	defer cancel()

	body, err := json.Marshal(modelio.ExportRequest{Key: key})
	if err != nil {
		return nil, nil, false
	}
	for _, peer := range remotes {
		// allowNonProbe, not allow: a fill must never consume the half-open
		// probe slot. Fills report no verdict (a 404 miss just means the
		// peer lacks the key), so a consumed slot would never be released
		// and the breaker would wedge, excluding the peer until restart.
		if !g.peer(peer).breaker.allowNonProbe() {
			continue
		}
		traj, cp, ok := f.fetch(fillCtx, peer, body, span.ID())
		if ok {
			g.metrics.fillHits.Add(1)
			span.SetAttr("peer", peer)
			span.SetAttr("n", cp.N)
			return traj, cp, true
		}
		if fillCtx.Err() != nil {
			break
		}
	}
	g.metrics.fillMisses.Add(1)
	return nil, nil, false
}

// fetch asks one peer for the key's trajectory state. A 404 (peer has no
// cached entry) and a transport error are both just misses, and neither
// feeds the breaker: fills are gated by allowNonProbe and stay entirely
// neutral, keeping the breaker's state machine driven by forwarding traffic
// alone.
func (f *peerFiller) fetch(ctx context.Context, peer string, body []byte, parentSpan string) (*core.Result, *core.Checkpoint, bool) {
	g := f.g
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+peer+"/cluster/v1/export", bytes.NewReader(body))
	if err != nil {
		return nil, nil, false
	}
	req.Header.Set("Content-Type", "application/json")
	if g.cfg.Secret != "" {
		req.Header.Set(headerSecret, g.cfg.Secret)
	}
	if tr := telemetry.FromContext(ctx); tr.ID() != "" {
		req.Header.Set("X-Request-Id", tr.ID())
	}
	if parentSpan != "" {
		req.Header.Set("X-Parent-Span", parentSpan)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, nil, false
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxExportResponseBytes))
	if err != nil {
		return nil, nil, false
	}
	var state modelio.TrajectoryState
	if err := json.Unmarshal(respBody, &state); err != nil {
		g.cfg.Logger.Warn("cluster: bad export payload", "peer", peer, "error", err)
		return nil, nil, false
	}
	traj, cp, err := state.Restore()
	if err != nil {
		g.cfg.Logger.Warn("cluster: export state rejected", "peer", peer, "error", err)
		return nil, nil, false
	}
	return traj, cp, true
}
