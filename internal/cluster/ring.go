// Package cluster turns N solverd processes into one solve fabric. A
// consistent-hash ring over the member nodes maps every solve-cache key
// (modelio.SolveRequest.CacheKey / SweepKeyBase.GroupKey) to an owner node
// plus R−1 replicas; a gateway mounted in front of each node's local mux
// forwards /v1/solve to the key's owner and fans /v1/sweep groups out to
// theirs, with hedged requests to replicas, per-peer retry with exponential
// backoff and jitter, and a per-peer circuit breaker. Membership is driven
// by periodic /healthz probes: a node failing FailAfter consecutive probes
// leaves the ring (its keys fall to the next node clockwise — roughly 1/N of
// the space), and rejoins after RecoverAfter consecutive successes.
//
// Trajectories cached on one node serve the whole fabric: a cold solve first
// asks the key's owner/replicas for their cached trajectory plus recursion
// checkpoint (POST /cluster/v1/export) and, on a hit, restores and extends it
// — bit-identical to solving from scratch, at a fraction of the work.
//
// Every hop propagates X-Request-Id, records a telemetry span, and feeds
// cluster-specific Prometheus series rendered after the node's own metrics.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is an immutable consistent-hash ring: each member node is hashed onto
// the ring at VirtualNodes positions, and a key belongs to the first virtual
// node clockwise from the key's own hash. Virtual positions derive from
// sha256 of the node name, so every process that knows the same member list
// builds the identical ring — routing needs no coordination.
type Ring struct {
	vnodes []vnode
	nodes  []string // distinct members, sorted
}

type vnode struct {
	hash uint64
	node string
}

// NewRing builds a ring over nodes (duplicates collapse) with virtualNodes
// positions per node. An empty member list yields an empty ring.
func NewRing(nodes []string, virtualNodes int) *Ring {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	distinct := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			distinct = append(distinct, n)
		}
	}
	sort.Strings(distinct)
	r := &Ring{
		vnodes: make([]vnode, 0, len(distinct)*virtualNodes),
		nodes:  distinct,
	}
	for _, n := range distinct {
		for i := 0; i < virtualNodes; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hashVnode(n, i), node: n})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		// Tie-break on the node name so equal hashes (vanishingly rare with
		// sha256) still order deterministically across processes.
		return r.vnodes[i].node < r.vnodes[j].node
	})
	return r
}

// hashVnode positions one virtual node: sha256("<node>\x00<index>"),
// truncated to 64 bits. Stable across processes and Go versions, unlike
// hash/maphash.
func hashVnode(node string, i int) uint64 {
	h := sha256.New()
	h.Write([]byte(node))
	h.Write([]byte{0})
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i))
	h.Write(buf[:])
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// hashKey positions a cache key on the ring (domain-separated from vnodes).
func hashKey(key string) uint64 {
	h := sha256.New()
	h.Write([]byte("key\x00"))
	h.Write([]byte(key))
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owners returns up to n distinct nodes responsible for key: the owner (the
// first virtual node clockwise from the key's hash) followed by the replicas
// met continuing clockwise. n larger than the member count returns every
// member.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	kh := hashKey(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= kh })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.node] {
			seen[v.node] = true
			out = append(out, v.node)
		}
	}
	return out
}

// Owner returns the single node responsible for key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// String summarizes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d nodes, %d vnodes)", len(r.nodes), len(r.vnodes))
}
