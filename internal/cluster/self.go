package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/modelio"
	"repro/internal/telemetry"
)

// selfFanoutTimeout bounds the fleet self-model collection round. Reports
// are small in-memory reads, so a member that cannot answer in this window
// is listed as missing rather than stalling the fleet view.
const selfFanoutTimeout = 5 * time.Second

// maxSelfResponseBytes caps one member's self-report payload; the curve is
// downsampled to at most 64 points, so 1 MiB is far past anything legal.
const maxSelfResponseBytes = 1 << 20

// handleSelf serves GET /cluster/v1/self: every ring member's self-model
// (the local server answers directly) aggregated into a fleet headroom view
// — summed in-flight, max-safe concurrency and headroom over the nodes whose
// models are ready, plus the advisory shed signal if any node raises it.
func (g *Gateway) handleSelf(w http.ResponseWriter, r *http.Request) {
	if !g.trustedHop(r) {
		g.writeError(w, http.StatusForbidden, "cluster secret required")
		return
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), selfFanoutTimeout)
	defer cancel()

	type nodeSelf struct {
		node string
		self *modelio.SelfResponse
		ok   bool
	}
	results := make([]nodeSelf, 1+len(g.remotePeers))
	local := g.local.SelfReport()
	local.Node = g.cfg.Self
	results[0] = nodeSelf{node: g.cfg.Self, self: &local, ok: true}
	var wg sync.WaitGroup
	for i, peer := range g.remotePeers {
		wg.Add(1)
		go func(slot int, peer string) {
			defer wg.Done()
			self, ok := g.fetchSelf(ctx, peer)
			results[slot] = nodeSelf{node: peer, self: self, ok: ok}
		}(1+i, peer)
	}
	wg.Wait()

	out := modelio.ClusterSelfResponse{Self: g.cfg.Self}
	for _, res := range results {
		if !res.ok {
			out.Missing = append(out.Missing, res.node)
			out.Nodes = append(out.Nodes, modelio.ClusterSelfNode{
				Member: res.node, Error: "unreachable",
			})
			continue
		}
		res.self.Node = res.node
		out.Nodes = append(out.Nodes, modelio.ClusterSelfNode{Member: res.node, Self: res.self})
		out.FleetInFlight += res.self.InFlight
		if adm := res.self.Admission; adm != nil {
			out.FleetShed += adm.Shed
			out.FleetRedirected += adm.Redirected
			out.FleetCoalesced += adm.Coalesced
		}
		if res.self.Ready {
			out.ReadyNodes++
			out.FleetMaxSafe += res.self.MaxSafeN
			out.FleetHeadroom += res.self.Headroom
			if res.self.ShedAdvised {
				out.ShedAdvised = true
			}
		}
	}
	out.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	g.writeJSON(w, http.StatusOK, out)
}

// fetchSelf asks one peer for its self-report. ok=false means the peer could
// not answer (down, erroring, or an undecodable payload). The sub-request
// reuses the calling request's trace id when one is in the context (a
// redirect deciding where to divert must stay under the original
// X-Request-Id in every node's access log), minting a fresh id only for
// untraced callers.
func (g *Gateway) fetchSelf(ctx context.Context, peer string) (*modelio.SelfResponse, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/v1/self", nil)
	if err != nil {
		return nil, false
	}
	id := telemetry.FromContext(ctx).ID()
	if !telemetry.ValidID(id) {
		id = telemetry.NewID()
	}
	req.Header.Set("X-Request-Id", id)
	if g.cfg.Secret != "" {
		req.Header.Set(headerSecret, g.cfg.Secret)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxSelfResponseBytes))
	if err != nil {
		return nil, false
	}
	var self modelio.SelfResponse
	if err := json.Unmarshal(body, &self); err != nil {
		g.cfg.Logger.Warn("cluster: bad self payload", "peer", peer, "error", err)
		return nil, false
	}
	return &self, true
}
