package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// traceFanoutTimeout bounds the whole trace collection round: fragment reads
// are small and local, so a member that cannot answer in this window is
// treated as missing rather than stalling the stitch.
const traceFanoutTimeout = 5 * time.Second

// maxTraceResponseBytes caps one member's fragment payload. A single trace is
// bounded by the recorder's own caps, so 16 MiB is far past anything legal.
const maxTraceResponseBytes = 16 << 20

// StitchedTrace is the GET /cluster/v1/trace/{id} body: every member's
// fragments for the trace merged into one cross-node tree.
type StitchedTrace struct {
	ID string `json:"id"`
	// Nodes lists the members that contributed fragments; Missing the
	// members that could not be reached (killed or partitioned — their spans
	// surface as orphan roots, the trace is still served).
	Nodes   []string `json:"nodes"`
	Missing []string `json:"missing,omitempty"`
	// Fragments are the raw per-node records, Tree the same data rendered as
	// an indented span tree (one line per span).
	Fragments []*obs.RecordedRequest `json:"fragments"`
	Tree      string                 `json:"tree"`
}

// handleTrace serves GET /cluster/v1/trace/{id}: fan the trace ID out to
// every ring member (the local recorder answers directly), collect each
// node's span fragments and stitch them into one tree. Members that are down
// contribute nothing; their absence is reported in "missing" and any spans
// that parented to them surface as orphan roots.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !g.trustedHop(r) {
		g.writeError(w, http.StatusForbidden, "cluster secret required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/cluster/v1/trace/")
	if !telemetry.ValidID(id) {
		g.writeError(w, http.StatusBadRequest, "bad trace id")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), traceFanoutTimeout)
	defer cancel()

	type nodeFrags struct {
		node  string
		frags []*obs.RecordedRequest
		ok    bool
	}
	results := make([]nodeFrags, 1+len(g.remotePeers))
	results[0] = nodeFrags{node: g.cfg.Self, frags: g.local.Recorder().Get(id), ok: true}
	var wg sync.WaitGroup
	for i, peer := range g.remotePeers {
		wg.Add(1)
		go func(slot int, peer string) {
			defer wg.Done()
			frags, ok := g.fetchTraceFragments(ctx, peer, id)
			results[slot] = nodeFrags{node: peer, frags: frags, ok: ok}
		}(1+i, peer)
	}
	wg.Wait()

	out := StitchedTrace{ID: id}
	for _, res := range results {
		if !res.ok {
			out.Missing = append(out.Missing, res.node)
			continue
		}
		if len(res.frags) > 0 {
			out.Nodes = append(out.Nodes, res.node)
			out.Fragments = append(out.Fragments, res.frags...)
		}
	}
	if len(out.Fragments) == 0 {
		g.writeError(w, http.StatusNotFound, "trace not found on any reachable member")
		return
	}
	var tree strings.Builder
	obs.RenderTree(&tree, obs.Stitch(out.Fragments))
	out.Tree = tree.String()
	g.writeJSON(w, http.StatusOK, out)
}

// fetchTraceFragments asks one peer for its local fragments of the trace.
// ok=false means the peer could not answer (down, erroring, or recorder
// disabled); a clean "I have nothing" 404 is ok=true with no fragments.
func (g *Gateway) fetchTraceFragments(ctx context.Context, peer, id string) ([]*obs.RecordedRequest, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/debug/traces/"+id, nil)
	if err != nil {
		return nil, false
	}
	req.Header.Set("X-Request-Id", telemetry.NewID())
	if g.cfg.Secret != "" {
		req.Header.Set(headerSecret, g.cfg.Secret)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, true
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxTraceResponseBytes))
	if err != nil {
		return nil, false
	}
	var tres server.TraceResponse
	if err := json.Unmarshal(body, &tres); err != nil {
		g.cfg.Logger.Warn("cluster: bad trace payload", "peer", peer, "error", err)
		return nil, false
	}
	return tres.Fragments, true
}
