package spline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
)

// interpolatesExactly checks S(x_i) = y_i at every knot.
func interpolatesExactly(t *testing.T, s *Cubic, xs, ys []float64, tol float64) {
	t.Helper()
	for i := range xs {
		if got := s.Eval(xs[i]); !numeric.AlmostEqual(got, ys[i], tol) {
			t.Errorf("S(%g) = %g, want %g", xs[i], got, ys[i])
		}
	}
}

func TestNaturalInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 1, 2.5, 4, 7}
	ys := []float64{1, -2, 0.5, 3, -1}
	s, err := NewNatural(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	interpolatesExactly(t, s, xs, ys, 1e-12)
}

func TestNaturalEndSecondDerivativesZero(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 2, 1, 3, 0}
	s, err := NewNatural(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if d2 := s.EvalDeriv(0, 2); !numeric.AlmostEqual(d2, 0, 1e-10) {
		t.Errorf("S''(x0) = %g, want 0", d2)
	}
	if d2 := s.EvalDeriv(4, 2); !numeric.AlmostEqual(d2, 0, 1e-10) {
		t.Errorf("S''(xn) = %g, want 0", d2)
	}
}

func TestNaturalC2Continuity(t *testing.T) {
	xs := []float64{0, 0.7, 1.9, 3, 4.4, 6}
	ys := []float64{1, 0, 2, -1, 0.5, 2}
	s, err := NewNatural(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9
	for _, k := range []int{0, 1, 2} {
		for i := 1; i < len(xs)-1; i++ {
			left := s.EvalDeriv(xs[i]-eps, k)
			right := s.EvalDeriv(xs[i]+eps, k)
			if !numeric.AlmostEqual(left, right, 1e-5) {
				t.Errorf("derivative %d discontinuous at knot %d: %g vs %g", k, i, left, right)
			}
		}
	}
}

func TestTwoPointSplineIsLine(t *testing.T) {
	s, err := NewNatural([]float64{1, 3}, []float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(2); !numeric.AlmostEqual(got, 5, 1e-12) {
		t.Errorf("midpoint = %g, want 5", got)
	}
	if d1 := s.EvalDeriv(2, 1); !numeric.AlmostEqual(d1, 3, 1e-12) {
		t.Errorf("slope = %g, want 3", d1)
	}
}

func TestClampedMatchesPrescribedSlopes(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 4, 9}
	s, err := NewClamped(xs, ys, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	interpolatesExactly(t, s, xs, ys, 1e-12)
	if d := s.EvalDeriv(0, 1); !numeric.AlmostEqual(d, 0.5, 1e-10) {
		t.Errorf("S'(0) = %g, want 0.5", d)
	}
	if d := s.EvalDeriv(3, 1); !numeric.AlmostEqual(d, 7, 1e-10) {
		t.Errorf("S'(3) = %g, want 7", d)
	}
}

func TestClampedTwoPointsHermite(t *testing.T) {
	s, err := NewClamped([]float64{0, 2}, []float64{0, 4}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.EvalDeriv(0, 1); !numeric.AlmostEqual(d, 0, 1e-12) {
		t.Errorf("S'(0) = %g, want 0", d)
	}
	if got := s.Eval(2); !numeric.AlmostEqual(got, 4, 1e-12) {
		t.Errorf("S(2) = %g, want 4", got)
	}
}

// TestClampedReproducesCubic: a clamped spline through samples of a cubic,
// with exact end slopes, must reproduce the cubic everywhere.
func TestClampedReproducesCubic(t *testing.T) {
	f := func(x float64) float64 { return 2 + x - 3*x*x + 0.5*x*x*x }
	fp := func(x float64) float64 { return 1 - 6*x + 1.5*x*x }
	xs := numeric.Linspace(0, 4, 9)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f(x)
	}
	s, err := NewClamped(xs, ys, fp(0), fp(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range numeric.Linspace(0, 4, 41) {
		if got := s.Eval(x); !numeric.AlmostEqual(got, f(x), 1e-9) {
			t.Errorf("S(%g) = %g, want %g", x, got, f(x))
		}
	}
}

// TestNotAKnotReproducesCubic: not-a-knot splines are exact for cubics
// without needing derivative data.
func TestNotAKnotReproducesCubic(t *testing.T) {
	f := func(x float64) float64 { return -1 + 2*x + x*x - 0.25*x*x*x }
	xs := numeric.Linspace(-2, 3, 8)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f(x)
	}
	s, err := NewNotAKnot(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range numeric.Linspace(-2, 3, 37) {
		if got := s.Eval(x); !numeric.AlmostEqual(got, f(x), 1e-8) {
			t.Errorf("S(%g) = %g, want %g", x, got, f(x))
		}
	}
}

func TestNotAKnotThreePointsParabola(t *testing.T) {
	// Through 3 points of x² the parabola fallback must be exact.
	xs := []float64{0, 1, 3}
	ys := []float64{0, 1, 9}
	s, err := NewNotAKnot(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1.7, 2.9} {
		if got := s.Eval(x); !numeric.AlmostEqual(got, x*x, 1e-10) {
			t.Errorf("S(%g) = %g, want %g", x, got, x*x)
		}
	}
}

func TestHermiteMatchesData(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 1, 0}
	ds := []float64{1, 0, -1}
	s, err := NewHermite(xs, ys, ds)
	if err != nil {
		t.Fatal(err)
	}
	interpolatesExactly(t, s, xs, ys, 1e-12)
	for i := range xs {
		if d := s.EvalDeriv(xs[i], 1); !numeric.AlmostEqual(d, ds[i], 1e-10) {
			t.Errorf("S'(%g) = %g, want %g", xs[i], d, ds[i])
		}
	}
}

func TestPCHIPMonotonePreservation(t *testing.T) {
	// Monotone decreasing data (like the paper's service-demand curves)
	// must yield a monotone interpolant: no undershoot/overshoot.
	xs := []float64{1, 14, 28, 70, 140, 210}
	ys := []float64{0.010, 0.0085, 0.0077, 0.0070, 0.0068, 0.0067}
	s, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	interpolatesExactly(t, s, xs, ys, 1e-12)
	prev := s.Eval(1)
	for _, x := range numeric.Linspace(1, 210, 500)[1:] {
		cur := s.Eval(x)
		if cur > prev+1e-12 {
			t.Fatalf("PCHIP not monotone at x=%g: %g > %g", x, cur, prev)
		}
		prev = cur
	}
}

func TestPCHIPFlatSegments(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 1, 1, 1}
	s, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range numeric.Linspace(0, 3, 20) {
		if got := s.Eval(x); !numeric.AlmostEqual(got, 1, 1e-12) {
			t.Errorf("flat data: S(%g) = %g", x, got)
		}
	}
}

func TestAkimaInterpolatesAndResistsOvershoot(t *testing.T) {
	// Step-like data: Akima should overshoot less than the natural spline.
	xs := []float64{0, 1, 2, 3, 4, 5, 6}
	ys := []float64{0, 0, 0, 1, 1, 1, 1}
	ak, err := NewAkima(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := NewNatural(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	interpolatesExactly(t, ak, xs, ys, 1e-12)
	over := func(s *Cubic) float64 {
		worst := 0.0
		for _, x := range numeric.Linspace(0, 6, 300) {
			v := s.Eval(x)
			if v > 1 {
				worst = math.Max(worst, v-1)
			}
			if v < 0 {
				worst = math.Max(worst, -v)
			}
		}
		return worst
	}
	if oa, on := over(ak), over(nat); oa > on {
		t.Errorf("Akima overshoot %g exceeds natural spline overshoot %g", oa, on)
	}
}

func TestSmoothingLambdaZeroIsInterpolant(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 2, 5, 4}
	sm, err := NewSmoothing(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := NewNatural(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range numeric.Linspace(0, 4, 33) {
		if a, b := sm.Eval(x), nat.Eval(x); !numeric.AlmostEqual(a, b, 1e-9) {
			t.Errorf("λ=0 smoothing %g != natural %g at x=%g", a, b, x)
		}
	}
}

func TestSmoothingLargeLambdaIsRegressionLine(t *testing.T) {
	// Noisy samples of a line: with huge λ the smoother must approach the
	// least-squares line, which for symmetric noise is close to the truth.
	rng := rand.New(rand.NewSource(5))
	xs := numeric.Linspace(0, 10, 21)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x + 1 + 0.2*(rng.Float64()-0.5)
	}
	sm, err := NewSmoothing(xs, ys, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	// Roughness of the limit must be ~0 (a straight line).
	if r := sm.Roughness(); r > 1e-6 {
		t.Errorf("roughness %g, want ~0 for λ→∞", r)
	}
	// And the line must match the data trend.
	if v := sm.Eval(5); !numeric.AlmostEqual(v, 11, 0.05) {
		t.Errorf("smoothed midpoint %g, want ≈11", v)
	}
}

func TestSmoothingReducesRoughnessMonotonically(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := numeric.Linspace(0, 6, 13)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x) + 0.3*(rng.Float64()-0.5)
	}
	prev := math.Inf(1)
	for _, lambda := range []float64{0, 0.01, 0.1, 1, 10} {
		sm, err := NewSmoothing(xs, ys, lambda)
		if err != nil {
			t.Fatal(err)
		}
		r := sm.Roughness()
		if r > prev+1e-9 {
			t.Errorf("roughness increased at λ=%g: %g > %g", lambda, r, prev)
		}
		prev = r
	}
}

func TestExtrapolationConstantPegsBoundaries(t *testing.T) {
	// Paper eq. 14: xq < x1 → y1; xq > xn → yn.
	xs := []float64{1, 2, 3}
	ys := []float64{10, 20, 15}
	s, err := NewNatural(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(0); got != 10 {
		t.Errorf("left extrapolation = %g, want 10", got)
	}
	if got := s.Eval(99); got != 15 {
		t.Errorf("right extrapolation = %g, want 15", got)
	}
	if d := s.EvalDeriv(0, 1); d != 0 {
		t.Errorf("left extrapolated slope = %g, want 0", d)
	}
}

func TestExtrapolationLinear(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 1, 4}
	s, err := NewNatural(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	s.SetExtrapolation(ExtrapLinear)
	slope := s.EvalDeriv(2, 1)
	if got, want := s.Eval(3), 4+slope; !numeric.AlmostEqual(got, want, 1e-10) {
		t.Errorf("linear extrapolation = %g, want %g", got, want)
	}
	leftSlope := s.EvalDeriv(0, 1)
	if got, want := s.Eval(-2), -2*leftSlope; !numeric.AlmostEqual(got, want, 1e-10) {
		t.Errorf("left linear extrapolation = %g, want %g", got, want)
	}
}

func TestExtrapolationNaturalContinuesPolynomial(t *testing.T) {
	f := func(x float64) float64 { return 1 + x + x*x*x }
	xs := numeric.Linspace(0, 3, 7)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f(x)
	}
	s, err := NewNotAKnot(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	s.SetExtrapolation(ExtrapNatural)
	// Just beyond the boundary the continued cubic should track f closely.
	if got := s.Eval(3.2); !numeric.AlmostEqual(got, f(3.2), 1e-6) {
		t.Errorf("natural extrapolation = %g, want %g", got, f(3.2))
	}
}

func TestIntegrateMatchesSimpson(t *testing.T) {
	xs := numeric.Linspace(0, math.Pi, 15)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x)
	}
	s, err := NewNatural(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	analytic := s.Integrate(0, math.Pi)
	quad := numeric.Simpson(s.Eval, 0, math.Pi, 1e-10)
	if !numeric.AlmostEqual(analytic, quad, 1e-7) {
		t.Errorf("analytic ∫ = %g vs Simpson %g", analytic, quad)
	}
	if !numeric.AlmostEqual(analytic, 2, 1e-3) {
		t.Errorf("∫sin spline = %g, want ≈2", analytic)
	}
}

func TestIntegrateSubIntervalAndReversed(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3} // identity → S(x) = x
	s, err := NewNatural(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Integrate(0.5, 2.5); !numeric.AlmostEqual(got, 3, 1e-10) {
		t.Errorf("∫x over [0.5,2.5] = %g, want 3", got)
	}
	if got := s.Integrate(2.5, 0.5); !numeric.AlmostEqual(got, -3, 1e-10) {
		t.Errorf("reversed = %g, want -3", got)
	}
	if got := s.Integrate(1, 1); got != 0 {
		t.Errorf("empty interval = %g, want 0", got)
	}
	// Crossing the boundary with constant extrapolation: ∫₃⁵ 3 dx = 6.
	if got := s.Integrate(3, 5); !numeric.AlmostEqual(got, 6, 1e-9) {
		t.Errorf("extrapolated ∫ = %g, want 6", got)
	}
}

func TestRoughnessOfLineIsZero(t *testing.T) {
	s, err := NewNatural([]float64{0, 1, 2, 3}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Roughness(); r > 1e-18 {
		t.Errorf("line roughness = %g, want 0", r)
	}
}

func TestRoughnessMatchesQuadrature(t *testing.T) {
	xs := []float64{0, 1, 2, 4, 5}
	ys := []float64{0, 2, -1, 3, 1}
	s, err := NewNatural(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := numeric.Simpson(func(x float64) float64 {
		d2 := s.EvalDeriv(x, 2)
		return d2 * d2
	}, 0, 5, 1e-10)
	if got := s.Roughness(); !numeric.AlmostEqual(got, want, 1e-6) {
		t.Errorf("analytic roughness %g vs quadrature %g", got, want)
	}
}

func TestLinearInterpolant(t *testing.T) {
	xs := []float64{0, 2, 5}
	ys := []float64{1, 5, -1}
	s, err := NewLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	interpolatesExactly(t, s, xs, ys, 1e-12)
	if got := s.Eval(1); !numeric.AlmostEqual(got, 3, 1e-12) {
		t.Errorf("linear midpoint = %g, want 3", got)
	}
	if got := s.Eval(3.5); !numeric.AlmostEqual(got, 2, 1e-12) {
		t.Errorf("linear at 3.5 = %g, want 2", got)
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := NewNatural([]float64{1}, []float64{1}); !errors.Is(err, ErrBadKnots) {
		t.Errorf("single point: %v", err)
	}
	if _, err := NewNatural([]float64{1, 1}, []float64{1, 2}); !errors.Is(err, ErrBadKnots) {
		t.Errorf("duplicate knots: %v", err)
	}
	if _, err := NewNatural([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrBadKnots) {
		t.Errorf("length mismatch: %v", err)
	}
	if _, err := NewSmoothing([]float64{1, 2, 3}, []float64{1, 2, 3}, -1); !errors.Is(err, ErrBadKnots) {
		t.Errorf("negative lambda: %v", err)
	}
	if _, err := NewHermite([]float64{1, 2}, []float64{1, 2}, []float64{0}); !errors.Is(err, ErrBadKnots) {
		t.Errorf("hermite deriv mismatch: %v", err)
	}
}

func TestDomainAndKnotsAccessors(t *testing.T) {
	xs := []float64{2, 4, 8}
	s, err := NewNatural(xs, []float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Domain()
	if lo != 2 || hi != 8 {
		t.Errorf("Domain = [%g, %g], want [2, 8]", lo, hi)
	}
	k := s.Knots()
	k[0] = -99 // must not alias internal state
	if got, _ := s.Domain(); got != 2 {
		t.Error("Knots() aliases internal state")
	}
}

func TestExtrapolationStringer(t *testing.T) {
	if ExtrapConstant.String() != "constant" || ExtrapLinear.String() != "linear" ||
		ExtrapNatural.String() != "natural" {
		t.Error("Extrapolation.String misbehaves")
	}
	if Extrapolation(42).String() == "" {
		t.Error("unknown extrapolation should still print")
	}
}

// TestSplineConvergenceOrder verifies the O(h⁴) convergence of the clamped
// spline on a smooth function: halving h should shrink the max error by ~16×.
func TestSplineConvergenceOrder(t *testing.T) {
	f := math.Sin
	fp := math.Cos
	maxErr := func(n int) float64 {
		xs := numeric.Linspace(0, math.Pi, n)
		ys := make([]float64, n)
		for i, x := range xs {
			ys[i] = f(x)
		}
		s, err := NewClamped(xs, ys, fp(0), fp(math.Pi))
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for _, x := range numeric.Linspace(0, math.Pi, 1001) {
			worst = math.Max(worst, math.Abs(s.Eval(x)-f(x)))
		}
		return worst
	}
	e1 := maxErr(9)
	e2 := maxErr(17)
	ratio := e1 / e2
	if ratio < 10 || ratio > 25 {
		t.Errorf("convergence ratio %g, want ≈16 for O(h⁴)", ratio)
	}
}

func BenchmarkNaturalConstruct(b *testing.B) {
	xs := numeric.Linspace(0, 100, 200)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x / 7)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewNatural(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCubicEval(b *testing.B) {
	xs := numeric.Linspace(0, 100, 200)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x / 7)
	}
	s, err := NewNatural(xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Eval(float64(i%10000) / 100)
	}
}
