// Package spline implements the piecewise-cubic interpolation machinery the
// paper relies on (its Section 6 uses Scilab's interp(); Section 7 uses
// smoothing splines, eq. 12).
//
// The central type is Cubic, a C¹/C² piecewise cubic polynomial over strictly
// increasing knots. Constructors build the classic interpolating variants
// (natural, clamped, not-a-knot), shape-preserving variants (PCHIP, Akima)
// and the Reinsch smoothing spline with roughness penalty λ. Evaluation
// provides the value and the first three derivatives, mirroring eq. 13 of
// the paper (yq = h(xq), yq1 = h'(xq), yq2 = h”(xq), yq3 = h”'(xq)).
//
// Extrapolation outside the sampled range defaults to the paper's eq. 14:
// the value is pegged to the boundary ordinate (constant extrapolation),
// which is what MVASD uses when the MVA recursion asks for service demands
// beyond the last measured concurrency.
package spline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
)

// Extrapolation selects the behaviour of a Cubic outside [x₀, x_{n−1}].
type Extrapolation int

const (
	// ExtrapConstant pegs values to the boundary ordinates, per eq. 14 of
	// the paper: x < x₁ → y₁, x > x_n → y_n. Derivatives are zero outside.
	ExtrapConstant Extrapolation = iota
	// ExtrapLinear continues with the boundary slope.
	ExtrapLinear
	// ExtrapNatural evaluates the boundary cubic polynomial unchanged.
	ExtrapNatural
)

func (e Extrapolation) String() string {
	switch e {
	case ExtrapConstant:
		return "constant"
	case ExtrapLinear:
		return "linear"
	case ExtrapNatural:
		return "natural"
	default:
		return fmt.Sprintf("Extrapolation(%d)", int(e))
	}
}

// ErrBadKnots is returned when knot abscissae are not strictly increasing or
// there are too few points for the requested construction.
var ErrBadKnots = errors.New("spline: knots must be strictly increasing with enough points")

// Cubic is a piecewise cubic polynomial. On interval i (between knot i and
// knot i+1) it evaluates
//
//	S(x) = a[i] + b[i]·t + c[i]·t² + d[i]·t³,  t = x − xs[i].
type Cubic struct {
	xs         []float64
	a, b, c, d []float64 // len = len(xs)-1 each
	extrap     Extrapolation
}

// NewNatural constructs the natural cubic interpolating spline through
// (xs, ys): S”=0 at both ends. Needs at least 2 points (2 points degrade
// gracefully to the connecting line).
func NewNatural(xs, ys []float64) (*Cubic, error) {
	m, err := naturalSecondDerivs(xs, ys)
	if err != nil {
		return nil, err
	}
	return fromSecondDerivs(xs, ys, m), nil
}

// NewClamped constructs the cubic interpolating spline with prescribed end
// slopes S'(x₀) = startSlope and S'(x_{n−1}) = endSlope.
func NewClamped(xs, ys []float64, startSlope, endSlope float64) (*Cubic, error) {
	if err := checkKnots(xs, ys, 2); err != nil {
		return nil, err
	}
	n := len(xs)
	if n == 2 {
		// A single cubic with both slopes prescribed (Hermite segment).
		return NewHermite(xs, ys, []float64{startSlope, endSlope})
	}
	sub := make([]float64, n)
	diag := make([]float64, n)
	sup := make([]float64, n)
	rhs := make([]float64, n)
	h := make([]float64, n-1)
	for i := range h {
		h[i] = xs[i+1] - xs[i]
	}
	diag[0] = h[0] / 3
	sup[0] = h[0] / 6
	rhs[0] = (ys[1]-ys[0])/h[0] - startSlope
	for i := 1; i < n-1; i++ {
		sub[i] = h[i-1] / 6
		diag[i] = (h[i-1] + h[i]) / 3
		sup[i] = h[i] / 6
		rhs[i] = (ys[i+1]-ys[i])/h[i] - (ys[i]-ys[i-1])/h[i-1]
	}
	sub[n-1] = h[n-2] / 6
	diag[n-1] = h[n-2] / 3
	rhs[n-1] = endSlope - (ys[n-1]-ys[n-2])/h[n-2]
	m, err := numeric.SolveTridiagonal(sub, diag, sup, rhs)
	if err != nil {
		return nil, fmt.Errorf("spline: clamped system: %w", err)
	}
	return fromSecondDerivs(xs, ys, m), nil
}

// NewNotAKnot constructs the not-a-knot cubic interpolating spline (the
// default of MATLAB/Scilab interp with "not_a_knot"): the third derivative is
// continuous across the second and penultimate knots, so the first two and
// last two intervals each share one cubic. Requires at least 4 points; with
// 3 points the unique parabola through them is returned, with 2 the line.
func NewNotAKnot(xs, ys []float64) (*Cubic, error) {
	if err := checkKnots(xs, ys, 2); err != nil {
		return nil, err
	}
	n := len(xs)
	switch n {
	case 2:
		return NewNatural(xs, ys)
	case 3:
		return parabolaThrough(xs, ys)
	}
	h := make([]float64, n-1)
	for i := range h {
		h[i] = xs[i+1] - xs[i]
	}
	div := func(i int) float64 { return (ys[i+1] - ys[i]) / h[i] }
	// Unknowns: M[1..n-2]; M[0] and M[n-1] are eliminated using the
	// not-a-knot conditions
	//   M0 = M1 + (h0/h1)(M1 − M2),   Mn−1 = Mn−2 + (h_{n−2}/h_{n−3})(Mn−2 − Mn−3).
	k := n - 2
	sub := make([]float64, k)
	diag := make([]float64, k)
	sup := make([]float64, k)
	rhs := make([]float64, k)
	for j := 0; j < k; j++ {
		i := j + 1 // interior knot index
		rhs[j] = div(i) - div(i-1)
		switch {
		case j == 0:
			// (h0/6)M0 + ((h0+h1)/3)M1 + (h1/6)M2 = rhs, with M0 substituted.
			diag[0] = (h[0]+h[1])/3 + h[0]/6*(1+h[0]/h[1])
			sup[0] = h[1]/6 - h[0]*h[0]/(6*h[1])
		case j == k-1:
			i := n - 2
			diag[j] = (h[i-1]+h[i])/3 + h[i]/6*(1+h[i]/h[i-1])
			sub[j] = h[i-1]/6 - h[i]*h[i]/(6*h[i-1])
		default:
			sub[j] = h[i-1] / 6
			diag[j] = (h[i-1] + h[i]) / 3
			sup[j] = h[i] / 6
		}
	}
	inner, err := numeric.SolveTridiagonal(sub, diag, sup, rhs)
	if err != nil {
		return nil, fmt.Errorf("spline: not-a-knot system: %w", err)
	}
	m := make([]float64, n)
	copy(m[1:], inner)
	m[0] = m[1] + h[0]/h[1]*(m[1]-m[2])
	m[n-1] = m[n-2] + h[n-2]/h[n-3]*(m[n-2]-m[n-3])
	return fromSecondDerivs(xs, ys, m), nil
}

// NewHermite constructs the piecewise cubic with prescribed values ys and
// first derivatives ds at every knot (C¹, not necessarily C²).
func NewHermite(xs, ys, ds []float64) (*Cubic, error) {
	if err := checkKnots(xs, ys, 2); err != nil {
		return nil, err
	}
	if len(ds) != len(xs) {
		return nil, fmt.Errorf("%w: derivative count %d != knot count %d", ErrBadKnots, len(ds), len(xs))
	}
	n := len(xs)
	s := &Cubic{
		xs: append([]float64(nil), xs...),
		a:  make([]float64, n-1),
		b:  make([]float64, n-1),
		c:  make([]float64, n-1),
		d:  make([]float64, n-1),
	}
	for i := 0; i < n-1; i++ {
		h := xs[i+1] - xs[i]
		dy := ys[i+1] - ys[i]
		s.a[i] = ys[i]
		s.b[i] = ds[i]
		s.c[i] = (3*dy/h - 2*ds[i] - ds[i+1]) / h
		s.d[i] = (ds[i] + ds[i+1] - 2*dy/h) / (h * h)
	}
	return s, nil
}

// NewPCHIP constructs the Fritsch–Carlson monotone piecewise cubic Hermite
// interpolant. Where the data are monotone the interpolant is monotone too —
// useful for service-demand curves, which must never interpolate below zero
// between positive samples.
func NewPCHIP(xs, ys []float64) (*Cubic, error) {
	if err := checkKnots(xs, ys, 2); err != nil {
		return nil, err
	}
	n := len(xs)
	if n == 2 {
		sl := (ys[1] - ys[0]) / (xs[1] - xs[0])
		return NewHermite(xs, ys, []float64{sl, sl})
	}
	h := make([]float64, n-1)
	delta := make([]float64, n-1)
	for i := range h {
		h[i] = xs[i+1] - xs[i]
		delta[i] = (ys[i+1] - ys[i]) / h[i]
	}
	d := make([]float64, n)
	for i := 1; i < n-1; i++ {
		if delta[i-1]*delta[i] <= 0 {
			d[i] = 0 // local extremum: flatten to preserve shape
			continue
		}
		// Weighted harmonic mean of neighbouring secants (Fritsch–Carlson).
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		d[i] = (w1 + w2) / (w1/delta[i-1] + w2/delta[i])
	}
	d[0] = pchipEndSlope(h[0], h[1], delta[0], delta[1])
	d[n-1] = pchipEndSlope(h[n-2], h[n-3], delta[n-2], delta[n-3])
	return NewHermite(xs, ys, d)
}

// pchipEndSlope is the standard one-sided three-point boundary formula with
// the shape-preserving limiters from the PCHIP literature.
func pchipEndSlope(h0, h1, d0, d1 float64) float64 {
	s := ((2*h0+h1)*d0 - h0*d1) / (h0 + h1)
	if s*d0 <= 0 {
		return 0
	}
	if d0*d1 <= 0 && math.Abs(s) > 3*math.Abs(d0) {
		return 3 * d0
	}
	return s
}

// NewAkima constructs Akima's 1970 interpolant, which resists the overshoot
// of the classic cubic spline near outliers. Requires at least 5 points;
// fewer fall back to natural.
func NewAkima(xs, ys []float64) (*Cubic, error) {
	if err := checkKnots(xs, ys, 2); err != nil {
		return nil, err
	}
	n := len(xs)
	if n < 5 {
		return NewNatural(xs, ys)
	}
	// Extended secant slopes with Akima's quadratic end extension.
	m := make([]float64, n+3) // m[i+2] = secant of interval i
	for i := 0; i < n-1; i++ {
		m[i+2] = (ys[i+1] - ys[i]) / (xs[i+1] - xs[i])
	}
	m[1] = 2*m[2] - m[3]
	m[0] = 2*m[1] - m[2]
	m[n+1] = 2*m[n] - m[n-1]
	m[n+2] = 2*m[n+1] - m[n]
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		w1 := math.Abs(m[i+3] - m[i+2])
		w2 := math.Abs(m[i+1] - m[i])
		if w1+w2 == 0 {
			d[i] = (m[i+1] + m[i+2]) / 2
		} else {
			d[i] = (w1*m[i+1] + w2*m[i+2]) / (w1 + w2)
		}
	}
	return NewHermite(xs, ys, d)
}

// NewSmoothing constructs the Reinsch smoothing spline: the natural cubic
// spline ĥ minimising
//
//	Σᵢ (yᵢ − ĥ(xᵢ))² + λ ∫ ĥ''(x)² dx            (paper eq. 12)
//
// λ = 0 reproduces the natural interpolating spline; λ → ∞ tends to the
// least-squares straight line. Requires at least 3 points.
func NewSmoothing(xs, ys []float64, lambda float64) (*Cubic, error) {
	if err := checkKnots(xs, ys, 3); err != nil {
		return nil, err
	}
	if lambda < 0 {
		return nil, fmt.Errorf("%w: negative smoothing parameter %g", ErrBadKnots, lambda)
	}
	n := len(xs)
	h := make([]float64, n-1)
	for i := range h {
		h[i] = xs[i+1] - xs[i]
	}
	k := n - 2 // number of interior knots / unknown second derivatives
	// Build A = R + λ QᵀQ in symmetric band storage (bandwidth 2) and
	// rhs = Qᵀy, following Green & Silverman (1994), ch. 2.
	band := make([][]float64, k)
	for i := range band {
		band[i] = make([]float64, 3)
	}
	rhs := make([]float64, k)
	q := func(row, col int) float64 {
		// Q is n×k; column j touches rows j, j+1, j+2.
		switch row - col {
		case 0:
			return 1 / h[col]
		case 1:
			return -1/h[col] - 1/h[col+1]
		case 2:
			return 1 / h[col+1]
		default:
			return 0
		}
	}
	for j := 0; j < k; j++ {
		rhs[j] = (ys[j+2]-ys[j+1])/h[j+1] - (ys[j+1]-ys[j])/h[j]
		// R entries.
		band[j][0] = (h[j] + h[j+1]) / 3
		if j+1 < k {
			band[j][1] = h[j+1] / 6
		}
		// λ QᵀQ entries: (QᵀQ)[j][j+Δ] = Σ_row q(row,j)·q(row,j+Δ).
		for delta := 0; delta <= 2 && j+delta < k; delta++ {
			s := 0.0
			for row := j + delta; row <= j+2; row++ {
				s += q(row, j) * q(row, j+delta)
			}
			band[j][delta] += lambda * s
		}
	}
	gamma, err := numeric.SolveBandedSPD(band, rhs, 2)
	if err != nil {
		return nil, fmt.Errorf("spline: smoothing system: %w", err)
	}
	// Fitted knot values g = y − λ Q γ.
	g := append([]float64(nil), ys...)
	for j := 0; j < k; j++ {
		g[j] -= lambda * q(j, j) * gamma[j]
		g[j+1] -= lambda * q(j+1, j) * gamma[j]
		g[j+2] -= lambda * q(j+2, j) * gamma[j]
	}
	m := make([]float64, n)
	copy(m[1:], gamma) // natural: M₀ = M_{n−1} = 0
	return fromSecondDerivs(xs, g, m), nil
}

// NewLinear constructs the piecewise-linear interpolant as a degenerate
// Cubic, giving callers one uniform evaluation interface.
func NewLinear(xs, ys []float64) (*Cubic, error) {
	if err := checkKnots(xs, ys, 2); err != nil {
		return nil, err
	}
	n := len(xs)
	s := &Cubic{
		xs: append([]float64(nil), xs...),
		a:  make([]float64, n-1),
		b:  make([]float64, n-1),
		c:  make([]float64, n-1),
		d:  make([]float64, n-1),
	}
	for i := 0; i < n-1; i++ {
		s.a[i] = ys[i]
		s.b[i] = (ys[i+1] - ys[i]) / (xs[i+1] - xs[i])
	}
	return s, nil
}

// SetExtrapolation selects the out-of-range behaviour and returns the spline
// for chaining. The default is ExtrapConstant (paper eq. 14).
func (s *Cubic) SetExtrapolation(e Extrapolation) *Cubic {
	s.extrap = e
	return s
}

// Extrapolation reports the configured out-of-range behaviour.
func (s *Cubic) Extrapolation() Extrapolation { return s.extrap }

// Knots returns a copy of the knot abscissae.
func (s *Cubic) Knots() []float64 { return append([]float64(nil), s.xs...) }

// Domain returns the sampled interval [x₀, x_{n−1}].
func (s *Cubic) Domain() (lo, hi float64) { return s.xs[0], s.xs[len(s.xs)-1] }

// Eval evaluates the spline at x, honouring the extrapolation mode.
func (s *Cubic) Eval(x float64) float64 {
	v, _, _, _ := s.EvalAll(x)
	return v
}

// EvalDeriv evaluates the k-th derivative (k = 0..3) at x.
func (s *Cubic) EvalDeriv(x float64, k int) float64 {
	v, d1, d2, d3 := s.EvalAll(x)
	switch k {
	case 0:
		return v
	case 1:
		return d1
	case 2:
		return d2
	case 3:
		return d3
	default:
		panic(fmt.Sprintf("spline: unsupported derivative order %d", k))
	}
}

// EvalAll evaluates the spline and its first three derivatives at x in one
// pass, mirroring the paper's eq. 13.
func (s *Cubic) EvalAll(x float64) (v, d1, d2, d3 float64) {
	n := len(s.xs)
	lo, hi := s.xs[0], s.xs[n-1]
	switch {
	case x < lo:
		switch s.extrap {
		case ExtrapConstant:
			return s.a[0], 0, 0, 0
		case ExtrapLinear:
			v0, sl, _, _ := s.evalSegment(0, lo)
			return v0 + sl*(x-lo), sl, 0, 0
		default:
			return s.evalSegment(0, x)
		}
	case x > hi:
		last := n - 2
		switch s.extrap {
		case ExtrapConstant:
			vh, _, _, _ := s.evalSegment(last, hi)
			return vh, 0, 0, 0
		case ExtrapLinear:
			vh, sl, _, _ := s.evalSegment(last, hi)
			return vh + sl*(x-hi), sl, 0, 0
		default:
			return s.evalSegment(last, x)
		}
	}
	return s.evalSegment(s.segment(x), x)
}

// segment locates the interval index containing x ∈ [x₀, x_{n−1}].
func (s *Cubic) segment(x float64) int {
	// sort.SearchFloat64s finds the first knot >= x; the containing
	// interval starts one before (clamped to the valid range).
	i := sort.SearchFloat64s(s.xs, x)
	if i > 0 {
		i--
	}
	if i > len(s.a)-1 {
		i = len(s.a) - 1
	}
	return i
}

func (s *Cubic) evalSegment(i int, x float64) (v, d1, d2, d3 float64) {
	t := x - s.xs[i]
	a, b, c, d := s.a[i], s.b[i], s.c[i], s.d[i]
	v = ((d*t+c)*t+b)*t + a
	d1 = (3*d*t+2*c)*t + b
	d2 = 6*d*t + 2*c
	d3 = 6 * d
	return
}

// Integrate returns ∫ₐᵇ S(x) dx computed analytically per segment, with the
// active extrapolation mode applied outside the knot range.
func (s *Cubic) Integrate(a, b float64) float64 {
	if a == b {
		return 0
	}
	if a > b {
		return -s.Integrate(b, a)
	}
	total := 0.0
	lo, hi := s.Domain()
	// Out-of-range pieces via 5-point Gauss-like fallback (the extrapolants
	// are at most linear or cubic, and Simpson is exact for cubics).
	if a < lo {
		end := math.Min(b, lo)
		total += numeric.Simpson(s.Eval, a, end, 1e-12)
		a = end
	}
	if b > hi {
		start := math.Max(a, hi)
		total += numeric.Simpson(s.Eval, start, b, 1e-12)
		b = hi
	}
	if a >= b {
		return total
	}
	for i := 0; i < len(s.a); i++ {
		segLo := math.Max(a, s.xs[i])
		segHi := math.Min(b, s.xs[i+1])
		if segLo >= segHi {
			continue
		}
		t0 := segLo - s.xs[i]
		t1 := segHi - s.xs[i]
		prim := func(t float64) float64 {
			return ((s.d[i]/4*t+s.c[i]/3)*t+s.b[i]/2)*t*t + s.a[i]*t
		}
		total += prim(t1) - prim(t0)
	}
	return total
}

// Roughness returns ∫ S”(x)² dx over the knot range, evaluated analytically
// (S” is linear per segment). This is the penalty term of eq. 12 and the
// "undulation" measure used in the Chebyshev-vs-random sampling study
// (paper Fig. 15).
func (s *Cubic) Roughness() float64 {
	total := 0.0
	for i := 0; i < len(s.a); i++ {
		h := s.xs[i+1] - s.xs[i]
		c, d := s.c[i], s.d[i]
		// ∫₀ʰ (2c + 6dt)² dt = 4c²h + 12cdh² + 12d²h³
		total += 4*c*c*h + 12*c*d*h*h + 12*d*d*h*h*h
	}
	return total
}

// checkKnots validates strictly increasing xs with matching ys and at least
// minPts points.
func checkKnots(xs, ys []float64, minPts int) error {
	if len(xs) < minPts {
		return fmt.Errorf("%w: need at least %d points, got %d", ErrBadKnots, minPts, len(xs))
	}
	if len(xs) != len(ys) {
		return fmt.Errorf("%w: len(xs)=%d != len(ys)=%d", ErrBadKnots, len(xs), len(ys))
	}
	if !numeric.IsSortedStrict(xs) {
		return fmt.Errorf("%w: abscissae not strictly increasing", ErrBadKnots)
	}
	return nil
}

// naturalSecondDerivs solves the natural-spline tridiagonal system for the
// knot second derivatives M (M₀ = M_{n−1} = 0).
func naturalSecondDerivs(xs, ys []float64) ([]float64, error) {
	if err := checkKnots(xs, ys, 2); err != nil {
		return nil, err
	}
	n := len(xs)
	m := make([]float64, n)
	if n == 2 {
		return m, nil
	}
	h := make([]float64, n-1)
	for i := range h {
		h[i] = xs[i+1] - xs[i]
	}
	k := n - 2
	sub := make([]float64, k)
	diag := make([]float64, k)
	sup := make([]float64, k)
	rhs := make([]float64, k)
	for j := 0; j < k; j++ {
		i := j + 1
		if j > 0 {
			sub[j] = h[i-1] / 6
		}
		diag[j] = (h[i-1] + h[i]) / 3
		if j < k-1 {
			sup[j] = h[i] / 6
		}
		rhs[j] = (ys[i+1]-ys[i])/h[i] - (ys[i]-ys[i-1])/h[i-1]
	}
	inner, err := numeric.SolveTridiagonal(sub, diag, sup, rhs)
	if err != nil {
		return nil, fmt.Errorf("spline: natural system: %w", err)
	}
	copy(m[1:], inner)
	return m, nil
}

// fromSecondDerivs assembles the piecewise-cubic coefficients from knot
// values and knot second derivatives.
func fromSecondDerivs(xs, ys, m []float64) *Cubic {
	n := len(xs)
	s := &Cubic{
		xs: append([]float64(nil), xs...),
		a:  make([]float64, n-1),
		b:  make([]float64, n-1),
		c:  make([]float64, n-1),
		d:  make([]float64, n-1),
	}
	for i := 0; i < n-1; i++ {
		h := xs[i+1] - xs[i]
		s.a[i] = ys[i]
		s.b[i] = (ys[i+1]-ys[i])/h - h*(2*m[i]+m[i+1])/6
		s.c[i] = m[i] / 2
		s.d[i] = (m[i+1] - m[i]) / (6 * h)
	}
	return s
}

// parabolaThrough returns the unique parabola through three points as a
// Cubic (both segments carry the same quadratic).
func parabolaThrough(xs, ys []float64) (*Cubic, error) {
	// Lagrange coefficients for p(x) = y0·L0 + y1·L1 + y2·L2, expressed per
	// segment around its left knot.
	x0, x1, x2 := xs[0], xs[1], xs[2]
	den0 := (x0 - x1) * (x0 - x2)
	den1 := (x1 - x0) * (x1 - x2)
	den2 := (x2 - x0) * (x2 - x1)
	// Quadratic coefficients in global x: p(x) = A + Bx + Cx².
	cA := ys[0]*x1*x2/den0 + ys[1]*x0*x2/den1 + ys[2]*x0*x1/den2
	cB := -ys[0]*(x1+x2)/den0 - ys[1]*(x0+x2)/den1 - ys[2]*(x0+x1)/den2
	cC := ys[0]/den0 + ys[1]/den1 + ys[2]/den2
	s := &Cubic{
		xs: append([]float64(nil), xs...),
		a:  make([]float64, 2),
		b:  make([]float64, 2),
		c:  make([]float64, 2),
		d:  make([]float64, 2),
	}
	for i := 0; i < 2; i++ {
		xi := xs[i]
		// Shift to local coordinate t = x − xi.
		s.a[i] = cA + cB*xi + cC*xi*xi
		s.b[i] = cB + 2*cC*xi
		s.c[i] = cC
		s.d[i] = 0
	}
	return s, nil
}
