package spline_test

import (
	"fmt"

	"repro/internal/spline"
)

// ExampleNewNotAKnot interpolates measured service demands the way the
// paper's MVASD does: a not-a-knot cubic spline with constant extrapolation
// beyond the sampled range (eq. 14).
func ExampleNewNotAKnot() {
	concurrency := []float64{1, 14, 28, 70, 140, 210}
	demandMs := []float64{10.0, 8.5, 7.7, 7.0, 6.8, 6.7}
	s, err := spline.NewNotAKnot(concurrency, demandMs)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("D(50)  = %.2f ms (interpolated)\n", s.Eval(50))
	fmt.Printf("D(500) = %.2f ms (pegged to the last sample)\n", s.Eval(500))
	// Output:
	// D(50)  = 7.15 ms (interpolated)
	// D(500) = 6.70 ms (pegged to the last sample)
}

// ExampleNewSmoothing fits a Reinsch smoothing spline to noisy samples:
// λ trades fidelity for roughness (paper eq. 12).
func ExampleNewSmoothing() {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0.1, 1.2, 1.9, 3.1, 3.9, 5.1} // noisy line
	rough, _ := spline.NewSmoothing(xs, ys, 0)    // interpolates the noise
	smooth, _ := spline.NewSmoothing(xs, ys, 1e6) // essentially the LS line
	fmt.Printf("roughness: interpolant %.3f, smoothed %.6f\n",
		rough.Roughness(), smooth.Roughness())
	// Output:
	// roughness: interpolant 1.806, smoothed 0.000000
}
