package spline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

// randKnots turns arbitrary quick-generated data into a valid knot set:
// 4..12 strictly increasing abscissae with bounded ordinates.
func randKnots(seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(9)
	xs = make([]float64, n)
	ys = make([]float64, n)
	x := rng.Float64()*10 - 5
	for i := 0; i < n; i++ {
		x += 0.1 + rng.Float64()*3
		xs[i] = x
		ys[i] = rng.Float64()*20 - 10
	}
	return xs, ys
}

// TestQuickAllVariantsInterpolate: every interpolating constructor passes
// through its knots for arbitrary valid data.
func TestQuickAllVariantsInterpolate(t *testing.T) {
	constructors := map[string]func(xs, ys []float64) (*Cubic, error){
		"natural":    NewNatural,
		"not-a-knot": NewNotAKnot,
		"pchip":      NewPCHIP,
		"akima":      NewAkima,
		"linear":     NewLinear,
	}
	f := func(seed int64) bool {
		xs, ys := randKnots(seed)
		for name, ctor := range constructors {
			s, err := ctor(xs, ys)
			if err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			for i := range xs {
				if !numeric.AlmostEqual(s.Eval(xs[i]), ys[i], 1e-8) {
					t.Logf("%s misses knot %d: %g vs %g", name, i, s.Eval(xs[i]), ys[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickPCHIPMonotone: PCHIP through monotone data is monotone for
// arbitrary decreasing sequences (the service-demand shape).
func TestQuickPCHIPMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x, y := 1.0, 1.0+rng.Float64()
		for i := 0; i < n; i++ {
			x += 0.5 + rng.Float64()*40
			y -= rng.Float64() * 0.1 // non-increasing
			xs[i], ys[i] = x, y
		}
		s, err := NewPCHIP(xs, ys)
		if err != nil {
			return false
		}
		prev := s.Eval(xs[0])
		for _, xq := range numeric.Linspace(xs[0], xs[n-1], 200)[1:] {
			cur := s.Eval(xq)
			if cur > prev+1e-10 {
				t.Logf("seed %d: not monotone at %g", seed, xq)
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickConstantExtrapolationBounds: under eq.-14 pegging the spline is
// constant outside the knot range for arbitrary data.
func TestQuickConstantExtrapolationBounds(t *testing.T) {
	f := func(seed int64, probe float64) bool {
		xs, ys := randKnots(seed)
		s, err := NewNatural(xs, ys)
		if err != nil {
			return false
		}
		lo, hi := s.Domain()
		probe = math.Mod(math.Abs(probe), 1e6) + 1
		left := lo - probe
		right := hi + probe
		// The right boundary value is the last segment's polynomial
		// evaluated at its end, equal to the knot ordinate only up to
		// rounding.
		return numeric.AlmostEqual(s.Eval(left), ys[0], 1e-12) &&
			numeric.AlmostEqual(s.Eval(right), ys[len(ys)-1], 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSmoothingNeverIncreasesRoughness: for any λ2 > λ1 the smoothing
// spline's roughness does not increase.
func TestQuickSmoothingMonotoneInLambda(t *testing.T) {
	f := func(seed int64, l1, l2 float64) bool {
		xs, ys := randKnots(seed)
		// Map the raw inputs into a numerically sane λ range; λ of order
		// 1e308 overflows the banded system and is rejected upstream.
		a := math.Mod(math.Abs(l1), 1e8)
		b := math.Mod(math.Abs(l2), 1e8)
		if a > b {
			a, b = b, a
		}
		s1, err := NewSmoothing(xs, ys, a)
		if err != nil {
			return false
		}
		s2, err := NewSmoothing(xs, ys, b)
		if err != nil {
			return false
		}
		return s2.Roughness() <= s1.Roughness()*(1+1e-9)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntegralAdditivity: ∫ₐᵇ + ∫ᵇᶜ = ∫ₐᶜ for arbitrary split points.
func TestQuickIntegralAdditivity(t *testing.T) {
	f := func(seed int64, f1, f2 float64) bool {
		xs, ys := randKnots(seed)
		s, err := NewNatural(xs, ys)
		if err != nil {
			return false
		}
		lo, hi := s.Domain()
		// Map f1, f2 into the domain.
		u1 := lo + math.Mod(math.Abs(f1), 1)*(hi-lo)
		u2 := lo + math.Mod(math.Abs(f2), 1)*(hi-lo)
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		whole := s.Integrate(lo, hi)
		split := s.Integrate(lo, u1) + s.Integrate(u1, u2) + s.Integrate(u2, hi)
		return numeric.AlmostEqual(whole, split, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
