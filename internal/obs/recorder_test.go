package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/queueing"
	"repro/internal/telemetry"
)

// mkTrace builds a finished trace with a root and n child spans.
func mkTrace(id string, children int) *telemetry.Trace {
	tr := telemetry.New(id, nil)
	root := tr.StartRoot("solve")
	for i := 0; i < children; i++ {
		sp := tr.StartSpan(fmt.Sprintf("phase-%d", i))
		sp.End()
	}
	root.End()
	return tr
}

func TestTailSampling(t *testing.T) {
	r := New(Config{Node: "a", SlowThreshold: 100 * time.Millisecond, SampleRate: -1})

	// Errors and slow requests are always kept, regardless of sampling.
	r.Record(mkTrace("err-1", 0), "solve", 502, time.Millisecond)
	r.Record(mkTrace("slow-1", 0), "solve", 200, 150*time.Millisecond)
	// Fast success at rate -1 (keep none) is dropped.
	r.Record(mkTrace("fast-1", 0), "solve", 200, time.Millisecond)

	if got := r.Get("err-1"); len(got) != 1 {
		t.Errorf("error trace not kept: %v", got)
	}
	if got := r.Get("slow-1"); len(got) != 1 {
		t.Errorf("slow trace not kept: %v", got)
	}
	if got := r.Get("fast-1"); got != nil {
		t.Errorf("fast trace kept at rate -1: %v", got)
	}
	st := r.Stats()
	if st.Kept != 2 || st.Dropped != 1 {
		t.Errorf("stats kept=%d dropped=%d, want 2/1", st.Kept, st.Dropped)
	}

	idx := r.Index()
	if len(idx) != 2 {
		t.Fatalf("index has %d traces, want 2", len(idx))
	}
	var sawErr, sawSlow bool
	for _, s := range idx {
		if s.ID == "err-1" && s.Error {
			sawErr = true
		}
		if s.ID == "slow-1" && s.Slow {
			sawSlow = true
		}
	}
	if !sawErr || !sawSlow {
		t.Errorf("index flags wrong: %+v", idx)
	}
}

func TestSampleKeepDeterministic(t *testing.T) {
	// The decision is a pure function of (id, rate): every node agrees.
	kept := 0
	const n = 2000
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("trace-%04d", i)
		a := SampleKeep(id, 0.1)
		b := SampleKeep(id, 0.1)
		if a != b {
			t.Fatalf("SampleKeep(%q) not deterministic", id)
		}
		if a {
			kept++
		}
	}
	// 10% of 2000 with FNV spreading: allow a generous band.
	if kept < n/20 || kept > n/4 {
		t.Errorf("kept %d of %d at rate 0.1 — hash badly skewed", kept, n)
	}
	if !SampleKeep("anything", 1) {
		t.Error("rate 1 must keep everything")
	}
	if SampleKeep("anything", 0) {
		t.Error("rate 0 must keep nothing")
	}
}

func TestBoundedMemoryTraceCap(t *testing.T) {
	r := New(Config{Node: "a", MaxTraces: 4, SampleRate: 1})
	for i := 0; i < 10; i++ {
		r.Record(mkTrace(fmt.Sprintf("t-%02d", i), 2), "solve", 200, time.Millisecond)
	}
	st := r.Stats()
	if st.Traces != 4 {
		t.Errorf("retained %d traces, want 4", st.Traces)
	}
	if st.Evictions != 6 {
		t.Errorf("evictions = %d, want 6", st.Evictions)
	}
	// Oldest gone, newest present.
	if r.Get("t-00") != nil || r.Get("t-05") != nil {
		t.Error("evicted traces still retrievable")
	}
	for i := 6; i < 10; i++ {
		if r.Get(fmt.Sprintf("t-%02d", i)) == nil {
			t.Errorf("recent trace t-%02d evicted", i)
		}
	}
}

func TestBoundedMemorySpanAndByteCaps(t *testing.T) {
	r := New(Config{Node: "a", MaxTraces: 1000, MaxSpans: 10, SampleRate: 1})
	for i := 0; i < 8; i++ {
		r.Record(mkTrace(fmt.Sprintf("s-%d", i), 3), "solve", 200, time.Millisecond) // 4 spans each
	}
	if st := r.Stats(); st.Spans > 10 {
		t.Errorf("span cap exceeded: %d > 10", st.Spans)
	}

	rb := New(Config{Node: "a", MaxTraces: 1000, MaxBytes: 2000, SampleRate: 1})
	for i := 0; i < 8; i++ {
		rb.Record(mkTrace(fmt.Sprintf("b-%d", i), 5), "solve", 200, time.Millisecond)
	}
	if st := rb.Stats(); st.Bytes > 2000 {
		t.Errorf("byte cap exceeded: %d > 2000", st.Bytes)
	}

	// A single oversized trace is retained rather than truncated.
	r1 := New(Config{Node: "a", MaxSpans: 2, SampleRate: 1})
	r1.Record(mkTrace("huge", 9), "solve", 200, time.Millisecond)
	if got := r1.Get("huge"); len(got) != 1 {
		t.Error("sole oversized trace was evicted")
	}
}

func TestRecorderDisabled(t *testing.T) {
	r := New(Config{MaxTraces: -1})
	r.Record(mkTrace("x", 0), "solve", 500, time.Second)
	r.ForceRecord(mkTrace("y", 0), "solve", 200, 0)
	if st := r.Stats(); st.Traces != 0 {
		t.Errorf("disabled recorder stored %d traces", st.Traces)
	}

	var nilRec *Recorder
	nilRec.Record(mkTrace("x", 0), "solve", 500, time.Second)
	nilRec.Add(&RecordedRequest{TraceID: "x"})
	if nilRec.Get("x") != nil || nilRec.Index() != nil || nilRec.Node() != "" {
		t.Error("nil recorder returned data")
	}
	if nilRec.ShouldKeep("x", 500, time.Hour) {
		t.Error("nil recorder wants to keep")
	}
	nilRec.WriteMetrics(&strings.Builder{})
}

func TestForceRecordBypassesSampling(t *testing.T) {
	r := New(Config{Node: "a", SampleRate: -1})
	r.ForceRecord(mkTrace("forced", 0), "deviation", 200, time.Microsecond)
	if r.Get("forced") == nil {
		t.Error("ForceRecord dropped the trace")
	}
}

func TestMultipleRecordsPerTrace(t *testing.T) {
	r := New(Config{Node: "a", SampleRate: 1})
	r.Record(mkTrace("shared", 1), "sweep", 200, time.Millisecond)
	r.Add(&RecordedRequest{Node: "b", TraceID: "shared", Handler: "solve", Status: 200,
		Spans: []telemetry.SpanRecord{{ID: "aaaa", Name: "solve", Ended: true}}})
	recs := r.Get("shared")
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	idx := r.Index()
	if len(idx) != 1 || idx[0].Requests != 2 || idx[0].Spans != 3 {
		t.Errorf("index = %+v, want one trace with 2 requests / 3 spans", idx)
	}
}

// TestRecorderConcurrent hammers every public method from many goroutines;
// run with -race this is the data-race guard for the store.
func TestRecorderConcurrent(t *testing.T) {
	r := New(Config{Node: "a", MaxTraces: 32, MaxSpans: 256, SampleRate: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("c-%d-%d", g, i)
				r.Record(mkTrace(id, 2), "solve", 200, time.Millisecond)
				_ = r.Get(id)
				_ = r.Index()
				_ = r.Stats()
				var b strings.Builder
				r.WriteMetrics(&b)
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if st.Traces > 32 || st.Spans > 256 {
		t.Errorf("caps breached under concurrency: %+v", st)
	}
	if st.Kept != 800 {
		t.Errorf("kept = %d, want 800", st.Kept)
	}
}

func TestWriteMetrics(t *testing.T) {
	r := New(Config{Node: "a", MaxTraces: 2, SampleRate: 1})
	for i := 0; i < 4; i++ {
		r.Record(mkTrace(fmt.Sprintf("m-%d", i), 1), "solve", 200, time.Millisecond)
	}
	var b strings.Builder
	r.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"solverd_trace_store_traces 2",
		"solverd_trace_store_spans 4",
		"solverd_trace_store_evictions_total 2",
		"solverd_trace_store_kept_total 4",
		"# TYPE solverd_trace_store_bytes gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestExactMVAStepAllocsWithRecorder mirrors the core hot-path guard with the
// full server-shaped observation stack attached: per-step hooks doing only
// counter work, a live trace, and a recorder that snapshots at completion.
// The per-population step must stay 0 allocs/op.
func TestExactMVAStepAllocsWithRecorder(t *testing.T) {
	m := &queueing.Model{
		Name:      "alloc-guard",
		ThinkTime: 1,
		Stations: []queueing.Station{
			{Name: "cpu", Kind: queueing.CPU, Servers: 2, Visits: 1, ServiceTime: 0.05},
			{Name: "disk", Kind: queueing.Disk, Servers: 1, Visits: 1, ServiceTime: 0.03},
		},
	}
	s, err := core.NewExactMVASolver(m)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()

	rec := New(Config{Node: "a", SampleRate: 1})
	tr := telemetry.New("alloc-trace", nil)
	root := tr.StartRoot("solve")
	var steps int
	var progress atomic.Int64
	s.SetHooks(&core.SolveHooks{OnStep: func(n int, _ float64) {
		steps++
		progress.Store(int64(n))
	}})

	const runs = 200
	s.Reserve(runs + 2)
	n := 0
	allocs := testing.AllocsPerRun(runs, func() {
		n++
		if err := s.Extend(n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("observed exact-MVA step allocates %.2f objects/op, want 0", allocs)
	}
	if steps == 0 {
		t.Fatal("OnStep never fired")
	}

	root.SetAttr("steps", steps)
	root.End()
	rec.Record(tr, "solve", 200, time.Second) // slow → kept
	if got := rec.Get("alloc-trace"); len(got) != 1 || len(got[0].Spans) != 1 {
		t.Fatalf("trace not recorded: %+v", got)
	}
}
