package obs

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// TreeNode is one span in a stitched cross-node trace tree.
type TreeNode struct {
	Span     telemetry.SpanRecord `json:"span"`
	Node     string               `json:"node"`
	Children []*TreeNode          `json:"children,omitempty"`
}

// Stitch merges span fragments collected from any number of nodes into one
// tree per root. Linking is purely structural — a span hangs under the span
// whose ID its Parent names, wherever that parent ran — so the result is
// immune to clock skew between nodes: ordering comes from parent/child
// containment plus each fragment's own in-node span order, never from
// comparing wall clocks across machines.
//
// Spans whose parent is unknown (the caller's fragment was dropped, or the
// node holding it is down) become additional roots rather than being lost,
// so partial traces still render.
func Stitch(fragments []*RecordedRequest) []*TreeNode {
	byID := make(map[string]*TreeNode)
	var order []*TreeNode // insertion order: per-fragment span order, fragments as given
	for _, frag := range fragments {
		if frag == nil {
			continue
		}
		for _, sp := range frag.Spans {
			if sp.ID == "" || byID[sp.ID] != nil {
				continue // unidentifiable or duplicate fragment (replicated record)
			}
			n := &TreeNode{Span: sp, Node: frag.Node}
			byID[sp.ID] = n
			order = append(order, n)
		}
	}
	var roots []*TreeNode
	for _, n := range order {
		if p := byID[n.Span.Parent]; p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	// A parent cycle (corrupt input) would leave spans attached to each
	// other but reachable from no root. Promote one member of each such
	// cycle to a root and cut its back edge, so the result is always a true
	// forest — downstream walkers (SpanCount, RenderTree, JSON encoding)
	// need no cycle guards.
	seen := make(map[*TreeNode]bool)
	var mark func(*TreeNode)
	mark = func(n *TreeNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.Children {
			mark(c)
		}
	}
	for _, r := range roots {
		mark(r)
	}
	for _, n := range order {
		if seen[n] {
			continue
		}
		if p := byID[n.Span.Parent]; p != nil {
			for i, c := range p.Children {
				if c == n {
					p.Children = append(p.Children[:i], p.Children[i+1:]...)
					break
				}
			}
		}
		mark(n)
		roots = append(roots, n)
	}
	return roots
}

// SpanCount returns the number of spans in the stitched forest.
func SpanCount(roots []*TreeNode) int {
	total := 0
	var walk func(*TreeNode)
	walk = func(n *TreeNode) {
		total++
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return total
}

// Nodes returns the distinct node names contributing spans, in first-seen order.
func Nodes(roots []*TreeNode) []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(*TreeNode)
	walk = func(n *TreeNode) {
		if !seen[n.Node] {
			seen[n.Node] = true
			out = append(out, n.Node)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// RenderTree writes the stitched forest as an indented text tree, one span
// per line with its node, duration and attributes:
//
//	solve @node-a 12.4ms [status=200 cache=miss]
//	└─ forward @node-a 11.8ms [peer=node-b]
//	   └─ solve @node-b 11.2ms [cache=hit]
func RenderTree(w io.Writer, roots []*TreeNode) {
	seen := make(map[*TreeNode]bool)
	var walk func(n *TreeNode, prefix string, last bool, top bool)
	walk = func(n *TreeNode, prefix string, last, top bool) {
		if seen[n] {
			return
		}
		seen[n] = true
		line := prefix
		childPrefix := prefix
		if !top {
			if last {
				line += "└─ "
				childPrefix += "   "
			} else {
				line += "├─ "
				childPrefix += "│  "
			}
		}
		fmt.Fprintf(w, "%s%s @%s %s%s\n", line, n.Span.Name, n.Node,
			fmtDur(n.Span.Duration), fmtAttrs(n.Span.Attrs))
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1, false)
		}
	}
	for _, r := range roots {
		walk(r, "", true, true)
	}
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}

func fmtAttrs(attrs []telemetry.SpanAttr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(" [")
	for i, a := range attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	b.WriteByte(']')
	return b.String()
}
