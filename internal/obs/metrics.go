package obs

import (
	"fmt"
	"io"
)

// WriteMetrics renders the recorder's occupancy series in the Prometheus
// text exposition format. The server appends it to /metrics output.
func (r *Recorder) WriteMetrics(w io.Writer) {
	if r == nil {
		return
	}
	s := r.Stats()
	fmt.Fprintln(w, "# HELP solverd_trace_store_traces Traces currently retained by the flight recorder.")
	fmt.Fprintln(w, "# TYPE solverd_trace_store_traces gauge")
	fmt.Fprintf(w, "solverd_trace_store_traces %d\n", s.Traces)
	fmt.Fprintln(w, "# HELP solverd_trace_store_spans Spans currently retained by the flight recorder.")
	fmt.Fprintln(w, "# TYPE solverd_trace_store_spans gauge")
	fmt.Fprintf(w, "solverd_trace_store_spans %d\n", s.Spans)
	fmt.Fprintln(w, "# HELP solverd_trace_store_bytes Approximate bytes retained by the flight recorder.")
	fmt.Fprintln(w, "# TYPE solverd_trace_store_bytes gauge")
	fmt.Fprintf(w, "solverd_trace_store_bytes %d\n", s.Bytes)
	fmt.Fprintln(w, "# HELP solverd_trace_store_evictions_total Traces evicted to stay under the recorder's caps.")
	fmt.Fprintln(w, "# TYPE solverd_trace_store_evictions_total counter")
	fmt.Fprintf(w, "solverd_trace_store_evictions_total %d\n", s.Evictions)
	fmt.Fprintln(w, "# HELP solverd_trace_store_kept_total Completed requests retained by tail-sampling.")
	fmt.Fprintln(w, "# TYPE solverd_trace_store_kept_total counter")
	fmt.Fprintf(w, "solverd_trace_store_kept_total %d\n", s.Kept)
	fmt.Fprintln(w, "# HELP solverd_trace_store_dropped_total Completed requests dropped by tail-sampling.")
	fmt.Fprintln(w, "# TYPE solverd_trace_store_dropped_total counter")
	fmt.Fprintf(w, "solverd_trace_store_dropped_total %d\n", s.Dropped)
}
