// Package obs is solverd's flight recorder: a bounded, allocation-conscious
// store of completed request traces, plus the stitcher that merges per-node
// span fragments into one cross-node tree.
//
// The recorder applies a tail-sampling policy at request completion — the
// decision is made after the outcome is known, so it can always keep what
// matters: error traces (status >= 500) and traces slower than a configurable
// threshold are retained unconditionally; the rest are sampled by a
// deterministic hash of the trace ID, so every node in a cluster makes the
// same keep/drop call and a kept trace has fragments on all nodes it touched.
// Storage is hard-capped on traces, spans and approximate bytes; when any cap
// is exceeded the oldest trace is evicted whole.
package obs

import (
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultMaxTraces     = 512
	DefaultMaxSpans      = 16384
	DefaultMaxBytes      = 8 << 20
	DefaultSlowThreshold = 250 * time.Millisecond
	DefaultSampleRate    = 0.05
)

// Config bounds and tunes a Recorder.
type Config struct {
	// Node names this recorder's node in stored fragments (e.g. the
	// advertised host:port). Empty means standalone; fragments carry "local".
	Node string

	// MaxTraces caps retained trace IDs (default 512, negative disables the
	// recorder entirely — Record becomes a drop).
	MaxTraces int

	// MaxSpans caps the total spans across all retained traces (default 16384).
	MaxSpans int

	// MaxBytes caps the approximate retained bytes (default 8 MiB).
	MaxBytes int

	// SlowThreshold marks a trace "slow" — kept unconditionally — when its
	// request duration reaches it (default 250ms).
	SlowThreshold time.Duration

	// SampleRate is the keep probability for ordinary (fast, successful)
	// traces: 0 means the 0.05 default, >= 1 keeps everything, negative
	// keeps none. The decision hashes the trace ID, so it is deterministic
	// and cluster-wide consistent.
	SampleRate float64
}

// RecordedRequest is one node's record of one completed request: the unit the
// recorder stores and ships to peers for stitching.
type RecordedRequest struct {
	Node     string                 `json:"node"`
	TraceID  string                 `json:"traceId"`
	Handler  string                 `json:"handler"`
	Status   int                    `json:"status"`
	Start    time.Time              `json:"start"`
	Duration time.Duration          `json:"duration"`
	Attrs    []telemetry.SpanAttr   `json:"attrs,omitempty"`
	Spans    []telemetry.SpanRecord `json:"spans"`
}

// approxBytes estimates the record's retained size for the byte cap. It
// counts string payloads plus fixed per-struct overheads; exactness does not
// matter, stability of the estimate does (the same record always costs the
// same, so eviction accounting balances).
func (r *RecordedRequest) approxBytes() int {
	n := 96 + len(r.Node) + len(r.TraceID) + len(r.Handler)
	for _, a := range r.Attrs {
		n += 32 + len(a.Key) + len(a.Value)
	}
	for i := range r.Spans {
		sp := &r.Spans[i]
		n += 96 + len(sp.ID) + len(sp.Parent) + len(sp.Name)
		for _, a := range sp.Attrs {
			n += 32 + len(a.Key) + len(a.Value)
		}
	}
	return n
}

// TraceSummary is one retained trace as listed by Index.
type TraceSummary struct {
	ID       string        `json:"id"`
	Handler  string        `json:"handler"`
	Status   int           `json:"status"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Requests int           `json:"requests"`
	Spans    int           `json:"spans"`
	Slow     bool          `json:"slow"`
	Error    bool          `json:"error"`
}

// Stats is a snapshot of recorder occupancy and lifetime counters.
type Stats struct {
	Traces    int    `json:"traces"`
	Spans     int    `json:"spans"`
	Bytes     int    `json:"bytes"`
	Kept      uint64 `json:"kept"`
	Dropped   uint64 `json:"dropped"`
	Evictions uint64 `json:"evictions"`
}

// Recorder is the bounded flight-recorder store. All methods are safe for
// concurrent use and no-ops on a nil receiver, so call sites never need a
// "tracing enabled?" branch.
type Recorder struct {
	cfg Config

	mu        sync.Mutex
	byID      map[string][]*RecordedRequest
	order     []string // retained trace IDs, oldest first
	spans     int
	bytes     int
	kept      uint64
	dropped   uint64
	evictions uint64
}

// New builds a Recorder, applying defaults for zero Config fields. A negative
// MaxTraces yields a recorder that drops everything (still nil-safe to call).
func New(cfg Config) *Recorder {
	if cfg.Node == "" {
		cfg.Node = "local"
	}
	if cfg.MaxTraces == 0 {
		cfg.MaxTraces = DefaultMaxTraces
	}
	if cfg.MaxSpans == 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	return &Recorder{cfg: cfg, byID: make(map[string][]*RecordedRequest)}
}

// Node returns the recorder's node name ("" for nil).
func (r *Recorder) Node() string {
	if r == nil {
		return ""
	}
	return r.cfg.Node
}

// SampleKeep reports the deterministic tail-sampling decision for an ordinary
// (fast, successful) trace ID at the given rate: FNV-1a of the ID mapped to
// [0,1) compared against rate. Exported so tests and peers can predict it.
func SampleKeep(traceID string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(traceID))
	return float64(h.Sum64())/float64(math.MaxUint64) < rate
}

// ShouldKeep reports whether a completed request with the given status and
// duration passes the tail-sampling policy for trace id.
func (r *Recorder) ShouldKeep(id string, status int, dur time.Duration) bool {
	if r == nil || r.cfg.MaxTraces < 0 {
		return false
	}
	if status >= 500 || dur >= r.cfg.SlowThreshold {
		return true
	}
	return SampleKeep(id, r.cfg.SampleRate)
}

// Record applies tail-sampling to a completed traced request and, when kept,
// snapshots the trace's spans and attributes into the store. It is called
// once per request at completion — never on the solver hot path.
func (r *Recorder) Record(tr *telemetry.Trace, handler string, status int, dur time.Duration) {
	if r == nil || tr == nil {
		return
	}
	if !r.ShouldKeep(tr.ID(), status, dur) {
		r.mu.Lock()
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.record(tr, handler, status, dur)
}

// ForceRecord stores the trace unconditionally, bypassing sampling. Used for
// out-of-band events that must never be dropped (e.g. prediction-deviation
// breaches from internal/monitor).
func (r *Recorder) ForceRecord(tr *telemetry.Trace, handler string, status int, dur time.Duration) {
	if r == nil || tr == nil || r.cfg.MaxTraces < 0 {
		return
	}
	r.record(tr, handler, status, dur)
}

func (r *Recorder) record(tr *telemetry.Trace, handler string, status int, dur time.Duration) {
	rec := &RecordedRequest{
		Node:     r.cfg.Node,
		TraceID:  tr.ID(),
		Handler:  handler,
		Status:   status,
		Start:    tr.Start(),
		Duration: dur,
		Spans:    tr.SpanRecords(),
	}
	for _, a := range tr.Attrs() {
		rec.Attrs = append(rec.Attrs, telemetry.SpanAttr{Key: a.Key, Value: a.Value.String()})
	}
	r.Add(rec)
}

// Add inserts an already-built record (a local completion or a fragment
// replicated from a peer) and enforces the caps, evicting oldest traces
// whole until the store fits again. The newest trace is never evicted, so a
// single oversized trace is retained (truncating it would break stitching).
func (r *Recorder) Add(rec *RecordedRequest) {
	if r == nil || rec == nil || rec.TraceID == "" || r.cfg.MaxTraces < 0 {
		return
	}
	sz := rec.approxBytes()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[rec.TraceID]; !ok {
		r.order = append(r.order, rec.TraceID)
	}
	r.byID[rec.TraceID] = append(r.byID[rec.TraceID], rec)
	r.spans += len(rec.Spans)
	r.bytes += sz
	r.kept++
	for len(r.order) > 1 &&
		(len(r.order) > r.cfg.MaxTraces || r.spans > r.cfg.MaxSpans || r.bytes > r.cfg.MaxBytes) {
		oldest := r.order[0]
		r.order = r.order[1:]
		for _, old := range r.byID[oldest] {
			r.spans -= len(old.Spans)
			r.bytes -= old.approxBytes()
		}
		delete(r.byID, oldest)
		r.evictions++
	}
}

// Get returns the stored records for a trace ID, oldest first (nil when the
// trace is unknown). Records are shared snapshots: callers must not mutate.
func (r *Recorder) Get(id string) []*RecordedRequest {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	recs := r.byID[id]
	if recs == nil {
		return nil
	}
	return append([]*RecordedRequest(nil), recs...)
}

// Index summarizes every retained trace, newest first.
func (r *Recorder) Index() []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSummary, 0, len(r.order))
	for _, id := range r.order {
		recs := r.byID[id]
		s := TraceSummary{ID: id, Requests: len(recs)}
		for _, rec := range recs {
			s.Spans += len(rec.Spans)
			if rec.Status >= 500 {
				s.Error = true
			}
			if rec.Duration >= r.cfg.SlowThreshold {
				s.Slow = true
			}
			if rec.Duration >= s.Duration {
				// Report the trace's dominant request: the slowest one.
				s.Handler, s.Status, s.Start, s.Duration = rec.Handler, rec.Status, rec.Start, rec.Duration
			}
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Stats snapshots occupancy and lifetime counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Traces:    len(r.order),
		Spans:     r.spans,
		Bytes:     r.bytes,
		Kept:      r.kept,
		Dropped:   r.dropped,
		Evictions: r.evictions,
	}
}
