package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func sp(id, parent, name string) telemetry.SpanRecord {
	return telemetry.SpanRecord{ID: id, Parent: parent, Name: name,
		Duration: 5 * time.Millisecond, Ended: true}
}

func TestStitchCrossNode(t *testing.T) {
	// Node A handled the client request and forwarded to node B; B's root
	// parents to A's forward span via X-Parent-Span. Fragment order is
	// B-before-A on purpose: linking must not depend on arrival order.
	fragB := &RecordedRequest{Node: "b", TraceID: "t1", Spans: []telemetry.SpanRecord{
		sp("b-root", "a-fwd", "solve"),
		sp("b-solve", "b-root", "run"),
	}}
	fragA := &RecordedRequest{Node: "a", TraceID: "t1", Spans: []telemetry.SpanRecord{
		sp("a-root", "", "solve"),
		sp("a-fwd", "a-root", "forward"),
	}}
	roots := Stitch([]*RecordedRequest{fragB, fragA})
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1 stitched tree", len(roots))
	}
	if roots[0].Span.ID != "a-root" || roots[0].Node != "a" {
		t.Fatalf("root is %s@%s, want a-root@a", roots[0].Span.ID, roots[0].Node)
	}
	if SpanCount(roots) != 4 {
		t.Errorf("stitched %d spans, want 4", SpanCount(roots))
	}
	nodes := Nodes(roots)
	if len(nodes) != 2 {
		t.Errorf("nodes = %v, want [a b]", nodes)
	}
	// a-fwd's child is b-root, which owns b-solve.
	fwd := roots[0].Children[0]
	if fwd.Span.ID != "a-fwd" || len(fwd.Children) != 1 || fwd.Children[0].Span.ID != "b-root" {
		t.Errorf("forward subtree wrong: %+v", fwd)
	}
	if fwd.Children[0].Children[0].Span.ID != "b-solve" {
		t.Error("b-solve not under b-root")
	}
}

func TestStitchPartialFragments(t *testing.T) {
	// The owner node died: its fragment (including the span that parented
	// the peer's root) is missing. The orphaned subtree must surface as an
	// extra root, not vanish.
	fragA := &RecordedRequest{Node: "a", TraceID: "t2", Spans: []telemetry.SpanRecord{
		sp("a-root", "", "solve"),
	}}
	fragC := &RecordedRequest{Node: "c", TraceID: "t2", Spans: []telemetry.SpanRecord{
		sp("c-root", "dead-node-span", "solve"),
		sp("c-run", "c-root", "run"),
	}}
	roots := Stitch([]*RecordedRequest{fragA, fragC})
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (orphan surfaces)", len(roots))
	}
	if SpanCount(roots) != 3 {
		t.Errorf("span count %d, want 3", SpanCount(roots))
	}
}

func TestStitchDuplicateAndCorruptInput(t *testing.T) {
	// Replicated fragments carry the same span IDs; duplicates are dropped.
	frag := &RecordedRequest{Node: "a", TraceID: "t3", Spans: []telemetry.SpanRecord{
		sp("x", "", "solve"),
		sp("y", "x", "run"),
	}}
	dup := &RecordedRequest{Node: "b", TraceID: "t3", Spans: []telemetry.SpanRecord{
		sp("x", "", "solve"),
	}}
	roots := Stitch([]*RecordedRequest{frag, dup, nil})
	if len(roots) != 1 || SpanCount(roots) != 2 {
		t.Fatalf("dup handling wrong: %d roots, %d spans", len(roots), SpanCount(roots))
	}

	// A parent cycle (corrupt input) must not hang or drop spans.
	cyc := &RecordedRequest{Node: "a", TraceID: "t4", Spans: []telemetry.SpanRecord{
		sp("p", "q", "one"),
		sp("q", "p", "two"),
	}}
	roots = Stitch([]*RecordedRequest{cyc})
	if SpanCount(roots) != 2 {
		t.Fatalf("cycle dropped spans: %d", SpanCount(roots))
	}

	// Self-parent.
	self := &RecordedRequest{Node: "a", TraceID: "t5", Spans: []telemetry.SpanRecord{
		sp("s", "s", "selfie"),
	}}
	roots = Stitch([]*RecordedRequest{self})
	if len(roots) != 1 || SpanCount(roots) != 1 {
		t.Fatalf("self-parent handling wrong: %d roots", len(roots))
	}

	if got := Stitch(nil); len(got) != 0 {
		t.Errorf("Stitch(nil) = %v", got)
	}
}

func TestRenderTree(t *testing.T) {
	fragA := &RecordedRequest{Node: "a", TraceID: "t6", Spans: []telemetry.SpanRecord{
		{ID: "r", Name: "solve", Duration: 12 * time.Millisecond, Ended: true,
			Attrs: []telemetry.SpanAttr{{Key: "status", Value: "200"}, {Key: "cache", Value: "miss"}}},
		sp("f", "r", "forward"),
		sp("g", "r", "cache"),
	}}
	fragB := &RecordedRequest{Node: "b", TraceID: "t6", Spans: []telemetry.SpanRecord{
		sp("br", "f", "solve"),
	}}
	var b strings.Builder
	RenderTree(&b, Stitch([]*RecordedRequest{fragA, fragB}))
	out := b.String()
	for _, want := range []string{
		"solve @a 12.000ms [status=200 cache=miss]",
		"├─ forward @a",
		"└─ solve @b",
		"└─ cache @a",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") != 4 {
		t.Errorf("want 4 lines, got:\n%s", out)
	}
}
