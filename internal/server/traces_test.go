package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/modelio"
	"repro/internal/obs"
)

// postJSONWithID posts body with an explicit X-Request-Id plus optional extra
// header key/value pairs.
func postJSONWithID(t *testing.T, client *http.Client, url, id string, body any, hdr ...string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", id)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestFlightRecorderEndpoints drives a solve through a server with a
// keep-everything recorder and reads it back via /debug/traces and
// /debug/traces/{id}: the root span must carry the handler name and status,
// the solve span its step count, and introspection endpoints must not be
// recorded.
func TestFlightRecorderEndpoints(t *testing.T) {
	rec := obs.New(obs.Config{Node: "test-node", SampleRate: 1})
	_, ts := newTestServer(t, Config{Recorder: rec})

	client := &http.Client{}
	body := modelio.SolveRequest{Algorithm: modelio.AlgoExact, Model: testModel(), MaxN: 40}
	resp, _ := postJSONWithID(t, client, ts.URL+"/v1/solve", "trace-ep-1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}

	// Introspection reads must not pollute the store.
	if r, _ := getBody(t, ts.URL+"/healthz"); r.StatusCode != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if r, _ := getBody(t, ts.URL+"/metrics"); r.StatusCode != http.StatusOK {
		t.Fatal("metrics failed")
	}

	r, idxBody := getBody(t, ts.URL+"/debug/traces")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("traces index status %d: %s", r.StatusCode, idxBody)
	}
	var idx TraceIndexResponse
	if err := json.Unmarshal([]byte(idxBody), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Node != "test-node" || len(idx.Traces) != 1 || idx.Traces[0].ID != "trace-ep-1" {
		t.Fatalf("index = %+v, want exactly trace-ep-1", idx)
	}

	r, trBody := getBody(t, ts.URL+"/debug/traces/trace-ep-1")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace get status %d: %s", r.StatusCode, trBody)
	}
	var tres TraceResponse
	if err := json.Unmarshal([]byte(trBody), &tres); err != nil {
		t.Fatal(err)
	}
	if len(tres.Fragments) != 1 {
		t.Fatalf("got %d fragments, want 1", len(tres.Fragments))
	}
	frag := tres.Fragments[0]
	if frag.Handler != "solve" || frag.Status != http.StatusOK {
		t.Errorf("fragment handler/status = %s/%d", frag.Handler, frag.Status)
	}
	var sawRoot, sawSolveSteps bool
	for _, sp := range frag.Spans {
		if sp.Name == "solve" && sp.Parent == "" {
			for _, a := range sp.Attrs {
				if a.Key == "status" && a.Value == "200" {
					sawRoot = true
				}
			}
		}
		if sp.Name == "solve" && sp.Parent != "" {
			for _, a := range sp.Attrs {
				if a.Key == "steps" && a.Value == "40" {
					sawSolveSteps = true
				}
			}
		}
	}
	if !sawRoot {
		t.Errorf("no root span in fragment: %+v", frag.Spans)
	}
	if !sawSolveSteps {
		t.Errorf("solve span missing steps=40: %+v", frag.Spans)
	}

	// Unknown and invalid IDs.
	if r, _ := getBody(t, ts.URL+"/debug/traces/nope"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace returned %d", r.StatusCode)
	}
	if r, _ := getBody(t, ts.URL+"/debug/traces/bad!id"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid trace id returned %d", r.StatusCode)
	}
}

// TestTraceEndpointsWithoutRecorder: a server without a recorder 404s the
// trace surface rather than crashing.
func TestTraceEndpointsWithoutRecorder(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if r, _ := getBody(t, ts.URL+"/debug/traces"); r.StatusCode != http.StatusNotFound {
		t.Errorf("traces index without recorder returned %d", r.StatusCode)
	}
	if r, _ := getBody(t, ts.URL+"/debug/traces/some-id"); r.StatusCode != http.StatusNotFound {
		t.Errorf("trace get without recorder returned %d", r.StatusCode)
	}
	// Solves still work and the nil recorder is a no-op.
	resp, _ := postJSON(t, ts.URL+"/v1/solve", modelio.SolveRequest{
		Algorithm: modelio.AlgoExact, Model: testModel(), MaxN: 10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve without recorder: %d", resp.StatusCode)
	}
}

// TestRemoteParentAdoption: a request carrying X-Parent-Span yields a root
// span parented to it — the local half of cross-node stitching.
func TestRemoteParentAdoption(t *testing.T) {
	rec := obs.New(obs.Config{Node: "n", SampleRate: 1})
	_, ts := newTestServer(t, Config{Recorder: rec})
	client := &http.Client{}
	resp, _ := postJSONWithID(t, client, ts.URL+"/v1/solve", "remote-parent-1",
		modelio.SolveRequest{Algorithm: modelio.AlgoExact, Model: testModel(), MaxN: 5},
		"X-Parent-Span", "aabbccdd00112233")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	frags := rec.Get("remote-parent-1")
	if len(frags) != 1 {
		t.Fatalf("got %d fragments", len(frags))
	}
	var rootParent string
	for _, sp := range frags[0].Spans {
		if sp.Name == "solve" && (sp.Parent == "" || sp.Parent == "aabbccdd00112233") {
			rootParent = sp.Parent
			break
		}
	}
	if rootParent != "aabbccdd00112233" {
		t.Errorf("root parent = %q, want the propagated span ID", rootParent)
	}
}
